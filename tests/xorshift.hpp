// Shared deterministic generator for randomized/fuzz tests.
//
// xorshift64: tiny, seedable, and identical across test binaries, so the
// randomized equivalence and byte-mutation loops stay reproducible and a
// generator fix lands everywhere at once.  Not a std:: engine on purpose —
// libstdc++ engines may change across versions; test vectors must not.
#pragma once

#include <cstdint>

namespace svs::testing {

class Xorshift64 {
 public:
  explicit Xorshift64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t operator()() {
    state_ ^= state_ << 13;
    state_ ^= state_ >> 7;
    state_ ^= state_ << 17;
    return state_;
  }

 private:
  std::uint64_t state_;
};

}  // namespace svs::testing
