// Mutation tests for the specification checker: hand-crafted histories with
// known violations must be flagged, and legal purging histories must not.
// (A checker that never fails would make every property test meaningless.)
#include <gtest/gtest.h>

#include <memory>

#include "core/checker.hpp"
#include "obs/relation.hpp"

namespace svs::core {
namespace {

class Nil final : public Payload {
 public:
  [[nodiscard]] std::size_t wire_size() const override { return 0; }
};

DataMessagePtr msg(std::uint32_t sender, std::uint64_t seq,
                   std::uint64_t view = 0) {
  return std::make_shared<DataMessage>(net::ProcessId(sender), seq,
                                       ViewId(view), obs::Annotation::none(),
                                       std::make_shared<Nil>());
}

View view(std::uint64_t id) {
  return View(ViewId(id), {net::ProcessId(0), net::ProcessId(1)});
}

const net::ProcessId kP0(0);
const net::ProcessId kP1(1);

TEST(Checker, CleanHistoryPasses) {
  SpecChecker c(std::make_shared<obs::EmptyRelation>());
  const auto m = msg(0, 1);
  c.on_multicast(kP0, m);
  for (const auto p : {kP0, kP1}) {
    c.on_install(p, view(0));
    c.on_deliver(p, m);
    c.on_install(p, view(1));
  }
  EXPECT_TRUE(c.verify().empty());
  EXPECT_TRUE(c.verify_strict_vs().empty());
  EXPECT_EQ(c.total_multicasts(), 1u);
  EXPECT_EQ(c.total_deliveries(), 2u);
}

TEST(Checker, DetectsDuplicateDelivery) {
  SpecChecker c(std::make_shared<obs::EmptyRelation>());
  const auto m = msg(0, 1);
  c.on_multicast(kP0, m);
  c.on_install(kP0, view(0));
  c.on_deliver(kP0, m);
  c.on_deliver(kP0, m);
  const auto v = c.verify();
  ASSERT_FALSE(v.empty());
  EXPECT_NE(v[0].find("no-duplication"), std::string::npos);
}

TEST(Checker, DetectsDeliveryOfUnsentMessage) {
  SpecChecker c(std::make_shared<obs::EmptyRelation>());
  c.on_install(kP0, view(0));
  c.on_deliver(kP0, msg(0, 1));
  const auto v = c.verify();
  ASSERT_FALSE(v.empty());
  EXPECT_NE(v[0].find("no-creation"), std::string::npos);
}

TEST(Checker, DetectsFifoOrderViolation) {
  SpecChecker c(std::make_shared<obs::EmptyRelation>());
  const auto m1 = msg(0, 1);
  const auto m2 = msg(0, 2);
  c.on_multicast(kP0, m1);
  c.on_multicast(kP0, m2);
  c.on_install(kP1, view(0));
  c.on_deliver(kP1, m2);
  c.on_deliver(kP1, m1);  // out of order
  const auto v = c.verify();
  ASSERT_FALSE(v.empty());
  EXPECT_NE(v[0].find("FIFO clause (i)"), std::string::npos);
}

TEST(Checker, DetectsSvsViolation) {
  SpecChecker c(std::make_shared<obs::EmptyRelation>());
  const auto m = msg(0, 1);
  c.on_multicast(kP0, m);
  // p0 delivers m in v0; p1 installs both views without delivering it.
  c.on_install(kP0, view(0));
  c.on_deliver(kP0, m);
  c.on_install(kP0, view(1));
  c.on_install(kP1, view(0));
  c.on_install(kP1, view(1));
  const auto v = c.verify();
  ASSERT_FALSE(v.empty());
  EXPECT_NE(v[0].find("SVS violated"), std::string::npos);
}

TEST(Checker, AcceptsOmissionCoveredByGroundTruth) {
  // Same history as above, but p1 delivered a newer message that the ground
  // truth says covers the omitted one: legal purging, no violation.
  auto truth = std::make_shared<obs::ExplicitRelation>();
  truth->add(net::ProcessId(0), 1, net::ProcessId(0), 2);
  SpecChecker c(truth);
  const auto m1 = msg(0, 1);
  const auto m2 = msg(0, 2);
  c.on_multicast(kP0, m1);
  c.on_multicast(kP0, m2);
  for (const auto p : {kP0, kP1}) c.on_install(p, view(0));
  c.on_deliver(kP0, m1);
  c.on_deliver(kP0, m2);
  c.on_deliver(kP1, m2);  // m1 purged at p1 — covered by m2
  for (const auto p : {kP0, kP1}) c.on_install(p, view(1));
  EXPECT_TRUE(c.verify().empty());
  // Strict VS is — by design — violated by that same history.
  EXPECT_FALSE(c.verify_strict_vs().empty());
}

TEST(Checker, DetectsUncoveredOmissionUnderPurging) {
  // p1 delivered only the newer message, but the ground truth does NOT
  // relate the two: that omission is a real SVS violation.
  SpecChecker c(std::make_shared<obs::ExplicitRelation>());
  const auto m1 = msg(0, 1);
  const auto m2 = msg(0, 2);
  c.on_multicast(kP0, m1);
  c.on_multicast(kP0, m2);
  for (const auto p : {kP0, kP1}) c.on_install(p, view(0));
  c.on_deliver(kP0, m1);
  c.on_deliver(kP0, m2);
  c.on_deliver(kP1, m2);
  for (const auto p : {kP0, kP1}) c.on_install(p, view(1));
  EXPECT_FALSE(c.verify().empty());
}

TEST(Checker, DetectsFifoSrClauseTwoViolation) {
  // The sender multicast m1 before m2; p1 delivers m2 in v0 and closes the
  // view without ever covering m1.
  SpecChecker c(std::make_shared<obs::EmptyRelation>());
  const auto m1 = msg(0, 1);
  const auto m2 = msg(0, 2);
  c.on_multicast(kP0, m1);
  c.on_multicast(kP0, m2);
  c.on_install(kP1, view(0));
  c.on_deliver(kP1, m2);
  c.on_install(kP1, view(1));
  const auto v = c.verify();
  ASSERT_FALSE(v.empty());
  EXPECT_NE(v[0].find("FIFO-SR clause (ii)"), std::string::npos);
}

TEST(Checker, DetectsNonConsecutiveViews) {
  SpecChecker c(std::make_shared<obs::EmptyRelation>());
  c.on_install(kP0, view(0));
  c.on_install(kP0, View(ViewId(2), {kP0}));  // skipped v1
  const auto v = c.verify();
  ASSERT_FALSE(v.empty());
  EXPECT_NE(v[0].find("consecutive"), std::string::npos);
}

TEST(Checker, OpenLastViewIsNotChecked) {
  // Messages delivered in a view that never closes (no later install) are
  // exempt — the SVS property only constrains processes that install the
  // *next* view.
  SpecChecker c(std::make_shared<obs::EmptyRelation>());
  const auto m = msg(0, 1);
  c.on_multicast(kP0, m);
  c.on_install(kP0, view(0));
  c.on_deliver(kP0, m);
  c.on_install(kP1, view(0));
  // p1 never delivers m, but neither process installed v1.
  EXPECT_TRUE(c.verify().empty());
}

TEST(Checker, ExclusionEventsAreRecordedHarmlessly) {
  SpecChecker c(std::make_shared<obs::EmptyRelation>());
  c.on_install(kP0, view(0));
  c.on_excluded(kP0, ViewId(0));
  EXPECT_TRUE(c.verify().empty());
}

TEST(Checker, DeliveredInAndViewsInstalledHelpers) {
  SpecChecker c(std::make_shared<obs::EmptyRelation>());
  const auto m1 = msg(0, 1);
  const auto m2 = msg(0, 2);
  c.on_multicast(kP0, m1);
  c.on_multicast(kP0, m2);
  c.on_install(kP0, view(0));
  c.on_deliver(kP0, m1);
  c.on_install(kP0, view(1));
  c.on_deliver(kP0, m2);
  EXPECT_EQ(c.delivered_in(kP0, ViewId(0)).size(), 1u);
  EXPECT_EQ(c.delivered_in(kP0, ViewId(1)).size(), 1u);
  EXPECT_EQ(c.delivered_in(kP0, ViewId(2)).size(), 0u);
  EXPECT_EQ(c.views_installed(kP0).size(), 2u);
  EXPECT_TRUE(c.views_installed(kP1).empty());
}

}  // namespace
}  // namespace svs::core
