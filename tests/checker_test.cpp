// Mutation tests for the specification checker: hand-crafted histories with
// known violations must be flagged, and legal purging histories must not.
// (A checker that never fails would make every property test meaningless.)
#include <gtest/gtest.h>

#include <memory>

#include "core/checker.hpp"
#include "obs/relation.hpp"

namespace svs::core {
namespace {

class Nil final : public Payload {
 public:
  [[nodiscard]] std::size_t wire_size() const override { return 0; }
};

DataMessagePtr msg(std::uint32_t sender, std::uint64_t seq,
                   std::uint64_t view = 0) {
  return std::make_shared<DataMessage>(net::ProcessId(sender), seq,
                                       ViewId(view), obs::Annotation::none(),
                                       std::make_shared<Nil>());
}

View view(std::uint64_t id) {
  return View(ViewId(id), {net::ProcessId(0), net::ProcessId(1)});
}

const net::ProcessId kP0(0);
const net::ProcessId kP1(1);

TEST(Checker, CleanHistoryPasses) {
  SpecChecker c(std::make_shared<obs::EmptyRelation>());
  const auto m = msg(0, 1);
  c.on_multicast(kP0, m);
  for (const auto p : {kP0, kP1}) {
    c.on_install(p, view(0));
    c.on_deliver(p, m);
    c.on_install(p, view(1));
  }
  EXPECT_TRUE(c.verify().empty());
  EXPECT_TRUE(c.verify_strict_vs().empty());
  EXPECT_EQ(c.total_multicasts(), 1u);
  EXPECT_EQ(c.total_deliveries(), 2u);
}

TEST(Checker, DetectsDuplicateDelivery) {
  SpecChecker c(std::make_shared<obs::EmptyRelation>());
  const auto m = msg(0, 1);
  c.on_multicast(kP0, m);
  c.on_install(kP0, view(0));
  c.on_deliver(kP0, m);
  c.on_deliver(kP0, m);
  const auto v = c.verify();
  ASSERT_FALSE(v.empty());
  EXPECT_NE(v[0].find("no-duplication"), std::string::npos);
}

TEST(Checker, DetectsDeliveryOfUnsentMessage) {
  SpecChecker c(std::make_shared<obs::EmptyRelation>());
  c.on_install(kP0, view(0));
  c.on_deliver(kP0, msg(0, 1));
  const auto v = c.verify();
  ASSERT_FALSE(v.empty());
  EXPECT_NE(v[0].find("no-creation"), std::string::npos);
}

TEST(Checker, DetectsFifoOrderViolation) {
  SpecChecker c(std::make_shared<obs::EmptyRelation>());
  const auto m1 = msg(0, 1);
  const auto m2 = msg(0, 2);
  c.on_multicast(kP0, m1);
  c.on_multicast(kP0, m2);
  c.on_install(kP1, view(0));
  c.on_deliver(kP1, m2);
  c.on_deliver(kP1, m1);  // out of order
  const auto v = c.verify();
  ASSERT_FALSE(v.empty());
  EXPECT_NE(v[0].find("FIFO clause (i)"), std::string::npos);
}

TEST(Checker, FifoExemptsTaggedFlushRepairsOnly) {
  // A view-change flush may retro-deliver a sender-purged gap message whose
  // cover died with an excluded sender (DESIGN.md §7); the node tags it via
  // on_flush_in and the checker exempts exactly that delivery from FIFO (i).
  SpecChecker c(std::make_shared<obs::EmptyRelation>());
  const auto m1 = msg(0, 1);
  const auto m2 = msg(0, 2);
  const auto m3 = msg(0, 3);
  c.on_multicast(kP0, m1);
  c.on_multicast(kP0, m2);
  c.on_multicast(kP0, m3);
  c.on_install(kP1, view(0));
  c.on_deliver(kP1, m2);
  c.on_flush_in(kP1, m1);
  c.on_deliver(kP1, m1);  // retro, but tagged: exempt
  EXPECT_TRUE(c.verify().empty());
  // The frontier stays at the maximum: an untagged reorder after the
  // repair is still a violation.
  c.on_deliver(kP1, m3);
  SpecChecker d(std::make_shared<obs::EmptyRelation>());
  d.on_multicast(kP0, m1);
  d.on_multicast(kP0, m2);
  d.on_install(kP1, view(0));
  d.on_deliver(kP1, m2);
  d.on_deliver(kP1, m1);  // same shape, NOT tagged: flagged
  const auto v = d.verify();
  ASSERT_FALSE(v.empty());
  EXPECT_NE(v[0].find("FIFO clause (i)"), std::string::npos);
}

TEST(Checker, DetectsSvsViolation) {
  SpecChecker c(std::make_shared<obs::EmptyRelation>());
  const auto m = msg(0, 1);
  c.on_multicast(kP0, m);
  // p0 delivers m in v0; p1 installs both views without delivering it.
  c.on_install(kP0, view(0));
  c.on_deliver(kP0, m);
  c.on_install(kP0, view(1));
  c.on_install(kP1, view(0));
  c.on_install(kP1, view(1));
  const auto v = c.verify();
  ASSERT_FALSE(v.empty());
  EXPECT_NE(v[0].find("SVS violated"), std::string::npos);
}

TEST(Checker, AcceptsOmissionCoveredByGroundTruth) {
  // Same history as above, but p1 delivered a newer message that the ground
  // truth says covers the omitted one: legal purging, no violation.
  auto truth = std::make_shared<obs::ExplicitRelation>();
  truth->add(net::ProcessId(0), 1, net::ProcessId(0), 2);
  SpecChecker c(truth);
  const auto m1 = msg(0, 1);
  const auto m2 = msg(0, 2);
  c.on_multicast(kP0, m1);
  c.on_multicast(kP0, m2);
  for (const auto p : {kP0, kP1}) c.on_install(p, view(0));
  c.on_deliver(kP0, m1);
  c.on_deliver(kP0, m2);
  c.on_deliver(kP1, m2);  // m1 purged at p1 — covered by m2
  for (const auto p : {kP0, kP1}) c.on_install(p, view(1));
  EXPECT_TRUE(c.verify().empty());
  // Strict VS is — by design — violated by that same history.
  EXPECT_FALSE(c.verify_strict_vs().empty());
}

TEST(Checker, DetectsUncoveredOmissionUnderPurging) {
  // p1 delivered only the newer message, but the ground truth does NOT
  // relate the two: that omission is a real SVS violation.
  SpecChecker c(std::make_shared<obs::ExplicitRelation>());
  const auto m1 = msg(0, 1);
  const auto m2 = msg(0, 2);
  c.on_multicast(kP0, m1);
  c.on_multicast(kP0, m2);
  for (const auto p : {kP0, kP1}) c.on_install(p, view(0));
  c.on_deliver(kP0, m1);
  c.on_deliver(kP0, m2);
  c.on_deliver(kP1, m2);
  for (const auto p : {kP0, kP1}) c.on_install(p, view(1));
  EXPECT_FALSE(c.verify().empty());
}

TEST(Checker, DetectsFifoSrClauseTwoViolation) {
  // The sender multicast m1 before m2; p1 delivers m2 in v0 and closes the
  // view without ever covering m1.
  SpecChecker c(std::make_shared<obs::EmptyRelation>());
  const auto m1 = msg(0, 1);
  const auto m2 = msg(0, 2);
  c.on_multicast(kP0, m1);
  c.on_multicast(kP0, m2);
  c.on_install(kP1, view(0));
  c.on_deliver(kP1, m2);
  c.on_install(kP1, view(1));
  const auto v = c.verify();
  ASSERT_FALSE(v.empty());
  EXPECT_NE(v[0].find("FIFO-SR clause (ii)"), std::string::npos);
}

TEST(Checker, DetectsNonConsecutiveViews) {
  SpecChecker c(std::make_shared<obs::EmptyRelation>());
  c.on_install(kP0, view(0));
  c.on_install(kP0, View(ViewId(2), {kP0}));  // skipped v1
  const auto v = c.verify();
  ASSERT_FALSE(v.empty());
  EXPECT_NE(v[0].find("consecutive"), std::string::npos);
}

TEST(Checker, OpenLastViewIsNotChecked) {
  // Messages delivered in a view that never closes (no later install) are
  // exempt — the SVS property only constrains processes that install the
  // *next* view.
  SpecChecker c(std::make_shared<obs::EmptyRelation>());
  const auto m = msg(0, 1);
  c.on_multicast(kP0, m);
  c.on_install(kP0, view(0));
  c.on_deliver(kP0, m);
  c.on_install(kP1, view(0));
  // p1 never delivers m, but neither process installed v1.
  EXPECT_TRUE(c.verify().empty());
}

TEST(Checker, ExclusionEventsAreRecordedHarmlessly) {
  SpecChecker c(std::make_shared<obs::EmptyRelation>());
  c.on_install(kP0, view(0));
  c.on_excluded(kP0, ViewId(0));
  EXPECT_TRUE(c.verify().empty());
}

// ---------------------------------------------------------------------------
// quiescence / liveness (verify_quiescence)
// ---------------------------------------------------------------------------

TEST(CheckerQuiescence, CleanConvergedHistoryPasses) {
  SpecChecker c(std::make_shared<obs::EmptyRelation>());
  const auto m = msg(0, 1);
  c.on_multicast(kP0, m);
  for (const auto p : {kP0, kP1}) {
    c.on_install(p, view(0));
    c.on_deliver(p, m);
  }
  const std::vector<net::ProcessId> alive{kP0, kP1};
  EXPECT_TRUE(c.verify_quiescence(alive).empty());
}

TEST(CheckerQuiescence, DetectsDivergentFinalViews) {
  SpecChecker c(std::make_shared<obs::EmptyRelation>());
  c.on_install(kP0, view(0));
  c.on_install(kP0, view(1));
  c.on_install(kP1, view(0));  // p1 never reached v1
  const std::vector<net::ProcessId> alive{kP0, kP1};
  const auto v = c.verify_quiescence(alive);
  ASSERT_FALSE(v.empty());
  EXPECT_NE(v[0].find("diverged"), std::string::npos);
}

TEST(CheckerQuiescence, DetectsSurvivorWhoNeverInstalled) {
  SpecChecker c(std::make_shared<obs::EmptyRelation>());
  c.on_install(kP0, view(0));
  const std::vector<net::ProcessId> alive{kP0, kP1};
  const auto v = c.verify_quiescence(alive);
  ASSERT_FALSE(v.empty());
  EXPECT_NE(v[0].find("never installed"), std::string::npos);
}

TEST(CheckerQuiescence, DetectsUndeliveredMessageFromSurvivingSender) {
  SpecChecker c(std::make_shared<obs::EmptyRelation>());
  const auto m = msg(0, 1);
  c.on_multicast(kP0, m);
  for (const auto p : {kP0, kP1}) c.on_install(p, view(0));
  c.on_deliver(kP0, m);
  // p1 installed the same final view but never saw m, and nothing covers it.
  const std::vector<net::ProcessId> alive{kP0, kP1};
  const auto v = c.verify_quiescence(alive);
  ASSERT_FALSE(v.empty());
  EXPECT_NE(v[0].find("neither delivered nor obsoleted"), std::string::npos);
}

TEST(CheckerQuiescence, AcceptsObsoletedByGroundTruthCover) {
  auto truth = std::make_shared<obs::ExplicitRelation>();
  truth->add(net::ProcessId(0), 1, net::ProcessId(0), 2);
  SpecChecker c(truth);
  const auto m1 = msg(0, 1);
  const auto m2 = msg(0, 2);
  c.on_multicast(kP0, m1);
  c.on_multicast(kP0, m2);
  for (const auto p : {kP0, kP1}) c.on_install(p, view(0));
  c.on_deliver(kP0, m1);
  c.on_deliver(kP0, m2);
  c.on_deliver(kP1, m2);  // m1 omitted at p1 but covered by m2
  const std::vector<net::ProcessId> alive{kP0, kP1};
  EXPECT_TRUE(c.verify_quiescence(alive).empty());
}

TEST(CheckerQuiescence, IgnoresMessagesFromCrashedSenders) {
  SpecChecker c(std::make_shared<obs::EmptyRelation>());
  const auto m = msg(2, 1);  // sender p2 will not be in the alive set
  c.on_multicast(net::ProcessId(2), m);
  for (const auto p : {kP0, kP1}) c.on_install(p, view(0));
  // Nobody delivered p2's message; §3.2 does not promise delivery for a
  // crashed sender, so quiescence must not complain.
  const std::vector<net::ProcessId> alive{kP0, kP1};
  EXPECT_TRUE(c.verify_quiescence(alive).empty());
}

TEST(CheckerQuiescence, ExcludedProcessesAreExemptAndShrinkTheView) {
  SpecChecker c(std::make_shared<obs::EmptyRelation>());
  // p1 is excluded at the v0 -> v1 boundary; p0 continues alone in v1.
  c.on_install(kP0, view(0));
  c.on_install(kP0, View(ViewId(1), {kP0}));
  c.on_install(kP1, view(0));
  c.on_excluded(kP1, ViewId(0));
  // Both are alive, but only p0 is a survivor; its final view matches the
  // survivor set exactly, and p1's divergent history is exempt.
  const std::vector<net::ProcessId> alive{kP0, kP1};
  EXPECT_TRUE(c.verify_quiescence(alive).empty());
}

TEST(CheckerQuiescence, DetectsDeadMemberLingeringDespiteQuorum) {
  SpecChecker c(std::make_shared<obs::EmptyRelation>());
  const net::ProcessId p2(2);
  const View v0(ViewId(0), {kP0, kP1, p2});
  // p2 crashed, yet p0 and p1 (an alive quorum of the 3-view) never
  // excluded it: a liveness failure of the membership machinery.
  c.on_install(kP0, v0);
  c.on_install(kP1, v0);
  const std::vector<net::ProcessId> alive{kP0, kP1};
  const auto v = c.verify_quiescence(alive);
  ASSERT_FALSE(v.empty());
  EXPECT_NE(v[0].find("does not match the survivor set"), std::string::npos);
}

TEST(CheckerQuiescence, QuorumLossWaivesConditionalLivenessOnly) {
  SpecChecker c(std::make_shared<obs::EmptyRelation>());
  const auto m = msg(0, 1);
  c.on_multicast(kP0, m);
  // Final view {p0, p1} but only p0 is alive: below quorum, the rump group
  // legitimately halts — the lingering dead member and the undelivered
  // message must NOT be flagged...
  c.on_install(kP0, view(0));
  const std::vector<net::ProcessId> alive{kP0};
  EXPECT_TRUE(c.verify_quiescence(alive).empty());
  // ...but convergence among survivors stays unconditional.
  SpecChecker d(std::make_shared<obs::EmptyRelation>());
  const net::ProcessId p2(2);
  const View wide(ViewId(0), {kP0, kP1, p2, net::ProcessId(3)});
  d.on_install(kP0, wide);
  d.on_install(kP1, wide);
  d.on_install(kP1, View(ViewId(1), {kP0, kP1, p2, net::ProcessId(3)}));
  const std::vector<net::ProcessId> both{kP0, kP1};
  EXPECT_FALSE(d.verify_quiescence(both).empty());
}

TEST(Checker, DeliveredInAndViewsInstalledHelpers) {
  SpecChecker c(std::make_shared<obs::EmptyRelation>());
  const auto m1 = msg(0, 1);
  const auto m2 = msg(0, 2);
  c.on_multicast(kP0, m1);
  c.on_multicast(kP0, m2);
  c.on_install(kP0, view(0));
  c.on_deliver(kP0, m1);
  c.on_install(kP0, view(1));
  c.on_deliver(kP0, m2);
  EXPECT_EQ(c.delivered_in(kP0, ViewId(0)).size(), 1u);
  EXPECT_EQ(c.delivered_in(kP0, ViewId(1)).size(), 1u);
  EXPECT_EQ(c.delivered_in(kP0, ViewId(2)).size(), 0u);
  EXPECT_EQ(c.views_installed(kP0).size(), 2u);
  EXPECT_TRUE(c.views_installed(kP1).empty());
}

}  // namespace
}  // namespace svs::core
