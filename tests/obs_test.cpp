// Unit tests for obsolescence representations (§4).
#include <gtest/gtest.h>

#include "net/types.hpp"
#include "obs/annotation.hpp"
#include "obs/batch.hpp"
#include "obs/kbitmap.hpp"
#include "obs/relation.hpp"
#include "util/bytes.hpp"
#include "util/contracts.hpp"

namespace svs::obs {
namespace {

using net::ProcessId;

TEST(KBitmap, SetAndTest) {
  KBitmap bm(16);
  bm.set(1);
  bm.set(16);
  EXPECT_TRUE(bm.test(1));
  EXPECT_TRUE(bm.test(16));
  EXPECT_FALSE(bm.test(2));
  EXPECT_FALSE(bm.test(17));  // out of horizon: never marked
  EXPECT_FALSE(bm.test(0));
  EXPECT_THROW(bm.set(0), util::ContractViolation);
  EXPECT_THROW(bm.set(17), util::ContractViolation);
}

TEST(KBitmap, WordBoundaries) {
  KBitmap bm(130);
  for (const std::size_t d : {63u, 64u, 65u, 127u, 128u, 129u, 130u}) {
    bm.set(d);
  }
  for (const std::size_t d : {63u, 64u, 65u, 127u, 128u, 129u, 130u}) {
    EXPECT_TRUE(bm.test(d)) << d;
  }
  EXPECT_FALSE(bm.test(62));
  EXPECT_FALSE(bm.test(126));
}

TEST(KBitmap, ComposeShiftsAndInherits) {
  // pred obsoletes its predecessor at distance 2; we obsolete pred at
  // distance 3 => we obsolete {3, 5} (transitivity via shift/or).
  KBitmap pred(16);
  pred.set(2);
  KBitmap bm(16);
  bm.compose(pred, 3);
  EXPECT_TRUE(bm.test(3));
  EXPECT_TRUE(bm.test(5));
  EXPECT_FALSE(bm.test(2));
  EXPECT_EQ(bm.popcount(), 2u);
}

TEST(KBitmap, ComposeAcrossWordBoundary) {
  KBitmap pred(128);
  pred.set(60);
  pred.set(64);
  KBitmap bm(128);
  bm.compose(pred, 10);
  EXPECT_TRUE(bm.test(10));
  EXPECT_TRUE(bm.test(70));
  EXPECT_TRUE(bm.test(74));
}

TEST(KBitmap, ComposeClipsAtHorizon) {
  KBitmap pred(8);
  pred.set(6);
  KBitmap bm(8);
  bm.compose(pred, 4);  // 6+4 = 10 > 8: inherited bit dropped
  EXPECT_TRUE(bm.test(4));
  EXPECT_FALSE(bm.test(8));
  EXPECT_EQ(bm.popcount(), 1u);

  KBitmap far(8);
  far.compose(pred, 9);  // distance beyond horizon entirely: no-op
  EXPECT_TRUE(far.empty());
}

TEST(KBitmap, ComposeEquivalentToNaive) {
  // Word-wise compose must match the bit-by-bit definition.
  for (const std::size_t k : {7u, 64u, 65u, 200u}) {
    KBitmap pred(k);
    for (std::size_t d = 1; d <= k; d += 3) pred.set(d);
    for (const std::size_t dist : {1u, 5u, 63u, 64u, 65u}) {
      if (dist > k) continue;
      KBitmap fast(k);
      fast.compose(pred, dist);
      KBitmap slow(k);
      slow.set(dist);
      for (std::size_t d = 1; d <= k; ++d) {
        if (pred.test(d) && d + dist <= k) slow.set(d + dist);
      }
      EXPECT_EQ(fast, slow) << "k=" << k << " dist=" << dist;
    }
  }
}

TEST(KBitmap, MergeOrsBits) {
  KBitmap a(16), b(16);
  a.set(1);
  b.set(2);
  b.set(16);
  a.merge(b);
  EXPECT_TRUE(a.test(1));
  EXPECT_TRUE(a.test(2));
  EXPECT_TRUE(a.test(16));
  EXPECT_EQ(a.popcount(), 3u);
}

TEST(KBitmap, SetDistancesSorted) {
  KBitmap bm(32);
  bm.set(17);
  bm.set(3);
  bm.set(32);
  EXPECT_EQ(bm.set_distances(), (std::vector<std::size_t>{3, 17, 32}));
}

TEST(KBitmap, EncodeDecodeRoundTrip) {
  for (const std::size_t k : {0u, 1u, 8u, 9u, 64u, 100u}) {
    KBitmap bm(k);
    for (std::size_t d = 1; d <= k; d += 2) bm.set(d);
    util::ByteWriter w;
    bm.encode(w);
    EXPECT_EQ(w.size(), bm.wire_size());
    util::ByteReader r(w.data());
    EXPECT_EQ(KBitmap::decode(r), bm) << k;
  }
}

TEST(KBitmap, WireSizeIsCompact) {
  // §4.2: "extremely compact" — 32 bits of horizon in 5 bytes.
  EXPECT_EQ(KBitmap(32).wire_size(), 1u + 4u);
}

TEST(Annotation, Factories) {
  EXPECT_EQ(Annotation::none().kind(), AnnotationKind::none);
  EXPECT_EQ(Annotation::item(9).kind(), AnnotationKind::item_tag);
  EXPECT_EQ(Annotation::item(9).tag(), 9u);
  const auto e = Annotation::enumerate({5, 3, 5, 1});
  EXPECT_EQ(e.enumerated(), (std::vector<std::uint64_t>{1, 3, 5}));  // sorted+deduped
  KBitmap bm(8);
  bm.set(2);
  EXPECT_TRUE(Annotation::kenum(bm).bitmap().test(2));
}

TEST(Annotation, WrongAccessorRejected) {
  EXPECT_THROW((void)Annotation::none().tag(), util::ContractViolation);
  EXPECT_THROW((void)Annotation::item(1).enumerated(),
               util::ContractViolation);
  EXPECT_THROW((void)Annotation::enumerate({1}).bitmap(),
               util::ContractViolation);
}

TEST(Annotation, EncodeDecodeRoundTrip) {
  KBitmap bm(20);
  bm.set(4);
  bm.set(19);
  const Annotation cases[] = {
      Annotation::none(), Annotation::item(77),
      Annotation::enumerate({2, 9, 1000}), Annotation::kenum(bm)};
  for (const auto& a : cases) {
    util::ByteWriter w;
    a.encode(w);
    EXPECT_EQ(w.size(), a.wire_size());
    util::ByteReader r(w.data());
    EXPECT_EQ(Annotation::decode(r), a);
  }
}

// ---------------------------------------------------------------------------
// Relations
// ---------------------------------------------------------------------------

MessageRef ref(ProcessId sender, std::uint64_t seq, const Annotation& a) {
  return MessageRef{sender, seq, &a};
}

TEST(ItemTagRelation, SameTagHigherSeqCovers) {
  ItemTagRelation rel;
  const auto a7 = Annotation::item(7);
  const auto b7 = Annotation::item(7);
  const auto c9 = Annotation::item(9);
  EXPECT_TRUE(rel.covers(ref(ProcessId(1), 5, a7), ref(ProcessId(1), 3, b7)));
  EXPECT_FALSE(rel.covers(ref(ProcessId(1), 3, b7), ref(ProcessId(1), 5, a7)));
  EXPECT_FALSE(rel.covers(ref(ProcessId(1), 5, a7), ref(ProcessId(1), 3, c9)));
  EXPECT_FALSE(rel.covers(ref(ProcessId(2), 5, a7), ref(ProcessId(1), 3, b7)));
  EXPECT_FALSE(rel.covers(ref(ProcessId(1), 5, a7), ref(ProcessId(1), 5, b7)));
}

TEST(ItemTagRelation, IsTransitiveByConstruction) {
  ItemTagRelation rel;
  const auto t = Annotation::item(1);
  // seq 1 < 2 < 3, all same tag: every forward pair covers.
  EXPECT_TRUE(rel.covers(ref(ProcessId(0), 3, t), ref(ProcessId(0), 1, t)));
}

TEST(EnumerationRelation, ListedSeqsCover) {
  EnumerationRelation rel;
  const auto e = Annotation::enumerate({3, 5});
  const auto none = Annotation::none();
  EXPECT_TRUE(rel.covers(ref(ProcessId(0), 9, e), ref(ProcessId(0), 3, none)));
  EXPECT_TRUE(rel.covers(ref(ProcessId(0), 9, e), ref(ProcessId(0), 5, none)));
  EXPECT_FALSE(rel.covers(ref(ProcessId(0), 9, e), ref(ProcessId(0), 4, none)));
  EXPECT_FALSE(rel.covers(ref(ProcessId(1), 9, e), ref(ProcessId(0), 3, none)));
  // A listed seq >= own seq is ignored (defensive against bad encoders).
  const auto weird = Annotation::enumerate({9});
  EXPECT_FALSE(
      rel.covers(ref(ProcessId(0), 9, weird), ref(ProcessId(0), 9, none)));
}

TEST(KEnumRelation, DistanceRule) {
  KEnumRelation rel;
  KBitmap bm(4);
  bm.set(1);
  bm.set(4);
  const auto a = Annotation::kenum(bm);
  const auto none = Annotation::none();
  // m'.sn = 10: covers 9 (d=1) and 6 (d=4), not 8/7, nothing below sn-k.
  EXPECT_TRUE(rel.covers(ref(ProcessId(0), 10, a), ref(ProcessId(0), 9, none)));
  EXPECT_TRUE(rel.covers(ref(ProcessId(0), 10, a), ref(ProcessId(0), 6, none)));
  EXPECT_FALSE(rel.covers(ref(ProcessId(0), 10, a), ref(ProcessId(0), 8, none)));
  EXPECT_FALSE(rel.covers(ref(ProcessId(0), 10, a), ref(ProcessId(0), 5, none)));
  EXPECT_FALSE(rel.covers(ref(ProcessId(0), 10, a), ref(ProcessId(0), 11, none)));
  EXPECT_FALSE(rel.covers(ref(ProcessId(1), 10, a), ref(ProcessId(0), 9, none)));
}

TEST(EmptyRelation, NeverCovers) {
  EmptyRelation rel;
  const auto t = Annotation::item(1);
  EXPECT_FALSE(rel.covers(ref(ProcessId(0), 2, t), ref(ProcessId(0), 1, t)));
}

TEST(ExplicitRelation, ClosureAndCycleRejection) {
  ExplicitRelation rel;
  const auto none = Annotation::none();
  rel.add(ProcessId(0), 1, ProcessId(0), 2);
  rel.add(ProcessId(0), 2, ProcessId(0), 3);
  // Transitive closure: 1 < 3 without explicit edge.
  EXPECT_TRUE(rel.covers(ref(ProcessId(0), 3, none), ref(ProcessId(0), 1, none)));
  // Antisymmetry: inserting the reverse edge must fail.
  EXPECT_THROW(rel.add(ProcessId(0), 3, ProcessId(0), 1),
               util::ContractViolation);
  // Irreflexivity.
  EXPECT_THROW(rel.add(ProcessId(0), 4, ProcessId(0), 4),
               util::ContractViolation);
}

TEST(ExplicitRelation, CrossSenderEdgesSupported) {
  ExplicitRelation rel;
  const auto none = Annotation::none();
  rel.add(ProcessId(0), 1, ProcessId(1), 1);
  EXPECT_TRUE(rel.covers(ref(ProcessId(1), 1, none), ref(ProcessId(0), 1, none)));
  EXPECT_FALSE(rel.covers(ref(ProcessId(0), 1, none), ref(ProcessId(1), 1, none)));
}

// ---------------------------------------------------------------------------
// BatchComposer (§4.1, Figure 2)
// ---------------------------------------------------------------------------

TEST(BatchComposer, SingleItemChain) {
  BatchComposer c({AnnotationKind::k_enum, 8, 0});
  KEnumRelation rel;
  const auto a1 = c.single(7, 1);
  const auto a2 = c.single(7, 2);
  const auto a3 = c.single(7, 5);
  EXPECT_TRUE(a1.bitmap().empty());  // first update: nothing to obsolete
  // 2 covers 1 (d=1); 5 covers 2 (d=3) and, transitively, 1 (d=4).
  EXPECT_TRUE(rel.covers(ref(ProcessId(0), 2, a2), ref(ProcessId(0), 1, a1)));
  EXPECT_TRUE(rel.covers(ref(ProcessId(0), 5, a3), ref(ProcessId(0), 2, a2)));
  EXPECT_TRUE(rel.covers(ref(ProcessId(0), 5, a3), ref(ProcessId(0), 1, a1)));
}

TEST(BatchComposer, FigureTwoScenario) {
  // U(a,1) U(b,1) C(1) | U(b,2) U(c,2) C(2): C(2) — not U(b,2) — makes
  // U(b,1) obsolete.
  BatchComposer c({AnnotationKind::k_enum, 16, 0});
  KEnumRelation rel;

  c.begin();
  c.add_item(100);  // a
  c.add_item(101);  // b
  c.add_item(102);  // c = carrier of batch 1 (the commit C(1))
  c.note_update_seq(100, 1);
  c.note_update_seq(101, 2);
  const auto c1 = c.commit(3, 102);
  EXPECT_TRUE(c1.bitmap().empty());  // nothing before batch 1

  c.begin();
  c.add_item(101);  // b again
  c.add_item(103);  // d = carrier (the commit C(2))
  c.note_update_seq(101, 4);
  const auto c2 = c.commit(5, 103);

  const auto none = Annotation::none();
  // The update U(b,2) (seq 4) carries no obsolescence.
  EXPECT_FALSE(rel.covers(ref(ProcessId(0), 4, none), ref(ProcessId(0), 2, none)));
  // The commit C(2) (seq 5) obsoletes U(b,1) (seq 2)...
  EXPECT_TRUE(rel.covers(ref(ProcessId(0), 5, c2), ref(ProcessId(0), 2, none)));
  // ...but not U(a,1) (seq 1) nor C(1) (seq 3): batch 2 is not a super-set
  // of batch 1.
  EXPECT_FALSE(rel.covers(ref(ProcessId(0), 5, c2), ref(ProcessId(0), 1, none)));
  EXPECT_FALSE(rel.covers(ref(ProcessId(0), 5, c2), ref(ProcessId(0), 3, c1)));
}

TEST(BatchComposer, SupersetBatchCoversOldCarrier) {
  BatchComposer c({AnnotationKind::k_enum, 16, 0});
  KEnumRelation rel;
  c.begin();
  c.add_item(1);
  c.add_item(2);
  c.note_update_seq(1, 1);
  const auto c1 = c.commit(2, 2);  // carrier of {1,2} at seq 2

  c.begin();
  c.add_item(1);
  c.add_item(2);
  c.add_item(3);
  c.note_update_seq(1, 3);
  c.note_update_seq(2, 4);
  const auto c2 = c.commit(5, 3);  // {1,2,3} ⊇ {1,2}

  // The super-set commit covers the old carrier and both old updates.
  EXPECT_TRUE(rel.covers(ref(ProcessId(0), 5, c2), ref(ProcessId(0), 2, c1)));
  const auto none = Annotation::none();
  EXPECT_TRUE(rel.covers(ref(ProcessId(0), 5, c2), ref(ProcessId(0), 1, none)));
}

TEST(BatchComposer, SingletonCarrierDegeneratesToPlainUpdate) {
  BatchComposer c({AnnotationKind::k_enum, 8, 0});
  KEnumRelation rel;
  const auto a1 = c.single(7, 1);  // singleton batch carrier
  c.begin();
  c.add_item(7);
  c.add_item(8);
  c.note_update_seq(7, 2);
  const auto c2 = c.commit(3, 8);  // multi-item batch including 7
  // The singleton carrier is coverable like any update.
  EXPECT_TRUE(rel.covers(ref(ProcessId(0), 3, c2), ref(ProcessId(0), 1, a1)));
}

TEST(BatchComposer, HorizonClippingDropsFarPredecessors) {
  BatchComposer c({AnnotationKind::k_enum, 4, 0});
  KEnumRelation rel;
  const auto a1 = c.single(7, 1);
  (void)a1;
  const auto a2 = c.single(7, 10);  // distance 9 > k=4
  EXPECT_TRUE(a2.bitmap().empty());
  const auto none = Annotation::none();
  EXPECT_FALSE(rel.covers(ref(ProcessId(0), 10, a2), ref(ProcessId(0), 1, none)));
}

TEST(BatchComposer, EnumerationRepresentation) {
  BatchComposer c({AnnotationKind::enumeration, 0, 0});
  EnumerationRelation rel;
  const auto a1 = c.single(7, 1);
  const auto a2 = c.single(7, 4);
  const auto a3 = c.single(7, 9);
  EXPECT_TRUE(a1.enumerated().empty());
  EXPECT_EQ(a2.enumerated(), (std::vector<std::uint64_t>{1}));
  // Transitive closure carried explicitly.
  EXPECT_EQ(a3.enumerated(), (std::vector<std::uint64_t>{1, 4}));
  EXPECT_TRUE(rel.covers(ref(ProcessId(0), 9, a3), ref(ProcessId(0), 1, a1)));
}

TEST(BatchComposer, EnumerationWindowTruncates) {
  BatchComposer c({AnnotationKind::enumeration, 0, 5});
  const auto a1 = c.single(7, 1);
  (void)a1;
  const auto a2 = c.single(7, 10);
  EXPECT_TRUE(a2.enumerated().empty());  // 1 < 10-5: dropped
}

TEST(BatchComposer, ItemTagRepresentation) {
  BatchComposer c({AnnotationKind::item_tag, 0, 0});
  const auto a = c.single(7, 1);
  EXPECT_EQ(a.kind(), AnnotationKind::item_tag);
  EXPECT_EQ(a.tag(), 7u);
  // Multi-item batches are not expressible with tags (§4.2).
  c.begin();
  c.add_item(1);
  c.add_item(2);
  c.note_update_seq(1, 2);
  EXPECT_THROW(c.commit(3, 2), util::ContractViolation);
}

TEST(BatchComposer, ApiMisuseRejected) {
  BatchComposer c({AnnotationKind::k_enum, 8, 0});
  EXPECT_THROW(c.add_item(1), util::ContractViolation);       // no batch
  EXPECT_THROW(c.commit(1, 1), util::ContractViolation);      // no batch
  c.begin();
  EXPECT_THROW(c.begin(), util::ContractViolation);           // nested
  c.add_item(1);
  EXPECT_THROW(c.note_update_seq(2, 1), util::ContractViolation);
  c.add_item(2);
  // carrier not in batch:
  EXPECT_THROW(c.commit(9, 5), util::ContractViolation);
  // non-carrier item without noted seq:
  EXPECT_THROW(c.commit(9, 1), util::ContractViolation);
}

}  // namespace
}  // namespace svs::obs
