// Randomized property tests: the §3.2 specification must hold across
// schedules, relations, buffer bounds, crashes, slow links and slow
// consumers.  Every scenario is checked with the SpecChecker; empty-relation
// scenarios additionally satisfy classic View Synchrony.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/checker.hpp"
#include "core/group.hpp"
#include "obs/relation.hpp"
#include "sim/random.hpp"
#include "workload/consumer.hpp"

namespace svs::core {
namespace {

class Tagged final : public Payload {
 public:
  Tagged(int producer, int n) : producer_(producer), n_(n) {}
  [[nodiscard]] std::size_t wire_size() const override { return 8; }
  [[nodiscard]] int n() const { return n_; }

 private:
  [[maybe_unused]] int producer_;
  int n_;
};

/// Per-node driver: multicasts a planned list of (time, tag) messages,
/// retrying on flow control; stops if the node leaves the group.
class Driver {
 public:
  Driver(sim::Simulator& sim, Node& node, bool item_tags)
      : sim_(sim), node_(node), item_tags_(item_tags) {}

  void plan(sim::TimePoint at, std::uint64_t tag) {
    planned_.push_back({at, tag});
  }

  void start() {
    node_.set_unblocked_callback([this] { pump(); });
    if (!planned_.empty()) {
      sim_.schedule_at(planned_[0].at, [this] { pump(); });
    }
  }

  [[nodiscard]] std::size_t sent() const { return next_; }

 private:
  void pump() {
    while (next_ < planned_.size()) {
      if (node_.excluded()) return;  // gave up: no longer a member
      const auto& p = planned_[next_];
      if (sim_.now() < p.at) {
        sim_.schedule_at(p.at, [this] { pump(); });
        return;
      }
      const auto ann = item_tags_ ? obs::Annotation::item(p.tag)
                                  : obs::Annotation::none();
      if (!node_.multicast(
              std::make_shared<Tagged>(static_cast<int>(node_.id().value()),
                                       static_cast<int>(next_)),
              ann)) {
        return;  // flow-controlled; unblocked callback will re-enter
      }
      ++next_;
    }
  }

  struct Planned {
    sim::TimePoint at;
    std::uint64_t tag;
  };
  sim::Simulator& sim_;
  Node& node_;
  bool item_tags_;
  std::vector<Planned> planned_;
  std::size_t next_ = 0;
};

struct Scenario {
  std::size_t n;
  bool item_tags;       // item-tag relation vs empty relation
  bool purging;         // purge_delivery_queue / purge_outgoing
  std::size_t delivery_capacity;
  std::size_t out_capacity;
  bool crash_one;
  bool slow_link;
  bool slow_consumer;
  std::size_t messages_per_node;
};

void run_scenario(std::uint64_t seed, const Scenario& sc) {
  sim::Rng rng(seed);
  sim::Simulator sim;

  obs::RelationPtr relation;
  if (sc.item_tags) {
    relation = std::make_shared<obs::ItemTagRelation>();
  } else {
    relation = std::make_shared<obs::EmptyRelation>();
  }
  SpecChecker checker(relation);

  Group::Config cfg;
  cfg.size = sc.n;
  cfg.node.relation = relation;
  cfg.node.purge_delivery_queue = sc.purging;
  cfg.node.purge_outgoing = sc.purging;
  cfg.node.delivery_capacity = sc.delivery_capacity;
  cfg.node.out_capacity = sc.out_capacity;
  cfg.observer = &checker;
  cfg.oracle_delay = sim::Duration::millis(5 + rng.below(30));
  cfg.membership.suspicion_grace = sim::Duration::millis(5 + rng.below(20));
  Group g(sim, cfg);

  // Consumers: everyone drains; at most one node is slow.
  std::vector<std::unique_ptr<workload::InstantConsumer>> instant;
  std::unique_ptr<workload::RateConsumer> slow;
  const std::size_t slow_at = sc.slow_consumer ? sc.n - 1 : sc.n;
  for (std::size_t i = 0; i < sc.n; ++i) {
    if (i == slow_at) {
      slow = std::make_unique<workload::RateConsumer>(
          sim, g.node(i), 20.0 + static_cast<double>(rng.below(60)));
      slow->start();
    } else {
      instant.push_back(
          std::make_unique<workload::InstantConsumer>(sim, g.node(i)));
      instant.back()->start();
    }
  }

  // Traffic: every node multicasts at random times with random tags.
  std::vector<std::unique_ptr<Driver>> drivers;
  for (std::size_t i = 0; i < sc.n; ++i) {
    drivers.push_back(
        std::make_unique<Driver>(sim, g.node(i), sc.item_tags));
    for (std::size_t m = 0; m < sc.messages_per_node; ++m) {
      drivers.back()->plan(
          sim::TimePoint::origin() +
              sim::Duration::micros(
                  static_cast<std::int64_t>(rng.below(1'500'000))),
          rng.below(6));
    }
    drivers.back()->start();
  }

  if (sc.slow_link) {
    const std::size_t a = rng.below(sc.n);
    const std::size_t b = rng.below(sc.n);
    if (a != b) {
      g.network().set_link_slowdown(
          g.pid(a), g.pid(b),
          sim::Duration::millis(static_cast<std::int64_t>(rng.below(200))));
    }
  }

  // Optional crash of one non-initiating node (groups keep a majority).
  if (sc.crash_one && sc.n >= 3) {
    const std::size_t victim = 1 + rng.below(sc.n - 2);  // never 0, never n-1
    sim.schedule_after(
        sim::Duration::micros(static_cast<std::int64_t>(rng.below(900'000))),
        [&g, victim] { g.crash(victim); });
  }

  // A mid-run reconfiguration (no one leaves) and a final leave, so every
  // run has at least two view boundaries for the checker to look at.
  sim.schedule_after(sim::Duration::millis(700),
                     [&g] { g.node(0).request_view_change({}); });
  sim.schedule_after(sim::Duration::seconds(2.5), [&g] {
    if (!g.node(0).excluded()) {
      g.node(0).request_view_change({g.pid(0)});
    }
  });

  sim.run();

  // Drain whatever the consumers have not pulled yet, so all segments close.
  for (std::size_t i = 0; i < sc.n; ++i) g.drain(i);

  const auto violations = checker.verify();
  EXPECT_EQ(violations, std::vector<std::string>{})
      << "seed " << seed << ": " << violations.size() << " violations";
  if (!sc.item_tags) {
    const auto vs = checker.verify_strict_vs();
    EXPECT_EQ(vs, std::vector<std::string>{})
        << "seed " << seed << " (strict VS)";
  }
  EXPECT_GT(checker.total_deliveries(), 0u);
}

class SvsProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SvsProperty, EmptyRelationUnboundedIsViewSynchrony) {
  run_scenario(GetParam(), Scenario{.n = 3 + GetParam() % 3,
                                    .item_tags = false,
                                    .purging = true,  // no-op when empty
                                    .delivery_capacity = 0,
                                    .out_capacity = 0,
                                    .crash_one = false,
                                    .slow_link = true,
                                    .slow_consumer = false,
                                    .messages_per_node = 40});
}

TEST_P(SvsProperty, EmptyRelationWithCrash) {
  run_scenario(GetParam(), Scenario{.n = 4 + GetParam() % 2,
                                    .item_tags = false,
                                    .purging = true,
                                    .delivery_capacity = 0,
                                    .out_capacity = 0,
                                    .crash_one = true,
                                    .slow_link = true,
                                    .slow_consumer = false,
                                    .messages_per_node = 30});
}

TEST_P(SvsProperty, PurgingWithSlowConsumer) {
  run_scenario(GetParam(), Scenario{.n = 3 + GetParam() % 3,
                                    .item_tags = true,
                                    .purging = true,
                                    .delivery_capacity = 6,
                                    .out_capacity = 6,
                                    .crash_one = false,
                                    .slow_link = false,
                                    .slow_consumer = true,
                                    .messages_per_node = 60});
}

TEST_P(SvsProperty, PurgingWithCrashAndSlowConsumer) {
  run_scenario(GetParam(), Scenario{.n = 4,
                                    .item_tags = true,
                                    .purging = true,
                                    .delivery_capacity = 8,
                                    .out_capacity = 8,
                                    .crash_one = true,
                                    .slow_link = true,
                                    .slow_consumer = true,
                                    .messages_per_node = 50});
}

TEST_P(SvsProperty, ReliableBoundedWithSlowConsumer) {
  run_scenario(GetParam(), Scenario{.n = 3,
                                    .item_tags = false,
                                    .purging = false,
                                    .delivery_capacity = 8,
                                    .out_capacity = 8,
                                    .crash_one = false,
                                    .slow_link = false,
                                    .slow_consumer = true,
                                    .messages_per_node = 50});
}

INSTANTIATE_TEST_SUITE_P(Seeds, SvsProperty,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace svs::core
