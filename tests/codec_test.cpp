// Wire-codec tests (DESIGN.md §6): a round-trip property for every
// MessageType and every registered payload/value kind, the measured-bytes
// contract (encoded.size() == wire_size(), always), and decode hardening —
// truncations, bad tags, garbage suffixes and a deterministic byte-mutation
// fuzz loop must throw ContractViolation, never crash.
#include <gtest/gtest.h>

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "consensus/message.hpp"
#include "core/message.hpp"
#include "fd/heartbeat.hpp"
#include "fd/swim.hpp"
#include "net/codec.hpp"
#include "net/dgram.hpp"
#include "obs/kbitmap.hpp"
#include "util/bytes.hpp"
#include "util/contracts.hpp"
#include "workload/item_op.hpp"
#include "sim/random.hpp"

namespace svs::net {
namespace {

using core::DataMessage;
using core::DataMessagePtr;
using core::ViewId;

// A registered test payload with interesting fields (string + varint).
class BlobPayload final : public core::Payload {
 public:
  static constexpr std::uint32_t kKind = 7;

  BlobPayload(std::uint64_t x, std::string s) : x_(x), s_(std::move(s)) {}

  [[nodiscard]] std::uint64_t x() const { return x_; }
  [[nodiscard]] const std::string& s() const { return s_; }

  [[nodiscard]] std::size_t wire_size() const override {
    return util::varint_size(x_) + util::varint_size(s_.size()) + s_.size();
  }
  [[nodiscard]] std::uint32_t payload_kind() const override { return kKind; }

  static void encode(const core::Payload& p, util::ByteWriter& w) {
    const auto& blob = static_cast<const BlobPayload&>(p);
    w.u64(blob.x_);
    w.str(blob.s_);
  }
  static core::PayloadPtr decode(util::ByteReader& r) {
    const std::uint64_t x = r.u64();
    std::string s = r.str();
    return std::make_shared<BlobPayload>(x, std::move(s));
  }

 private:
  std::uint64_t x_;
  std::string s_;
};

// An unregistered kind-0 payload: must survive as a size-preserving opaque.
class NullPayload final : public core::Payload {
 public:
  explicit NullPayload(std::size_t n) : n_(n) {}
  [[nodiscard]] std::size_t wire_size() const override { return n_; }

 private:
  std::size_t n_;
};

struct CodecFixture : ::testing::Test {
  CodecFixture() {
    PayloadCodecRegistry::register_codec(BlobPayload::kKind,
                                         BlobPayload::encode,
                                         BlobPayload::decode);
  }

  /// Encode, check the measured-bytes contract, decode the whole frame.
  static MessagePtr round_trip(const Message& m) {
    const util::Bytes frame = Codec::encode(m);
    EXPECT_EQ(frame.size(), m.wire_size())
        << "encoded size must equal wire_size()";
    const MessagePtr back = Codec::decode(frame);
    EXPECT_EQ(back->type(), m.type());
    EXPECT_EQ(back->wire_size(), m.wire_size())
        << "round trip must preserve the encoded size";
    return back;
  }

  static void expect_data_equal(const DataMessage& a, const DataMessage& b) {
    EXPECT_EQ(a.sender(), b.sender());
    EXPECT_EQ(a.seq(), b.seq());
    EXPECT_EQ(a.view(), b.view());
    EXPECT_EQ(a.annotation(), b.annotation());
    EXPECT_EQ(a.order_key(), b.order_key());
    const bool a_has = a.payload() != nullptr;
    const bool b_has = b.payload() != nullptr;
    ASSERT_EQ(a_has, b_has);
    if (a_has) {
      EXPECT_EQ(a.payload()->payload_kind(), b.payload()->payload_kind());
      EXPECT_EQ(a.payload()->wire_size(), b.payload()->wire_size());
    }
  }

  static DataMessagePtr make_data(std::uint32_t sender, std::uint64_t seq,
                                  obs::Annotation annotation,
                                  core::PayloadPtr payload,
                                  std::uint64_t view = 3) {
    return std::make_shared<DataMessage>(ProcessId(sender), seq, ViewId(view),
                                         std::move(annotation),
                                         std::move(payload));
  }

  /// The annotation corpus: one of each representation.
  static std::vector<obs::Annotation> annotations() {
    obs::KBitmap bm(32);
    bm.set(1);
    bm.set(7);
    bm.set(32);
    return {obs::Annotation::none(), obs::Annotation::item(777),
            obs::Annotation::enumerate({3, 9, 200, 4096}),
            obs::Annotation::kenum(bm)};
  }
};

// ---------------------------------------------------------------------------
// round trips, one per MessageType and payload/value kind
// ---------------------------------------------------------------------------

TEST_F(CodecFixture, DataRoundTripsEveryAnnotationKind) {
  for (const auto& annotation : annotations()) {
    const auto m = make_data(
        5, 12345, annotation,
        std::make_shared<workload::ItemOp>(workload::OpKind::update, 42,
                                           0xDEADBEEFCAFEULL, 17, true));
    const auto back = round_trip(*m);
    ASSERT_EQ(back->type(), MessageType::data);
    expect_data_equal(*m, static_cast<const DataMessage&>(*back));
  }
}

TEST_F(CodecFixture, ItemOpPayloadRoundTripsFieldByField) {
  const auto m = make_data(
      1, 2, obs::Annotation::item(9),
      std::make_shared<workload::ItemOp>(workload::OpKind::destroy, 300, 0, 9,
                                         false));
  const auto back =
      std::static_pointer_cast<const DataMessage>(round_trip(*m));
  const auto* op =
      static_cast<const workload::ItemOp*>(back->payload().get());
  EXPECT_EQ(op->op(), workload::OpKind::destroy);
  EXPECT_EQ(op->item(), 300u);
  EXPECT_EQ(op->value(), 0u);
  EXPECT_EQ(op->round(), 9u);
  EXPECT_FALSE(op->commit());
}

TEST_F(CodecFixture, RegisteredBlobPayloadRoundTrips) {
  const auto m = make_data(
      2, 77, obs::Annotation::none(),
      std::make_shared<BlobPayload>(1ULL << 40, "hello \x01 wire"));
  const auto back =
      std::static_pointer_cast<const DataMessage>(round_trip(*m));
  const auto* blob =
      static_cast<const BlobPayload*>(back->payload().get());
  EXPECT_EQ(blob->x(), 1ULL << 40);
  EXPECT_EQ(blob->s(), "hello \x01 wire");
}

TEST_F(CodecFixture, OpaquePayloadPreservesWireSize) {
  const auto m = make_data(3, 4, obs::Annotation::none(),
                           std::make_shared<NullPayload>(13));
  const auto back =
      std::static_pointer_cast<const DataMessage>(round_trip(*m));
  ASSERT_NE(back->payload(), nullptr);
  EXPECT_EQ(back->payload()->payload_kind(), 0u);
  EXPECT_EQ(back->payload()->wire_size(), 13u);
}

TEST_F(CodecFixture, NullPayloadRoundTrips) {
  const auto m = make_data(3, 4, obs::Annotation::none(), nullptr);
  const auto back =
      std::static_pointer_cast<const DataMessage>(round_trip(*m));
  EXPECT_EQ(back->payload(), nullptr);
}

TEST_F(CodecFixture, InitRoundTrips) {
  const core::InitMessage m(ViewId(6), {ProcessId(2), ProcessId(900)});
  const auto back = round_trip(m);
  const auto& init = static_cast<const core::InitMessage&>(*back);
  EXPECT_EQ(init.view(), ViewId(6));
  EXPECT_EQ(init.leave(),
            (std::vector<ProcessId>{ProcessId(2), ProcessId(900)}));
}

TEST_F(CodecFixture, PredRoundTripsNestedMessages) {
  std::vector<DataMessagePtr> accepted;
  std::uint64_t seq = 100;
  for (const auto& annotation : annotations()) {
    ++seq;
    accepted.push_back(make_data(
        4, seq, annotation,
        std::make_shared<workload::ItemOp>(workload::OpKind::create, seq,
                                           seq * 3, 1, false)));
  }
  const core::PredMessage m(ViewId(3), accepted);
  const auto back = round_trip(m);
  const auto& pred = static_cast<const core::PredMessage&>(*back);
  EXPECT_EQ(pred.view(), ViewId(3));
  ASSERT_EQ(pred.accepted().size(), accepted.size());
  for (std::size_t i = 0; i < accepted.size(); ++i) {
    expect_data_equal(*accepted[i], *pred.accepted()[i]);
    // The wire must not preserve object identity.
    EXPECT_NE(pred.accepted()[i].get(), accepted[i].get());
  }
}

TEST_F(CodecFixture, StabilityRoundTrips) {
  const core::StabilityMessage m(
      ViewId(2), 41,
      {{ProcessId(0), 17}, {ProcessId(3), 0}, {ProcessId(9), 1u << 20}},
      {core::PurgeDebt{42, 44}, core::PurgeDebt{45, 1u << 21}});
  const auto back = round_trip(m);
  const auto& stability = static_cast<const core::StabilityMessage&>(*back);
  EXPECT_EQ(stability.view(), ViewId(2));
  EXPECT_EQ(stability.anchor(), 41u);
  EXPECT_EQ(stability.seen(), m.seen());
  EXPECT_EQ(stability.debts(), m.debts());
}

TEST_F(CodecFixture, StabilityDebtSectionHasExactWireSize) {
  // The debt section's arithmetic, spelled out byte by byte: seq varint
  // plus the positive cover-gap varint per entry (Codec::encode itself
  // asserts wire_size() parity at every encode, so a drift would already
  // throw — this pins the *arithmetic*, not just the consistency).
  const core::StabilityMessage::Debts debts{core::PurgeDebt{1, 2},
                                            core::PurgeDebt{200, 500},
                                            core::PurgeDebt{1000, 20000}};
  const core::StabilityMessage empty_debts(ViewId(7), 3,
                                           {{ProcessId(1), 9}}, {});
  const core::StabilityMessage with_debts(ViewId(7), 3, {{ProcessId(1), 9}},
                                          debts);
  std::size_t expected = 0;
  expected += util::varint_size(1) + util::varint_size(2 - 1);
  expected += util::varint_size(200) + util::varint_size(500 - 200);
  expected += util::varint_size(1000) + util::varint_size(20000 - 1000);
  EXPECT_EQ(with_debts.wire_size(), empty_debts.wire_size() + expected);
  EXPECT_EQ(Codec::encode(with_debts).size(), with_debts.wire_size());
}

TEST_F(CodecFixture, StabilityDebtHardening) {
  const auto frame_with_debts = [](auto&& write_debts) {
    util::ByteWriter w;
    w.u8(static_cast<std::uint8_t>(MessageType::stability));
    w.u64(1);  // view
    w.u64(0);  // anchor
    w.u64(0);  // no seen entries
    write_debts(w);
    return w.take();
  };
  // Non-ascending debt seqs are malformed.
  EXPECT_THROW((void)Codec::decode(frame_with_debts([](util::ByteWriter& w) {
                 w.u64(2);  // two debts
                 w.u64(5);
                 w.u64(1);
                 w.u64(5);  // same seq again
                 w.u64(1);
               })),
               util::ContractViolation);
  // A zero cover gap would claim a message purged itself.
  EXPECT_THROW((void)Codec::decode(frame_with_debts([](util::ByteWriter& w) {
                 w.u64(1);
                 w.u64(5);
                 w.u64(0);
               })),
               util::ContractViolation);
  // A debt count beyond the buffer is rejected before allocation.
  EXPECT_THROW((void)Codec::decode(frame_with_debts([](util::ByteWriter& w) {
                 w.u64(1ULL << 59);
               })),
               util::ContractViolation);
  // A cover gap overflowing uint64 is rejected.
  EXPECT_THROW((void)Codec::decode(frame_with_debts([](util::ByteWriter& w) {
                 w.u64(1);
                 w.u64(0xFFFFFFFFFFFFFFFFULL);  // seq = 2^64 - 1
                 w.u64(2);                      // cover wraps
               })),
               util::ContractViolation);
}

TEST_F(CodecFixture, DataPiggybackRoundTrips) {
  // The optional stability-piggyback section on DATA messages: a rich one
  // (seen entries + debts) and the minimal anchor-only one, both preserving
  // the measured-bytes contract (round_trip checks wire_size parity).
  core::StabilityPiggyback pb;
  pb.anchor = 40;
  pb.seen = {{ProcessId(0), 17}, {ProcessId(3), 0}, {ProcessId(9), 1u << 20}};
  pb.debts = {core::PurgeDebt{42, 44}, core::PurgeDebt{45, 1u << 21}};
  const auto m = std::make_shared<DataMessage>(
      ProcessId(5), 41, ViewId(3), obs::Annotation::item(7),
      std::make_shared<workload::ItemOp>(workload::OpKind::update, 7, 8, 9,
                                         true));
  m->set_piggyback(pb);
  const auto back =
      std::static_pointer_cast<const DataMessage>(round_trip(*m));
  ASSERT_TRUE(back->piggyback().has_value());
  EXPECT_EQ(*back->piggyback(), pb);

  const auto bare = std::make_shared<DataMessage>(
      ProcessId(5), 42, ViewId(3), obs::Annotation::none(), nullptr);
  bare->set_piggyback(core::StabilityPiggyback{});
  const auto bare_back =
      std::static_pointer_cast<const DataMessage>(round_trip(*bare));
  ASSERT_TRUE(bare_back->piggyback().has_value());
  EXPECT_EQ(*bare_back->piggyback(), core::StabilityPiggyback{});

  const auto plain = make_data(5, 43, obs::Annotation::none(), nullptr);
  const auto plain_back =
      std::static_pointer_cast<const DataMessage>(round_trip(*plain));
  EXPECT_FALSE(plain_back->piggyback().has_value());
}

TEST_F(CodecFixture, DataPiggybackHardening) {
  // Hand-built DATA frames with a hostile piggyback section: same decode
  // contract as the standalone stability section (§6 — malformation always
  // throws ContractViolation, never corrupts).
  const auto frame_with_pb = [](auto&& write_pb) {
    util::ByteWriter w;
    w.u8(static_cast<std::uint8_t>(MessageType::data));
    w.u32(1);  // sender
    w.u64(1);  // seq
    w.u64(1);  // view
    w.u8(0);   // AnnotationKind::none
    w.u32(0);  // opaque payload kind
    w.u64(0);  // zero payload bytes
    write_pb(w);
    return w.take();
  };
  // The minimal well-formed section decodes.
  EXPECT_NO_THROW((void)Codec::decode(frame_with_pb([](util::ByteWriter& w) {
    w.u8(1);   // piggyback present
    w.u64(0);  // anchor
    w.u64(0);  // no seen entries
    w.u64(0);  // no debts
  })));
  // Presence byte must be 0 or 1.
  EXPECT_THROW((void)Codec::decode(frame_with_pb([](util::ByteWriter& w) {
                 w.u8(2);
               })),
               util::ContractViolation);
  // Absent-but-trailing and present-but-truncated both throw.
  EXPECT_THROW((void)Codec::decode(frame_with_pb([](util::ByteWriter& w) {
                 w.u8(0);
                 w.u64(0);  // trailing garbage after "absent"
               })),
               util::ContractViolation);
  EXPECT_THROW((void)Codec::decode(frame_with_pb([](util::ByteWriter& w) {
                 w.u8(1);
                 w.u64(0);  // anchor, then nothing
               })),
               util::ContractViolation);
  // Non-ascending piggybacked debt seqs are malformed.
  EXPECT_THROW((void)Codec::decode(frame_with_pb([](util::ByteWriter& w) {
                 w.u8(1);
                 w.u64(0);
                 w.u64(0);
                 w.u64(2);  // two debts
                 w.u64(5);
                 w.u64(1);
                 w.u64(5);  // same seq again
                 w.u64(1);
               })),
               util::ContractViolation);
  // A zero cover gap would claim a message purged itself.
  EXPECT_THROW((void)Codec::decode(frame_with_pb([](util::ByteWriter& w) {
                 w.u8(1);
                 w.u64(0);
                 w.u64(0);
                 w.u64(1);
                 w.u64(5);
                 w.u64(0);
               })),
               util::ContractViolation);
  // Counts beyond the buffer are rejected before allocation.
  EXPECT_THROW((void)Codec::decode(frame_with_pb([](util::ByteWriter& w) {
                 w.u8(1);
                 w.u64(0);
                 w.u64(1ULL << 59);  // seen count
               })),
               util::ContractViolation);
  // A cover gap overflowing uint64 is rejected.
  EXPECT_THROW((void)Codec::decode(frame_with_pb([](util::ByteWriter& w) {
                 w.u8(1);
                 w.u64(0);
                 w.u64(0);
                 w.u64(1);
                 w.u64(0xFFFFFFFFFFFFFFFFULL);  // seq = 2^64 - 1
                 w.u64(2);                      // cover wraps
               })),
               util::ContractViolation);
}

TEST_F(CodecFixture, ConsensusWithProposalValueRoundTrips) {
  std::vector<DataMessagePtr> pred{
      make_data(1, 5, obs::Annotation::item(2),
                std::make_shared<workload::ItemOp>(workload::OpKind::update,
                                                   2, 99, 3, true))};
  const auto value = std::make_shared<core::ProposalValue>(
      core::View(ViewId(4), {ProcessId(0), ProcessId(1), ProcessId(2)}),
      pred);
  const consensus::ConsensusMessage m(consensus::InstanceId(3), 2,
                                      consensus::Phase::propose, value, 1);
  const auto back = round_trip(m);
  const auto& cm = static_cast<const consensus::ConsensusMessage&>(*back);
  EXPECT_EQ(cm.instance(), consensus::InstanceId(3));
  EXPECT_EQ(cm.round(), 2u);
  EXPECT_EQ(cm.phase(), consensus::Phase::propose);
  EXPECT_EQ(cm.timestamp(), 1u);
  const auto decided =
      std::dynamic_pointer_cast<const core::ProposalValue>(cm.value());
  ASSERT_NE(decided, nullptr) << "ProposalValue must round-trip as itself";
  EXPECT_EQ(decided->next_view().id(), ViewId(4));
  EXPECT_EQ(decided->next_view().members(),
            (std::vector<ProcessId>{ProcessId(0), ProcessId(1), ProcessId(2)}));
  ASSERT_EQ(decided->pred_view().size(), 1u);
  expect_data_equal(*pred[0], *decided->pred_view()[0]);
}

TEST_F(CodecFixture, ConsensusWithNullValueRoundTrips) {
  const consensus::ConsensusMessage m(consensus::InstanceId(1), 0,
                                      consensus::Phase::ack, nullptr, 0);
  const auto back = round_trip(m);
  const auto& cm = static_cast<const consensus::ConsensusMessage&>(*back);
  EXPECT_EQ(cm.value(), nullptr);
  EXPECT_EQ(cm.phase(), consensus::Phase::ack);
}

TEST_F(CodecFixture, ConsensusWithOpaqueValuePreservesSize) {
  class IntValue final : public consensus::ValueBase {
   public:
    [[nodiscard]] std::size_t wire_size() const override { return 4; }
  };
  const consensus::ConsensusMessage m(consensus::InstanceId(2), 1,
                                      consensus::Phase::estimate,
                                      std::make_shared<IntValue>(), 0);
  const auto back = round_trip(m);
  const auto& cm = static_cast<const consensus::ConsensusMessage&>(*back);
  ASSERT_NE(cm.value(), nullptr);
  EXPECT_EQ(cm.value()->value_kind(), 0u);
  EXPECT_EQ(cm.value()->wire_size(), 4u);
}

TEST_F(CodecFixture, HeartbeatRoundTrips) {
  const fd::HeartbeatMessage m;
  const auto back = round_trip(m);
  EXPECT_EQ(back->type(), MessageType::heartbeat);
  EXPECT_EQ(m.wire_size(), 1u);
}

/// One update per status, with incarnations probing the varint widths.
fd::SwimUpdates swim_updates_corpus() {
  return {{ProcessId(1), fd::SwimUpdate::Status::alive, 0},
          {ProcessId(200), fd::SwimUpdate::Status::suspect, 1u << 20},
          {ProcessId(3), fd::SwimUpdate::Status::confirm, 7}};
}

TEST_F(CodecFixture, SwimPingRoundTrips) {
  const fd::SwimPingMessage m(0xABCDEF0102ULL, swim_updates_corpus());
  const auto back = round_trip(m);
  const auto& ping = static_cast<const fd::SwimPingMessage&>(*back);
  EXPECT_EQ(ping.nonce(), 0xABCDEF0102ULL);
  EXPECT_EQ(ping.updates(), swim_updates_corpus());

  // The empty piggyback section is the common case on the wire.
  const fd::SwimPingMessage bare(1, {});
  const auto bare_back = round_trip(bare);
  EXPECT_TRUE(
      static_cast<const fd::SwimPingMessage&>(*bare_back).updates().empty());
}

TEST_F(CodecFixture, SwimPingReqRoundTrips) {
  const fd::SwimPingReqMessage m(42, ProcessId(900), swim_updates_corpus());
  const auto back = round_trip(m);
  const auto& req = static_cast<const fd::SwimPingReqMessage&>(*back);
  EXPECT_EQ(req.nonce(), 42u);
  EXPECT_EQ(req.target(), ProcessId(900));
  EXPECT_EQ(req.updates(), swim_updates_corpus());
}

TEST_F(CodecFixture, SwimAckRoundTrips) {
  const fd::SwimAckMessage m(42, ProcessId(5), 1u << 30,
                             swim_updates_corpus());
  const auto back = round_trip(m);
  const auto& ack = static_cast<const fd::SwimAckMessage&>(*back);
  EXPECT_EQ(ack.nonce(), 42u);
  EXPECT_EQ(ack.subject(), ProcessId(5));
  EXPECT_EQ(ack.incarnation(), 1u << 30);
  EXPECT_EQ(ack.updates(), swim_updates_corpus());
}

TEST_F(CodecFixture, SwimUpdateHardening) {
  const auto ping_with_updates = [](auto&& write_updates) {
    util::ByteWriter w;
    w.u8(static_cast<std::uint8_t>(MessageType::swim_ping));
    w.u64(9);  // nonce
    write_updates(w);
    return w.take();
  };
  // A status byte past confirm is malformed.
  EXPECT_THROW(
      (void)Codec::decode(ping_with_updates([](util::ByteWriter& w) {
        w.u64(1);
        w.u32(1);  // member
        w.u8(3);   // no such status
        w.u64(0);
      })),
      util::ContractViolation);
  // An update count beyond the buffer is rejected before allocation.
  EXPECT_THROW(
      (void)Codec::decode(ping_with_updates([](util::ByteWriter& w) {
        w.u64(1ULL << 59);
      })),
      util::ContractViolation);
}

TEST_F(CodecFixture, StabilityDigestRoundTrips) {
  core::StabilityDigestMessage::Rows rows;
  rows.push_back({ProcessId(0), 41,
                  {{ProcessId(0), 17}, {ProcessId(3), 0}},
                  {core::PurgeDebt{42, 44}, core::PurgeDebt{45, 1u << 21}}});
  // A relayed row may usefully carry a frontier before its anchor is known.
  rows.push_back({ProcessId(9), std::nullopt, {{ProcessId(1), 5}}, {}});
  const core::StabilityDigestMessage m(ViewId(3), rows);
  const auto back = round_trip(m);
  const auto& digest = static_cast<const core::StabilityDigestMessage&>(*back);
  EXPECT_EQ(digest.view(), ViewId(3));
  EXPECT_EQ(digest.rows(), rows);
}

TEST_F(CodecFixture, StabilityDigestHardening) {
  const auto digest_with_row = [](auto&& write_row) {
    util::ByteWriter w;
    w.u8(static_cast<std::uint8_t>(MessageType::stability_digest));
    w.u64(1);  // view
    w.u64(1);  // one row
    write_row(w);
    return w.take();
  };
  // The anchor-presence flag must be 0 or 1.
  EXPECT_THROW((void)Codec::decode(digest_with_row([](util::ByteWriter& w) {
                 w.u32(0);  // origin
                 w.u8(2);   // bad presence flag
               })),
               util::ContractViolation);
  // Non-ascending per-row debt seqs are malformed.
  EXPECT_THROW((void)Codec::decode(digest_with_row([](util::ByteWriter& w) {
                 w.u32(0);
                 w.u8(0);   // no anchor
                 w.u64(0);  // no seen entries
                 w.u64(2);  // two debts
                 w.u64(5);
                 w.u64(1);
                 w.u64(5);  // same seq again
                 w.u64(1);
               })),
               util::ContractViolation);
  // A zero cover gap would claim a message purged itself.
  EXPECT_THROW((void)Codec::decode(digest_with_row([](util::ByteWriter& w) {
                 w.u32(0);
                 w.u8(0);
                 w.u64(0);
                 w.u64(1);
                 w.u64(5);
                 w.u64(0);
               })),
               util::ContractViolation);
  // Row / seen / debt counts beyond the buffer are rejected before
  // allocation.
  {
    util::ByteWriter w;
    w.u8(static_cast<std::uint8_t>(MessageType::stability_digest));
    w.u64(1);
    w.u64(1ULL << 60);  // row count
    EXPECT_THROW((void)Codec::decode(w.data()), util::ContractViolation);
  }
  EXPECT_THROW((void)Codec::decode(digest_with_row([](util::ByteWriter& w) {
                 w.u32(0);
                 w.u8(0);
                 w.u64(1ULL << 59);  // seen count
               })),
               util::ContractViolation);
  EXPECT_THROW((void)Codec::decode(digest_with_row([](util::ByteWriter& w) {
                 w.u32(0);
                 w.u8(0);
                 w.u64(0);
                 w.u64(1ULL << 59);  // debt count
               })),
               util::ContractViolation);
}

// ---------------------------------------------------------------------------
// the measured-bytes contract
// ---------------------------------------------------------------------------

TEST_F(CodecFixture, EncodeRejectsUnencodableTypes) {
  class OtherMessage final : public Message {
   public:
    OtherMessage() : Message(MessageType::other) {}
    [[nodiscard]] std::size_t compute_wire_size() const override { return 4; }
  };
  const OtherMessage m;
  EXPECT_THROW((void)Codec::encode(m), util::ContractViolation);
}

TEST_F(CodecFixture, EncodeRejectsUnregisteredPayloadKinds) {
  class StrayPayload final : public core::Payload {
   public:
    [[nodiscard]] std::size_t wire_size() const override { return 2; }
    [[nodiscard]] std::uint32_t payload_kind() const override { return 999; }
  };
  const auto m = make_data(0, 1, obs::Annotation::none(),
                           std::make_shared<StrayPayload>());
  EXPECT_THROW((void)Codec::encode(*m), util::ContractViolation);
}

// ---------------------------------------------------------------------------
// decode hardening
// ---------------------------------------------------------------------------

/// A representative corpus: one valid encoding per shape.
std::vector<util::Bytes> corpus() {
  std::vector<util::Bytes> out;
  obs::KBitmap bm(16);
  bm.set(2);
  bm.set(16);
  const auto data = std::make_shared<DataMessage>(
      ProcessId(3), 41, ViewId(2), obs::Annotation::kenum(bm),
      std::make_shared<workload::ItemOp>(workload::OpKind::update, 11, 12, 13,
                                         true));
  out.push_back(Codec::encode(*data));
  const auto pb_data = std::make_shared<DataMessage>(
      ProcessId(4), 43, ViewId(2), obs::Annotation::none(),
      std::make_shared<workload::ItemOp>(workload::OpKind::update, 1, 2, 3,
                                         false));
  core::StabilityPiggyback pb;
  pb.anchor = 4;
  pb.seen = {{ProcessId(0), 5}, {ProcessId(1), 7}};
  pb.debts = {core::PurgeDebt{5, 6}, core::PurgeDebt{8, 11}};
  pb_data->set_piggyback(std::move(pb));
  out.push_back(Codec::encode(*pb_data));
  out.push_back(Codec::encode(core::InitMessage(ViewId(1), {ProcessId(4)})));
  out.push_back(Codec::encode(core::PredMessage(ViewId(2), {data})));
  out.push_back(Codec::encode(core::StabilityMessage(
      ViewId(2), 4, {{ProcessId(0), 5}, {ProcessId(1), 7}},
      {core::PurgeDebt{5, 6}, core::PurgeDebt{8, 11}})));
  out.push_back(Codec::encode(consensus::ConsensusMessage(
      consensus::InstanceId(2), 1, consensus::Phase::propose,
      std::make_shared<core::ProposalValue>(
          core::View(ViewId(3), {ProcessId(0), ProcessId(1)}),
          std::vector<DataMessagePtr>{data}),
      1)));
  out.push_back(Codec::encode(fd::HeartbeatMessage()));
  out.push_back(Codec::encode(fd::SwimPingMessage(9, swim_updates_corpus())));
  out.push_back(Codec::encode(
      fd::SwimPingReqMessage(10, ProcessId(2), swim_updates_corpus())));
  out.push_back(Codec::encode(
      fd::SwimAckMessage(9, ProcessId(3), 4, swim_updates_corpus())));
  out.push_back(Codec::encode(core::StabilityDigestMessage(
      ViewId(2),
      {{ProcessId(0), 41, {{ProcessId(0), 17}}, {core::PurgeDebt{42, 44}}},
       {ProcessId(1), std::nullopt, {{ProcessId(1), 5}}, {}}})));
  return out;
}

TEST_F(CodecFixture, EveryStrictPrefixThrows) {
  for (const auto& frame : corpus()) {
    for (std::size_t cut = 0; cut < frame.size(); ++cut) {
      const util::Bytes prefix(frame.begin(),
                               frame.begin() + static_cast<long>(cut));
      EXPECT_THROW((void)Codec::decode(prefix), util::ContractViolation)
          << "prefix of length " << cut << " of a " << frame.size()
          << "-byte frame";
    }
  }
}

TEST_F(CodecFixture, GarbageSuffixThrows) {
  for (const auto& frame : corpus()) {
    util::Bytes extended = frame;
    extended.push_back(0x00);
    EXPECT_THROW((void)Codec::decode(extended), util::ContractViolation);
  }
}

TEST_F(CodecFixture, BadTypeTagThrows) {
  // 11 is the first tag past stability_digest, the highest valid type.
  for (const std::uint8_t tag : {std::uint8_t{0}, std::uint8_t{11},
                                 std::uint8_t{0x80}, std::uint8_t{0xFF}}) {
    util::Bytes frame = corpus().front();
    frame[0] = tag;
    EXPECT_THROW((void)Codec::decode(frame), util::ContractViolation);
  }
}

TEST_F(CodecFixture, UnknownPayloadKindThrows) {
  // data message, sender 1, seq 1, view 1, annotation none, kind 999.
  util::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(MessageType::data));
  w.u32(1);
  w.u64(1);
  w.u64(1);
  w.u8(0);  // AnnotationKind::none
  w.u32(999);
  w.u64(0);
  EXPECT_THROW((void)Codec::decode(w.data()), util::ContractViolation);
}

TEST_F(CodecFixture, PayloadLengthOverrunThrows) {
  util::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(MessageType::data));
  w.u32(1);
  w.u64(1);
  w.u64(1);
  w.u8(0);   // AnnotationKind::none
  w.u32(0);  // opaque
  w.u64(100);  // claims 100 payload bytes; none follow
  EXPECT_THROW((void)Codec::decode(w.data()), util::ContractViolation);
}

TEST_F(CodecFixture, HugeCountsAreRejectedNotAllocated) {
  // A stability message claiming ~2^60 entries must be rejected by the
  // bounds check, not by attempting the allocation.
  util::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(MessageType::stability));
  w.u64(1);
  w.u64(0);  // anchor
  w.u64(1ULL << 60);
  EXPECT_THROW((void)Codec::decode(w.data()), util::ContractViolation);

  // Same for a k-enumeration bitmap with an absurd horizon.
  util::ByteWriter w2;
  w2.u8(static_cast<std::uint8_t>(MessageType::data));
  w2.u32(1);
  w2.u64(1);
  w2.u64(1);
  w2.u8(3);            // AnnotationKind::k_enum
  w2.u64(1ULL << 50);  // horizon
  EXPECT_THROW((void)Codec::decode(w2.data()), util::ContractViolation);
}

TEST_F(CodecFixture, ByteMutationFuzzNeverCrashes) {
  // Deterministic mutation fuzz: any single- or multi-byte corruption of a
  // valid frame either decodes to *something* or throws ContractViolation.
  // LogicViolation or UB would mean a decoder bug (the ASan/UBSan CI job
  // runs this same loop under sanitizers).
  svs::sim::Rng rng(0x5eed1235ULL);
  const auto next_random = [&rng] { return rng.next_u64(); };
  const auto frames = corpus();
  int decoded_ok = 0;
  int rejected = 0;
  for (int round = 0; round < 4000; ++round) {
    util::Bytes frame = frames[next_random() % frames.size()];
    const int flips = 1 + static_cast<int>(next_random() % 4);
    for (int f = 0; f < flips; ++f) {
      frame[next_random() % frame.size()] ^=
          static_cast<std::uint8_t>(1U << (next_random() % 8));
    }
    try {
      const MessagePtr m = Codec::decode(frame);
      ASSERT_NE(m, nullptr);
      ++decoded_ok;
    } catch (const util::ContractViolation&) {
      ++rejected;
    }
  }
  // Both outcomes must actually occur, or the fuzz is vacuous.
  EXPECT_GT(decoded_ok, 0);
  EXPECT_GT(rejected, 0);
}

// ---------------------------------------------------------------------------
// datagram-header hardening (the UDP lane's framing, net/dgram.hpp)
// ---------------------------------------------------------------------------

/// One valid datagram per kind, with every optional feature exercised:
/// delta-coded sack ranges, verdict piggyback, window probe, roster list.
std::vector<util::Bytes> dgram_corpus() {
  AckBlock rich;
  rich.cum = 9;
  rich.sacks = {{11, 13}, {17, 17}, {20, 24}};
  rich.window = 32;
  rich.verdict_valid = true;
  rich.verdict_accept = true;
  rich.verdict_seq = 9;

  AckBlock probe;
  probe.cum = 3;
  probe.window = 0;
  probe.window_probe = true;

  const auto inner = std::make_shared<DataMessage>(
      ProcessId(1), 5, ViewId(1), obs::Annotation::item(2),
      std::make_shared<workload::ItemOp>(workload::OpKind::update, 2, 3, 4,
                                         false));
  std::vector<util::Bytes> out;
  out.push_back(
      Datagram::encode_data(1, 2, 0, 42, rich, Codec::encode(*inner)));
  out.push_back(Datagram::encode_ack(2, 1, 1, probe));
  out.push_back(Datagram::encode_join(7, 40'123));
  out.push_back(Datagram::encode_roster({{0, 9'000}, {1, 9'001}, {2, 9'002}}));
  // A batched data datagram (three frames under one link seq), so the
  // prefix/suffix/mutation sweeps below also hammer the batch framing.
  std::vector<FramePtr> batch;
  for (std::uint64_t seq = 6; seq <= 8; ++seq) {
    batch.push_back(Codec::shared_frame(DataMessage(
        ProcessId(1), seq, ViewId(1), obs::Annotation::none(), nullptr)));
  }
  out.push_back(Datagram::encode_data(
      1, 2, 0, 43, rich, std::span<const FramePtr>(batch.data(), batch.size())));
  return out;
}

TEST_F(CodecFixture, DatagramCorpusRoundTrips) {
  const auto frames = dgram_corpus();
  {
    const Datagram d = Datagram::decode(frames[0]);
    EXPECT_EQ(d.kind, Datagram::Kind::data);
    EXPECT_EQ(d.from, 1u);
    EXPECT_EQ(d.to, 2u);
    EXPECT_EQ(d.lane, 0);
    EXPECT_EQ(d.seq, 42u);
    EXPECT_EQ(d.ack.cum, 9u);
    ASSERT_EQ(d.ack.sacks.size(), 3u);
    EXPECT_EQ(d.ack.sacks[2].first, 20u);
    EXPECT_EQ(d.ack.sacks[2].last, 24u);
    EXPECT_TRUE(d.ack.verdict_valid);
    EXPECT_TRUE(d.ack.verdict_accept);
    EXPECT_EQ(d.ack.verdict_seq, 9u);
    // The payload is a complete codec frame: it must decode in turn.
    ASSERT_EQ(d.payloads.size(), 1u);
    const MessagePtr m = Codec::decode(d.payloads[0]);
    ASSERT_EQ(m->type(), MessageType::data);
    EXPECT_EQ(static_cast<const DataMessage&>(*m).seq(), 5u);
  }
  {
    // The batched datagram: frame order is preserved, every frame decodes.
    const Datagram d = Datagram::decode(frames[4]);
    EXPECT_EQ(d.kind, Datagram::Kind::data);
    EXPECT_EQ(d.seq, 43u);
    ASSERT_EQ(d.payloads.size(), 3u);
    for (std::size_t i = 0; i < d.payloads.size(); ++i) {
      const MessagePtr m = Codec::decode(d.payloads[i]);
      ASSERT_EQ(m->type(), MessageType::data);
      EXPECT_EQ(static_cast<const DataMessage&>(*m).seq(), 6u + i);
    }
  }
  {
    const Datagram d = Datagram::decode(frames[1]);
    EXPECT_EQ(d.kind, Datagram::Kind::ack);
    EXPECT_TRUE(d.ack.window_probe);
    EXPECT_EQ(d.ack.window, 0u);
    EXPECT_FALSE(d.ack.verdict_valid);
  }
  {
    const Datagram d = Datagram::decode(frames[2]);
    EXPECT_EQ(d.kind, Datagram::Kind::join);
    EXPECT_EQ(d.join_id, 7u);
    EXPECT_EQ(d.join_port, 40'123);
  }
  {
    const Datagram d = Datagram::decode(frames[3]);
    EXPECT_EQ(d.kind, Datagram::Kind::roster);
    ASSERT_EQ(d.roster.size(), 3u);
    EXPECT_EQ(d.roster[2].first, 2u);
    EXPECT_EQ(d.roster[2].second, 9'002);
  }
}

TEST_F(CodecFixture, DatagramBatchBoundsThrow) {
  // Hand-built data datagrams probing the batch framing limits: the frame
  // count must be 1..kMaxBatchFrames, every length must land inside the
  // datagram, and the frames must fill it exactly.
  const auto data_dgram = [](auto&& write_body) {
    util::ByteWriter w;
    w.u8(Datagram::kMagic);
    w.u8(1);   // Kind::data
    w.u32(1);  // from
    w.u32(2);  // to
    w.u8(0);   // lane
    w.u64(7);  // link seq
    w.u64(0);  // ack.cum
    w.u64(0);  // no sack ranges
    w.u32(8);  // window
    w.u8(0);   // flags
    w.u64(0);  // verdict_seq
    write_body(w);
    return w.take();
  };
  // A batch of two one-byte frames is well-formed at this layer.
  EXPECT_NO_THROW((void)Datagram::decode(data_dgram([](util::ByteWriter& w) {
    w.u64(2);
    w.u64(1);
    w.u8(0xAA);
    w.u64(1);
    w.u8(0xBB);
  })));
  // Zero frames: a data datagram must carry at least one.
  EXPECT_THROW((void)Datagram::decode(data_dgram([](util::ByteWriter& w) {
                 w.u64(0);
               })),
               util::ContractViolation);
  // Count above kMaxBatchFrames is rejected before any allocation.
  EXPECT_THROW((void)Datagram::decode(data_dgram([](util::ByteWriter& w) {
                 w.u64(Datagram::kMaxBatchFrames + 1);
               })),
               util::ContractViolation);
  // A frame length reaching past the end of the datagram.
  EXPECT_THROW((void)Datagram::decode(data_dgram([](util::ByteWriter& w) {
                 w.u64(1);
                 w.u64(9);
                 w.u8(0xAA);  // only one byte actually present
               })),
               util::ContractViolation);
  // Zero-length frames cannot occur (codec frames are never empty).
  EXPECT_THROW((void)Datagram::decode(data_dgram([](util::ByteWriter& w) {
                 w.u64(1);
                 w.u64(0);
               })),
               util::ContractViolation);
  // Under-fill: bytes left over after the declared frames.
  EXPECT_THROW((void)Datagram::decode(data_dgram([](util::ByteWriter& w) {
                 w.u64(1);
                 w.u64(1);
                 w.u8(0xAA);
                 w.u8(0xFF);  // trailing byte no frame claims
               })),
               util::ContractViolation);

  // Encode-side split bounds: empty, oversize, and null-frame batches are
  // programming errors, caught as contract violations.
  AckBlock ack;
  ack.window = 8;
  const auto frame = std::make_shared<const util::Bytes>(util::Bytes{0x01});
  EXPECT_THROW((void)Datagram::encode_data(1, 2, 0, 7, ack,
                                           std::span<const FramePtr>{}),
               util::ContractViolation);
  const std::vector<FramePtr> oversize(Datagram::kMaxBatchFrames + 1, frame);
  EXPECT_THROW(
      (void)Datagram::encode_data(
          1, 2, 0, 7, ack,
          std::span<const FramePtr>(oversize.data(), oversize.size())),
      util::ContractViolation);
  const std::vector<FramePtr> with_null{frame, nullptr};
  EXPECT_THROW(
      (void)Datagram::encode_data(
          1, 2, 0, 7, ack,
          std::span<const FramePtr>(with_null.data(), with_null.size())),
      util::ContractViolation);
}

TEST_F(CodecFixture, DatagramEveryStrictPrefixThrows) {
  for (const auto& frame : dgram_corpus()) {
    for (std::size_t cut = 0; cut < frame.size(); ++cut) {
      const util::Bytes prefix(frame.begin(),
                               frame.begin() + static_cast<long>(cut));
      EXPECT_THROW((void)Datagram::decode(prefix), util::ContractViolation)
          << "prefix of length " << cut << " of a " << frame.size()
          << "-byte datagram";
    }
  }
}

TEST_F(CodecFixture, DatagramGarbageSuffixAndBadHeaderThrow) {
  for (const auto& frame : dgram_corpus()) {
    util::Bytes extended = frame;
    extended.push_back(0x00);
    EXPECT_THROW((void)Datagram::decode(extended), util::ContractViolation);

    util::Bytes bad_magic = frame;
    bad_magic[0] = 0xD7;
    EXPECT_THROW((void)Datagram::decode(bad_magic), util::ContractViolation);

    util::Bytes bad_kind = frame;
    bad_kind[1] = 0x09;
    EXPECT_THROW((void)Datagram::decode(bad_kind), util::ContractViolation);
  }
  EXPECT_THROW((void)Datagram::decode(util::Bytes{}), util::ContractViolation);
}

TEST_F(CodecFixture, DatagramByteMutationFuzzNeverCrashes) {
  // Same discipline as the codec fuzz: arbitrary byte corruption of a lane
  // datagram either decodes or throws ContractViolation — never undefined
  // behaviour, never a LogicViolation.  This is the surface a hostile
  // localhost process can actually reach.
  svs::sim::Rng rng(0xD6D6'F011ULL);
  const auto frames = dgram_corpus();
  int decoded_ok = 0;
  int rejected = 0;
  for (int round = 0; round < 4000; ++round) {
    util::Bytes frame = frames[rng.next_u64() % frames.size()];
    const int flips = 1 + static_cast<int>(rng.next_u64() % 4);
    for (int f = 0; f < flips; ++f) {
      frame[rng.next_u64() % frame.size()] ^=
          static_cast<std::uint8_t>(1U << (rng.next_u64() % 8));
    }
    try {
      const Datagram d = Datagram::decode(frame);
      (void)d;
      ++decoded_ok;
    } catch (const util::ContractViolation&) {
      ++rejected;
    }
  }
  EXPECT_GT(decoded_ok, 0);
  EXPECT_GT(rejected, 0);
}

}  // namespace
}  // namespace svs::net
