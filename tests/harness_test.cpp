// Tests for the workload harness pieces (trace producer, consumers) and the
// heartbeat-detector group wiring.
#include <gtest/gtest.h>

#include <memory>

#include "core/group.hpp"
#include "obs/relation.hpp"
#include "workload/consumer.hpp"
#include "workload/game_generator.hpp"
#include "workload/producer.hpp"

namespace svs::workload {
namespace {

Trace tiny_trace(std::size_t rounds = 100, std::uint64_t seed = 1) {
  GameTraceGenerator::Config cfg;
  cfg.seed = seed;
  return GameTraceGenerator(cfg).generate(rounds);
}

core::Group::Config group_config() {
  core::Group::Config cfg;
  cfg.size = 3;
  cfg.node.relation = std::make_shared<obs::KEnumRelation>();
  return cfg;
}

TEST(TraceProducer, SendsEverythingOnScheduleWhenUnconstrained) {
  sim::Simulator sim;
  core::Group g(sim, group_config());
  const auto trace = tiny_trace();
  TraceProducer producer(sim, g.node(0), trace);
  bool done_fired = false;
  producer.start([&] { done_fired = true; });
  sim.run();
  EXPECT_TRUE(producer.done());
  EXPECT_TRUE(done_fired);
  EXPECT_EQ(producer.sent(), trace.messages().size());
  EXPECT_EQ(producer.blocked_time(), sim::Duration::zero());
  EXPECT_DOUBLE_EQ(producer.idle_fraction(), 0.0);
  // The whole trace duration elapsed in virtual time.
  EXPECT_GE(sim.now().as_seconds(), trace.messages().back().at.as_seconds());
}

TEST(TraceProducer, AccumulatesBlockedTimeUnderFlowControl) {
  sim::Simulator sim;
  auto cfg = group_config();
  cfg.node.delivery_capacity = 4;
  cfg.node.out_capacity = 4;
  cfg.node.purge_delivery_queue = false;  // reliable: blockage guaranteed
  cfg.node.purge_outgoing = false;
  core::Group g(sim, cfg);
  // The producer's own copies must not bind: drain node 0 instantly.
  InstantConsumer self_drain(sim, g.node(0));
  self_drain.start();
  // Slow consumer on node 2, nothing on node 1 — node 1 saturates.
  RateConsumer slow(sim, g.node(2), 10.0);
  slow.start();

  const auto trace = tiny_trace(400);
  TraceProducer producer(sim, g.node(0), trace);
  producer.start();
  sim.run_until(sim.now() + sim::Duration::seconds(5.0));
  EXPECT_TRUE(producer.currently_blocked());
  EXPECT_GT(producer.idle_fraction(), 0.2);
  EXPECT_LT(producer.sent(), trace.messages().size());
}

TEST(TraceProducer, StartTwiceRejected) {
  sim::Simulator sim;
  core::Group g(sim, group_config());
  const auto trace = tiny_trace();
  TraceProducer producer(sim, g.node(0), trace);
  producer.start();
  EXPECT_THROW(producer.start(), util::ContractViolation);
}

TEST(RateConsumer, ConsumesAtConfiguredRate) {
  sim::Simulator sim;
  core::Group g(sim, group_config());
  // Preload 100 messages.
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(g.node(0).multicast(
        std::make_shared<ItemOp>(OpKind::update, 1, i, 0, true),
        obs::Annotation::none()));
  }
  sim.run();
  RateConsumer consumer(sim, g.node(1), 50.0);  // 50 msg/s
  consumer.start();
  sim.run_until(sim.now() + sim::Duration::seconds(1.0));
  // ~50 consumed after one second (+1 for the immediate first take and the
  // view notification).
  EXPECT_GE(consumer.consumed(), 48u);
  EXPECT_LE(consumer.consumed(), 55u);
  sim.run_until(sim.now() + sim::Duration::seconds(2.0));
  EXPECT_EQ(consumer.consumed(), 101u);  // everything, incl. view marker
}

TEST(RateConsumer, StopAndResume) {
  sim::Simulator sim;
  core::Group g(sim, group_config());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(g.node(0).multicast(
        std::make_shared<ItemOp>(OpKind::update, 1, i, 0, true),
        obs::Annotation::none()));
  }
  sim.run();
  RateConsumer consumer(sim, g.node(1), 1000.0);
  consumer.start();
  consumer.stop();
  const auto at_stop = consumer.consumed();
  sim.run_until(sim.now() + sim::Duration::seconds(1.0));
  EXPECT_EQ(consumer.consumed(), at_stop);  // fully stopped
  consumer.resume();
  sim.run();
  EXPECT_EQ(consumer.consumed(), 21u);
  EXPECT_THROW(consumer.resume(), util::ContractViolation);
}

TEST(InstantConsumer, DrainsAsMessagesArrive) {
  sim::Simulator sim;
  core::Group g(sim, group_config());
  InstantConsumer consumer(sim, g.node(1));
  std::uint64_t data_seen = 0;
  consumer.set_sink([&](const core::Delivery& d) {
    if (std::holds_alternative<core::DataDelivery>(d)) ++data_seen;
  });
  consumer.start();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(g.node(0).multicast(
        std::make_shared<ItemOp>(OpKind::update, 1, i, 0, true),
        obs::Annotation::none()));
    sim.run();
    EXPECT_EQ(g.node(1).delivery_queue_length(), 0u);  // kept empty
  }
  EXPECT_EQ(data_seen, 10u);
}

TEST(HeartbeatGroup, BringUpAndCrashExclusion) {
  // The full stack on the message-based failure detector instead of the
  // oracle: heartbeats flow over the control lane, a crash is detected by
  // timeout, and the membership policy excludes the dead member.
  sim::Simulator sim;
  core::Group::Config cfg;
  cfg.size = 3;
  cfg.node.relation = std::make_shared<obs::KEnumRelation>();
  cfg.fd_kind = core::Group::FdKind::heartbeat;
  cfg.heartbeat.interval = sim::Duration::millis(20);
  cfg.heartbeat.initial_timeout = sim::Duration::millis(120);
  core::Group g(sim, cfg);

  ASSERT_TRUE(g.node(0).multicast(
      std::make_shared<ItemOp>(OpKind::update, 1, 1, 0, true),
      obs::Annotation::none()));
  sim.run_until(sim.now() + sim::Duration::seconds(1.0));
  EXPECT_EQ(g.node(2).delivery_data_count(), 1u);
  EXPECT_FALSE(g.detector(0).suspects(g.pid(1)));

  g.crash(2);
  sim.run_until(sim.now() + sim::Duration::seconds(2.0));
  EXPECT_EQ(g.node(0).current_view().id(), core::ViewId(1));
  EXPECT_FALSE(g.node(0).current_view().contains(g.pid(2)));
  EXPECT_EQ(g.node(1).current_view().id(), core::ViewId(1));
}

TEST(HeartbeatGroup, SurvivesTransientLinkSlowdownWithoutExclusion) {
  // A short network perturbation causes a false suspicion; the adaptive
  // timeout revokes it before the grace period acts, so nobody is expelled
  // — the scenario §1 complains about ("transient performance perturbations
  // may result in excessive reconfigurations").
  sim::Simulator sim;
  core::Group::Config cfg;
  cfg.size = 3;
  cfg.node.relation = std::make_shared<obs::KEnumRelation>();
  cfg.fd_kind = core::Group::FdKind::heartbeat;
  cfg.heartbeat.interval = sim::Duration::millis(20);
  cfg.heartbeat.initial_timeout = sim::Duration::millis(120);
  cfg.membership.suspicion_grace = sim::Duration::millis(400);
  core::Group g(sim, cfg);
  sim.run_until(sim.now() + sim::Duration::millis(500));

  // 200 ms of extra delay on every link out of p2.
  for (const std::size_t to : {0u, 1u}) {
    g.network().set_link_slowdown(g.pid(2), g.pid(to),
                                  sim::Duration::millis(200));
  }
  sim.run_until(sim.now() + sim::Duration::millis(250));
  for (const std::size_t to : {0u, 1u}) {
    g.network().set_link_slowdown(g.pid(2), g.pid(to), sim::Duration::zero());
  }
  sim.run_until(sim.now() + sim::Duration::seconds(3.0));

  EXPECT_EQ(g.node(0).current_view().id(), core::ViewId(0));  // no change
  EXPECT_TRUE(g.node(0).current_view().contains(g.pid(2)));
  EXPECT_FALSE(g.node(2).excluded());
}

}  // namespace
}  // namespace svs::workload
