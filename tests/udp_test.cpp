// UDP backend tests: the reliable-delivery lane as a pure state machine
// (ReliableLink), the seeded socket-boundary loss model, the all-local
// group under heavy forced datagram loss (must converge with *zero*
// protocol-level loss and a history bit-identical to the sim backend), an
// SO_RCVBUF-starved kernel-drop stress, and the distributed mode's flood
// recovery and inbound-backpressure machinery (window shrink, zero-window
// probes, resume()).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "core/group.hpp"
#include "core/message.hpp"
#include "net/dgram.hpp"
#include "net/udp.hpp"
#include "net/udp_transport.hpp"
#include "obs/relation.hpp"
#include "runtime/real_time.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "util/bytes.hpp"
#include "workload/consumer.hpp"
#include "workload/item_op.hpp"

namespace svs::net {
namespace {

using core::Delivery;
using core::ViewId;

FramePtr frame_bytes(std::initializer_list<std::uint8_t> bytes) {
  return std::make_shared<const util::Bytes>(bytes);
}

/// A single-frame receive batch (ReliableLink::accept takes the whole
/// batch that rode under one link seq).
std::vector<util::Bytes> one(std::initializer_list<std::uint8_t> bytes) {
  return {util::Bytes(bytes)};
}

ReliableLink::Config small_link(std::uint32_t window, std::int64_t rto_base,
                                std::int64_t rto_max,
                                std::uint32_t max_retries) {
  ReliableLink::Config c;
  c.window = window;
  c.rto_base_us = rto_base;
  c.rto_max_us = rto_max;
  c.max_retries = max_retries;
  return c;
}

// ---------------------------------------------------------------------------
// ReliableLink: sender half
// ---------------------------------------------------------------------------

TEST(ReliableLink, WindowGatingAndCumulativePlusSelectiveAcks) {
  UdpLaneStats stats;
  ReliableLink link(small_link(4, 1'000, 8'000, 10),
                    sim::Rng::stream(1, 1), stats);

  EXPECT_TRUE(link.can_send());
  for (std::uint64_t i = 1; i <= 4; ++i) {
    EXPECT_EQ(link.stage(frame_bytes({std::uint8_t(i)}), 0), i);
  }
  EXPECT_FALSE(link.can_send()) << "window of 4 must gate the 5th frame";
  EXPECT_EQ(link.in_flight(), 4u);
  EXPECT_FALSE(link.all_acked());

  // Cumulative ack retires the prefix.
  AckBlock cum;
  cum.cum = 2;
  cum.window = 4;
  link.on_ack(cum);
  EXPECT_EQ(link.in_flight(), 2u);
  EXPECT_TRUE(link.can_send());
  EXPECT_EQ(link.frames_of(2), nullptr);
  ASSERT_NE(link.frames_of(3), nullptr);

  // Selective ack retires a hole-straddling frame, leaving the hole.
  AckBlock sack;
  sack.cum = 2;
  sack.window = 4;
  sack.sacks.push_back(AckBlock::Range{4, 4});
  link.on_ack(sack);
  EXPECT_EQ(link.in_flight(), 1u);
  ASSERT_NE(link.frames_of(3), nullptr);
  EXPECT_EQ(link.frames_of(4), nullptr);

  // The peer's advertised window co-gates the sender.
  AckBlock closed;
  closed.cum = 3;
  closed.window = 0;
  link.on_ack(closed);
  EXPECT_TRUE(link.all_acked());
  EXPECT_EQ(link.peer_window(), 0u);
  EXPECT_FALSE(link.can_send()) << "zero advertised window closes the link";
}

TEST(ReliableLink, ExponentialBackoffThenDeathAfterRetryBudget) {
  UdpLaneStats stats;
  ReliableLink link(small_link(8, 1'000, 4'000, 3),
                    sim::Rng::stream(2, 7), stats);
  link.stage(frame_bytes({0xaa}), 0);
  // First deadline is base-RTO +/- 25% jitter.
  EXPECT_GE(link.next_deadline(), 750);
  EXPECT_LE(link.next_deadline(), 1'250);

  std::vector<std::uint64_t> due;
  std::int64_t now = 2'000;
  for (std::uint32_t retry = 1; retry <= 3; ++retry) {
    due.clear();
    link.collect_due(now, due);
    ASSERT_EQ(due, std::vector<std::uint64_t>{1}) << "retry " << retry;
    EXPECT_FALSE(link.dead());
    // Backoff doubles up to the cap; jitter stays within +/- 25%.
    const std::int64_t rto =
        std::min<std::int64_t>(1'000 << retry, 4'000);
    EXPECT_GE(link.next_deadline(), now + rto - rto / 4);
    EXPECT_LE(link.next_deadline(), now + rto + rto / 4);
    now += 3 * rto;
  }
  EXPECT_EQ(stats.retransmissions, 3u);

  // The fourth expiry exhausts the budget: link dead, window dropped.
  due.clear();
  link.collect_due(now, due);
  EXPECT_TRUE(due.empty());
  EXPECT_TRUE(link.dead());
  EXPECT_TRUE(link.all_acked());
  EXPECT_FALSE(link.can_send());
  EXPECT_EQ(stats.link_resets, 1u);
}

// ---------------------------------------------------------------------------
// ReliableLink: receiver half
// ---------------------------------------------------------------------------

TEST(ReliableLink, FrontierReorderingAndDuplicateSuppression) {
  UdpLaneStats stats;
  ReliableLink link(small_link(8, 1'000, 8'000, 10),
                    sim::Rng::stream(3, 3), stats);

  // Out-of-order arrival stashes; nothing is ready until the frontier moves.
  EXPECT_TRUE(link.accept(2, one({2})));
  std::uint64_t seq = 0;
  util::Bytes payload;
  EXPECT_FALSE(link.next_ready(seq, payload));
  EXPECT_EQ(link.frontier(), 0u);

  // The gap fill releases the contiguous run, in link order.
  EXPECT_TRUE(link.accept(1, one({1})));
  EXPECT_EQ(link.frontier(), 2u);
  ASSERT_TRUE(link.next_ready(seq, payload));
  EXPECT_EQ(seq, 1u);
  EXPECT_EQ(payload, util::Bytes{1});
  ASSERT_TRUE(link.next_ready(seq, payload));
  EXPECT_EQ(seq, 2u);

  // Below-frontier and already-stashed seqs are counted duplicates.
  EXPECT_FALSE(link.accept(1, one({1})));
  EXPECT_FALSE(link.accept(2, one({2})));
  EXPECT_TRUE(link.accept(5, one({5})));
  EXPECT_FALSE(link.accept(5, one({5})));
  EXPECT_EQ(stats.duplicate_drops, 3u);

  // Ack state: cumulative frontier plus canonical merged sack ranges.
  EXPECT_TRUE(link.accept(7, one({7})));
  EXPECT_TRUE(link.accept(8, one({8})));
  const AckBlock ack = link.ack_state(16);
  EXPECT_EQ(ack.cum, 2u);
  EXPECT_EQ(ack.window, 16u);
  ASSERT_EQ(ack.sacks.size(), 2u);
  EXPECT_EQ(ack.sacks[0].first, 5u);
  EXPECT_EQ(ack.sacks[0].last, 5u);
  EXPECT_EQ(ack.sacks[1].first, 7u);
  EXPECT_EQ(ack.sacks[1].last, 8u);

  // Filling 3 and 4 drains through the stashed 5 in one contiguous run.
  EXPECT_TRUE(link.accept(4, one({4})));
  EXPECT_TRUE(link.accept(3, one({3})));
  EXPECT_EQ(link.frontier(), 5u);
  for (std::uint64_t want = 3; want <= 5; ++want) {
    ASSERT_TRUE(link.next_ready(seq, payload));
    EXPECT_EQ(seq, want);
    EXPECT_EQ(payload, util::Bytes{static_cast<std::uint8_t>(want)});
  }
}

// ---------------------------------------------------------------------------
// DatagramLossModel
// ---------------------------------------------------------------------------

TEST(DatagramLossModel, SeededPerLinkStreamsAreIndependent) {
  const auto draws = [](DatagramLossModel& m, std::uint32_t from,
                        std::uint32_t to, int n) {
    std::vector<bool> v;
    for (int i = 0; i < n; ++i) v.push_back(m.drop(from, to));
    return v;
  };

  DatagramLossModel a(0x10ad);
  DatagramLossModel b(0x10ad);
  a.set_default_rate(0.3);
  b.set_default_rate(0.3);
  const std::vector<bool> reference = draws(a, 0, 1, 200);
  EXPECT_EQ(reference, draws(b, 0, 1, 200));

  // Interleaving another link's draws never reshuffles the first link's.
  DatagramLossModel c(0x10ad);
  c.set_default_rate(0.3);
  std::vector<bool> interleaved;
  for (int i = 0; i < 200; ++i) {
    (void)c.drop(2, 3);
    interleaved.push_back(c.drop(0, 1));
  }
  EXPECT_EQ(interleaved, reference);

  // Per-link override: lossless links draw nothing, full-rate overrides on
  // one link leave the default links untouched.
  DatagramLossModel d(0x10ad);
  d.set_default_rate(0.0);
  for (int i = 0; i < 50; ++i) EXPECT_FALSE(d.drop(4, 5));
  d.set_link_rate(4, 5, 0.9);
  int dropped = 0;
  for (int i = 0; i < 200; ++i) dropped += d.drop(4, 5) ? 1 : 0;
  EXPECT_GT(dropped, 100);
  for (int i = 0; i < 50; ++i) EXPECT_FALSE(d.drop(5, 4));
}

// ---------------------------------------------------------------------------
// All-local group: forced loss + kernel-drop stress, vs the sim backend
// ---------------------------------------------------------------------------

std::string describe(const Delivery& delivery) {
  std::ostringstream os;
  if (const auto* data = std::get_if<core::DataDelivery>(&delivery)) {
    const auto& m = *data->message;
    os << "D " << m.sender() << "#" << m.seq();
    if (const auto* op =
            dynamic_cast<const workload::ItemOp*>(m.payload().get())) {
      os << " item=" << op->item() << " val=" << op->value();
    }
  } else if (const auto* view = std::get_if<core::ViewDelivery>(&delivery)) {
    os << "V " << view->view;
  } else {
    os << "X " << std::get<core::ExclusionDelivery>(delivery).last_view;
  }
  return os.str();
}

struct SmallRunResult {
  std::vector<std::vector<std::string>> events;
  NetworkStats stats;
  UdpLaneStats lane;
  std::size_t produced = 0;
  bool converged = false;
};

/// A compact scenario — 3 nodes, 80 messages over a hot item set, one
/// mid-run crash excluded by auto-membership — sized so the udp backend
/// can replay it several times (loss, rcvbuf stress) in one test binary.
SmallRunResult run_small(core::Group::Backend backend, double loss_rate,
                         int rcvbuf_bytes) {
  constexpr std::size_t kNodes = 3;
  constexpr std::size_t kMessages = 80;
  sim::Simulator sim;
  core::Group::Config cfg;
  cfg.size = kNodes;
  cfg.backend = backend;
  cfg.node.relation = std::make_shared<obs::ItemTagRelation>();
  cfg.node.delivery_capacity = 12;
  cfg.node.out_capacity = 12;
  cfg.network.jitter = sim::Duration::micros(400);
  cfg.network.seed = 0xca11;
  cfg.auto_membership = true;
  cfg.udp_loss_rate = loss_rate;
  cfg.udp_rcvbuf_bytes = rcvbuf_bytes;
  core::Group group(sim, cfg);

  SmallRunResult result;
  result.events.resize(kNodes);
  std::vector<std::unique_ptr<workload::InstantConsumer>> consumers;
  for (std::size_t i = 0; i < kNodes; ++i) {
    consumers.push_back(
        std::make_unique<workload::InstantConsumer>(sim, group.node(i)));
    consumers.back()->set_sink([&result, i](const Delivery& d) {
      result.events[i].push_back(describe(d));
    });
    consumers.back()->start();
  }

  std::function<void()> produce = [&] {
    if (result.produced >= kMessages) return;
    const auto item = static_cast<std::uint64_t>(result.produced % 4);
    const auto payload = std::make_shared<workload::ItemOp>(
        workload::OpKind::update, item, result.produced * 7, result.produced,
        true);
    if (group.node(0)
            .multicast(payload, obs::Annotation::item(item))
            .has_value()) {
      ++result.produced;
    }
    sim.schedule_after(sim::Duration::millis(2), produce);
  };
  sim.schedule_after(sim::Duration::millis(1), produce);
  sim.schedule_after(sim::Duration::millis(90), [&] { group.crash(2); });

  const auto deadline =
      sim::TimePoint::origin() + sim::Duration::seconds(60.0);
  while (sim.now() < deadline) {
    sim.run_until(sim.now() + sim::Duration::seconds(1.0));
    if (result.produced >= kMessages &&
        group.node(0).delivery_queue_length() == 0 &&
        group.node(1).delivery_queue_length() == 0 &&
        group.network().data_backlog(group.pid(0), group.pid(1)) == 0) {
      result.converged = true;
      break;
    }
  }
  result.stats = group.network().stats();
  if (auto* udp = group.udp()) {
    // Drain the shadow wire: every crossing's frame must wire-deliver and
    // byte-verify before the lane counters are meaningful.
    const std::int64_t drain = UdpTransport::mono_us() + 10'000'000;
    while (!udp->links_idle() && UdpTransport::mono_us() < drain) {
      udp->service(1'000);
    }
    EXPECT_TRUE(udp->links_idle()) << "shadow wire failed to drain";
    result.lane = udp->lane_stats();
  }
  return result;
}

TEST(UdpBackend, HeavyForcedLossConvergesWithZeroProtocolLoss) {
  const SmallRunResult truth = run_small(core::Group::Backend::sim, 0.0, 0);
  ASSERT_TRUE(truth.converged);
  ASSERT_EQ(truth.produced, 80u);

  // 25% of every datagram — data and acks alike — is discarded before
  // sendto.  The lane must repair all of it invisibly: same histories, same
  // protocol counters, demonstrably nonzero repair work.
  const SmallRunResult lossy = run_small(core::Group::Backend::udp, 0.25, 0);
  ASSERT_TRUE(lossy.converged) << "udp backend failed to converge under loss";
  ASSERT_EQ(lossy.produced, 80u);
  for (std::size_t i = 0; i < truth.events.size(); ++i) {
    EXPECT_EQ(truth.events[i], lossy.events[i]) << "process " << i;
  }
  EXPECT_EQ(truth.stats.sent, lossy.stats.sent);
  EXPECT_EQ(truth.stats.delivered, lossy.stats.delivered);
  EXPECT_EQ(truth.stats.bytes_delivered, lossy.stats.bytes_delivered);
  EXPECT_GT(lossy.lane.injected_losses, 0u) << "the loss model never fired";
  EXPECT_GT(lossy.lane.retransmissions, 0u)
      << "loss without retransmission means something else repaired it";
  EXPECT_GT(lossy.lane.frames_delivered, 0u);
  EXPECT_EQ(lossy.lane.link_resets, 0u);
  EXPECT_EQ(lossy.lane.malformed_datagrams, 0u);
}

TEST(UdpBackend, RcvbufStarvedSocketsStillConvergeIdentically) {
  const SmallRunResult truth = run_small(core::Group::Backend::sim, 0.0, 0);
  ASSERT_TRUE(truth.converged);

  // Shrink every socket's SO_RCVBUF to the kernel minimum: bursts now
  // overflow the receive queue and the kernel silently drops datagrams —
  // loss the loss model never sees.  The retransmission lane must not care.
  const SmallRunResult starved = run_small(core::Group::Backend::udp, 0.0, 1);
  ASSERT_TRUE(starved.converged)
      << "udp backend failed to converge with minimal SO_RCVBUF";
  ASSERT_EQ(starved.produced, 80u);
  for (std::size_t i = 0; i < truth.events.size(); ++i) {
    EXPECT_EQ(truth.events[i], starved.events[i]) << "process " << i;
  }
  EXPECT_EQ(truth.stats.delivered, starved.stats.delivered);
  EXPECT_EQ(starved.lane.link_resets, 0u);
}

// ---------------------------------------------------------------------------
// Distributed mode: two real processes-worth of transports in one test
// ---------------------------------------------------------------------------

class Sink final : public Endpoint {
 public:
  bool on_message(ProcessId /*from*/, const MessagePtr& message,
                  Lane /*lane*/) override {
    if (!accept) return false;
    received.push_back(message);
    return true;
  }
  bool accept = true;
  std::vector<MessagePtr> received;
};

MessagePtr numbered_message(std::uint64_t seq) {
  return std::make_shared<core::DataMessage>(
      ProcessId(0), seq, ViewId(0), obs::Annotation::item(seq % 4),
      std::make_shared<workload::ItemOp>(workload::OpKind::update, seq % 4,
                                         seq, seq, true));
}

std::uint64_t seq_of(const MessagePtr& m) {
  return static_cast<const core::DataMessage&>(*m).seq();
}

TEST(UdpDistributed, RcvbufStarvedControlFloodRecoversInOrder) {
  constexpr std::uint64_t kCount = 120;
  sim::Simulator sim_a, sim_b;

  UdpTransport::Config ca;
  ca.bind_local = true;
  ca.link.rto_base_us = 2'000;
  ca.link.rto_max_us = 20'000;
  ca.batch_bytes = 0;  // one datagram per frame: the burst must overflow
  UdpTransport a(sim_a, ca);
  Sink sink_a;
  a.attach(ProcessId(0), sink_a);

  UdpTransport::Config cb;
  cb.bind_local = true;
  cb.rcvbuf_bytes = 4'096;  // the kernel clamps to its minimum
  UdpTransport b(sim_b, cb);
  Sink sink_b;
  b.attach(ProcessId(1), sink_b);

  a.add_peer(ProcessId(1), b.local_port(ProcessId(1)));
  b.add_peer(ProcessId(0), a.local_port(ProcessId(0)));

  // Control lane: never refused, so the whole flood stages at once and the
  // first transmission burst massively overflows b's receive buffer.
  for (std::uint64_t seq = 1; seq <= kCount; ++seq) {
    a.send(ProcessId(0), ProcessId(1), numbered_message(seq), Lane::control);
  }
  sim_a.run();

  const std::int64_t deadline = UdpTransport::mono_us() + 20'000'000;
  while (sink_b.received.size() < kCount &&
         UdpTransport::mono_us() < deadline) {
    b.pump(2'000);
    a.pump(2'000);
  }
  ASSERT_EQ(sink_b.received.size(), kCount)
      << "flood did not fully recover; retransmissions="
      << a.lane_stats().retransmissions;
  for (std::uint64_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(seq_of(sink_b.received[i]), i + 1) << "out of link order";
  }
  // The kernel really dropped datagrams and the lane really repaired them.
  EXPECT_GT(a.lane_stats().retransmissions, 0u)
      << "a kernel-clamped SO_RCVBUF should have forced drops";
  EXPECT_EQ(a.lane_stats().link_resets, 0u);

  // Once acks settle, nothing is left in flight on either side.
  const std::int64_t drain = UdpTransport::mono_us() + 2'000'000;
  while (!a.links_idle() && UdpTransport::mono_us() < drain) {
    a.pump(2'000);
    b.pump(2'000);
  }
  EXPECT_TRUE(a.links_idle());
}

TEST(UdpDistributed, InboundBackpressureParksProbesAndResumes) {
  constexpr std::uint64_t kCount = 30;
  sim::Simulator sim_a, sim_b;

  UdpTransport::Config ca;
  ca.bind_local = true;
  ca.link.window = 8;
  ca.link.rto_base_us = 2'000;
  ca.link.rto_max_us = 20'000;
  UdpTransport a(sim_a, ca);
  Sink sink_a;
  a.attach(ProcessId(0), sink_a);

  UdpTransport::Config cb = ca;
  UdpTransport b(sim_b, cb);
  Sink sink_b;
  sink_b.accept = false;  // inbound refusal: every data frame parks
  b.attach(ProcessId(1), sink_b);

  a.add_peer(ProcessId(1), b.local_port(ProcessId(1)));
  b.add_peer(ProcessId(0), a.local_port(ProcessId(0)));

  for (std::uint64_t seq = 1; seq <= kCount; ++seq) {
    a.send(ProcessId(0), ProcessId(1), numbered_message(seq), Lane::data);
  }
  sim_a.run();

  // b parks the first window's worth and advertises zero; a's data lane
  // stalls in its inner network and degrades to paced zero-window probing —
  // no drops, no unbounded sends.
  std::int64_t until = UdpTransport::mono_us() + 400'000;
  while (UdpTransport::mono_us() < until) {
    b.pump(1'000);
    a.pump(1'000);
    sim_a.run();
  }
  EXPECT_TRUE(sink_b.received.empty());
  EXPECT_GT(b.lane_stats().inbound_stalls, 0u) << "nothing parked";
  EXPECT_GT(a.lane_stats().zero_window_probes, 0u)
      << "a stalled sender must probe the closed window";
  const std::uint64_t parked_stalls = b.lane_stats().inbound_stalls;
  EXPECT_LE(parked_stalls, ca.link.window)
      << "more frames parked than one advertised window permits";

  // The receiver frees space: resume() drains the parked frames in link
  // order, re-advertises the window, and the stalled inner link flows.
  sink_b.accept = true;
  b.resume(ProcessId(1));
  const std::int64_t deadline = UdpTransport::mono_us() + 20'000'000;
  while (sink_b.received.size() < kCount &&
         UdpTransport::mono_us() < deadline) {
    b.pump(2'000);
    a.pump(2'000);
    sim_a.run();
    if (sink_b.received.size() < kCount) b.resume(ProcessId(1));
  }
  ASSERT_EQ(sink_b.received.size(), kCount);
  for (std::uint64_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(seq_of(sink_b.received[i]), i + 1) << "out of link order";
  }
}

// ---------------------------------------------------------------------------
// Frame batching: link-level batch staging + distributed coalescing
// ---------------------------------------------------------------------------

TEST(ReliableLink, BatchStagingCountsFramesAndDrainsInOrder) {
  UdpLaneStats stats;
  ReliableLink link(small_link(8, 1'000, 8'000, 10),
                    sim::Rng::stream(9, 9), stats);

  // One link seq carries the whole batch; the window is counted in FRAMES,
  // so three batched frames consume three slots.
  std::vector<FramePtr> batch{frame_bytes({1}), frame_bytes({2}),
                              frame_bytes({3})};
  EXPECT_EQ(link.stage(std::move(batch), 0), 1u);
  EXPECT_EQ(link.in_flight(), 3u);
  EXPECT_EQ(link.send_room(), 5u);
  const auto* frames = link.frames_of(1);
  ASSERT_NE(frames, nullptr);
  EXPECT_EQ(frames->size(), 3u);

  // Acking the batch seq retires all of its frames at once.
  AckBlock ack;
  ack.cum = 1;
  ack.window = 8;
  link.on_ack(ack);
  EXPECT_EQ(link.in_flight(), 0u);
  EXPECT_TRUE(link.all_acked());

  // Receiver half: a batch under one seq flattens into per-frame ready
  // entries, in batch order, and the frontier advances once.
  EXPECT_TRUE(link.accept(
      1, std::vector<util::Bytes>{util::Bytes{0xA}, util::Bytes{0xB}}));
  EXPECT_EQ(link.frontier(), 1u);
  std::uint64_t seq = 0;
  util::Bytes payload;
  ASSERT_TRUE(link.next_ready(seq, payload));
  EXPECT_EQ(seq, 1u);
  EXPECT_EQ(payload, util::Bytes{0xA});
  ASSERT_TRUE(link.next_ready(seq, payload));
  EXPECT_EQ(seq, 1u);
  EXPECT_EQ(payload, util::Bytes{0xB});
  EXPECT_FALSE(link.next_ready(seq, payload));

  // A re-delivered batch seq is one duplicate, not one per frame.
  EXPECT_FALSE(link.accept(1, one({0xA})));
  EXPECT_EQ(stats.duplicate_drops, 1u);
}

TEST(UdpDistributed, DataLaneBatchesSmallFramesAndDeliversInOrder) {
  constexpr std::uint64_t kCount = 24;
  sim::Simulator sim_a, sim_b;

  UdpTransport::Config ca;
  ca.bind_local = true;
  ca.link.window = 64;
  ca.link.rto_base_us = 2'000;
  ca.link.rto_max_us = 20'000;
  ca.batch_bytes = 1'400;
  ca.batch_delay_us = 200;
  UdpTransport a(sim_a, ca);
  Sink sink_a;
  a.attach(ProcessId(0), sink_a);

  UdpTransport::Config cb;
  cb.bind_local = true;
  UdpTransport b(sim_b, cb);
  Sink sink_b;
  b.attach(ProcessId(1), sink_b);

  a.add_peer(ProcessId(1), b.local_port(ProcessId(1)));
  b.add_peer(ProcessId(0), a.local_port(ProcessId(0)));

  for (std::uint64_t seq = 1; seq <= kCount; ++seq) {
    a.send(ProcessId(0), ProcessId(1), numbered_message(seq), Lane::data);
  }
  sim_a.run();

  const std::int64_t deadline = UdpTransport::mono_us() + 20'000'000;
  while (sink_b.received.size() < kCount &&
         UdpTransport::mono_us() < deadline) {
    a.pump(1'000);
    b.pump(1'000);
  }
  ASSERT_EQ(sink_b.received.size(), kCount);
  for (std::uint64_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(seq_of(sink_b.received[i]), i + 1) << "out of link order";
  }
  // The flood really coalesced: multi-frame batches went out, in strictly
  // fewer flushes than frames, and the trailing partial batch left nothing
  // behind (the deadline flush shipped it).
  const UdpLaneStats lane = a.lane_stats();
  EXPECT_GT(lane.frames_batched, 0u) << "no multi-frame datagram was built";
  EXPECT_GT(lane.batch_flushes, 0u);
  EXPECT_LT(lane.batch_flushes, kCount)
      << "every frame went out alone; batching never engaged";

  const std::int64_t drain = UdpTransport::mono_us() + 2'000'000;
  while (!a.links_idle() && UdpTransport::mono_us() < drain) {
    a.pump(2'000);
    b.pump(2'000);
  }
  EXPECT_TRUE(a.links_idle()) << "a pending batch or unacked frame remains";
}

// ---------------------------------------------------------------------------
// Batched kernel I/O: recv rings, partial-send resume, runtime fallback
// ---------------------------------------------------------------------------

/// Pushes every datagram in `payloads` through `tx` toward `port`, retrying
/// from the unsent tail when the kernel blocks.
void send_all(UdpSocket& tx, std::uint16_t port,
              const std::vector<util::Bytes>& payloads) {
  std::vector<OutDatagram> out;
  out.reserve(payloads.size());
  for (const auto& p : payloads) out.emplace_back(port, p.data(), p.size());
  std::span<const OutDatagram> rest(out);
  const std::int64_t deadline = UdpTransport::mono_us() + 5'000'000;
  while (!rest.empty()) {
    std::size_t sent = 0;
    tx.send_batch(rest, sent);
    rest = rest.subspan(sent);
    ASSERT_LT(UdpTransport::mono_us(), deadline) << "kernel never drained";
  }
}

/// Receives exactly `count` datagrams from `rx` through `ring`, in arrival
/// order.
std::vector<util::Bytes> recv_all(UdpSocket& rx, RecvRing& ring,
                                  std::size_t count) {
  std::vector<util::Bytes> got;
  const std::int64_t deadline = UdpTransport::mono_us() + 5'000'000;
  while (got.size() < count && UdpTransport::mono_us() < deadline) {
    const std::size_t n = rx.recv_batch(ring);
    for (std::size_t i = 0; i < n; ++i) {
      const auto span = ring.datagram(i);
      got.emplace_back(span.begin(), span.end());
    }
    if (n == 0) {
      const int fd = rx.fd();
      UdpSocket::wait_readable(std::span<const int>(&fd, 1), 1'000);
    }
  }
  return got;
}

TEST(UdpSocket, RecvBatchRefillsRingUnderBurstLargerThanOneRing) {
  UdpSocket tx, rx;
  RecvRing ring(32);
  constexpr std::size_t kCount = 100;  // > 3 full rings

  std::vector<util::Bytes> payloads;
  payloads.reserve(kCount);
  for (std::size_t i = 0; i < kCount; ++i) {
    util::Bytes p(1 + i % 97);
    for (auto& b : p) b = static_cast<std::uint8_t>(i);
    payloads.push_back(std::move(p));
  }

  send_all(tx, rx.port(), payloads);
  const std::vector<util::Bytes> got = recv_all(rx, ring, kCount);

  // Loopback to one socket is in-order and lossless at these sizes, so the
  // burst must arrive intact and in sequence.
  ASSERT_EQ(got.size(), kCount);
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(got[i], payloads[i]) << "datagram " << i << " diverged";
  }

  // The whole burst rode the batched paths: far fewer kernel trips than
  // datagrams on both sides, and the mmsg calls are what carried them.
  const IoCounters& t = tx.io_counters();
  const IoCounters& r = rx.io_counters();
  EXPECT_EQ(t.datagrams_sent, kCount);
  EXPECT_EQ(r.datagrams_received, kCount);
  EXPECT_GT(t.mmsg_sends, 0u);
  EXPECT_GT(r.mmsg_recvs, 0u);
  EXPECT_EQ(t.single_sends, 0u);
  EXPECT_EQ(r.single_recvs, 0u);
  EXPECT_LE(t.send_syscalls, kCount / 2) << "sendmmsg never coalesced";
  EXPECT_LE(r.recv_syscalls, kCount / 2) << "recvmmsg never coalesced";
}

TEST(SendQueue, PartialSendResumesFromUnsentTailInOrder) {
  SendQueue q;
  constexpr std::size_t kCount = 10;
  for (std::size_t i = 0; i < kCount; ++i) {
    q.push(static_cast<std::uint16_t>(1'000 + i),
           util::Bytes{static_cast<std::uint8_t>(i)});
  }

  // A sender that accepts three datagrams per call and then blocks, like a
  // kernel whose send buffer keeps filling mid-batch.
  std::vector<std::uint16_t> wire;
  auto choked = [&wire](std::span<const OutDatagram> items,
                        std::size_t& sent) {
    sent = std::min<std::size_t>(3, items.size());
    for (std::size_t i = 0; i < sent; ++i) wire.push_back(items[i].port);
    return false;  // blocked: the tail stays queued
  };

  EXPECT_FALSE(q.flush_with(choked));
  EXPECT_EQ(q.size(), kCount - 3);
  EXPECT_FALSE(q.flush_with(choked));
  EXPECT_FALSE(q.flush_with(choked));
  EXPECT_EQ(q.size(), kCount - 9);

  // The kernel unblocks; the final flush drains the tail.
  auto open = [&wire](std::span<const OutDatagram> items, std::size_t& sent) {
    sent = items.size();
    for (const auto& d : items) wire.push_back(d.port);
    return true;
  };
  EXPECT_TRUE(q.flush_with(open));
  EXPECT_TRUE(q.empty());

  // Every datagram went out exactly once, in push order: partial sends
  // resume from the unsent tail, never reordering or re-sending.
  ASSERT_EQ(wire.size(), kCount);
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(wire[i], 1'000 + i) << "flush reordered the queue";
  }
}

TEST(SendQueue, OverflowDropsNewestAndCounts) {
  SendQueue q;
  for (std::size_t i = 0; i < SendQueue::kMaxQueue + 5; ++i) {
    q.push(9, util::Bytes{1});
  }
  EXPECT_EQ(q.size(), SendQueue::kMaxQueue);
  EXPECT_EQ(q.overflow_drops(), 5u);
}

TEST(UdpSocket, FallbackPathDeliversIdenticalSequencesAndByteCounts) {
  constexpr std::size_t kCount = 60;
  std::vector<util::Bytes> payloads;
  payloads.reserve(kCount);
  for (std::size_t i = 0; i < kCount; ++i) {
    util::Bytes p(1 + (i * 7) % 200);
    for (auto& b : p) b = static_cast<std::uint8_t>(i * 31);
    payloads.push_back(std::move(p));
  }

  struct RunResult {
    std::vector<util::Bytes> got;
    IoCounters tx;
    IoCounters rx;
  };
  auto run = [&payloads](bool use_mmsg) {
    UdpSocket tx, rx;
    tx.set_use_mmsg(use_mmsg);
    rx.set_use_mmsg(use_mmsg);
    RecvRing ring(32);
    send_all(tx, rx.port(), payloads);
    RunResult r;
    r.got = recv_all(rx, ring, payloads.size());
    r.tx = tx.io_counters();
    r.rx = rx.io_counters();
    return r;
  };

  const RunResult batched = run(true);
  const RunResult fallback = run(false);

  // Same datagrams, same order, same totals — the fallback is purely a
  // syscall-shape change, invisible above the socket.
  ASSERT_EQ(batched.got.size(), kCount);
  ASSERT_EQ(fallback.got.size(), kCount);
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(batched.got[i], payloads[i]);
    EXPECT_EQ(fallback.got[i], payloads[i]);
  }
  EXPECT_EQ(batched.tx.datagrams_sent, fallback.tx.datagrams_sent);
  EXPECT_EQ(batched.rx.datagrams_received, fallback.rx.datagrams_received);

  // The counters prove which path each run actually took.
  EXPECT_GT(batched.tx.mmsg_sends, 0u);
  EXPECT_EQ(batched.tx.single_sends, 0u);
  EXPECT_EQ(fallback.tx.mmsg_sends, 0u);
  EXPECT_EQ(fallback.tx.single_sends, kCount);
  EXPECT_GT(fallback.rx.single_recvs, 0u);
  EXPECT_EQ(fallback.rx.mmsg_recvs, 0u);
  EXPECT_LT(batched.tx.send_syscalls, fallback.tx.send_syscalls);
}

TEST(UdpSocket, WaitReadableHonoursMicrosecondDeadlines) {
  UdpSocket s;
  const int fd = s.fd();
  constexpr int kIters = 25;
  constexpr std::int64_t kTimeoutUs = 200;

  const std::int64_t start = UdpTransport::mono_us();
  for (int i = 0; i < kIters; ++i) {
    EXPECT_FALSE(UdpSocket::wait_readable(std::span<const int>(&fd, 1),
                                          kTimeoutUs));
  }
  const std::int64_t elapsed = UdpTransport::mono_us() - start;

  // Each idle wait must actually sleep ~200µs: 25 waits land well above
  // 90% of the nominal 5ms (no busy-spin) and well below the 25ms a
  // poll()-style millisecond round-up would cost (no ms quantisation).
  EXPECT_GE(elapsed, kIters * kTimeoutUs * 9 / 10)
      << "200µs waits returned immediately — the sleep busy-spins";
  EXPECT_LT(elapsed, kIters * 600)
      << "200µs waits cost ≥0.6ms each — quantised to milliseconds";
}

// ---------------------------------------------------------------------------
// RealTimeDriver: virtual clock chases wall clock
// ---------------------------------------------------------------------------

TEST(RealTimeDriver, FiresVirtualTimersAtWallPace) {
  sim::Simulator sim;
  UdpTransport::Config cfg;
  cfg.bind_local = true;
  UdpTransport transport(sim, cfg);
  Sink sink;
  transport.attach(ProcessId(0), sink);

  bool fired = false;
  sim.schedule_after(sim::Duration::millis(20), [&] { fired = true; });

  runtime::RealTimeDriver driver(sim, transport);
  const std::int64_t start = UdpTransport::mono_us();
  driver.run(sim::Duration::millis(60), [&] { return fired; });
  const std::int64_t elapsed = UdpTransport::mono_us() - start;

  EXPECT_TRUE(fired) << "a 20ms virtual timer never fired in 60ms of wall";
  EXPECT_GE(elapsed, 19'000) << "virtual time ran ahead of wall time";
  // Virtual never overtakes wall: at exit now() <= elapsed wall time.
  EXPECT_LE((sim.now() - sim::TimePoint::origin()).as_micros(),
            elapsed + 1'000);
}

}  // namespace
}  // namespace svs::net
