// Unit tests for the extracted protocol components: StabilityLedger (the
// §2.1 gossip GC arithmetic plus the purge-debt ledger of DESIGN.md §3/§7)
// and ViewChangeEngine (the t4–t7 bookkeeping).
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "core/stability_ledger.hpp"
#include "core/view_change_engine.hpp"
#include "fd/failure_detector.hpp"
#include "obs/annotation.hpp"

namespace svs::core {
namespace {

net::ProcessId pid(std::uint32_t i) { return net::ProcessId(i); }

View view3() { return View(ViewId(0), {pid(0), pid(1), pid(2)}); }

DataMessagePtr msg(std::uint32_t sender, std::uint64_t seq) {
  return std::make_shared<DataMessage>(pid(sender), seq, ViewId(0),
                                       obs::Annotation::none(), nullptr);
}

class StubDetector final : public fd::FailureDetector {
 public:
  [[nodiscard]] bool suspects(net::ProcessId p) const override {
    return suspected.contains(p);
  }
  std::set<net::ProcessId> suspected;
};

constexpr sim::Duration kPredGrace = sim::Duration::millis(30);

/// ready_to_propose at a time when any suspected member's pred grace has
/// already run out (the pre-grace behaviour most tests want).
bool ready_after_grace(const ViewChangeEngine& e, const View& v,
                       const fd::FailureDetector& fd) {
  return e.ready_to_propose(v, fd, e.started_at() + kPredGrace, kPredGrace);
}

// ---------------------------------------------------------------------------
// StabilityLedger
// ---------------------------------------------------------------------------

// Most tests speak from process 0's perspective; channels only become
// reportable (and only count towards floors) once their per-view anchor is
// known, so the helpers install anchor 0 ("the view's seqs start at 1").
TEST(StabilityLedger, FrontierFollowsContiguousReception) {
  StabilityLedger t;
  t.set_anchor(pid(1), 0);
  EXPECT_EQ(t.frontier(pid(1)), 0u);
  t.note_seen(pid(1), 1);
  t.note_seen(pid(1), 2);
  EXPECT_EQ(t.frontier(pid(1)), 2u);
  EXPECT_EQ(t.high_water(pid(1)), 2u);
  EXPECT_TRUE(t.dirty());
  t.clear_dirty();
  EXPECT_FALSE(t.dirty());
}

TEST(StabilityLedger, FrontierStallsAtAnUnexplainedGap) {
  // Sender-side purging removes seqs from a channel, so reception is not
  // contiguous.  Without a debt explaining the gap, the reported frontier
  // must NOT pass it — this is exactly what made the raw high-water mark
  // unsound (DESIGN.md section 7).
  StabilityLedger t;
  t.set_anchor(pid(1), 0);
  t.note_seen(pid(1), 1);
  t.note_seen(pid(1), 3);  // 2 never arrived; no debt announced (yet)
  EXPECT_EQ(t.frontier(pid(1)), 1u);
  EXPECT_EQ(t.high_water(pid(1)), 3u);  // raw mark still jumps (dups only)
  EXPECT_FALSE(t.received(pid(1), 2));
  EXPECT_TRUE(t.received(pid(1), 3));
}

TEST(StabilityLedger, DebtWithReceivedCoverExplainsTheGap) {
  StabilityLedger t;
  t.set_anchor(pid(1), 0);
  t.note_seen(pid(1), 1);
  t.note_seen(pid(1), 3);
  EXPECT_EQ(t.frontier(pid(1)), 1u);
  // The sender announces: 2 was purged, covered by 3 — which is here.
  t.merge_debts(pid(1), {{PurgeDebt{2, 3}}});
  EXPECT_EQ(t.frontier(pid(1)), 3u);
  EXPECT_FALSE(t.received(pid(1), 2));      // exact reception unchanged
  EXPECT_TRUE(t.obligation_met(pid(1), 2));  // but the obligation is met
}

TEST(StabilityLedger, DebtChainsResolveThroughPurgedCovers) {
  // 1 was purged by 3, 3 itself by 5: the chain 1 -> 3 -> 5 must resolve to
  // a *received* terminal cover before the gap counts as explained — the
  // k-enumeration case where no single annotation can declare 5 covers 1.
  StabilityLedger t;
  t.set_anchor(pid(1), 0);
  t.merge_debts(pid(1), {{PurgeDebt{1, 3}, PurgeDebt{3, 5}}});
  EXPECT_EQ(t.frontier(pid(1)), 0u);  // terminal cover not received yet
  EXPECT_FALSE(t.obligation_met(pid(1), 1));
  t.note_seen(pid(1), 2);
  EXPECT_EQ(t.frontier(pid(1)), 0u);  // 2 alone does not explain 1
  t.note_seen(pid(1), 5);
  // 1 resolves via 3 -> 5 (received), 2 and 3 likewise — but 4 has neither
  // a debt nor a reception, so the frontier stops just before it.
  EXPECT_EQ(t.frontier(pid(1)), 3u);
  EXPECT_TRUE(t.obligation_met(pid(1), 1));
  EXPECT_FALSE(t.obligation_met(pid(1), 4));
  t.note_seen(pid(1), 4);
  EXPECT_EQ(t.frontier(pid(1)), 5u);
}

TEST(StabilityLedger, ReceivedIntermediateCoverDischargesTheChain) {
  // The chain 1 -> 3 -> 5 need not reach its end: a receiver that holds
  // the intermediate cover 3 already has a ground-truth cover of 1, even
  // while 5 (which purged 3 out of someone else's buffer) is still in
  // flight.  The frontier must not stall on later links.
  StabilityLedger t;
  t.set_anchor(pid(1), 0);
  t.merge_debts(pid(1), {{PurgeDebt{1, 3}, PurgeDebt{3, 5}}});
  t.note_seen(pid(1), 2);
  t.note_seen(pid(1), 3);
  EXPECT_EQ(t.frontier(pid(1)), 3u);  // 1 via received 3; 2, 3 received
  EXPECT_TRUE(t.obligation_met(pid(1), 1));
}

TEST(StabilityLedger, FrontierStopsAtGapWithoutDebt) {
  StabilityLedger t;
  t.set_anchor(pid(1), 0);
  // One multicast (seq 3) purged both 1 and 2: two debts, one cover.
  t.merge_debts(pid(1), {{PurgeDebt{1, 3}, PurgeDebt{2, 3}}});
  t.note_seen(pid(1), 3);
  t.note_seen(pid(1), 5);  // 4 unexplained
  EXPECT_EQ(t.frontier(pid(1)), 3u);
  EXPECT_TRUE(t.obligation_met(pid(1), 1));   // covered via the debt
  EXPECT_FALSE(t.obligation_met(pid(1), 4));  // a genuinely open gap
  EXPECT_TRUE(t.obligation_met(pid(1), 5));   // received
}

TEST(StabilityLedger, AnchorPlacesTheViewsFirstSeqs) {
  // In later views a sender's seqs start far above 1.  The anchor tells
  // receivers where, so a purged *first* message of the view is still
  // accounted instead of silently skipped.
  StabilityLedger t;
  t.note_seen(pid(1), 8);          // first reception, anchor still unknown
  EXPECT_FALSE(t.frontier(pid(1)).has_value());
  t.set_anchor(pid(1), 6);         // the view's seqs are 7, 8, ...
  EXPECT_EQ(t.frontier(pid(1)), 6u);  // 7 is a gap, not prior-view noise
  t.merge_debts(pid(1), {{PurgeDebt{7, 8}}});
  EXPECT_EQ(t.frontier(pid(1)), 8u);
}

TEST(StabilityLedger, FloorIsZeroUntilEveryMemberReports) {
  StabilityLedger t;
  t.set_anchor(pid(0), 0);
  for (std::uint64_t s = 1; s <= 10; ++s) t.note_seen(pid(0), s);
  // Only peer 1 reported; peer 2 silent -> nothing is stable.
  t.merge_report(pid(1), {{pid(0), 10}});
  EXPECT_EQ(t.floor_of(pid(0), view3(), pid(0)), 0u);
  // Peer 2 answers: the floor is the minimum over all members.
  t.merge_report(pid(2), {{pid(0), 7}});
  EXPECT_EQ(t.floor_of(pid(0), view3(), pid(0)), 7u);
}

TEST(StabilityLedger, FloorBoundedByOwnFrontier) {
  StabilityLedger t;
  t.set_anchor(pid(0), 0);
  for (std::uint64_t s = 1; s <= 4; ++s) t.note_seen(pid(0), s);
  t.merge_report(pid(1), {{pid(0), 9}});
  t.merge_report(pid(2), {{pid(0), 9}});
  EXPECT_EQ(t.floor_of(pid(0), view3(), pid(0)), 4u);
}

TEST(StabilityLedger, PeerReportsAreMonotone) {
  StabilityLedger t;
  t.set_anchor(pid(0), 0);
  for (std::uint64_t s = 1; s <= 9; ++s) t.note_seen(pid(0), s);
  t.merge_report(pid(1), {{pid(0), 8}});
  t.merge_report(pid(1), {{pid(0), 2}});  // stale gossip must not regress
  t.merge_report(pid(2), {{pid(0), 8}});
  EXPECT_EQ(t.floor_of(pid(0), view3(), pid(0)), 8u);
}

TEST(StabilityLedger, TakeDeltaShipsOnlyChangedFrontiersAndFreshDebts) {
  StabilityLedger t;
  t.set_anchor(pid(0), 0);
  t.set_anchor(pid(1), 0);
  t.note_seen(pid(0), 1);
  t.note_seen(pid(0), 2);
  t.note_seen(pid(0), 3);
  t.note_seen(pid(1), 1);
  EXPECT_TRUE(t.record_own_debt(4, 6));
  EXPECT_FALSE(t.record_own_debt(4, 6));  // idempotent per purged seq
  // First take: everything is new, so the delta is the full state.
  const auto first = t.take_delta();
  EXPECT_EQ(first.seen.size(), 2u);
  ASSERT_EQ(first.debts.size(), 1u);
  EXPECT_EQ(first.debts[0], (PurgeDebt{4, 6}));
  EXPECT_FALSE(t.dirty());

  t.note_seen(pid(0), 4);
  const auto second = t.take_delta();
  ASSERT_EQ(second.seen.size(), 1u);
  EXPECT_EQ(second.seen[0].first, pid(0));
  EXPECT_EQ(second.seen[0].second, 4u);
  EXPECT_TRUE(second.debts.empty());  // already shipped

  // A reception that does not move the frontier changes nothing on the
  // wire and owes no gossip round.
  t.note_seen(pid(1), 1);
  EXPECT_FALSE(t.dirty());
  EXPECT_TRUE(t.take_delta().seen.empty());
}

TEST(StabilityLedger, TakeSnapshotShipsEverythingAndClearsChanges) {
  StabilityLedger t;
  t.set_anchor(pid(0), 0);
  t.set_anchor(pid(1), 0);
  t.note_seen(pid(0), 1);
  (void)t.take_delta();
  t.note_seen(pid(1), 1);
  t.record_own_debt(2, 3);
  (void)t.take_delta();
  // A full round repeats unchanged entries and the entire surviving debt
  // ledger (self-healing for dropped deltas).
  t.note_seen(pid(1), 2);
  const auto snap = t.take_snapshot();
  EXPECT_EQ(snap.seen.size(), 2u);
  ASSERT_EQ(snap.debts.size(), 1u);
  EXPECT_EQ(snap.debts[0], (PurgeDebt{2, 3}));
  EXPECT_FALSE(t.dirty());
  t.note_seen(pid(1), 2);  // no frontier move
  EXPECT_TRUE(t.take_delta().seen.empty());
}

TEST(StabilityLedger, WireByteCountersTrackTheMaterializedSnapshot) {
  // The incrementally maintained entry/debt byte counters must always
  // equal the encoded size of the materialized snapshot's sections — they
  // are what the delta-gossip savings credit prices full rounds with.
  StabilityLedger t;
  const auto reference_entries = [&t] {
    std::size_t bytes = 0;
    for (const auto& [sender, seq] : t.snapshot()) {
      bytes += util::varint_size(sender.value()) + util::varint_size(seq);
    }
    return bytes;
  };
  EXPECT_EQ(t.entry_wire_bytes(), 0u);
  t.set_anchor(pid(0), 0);
  t.set_anchor(pid(1), 0);
  for (std::uint64_t s = 1; s <= 100; ++s) t.note_seen(pid(1), s);
  EXPECT_EQ(t.entry_wire_bytes(), reference_entries());
  for (std::uint64_t s = 101; s <= 200; ++s) t.note_seen(pid(1), s);
  for (std::uint64_t s = 1; s <= 20000; ++s) t.note_seen(pid(0), s);
  EXPECT_EQ(t.entry_wire_bytes(), reference_entries());

  t.record_own_debt(1, 2);
  t.record_own_debt(300, 1000);
  const auto round = t.take_snapshot();
  std::size_t debt_bytes = 0;
  for (const auto& d : round.debts) {
    debt_bytes += StabilityMessage::debt_wire_size(d);
  }
  EXPECT_EQ(t.debt_wire_bytes(), debt_bytes);

  t.reset();
  EXPECT_EQ(t.entry_wire_bytes(), 0u);
  EXPECT_EQ(t.debt_wire_bytes(), 0u);
}

TEST(StabilityLedger, OwnDebtsRetireOnceEveryFrontierPassedThem) {
  // Debt GC: once every member's reported frontier for this node's own
  // channel passed a purged seq, the debt (and its gossip bytes) retire —
  // the ledger is bounded by the un-stable window.
  StabilityLedger t;
  t.set_anchor(pid(0), 0);
  for (std::uint64_t s = 1; s <= 5; ++s) t.note_seen(pid(0), s);
  t.record_own_debt(2, 4);
  t.record_own_debt(5, 6);
  EXPECT_EQ(t.own_debts(), 2u);
  // Peers' frontiers passed 2 but not 5.
  t.merge_report(pid(1), {{pid(0), 4}});
  t.merge_report(pid(2), {{pid(0), 4}});
  EXPECT_EQ(t.collect_debts(view3(), pid(0)), 1u);
  EXPECT_EQ(t.own_debts(), 1u);
  // A later full round must not resurrect the retired debt.
  const auto snap = t.take_snapshot();
  ASSERT_EQ(snap.debts.size(), 1u);
  EXPECT_EQ(snap.debts[0], (PurgeDebt{5, 6}));
}

TEST(StabilityLedger, MergedDebtsPruneBehindTheLocalFrontier) {
  StabilityLedger t;
  t.set_anchor(pid(1), 0);
  t.merge_debts(pid(1), {{PurgeDebt{1, 2}, PurgeDebt{3, 5}}});
  t.note_seen(pid(1), 2);
  EXPECT_EQ(t.frontier(pid(1)), 2u);
  EXPECT_EQ(t.merged_debts(), 1u);  // 1 -> 2 explained and pruned
  t.note_seen(pid(1), 4);
  t.note_seen(pid(1), 5);
  EXPECT_EQ(t.frontier(pid(1)), 5u);  // 3 via its received cover 5
  EXPECT_EQ(t.merged_debts(), 0u);
}

TEST(StabilityLedger, SnapshotAndReset) {
  StabilityLedger t;
  t.set_anchor(pid(0), 0);
  t.set_anchor(pid(1), 0);
  t.note_seen(pid(0), 1);
  t.note_seen(pid(1), 1);
  t.note_seen(pid(1), 2);
  const auto snap = t.snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].first, pid(0));
  EXPECT_EQ(snap[1].second, 2u);
  t.reset();
  EXPECT_FALSE(t.high_water(pid(0)).has_value());
  EXPECT_FALSE(t.frontier(pid(0)).has_value());
  EXPECT_FALSE(t.dirty());
  EXPECT_TRUE(t.snapshot().empty());
  EXPECT_EQ(t.own_debts(), 0u);
}

TEST(StabilityLedger, ExactReceptionTracksGapsBelowTheHighWater) {
  // Sender-side purging removes seqs from a channel, so reception is not
  // contiguous: the high-water mark says nothing about the gaps below it,
  // and received() must answer exactly (the t7 flush relies on it).
  StabilityLedger t;
  t.note_seen(pid(1), 1);
  t.note_seen(pid(1), 2);
  t.note_seen(pid(1), 5);  // 3 and 4 were purged out of the channel
  EXPECT_TRUE(t.received(pid(1), 2));
  EXPECT_FALSE(t.received(pid(1), 3));
  EXPECT_FALSE(t.received(pid(1), 4));
  EXPECT_TRUE(t.received(pid(1), 5));
  EXPECT_FALSE(t.received(pid(1), 6));
  EXPECT_EQ(t.high_water(pid(1)), 5u);
  // A view-change flush closes the gap; the frontier does not regress.
  t.note_seen(pid(1), 3);
  t.note_seen(pid(1), 4);
  EXPECT_TRUE(t.received(pid(1), 3));
  EXPECT_TRUE(t.received(pid(1), 4));
  EXPECT_EQ(t.high_water(pid(1)), 5u);
}

TEST(StabilityLedger, ReceptionMayStartAboveTheViewsFirstSeq) {
  // Even the first messages of a view can be purged away before anything
  // gets through: the record starts at the first seq actually received and
  // claims nothing below it.
  StabilityLedger t;
  t.note_seen(pid(1), 7);
  EXPECT_FALSE(t.received(pid(1), 6));
  EXPECT_TRUE(t.received(pid(1), 7));
  t.note_seen(pid(1), 6);  // flush-in extends the record downwards
  EXPECT_TRUE(t.received(pid(1), 6));
  EXPECT_FALSE(t.received(pid(1), 5));
  EXPECT_EQ(t.high_water(pid(1)), 7u);
}

// ---------------------------------------------------------------------------
// ViewChangeEngine
// ---------------------------------------------------------------------------

TEST(ViewChangeEngine, BeginBlocksAndFiltersLeaveSet) {
  ViewChangeEngine e;
  EXPECT_FALSE(e.blocked());
  // pid(9) is not a member; the leave set keeps only current members.
  const InitMessage init(ViewId(0), {pid(2), pid(9)});
  e.begin(init, view3(), sim::TimePoint::origin() + sim::Duration::millis(5));
  EXPECT_TRUE(e.blocked());
  EXPECT_EQ(e.started_at(),
            sim::TimePoint::origin() + sim::Duration::millis(5));

  StubDetector fd;
  for (std::uint32_t p = 0; p < 3; ++p) {
    e.add_pred(pid(p), PredMessage(ViewId(0), {}));
  }
  ASSERT_TRUE(ready_after_grace(e, view3(), fd));
  const auto proposal = e.take_proposal(view3());
  EXPECT_EQ(proposal->next_view().id(), ViewId(1));
  EXPECT_EQ(proposal->next_view().size(), 2u);
  EXPECT_FALSE(proposal->next_view().contains(pid(2)));
}

TEST(ViewChangeEngine, ProposeWaitsForUnsuspectedMembers) {
  ViewChangeEngine e;
  e.begin(InitMessage(ViewId(0), {}), view3(), sim::TimePoint::origin());
  StubDetector fd;
  e.add_pred(pid(0), PredMessage(ViewId(0), {}));
  e.add_pred(pid(1), PredMessage(ViewId(0), {}));
  // pid(2) neither answered nor is suspected: the guard holds.
  EXPECT_FALSE(ready_after_grace(e, view3(), fd));
  fd.suspected.insert(pid(2));
  EXPECT_TRUE(ready_after_grace(e, view3(), fd));
}

TEST(ViewChangeEngine, ProposeNeedsAMajority) {
  ViewChangeEngine e;
  e.begin(InitMessage(ViewId(0), {}), view3(), sim::TimePoint::origin());
  StubDetector fd;
  fd.suspected = {pid(1), pid(2)};
  e.add_pred(pid(0), PredMessage(ViewId(0), {}));
  // Every unsuspected member answered, but 1 of 3 is not a majority.
  EXPECT_FALSE(ready_after_grace(e, view3(), fd));
  e.add_pred(pid(1), PredMessage(ViewId(0), {}));
  EXPECT_TRUE(ready_after_grace(e, view3(), fd));
}

TEST(ViewChangeEngine, GlobalPredDeduplicatesById) {
  ViewChangeEngine e;
  e.begin(InitMessage(ViewId(0), {}), view3(), sim::TimePoint::origin());
  StubDetector fd;
  const auto m = msg(0, 1);
  e.add_pred(pid(0), PredMessage(ViewId(0), {m, msg(0, 2)}));
  e.add_pred(pid(1), PredMessage(ViewId(0), {msg(0, 1), msg(1, 1)}));
  e.add_pred(pid(2), PredMessage(ViewId(0), {}));
  ASSERT_TRUE(ready_after_grace(e, view3(), fd));
  const auto proposal = e.take_proposal(view3());
  EXPECT_EQ(proposal->pred_view().size(), 3u);  // {0#1, 0#2, 1#1}
  EXPECT_TRUE(e.proposed());
  EXPECT_FALSE(ready_after_grace(e, view3(), fd));  // propose at most once
}

TEST(ViewChangeEngine, ResetClearsTheChange) {
  ViewChangeEngine e;
  e.begin(InitMessage(ViewId(0), {pid(2)}), view3(), sim::TimePoint::origin());
  StubDetector fd;
  for (std::uint32_t p = 0; p < 3; ++p) {
    e.add_pred(pid(p), PredMessage(ViewId(0), {msg(p, 1)}));
  }
  (void)e.take_proposal(view3());
  e.reset();
  EXPECT_FALSE(e.blocked());
  EXPECT_FALSE(e.proposed());

  // A fresh change starts from scratch: no leave carry-over, empty pred.
  const View v1(ViewId(1), {pid(0), pid(1)});
  e.begin(InitMessage(ViewId(1), {}), v1, sim::TimePoint::origin());
  e.add_pred(pid(0), PredMessage(ViewId(1), {}));
  e.add_pred(pid(1), PredMessage(ViewId(1), {}));
  ASSERT_TRUE(ready_after_grace(e, v1, fd));
  const auto proposal = e.take_proposal(v1);
  EXPECT_EQ(proposal->next_view().size(), 2u);
  EXPECT_TRUE(proposal->pred_view().empty());
}

TEST(ViewChangeEngine, DeferredControlBatches) {
  ViewChangeEngine e;
  const auto i2 = std::make_shared<InitMessage>(ViewId(2),
                                                std::vector<net::ProcessId>{});
  const auto i3 = std::make_shared<InitMessage>(ViewId(3),
                                                std::vector<net::ProcessId>{});
  e.defer(2, pid(1), i2);
  e.defer(3, pid(2), i3);
  EXPECT_TRUE(e.has_deferred());

  // Batches for superseded views are dropped; the due batch is returned.
  const auto due = e.take_due(2);
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(due[0].first, pid(1));
  EXPECT_TRUE(e.has_deferred());  // view 3 still parked
  const auto later = e.take_due(4);
  EXPECT_TRUE(later.empty());  // view 3's batch was below 4: dropped
  EXPECT_FALSE(e.has_deferred());
}

}  // namespace
}  // namespace svs::core
