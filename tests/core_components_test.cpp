// Unit tests for the extracted protocol components: StabilityTracker (the
// §2.1 gossip GC arithmetic) and ViewChangeEngine (the t4–t7 bookkeeping).
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "core/stability_tracker.hpp"
#include "core/view_change_engine.hpp"
#include "fd/failure_detector.hpp"
#include "obs/annotation.hpp"

namespace svs::core {
namespace {

net::ProcessId pid(std::uint32_t i) { return net::ProcessId(i); }

View view3() { return View(ViewId(0), {pid(0), pid(1), pid(2)}); }

DataMessagePtr msg(std::uint32_t sender, std::uint64_t seq) {
  return std::make_shared<DataMessage>(pid(sender), seq, ViewId(0),
                                       obs::Annotation::none(), nullptr);
}

class StubDetector final : public fd::FailureDetector {
 public:
  [[nodiscard]] bool suspects(net::ProcessId p) const override {
    return suspected.contains(p);
  }
  std::set<net::ProcessId> suspected;
};

// ---------------------------------------------------------------------------
// StabilityTracker
// ---------------------------------------------------------------------------

TEST(StabilityTracker, HighWaterMarksAreMonotone) {
  StabilityTracker t;
  EXPECT_FALSE(t.high_water(pid(1)).has_value());
  t.note_seen(pid(1), 5);
  t.note_seen(pid(1), 3);  // out-of-order report must not regress
  EXPECT_EQ(t.high_water(pid(1)), 5u);
  EXPECT_TRUE(t.dirty());
  t.clear_dirty();
  EXPECT_FALSE(t.dirty());
}

TEST(StabilityTracker, FloorIsZeroUntilEveryMemberReports) {
  StabilityTracker t;
  t.note_seen(pid(0), 10);
  // Only peer 1 reported; peer 2 silent -> nothing is stable.
  t.merge_report(pid(1), {{pid(0), 10}});
  EXPECT_EQ(t.floor_of(pid(0), view3(), pid(0)), 0u);
  // Peer 2 answers: the floor is the minimum over all members.
  t.merge_report(pid(2), {{pid(0), 7}});
  EXPECT_EQ(t.floor_of(pid(0), view3(), pid(0)), 7u);
}

TEST(StabilityTracker, FloorBoundedByOwnReception) {
  StabilityTracker t;
  t.note_seen(pid(0), 4);
  t.merge_report(pid(1), {{pid(0), 9}});
  t.merge_report(pid(2), {{pid(0), 9}});
  EXPECT_EQ(t.floor_of(pid(0), view3(), pid(0)), 4u);
}

TEST(StabilityTracker, PeerReportsAreMonotone) {
  StabilityTracker t;
  t.note_seen(pid(0), 9);
  t.merge_report(pid(1), {{pid(0), 8}});
  t.merge_report(pid(1), {{pid(0), 2}});  // stale gossip must not regress
  t.merge_report(pid(2), {{pid(0), 8}});
  EXPECT_EQ(t.floor_of(pid(0), view3(), pid(0)), 8u);
}

TEST(StabilityTracker, TakeDeltaShipsOnlyRaisedMarks) {
  StabilityTracker t;
  t.note_seen(pid(0), 3);
  t.note_seen(pid(1), 1);
  // First take: everything is new, so the delta is the full vector.
  const auto first = t.take_delta();
  EXPECT_EQ(first.size(), 2u);
  EXPECT_FALSE(t.dirty());

  t.note_seen(pid(0), 4);
  const auto second = t.take_delta();
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(second[0].first, pid(0));
  EXPECT_EQ(second[0].second, 4u);

  // A non-raising note changes nothing on the wire and owes no gossip
  // round: only a rising high-water mark dirties the tracker.
  t.note_seen(pid(1), 1);
  EXPECT_FALSE(t.dirty());
  EXPECT_TRUE(t.take_delta().empty());
}

TEST(StabilityTracker, TakeSnapshotShipsEverythingAndClearsChanges) {
  StabilityTracker t;
  t.note_seen(pid(0), 3);
  (void)t.take_delta();
  t.note_seen(pid(1), 1);
  // A full round repeats unchanged marks (self-healing for dropped deltas).
  const auto snap = t.take_snapshot();
  EXPECT_EQ(snap.size(), 2u);
  EXPECT_FALSE(t.dirty());
  t.note_seen(pid(1), 1);  // no raise
  EXPECT_TRUE(t.take_delta().empty());
}

TEST(StabilityTracker, DeltaFallsBackToFullVectorAfterReset) {
  StabilityTracker t;
  t.note_seen(pid(0), 5);
  t.note_seen(pid(1), 2);
  (void)t.take_delta();
  t.reset();  // view install
  t.note_seen(pid(0), 6);
  t.note_seen(pid(1), 3);
  // Post-install marks are all fresh: the first gossip is a full vector.
  const auto delta = t.take_delta();
  EXPECT_EQ(delta.size(), 2u);
  EXPECT_EQ(delta.size(), t.tracked_senders());
}

TEST(StabilityTracker, EntryWireBytesTracksSnapshotEncoding) {
  // The incrementally maintained entry_wire_bytes must always equal the
  // encoded size of the materialized snapshot's entries — it is what the
  // delta-gossip savings credit prices full rounds with.
  StabilityTracker t;
  const auto reference = [&t] {
    std::size_t bytes = 0;
    for (const auto& [sender, seq] : t.snapshot()) {
      bytes += util::varint_size(sender.value()) + util::varint_size(seq);
    }
    return bytes;
  };
  EXPECT_EQ(t.entry_wire_bytes(), 0u);
  t.note_seen(pid(0), 1);
  t.note_seen(pid(1), 100);  // one varint byte becomes two
  EXPECT_EQ(t.entry_wire_bytes(), reference());
  t.note_seen(pid(1), 200);   // same width
  t.note_seen(pid(0), 20000); // widens to three bytes
  t.note_seen(pid(0), 5);     // stale: no change
  EXPECT_EQ(t.entry_wire_bytes(), reference());
  t.reset();
  EXPECT_EQ(t.entry_wire_bytes(), 0u);
}

TEST(StabilityTracker, SnapshotAndReset) {
  StabilityTracker t;
  t.note_seen(pid(0), 1);
  t.note_seen(pid(1), 2);
  const auto snap = t.snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].first, pid(0));
  EXPECT_EQ(snap[1].second, 2u);
  t.reset();
  EXPECT_FALSE(t.high_water(pid(0)).has_value());
  EXPECT_FALSE(t.dirty());
  EXPECT_TRUE(t.snapshot().empty());
}

TEST(StabilityTracker, ExactReceptionTracksGapsBelowTheHighWater) {
  // Sender-side purging removes seqs from a channel, so reception is not
  // contiguous: the high-water mark says nothing about the gaps below it,
  // and received() must answer exactly (the t7 flush relies on it).
  StabilityTracker t;
  t.note_seen(pid(1), 1);
  t.note_seen(pid(1), 2);
  t.note_seen(pid(1), 5);  // 3 and 4 were purged out of the channel
  EXPECT_TRUE(t.received(pid(1), 2));
  EXPECT_FALSE(t.received(pid(1), 3));
  EXPECT_FALSE(t.received(pid(1), 4));
  EXPECT_TRUE(t.received(pid(1), 5));
  EXPECT_FALSE(t.received(pid(1), 6));
  EXPECT_EQ(t.high_water(pid(1)), 5u);
  // A view-change flush closes the gap; the frontier does not regress.
  t.note_seen(pid(1), 3);
  t.note_seen(pid(1), 4);
  EXPECT_TRUE(t.received(pid(1), 3));
  EXPECT_TRUE(t.received(pid(1), 4));
  EXPECT_EQ(t.high_water(pid(1)), 5u);
}

TEST(StabilityTracker, ReceptionMayStartAboveTheViewsFirstSeq) {
  // Even the first messages of a view can be purged away before anything
  // gets through: the record starts at the first seq actually received and
  // claims nothing below it.
  StabilityTracker t;
  t.note_seen(pid(1), 7);
  EXPECT_FALSE(t.received(pid(1), 6));
  EXPECT_TRUE(t.received(pid(1), 7));
  t.note_seen(pid(1), 6);  // flush-in extends the record downwards
  EXPECT_TRUE(t.received(pid(1), 6));
  EXPECT_FALSE(t.received(pid(1), 5));
  EXPECT_EQ(t.high_water(pid(1)), 7u);
}

// ---------------------------------------------------------------------------
// ViewChangeEngine
// ---------------------------------------------------------------------------

TEST(ViewChangeEngine, BeginBlocksAndFiltersLeaveSet) {
  ViewChangeEngine e;
  EXPECT_FALSE(e.blocked());
  // pid(9) is not a member; the leave set keeps only current members.
  const InitMessage init(ViewId(0), {pid(2), pid(9)});
  e.begin(init, view3(), sim::TimePoint::origin() + sim::Duration::millis(5));
  EXPECT_TRUE(e.blocked());
  EXPECT_EQ(e.started_at(),
            sim::TimePoint::origin() + sim::Duration::millis(5));

  StubDetector fd;
  for (std::uint32_t p = 0; p < 3; ++p) {
    e.add_pred(pid(p), PredMessage(ViewId(0), {}));
  }
  ASSERT_TRUE(e.ready_to_propose(view3(), fd));
  const auto proposal = e.take_proposal(view3());
  EXPECT_EQ(proposal->next_view().id(), ViewId(1));
  EXPECT_EQ(proposal->next_view().size(), 2u);
  EXPECT_FALSE(proposal->next_view().contains(pid(2)));
}

TEST(ViewChangeEngine, ProposeWaitsForUnsuspectedMembers) {
  ViewChangeEngine e;
  e.begin(InitMessage(ViewId(0), {}), view3(), sim::TimePoint::origin());
  StubDetector fd;
  e.add_pred(pid(0), PredMessage(ViewId(0), {}));
  e.add_pred(pid(1), PredMessage(ViewId(0), {}));
  // pid(2) neither answered nor is suspected: the guard holds.
  EXPECT_FALSE(e.ready_to_propose(view3(), fd));
  fd.suspected.insert(pid(2));
  EXPECT_TRUE(e.ready_to_propose(view3(), fd));
}

TEST(ViewChangeEngine, ProposeNeedsAMajority) {
  ViewChangeEngine e;
  e.begin(InitMessage(ViewId(0), {}), view3(), sim::TimePoint::origin());
  StubDetector fd;
  fd.suspected = {pid(1), pid(2)};
  e.add_pred(pid(0), PredMessage(ViewId(0), {}));
  // Every unsuspected member answered, but 1 of 3 is not a majority.
  EXPECT_FALSE(e.ready_to_propose(view3(), fd));
  e.add_pred(pid(1), PredMessage(ViewId(0), {}));
  EXPECT_TRUE(e.ready_to_propose(view3(), fd));
}

TEST(ViewChangeEngine, GlobalPredDeduplicatesById) {
  ViewChangeEngine e;
  e.begin(InitMessage(ViewId(0), {}), view3(), sim::TimePoint::origin());
  StubDetector fd;
  const auto m = msg(0, 1);
  e.add_pred(pid(0), PredMessage(ViewId(0), {m, msg(0, 2)}));
  e.add_pred(pid(1), PredMessage(ViewId(0), {msg(0, 1), msg(1, 1)}));
  e.add_pred(pid(2), PredMessage(ViewId(0), {}));
  ASSERT_TRUE(e.ready_to_propose(view3(), fd));
  const auto proposal = e.take_proposal(view3());
  EXPECT_EQ(proposal->pred_view().size(), 3u);  // {0#1, 0#2, 1#1}
  EXPECT_TRUE(e.proposed());
  EXPECT_FALSE(e.ready_to_propose(view3(), fd));  // propose at most once
}

TEST(ViewChangeEngine, ResetClearsTheChange) {
  ViewChangeEngine e;
  e.begin(InitMessage(ViewId(0), {pid(2)}), view3(), sim::TimePoint::origin());
  StubDetector fd;
  for (std::uint32_t p = 0; p < 3; ++p) {
    e.add_pred(pid(p), PredMessage(ViewId(0), {msg(p, 1)}));
  }
  (void)e.take_proposal(view3());
  e.reset();
  EXPECT_FALSE(e.blocked());
  EXPECT_FALSE(e.proposed());

  // A fresh change starts from scratch: no leave carry-over, empty pred.
  const View v1(ViewId(1), {pid(0), pid(1)});
  e.begin(InitMessage(ViewId(1), {}), v1, sim::TimePoint::origin());
  e.add_pred(pid(0), PredMessage(ViewId(1), {}));
  e.add_pred(pid(1), PredMessage(ViewId(1), {}));
  ASSERT_TRUE(e.ready_to_propose(v1, fd));
  const auto proposal = e.take_proposal(v1);
  EXPECT_EQ(proposal->next_view().size(), 2u);
  EXPECT_TRUE(proposal->pred_view().empty());
}

TEST(ViewChangeEngine, DeferredControlBatches) {
  ViewChangeEngine e;
  const auto i2 = std::make_shared<InitMessage>(ViewId(2),
                                                std::vector<net::ProcessId>{});
  const auto i3 = std::make_shared<InitMessage>(ViewId(3),
                                                std::vector<net::ProcessId>{});
  e.defer(2, pid(1), i2);
  e.defer(3, pid(2), i3);
  EXPECT_TRUE(e.has_deferred());

  // Batches for superseded views are dropped; the due batch is returned.
  const auto due = e.take_due(2);
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(due[0].first, pid(1));
  EXPECT_TRUE(e.has_deferred());  // view 3 still parked
  const auto later = e.take_due(4);
  EXPECT_TRUE(later.empty());  // view 3's batch was below 4: dropped
  EXPECT_FALSE(e.has_deferred());
}

}  // namespace
}  // namespace svs::core
