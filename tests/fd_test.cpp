// Unit tests for the failure detectors.
#include <gtest/gtest.h>

#include "fd/heartbeat.hpp"
#include "fd/oracle.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"

namespace svs::fd {
namespace {

class NullSink final : public net::Endpoint {
 public:
  bool on_message(net::ProcessId, const net::MessagePtr&,
                  net::Lane) override {
    return true;
  }
};

struct OracleFixture : ::testing::Test {
  OracleFixture() : network(sim, {}) {
    for (std::uint32_t i = 0; i < 3; ++i) {
      network.attach(net::ProcessId(i), sinks[i]);
    }
  }
  sim::Simulator sim;
  NullSink sinks[3];
  net::Network network;
};

TEST_F(OracleFixture, NoSuspicionWithoutCrash) {
  OracleDetector fd(sim, network, net::ProcessId(0), sim::Duration::millis(30));
  sim.run_until(sim::TimePoint::origin() + sim::Duration::seconds(1.0));
  EXPECT_FALSE(fd.suspects(net::ProcessId(1)));
  EXPECT_FALSE(fd.suspects(net::ProcessId(2)));
}

TEST_F(OracleFixture, SuspectsAfterDetectionDelay) {
  OracleDetector fd(sim, network, net::ProcessId(0), sim::Duration::millis(30));
  network.crash(net::ProcessId(1));
  sim.run_until(sim.now() + sim::Duration::millis(29));
  EXPECT_FALSE(fd.suspects(net::ProcessId(1)));
  sim.run_until(sim.now() + sim::Duration::millis(2));
  EXPECT_TRUE(fd.suspects(net::ProcessId(1)));
  EXPECT_FALSE(fd.suspects(net::ProcessId(2)));
}

TEST_F(OracleFixture, OwnerNeverSuspectsItself) {
  OracleDetector fd(sim, network, net::ProcessId(0), sim::Duration::zero());
  network.crash(net::ProcessId(0));
  sim.run();
  EXPECT_FALSE(fd.suspects(net::ProcessId(0)));
}

TEST_F(OracleFixture, ListenersNotifiedOnce) {
  OracleDetector fd(sim, network, net::ProcessId(0), sim::Duration::millis(5));
  int notifications = 0;
  fd.subscribe([&] { ++notifications; });
  network.crash(net::ProcessId(1));
  sim.run();
  EXPECT_EQ(notifications, 1);
}

struct HeartbeatFixture : ::testing::Test {
  static constexpr std::uint32_t kN = 3;

  HeartbeatFixture() : network(sim, {}) {
    for (std::uint32_t i = 0; i < kN; ++i) {
      network.attach(net::ProcessId(i), routers_[i]);
    }
    for (std::uint32_t i = 0; i < kN; ++i) {
      std::vector<net::ProcessId> peers;
      for (std::uint32_t j = 0; j < kN; ++j) {
        if (j != i) peers.push_back(net::ProcessId(j));
      }
      detectors_[i] = std::make_unique<HeartbeatDetector>(
          sim, network, net::ProcessId(i), peers, config_);
      routers_[i].detector = detectors_[i].get();
    }
    for (auto& d : detectors_) d->start();
  }

  struct Router final : net::Endpoint {
    bool on_message(net::ProcessId from, const net::MessagePtr& message,
                    net::Lane) override {
      if (std::dynamic_pointer_cast<const HeartbeatMessage>(message)) {
        detector->on_heartbeat(from);
      }
      return true;
    }
    HeartbeatDetector* detector = nullptr;
  };

  sim::Simulator sim;
  net::Network network;
  HeartbeatDetector::Config config_{
      .interval = sim::Duration::millis(20),
      .initial_timeout = sim::Duration::millis(100),
      .backoff = 2.0,
      .max_timeout = sim::Duration::seconds(5.0)};
  Router routers_[kN];
  std::unique_ptr<HeartbeatDetector> detectors_[kN];
};

TEST_F(HeartbeatFixture, NoSuspicionsInHealthyRuns) {
  sim.run_until(sim::TimePoint::origin() + sim::Duration::seconds(3.0));
  for (std::uint32_t i = 0; i < kN; ++i) {
    for (std::uint32_t j = 0; j < kN; ++j) {
      if (i != j) {
        EXPECT_FALSE(detectors_[i]->suspects(net::ProcessId(j)))
            << i << " suspects " << j;
      }
    }
  }
}

TEST_F(HeartbeatFixture, CrashedPeerEventuallySuspected) {
  sim.run_until(sim::TimePoint::origin() + sim::Duration::seconds(1.0));
  network.crash(net::ProcessId(2));
  sim.run_until(sim.now() + sim::Duration::millis(200));
  EXPECT_TRUE(detectors_[0]->suspects(net::ProcessId(2)));
  EXPECT_TRUE(detectors_[1]->suspects(net::ProcessId(2)));
  EXPECT_FALSE(detectors_[0]->suspects(net::ProcessId(1)));
}

TEST_F(HeartbeatFixture, FalseSuspicionRevokedAndTimeoutWidened) {
  const auto before = detectors_[0]->timeout_of(net::ProcessId(1));
  // Delay 1 -> 0 heartbeats long enough to trip the timeout, then recover.
  network.set_link_slowdown(net::ProcessId(1), net::ProcessId(0),
                            sim::Duration::millis(300));
  sim.run_until(sim.now() + sim::Duration::millis(150));
  EXPECT_TRUE(detectors_[0]->suspects(net::ProcessId(1)));

  network.set_link_slowdown(net::ProcessId(1), net::ProcessId(0),
                            sim::Duration::zero());
  sim.run_until(sim.now() + sim::Duration::millis(500));
  EXPECT_FALSE(detectors_[0]->suspects(net::ProcessId(1)));
  EXPECT_GT(detectors_[0]->timeout_of(net::ProcessId(1)), before);
}

TEST_F(HeartbeatFixture, TimeoutCappedAtMax) {
  // Repeated false suspicions must not push the timeout past max_timeout.
  for (int round = 0; round < 12; ++round) {
    network.set_link_slowdown(net::ProcessId(1), net::ProcessId(0),
                              sim::Duration::seconds(6.0));
    sim.run_until(sim.now() + sim::Duration::seconds(6.0));
    network.set_link_slowdown(net::ProcessId(1), net::ProcessId(0),
                              sim::Duration::zero());
    sim.run_until(sim.now() + sim::Duration::seconds(7.0));
  }
  EXPECT_LE(detectors_[0]->timeout_of(net::ProcessId(1)),
            sim::Duration::seconds(5.0));
}

TEST(HeartbeatConfig, RejectsBadParameters) {
  sim::Simulator sim;
  net::Network network(sim, {});
  NullSink sink;
  network.attach(net::ProcessId(0), sink);
  HeartbeatDetector::Config bad;
  bad.interval = sim::Duration::millis(50);
  bad.initial_timeout = sim::Duration::millis(10);  // must exceed interval
  EXPECT_THROW(HeartbeatDetector(sim, network, net::ProcessId(0),
                                 {net::ProcessId(1)}, bad),
               util::ContractViolation);
}

}  // namespace
}  // namespace svs::fd
