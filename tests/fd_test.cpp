// Unit tests for the failure detectors.
#include <gtest/gtest.h>

#include <deque>
#include <memory>
#include <vector>

#include "fd/heartbeat.hpp"
#include "fd/oracle.hpp"
#include "fd/swim.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"

namespace svs::fd {
namespace {

class NullSink final : public net::Endpoint {
 public:
  bool on_message(net::ProcessId, const net::MessagePtr&,
                  net::Lane) override {
    return true;
  }
};

struct OracleFixture : ::testing::Test {
  OracleFixture() : network(sim, {}) {
    for (std::uint32_t i = 0; i < 3; ++i) {
      network.attach(net::ProcessId(i), sinks[i]);
    }
  }
  sim::Simulator sim;
  NullSink sinks[3];
  net::Network network;
};

TEST_F(OracleFixture, NoSuspicionWithoutCrash) {
  OracleDetector fd(sim, network, net::ProcessId(0), sim::Duration::millis(30));
  sim.run_until(sim::TimePoint::origin() + sim::Duration::seconds(1.0));
  EXPECT_FALSE(fd.suspects(net::ProcessId(1)));
  EXPECT_FALSE(fd.suspects(net::ProcessId(2)));
}

TEST_F(OracleFixture, SuspectsAfterDetectionDelay) {
  OracleDetector fd(sim, network, net::ProcessId(0), sim::Duration::millis(30));
  network.crash(net::ProcessId(1));
  sim.run_until(sim.now() + sim::Duration::millis(29));
  EXPECT_FALSE(fd.suspects(net::ProcessId(1)));
  sim.run_until(sim.now() + sim::Duration::millis(2));
  EXPECT_TRUE(fd.suspects(net::ProcessId(1)));
  EXPECT_FALSE(fd.suspects(net::ProcessId(2)));
}

TEST_F(OracleFixture, OwnerNeverSuspectsItself) {
  OracleDetector fd(sim, network, net::ProcessId(0), sim::Duration::zero());
  network.crash(net::ProcessId(0));
  sim.run();
  EXPECT_FALSE(fd.suspects(net::ProcessId(0)));
}

TEST_F(OracleFixture, ListenersNotifiedOnce) {
  OracleDetector fd(sim, network, net::ProcessId(0), sim::Duration::millis(5));
  int notifications = 0;
  fd.subscribe([&] { ++notifications; });
  network.crash(net::ProcessId(1));
  sim.run();
  EXPECT_EQ(notifications, 1);
}

struct HeartbeatFixture : ::testing::Test {
  static constexpr std::uint32_t kN = 3;

  HeartbeatFixture() : network(sim, {}) {
    for (std::uint32_t i = 0; i < kN; ++i) {
      network.attach(net::ProcessId(i), routers_[i]);
    }
    for (std::uint32_t i = 0; i < kN; ++i) {
      std::vector<net::ProcessId> peers;
      for (std::uint32_t j = 0; j < kN; ++j) {
        if (j != i) peers.push_back(net::ProcessId(j));
      }
      detectors_[i] = std::make_unique<HeartbeatDetector>(
          sim, network, net::ProcessId(i), peers, config_);
      routers_[i].detector = detectors_[i].get();
    }
    for (auto& d : detectors_) d->start();
  }

  struct Router final : net::Endpoint {
    bool on_message(net::ProcessId from, const net::MessagePtr& message,
                    net::Lane) override {
      if (std::dynamic_pointer_cast<const HeartbeatMessage>(message)) {
        detector->on_heartbeat(from);
      }
      return true;
    }
    HeartbeatDetector* detector = nullptr;
  };

  sim::Simulator sim;
  net::Network network;
  HeartbeatDetector::Config config_{
      .interval = sim::Duration::millis(20),
      .initial_timeout = sim::Duration::millis(100),
      .backoff = 2.0,
      .max_timeout = sim::Duration::seconds(5.0)};
  Router routers_[kN];
  std::unique_ptr<HeartbeatDetector> detectors_[kN];
};

TEST_F(HeartbeatFixture, NoSuspicionsInHealthyRuns) {
  sim.run_until(sim::TimePoint::origin() + sim::Duration::seconds(3.0));
  for (std::uint32_t i = 0; i < kN; ++i) {
    for (std::uint32_t j = 0; j < kN; ++j) {
      if (i != j) {
        EXPECT_FALSE(detectors_[i]->suspects(net::ProcessId(j)))
            << i << " suspects " << j;
      }
    }
  }
}

TEST_F(HeartbeatFixture, CrashedPeerEventuallySuspected) {
  sim.run_until(sim::TimePoint::origin() + sim::Duration::seconds(1.0));
  network.crash(net::ProcessId(2));
  sim.run_until(sim.now() + sim::Duration::millis(200));
  EXPECT_TRUE(detectors_[0]->suspects(net::ProcessId(2)));
  EXPECT_TRUE(detectors_[1]->suspects(net::ProcessId(2)));
  EXPECT_FALSE(detectors_[0]->suspects(net::ProcessId(1)));
}

TEST_F(HeartbeatFixture, FalseSuspicionRevokedAndTimeoutWidened) {
  const auto before = detectors_[0]->timeout_of(net::ProcessId(1));
  // Delay 1 -> 0 heartbeats long enough to trip the timeout, then recover.
  network.set_link_slowdown(net::ProcessId(1), net::ProcessId(0),
                            sim::Duration::millis(300));
  sim.run_until(sim.now() + sim::Duration::millis(150));
  EXPECT_TRUE(detectors_[0]->suspects(net::ProcessId(1)));

  network.set_link_slowdown(net::ProcessId(1), net::ProcessId(0),
                            sim::Duration::zero());
  sim.run_until(sim.now() + sim::Duration::millis(500));
  EXPECT_FALSE(detectors_[0]->suspects(net::ProcessId(1)));
  EXPECT_GT(detectors_[0]->timeout_of(net::ProcessId(1)), before);
}

TEST_F(HeartbeatFixture, TimeoutCappedAtMax) {
  // Repeated false suspicions must not push the timeout past max_timeout.
  for (int round = 0; round < 12; ++round) {
    network.set_link_slowdown(net::ProcessId(1), net::ProcessId(0),
                              sim::Duration::seconds(6.0));
    sim.run_until(sim.now() + sim::Duration::seconds(6.0));
    network.set_link_slowdown(net::ProcessId(1), net::ProcessId(0),
                              sim::Duration::zero());
    sim.run_until(sim.now() + sim::Duration::seconds(7.0));
  }
  EXPECT_LE(detectors_[0]->timeout_of(net::ProcessId(1)),
            sim::Duration::seconds(5.0));
}

TEST(HeartbeatConfig, RejectsBadParameters) {
  sim::Simulator sim;
  net::Network network(sim, {});
  NullSink sink;
  network.attach(net::ProcessId(0), sink);
  HeartbeatDetector::Config bad;
  bad.interval = sim::Duration::millis(50);
  bad.initial_timeout = sim::Duration::millis(10);  // must exceed interval
  EXPECT_THROW(HeartbeatDetector(sim, network, net::ProcessId(0),
                                 {net::ProcessId(1)}, bad),
               util::ContractViolation);
}

/// A complete SWIM deployment on the simulated network: one detector per
/// process, routers that hand swim_* traffic to the local detector and keep
/// every ack they see (so tests can inspect piggyback sections on the wire).
struct SwimHarness {
  struct Router final : net::Endpoint {
    bool on_message(net::ProcessId from, const net::MessagePtr& message,
                    net::Lane) override {
      if (message->type() == net::MessageType::swim_ack) {
        acks.push_back(std::static_pointer_cast<const SwimAckMessage>(message));
      }
      if (detector != nullptr) detector->on_message(from, message);
      return true;
    }
    SwimDetector* detector = nullptr;
    std::vector<std::shared_ptr<const SwimAckMessage>> acks;
  };

  SwimHarness(std::uint32_t n, SwimDetector::Config config, bool start = true)
      : network(sim, {}), routers(n) {
    for (std::uint32_t i = 0; i < n; ++i) {
      network.attach(net::ProcessId(i), routers[i]);
    }
    for (std::uint32_t i = 0; i < n; ++i) {
      std::vector<net::ProcessId> peers;
      for (std::uint32_t j = 0; j < n; ++j) {
        if (j != i) peers.push_back(net::ProcessId(j));
      }
      detectors.push_back(std::make_unique<SwimDetector>(
          sim, network, net::ProcessId(i), peers, config));
      routers[i].detector = detectors.back().get();
    }
    if (start) {
      for (auto& d : detectors) d->start();
    }
  }

  void run_for(double seconds) {
    sim.run_until(sim.now() + sim::Duration::seconds(seconds));
  }

  sim::Simulator sim;
  net::Network network;
  std::deque<Router> routers;  // stable addresses across attach()
  std::vector<std::unique_ptr<SwimDetector>> detectors;
};

SwimDetector::Config swim_config() {
  SwimDetector::Config config;
  config.period = sim::Duration::millis(20);
  config.direct_timeout = sim::Duration::millis(6);
  config.indirect_probes = 2;
  config.suspicion_periods = 2;
  config.piggyback_limit = 8;
  config.retransmit_factor = 3;
  config.seed = 77;
  return config;
}

TEST(SwimDetectorTest, HealthyGroupProbesWithoutSuspicion) {
  SwimHarness h(4, swim_config());
  h.run_for(0.5);
  for (std::uint32_t i = 0; i < 4; ++i) {
    EXPECT_GT(h.detectors[i]->counters().probes_sent, 0u);
    EXPECT_GT(h.detectors[i]->counters().acks_received, 0u);
    EXPECT_EQ(h.detectors[i]->counters().suspicions, 0u);
    for (std::uint32_t j = 0; j < 4; ++j) {
      if (i != j) EXPECT_FALSE(h.detectors[i]->suspects(net::ProcessId(j)));
    }
  }
}

TEST(SwimDetectorTest, CrashTriggersIndirectProbesThenSuspicionThenConfirm) {
  SwimHarness h(4, swim_config());
  h.run_for(0.2);
  h.network.crash(net::ProcessId(3));
  // Worst case: probed on the last slot of a 3-peer cycle (60ms), then the
  // direct timeout, the k ping-reqs, and two suspicion periods (40ms).
  h.run_for(0.5);
  std::uint64_t indirect = 0;
  std::uint64_t relayed = 0;
  for (std::uint32_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(h.detectors[i]->suspects(net::ProcessId(3))) << i;
    EXPECT_TRUE(h.detectors[i]->confirmed(net::ProcessId(3))) << i;
    indirect += h.detectors[i]->counters().indirect_probes_sent;
    relayed += h.detectors[i]->counters().ping_reqs_relayed;
    for (std::uint32_t j = 0; j < 3; ++j) {
      if (i != j) EXPECT_FALSE(h.detectors[i]->suspects(net::ProcessId(j)));
    }
  }
  // The first prober to time out asked k live relays; they obliged.
  EXPECT_GE(indirect, 2u);
  EXPECT_GE(relayed, 1u);
}

TEST(SwimDetectorTest, IncarnationOverrideRules) {
  SwimHarness h(3, swim_config(), /*start=*/false);
  auto& fd = *h.detectors[0];
  const net::ProcessId p1(1);
  const net::ProcessId p2(2);
  const auto deliver = [&](SwimUpdate update) {
    fd.on_message(p1, std::make_shared<SwimPingMessage>(
                          /*nonce=*/99, SwimUpdates{update}));
  };

  // suspect(i) beats alive(i); alive must strictly exceed it to refute.
  deliver({p2, SwimUpdate::Status::suspect, 0});
  EXPECT_TRUE(fd.suspects(p2));
  deliver({p2, SwimUpdate::Status::alive, 0});
  EXPECT_TRUE(fd.suspects(p2));
  deliver({p2, SwimUpdate::Status::alive, 1});
  EXPECT_FALSE(fd.suspects(p2));
  EXPECT_EQ(fd.counters().refutations, 1u);

  // Confirm is sticky against same-incarnation gossip but yields to the
  // member's own higher-incarnation refutation.
  deliver({p2, SwimUpdate::Status::confirm, 1});
  EXPECT_TRUE(fd.confirmed(p2));
  deliver({p2, SwimUpdate::Status::alive, 1});
  EXPECT_TRUE(fd.confirmed(p2));
  deliver({p2, SwimUpdate::Status::suspect, 5});
  EXPECT_TRUE(fd.confirmed(p2));
  deliver({p2, SwimUpdate::Status::alive, 2});
  EXPECT_FALSE(fd.suspects(p2));
  EXPECT_EQ(fd.incarnation_of(p2), 2u);
}

TEST(SwimDetectorTest, SelfSuspicionRefutedByIncarnationBump) {
  SwimHarness h(3, swim_config(), /*start=*/false);
  auto& fd = *h.detectors[0];
  EXPECT_EQ(fd.incarnation(), 0u);
  fd.on_message(net::ProcessId(1),
                std::make_shared<SwimPingMessage>(
                    /*nonce=*/7, SwimUpdates{{net::ProcessId(0),
                                              SwimUpdate::Status::suspect, 0}}));
  EXPECT_EQ(fd.incarnation(), 1u);
  EXPECT_EQ(fd.counters().refutations, 1u);
  // The answering ack certifies the bumped incarnation and piggybacks the
  // alive update that will beat the suspicion wherever it spread.
  h.sim.run();
  ASSERT_EQ(h.routers[1].acks.size(), 1u);
  const auto& ack = *h.routers[1].acks.front();
  EXPECT_EQ(ack.subject(), net::ProcessId(0));
  EXPECT_EQ(ack.incarnation(), 1u);
  const SwimUpdate refutation{net::ProcessId(0), SwimUpdate::Status::alive, 1};
  EXPECT_NE(std::find(ack.updates().begin(), ack.updates().end(), refutation),
            ack.updates().end());
}

TEST(SwimDetectorTest, ConfirmedMemberRecoversThroughProbeRefutation) {
  // A healed partition leaves a live member falsely confirmed.  The
  // confirmer must keep probing it, tell it of the accusation, and accept
  // the bumped-incarnation refutation — otherwise mutual confirms are
  // permanent and consensus liveness (◊S) is gone.
  SwimHarness h(3, swim_config());
  h.detectors[0]->on_message(
      net::ProcessId(1),
      std::make_shared<SwimPingMessage>(
          /*nonce=*/1,
          SwimUpdates{{net::ProcessId(2), SwimUpdate::Status::confirm, 0}}));
  ASSERT_TRUE(h.detectors[0]->confirmed(net::ProcessId(2)));
  h.run_for(0.5);
  EXPECT_FALSE(h.detectors[0]->suspects(net::ProcessId(2)));
  EXPECT_GE(h.detectors[2]->incarnation(), 1u);
  for (std::uint32_t i = 0; i < 3; ++i) {
    for (std::uint32_t j = 0; j < 3; ++j) {
      if (i != j) EXPECT_FALSE(h.detectors[i]->suspects(net::ProcessId(j)));
    }
  }
}

TEST(SwimDetectorTest, PiggybackRespectsLimit) {
  auto config = swim_config();
  config.piggyback_limit = 4;
  SwimHarness h(12, config, /*start=*/false);
  // Ten fresh suspicions all want to disseminate; one ack has room for 4.
  SwimUpdates updates;
  for (std::uint32_t i = 2; i < 12; ++i) {
    updates.push_back({net::ProcessId(i), SwimUpdate::Status::suspect, 0});
  }
  h.detectors[0]->on_message(
      net::ProcessId(1),
      std::make_shared<SwimPingMessage>(/*nonce=*/5, std::move(updates)));
  h.sim.run();
  ASSERT_EQ(h.routers[1].acks.size(), 1u);
  EXPECT_EQ(h.routers[1].acks.front()->updates().size(), 4u);
}

TEST(SwimDetectorTest, SameSeedRunsAreBitIdentical) {
  const auto run = [](SwimHarness& h) {
    h.run_for(0.3);
    h.network.crash(net::ProcessId(4));
    h.run_for(0.7);
  };
  SwimHarness a(5, swim_config());
  SwimHarness b(5, swim_config());
  run(a);
  run(b);
  for (std::uint32_t i = 0; i < 5; ++i) {
    const auto& ca = a.detectors[i]->counters();
    const auto& cb = b.detectors[i]->counters();
    EXPECT_EQ(ca.probes_sent, cb.probes_sent) << i;
    EXPECT_EQ(ca.acks_received, cb.acks_received) << i;
    EXPECT_EQ(ca.indirect_probes_sent, cb.indirect_probes_sent) << i;
    EXPECT_EQ(ca.ping_reqs_relayed, cb.ping_reqs_relayed) << i;
    EXPECT_EQ(ca.suspicions, cb.suspicions) << i;
    EXPECT_EQ(ca.refutations, cb.refutations) << i;
    EXPECT_EQ(ca.confirms, cb.confirms) << i;
    EXPECT_EQ(ca.updates_piggybacked, cb.updates_piggybacked) << i;
    EXPECT_EQ(a.detectors[i]->incarnation(), b.detectors[i]->incarnation());
    for (std::uint32_t j = 0; j < 5; ++j) {
      if (i != j) {
        EXPECT_EQ(a.detectors[i]->suspects(net::ProcessId(j)),
                  b.detectors[i]->suspects(net::ProcessId(j)));
      }
    }
  }
}

TEST(SwimConfig, RejectsBadParameters) {
  sim::Simulator sim;
  net::Network network(sim, {});
  NullSink sink;
  network.attach(net::ProcessId(0), sink);

  SwimDetector::Config bad = swim_config();
  bad.direct_timeout = bad.period;  // must fall inside the period
  EXPECT_THROW(
      SwimDetector(sim, network, net::ProcessId(0), {net::ProcessId(1)}, bad),
      util::ContractViolation);

  bad = swim_config();
  bad.suspicion_periods = 0;
  EXPECT_THROW(
      SwimDetector(sim, network, net::ProcessId(0), {net::ProcessId(1)}, bad),
      util::ContractViolation);

  // A detector never monitors its own process.
  EXPECT_THROW(SwimDetector(sim, network, net::ProcessId(0),
                            {net::ProcessId(0), net::ProcessId(1)},
                            swim_config()),
               util::ContractViolation);
}

}  // namespace
}  // namespace svs::fd
