// Tests for the replicated applications: ItemTable batch atomicity and the
// primary-backup KvStore.
#include <gtest/gtest.h>

#include <memory>

#include "app/item_table.hpp"
#include "app/kv_store.hpp"
#include "core/group.hpp"
#include "obs/relation.hpp"
#include "workload/consumer.hpp"
#include "workload/item_op.hpp"

namespace svs::app {
namespace {

using workload::ItemOp;
using workload::OpKind;

core::Delivery op(OpKind kind, workload::ItemId item, std::uint64_t value,
                  bool commit, std::uint64_t round = 0) {
  // Sender/seq/view are irrelevant to the table; use fixed ids.
  static std::uint64_t seq = 0;
  auto payload = std::make_shared<ItemOp>(kind, item, value, round, commit);
  auto msg = std::make_shared<core::DataMessage>(
      net::ProcessId(0), ++seq, core::ViewId(0), obs::Annotation::none(),
      payload);
  return core::Delivery{core::DataDelivery{msg}};
}

TEST(ItemTable, AppliesBatchOnlyAtCommit) {
  ItemTable t;
  t.apply(op(OpKind::update, 1, 10, false));
  t.apply(op(OpKind::update, 2, 20, false));
  EXPECT_EQ(t.size(), 0u);  // uncommitted
  EXPECT_EQ(t.pending_ops(), 2u);
  t.apply(op(OpKind::update, 3, 30, true));
  EXPECT_EQ(t.size(), 3u);
  EXPECT_EQ(t.pending_ops(), 0u);
  EXPECT_EQ(t.batches_applied(), 1u);
  EXPECT_EQ(t.ops_applied(), 3u);
  EXPECT_EQ(t.get(1)->value, 10u);
  EXPECT_EQ(t.get(2)->value, 20u);
  EXPECT_EQ(t.get(3)->value, 30u);
}

TEST(ItemTable, CreateUpdateDestroyLifecycle) {
  ItemTable t;
  t.apply(op(OpKind::create, 9, 1, true));
  EXPECT_EQ(t.get(9)->value, 1u);
  t.apply(op(OpKind::update, 9, 2, true));
  EXPECT_EQ(t.get(9)->value, 2u);
  t.apply(op(OpKind::destroy, 9, 0, true));
  EXPECT_FALSE(t.get(9).has_value());
}

TEST(ItemTable, DuplicateCreateRejected) {
  ItemTable t;
  t.apply(op(OpKind::create, 9, 1, true));
  EXPECT_THROW(t.apply(op(OpKind::create, 9, 1, true)),
               util::ContractViolation);
}

TEST(ItemTable, DestroyOfUnknownItemTolerated) {
  // All prior writes of the item may have been purged (§4.1 merge case).
  ItemTable t;
  t.apply(op(OpKind::destroy, 9, 0, true));
  EXPECT_EQ(t.size(), 0u);
}

TEST(ItemTable, MergedBatchesApplyInFifoOrder) {
  // Batch 1 lost its commit to purging; its survivor merges into batch 2.
  // FIFO order makes the newer value win.
  ItemTable t;
  t.apply(op(OpKind::update, 1, 10, false));  // survivor of batch 1
  t.apply(op(OpKind::update, 1, 11, false));  // batch 2
  t.apply(op(OpKind::update, 2, 22, true));   // commit of batch 2
  EXPECT_EQ(t.get(1)->value, 11u);
  EXPECT_EQ(t.get(2)->value, 22u);
  EXPECT_EQ(t.batches_applied(), 1u);
}

TEST(ItemTable, DigestChangesWithState) {
  ItemTable a, b;
  a.apply(op(OpKind::update, 1, 10, true));
  b.apply(op(OpKind::update, 1, 11, true));
  EXPECT_NE(a.digest(), b.digest());
  b.apply(op(OpKind::update, 1, 10, true));
  EXPECT_EQ(a.digest(), b.digest());
}

TEST(ItemTable, RecordsDigestAtViewInstall) {
  ItemTable t;
  t.apply(op(OpKind::update, 1, 10, true));
  t.apply(core::Delivery{core::ViewDelivery{
      core::View(core::ViewId(1), {net::ProcessId(0)})}});
  ASSERT_TRUE(t.digests_at_install().contains(1));
  EXPECT_EQ(t.digests_at_install().at(1), t.digest());
}

// ---------------------------------------------------------------------------
// KvStore over a live group.
// ---------------------------------------------------------------------------

struct KvFixture : ::testing::Test {
  static constexpr std::size_t kN = 3;

  KvFixture() {
    core::Group::Config cfg;
    cfg.size = kN;
    cfg.node.relation = std::make_shared<obs::KEnumRelation>();
    group = std::make_unique<core::Group>(sim, cfg);
    for (std::size_t i = 0; i < kN; ++i) {
      stores.push_back(std::make_unique<KvStore>(group->node(i), KvStore::Config{}));
      consumers.push_back(std::make_unique<workload::InstantConsumer>(
          sim, group->node(i)));
      auto* store = stores.back().get();
      consumers.back()->set_sink(
          [store](const core::Delivery& d) { store->apply(d); });
      consumers.back()->start();
    }
    sim.run();  // applies the initial view
  }

  sim::Simulator sim;
  std::unique_ptr<core::Group> group;
  std::vector<std::unique_ptr<KvStore>> stores;
  std::vector<std::unique_ptr<workload::InstantConsumer>> consumers;
};

TEST_F(KvFixture, LowestRankedMemberIsPrimary) {
  EXPECT_TRUE(stores[0]->is_primary());
  EXPECT_FALSE(stores[1]->is_primary());
  EXPECT_FALSE(stores[2]->is_primary());
}

TEST_F(KvFixture, PutReplicatesToAll) {
  ASSERT_TRUE(stores[0]->put("alpha", 1));
  ASSERT_TRUE(stores[0]->put("beta", 2));
  sim.run();
  for (const auto& s : stores) {
    EXPECT_EQ(s->get("alpha"), 1u);
    EXPECT_EQ(s->get("beta"), 2u);
    EXPECT_FALSE(s->get("gamma").has_value());
  }
}

TEST_F(KvFixture, NonPrimaryWritesRejected) {
  EXPECT_FALSE(stores[1]->put("alpha", 1));
  EXPECT_FALSE(stores[2]->erase("alpha"));
}

TEST_F(KvFixture, MultiKeyTransactionIsAtomic) {
  ASSERT_TRUE(stores[0]->put_all({{"a", 1}, {"b", 2}, {"c", 3}}));
  sim.run();
  for (const auto& s : stores) {
    EXPECT_EQ(s->get("a"), 1u);
    EXPECT_EQ(s->get("b"), 2u);
    EXPECT_EQ(s->get("c"), 3u);
    EXPECT_EQ(s->table().batches_applied(), 1u);  // one atomic batch
  }
}

TEST_F(KvFixture, OverwritesConverge) {
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(stores[0]->put("hot", static_cast<std::uint64_t>(i)));
  }
  sim.run();
  for (const auto& s : stores) {
    EXPECT_EQ(s->get("hot"), 49u);
  }
  // Digests agree everywhere.
  EXPECT_EQ(stores[0]->digest(), stores[1]->digest());
  EXPECT_EQ(stores[1]->digest(), stores[2]->digest());
}

TEST_F(KvFixture, EraseRemovesEverywhere) {
  ASSERT_TRUE(stores[0]->put("doomed", 9));
  sim.run();
  ASSERT_TRUE(stores[0]->erase("doomed"));
  sim.run();
  for (const auto& s : stores) {
    EXPECT_FALSE(s->get("doomed").has_value());
  }
  EXPECT_FALSE(stores[0]->erase("never-existed"));
}

TEST_F(KvFixture, FailoverPromotesNextReplica) {
  ASSERT_TRUE(stores[0]->put("before", 1));
  sim.run();
  group->crash(0);
  sim.run();
  // Membership policy excluded the primary; replica 1 takes over.
  ASSERT_TRUE(stores[1]->applied_view().has_value());
  EXPECT_EQ(stores[1]->applied_view()->id(), core::ViewId(1));
  EXPECT_TRUE(stores[1]->is_primary());
  EXPECT_FALSE(stores[2]->is_primary());
  // State survived and writes continue.
  EXPECT_EQ(stores[1]->get("before"), 1u);
  ASSERT_TRUE(stores[1]->put("after", 2));
  sim.run();
  EXPECT_EQ(stores[2]->get("after"), 2u);
  EXPECT_EQ(stores[1]->digest(), stores[2]->digest());
}

TEST_F(KvFixture, StateConvergesAtViewInstallation) {
  const std::string keys[] = {"k0", "k1", "k2", "k3", "k4"};
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(stores[0]->put(keys[i % 5], static_cast<std::uint64_t>(i)));
  }
  ASSERT_TRUE(group->node(2).request_view_change({}));
  sim.run();
  // The paper's claim: same state when the new view is installed.
  const auto& d0 = stores[0]->table().digests_at_install();
  const auto& d1 = stores[1]->table().digests_at_install();
  const auto& d2 = stores[2]->table().digests_at_install();
  ASSERT_TRUE(d0.contains(1) && d1.contains(1) && d2.contains(1));
  EXPECT_EQ(d0.at(1), d1.at(1));
  EXPECT_EQ(d1.at(1), d2.at(1));
}

}  // namespace
}  // namespace svs::app
