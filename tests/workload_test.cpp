// Tests for the game-trace generator: §5.2 calibration bands, structural
// invariants, and consistency between annotations and ground truth.
#include <gtest/gtest.h>

#include <set>

#include "obs/relation.hpp"
#include "workload/game_generator.hpp"

namespace svs::workload {
namespace {

GameTraceGenerator::Config default_config(std::uint64_t seed = 1) {
  GameTraceGenerator::Config cfg;
  cfg.seed = seed;
  return cfg;
}

TEST(Generator, DeterministicForSameSeed) {
  GameTraceGenerator g1(default_config(7));
  GameTraceGenerator g2(default_config(7));
  const auto t1 = g1.generate(500);
  const auto t2 = g2.generate(500);
  ASSERT_EQ(t1.messages().size(), t2.messages().size());
  for (std::size_t i = 0; i < t1.messages().size(); ++i) {
    EXPECT_EQ(t1.messages()[i].at, t2.messages()[i].at);
    EXPECT_EQ(t1.messages()[i].payload->item(), t2.messages()[i].payload->item());
    EXPECT_EQ(t1.messages()[i].annotation, t2.messages()[i].annotation);
    EXPECT_EQ(t1.messages()[i].direct_covers, t2.messages()[i].direct_covers);
  }
}

TEST(Generator, DifferentSeedsDiffer) {
  const auto t1 = GameTraceGenerator(default_config(1)).generate(200);
  const auto t2 = GameTraceGenerator(default_config(2)).generate(200);
  EXPECT_NE(t1.messages().size(), t2.messages().size());
}

TEST(Generator, SeqsArePositionsInStream) {
  const auto t = GameTraceGenerator(default_config()).generate(300);
  for (std::size_t i = 0; i < t.messages().size(); ++i) {
    EXPECT_EQ(t.messages()[i].seq, i + 1);
  }
}

TEST(Generator, TimestampsAreNonDecreasing) {
  const auto t = GameTraceGenerator(default_config()).generate(300);
  for (std::size_t i = 1; i < t.messages().size(); ++i) {
    EXPECT_GE(t.messages()[i].at, t.messages()[i - 1].at);
  }
}

TEST(Generator, EveryRoundEndsWithCommit) {
  const auto t = GameTraceGenerator(default_config()).generate(300);
  const auto& ms = t.messages();
  for (std::size_t i = 0; i < ms.size(); ++i) {
    const bool last_of_round =
        i + 1 == ms.size() ||
        ms[i + 1].payload->round() != ms[i].payload->round();
    EXPECT_EQ(ms[i].payload->commit(), last_of_round) << i;
  }
}

TEST(Generator, OnlyCommitsCarryObsolescence) {
  const auto t = GameTraceGenerator(default_config()).generate(500);
  for (const auto& m : t.messages()) {
    if (!m.payload->commit()) {
      EXPECT_EQ(m.annotation.kind(), obs::AnnotationKind::none);
      EXPECT_TRUE(m.direct_covers.empty());
    }
  }
}

TEST(Generator, CreatesAndDestroysAreNeverObsoleted) {
  const auto t = GameTraceGenerator(default_config()).generate(2000);
  std::set<std::size_t> covered;
  for (const auto& m : t.messages()) {
    for (const auto v : m.direct_covers) covered.insert(v);
  }
  for (std::size_t i = 0; i < t.messages().size(); ++i) {
    const auto& op = *t.messages()[i].payload;
    if (op.op() == OpKind::create || op.op() == OpKind::destroy) {
      EXPECT_FALSE(covered.contains(i)) << "op " << i << " item " << op.item();
    }
  }
}

TEST(Generator, TransientLifecycleWellFormed) {
  const auto t = GameTraceGenerator(default_config()).generate(2000);
  // Every transient item: create before updates before destroy; at most one
  // create/destroy each.
  std::map<ItemId, int> state;  // 0 unseen, 1 created, 2 destroyed
  for (const auto& m : t.messages()) {
    const auto& op = *m.payload;
    if (op.item() < 1'000'000) continue;  // persistent
    switch (op.op()) {
      case OpKind::create:
        EXPECT_EQ(state[op.item()], 0);
        state[op.item()] = 1;
        break;
      case OpKind::update:
        EXPECT_EQ(state[op.item()], 1);
        break;
      case OpKind::destroy:
        EXPECT_EQ(state[op.item()], 1);
        state[op.item()] = 2;
        break;
    }
  }
}

TEST(Generator, AnnotationsAreSubsetOfGroundTruth) {
  // Every pair declared by the k-enum annotation must be a true edge;
  // the converse can fail (horizon clipping), which is exactly why the
  // checker uses the ground truth.
  auto cfg = default_config();
  cfg.batch.k = 16;  // small horizon: clipping will happen
  const auto t = GameTraceGenerator(cfg).generate(2000);
  const auto truth = t.ground_truth();
  obs::KEnumRelation declared;
  const net::ProcessId sender(0);
  const auto& ms = t.messages();
  for (std::size_t i = 0; i < ms.size(); ++i) {
    if (ms[i].annotation.kind() != obs::AnnotationKind::k_enum) continue;
    for (const auto d : ms[i].annotation.bitmap().set_distances()) {
      if (d > i) continue;
      const std::size_t j = i - d;
      const obs::MessageRef newer{sender, ms[i].seq, &ms[i].annotation};
      const obs::MessageRef older{sender, ms[j].seq, &ms[j].annotation};
      EXPECT_TRUE(declared.covers(newer, older));
      EXPECT_TRUE(truth->covers(newer, older))
          << "annotation declares a pair the ground truth denies: " << j
          << " < " << i;
    }
  }
}

TEST(Generator, GroundTruthIsTransitive) {
  const auto t = GameTraceGenerator(default_config()).generate(800);
  const auto truth = t.ground_truth();
  const net::ProcessId sender(0);
  const auto& ms = t.messages();
  const obs::Annotation none;
  // For each direct edge chain a -> b -> c, a -> c must hold.
  for (std::size_t c = 0; c < ms.size(); ++c) {
    for (const auto b : ms[c].direct_covers) {
      for (const auto a : ms[b].direct_covers) {
        EXPECT_TRUE(truth->covers(obs::MessageRef{sender, ms[c].seq, &none},
                                  obs::MessageRef{sender, ms[a].seq, &none}))
            << a << " -> " << b << " -> " << c;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// §5.2 calibration: the generated trace must land in bands around the
// published statistics (see DESIGN.md §4 for the bands' rationale).
// ---------------------------------------------------------------------------

class Calibration : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Calibration, MatchesPaperStatistics) {
  GameTraceGenerator g(default_config(GetParam()));
  const auto t = g.generate(11696);  // the paper's session length
  const auto& s = t.stats();

  // Paper: 41.88% of messages never became obsolete.
  EXPECT_GT(s.never_obsolete_share, 0.32);
  EXPECT_LT(s.never_obsolete_share, 0.52);

  // Paper: an average of 1.39 items modified per round.
  EXPECT_GT(s.avg_modified_per_round, 1.0);
  EXPECT_LT(s.avg_modified_per_round, 1.8);

  // Paper: an average of 42.33 items active.
  EXPECT_GT(s.avg_active_items, 38.0);
  EXPECT_LT(s.avg_active_items, 47.0);

  // Fig 3(b): related messages are close — "often within 10 messages".
  double within10 = 0;
  for (const auto& [d, share] : s.distance_histogram) {
    if (d <= 10) within10 += share;
  }
  EXPECT_GT(within10, 0.55);

  // Fig 3(a): the most-modified item is touched in roughly a fifth of the
  // rounds and the tail falls off quickly.
  double top = 0;
  for (const auto& [item, freq] : s.modification_frequency) {
    top = std::max(top, freq);
  }
  EXPECT_GT(top, 0.15);
  EXPECT_LT(top, 0.30);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Calibration,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(Calibration, DistanceHistogramSharesSumToOne) {
  const auto t = GameTraceGenerator(default_config()).generate(5000);
  double sum = 0;
  for (const auto& [d, share] : t.stats().distance_histogram) sum += share;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Calibration, RatesAreGameLike) {
  const auto t = GameTraceGenerator(default_config()).generate(5000);
  // ~30 rounds/s at ~1.5-2.5 messages per round.
  EXPECT_GT(t.stats().avg_rate_msgs_per_sec, 35.0);
  EXPECT_LT(t.stats().avg_rate_msgs_per_sec, 90.0);
}

}  // namespace
}  // namespace svs::workload
