// Thread-local leased pool allocator (DESIGN.md §8).
//
// The contract the hot path relies on: a freed block of the same size class
// is reused by the next allocation on that thread (a hit), cross-thread
// frees route home without corrupting either side, and oversized requests
// fall through to the system allocator untouched by the counters' recycle
// accounting.
#include <gtest/gtest.h>

#include <cstring>
#include <list>
#include <thread>
#include <vector>

#include "metrics/stats.hpp"
#include "util/pool.hpp"

namespace svs::util {
namespace {

TEST(Pool, ReusesFreedBlocksOfTheSameClass) {
  Pool& pool = Pool::local();
  const PoolStats before = pool.stats();

  void* first = pool.allocate(48);
  ASSERT_NE(first, nullptr);
  std::memset(first, 0xAB, 48);
  pool.deallocate(first);

  void* second = pool.allocate(48);
  EXPECT_EQ(second, first) << "the free list must hand back the freed block";
  pool.deallocate(second);

  const PoolStats after = pool.stats();
  EXPECT_EQ(after.misses - before.misses, 1u) << "first allocation is a miss";
  EXPECT_GE(after.hits - before.hits, 1u) << "second allocation is a hit";
  EXPECT_GE(after.bytes_recycled - before.bytes_recycled, 48u);
}

TEST(Pool, DistinctSizeClassesDoNotAlias) {
  Pool& pool = Pool::local();
  void* small = pool.allocate(16);
  pool.deallocate(small);
  // 64 bytes lives in a different class: the freed 16-byte block must not
  // be handed out for it.
  void* big = pool.allocate(64);
  EXPECT_NE(big, small);
  pool.deallocate(big);
}

TEST(Pool, LargeAllocationsFallThrough) {
  Pool& pool = Pool::local();
  const PoolStats before = pool.stats();
  void* p = pool.allocate(Pool::kMaxPooledBytes + 1);
  ASSERT_NE(p, nullptr);
  std::memset(p, 0x5C, Pool::kMaxPooledBytes + 1);
  pool.deallocate(p);
  void* q = pool.allocate(Pool::kMaxPooledBytes + 1);
  ASSERT_NE(q, nullptr);
  pool.deallocate(q);
  const PoolStats after = pool.stats();
  EXPECT_EQ(after.hits, before.hits) << "large blocks are never pool hits";
  EXPECT_EQ(after.bytes_recycled, before.bytes_recycled);
}

TEST(Pool, CrossThreadFreeRoutesHomeAndIsReused) {
  Pool& pool = Pool::local();
  void* block = pool.allocate(96);
  ASSERT_NE(block, nullptr);

  // Free on a different thread: the block must go back to THIS thread's
  // pool (remote list), not the freeing thread's.
  std::thread([block] { Pool::local().deallocate(block); }).join();

  // Drain the remote list by allocating until the block resurfaces; it must
  // come back eventually (bounded by a few attempts since the local list
  // for this class may hold other blocks).
  bool reused = false;
  std::vector<void*> held;
  for (int i = 0; i < 64 && !reused; ++i) {
    void* p = pool.allocate(96);
    if (p == block) reused = true;
    held.push_back(p);
  }
  EXPECT_TRUE(reused) << "remote-freed block never came home";
  for (void* p : held) pool.deallocate(p);
}

TEST(Pool, AllocatorWorksInContainersAndPoolShared) {
  std::list<int, PoolAllocator<int>> numbers;
  for (int i = 0; i < 100; ++i) numbers.push_back(i);
  int expect = 0;
  for (const int v : numbers) EXPECT_EQ(v, expect++);
  numbers.clear();
  // Node churn after the warm-up should be all hits.
  const PoolStats before = Pool::local().stats();
  for (int i = 0; i < 100; ++i) numbers.push_back(i);
  const PoolStats after = Pool::local().stats();
  EXPECT_GE(after.hits - before.hits, 100u);

  const auto shared = pool_shared<std::uint64_t>(42u);
  EXPECT_EQ(*shared, 42u);
}

TEST(Pool, AggregateSeesOtherThreadsCounters) {
  const PoolStats before = Pool::aggregate();
  std::thread([] {
    Pool& pool = Pool::local();
    std::vector<void*> blocks;
    for (int i = 0; i < 10; ++i) blocks.push_back(pool.allocate(32));
    for (void* p : blocks) pool.deallocate(p);
    for (int i = 0; i < 10; ++i) pool.deallocate(pool.allocate(32));
  }).join();
  const PoolStats after = Pool::aggregate();
  EXPECT_GE(after.misses - before.misses, 1u);
  EXPECT_GE(after.hits - before.hits, 10u);
  EXPECT_GT(after.bytes_recycled, before.bytes_recycled);
}

TEST(Pool, MetricsSnapshotDeltasTrackPoolWork) {
  const metrics::Stats before = metrics::Stats::snapshot();
  Pool& pool = Pool::local();
  for (int i = 0; i < 5; ++i) pool.deallocate(pool.allocate(128));
  const metrics::Stats delta = metrics::Stats::snapshot() - before;
  EXPECT_GE(delta.pool_hits + delta.pool_misses, 5u);
  EXPECT_GT(delta.bytes_recycled, 0u);
}

}  // namespace
}  // namespace svs::util
