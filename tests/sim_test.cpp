// Unit tests for the discrete-event simulator and the deterministic rng.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "util/contracts.hpp"

namespace svs::sim {
namespace {

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_after(Duration::millis(30), [&] { order.push_back(3); });
  sim.schedule_after(Duration::millis(10), [&] { order.push_back(1); });
  sim.schedule_after(Duration::millis(20), [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), TimePoint::origin() + Duration::millis(30));
}

TEST(Simulator, TiesBreakByInsertionOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_after(Duration::millis(5), [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, NowAdvancesWithEvents) {
  Simulator sim;
  TimePoint seen;
  sim.schedule_after(Duration::millis(7), [&] { seen = sim.now(); });
  sim.run();
  EXPECT_EQ(seen, TimePoint::origin() + Duration::millis(7));
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator sim;
  int fired = 0;
  sim.schedule_after(Duration::millis(1), [&] {
    ++fired;
    sim.schedule_after(Duration::millis(1), [&] { ++fired; });
  });
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool ran = false;
  const EventId id = sim.schedule_after(Duration::millis(5), [&] { ran = true; });
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));  // second cancel is a no-op
  sim.run();
  EXPECT_FALSE(ran);
}

TEST(Simulator, CancelAfterRunReturnsFalse) {
  Simulator sim;
  const EventId id = sim.schedule_after(Duration::zero(), [] {});
  sim.run();
  EXPECT_FALSE(sim.cancel(id));
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_after(Duration::millis(10), [&] { order.push_back(1); });
  sim.schedule_after(Duration::millis(30), [&] { order.push_back(2); });
  const auto executed = sim.run_until(TimePoint::origin() + Duration::millis(20));
  EXPECT_EQ(executed, 1u);
  EXPECT_EQ(sim.now(), TimePoint::origin() + Duration::millis(20));
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Simulator, RunUntilIncludesDeadlineEvents) {
  Simulator sim;
  bool ran = false;
  sim.schedule_after(Duration::millis(20), [&] { ran = true; });
  sim.run_until(TimePoint::origin() + Duration::millis(20));
  EXPECT_TRUE(ran);
}

TEST(Simulator, SchedulingInThePastIsRejected) {
  Simulator sim;
  sim.schedule_after(Duration::millis(10), [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(TimePoint::origin(), [] {}),
               util::ContractViolation);
  EXPECT_THROW(sim.schedule_after(Duration::millis(-1), [] {}),
               util::ContractViolation);
}

TEST(Simulator, RunWithLimitExecutesExactly) {
  Simulator sim;
  int fired = 0;
  for (int i = 0; i < 5; ++i) {
    sim.schedule_after(Duration::millis(i), [&] { ++fired; });
  }
  EXPECT_EQ(sim.run(3), 3u);
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(sim.run(), 2u);
}

TEST(Duration, Arithmetic) {
  EXPECT_EQ(Duration::millis(2) + Duration::millis(3), Duration::millis(5));
  EXPECT_EQ(Duration::millis(5) - Duration::millis(3), Duration::millis(2));
  EXPECT_EQ(Duration::millis(2) * 3, Duration::millis(6));
  EXPECT_EQ(Duration::millis(6) / 3, Duration::millis(2));
  EXPECT_EQ(Duration::seconds(1.5).as_micros(), 1'500'000);
  EXPECT_DOUBLE_EQ(Duration::millis(1500).as_seconds(), 1.5);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 3);
}

TEST(Rng, BelowIsInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
  EXPECT_THROW(rng.below(0), util::ContractViolation);
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng(7);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.below(10)];
  for (const int c : counts) {
    EXPECT_NEAR(c, n / 10, n / 10 * 0.15);
  }
}

TEST(Rng, BetweenInclusive) {
  Rng rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.between(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo = saw_lo || v == -2;
    saw_hi = saw_hi || v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, Uniform01Bounds) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, ChanceMatchesProbability) {
  Rng rng(11);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.chance(0.3);
  EXPECT_NEAR(hits / static_cast<double>(n), 0.3, 0.01);
}

TEST(Rng, ExponentialMean) {
  Rng rng(13);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(Rng, GeometricMean) {
  Rng rng(17);
  // mean failures before success = (1-p)/p = 3 for p = 0.25.
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.geometric(0.25));
  EXPECT_NEAR(sum / n, 3.0, 0.1);
  EXPECT_EQ(Rng(1).geometric(1.0), 0u);
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng parent(21);
  Rng c1 = parent.split();
  Rng c2 = parent.split();
  int same = 0;
  for (int i = 0; i < 100; ++i) same += c1.next_u64() == c2.next_u64();
  EXPECT_LT(same, 3);
}

TEST(Zipf, PmfSumsToOne) {
  const ZipfDistribution z(40, 1.0);
  double sum = 0;
  for (std::size_t r = 1; r <= 40; ++r) sum += z.pmf(r);
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(Zipf, RankOneMostLikely) {
  const ZipfDistribution z(40, 1.0);
  EXPECT_GT(z.pmf(1), z.pmf(2));
  EXPECT_GT(z.pmf(2), z.pmf(10));
  // For n=40, s=1: pmf(1) = 1/H(40) ~ 0.234 — the ingredient behind
  // Fig 3(a)'s ~22% top item.
  EXPECT_NEAR(z.pmf(1), 0.234, 0.01);
}

TEST(Zipf, SamplingMatchesPmf) {
  const ZipfDistribution z(20, 1.0);
  Rng rng(23);
  std::vector<int> counts(21, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++counts[z.sample(rng)];
  for (std::size_t r = 1; r <= 20; ++r) {
    EXPECT_NEAR(counts[r] / static_cast<double>(n), z.pmf(r), 0.01) << r;
  }
}

TEST(Zipf, ExponentZeroIsUniform) {
  const ZipfDistribution z(10, 0.0);
  for (std::size_t r = 1; r <= 10; ++r) EXPECT_NEAR(z.pmf(r), 0.1, 1e-12);
}

}  // namespace
}  // namespace svs::sim
