// End-to-end integration: the replicated game server of §5 running over the
// full stack (trace generator -> SVS group -> replicated item tables), with
// slow consumers, perturbations and fail-over.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "app/item_table.hpp"
#include "core/checker.hpp"
#include "core/group.hpp"
#include "workload/consumer.hpp"
#include "workload/game_generator.hpp"
#include "workload/producer.hpp"

namespace svs {
namespace {

struct GameHarness {
  struct Options {
    std::size_t replicas = 4;
    std::size_t rounds = 1200;
    std::size_t buffer = 15;     // delivery + out capacity (messages)
    bool purging = true;         // semantic vs reliable
    double slow_rate = 0.0;      // 0 = no slow replica; else msgs/s at last
    std::uint64_t seed = 1;
    core::NodeObserver* observer = nullptr;
  };

  explicit GameHarness(const Options& opt) {
    workload::GameTraceGenerator::Config gen;
    gen.seed = opt.seed;
    // The paper's "k = 2x buffer" with our two-stage pipeline (delivery
    // queue + outgoing buffer, each `buffer` deep): 2 * (2 * buffer).
    gen.batch.k = 4 * opt.buffer;
    trace = std::make_unique<workload::Trace>(
        workload::GameTraceGenerator(gen).generate(opt.rounds));

    core::Group::Config cfg;
    cfg.size = opt.replicas;
    cfg.node.relation = std::make_shared<obs::KEnumRelation>();
    cfg.node.purge_delivery_queue = opt.purging;
    cfg.node.purge_outgoing = opt.purging;
    cfg.node.delivery_capacity = opt.buffer;
    cfg.node.out_capacity = opt.buffer;
    cfg.observer = opt.observer;
    group = std::make_unique<core::Group>(sim, cfg);

    tables.resize(opt.replicas);
    for (std::size_t i = 0; i < opt.replicas; ++i) {
      auto* table = &tables[i];
      if (opt.slow_rate > 0 && i == opt.replicas - 1) {
        slow = std::make_unique<workload::RateConsumer>(sim, group->node(i),
                                                        opt.slow_rate);
        slow->set_sink(
            [table](const core::Delivery& d) { table->apply(d); });
        slow->start();
      } else {
        instant.push_back(std::make_unique<workload::InstantConsumer>(
            sim, group->node(i)));
        instant.back()->set_sink(
            [table](const core::Delivery& d) { table->apply(d); });
        instant.back()->start();
      }
    }

    producer = std::make_unique<workload::TraceProducer>(sim, group->node(0),
                                                         *trace);
  }

  /// Drains every queue into the tables (used after the run settles).
  void drain_all() {
    for (std::size_t i = 0; i < tables.size(); ++i) {
      for (const auto& d : group->drain(i)) tables[i].apply(d);
    }
  }

  sim::Simulator sim;
  std::unique_ptr<workload::Trace> trace;
  std::unique_ptr<core::Group> group;
  std::vector<app::ItemTable> tables;
  std::vector<std::unique_ptr<workload::InstantConsumer>> instant;
  std::unique_ptr<workload::RateConsumer> slow;
  std::unique_ptr<workload::TraceProducer> producer;
};

TEST(GameIntegration, AllReplicasConvergeWithoutPerturbation) {
  GameHarness h({.rounds = 800});
  h.producer->start();
  h.sim.run();
  h.drain_all();
  EXPECT_TRUE(h.producer->done());
  EXPECT_DOUBLE_EQ(h.producer->idle_fraction(), 0.0);
  for (std::size_t i = 1; i < h.tables.size(); ++i) {
    EXPECT_EQ(h.tables[0].digest(), h.tables[i].digest()) << i;
  }
}

TEST(GameIntegration, SlowReplicaPurgesAndConverges) {
  // 30 msg/s is far below the trace's average rate: without purging this
  // replica would throttle the producer hard.
  GameHarness h({.rounds = 800, .buffer = 15, .slow_rate = 30.0});
  h.producer->start();
  h.sim.run();
  h.drain_all();
  EXPECT_TRUE(h.producer->done());
  const auto& slow_node = h.group->node(3);
  EXPECT_GT(slow_node.stats().purged_delivery +
                h.group->network().stats().purged_outgoing,
            0u);
  // The slow replica delivered fewer messages but holds the same state.
  EXPECT_LT(h.tables[3].ops_applied(), h.tables[0].ops_applied());
  for (std::size_t i = 1; i < h.tables.size(); ++i) {
    EXPECT_EQ(h.tables[0].digest(), h.tables[i].digest()) << i;
  }
}

TEST(GameIntegration, SemanticKeepsProducerFasterThanReliable) {
  // The headline of Fig 4(a), as a test: at a consumption rate between the
  // two thresholds, the reliable protocol throttles the producer and the
  // semantic one does not.
  const double rate = 40.0;
  GameHarness reliable({.rounds = 600,
                        .buffer = 15,
                        .purging = false,
                        .slow_rate = rate,
                        .seed = 3});
  reliable.producer->start();
  reliable.sim.run();
  GameHarness semantic({.rounds = 600,
                        .buffer = 15,
                        .purging = true,
                        .slow_rate = rate,
                        .seed = 3});
  semantic.producer->start();
  semantic.sim.run();

  ASSERT_TRUE(reliable.producer->done());
  ASSERT_TRUE(semantic.producer->done());
  EXPECT_GT(reliable.producer->idle_fraction(), 0.10);
  EXPECT_LT(semantic.producer->idle_fraction(),
            reliable.producer->idle_fraction() / 2);
}

TEST(GameIntegration, SpecificationHoldsUnderSlowReplicaAndViewChange) {
  core::SpecChecker* checker_ptr = nullptr;
  GameHarness::Options opt{.rounds = 500, .buffer = 12, .slow_rate = 35.0};
  // Build the harness first to get the ground truth for the checker.
  GameHarness probe(opt);
  core::SpecChecker checker(probe.trace->ground_truth());
  checker_ptr = &checker;
  opt.observer = checker_ptr;
  GameHarness h(opt);
  h.producer->start();
  // Reconfigure twice mid-stream.
  h.sim.schedule_after(sim::Duration::seconds(5.0), [&] {
    h.group->node(1).request_view_change({});
  });
  h.sim.schedule_after(sim::Duration::seconds(10.0), [&] {
    h.group->node(2).request_view_change({});
  });
  h.sim.run();
  h.drain_all();
  ASSERT_TRUE(h.producer->done());
  const auto violations = checker.verify();
  EXPECT_EQ(violations, std::vector<std::string>{});
  // Replica states agreed at every installation (paper's §4 claim).
  for (std::size_t v = 1; v <= 2; ++v) {
    for (std::size_t i = 0; i < h.tables.size(); ++i) {
      ASSERT_TRUE(h.tables[i].digests_at_install().contains(v)) << i;
      EXPECT_EQ(h.tables[i].digests_at_install().at(v),
                h.tables[0].digests_at_install().at(v))
          << "replica " << i << " view " << v;
    }
  }
}

TEST(GameIntegration, FullStopPerturbationToleratedWithPurging) {
  // Fig 5(b)'s mechanism: the slow replica stops entirely for a while; with
  // purging the producer survives a longer stop with the same buffers.
  GameHarness h({.rounds = 900, .buffer = 20, .slow_rate = 500.0});
  h.producer->start();
  h.sim.schedule_after(sim::Duration::seconds(8.0), [&] { h.slow->stop(); });
  h.sim.schedule_after(sim::Duration::seconds(8.0) + sim::Duration::millis(400),
                       [&] { h.slow->resume(); });
  h.sim.run();
  h.drain_all();
  ASSERT_TRUE(h.producer->done());
  for (std::size_t i = 1; i < h.tables.size(); ++i) {
    EXPECT_EQ(h.tables[0].digest(), h.tables[i].digest()) << i;
  }
}

TEST(GameIntegration, BackupCrashMidStream) {
  GameHarness h({.rounds = 800, .buffer = 15});
  h.producer->start();
  h.sim.schedule_after(sim::Duration::seconds(6.0), [&] { h.group->crash(2); });
  h.sim.run();
  h.drain_all();
  ASSERT_TRUE(h.producer->done());
  // Survivors converge; the crashed replica is excluded from the view.
  EXPECT_FALSE(h.group->node(0).current_view().contains(h.group->pid(2)));
  EXPECT_EQ(h.tables[0].digest(), h.tables[1].digest());
  EXPECT_EQ(h.tables[0].digest(), h.tables[3].digest());
}

TEST(GameIntegration, PrimaryCrashFailover) {
  // The producer (primary) crashes; the group reconfigures and the state at
  // the surviving replicas is identical — any of them can take over (§4).
  GameHarness h({.rounds = 2000, .buffer = 15});
  h.producer->start();
  h.sim.schedule_after(sim::Duration::seconds(10.0),
                       [&] { h.group->crash(0); });
  h.sim.run();
  h.drain_all();
  // (The producer object keeps running against its dead node — crash-stop
  // silences the network, not local code — so done() says nothing here.)
  for (std::size_t i = 2; i < h.tables.size(); ++i) {
    EXPECT_EQ(h.tables[1].digest(), h.tables[i].digest()) << i;
  }
  EXPECT_EQ(h.group->node(1).current_view().id(), core::ViewId(1));
  EXPECT_FALSE(h.group->node(1).current_view().contains(h.group->pid(0)));
}


// Seed sweep of the full-stack specification check: different traces,
// different timing, same guarantees.
class GameProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GameProperty, SpecificationHoldsAcrossSeeds) {
  GameHarness::Options opt{.rounds = 400,
                           .buffer = 10 + GetParam() % 8,
                           .slow_rate = 30.0 + 5.0 * (GetParam() % 5),
                           .seed = GetParam()};
  GameHarness probe(opt);
  core::SpecChecker checker(probe.trace->ground_truth());
  opt.observer = &checker;
  GameHarness h(opt);
  h.producer->start();
  h.sim.schedule_after(sim::Duration::seconds(4.0), [&] {
    h.group->node(1).request_view_change({});
  });
  h.sim.run();
  h.drain_all();
  ASSERT_TRUE(h.producer->done());
  EXPECT_EQ(checker.verify(), std::vector<std::string>{})
      << "seed " << GetParam();
  for (std::size_t i = 1; i < h.tables.size(); ++i) {
    EXPECT_EQ(h.tables[0].digest(), h.tables[i].digest())
        << "replica " << i << " seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GameProperty,
                         ::testing::Range<std::uint64_t>(1, 9));

TEST(GameIntegration, CascadedCrashes) {
  // Two members die one after the other; the group reconfigures twice and
  // the three survivors stay consistent (5 replicas keep the majority).
  GameHarness h({.replicas = 5, .rounds = 900, .buffer = 15});
  h.producer->start();
  h.sim.schedule_after(sim::Duration::seconds(6.0), [&] { h.group->crash(3); });
  h.sim.schedule_after(sim::Duration::seconds(12.0),
                       [&] { h.group->crash(4); });
  h.sim.run();
  h.drain_all();
  ASSERT_TRUE(h.producer->done());
  EXPECT_EQ(h.group->node(0).current_view().id(), core::ViewId(2));
  EXPECT_EQ(h.group->node(0).current_view().size(), 3u);
  EXPECT_EQ(h.tables[0].digest(), h.tables[1].digest());
  EXPECT_EQ(h.tables[0].digest(), h.tables[2].digest());
}

TEST(GameIntegration, ConcurrentViewChangeRequests) {
  // Several members fire INIT at the same instant; Figure 1's t5 forwards
  // the first INIT and ignores the rest, so exactly one change happens.
  GameHarness h({.rounds = 600, .buffer = 15});
  h.producer->start();
  h.sim.schedule_after(sim::Duration::seconds(5.0), [&] {
    h.group->node(1).request_view_change({});
    h.group->node(2).request_view_change({});
    h.group->node(3).request_view_change({});
  });
  h.sim.run();
  h.drain_all();
  ASSERT_TRUE(h.producer->done());
  EXPECT_EQ(h.group->node(0).current_view().id(), core::ViewId(1));
  EXPECT_EQ(h.group->node(0).current_view().size(), 4u);
  for (std::size_t i = 1; i < h.tables.size(); ++i) {
    EXPECT_EQ(h.tables[0].digest(), h.tables[i].digest()) << i;
  }
}

TEST(GameIntegration, CrashDuringViewChange) {
  // A member dies right as a reconfiguration begins; consensus tolerates
  // the minority loss and the survivors agree on membership and state.
  GameHarness h({.rounds = 900, .buffer = 15});
  h.producer->start();
  h.sim.schedule_after(sim::Duration::seconds(6.0), [&] {
    h.group->node(1).request_view_change({});
  });
  h.sim.schedule_after(sim::Duration::seconds(6.0) + sim::Duration::millis(2),
                       [&] { h.group->crash(2); });
  h.sim.run();
  h.drain_all();
  ASSERT_TRUE(h.producer->done());
  const auto& final_view = h.group->node(0).current_view();
  EXPECT_FALSE(final_view.contains(h.group->pid(2)));
  EXPECT_EQ(h.tables[0].digest(), h.tables[1].digest());
  EXPECT_EQ(h.tables[0].digest(), h.tables[3].digest());
}

TEST(GameIntegration, EnumerationRepresentationEndToEnd) {
  // The message-enumeration representation (§4.2) drives the same purging
  // machinery: build the trace with explicit enumerations instead of
  // bitmaps and check convergence under a slow replica.
  workload::GameTraceGenerator::Config gen;
  gen.batch.representation = obs::AnnotationKind::enumeration;
  gen.batch.enumeration_window = 120;
  const auto trace = workload::GameTraceGenerator(gen).generate(600);

  sim::Simulator sim;
  core::Group::Config cfg;
  cfg.size = 3;
  cfg.node.relation = std::make_shared<obs::EnumerationRelation>();
  cfg.node.delivery_capacity = 15;
  cfg.node.out_capacity = 15;
  core::Group group(sim, cfg);
  std::vector<app::ItemTable> tables(3);
  workload::InstantConsumer c0(sim, group.node(0));
  c0.set_sink([&](const core::Delivery& d) { tables[0].apply(d); });
  c0.start();
  workload::InstantConsumer c1(sim, group.node(1));
  c1.set_sink([&](const core::Delivery& d) { tables[1].apply(d); });
  c1.start();
  workload::RateConsumer c2(sim, group.node(2), 45.0);
  c2.set_sink([&](const core::Delivery& d) { tables[2].apply(d); });
  c2.start();
  workload::TraceProducer producer(sim, group.node(0), trace);
  producer.start();
  sim.run();
  for (std::size_t i = 0; i < 3; ++i) {
    for (const auto& d : group.drain(i)) tables[i].apply(d);
  }
  ASSERT_TRUE(producer.done());
  EXPECT_GT(group.node(2).stats().purged_delivery +
                group.network().stats().purged_outgoing,
            0u);
  EXPECT_EQ(tables[0].digest(), tables[1].digest());
  EXPECT_EQ(tables[0].digest(), tables[2].digest());
}

}  // namespace
}  // namespace svs
