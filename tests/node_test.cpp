// Behavioural tests for the SVS protocol node (Figure 1).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/checker.hpp"
#include "obs/batch.hpp"
#include "core/group.hpp"
#include "core/node.hpp"
#include "obs/relation.hpp"
#include "sim/simulator.hpp"

namespace svs::core {
namespace {

/// Minimal payload for protocol-level tests.
class Blob final : public Payload {
 public:
  explicit Blob(int id) : id_(id) {}
  [[nodiscard]] int id() const { return id_; }
  [[nodiscard]] std::size_t wire_size() const override { return 8; }

 private:
  int id_;
};

int blob_id(const DataMessagePtr& m) {
  return std::dynamic_pointer_cast<const Blob>(m->payload())->id();
}

PayloadPtr blob(int id) { return std::make_shared<Blob>(id); }

Group::Config base_config(obs::RelationPtr relation,
                          NodeObserver* observer = nullptr) {
  Group::Config cfg;
  cfg.size = 3;
  cfg.node.relation = std::move(relation);
  cfg.observer = observer;
  cfg.oracle_delay = sim::Duration::millis(20);
  cfg.membership.suspicion_grace = sim::Duration::millis(10);
  return cfg;
}

/// Data messages from a drained delivery list.
std::vector<DataMessagePtr> data_of(const std::vector<Delivery>& ds) {
  std::vector<DataMessagePtr> out;
  for (const auto& d : ds) {
    if (const auto* dd = std::get_if<DataDelivery>(&d)) {
      out.push_back(dd->message);
    }
  }
  return out;
}

std::vector<View> views_of(const std::vector<Delivery>& ds) {
  std::vector<View> out;
  for (const auto& d : ds) {
    if (const auto* vd = std::get_if<ViewDelivery>(&d)) out.push_back(vd->view);
  }
  return out;
}

bool has_exclusion(const std::vector<Delivery>& ds) {
  for (const auto& d : ds) {
    if (std::holds_alternative<ExclusionDelivery>(d)) return true;
  }
  return false;
}

TEST(Node, InitialViewDelivered) {
  sim::Simulator sim;
  Group g(sim, base_config(std::make_shared<obs::EmptyRelation>()));
  sim.run();
  for (std::size_t i = 0; i < 3; ++i) {
    const auto views = views_of(g.drain(i));
    ASSERT_EQ(views.size(), 1u) << i;
    EXPECT_EQ(views[0].id(), ViewId(0));
    EXPECT_EQ(views[0].size(), 3u);
  }
}

TEST(Node, MulticastReachesEveryMemberInFifoOrder) {
  sim::Simulator sim;
  Group g(sim, base_config(std::make_shared<obs::EmptyRelation>()));
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(g.node(0).multicast(blob(i), obs::Annotation::none()));
  }
  sim.run();
  for (std::size_t n = 0; n < 3; ++n) {
    const auto msgs = data_of(g.drain(n));
    ASSERT_EQ(msgs.size(), 5u) << n;
    for (int i = 0; i < 5; ++i) {
      EXPECT_EQ(blob_id(msgs[i]), i);
      EXPECT_EQ(msgs[i]->sender(), g.pid(0));
      EXPECT_EQ(msgs[i]->seq(), static_cast<std::uint64_t>(i + 1));
      EXPECT_EQ(msgs[i]->view(), ViewId(0));
    }
  }
}

TEST(Node, SequenceNumbersReturnedAndMonotone) {
  sim::Simulator sim;
  Group g(sim, base_config(std::make_shared<obs::EmptyRelation>()));
  EXPECT_EQ(g.node(0).multicast(blob(0), obs::Annotation::none()), 1u);
  EXPECT_EQ(g.node(0).multicast(blob(1), obs::Annotation::none()), 2u);
  EXPECT_EQ(g.node(1).multicast(blob(2), obs::Annotation::none()), 1u);
}

TEST(Node, VoluntaryLeaveInstallsNextView) {
  sim::Simulator sim;
  SpecChecker checker(std::make_shared<obs::EmptyRelation>());
  Group g(sim, base_config(std::make_shared<obs::EmptyRelation>(), &checker));
  g.node(0).multicast(blob(1), obs::Annotation::none());
  ASSERT_TRUE(g.node(2).request_view_change({g.pid(2)}));
  sim.run();

  for (std::size_t i = 0; i < 2; ++i) {
    const auto ds = g.drain(i);
    const auto views = views_of(ds);
    ASSERT_EQ(views.size(), 2u) << i;
    EXPECT_EQ(views[1].id(), ViewId(1));
    EXPECT_EQ(views[1].size(), 2u);
    EXPECT_FALSE(views[1].contains(g.pid(2)));
  }
  const auto ds2 = g.drain(2);
  EXPECT_TRUE(has_exclusion(ds2));
  EXPECT_TRUE(g.node(2).excluded());
  EXPECT_EQ(checker.verify(), std::vector<std::string>{});
}

TEST(Node, CrashedMemberIsExcludedByPolicy) {
  sim::Simulator sim;
  SpecChecker checker(std::make_shared<obs::EmptyRelation>());
  Group g(sim, base_config(std::make_shared<obs::EmptyRelation>(), &checker));
  g.node(0).multicast(blob(1), obs::Annotation::none());
  sim.run();
  g.crash(2);
  sim.run();

  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_FALSE(g.node(i).blocked()) << i;
    EXPECT_EQ(g.node(i).current_view().id(), ViewId(1)) << i;
    EXPECT_FALSE(g.node(i).current_view().contains(g.pid(2)));
    g.drain(i);
  }
  EXPECT_EQ(checker.verify(), std::vector<std::string>{});
}

TEST(Node, MulticastBlockedDuringViewChange) {
  sim::Simulator sim;
  Group g(sim, base_config(std::make_shared<obs::EmptyRelation>()));
  ASSERT_TRUE(g.node(0).request_view_change({}));
  // Run only until node 0 has processed its own INIT (control delay 1ms).
  sim.run_until(sim.now() + sim::Duration::millis(1));
  EXPECT_TRUE(g.node(0).blocked());
  EXPECT_FALSE(g.node(0).multicast(blob(1), obs::Annotation::none()));
  EXPECT_FALSE(g.node(0).can_multicast());
  EXPECT_GT(g.node(0).stats().multicast_blocked, 0u);
  sim.run();
  EXPECT_FALSE(g.node(0).blocked());
  EXPECT_TRUE(g.node(0).multicast(blob(2), obs::Annotation::none()));
  // An empty-leave reconfiguration keeps everyone.
  EXPECT_EQ(g.node(0).current_view().id(), ViewId(1));
  EXPECT_EQ(g.node(0).current_view().size(), 3u);
}

TEST(Node, RequestViewChangeWhileBlockedFails) {
  sim::Simulator sim;
  Group g(sim, base_config(std::make_shared<obs::EmptyRelation>()));
  ASSERT_TRUE(g.node(0).request_view_change({}));
  sim.run_until(sim.now() + sim::Duration::millis(1));
  EXPECT_FALSE(g.node(0).request_view_change({}));
  sim.run();
}

TEST(Node, PurgesObsoleteMessagesInDeliveryQueue) {
  sim::Simulator sim;
  auto relation = std::make_shared<obs::ItemTagRelation>();
  Group g(sim, base_config(relation));
  // Ten updates of the same item; each reaches the receivers (sim.run)
  // before the next is sent, so purging happens in the receivers' delivery
  // queues (t3), not in the sender's outgoing buffers.
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(g.node(0).multicast(blob(i), obs::Annotation::item(7)));
    sim.run();
  }
  // The receivers' queues hold only the view notification + the last update.
  for (std::size_t n = 1; n < 3; ++n) {
    EXPECT_EQ(g.node(n).delivery_data_count(), 1u) << n;
    EXPECT_GT(g.node(n).stats().purged_delivery, 0u);
    const auto msgs = data_of(g.drain(n));
    ASSERT_EQ(msgs.size(), 1u);
    EXPECT_EQ(blob_id(msgs[0]), 9);  // only the newest survives
  }
  // The sender's own queue purges too (t2's purge call).
  EXPECT_EQ(g.node(0).delivery_data_count(), 1u);
}

TEST(Node, ReliableBaselineDoesNotPurge) {
  sim::Simulator sim;
  auto cfg = base_config(std::make_shared<obs::ItemTagRelation>());
  cfg.node.purge_delivery_queue = false;
  cfg.node.purge_outgoing = false;
  Group g(sim, cfg);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(g.node(0).multicast(blob(i), obs::Annotation::item(7)));
  }
  sim.run();
  for (std::size_t n = 0; n < 3; ++n) {
    EXPECT_EQ(data_of(g.drain(n)).size(), 10u) << n;
    EXPECT_EQ(g.node(n).stats().purged_delivery, 0u);
  }
}

TEST(Node, LateObsoleteArrivalIsSuppressed) {
  // Cross-sender relation: p1's message covers p0's.  p0's link to p2 is
  // slowed so the covering message arrives first.
  sim::Simulator sim;
  auto relation = std::make_shared<obs::ExplicitRelation>();
  relation->add(net::ProcessId(0), 1, net::ProcessId(1), 1);
  SpecChecker checker(relation);
  Group g(sim, base_config(relation, &checker));
  g.network().set_link_slowdown(g.pid(0), g.pid(2), sim::Duration::millis(100));

  ASSERT_TRUE(g.node(0).multicast(blob(10), obs::Annotation::none()));
  ASSERT_TRUE(g.node(1).multicast(blob(20), obs::Annotation::none()));
  sim.run();

  const auto msgs = data_of(g.drain(2));
  ASSERT_EQ(msgs.size(), 1u);
  EXPECT_EQ(blob_id(msgs[0]), 20);
  EXPECT_EQ(g.node(2).stats().suppressed_obsolete, 1u);
  g.drain(0);
  g.drain(1);
  EXPECT_EQ(checker.verify(), std::vector<std::string>{});
}

TEST(Node, FlowControlBlocksAndUnblocksProducer) {
  sim::Simulator sim;
  auto cfg = base_config(std::make_shared<obs::EmptyRelation>());
  cfg.node.out_capacity = 4;
  cfg.node.delivery_capacity = 4;
  Group g(sim, cfg);

  // The producer consumes its own copies instantly; nodes 1/2 consume
  // nothing, so the pipeline (their delivery queues + the outgoing
  // buffers towards them) fills after a bounded number of multicasts.
  g.node(0).set_deliverable_callback([&] { g.drain(0); });
  g.drain(0);
  int accepted = 0;
  for (int i = 0; i < 100; ++i) {
    if (!g.node(0).multicast(blob(i), obs::Annotation::none())) break;
    ++accepted;
    sim.run();  // let deliveries propagate
  }
  EXPECT_GT(accepted, 3);
  EXPECT_LE(accepted, 20);  // delivery queue (4) + out buffer (4) + slack
  EXPECT_FALSE(g.node(0).can_multicast());
  EXPECT_FALSE(g.node(0).saturated_peers().empty());
  EXPECT_GT(g.node(1).stats().refused_data, 0u);

  bool unblocked = false;
  g.node(0).set_unblocked_callback([&] { unblocked = true; });
  // Draining the receivers frees space end-to-end.
  g.drain(1);
  g.drain(2);
  sim.run();
  EXPECT_TRUE(unblocked);
  EXPECT_TRUE(g.node(0).multicast(blob(999), obs::Annotation::none()));
}

TEST(Node, BoundedQueueRefusesWhenFullAndPurgingDisabled) {
  sim::Simulator sim;
  auto cfg = base_config(std::make_shared<obs::EmptyRelation>());
  cfg.node.delivery_capacity = 3;  // out buffers unbounded
  Group g(sim, cfg);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(g.node(0).multicast(blob(i), obs::Annotation::none()));
    g.drain(0);  // the producer's own queue must not be the bottleneck
  }
  sim.run();
  // Receivers cease to accept at 3 queued messages; the rest waits in the
  // sender's outgoing buffers.
  EXPECT_EQ(g.node(1).delivery_data_count(), 3u);
  EXPECT_GT(g.node(1).stats().refused_data, 0u);
  EXPECT_EQ(g.network().data_backlog(g.pid(0), g.pid(1)), 5u);
}

TEST(Node, BlockedMulticastLeavesOutgoingBuffersIntact) {
  // Regression: the sender-side purge used to run *before* the flow-control
  // admission checks, so a refused multicast had already evicted the
  // messages its never-sent covering message obsoleted — the receiver then
  // got neither the victim nor the coverer.  The purge must happen after
  // the commit point.
  sim::Simulator sim;
  auto cfg = base_config(std::make_shared<obs::ItemTagRelation>());
  cfg.node.delivery_capacity = 2;
  cfg.node.out_capacity = 0;  // pressure comes from the sender's own queue
  Group g(sim, cfg);
  // Make node 2 a slow destination so its outgoing buffer retains traffic.
  g.network().set_link_slowdown(g.pid(0), g.pid(2), sim::Duration::seconds(10));

  // Step in short slices (not sim.run(), which would sit out the 10 s
  // slowdown) so the copies towards p2 stay queued in the outgoing buffer.
  const auto step = [&sim] {
    sim.run_until(sim.now() + sim::Duration::millis(5));
  };
  ASSERT_TRUE(g.node(0).multicast(blob(1), obs::Annotation::item(7)));
  step();
  g.drain(0);  // frees the producer's own queue; item 7 stays queued to p2
  ASSERT_TRUE(g.node(0).multicast(blob(2), obs::Annotation::item(8)));
  step();
  ASSERT_TRUE(g.node(0).multicast(blob(3), obs::Annotation::item(9)));
  step();
  ASSERT_EQ(g.node(0).delivery_data_count(), 2u);  // own queue now full
  ASSERT_EQ(g.network().data_backlog(g.pid(0), g.pid(2)), 3u);

  // An update of item 7 covers the copy queued towards p2, but the
  // producer's own full queue refuses the multicast.  Nothing may change.
  const auto purged_before = g.network().stats().purged_outgoing;
  const auto blocked_before = g.node(0).stats().multicast_blocked;
  EXPECT_FALSE(g.node(0).multicast(blob(4), obs::Annotation::item(7)));
  EXPECT_EQ(g.node(0).stats().multicast_blocked, blocked_before + 1);
  EXPECT_EQ(g.network().data_backlog(g.pid(0), g.pid(2)), 3u);
  EXPECT_EQ(g.network().stats().purged_outgoing, purged_before);

  // Once unblocked the retry purges the now-covered copy and goes through:
  // p2 eventually gets items 8, 9 and the *new* 7 — no gap.
  g.drain(0);
  ASSERT_TRUE(g.node(0).multicast(blob(5), obs::Annotation::item(7)));
  EXPECT_EQ(g.network().stats().purged_outgoing, purged_before + 1);
  sim.run_until(sim.now() + sim::Duration::seconds(30.0));
  auto msgs = data_of(g.drain(2));  // frees p2's bounded queue, link resumes
  sim.run();
  const auto tail = data_of(g.drain(2));
  msgs.insert(msgs.end(), tail.begin(), tail.end());
  ASSERT_EQ(msgs.size(), 3u);
  EXPECT_EQ(blob_id(msgs[0]), 2);
  EXPECT_EQ(blob_id(msgs[1]), 3);
  EXPECT_EQ(blob_id(msgs[2]), 5);
}

TEST(Node, StabilityGossipSendsDeltasAndCountsSavedBytes) {
  sim::Simulator sim;
  auto cfg = base_config(std::make_shared<obs::EmptyRelation>());
  Group g(sim, cfg);
  // Two senders report once, then only p0 keeps sending: later gossip
  // rounds ship a 1-entry delta instead of the 2-entry snapshot, banking
  // the difference against the full-vector wire model.
  ASSERT_TRUE(g.node(1).multicast(blob(100), obs::Annotation::none()));
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(g.node(0).multicast(blob(i), obs::Annotation::none()));
    sim.run_until(sim.now() + sim::Duration::millis(60));
    for (std::size_t n = 0; n < 3; ++n) g.drain(n);
  }
  sim.run();
  EXPECT_GT(g.network().stats().gossip_bytes_saved, 0u);
  // Delta gossip must not break stability GC: the delivered history is
  // still collected once every member's report covers it.
  EXPECT_GT(g.node(0).stats().stability_gcs, 0u);
}

TEST(Node, PurgingKeepsBoundedQueueFlowing) {
  sim::Simulator sim;
  auto cfg = base_config(std::make_shared<obs::ItemTagRelation>());
  cfg.node.delivery_capacity = 2;
  cfg.node.out_capacity = 0;  // unbounded out; pressure is at the receiver
  Group g(sim, cfg);
  // Updates of one item: each new arrival purges its predecessor, so the
  // bounded queue never refuses and the producer never blocks.
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(g.node(0).multicast(blob(i), obs::Annotation::item(1)));
    sim.run();
  }
  EXPECT_EQ(g.node(1).stats().refused_data, 0u);
  EXPECT_EQ(g.node(1).delivery_data_count(), 1u);
  const auto msgs = data_of(g.drain(1));
  ASSERT_EQ(msgs.size(), 1u);
  EXPECT_EQ(blob_id(msgs[0]), 49);
}

TEST(Node, StaleViewDataDroppedAfterInstall) {
  // p2 multicasts (slowly towards p0) and then leaves the group.  Being
  // excluded, p2 never reclaims its outgoing buffers, so its message still
  // arrives at p0 long after p0 installed the next view: p0 must have
  // delivered it through the agreed flush and drop the late copy as stale.
  sim::Simulator sim;
  SpecChecker checker(std::make_shared<obs::EmptyRelation>());
  Group g(sim, base_config(std::make_shared<obs::EmptyRelation>(), &checker));
  g.network().set_link_slowdown(g.pid(2), g.pid(0), sim::Duration::seconds(2));
  ASSERT_TRUE(g.node(2).multicast(blob(1), obs::Annotation::none()));
  ASSERT_TRUE(g.node(2).request_view_change({g.pid(2)}));
  sim.run();

  const auto msgs = data_of(g.drain(0));
  ASSERT_EQ(msgs.size(), 1u);
  EXPECT_EQ(blob_id(msgs[0]), 1);
  EXPECT_EQ(g.node(0).stats().stale_view_drops, 1u);
  EXPECT_GT(g.node(0).stats().flushed_in, 0u);
  g.drain(1);
  g.drain(2);
  EXPECT_EQ(checker.verify(), std::vector<std::string>{});
}

TEST(Node, FlushDeliversInFlightMessagesBeforeNewView) {
  sim::Simulator sim;
  SpecChecker checker(std::make_shared<obs::EmptyRelation>());
  Group g(sim, base_config(std::make_shared<obs::EmptyRelation>(), &checker));
  g.network().set_link_slowdown(g.pid(0), g.pid(2), sim::Duration::seconds(10));
  ASSERT_TRUE(g.node(0).multicast(blob(1), obs::Annotation::none()));
  sim.run_until(sim.now() + sim::Duration::millis(5));
  ASSERT_TRUE(g.node(1).request_view_change({}));
  sim.run_until(sim.now() + sim::Duration::seconds(1));

  // p2 must have delivered the message (via the agreed pred-view flush)
  // before installing v1 even though the direct copy is still in flight.
  const auto ds = g.drain(2);
  const auto msgs = data_of(ds);
  const auto views = views_of(ds);
  ASSERT_EQ(msgs.size(), 1u);
  ASSERT_EQ(views.size(), 2u);
  EXPECT_GT(g.node(2).stats().flushed_in, 0u);
  g.drain(0);
  g.drain(1);
  EXPECT_EQ(checker.verify(), std::vector<std::string>{});
}

TEST(Node, ExcludedNodeCannotMulticast) {
  sim::Simulator sim;
  Group g(sim, base_config(std::make_shared<obs::EmptyRelation>()));
  ASSERT_TRUE(g.node(2).request_view_change({g.pid(2)}));
  sim.run();
  EXPECT_TRUE(g.node(2).excluded());
  EXPECT_FALSE(g.node(2).multicast(blob(1), obs::Annotation::none()));
  EXPECT_FALSE(g.node(2).request_view_change({}));
}

TEST(Node, ConsecutiveViewChanges) {
  sim::Simulator sim;
  SpecChecker checker(std::make_shared<obs::EmptyRelation>());
  Group g(sim, base_config(std::make_shared<obs::EmptyRelation>(), &checker));
  g.node(0).multicast(blob(1), obs::Annotation::none());
  ASSERT_TRUE(g.node(0).request_view_change({}));
  sim.run();
  g.node(0).multicast(blob(2), obs::Annotation::none());
  ASSERT_TRUE(g.node(1).request_view_change({}));
  sim.run();
  g.node(0).multicast(blob(3), obs::Annotation::none());
  ASSERT_TRUE(g.node(2).request_view_change({g.pid(2)}));
  sim.run();

  EXPECT_EQ(g.node(0).current_view().id(), ViewId(3));
  EXPECT_EQ(g.node(0).stats().views_installed, 3u);
  for (std::size_t i = 0; i < 3; ++i) g.drain(i);
  EXPECT_EQ(checker.verify(), std::vector<std::string>{});
  EXPECT_EQ(checker.verify_strict_vs(), std::vector<std::string>{});
}

TEST(Node, ViewChangeLatencyRecorded) {
  sim::Simulator sim;
  Group g(sim, base_config(std::make_shared<obs::EmptyRelation>()));
  ASSERT_TRUE(g.node(0).request_view_change({}));
  sim.run();
  EXPECT_GT(g.node(0).stats().last_change_latency, sim::Duration::zero());
  EXPECT_LT(g.node(0).stats().last_change_latency, sim::Duration::seconds(1.0));
}

TEST(Node, BlockageWatchdogExcludesSaturatedPeer) {
  sim::Simulator sim;
  auto cfg = base_config(std::make_shared<obs::EmptyRelation>());
  cfg.node.out_capacity = 3;
  cfg.node.delivery_capacity = 3;
  cfg.membership.exclude_on_blockage = true;
  cfg.membership.blockage_grace = sim::Duration::millis(100);
  Group g(sim, cfg);

  // Consume at nodes 0 and 1 so only node 2 backs up.
  bool done[3] = {false, false, false};
  g.node(0).set_deliverable_callback([&] { g.drain(0); });
  g.node(1).set_deliverable_callback([&] { g.drain(1); });
  (void)done;

  // Flood from node 0; report blockage to its policy.
  int sent = 0;
  std::function<void()> pump = [&] {
    while (sent < 200) {
      if (!g.node(0).multicast(blob(sent), obs::Annotation::none())) {
        if (auto* p = g.policy(0)) p->producer_blocked();
        return;
      }
      ++sent;
    }
  };
  g.node(0).set_unblocked_callback([&] {
    if (auto* p = g.policy(0)) p->producer_unblocked();
    pump();
  });
  pump();
  sim.run_until(sim.now() + sim::Duration::seconds(5.0));

  // The stalled receiver got expelled and throughput resumed.
  EXPECT_EQ(g.node(0).current_view().id(), ViewId(1));
  EXPECT_FALSE(g.node(0).current_view().contains(g.pid(2)));
  EXPECT_TRUE(g.node(2).excluded());
  EXPECT_EQ(sent, 200);
}


TEST(Node, StabilityGossipCollectsDeliveredHistory) {
  sim::Simulator sim;
  auto cfg = base_config(std::make_shared<obs::EmptyRelation>());
  cfg.node.stability_interval = sim::Duration::millis(20);
  Group g(sim, cfg);
  // Everyone consumes instantly; after gossip settles, nothing of the
  // delivered history needs to stay buffered.
  for (std::size_t i = 0; i < 3; ++i) {
    g.node(i).set_deliverable_callback([&g, i] { g.drain(i); });
    g.drain(i);
  }
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(g.node(0).multicast(blob(i), obs::Annotation::none()));
    sim.run_until(sim.now() + sim::Duration::millis(2));
  }
  sim.run();
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(g.node(i).delivered_retained(), 0u) << i;
    EXPECT_GT(g.node(i).stats().stability_gcs, 0u) << i;
  }
}

TEST(Node, StabilityDisabledKeepsHistoryUntilViewChange) {
  sim::Simulator sim;
  auto cfg = base_config(std::make_shared<obs::EmptyRelation>());
  cfg.node.stability_interval = sim::Duration::zero();  // disabled
  Group g(sim, cfg);
  g.node(1).set_deliverable_callback([&g] { g.drain(1); });
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(g.node(0).multicast(blob(i), obs::Annotation::none()));
  }
  sim.run();
  g.drain(1);
  EXPECT_EQ(g.node(1).delivered_retained(), 30u);
  // The view change resets the history.
  ASSERT_TRUE(g.node(0).request_view_change({}));
  sim.run();
  EXPECT_EQ(g.node(1).delivered_retained(), 0u);
}

TEST(Node, UnreportingMemberBlocksStabilityCollection) {
  // A member that reports nothing (here: crashed) freezes the stable
  // floor, so the survivors' histories grow until a membership change
  // excludes it — the §2.1 buffer-exhaustion story.
  sim::Simulator sim;
  auto cfg = base_config(std::make_shared<obs::EmptyRelation>());
  cfg.node.stability_interval = sim::Duration::millis(20);
  cfg.auto_membership = false;  // keep the dead member in the view
  Group g(sim, cfg);
  g.node(1).set_deliverable_callback([&g] { g.drain(1); });
  g.drain(1);
  g.crash(2);
  sim.run_until(sim.now() + sim::Duration::millis(100));
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(g.node(0).multicast(blob(i), obs::Annotation::none()));
    sim.run_until(sim.now() + sim::Duration::millis(5));
  }
  sim.run_until(sim.now() + sim::Duration::seconds(1.0));
  // Node 1 delivered everything but cannot collect: the crashed member
  // never acknowledged.
  EXPECT_EQ(g.node(1).delivered_retained(), 20u);
}

TEST(Node, StabilityKeepsPredViewSmall) {
  // The operational payoff: after heavy traffic, a view change agrees on a
  // small pred-view because the stable prefix was collected everywhere.
  sim::Simulator sim;
  auto cfg = base_config(std::make_shared<obs::EmptyRelation>());
  cfg.node.stability_interval = sim::Duration::millis(20);
  Group g(sim, cfg);
  for (std::size_t i = 0; i < 3; ++i) {
    g.node(i).set_deliverable_callback([&g, i] { g.drain(i); });
    g.drain(i);
  }
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(g.node(0).multicast(blob(i), obs::Annotation::none()));
    sim.run_until(sim.now() + sim::Duration::millis(2));
  }
  sim.run();
  ASSERT_TRUE(g.node(1).request_view_change({}));
  sim.run();
  EXPECT_EQ(g.node(0).current_view().id(), ViewId(1));
  // Far fewer than the 100 messages of the view.
  EXPECT_LT(g.node(0).stats().last_flush_total, 10u);
}


TEST(Node, PurgeDebtLedgerClosesKEnumGcVsPredRace) {
  // Regression for the residual GC-vs-pred race the PR 4 explorer left as
  // an open item (old DESIGN.md §7): k-enumeration, sender-side purging,
  // and the gap's only in-channel cover dying with an excluded sender.
  //
  // The construction: p0 multicasts f0, m1, f1, m3 (k = 2; m3's bitmap
  // covers m1 at distance 2).  p2 is a slow consumer at delivery capacity
  // 1, so m1 stalls in p0's outgoing buffer towards it and is purged there
  // when m3 is multicast; p2 later frees one slot and accepts the
  // *unrelated* f1, so its raw reception high-water (3) jumps m1's seq (2)
  // without p2 ever holding m1 or any cover of it.  p1 stops consuming
  // after m1, so m3 also never reaches p1.  Then p0 crashes and is
  // excluded — m3 dies with it (stale-view-dropped at p2 after install).
  //
  // Under the old mark-based GC the floor min(4, 3, 3) = 3 >= 2 collected
  // m1 from p1's delivered history, the agreed pred-view lost every trace
  // of m1, and p2 installed the next view having delivered neither m1 nor
  // a cover — the §3.2 violation.  Under the ledger, p2's *covered
  // frontier* for p0's channel stays at 1 (the debt 2 -> 4 resolves to a
  // cover p2 never received), m1 survives in p1's history, and the t7
  // flush repairs p2 in per-sender seq position.
  sim::Simulator sim;
  // Ground truth for the checker: the true obsolescence order, closed —
  // here just m1 ≺ m3 (the k-enum bitmaps under-declare nothing else).
  auto truth = std::make_shared<obs::ExplicitRelation>();
  truth->add(net::ProcessId(0), 2, net::ProcessId(0), 4);
  SpecChecker checker(truth);
  auto cfg = base_config(std::make_shared<obs::KEnumRelation>(), &checker);
  cfg.node.delivery_capacity = 1;
  Group g(sim, cfg);
  sim.run_until(sim.now() + sim::Duration::millis(1));
  for (std::size_t i = 0; i < 3; ++i) g.drain(i);  // initial views

  obs::BatchComposer composer({obs::AnnotationKind::k_enum, 2, 0});
  const auto send = [&](std::uint64_t item, std::uint64_t seq) {
    ASSERT_EQ(g.node(0).multicast(blob(static_cast<int>(seq)),
                                  composer.single(item, seq)),
              seq);
  };

  send(50, 1);  // f0: fills p2's one delivery slot
  sim.run_until(sim.now() + sim::Duration::millis(5));
  g.drain(0);
  g.drain(1);
  send(7, 2);   // m1: p1 consumes it; p2 refuses (full) -> stalls in channel
  sim.run_until(sim.now() + sim::Duration::millis(5));
  g.drain(0);
  g.drain(1);
  send(60, 3);  // f1: p1 accepts but never consumes (full from here on)
  sim.run_until(sim.now() + sim::Duration::millis(3));
  g.drain(0);
  send(7, 4);   // m3: covers m1 (distance 2) -> purges it towards p2
  sim.run_until(sim.now() + sim::Duration::millis(3));
  g.drain(0);

  // The purge became a wire fact.
  EXPECT_EQ(g.node(0).stats().debts_recorded, 1u);

  // Let the stability gossip settle, then free exactly one slot at p2: the
  // link retries and p2 accepts f1 — the mark-jumper — while m3 stays
  // stalled behind it.
  sim.run_until(sim.now() + sim::Duration::millis(150));
  const auto f0_delivery = g.node(2).try_deliver();
  ASSERT_TRUE(f0_delivery.has_value());
  sim.run_until(sim.now() + sim::Duration::millis(150));

  // The exact divergence that made raw marks unsound: p2's high-water
  // jumped the purged gap, its covered frontier did not.
  EXPECT_EQ(g.node(2).stability_ledger().high_water(net::ProcessId(0)), 3u);
  EXPECT_EQ(g.node(2).stability_ledger().frontier(net::ProcessId(0)), 1u);

  // f0 (seq 1) is stable and collected at p1; m1 (seq 2) must NOT be — the
  // old mark-based GC collected it here, which is the bug.
  EXPECT_GT(g.node(1).stats().stability_gcs, 0u);
  ASSERT_EQ(g.node(1).delivered_retained(), 1u);

  // p0 dies; the policy excludes it; m3 dies in its stalled channel.
  g.crash(0);
  sim.run_until(sim.now() + sim::Duration::millis(400));

  const auto at_p1 = g.drain(1);
  const auto at_p2 = g.drain(2);
  ASSERT_EQ(views_of(at_p2).size(), 1u);  // installed the exclusion view
  std::vector<std::uint64_t> p2_seqs;
  for (const auto& m : data_of(at_p2)) p2_seqs.push_back(m->seq());
  // The flush repaired the purged gap in per-sender seq position: m1
  // before the queued f1, no retro-delivery needed.
  EXPECT_EQ(p2_seqs, (std::vector<std::uint64_t>{2, 3}));
  EXPECT_EQ(g.node(2).stats().flushed_in, 1u);

  // And the histories agree with §3.2 under the ground truth.
  EXPECT_TRUE(checker.verify().empty());
}

TEST(Node, PurgeDebtLedgerStaysBounded) {
  // Debts retire once every member's frontier passed them: after a
  // purge-heavy run settles, the ledger must be empty again — on every
  // node, for both own and merged debts.
  sim::Simulator sim;
  auto cfg = base_config(std::make_shared<obs::KEnumRelation>());
  cfg.node.delivery_capacity = 2;
  cfg.node.out_capacity = 8;
  Group g(sim, cfg);
  g.node(0).set_deliverable_callback([&g] { g.drain(0); });
  g.node(1).set_deliverable_callback([&g] { g.drain(1); });
  g.drain(0);
  g.drain(1);
  g.drain(2);
  // Three items cycle, so p2's two delivery slots fill with two of them
  // and the third's arrival is refused — the channel backs up, and every
  // fresh multicast purges its same-item predecessors out of the backlog
  // (k = 16 reaches across it), recording debts.
  obs::BatchComposer composer({obs::AnnotationKind::k_enum, 16, 0});
  std::uint64_t seq = 1;
  for (int step = 0; step < 120; ++step) {
    if (g.node(0).can_multicast()) {
      ASSERT_TRUE(g.node(0).multicast(blob(static_cast<int>(seq)),
                                      composer.single(7 + seq % 3, seq)));
      ++seq;
    }
    sim.run_until(sim.now() + sim::Duration::millis(2));
    if (step % 20 == 19) g.drain(2);
  }
  // From here p2 consumes instantly, so the stalled backlog drains and the
  // gossip settles to quiescence.
  g.node(2).set_deliverable_callback([&g] { g.drain(2); });
  g.drain(2);
  sim.run();

  EXPECT_GT(g.node(0).stats().debts_recorded, 0u);
  EXPECT_GT(g.node(0).stats().debt_entries_gossiped, 0u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(g.node(i).stability_ledger().own_debts(), 0u) << i;
    EXPECT_EQ(g.node(i).stability_ledger().merged_debts(), 0u) << i;
    EXPECT_EQ(g.node(i).delivered_retained(), 0u) << i;
  }
  EXPECT_EQ(g.node(0).stats().debts_collected,
            g.node(0).stats().debts_recorded);
}

TEST(Node, FlushSafeWhenClippedRepresentationBreaksTransitivity) {
  // Regression for DESIGN.md §3(8).  With k = 2, a purge chain
  // m1 (seq1) ≺ m2 (seq3) ≺ m3 (seq5) loses the transitive edge m1 ≺ m3
  // (distance 4 > k).  A receiver that purged m1 and m2 holds only m3; the
  // agreed pred-view still contains m1 (fast members delivered it), and a
  // naive t7 flush would re-deliver the stale m1 *after* m3.  The
  // reception high-water filter must skip it.
  sim::Simulator sim;
  auto cfg = base_config(std::make_shared<obs::KEnumRelation>());
  cfg.node.stability_interval = sim::Duration::zero();  // keep history
  Group g(sim, cfg);
  g.node(0).set_deliverable_callback([&g] { g.drain(0); });
  g.node(1).set_deliverable_callback([&g] { g.drain(1); });
  g.drain(0);
  g.drain(1);
  // Node 2 consumes nothing: the chain purges inside its delivery queue.

  obs::BatchComposer composer({obs::AnnotationKind::k_enum, 2, 0});
  const auto send = [&](std::uint64_t item, std::uint64_t seq) {
    ASSERT_EQ(g.node(0).multicast(blob(static_cast<int>(seq)),
                                  composer.single(item, seq)),
              seq);
    sim.run();
  };
  send(7, 1);    // m1
  send(100, 2);  // filler (one-shot item)
  send(7, 3);    // m2: declares seq1 (distance 2)
  send(101, 4);  // filler
  send(7, 5);    // m3: declares seq3; the inherited seq1 bit clips at k=2

  // The chain purged m1 and m2 at node 2.
  EXPECT_EQ(g.node(2).stats().purged_delivery, 2u);
  EXPECT_EQ(g.node(2).delivery_data_count(), 3u);  // seqs 2, 4, 5

  ASSERT_TRUE(g.node(1).request_view_change({}));
  sim.run();

  const auto msgs = data_of(g.drain(2));
  std::vector<std::uint64_t> seqs;
  for (const auto& m : msgs) seqs.push_back(m->seq());
  // Strictly increasing (FIFO clause (i)) and without the stale seq 1/3.
  EXPECT_EQ(seqs, (std::vector<std::uint64_t>{2, 4, 5}));
}

TEST(Node, QuiescentGossipGoesSilentAfterConvergenceAtEqualLatency) {
  // The same burst, quiescent and classic.  Both modes must collect the
  // retained history within the same convergence window; afterwards the
  // quiescent group falls fully silent while the classic cadence keeps
  // paying one report per member per interval forever.
  struct ModeResult {
    sim::Duration convergence = sim::Duration::zero();
    std::uint64_t idle_sends = 0;
    std::uint64_t suppressed = 0;
    std::uint64_t heartbeats = 0;
    std::uint64_t piggybacks = 0;
    bool converged = false;
  };
  const auto run_mode = [](bool quiescent) {
    ModeResult out;
    sim::Simulator sim;
    auto cfg = base_config(std::make_shared<obs::EmptyRelation>());
    cfg.node.quiescent = quiescent;
    Group g(sim, cfg);
    for (int i = 0; i < 10; ++i) {
      EXPECT_TRUE(
          g.node(0).multicast(blob(i), obs::Annotation::none()).has_value());
    }
    const auto all_collected = [&g] {
      for (std::size_t n = 0; n < 3; ++n) {
        const auto& ledger = g.node(n).stability_ledger();
        if (g.node(n).delivered_retained() != 0 || ledger.own_debts() != 0 ||
            ledger.merged_debts() != 0) {
          return false;
        }
      }
      return true;
    };
    const auto start = sim.now();
    const auto deadline = start + sim::Duration::seconds(10.0);
    while (!all_collected() && sim.now() < deadline) {
      sim.run_until(sim.now() + sim::Duration::millis(10));
      for (std::size_t n = 0; n < 3; ++n) g.drain(n);
    }
    out.converged = all_collected();
    out.convergence = sim.now() - start;
    // Let the residual rounds settle (the trackers exchange their last
    // frontier moves for a few intervals after the group-level predicate
    // turns true), then measure ten virtual seconds of pure idleness.
    sim.run_until(sim.now() + sim::Duration::seconds(2.0));
    const std::uint64_t sends_before = g.network().stats().sent;
    sim.run_until(sim.now() + sim::Duration::seconds(10.0));
    out.idle_sends = g.network().stats().sent - sends_before;
    for (std::size_t n = 0; n < 3; ++n) {
      const auto& stats = g.node(n).stats();
      out.suppressed += stats.gossip_rounds_suppressed;
      out.heartbeats += stats.gossip_heartbeats;
      out.piggybacks += stats.frontier_piggybacks;
    }
    return out;
  };

  const ModeResult quiet = run_mode(true);
  const ModeResult classic = run_mode(false);
  ASSERT_TRUE(quiet.converged) << "quiescent mode failed to collect";
  ASSERT_TRUE(classic.converged) << "classic mode failed to collect";

  // Convergence latency unchanged: quiescence may only skip rounds that
  // carry no information, so it must not lag the fixed cadence by more
  // than one stability interval of measurement grain.
  EXPECT_LE(quiet.convergence.as_micros(),
            classic.convergence.as_micros() + 50'000);

  // Converged quiescent group: total silence (no gossip, no heartbeats —
  // the timer itself parks).  Classic: three members ticking every 50ms
  // for 10s, forever.
  EXPECT_EQ(quiet.idle_sends, 0u) << "a converged group must stop gossiping";
  EXPECT_GT(classic.idle_sends, 100u);
  EXPECT_GT(quiet.piggybacks, 0u) << "no frontier rode the data burst";
  EXPECT_EQ(classic.suppressed, 0u) << "classic mode must never suppress";
  EXPECT_EQ(classic.heartbeats, 0u);
}

TEST(Node, QuiescentHeartbeatsAreBudgetedWhenCollectionIsStuck) {
  // A dead member that auto-membership is NOT allowed to exclude freezes
  // the stable floor: the survivors' rounds go clean while collection
  // stays outstanding.  Quiescence must suppress most of those rounds,
  // escalate every silent_round_period-th to a full heartbeat, and — once
  // heartbeat_budget heartbeats in a row observe no progress — park the
  // timer entirely rather than tick against the dead floor forever.
  sim::Simulator sim;
  auto cfg = base_config(std::make_shared<obs::EmptyRelation>());
  cfg.node.stability_interval = sim::Duration::millis(20);
  cfg.node.quiescent = true;
  cfg.auto_membership = false;  // keep the dead member in the view
  Group g(sim, cfg);
  g.node(1).set_deliverable_callback([&g] { g.drain(1); });
  g.drain(1);
  g.crash(2);
  sim.run_until(sim.now() + sim::Duration::millis(100));
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(g.node(0).multicast(blob(i), obs::Annotation::none()));
    sim.run_until(sim.now() + sim::Duration::millis(5));
  }
  sim.run_until(sim.now() + sim::Duration::seconds(5.0));

  std::uint64_t suppressed = 0;
  std::uint64_t heartbeats = 0;
  for (std::size_t n = 0; n < 2; ++n) {
    suppressed += g.node(n).stats().gossip_rounds_suppressed;
    heartbeats += g.node(n).stats().gossip_heartbeats;
  }
  EXPECT_GT(suppressed, 0u) << "clean unconverged rounds were all sent";
  EXPECT_GT(heartbeats, 0u) << "silence was never escalated to a heartbeat";

  // Budget exhausted: the timers are parked, so a long further stretch of
  // wall-to-wall idleness adds zero traffic — and the history really is
  // still uncollectable (this is the §2.1 frozen-floor scenario, which
  // only a membership change can clear).
  const std::uint64_t sends_before = g.network().stats().sent;
  sim.run_until(sim.now() + sim::Duration::seconds(10.0));
  EXPECT_EQ(g.network().stats().sent, sends_before)
      << "a parked group kept gossiping at the dead floor";
  EXPECT_EQ(g.node(1).delivered_retained(), 20u);
}

}  // namespace
}  // namespace svs::core
