// Determinism golden test: the same seed and workload must produce
// byte-identical substrate counters, run after run and PR after PR.
//
// The goldens below were captured from the dense-registry/flat-link-table
// send path; they were re-captured (deliberately) for the purge-debt
// stability ledger, whose gossip cadence differs from the old raw-mark
// tracker: a receiver's first report for a channel now waits for the
// sender's anchor announcement, debts ride the rounds, and frontier moves
// rather than raw high-water rises drive dirtiness — so the control-lane
// send/event counts shifted while the data-lane protocol behaviour
// (sends, deliveries, purges, refusals of the *data* stream) is checked
// unchanged by the rest of the suite.  If a future change shifts these
// numbers it changed
// the simulated protocol (event ordering, admission decisions, purge
// behaviour), not just its speed: either find the unintended divergence or
// re-capture the goldens deliberately and say so in the PR.
//
// Re-captured for quiescent adaptive gossip: suppressed clean rounds,
// silent-interval heartbeats, the no-news-gated anti-entropy refresh and
// collection running before the convergence check all reduce the
// control-lane send/event totals (every gossip round that no longer
// fires is a send and a handful of events gone).  The data-lane protocol
// counters — refusals, sender- and receiver-side purges — are
// bit-identical to the pre-quiescence goldens, which is the check that
// the gossip change did not leak into admission or GC decisions.
//
// Regenerate by printing the RunResult fields of these two configs (e.g.
// temporarily EXPECT_EQ against 0 and read the failure output).
#include <gtest/gtest.h>

#include "bench/common.hpp"
#include "workload/game_generator.hpp"

namespace svs {
namespace {

workload::Trace make_trace(std::uint64_t seed, std::size_t rounds) {
  workload::GameTraceGenerator::Config tc;
  tc.seed = seed;
  workload::GameTraceGenerator gen(tc);
  return gen.generate(rounds);
}

// Uncontended: buffers never fill, no refusals, no purging pressure — the
// pure fan-out/delivery event machinery.
TEST(DeterminismGolden, UncontendedSlowConsumerRun) {
  const auto trace = make_trace(42, 300);
  bench::RunConfig rc;
  rc.trace = &trace;
  rc.replicas = 4;
  rc.buffer = 10'000;
  rc.consumer_rate = 5'000.0;
  const auto r = bench::run_slow_consumer(rc);

  EXPECT_TRUE(r.producer_done);
  EXPECT_EQ(r.messages_sent, 4119u);
  EXPECT_EQ(r.messages_delivered, 4119u);
  EXPECT_EQ(r.sim_events, 14156u);
  EXPECT_EQ(r.refused, 0u);
  EXPECT_EQ(r.purged_sender, 0u);
}

// Contended: the Fig-4 shape — small buffers, slow consumer, refusals and
// sender-side purging all active.  Locks the full feedback loop
// (backpressure, admission, windowed outgoing purge, stability gossip).
TEST(DeterminismGolden, ContendedSlowConsumerRun) {
  const auto trace = make_trace(42, 800);
  bench::RunConfig rc;
  rc.trace = &trace;
  rc.replicas = 4;
  rc.buffer = 10;
  rc.consumer_rate = 20.0;
  const auto r = bench::run_slow_consumer(rc);

  EXPECT_TRUE(r.producer_done);
  EXPECT_EQ(r.messages_sent, 13779u);
  EXPECT_EQ(r.messages_delivered, 12994u);
  EXPECT_EQ(r.sim_events, 45546u);
  EXPECT_EQ(r.refused, 1024u);
  EXPECT_EQ(r.purged_sender, 785u);
  EXPECT_EQ(r.purged_receiver, 40u);
}

// Same run twice from fresh state: every counter identical (no hidden
// global state, no address-dependent ordering anywhere in the stack).
TEST(DeterminismGolden, RepeatRunsAreIdentical) {
  const auto trace = make_trace(7, 200);
  bench::RunConfig rc;
  rc.trace = &trace;
  rc.replicas = 3;
  rc.buffer = 12;
  rc.consumer_rate = 40.0;
  const auto a = bench::run_slow_consumer(rc);
  const auto b = bench::run_slow_consumer(rc);

  EXPECT_EQ(a.messages_sent, b.messages_sent);
  EXPECT_EQ(a.messages_delivered, b.messages_delivered);
  EXPECT_EQ(a.sim_events, b.sim_events);
  EXPECT_EQ(a.refused, b.refused);
  EXPECT_EQ(a.purged_sender, b.purged_sender);
  EXPECT_EQ(a.purged_receiver, b.purged_receiver);
  EXPECT_EQ(a.idle_fraction, b.idle_fraction);
}

}  // namespace
}  // namespace svs
