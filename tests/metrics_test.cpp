// Tests for the metrics toolkit.
#include <gtest/gtest.h>

#include <sstream>

#include "metrics/stats.hpp"
#include "metrics/table.hpp"
#include "util/contracts.hpp"

namespace svs::metrics {
namespace {

TEST(Summary, Accumulates) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  s.add(2);
  s.add(4);
  s.add(9);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(TimeWeightedMean, WeightsByDuration) {
  TimeWeightedMean m(sim::TimePoint::origin());
  // Value 10 held for 1ms, then value 0 held for 3ms: mean = 2.5.
  m.record(sim::TimePoint::origin() + sim::Duration::millis(1), 10.0);
  m.record(sim::TimePoint::origin() + sim::Duration::millis(4), 0.0);
  EXPECT_DOUBLE_EQ(m.mean(), 2.5);
  EXPECT_DOUBLE_EQ(m.max(), 10.0);
}

TEST(TimeWeightedMean, RejectsTimeTravel) {
  TimeWeightedMean m(sim::TimePoint::origin() + sim::Duration::millis(5));
  EXPECT_THROW(m.record(sim::TimePoint::origin(), 1.0),
               util::ContractViolation);
}

TEST(PeriodicSampler, SamplesAtPeriod) {
  sim::Simulator sim;
  double value = 4.0;
  PeriodicSampler sampler(sim, sim::Duration::millis(10),
                          [&value] { return value; });
  sampler.start();
  sim.run_until(sim::TimePoint::origin() + sim::Duration::millis(55));
  value = 8.0;
  sim.run_until(sim::TimePoint::origin() + sim::Duration::millis(105));
  sampler.stop();
  sim.run();
  // Half the time at 4, half at 8 (within quantisation of the period).
  EXPECT_NEAR(sampler.series().mean(), 6.0, 0.5);
  EXPECT_DOUBLE_EQ(sampler.series().max(), 8.0);
}

TEST(Histogram, SharesAndPercentiles) {
  Histogram h;
  for (int i = 0; i < 60; ++i) h.add(1);
  for (int i = 0; i < 30; ++i) h.add(5);
  for (int i = 0; i < 10; ++i) h.add(50);
  EXPECT_EQ(h.total(), 100u);
  EXPECT_DOUBLE_EQ(h.share(1), 0.6);
  EXPECT_DOUBLE_EQ(h.share(5), 0.3);
  EXPECT_DOUBLE_EQ(h.share(2), 0.0);
  EXPECT_EQ(h.percentile(50), 1);
  EXPECT_EQ(h.percentile(75), 5);
  EXPECT_EQ(h.percentile(99), 50);
}

TEST(Histogram, EmptyIsSafe) {
  Histogram h;
  EXPECT_EQ(h.total(), 0u);
  EXPECT_DOUBLE_EQ(h.share(1), 0.0);
  EXPECT_EQ(h.percentile(50), 0);
}

TEST(Table, FormatsAlignedColumns) {
  Table t({"a", "long-header", "c"});
  t.row({"1", "2", "3"}).row({"xxxx", "y", "zz"});
  std::ostringstream os;
  t.print(os);
  const auto s = os.str();
  EXPECT_NE(s.find("long-header"), std::string::npos);
  EXPECT_NE(s.find("xxxx"), std::string::npos);
  // header + separator + 2 rows = 4 lines
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 4);
}

TEST(Table, RowWidthChecked) {
  Table t({"a", "b"});
  EXPECT_THROW(t.row({"only-one"}), util::ContractViolation);
}

TEST(Table, NumFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(std::uint64_t{42}), "42");
}

}  // namespace
}  // namespace svs::metrics
