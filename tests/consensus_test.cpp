// Unit & property tests for Chandra-Toueg consensus.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <vector>

#include "consensus/mux.hpp"
#include "fd/oracle.hpp"
#include "net/network.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"

namespace svs::consensus {
namespace {

class IntValue final : public ValueBase {
 public:
  explicit IntValue(int v) : v_(v) {}
  [[nodiscard]] int value() const { return v_; }
  [[nodiscard]] std::size_t wire_size() const override { return 4; }

 private:
  int v_;
};

int as_int(const ValuePtr& v) {
  return std::dynamic_pointer_cast<const IntValue>(v)->value();
}

/// One process: endpoint routing consensus traffic into a Mux.
class Participant final : public net::Endpoint {
 public:
  Participant(sim::Simulator& sim, net::Network& network, net::ProcessId self,
              sim::Duration oracle_delay)
      : self_(self), mux_(self), fd_(sim, network, self, oracle_delay) {
    network.attach(self, *this);
  }

  bool on_message(net::ProcessId from, const net::MessagePtr& message,
                  net::Lane) override {
    EXPECT_TRUE(mux_.on_message(from, message));
    return true;
  }

  void open_and_propose(net::Network& network, InstanceId id,
                        std::vector<net::ProcessId> participants, int value) {
    auto& inst = mux_.open(network, fd_, id, std::move(participants),
                           [this](const ValuePtr& v) { decision_ = as_int(v); });
    inst.propose(std::make_shared<IntValue>(value));
  }

  void open_only(net::Network& network, InstanceId id,
                 std::vector<net::ProcessId> participants) {
    mux_.open(network, fd_, id, std::move(participants),
              [this](const ValuePtr& v) { decision_ = as_int(v); });
  }

  [[nodiscard]] std::optional<int> decision() const { return decision_; }
  [[nodiscard]] Mux& mux() { return mux_; }

 private:
  net::ProcessId self_;
  Mux mux_;
  fd::OracleDetector fd_;
  std::optional<int> decision_;
};

struct Harness {
  explicit Harness(std::size_t n,
                   sim::Duration oracle_delay = sim::Duration::millis(20))
      : network(sim, {}) {
    for (std::size_t i = 0; i < n; ++i) {
      pids.push_back(net::ProcessId(static_cast<std::uint32_t>(i)));
    }
    for (std::size_t i = 0; i < n; ++i) {
      procs.push_back(std::make_unique<Participant>(sim, network, pids[i],
                                                    oracle_delay));
    }
  }

  sim::Simulator sim;
  net::Network network;
  std::vector<net::ProcessId> pids;
  std::vector<std::unique_ptr<Participant>> procs;
};

TEST(Consensus, ThreeProcessesAgree) {
  Harness h(3);
  for (std::size_t i = 0; i < 3; ++i) {
    h.procs[i]->open_and_propose(h.network, InstanceId(1), h.pids,
                                 static_cast<int>(100 + i));
  }
  h.sim.run();
  ASSERT_TRUE(h.procs[0]->decision().has_value());
  const int v = *h.procs[0]->decision();
  for (const auto& p : h.procs) {
    ASSERT_TRUE(p->decision().has_value());
    EXPECT_EQ(*p->decision(), v);
  }
  EXPECT_GE(v, 100);
  EXPECT_LE(v, 102);  // validity
}

TEST(Consensus, SingleProcessDecidesItsOwnValue) {
  Harness h(1);
  h.procs[0]->open_and_propose(h.network, InstanceId(1), h.pids, 7);
  h.sim.run();
  ASSERT_TRUE(h.procs[0]->decision().has_value());
  EXPECT_EQ(*h.procs[0]->decision(), 7);
}

TEST(Consensus, DecidesWithCrashedCoordinator) {
  Harness h(3);
  // Coordinator of round 0 is participant 0; crash it before it proposes.
  h.network.crash(net::ProcessId(0));
  for (std::size_t i = 1; i < 3; ++i) {
    h.procs[i]->open_and_propose(h.network, InstanceId(1), h.pids,
                                 static_cast<int>(100 + i));
  }
  h.sim.run();
  ASSERT_TRUE(h.procs[1]->decision().has_value());
  ASSERT_TRUE(h.procs[2]->decision().has_value());
  EXPECT_EQ(*h.procs[1]->decision(), *h.procs[2]->decision());
  // Validity: the dead coordinator's value cannot be decided (it never
  // proposed).
  EXPECT_NE(*h.procs[1]->decision(), 100);
}

TEST(Consensus, ToleratesMinorityCrashMidRun) {
  Harness h(5);
  for (std::size_t i = 0; i < 5; ++i) {
    h.procs[i]->open_and_propose(h.network, InstanceId(1), h.pids,
                                 static_cast<int>(i));
  }
  // Crash two processes shortly after proposing.
  h.sim.schedule_after(sim::Duration::micros(1500),
                       [&] { h.network.crash(net::ProcessId(1)); });
  h.sim.schedule_after(sim::Duration::micros(1700),
                       [&] { h.network.crash(net::ProcessId(3)); });
  h.sim.run();
  std::optional<int> agreed;
  for (const std::size_t i : {0u, 2u, 4u}) {
    ASSERT_TRUE(h.procs[i]->decision().has_value()) << i;
    if (!agreed) agreed = *h.procs[i]->decision();
    EXPECT_EQ(*h.procs[i]->decision(), *agreed);
  }
}

TEST(Consensus, LateProposerStillDecides) {
  Harness h(3);
  h.procs[0]->open_and_propose(h.network, InstanceId(1), h.pids, 1);
  h.procs[1]->open_and_propose(h.network, InstanceId(1), h.pids, 2);
  // Process 2 opens late — messages meanwhile are buffered by its Mux.
  h.sim.schedule_after(sim::Duration::millis(500), [&] {
    h.procs[2]->open_and_propose(h.network, InstanceId(1), h.pids, 3);
  });
  h.sim.run();
  for (const auto& p : h.procs) {
    ASSERT_TRUE(p->decision().has_value());
    EXPECT_EQ(*p->decision(), *h.procs[0]->decision());
  }
}

TEST(Consensus, NonProposerLearnsDecision) {
  Harness h(3);
  h.procs[0]->open_and_propose(h.network, InstanceId(1), h.pids, 1);
  h.procs[1]->open_and_propose(h.network, InstanceId(1), h.pids, 2);
  h.procs[2]->open_only(h.network, InstanceId(1), h.pids);
  h.sim.run();
  ASSERT_TRUE(h.procs[2]->decision().has_value());
  EXPECT_EQ(*h.procs[2]->decision(), *h.procs[0]->decision());
}

TEST(Consensus, IndependentInstancesDoNotInterfere) {
  Harness h(3);
  for (std::size_t i = 0; i < 3; ++i) {
    h.procs[i]->open_and_propose(h.network, InstanceId(1), h.pids, 10);
    h.procs[i]->open_and_propose(h.network, InstanceId(2), h.pids, 20);
  }
  h.sim.run();
  for (const auto& p : h.procs) {
    EXPECT_EQ(as_int(p->mux().find(InstanceId(1))->decision()), 10);
    EXPECT_EQ(as_int(p->mux().find(InstanceId(2))->decision()), 20);
  }
}

TEST(Consensus, ProposeTwiceRejected) {
  Harness h(1);
  h.procs[0]->open_and_propose(h.network, InstanceId(1), h.pids, 1);
  auto* inst = h.procs[0]->mux().find(InstanceId(1));
  EXPECT_THROW(inst->propose(std::make_shared<IntValue>(2)),
               util::ContractViolation);
}

// ---------------------------------------------------------------------------
// Property sweep: agreement/validity/termination under randomized crashes,
// proposal timing and group sizes.
// ---------------------------------------------------------------------------

class ConsensusProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ConsensusProperty, AgreementValidityTermination) {
  sim::Rng rng(GetParam());
  const std::size_t n = 3 + rng.below(5);            // 3..7
  const std::size_t max_crashes = (n - 1) / 2;       // strict minority
  const std::size_t crashes = rng.below(max_crashes + 1);

  Harness h(n, sim::Duration::millis(5 + rng.below(40)));

  std::vector<int> proposals(n);
  for (std::size_t i = 0; i < n; ++i) {
    proposals[i] = static_cast<int>(1000 + i);
    const auto delay = sim::Duration::micros(
        static_cast<std::int64_t>(rng.below(5000)));
    h.sim.schedule_after(delay, [&h, i, &proposals] {
      h.procs[i]->open_and_propose(h.network, InstanceId(9), h.pids,
                                   proposals[i]);
    });
  }
  // Crash a random strict minority at random times.
  std::vector<bool> crashed(n, false);
  std::size_t planned = 0;
  while (planned < crashes) {
    const std::size_t victim = rng.below(n);
    if (crashed[victim]) continue;
    crashed[victim] = true;
    ++planned;
    const auto when = sim::Duration::micros(
        static_cast<std::int64_t>(rng.below(20000)));
    h.sim.schedule_after(when, [&h, victim] {
      h.network.crash(net::ProcessId(static_cast<std::uint32_t>(victim)));
    });
  }

  h.sim.run();

  std::optional<int> agreed;
  for (std::size_t i = 0; i < n; ++i) {
    if (crashed[i]) continue;
    // Termination for every correct process.
    ASSERT_TRUE(h.procs[i]->decision().has_value())
        << "proc " << i << " undecided (seed " << GetParam() << ")";
    if (!agreed) agreed = *h.procs[i]->decision();
    // Agreement.
    EXPECT_EQ(*h.procs[i]->decision(), *agreed)
        << "disagreement at proc " << i << " (seed " << GetParam() << ")";
  }
  if (agreed) {
    // Validity: the decision is someone's proposal.
    EXPECT_GE(*agreed, 1000);
    EXPECT_LT(*agreed, 1000 + static_cast<int>(n));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConsensusProperty,
                         ::testing::Range<std::uint64_t>(1, 41));

}  // namespace
}  // namespace svs::consensus
