// Encode-once frame sharing (DESIGN.md §8).
//
// `Codec::shared_frame` must be byte-identical to `Codec::encode` for every
// message type and annotation/payload shape — a cached frame that drifts
// from the reference encoder would poison every receiver at once.  The
// randomized sweep hammers that equality over seeded-random DataMessages;
// the loopback tests pin the perf contract itself: one encode per
// multicast, every further destination reuses the cached frame.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "consensus/message.hpp"
#include "core/message.hpp"
#include "fd/heartbeat.hpp"
#include "net/codec.hpp"
#include "net/loopback.hpp"
#include "obs/kbitmap.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "util/bytes.hpp"
#include "workload/item_op.hpp"

namespace svs::net {
namespace {

using core::DataMessage;
using core::DataMessagePtr;
using core::ViewId;

class NullPayload final : public core::Payload {
 public:
  explicit NullPayload(std::size_t n) : n_(n) {}
  [[nodiscard]] std::size_t wire_size() const override { return n_; }

 private:
  std::size_t n_;
};

/// The one property everything rests on.
void expect_frame_equals_encode(const Message& m) {
  const util::Bytes reference = Codec::encode(m);
  const FramePtr frame = Codec::shared_frame(m);
  ASSERT_NE(frame, nullptr);
  EXPECT_EQ(*frame, reference) << "shared frame drifted from Codec::encode";
  EXPECT_EQ(frame->size(), m.wire_size());
}

std::vector<obs::Annotation> annotation_corpus() {
  obs::KBitmap bm(32);
  bm.set(1);
  bm.set(7);
  bm.set(32);
  return {obs::Annotation::none(), obs::Annotation::item(777),
          obs::Annotation::enumerate({3, 9, 200, 4096}),
          obs::Annotation::kenum(bm)};
}

TEST(SharedFrame, MatchesEncodeForEveryMessageType) {
  // data, across every annotation representation and payload shape
  for (const auto& annotation : annotation_corpus()) {
    expect_frame_equals_encode(DataMessage(
        ProcessId(5), 12345, ViewId(3), annotation,
        std::make_shared<workload::ItemOp>(workload::OpKind::update, 42,
                                           0xDEADBEEFCAFEULL, 17, true)));
    expect_frame_equals_encode(DataMessage(ProcessId(1), 7, ViewId(0),
                                           annotation,
                                           std::make_shared<NullPayload>(13)));
    expect_frame_equals_encode(
        DataMessage(ProcessId(9), 1, ViewId(2), annotation, nullptr));
  }

  // init
  expect_frame_equals_encode(
      core::InitMessage(ViewId(6), {ProcessId(2), ProcessId(900)}));

  // pred with nested messages
  std::vector<DataMessagePtr> accepted;
  std::uint64_t seq = 100;
  for (const auto& annotation : annotation_corpus()) {
    ++seq;
    accepted.push_back(std::make_shared<DataMessage>(
        ProcessId(4), seq, ViewId(3), annotation,
        std::make_shared<workload::ItemOp>(workload::OpKind::create, seq,
                                           seq * 3, 1, false)));
  }
  expect_frame_equals_encode(core::PredMessage(ViewId(3), accepted));

  // stability with seen map and purge debts
  expect_frame_equals_encode(core::StabilityMessage(
      ViewId(2), 41,
      {{ProcessId(0), 17}, {ProcessId(3), 0}, {ProcessId(9), 1u << 20}},
      {core::PurgeDebt{42, 44}, core::PurgeDebt{45, 1u << 21}}));

  // consensus (opaque value and null value)
  expect_frame_equals_encode(consensus::ConsensusMessage(
      consensus::InstanceId(3), 2, consensus::Phase::propose,
      std::make_shared<consensus::OpaqueValue>(9), 1));
  expect_frame_equals_encode(consensus::ConsensusMessage(
      consensus::InstanceId(1), 0, consensus::Phase::nack, nullptr, 0));

  // heartbeat
  expect_frame_equals_encode(fd::HeartbeatMessage());
}

TEST(SharedFrame, RandomizedDataMessagesMatchEncode) {
  sim::Rng rng(0xF4A3E5EEDULL);
  for (int i = 0; i < 300; ++i) {
    obs::Annotation annotation = obs::Annotation::none();
    switch (rng.next_u64() % 4) {
      case 0: break;
      case 1:
        annotation = obs::Annotation::item(rng.next_u64() % 100000);
        break;
      case 2: {
        std::vector<std::uint64_t> ids;
        const std::size_t n = 1 + rng.next_u64() % 8;
        for (std::size_t j = 0; j < n; ++j) {
          ids.push_back(rng.next_u64() % 65536);
        }
        annotation = obs::Annotation::enumerate(ids);
        break;
      }
      default: {
        obs::KBitmap bm(64);
        const std::size_t n = rng.next_u64() % 10;
        for (std::size_t j = 0; j < n; ++j) {
          bm.set(1 + rng.next_u64() % 64);
        }
        annotation = obs::Annotation::kenum(bm);
        break;
      }
    }
    core::PayloadPtr payload;
    switch (rng.next_u64() % 3) {
      case 0: break;
      case 1:
        payload = std::make_shared<NullPayload>(rng.next_u64() % 256);
        break;
      default:
        payload = std::make_shared<workload::ItemOp>(
            static_cast<workload::OpKind>(rng.next_u64() % 3),
            rng.next_u64() % 4096, rng.next_u64(), rng.next_u64() % 64,
            rng.next_u64() % 2 == 0);
        break;
    }
    const DataMessage m(ProcessId(static_cast<std::uint32_t>(
                            rng.next_u64() % 64)),
                        rng.next_u64() % (1ULL << 40),
                        ViewId(rng.next_u64() % 1024), annotation,
                        std::move(payload));
    expect_frame_equals_encode(m);
  }
}

TEST(SharedFrame, IsEncodedOnceAndCachedOnTheMessage) {
  const DataMessage m(ProcessId(1), 2, ViewId(0), obs::Annotation::item(5),
                      std::make_shared<NullPayload>(8));
  EXPECT_FALSE(m.frame_cached());
  const FramePtr first = Codec::shared_frame(m);
  EXPECT_TRUE(m.frame_cached());
  const FramePtr second = Codec::shared_frame(m);
  EXPECT_EQ(first.get(), second.get())
      << "repeated calls must return the same buffer, not re-encode";
}

// ---------------------------------------------------------------------------
// loopback: one encode per multicast, reuses for every further destination
// ---------------------------------------------------------------------------

class Recorder final : public Endpoint {
 public:
  bool on_message(ProcessId, const MessagePtr& message, Lane) override {
    received.push_back(message);
    return true;
  }
  std::vector<MessagePtr> received;
};

TEST(SharedFrame, LoopbackMulticastEncodesOncePerMessage) {
  sim::Simulator sim;
  ThreadedLoopback wire(sim, {});
  Recorder a, b, c, d;
  wire.attach(ProcessId(0), a);
  wire.attach(ProcessId(1), b);
  wire.attach(ProcessId(2), c);
  wire.attach(ProcessId(3), d);
  const std::vector<ProcessId> all{ProcessId(0), ProcessId(1), ProcessId(2),
                                   ProcessId(3)};
  constexpr int kMessages = 25;
  for (int i = 1; i <= kMessages; ++i) {
    const auto m = std::make_shared<core::DataMessage>(
        ProcessId(0), static_cast<std::uint64_t>(i), ViewId(0),
        obs::Annotation::none(), std::make_shared<NullPayload>(16));
    wire.multicast(ProcessId(0), all, m, Lane::data);
  }
  sim.run();

  // 3 destinations per multicast (self-delivery is local): one encode, two
  // frame reuses each.
  EXPECT_EQ(b.received.size(), static_cast<std::size_t>(kMessages));
  EXPECT_EQ(wire.frame_encodes(), static_cast<std::uint64_t>(kMessages));
  EXPECT_EQ(wire.frame_reuses(), static_cast<std::uint64_t>(2 * kMessages));
  EXPECT_EQ(wire.wire_frames(), wire.frame_encodes() + wire.frame_reuses());
}

TEST(SharedFrame, LoopbackUnicastStillEncodesPerFreshMessage) {
  sim::Simulator sim;
  ThreadedLoopback wire(sim, {});
  Recorder a, b;
  wire.attach(ProcessId(0), a);
  wire.attach(ProcessId(1), b);
  for (int i = 1; i <= 10; ++i) {
    wire.send(ProcessId(0), ProcessId(1),
              std::make_shared<core::DataMessage>(
                  ProcessId(0), static_cast<std::uint64_t>(i), ViewId(0),
                  obs::Annotation::none(), nullptr),
              Lane::data);
  }
  sim.run();
  EXPECT_EQ(b.received.size(), 10u);
  EXPECT_EQ(wire.frame_encodes(), 10u);
  EXPECT_EQ(wire.frame_reuses(), 0u);
}

}  // namespace
}  // namespace svs::net
