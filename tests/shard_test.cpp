// runtime/shard.hpp: consistent-hash placement and the sharded runner.
//
// The load-bearing property: shards share nothing, so per-shard transport
// counters sum to exactly what an unsharded run of the same groups
// produces — byte accounting is placement-invariant.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "core/group.hpp"
#include "obs/relation.hpp"
#include "runtime/shard.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace svs;

TEST(HashRing, DeterministicAndTotal) {
  const runtime::HashRing a(4);
  const runtime::HashRing b(4);
  for (std::uint64_t key = 0; key < 1000; ++key) {
    const std::uint32_t shard = a.shard_of(key);
    EXPECT_LT(shard, 4u);
    EXPECT_EQ(shard, b.shard_of(key)) << "placement must be deterministic";
  }
}

TEST(HashRing, SpreadsKeysAcrossShards) {
  const runtime::HashRing ring(4);
  std::vector<std::size_t> counts(4, 0);
  for (std::uint64_t key = 0; key < 4000; ++key) ++counts[ring.shard_of(key)];
  for (std::uint32_t s = 0; s < 4; ++s) {
    // 64 vnodes keep the split well away from degenerate; expect every
    // shard to hold at least a tenth of a fair share.
    EXPECT_GT(counts[s], 100u) << "shard " << s << " is starved";
  }
}

TEST(HashRing, SmallSequentialKeysDoNotPileOntoShardZero) {
  // Regression: keys and vnode ids share the mix function, so without
  // domain separation key k == (0 << 32) | vnode hashed exactly onto a
  // shard-0 ring point — keys 1..vnodes_per_shard all landed on shard 0.
  const runtime::HashRing ring(4);
  std::vector<std::size_t> counts(4, 0);
  for (std::uint64_t key = 0; key <= 64; ++key) ++counts[ring.shard_of(key)];
  for (std::uint32_t s = 0; s < 4; ++s) {
    EXPECT_GT(counts[s], 0u) << "shard " << s << " got no small keys";
    EXPECT_LT(counts[s], 40u) << "small keys piled onto shard " << s;
  }
}

TEST(HashRing, GrowthOnlyMovesKeysToTheNewShard) {
  // The consistent-hashing contract: adding shard N+1 steals ranges for
  // itself; no key moves between surviving shards.
  for (std::uint32_t n = 1; n < 8; ++n) {
    const runtime::HashRing before(n);
    const runtime::HashRing after(n + 1);
    std::size_t moved = 0;
    for (std::uint64_t key = 0; key < 2000; ++key) {
      const std::uint32_t was = before.shard_of(key);
      const std::uint32_t is = after.shard_of(key);
      if (was != is) {
        EXPECT_EQ(is, n) << "key " << key
                         << " moved between surviving shards";
        ++moved;
      }
    }
    EXPECT_GT(moved, 0u) << "the new shard took nothing";
    // ~1/(n+1) of keys should move; allow a generous factor for hash noise.
    EXPECT_LT(moved, 2000u * 3 / (n + 1)) << "growth reshuffled too much";
  }
}

TEST(ShardedRunner, PlacePartitionsEveryKey) {
  runtime::ShardedRunner runner({.shards = 4});
  std::vector<std::uint64_t> keys;
  for (std::uint64_t k = 100; k < 200; ++k) keys.push_back(k);
  const auto placed = runner.place(keys);
  ASSERT_EQ(placed.size(), 4u);
  std::multiset<std::uint64_t> seen;
  for (const auto& shard_keys : placed) {
    seen.insert(shard_keys.begin(), shard_keys.end());
  }
  EXPECT_EQ(seen, std::multiset<std::uint64_t>(keys.begin(), keys.end()));
}

TEST(ShardedRunner, RunsEveryShardOnItsOwnThread) {
  runtime::ShardedRunner runner({.shards = 3});
  const std::vector<std::uint64_t> keys{1, 2, 3, 4, 5, 6};
  std::vector<std::thread::id> thread_ids(3);
  const auto report = runner.run(
      keys, [&](std::uint32_t shard, std::span<const std::uint64_t> mine) {
        thread_ids[shard] = std::this_thread::get_id();
        runtime::ShardReport r;
        r.sim_events = mine.size();
        return r;
      });
  EXPECT_EQ(report.sim_events, keys.size());
  ASSERT_EQ(report.shards.size(), 3u);
  const std::set<std::thread::id> distinct(thread_ids.begin(),
                                           thread_ids.end());
  EXPECT_EQ(distinct.size(), 3u) << "workers must not share threads";
  EXPECT_EQ(distinct.count(std::this_thread::get_id()), 0u);
  for (const auto& shard : report.shards) {
    EXPECT_GE(shard.busy_seconds, 0.0);
  }
}

TEST(ShardedRunner, RethrowsShardFailures) {
  runtime::ShardedRunner runner({.shards = 2});
  const std::vector<std::uint64_t> keys{1, 2, 3};
  std::atomic<int> ran{0};
  EXPECT_THROW(
      runner.run(keys,
                 [&](std::uint32_t shard, std::span<const std::uint64_t>) {
                   ++ran;
                   if (shard == 1) throw std::runtime_error("shard 1 died");
                   return runtime::ShardReport{};
                 }),
      std::runtime_error);
  EXPECT_EQ(ran.load(), 2) << "every worker still joined";
}

class NullPayload final : public core::Payload {
 public:
  [[nodiscard]] std::size_t wire_size() const override { return 8; }
};

/// Runs the flood for every group key handed to a shard: each group is its
/// own simulator + transport, so the workload is a pure function of the
/// key, independent of which shard (or how many shards) runs it.
runtime::ShardReport flood_groups(std::span<const std::uint64_t> keys) {
  runtime::ShardReport report;
  for (const std::uint64_t key : keys) {
    sim::Simulator sim;
    core::Group::Config cfg;
    cfg.size = 3;
    cfg.node.relation = std::make_shared<obs::EmptyRelation>();
    cfg.auto_membership = false;
    core::Group group(sim, cfg);
    const auto payload = std::make_shared<NullPayload>();
    const int multicasts = 20 + static_cast<int>(key % 7);
    for (int i = 0; i < multicasts; ++i) {
      group.node(0).multicast(payload, obs::Annotation::none());
      sim.run();
      for (std::size_t n = 0; n < cfg.size; ++n) {
        while (group.node(n).try_deliver().has_value()) {
          ++report.deliveries;
        }
      }
    }
    report.net += group.network().stats();
    report.sim_events += sim.executed();
  }
  return report;
}

TEST(ShardedRunner, PerShardCountersSumToUnshardedTotals) {
  std::vector<std::uint64_t> keys;
  for (std::uint64_t k = 0; k < 12; ++k) keys.push_back(k * 37 + 5);

  runtime::ShardedRunner single({.shards = 1});
  runtime::ShardedRunner four({.shards = 4});
  const auto main = [](std::uint32_t, std::span<const std::uint64_t> mine) {
    return flood_groups(mine);
  };
  const auto unsharded = single.run(keys, main);
  const auto sharded = four.run(keys, main);

  EXPECT_EQ(sharded.net.sent, unsharded.net.sent);
  EXPECT_EQ(sharded.net.delivered, unsharded.net.delivered);
  EXPECT_EQ(sharded.net.bytes_sent, unsharded.net.bytes_sent);
  EXPECT_EQ(sharded.net.bytes_delivered, unsharded.net.bytes_delivered);
  EXPECT_EQ(sharded.net.bytes_purged, unsharded.net.bytes_purged);
  EXPECT_EQ(sharded.sim_events, unsharded.sim_events);
  EXPECT_EQ(sharded.deliveries, unsharded.deliveries);

  // And the per-shard rows really are a partition of the total.
  net::NetworkStats resummed;
  for (const auto& shard : sharded.shards) resummed += shard.net;
  EXPECT_EQ(resummed.bytes_sent, unsharded.net.bytes_sent);
  EXPECT_EQ(resummed.delivered, unsharded.net.delivered);
}

}  // namespace
