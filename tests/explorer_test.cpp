// Scenario explorer and fault-injection tests.
//
// Three layers: (1) injector mechanics against a bare Network — jitter
// preserves FIFO, partitions hold traffic until heal, duplication enqueues
// extra copies, drops never enqueue, receiver pauses stall and resume;
// (2) explorer determinism — one spec, one outcome, bit for bit; (3) the
// failing-case pipeline — hostile (out-of-model) plans must produce
// violations, shrink to a smaller still-failing spec, and replay.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/checker.hpp"
#include "core/group.hpp"
#include "core/message.hpp"
#include "net/fault_injector.hpp"
#include "net/network.hpp"
#include "obs/relation.hpp"
#include "sim/explorer.hpp"
#include "sim/fault_plan.hpp"
#include "sim/simulator.hpp"
#include "workload/consumer.hpp"

namespace svs::sim {
namespace {

// ---------------------------------------------------------------------------
// injector mechanics (bare network)
// ---------------------------------------------------------------------------

class Recorder final : public net::Endpoint {
 public:
  bool on_message(net::ProcessId, const net::MessagePtr& message,
                  net::Lane) override {
    received.push_back({message, at_->now()});
    return true;
  }
  struct Rec {
    net::MessagePtr message;
    TimePoint when;
  };
  std::vector<Rec> received;
  const Simulator* at_ = nullptr;
};

class SeqMessage final : public net::Message {
 public:
  explicit SeqMessage(std::uint64_t seq)
      : net::Message(net::MessageType::other, seq), seq_(seq) {}
  [[nodiscard]] std::size_t compute_wire_size() const override { return 8; }
  [[nodiscard]] std::uint64_t seq() const { return seq_; }

 private:
  std::uint64_t seq_;
};

struct Fixture {
  Simulator sim;
  net::Network network{sim, {}};
  Recorder a, b;
  Fixture() {
    a.at_ = &sim;
    b.at_ = &sim;
    network.attach(net::ProcessId(0), a);
    network.attach(net::ProcessId(1), b);
  }
  void send(std::uint64_t seq) {
    network.send(net::ProcessId(0), net::ProcessId(1),
                 std::make_shared<SeqMessage>(seq), net::Lane::data);
  }
};

FaultSpec link_fault(FaultKind kind, std::uint32_t a, std::uint32_t b,
                     std::int64_t start_us, std::int64_t end_us) {
  FaultSpec f;
  f.kind = kind;
  f.a = a;
  f.b = b;
  f.start = TimePoint::at_micros(start_us);
  f.end = TimePoint::at_micros(end_us);
  return f;
}

TEST(FaultInjector, JitterDelaysButPreservesFifo) {
  Fixture fx;
  FaultPlan plan;
  plan.seed = 1;
  auto jitter = link_fault(FaultKind::link_jitter, 0, 1, 0, 1'000'000);
  jitter.magnitude = Duration::millis(50);
  plan.faults.push_back(jitter);
  net::PlannedFaultInjector injector(plan);
  fx.network.set_fault_injector(&injector);

  for (std::uint64_t seq = 1; seq <= 40; ++seq) fx.send(seq);
  fx.sim.run();

  ASSERT_EQ(fx.b.received.size(), 40u);
  std::uint64_t expect = 1;
  TimePoint last;
  bool any_delayed = false;
  for (const auto& rec : fx.b.received) {
    const auto& m = static_cast<const SeqMessage&>(*rec.message);
    EXPECT_EQ(m.seq(), expect++) << "FIFO order must survive jitter";
    EXPECT_GE(rec.when, last);
    last = rec.when;
    // Base delay is 1ms; anything later was jittered.
    if (rec.when > TimePoint::at_micros(1000)) any_delayed = true;
  }
  EXPECT_TRUE(any_delayed) << "50ms jitter bound never fired across 40 draws";
}

TEST(FaultInjector, PartitionHoldsTrafficUntilHeal) {
  Fixture fx;
  FaultPlan plan;
  plan.seed = 2;
  auto part = link_fault(FaultKind::partition, 0, 0, 10'000, 60'000);
  part.side_mask = 0x1;  // {p0} vs {p1}
  part.symmetric = true;
  plan.faults.push_back(part);
  net::PlannedFaultInjector injector(plan);
  fx.network.set_fault_injector(&injector);

  // Sent before the outage: unaffected (in-flight packets still arrive).
  fx.send(1);
  fx.sim.run_until(TimePoint::at_micros(20'000));
  ASSERT_EQ(fx.b.received.size(), 1u);
  EXPECT_EQ(fx.b.received[0].when, TimePoint::at_micros(1'000));

  // Sent during the outage: held, arrives strictly after heal.
  fx.send(2);
  fx.sim.run_until(TimePoint::at_micros(59'000));
  EXPECT_EQ(fx.b.received.size(), 1u) << "partitioned message arrived early";
  fx.sim.run();
  ASSERT_EQ(fx.b.received.size(), 2u);
  EXPECT_GT(fx.b.received[1].when, TimePoint::at_micros(60'000));
}

TEST(FaultInjector, AsymmetricPartitionSeversOneDirectionOnly) {
  Simulator sim;
  net::Network network(sim, {});
  Recorder a, b;
  a.at_ = &sim;
  b.at_ = &sim;
  network.attach(net::ProcessId(0), a);
  network.attach(net::ProcessId(1), b);

  FaultPlan plan;
  plan.seed = 3;
  auto part = link_fault(FaultKind::partition, 0, 0, 0, 50'000);
  part.side_mask = 0x1;  // A = {p0}; only A -> B severed
  part.symmetric = false;
  plan.faults.push_back(part);
  net::PlannedFaultInjector injector(plan);
  network.set_fault_injector(&injector);

  network.send(net::ProcessId(0), net::ProcessId(1),
               std::make_shared<SeqMessage>(1), net::Lane::data);
  network.send(net::ProcessId(1), net::ProcessId(0),
               std::make_shared<SeqMessage>(1), net::Lane::data);
  sim.run_until(TimePoint::at_micros(10'000));
  EXPECT_EQ(b.received.size(), 0u) << "A->B must be held";
  ASSERT_EQ(a.received.size(), 1u) << "B->A must flow";
  sim.run();
  EXPECT_EQ(b.received.size(), 1u);
}

TEST(FaultInjector, DuplicationEnqueuesExtraCopiesAndCountsThem) {
  Fixture fx;
  FaultPlan plan;
  plan.seed = 4;
  auto dup = link_fault(FaultKind::duplicate, 0, 1, 0, 1'000'000);
  dup.probability = 1.0;
  plan.faults.push_back(dup);
  net::PlannedFaultInjector injector(plan);
  fx.network.set_fault_injector(&injector);

  for (std::uint64_t seq = 1; seq <= 10; ++seq) fx.send(seq);
  fx.sim.run();

  EXPECT_EQ(fx.b.received.size(), 20u);
  EXPECT_EQ(fx.network.stats().injected_duplicates, 10u);
  EXPECT_EQ(fx.network.stats().sent, 20u) << "copies are real wire traffic";
  EXPECT_EQ(fx.network.stats().bytes_sent,
            fx.network.stats().bytes_delivered);
}

TEST(FaultInjector, DropNeverEnqueuesAndCounts) {
  Fixture fx;
  FaultPlan plan;
  plan.seed = 5;
  auto drop = link_fault(FaultKind::drop_one, 0, 1, 0, 1'000'000);
  drop.param = 3;  // the third data message dies
  plan.faults.push_back(drop);
  EXPECT_FALSE(plan.in_model());
  net::PlannedFaultInjector injector(plan);
  fx.network.set_fault_injector(&injector);

  for (std::uint64_t seq = 1; seq <= 5; ++seq) fx.send(seq);
  fx.sim.run();

  ASSERT_EQ(fx.b.received.size(), 4u);
  for (const auto& rec : fx.b.received) {
    EXPECT_NE(static_cast<const SeqMessage&>(*rec.message).seq(), 3u);
  }
  EXPECT_EQ(fx.network.stats().injected_drops, 1u);
  EXPECT_EQ(fx.network.stats().sent, 4u) << "a dropped message is never sent";
}

TEST(FaultInjector, DropComposesWithLaterDuplicateEntries) {
  // Plan order must not matter: a duplicate entry listed after a drop_one
  // on the same link must not resurrect the dropped message.
  Fixture fx;
  FaultPlan plan;
  plan.seed = 8;
  auto drop = link_fault(FaultKind::drop_one, 0, 1, 0, 1'000'000);
  drop.param = 2;
  plan.faults.push_back(drop);
  auto dup = link_fault(FaultKind::duplicate, 0, 1, 0, 1'000'000);
  dup.id = 1;
  dup.probability = 1.0;
  plan.faults.push_back(dup);
  net::PlannedFaultInjector injector(plan);
  fx.network.set_fault_injector(&injector);

  for (std::uint64_t seq = 1; seq <= 3; ++seq) fx.send(seq);
  fx.sim.run();

  ASSERT_EQ(fx.b.received.size(), 4u);  // #1 and #3 duplicated, #2 dropped
  for (const auto& rec : fx.b.received) {
    EXPECT_NE(static_cast<const SeqMessage&>(*rec.message).seq(), 2u);
  }
  EXPECT_EQ(fx.network.stats().injected_drops, 1u);
  EXPECT_EQ(fx.network.stats().injected_duplicates, 2u);
}

TEST(FaultInjector, ReceiverPauseStallsThenResumes) {
  Fixture fx;
  FaultPlan plan;
  plan.seed = 6;
  auto pause = link_fault(FaultKind::pause_receiver, 1, 0, 0, 30'000);
  plan.faults.push_back(pause);
  net::PlannedFaultInjector injector(plan);
  fx.network.set_fault_injector(&injector);

  fx.send(1);
  fx.send(2);
  fx.sim.run_until(TimePoint::at_micros(29'000));
  EXPECT_EQ(fx.b.received.size(), 0u) << "paused receiver accepted data";
  EXPECT_GT(fx.network.stats().injected_pauses, 0u);
  fx.sim.run();
  ASSERT_EQ(fx.b.received.size(), 2u);
  EXPECT_GE(fx.b.received[0].when, TimePoint::at_micros(30'000));
  EXPECT_EQ(fx.network.stats().delivered, 2u);
}

TEST(FaultInjector, MaskedPlanRemovesEntriesButKeepsIdsAndRandomness) {
  FaultPlan::GenerateOptions options;
  options.processes = 4;
  options.max_crashes = 1;
  FaultPlan plan;
  // Hunt a seed whose plan has >= 3 faults so masking is meaningful.
  std::uint64_t seed = 0;
  do {
    plan = FaultPlan::generate(++seed, options);
  } while (plan.faults.size() < 3);

  const FaultPlan masked = plan.masked(0b101);
  ASSERT_EQ(masked.faults.size(), 2u);
  EXPECT_EQ(masked.faults[0].id, plan.faults[0].id);
  EXPECT_EQ(masked.faults[1].id, plan.faults[2].id);
  EXPECT_EQ(masked.seed, plan.seed);
  EXPECT_TRUE(plan.masked(0).faults.empty());
}

// ---------------------------------------------------------------------------
// node-level duplication tolerance (end to end, checker-verified)
// ---------------------------------------------------------------------------

TEST(FaultInjector, NodeSuppressesNetworkDuplicatesEndToEnd) {
  Simulator sim;
  const auto relation = std::make_shared<obs::ItemTagRelation>();
  core::SpecChecker checker(relation);
  core::Group::Config cfg;
  cfg.size = 3;
  cfg.node.relation = relation;
  cfg.auto_membership = false;
  cfg.observer = &checker;
  core::Group group(sim, cfg);

  FaultPlan plan;
  plan.seed = 7;
  for (std::uint32_t from = 0; from < 3; ++from) {
    for (std::uint32_t to = 0; to < 3; ++to) {
      if (from == to) continue;
      auto dup = link_fault(FaultKind::duplicate, from, to, 0, 10'000'000);
      dup.probability = 1.0;  // every data message duplicated on every link
      plan.faults.push_back(dup);
    }
  }
  net::PlannedFaultInjector injector(plan);
  group.network().set_fault_injector(&injector);

  std::vector<std::unique_ptr<workload::InstantConsumer>> consumers;
  for (std::size_t i = 0; i < 3; ++i) {
    consumers.push_back(
        std::make_unique<workload::InstantConsumer>(sim, group.node(i)));
    consumers.back()->start();
  }
  for (int m = 0; m < 20; ++m) {
    group.node(0).multicast(nullptr, obs::Annotation::item(
                                         static_cast<std::uint64_t>(m % 3)));
    sim.run();
  }
  for (std::size_t i = 0; i < 3; ++i) group.drain(i);

  EXPECT_GT(group.network().stats().injected_duplicates, 0u);
  EXPECT_GT(group.node(1).stats().duplicate_drops, 0u);
  EXPECT_EQ(checker.verify(), std::vector<std::string>{})
      << "duplication must not surface to the application";
}

// ---------------------------------------------------------------------------
// explorer determinism and the shrinking pipeline
// ---------------------------------------------------------------------------

TEST(Explorer, SameSpecSameOutcome) {
  ScenarioExplorer explorer;
  for (const std::uint64_t seed : {11ull, 22ull, 33ull}) {
    ScenarioSpec spec;
    spec.seed = seed;
    const auto first = explorer.run(spec);
    const auto second = explorer.run(spec);
    EXPECT_EQ(first.violations, second.violations);
    EXPECT_EQ(first.multicasts, second.multicasts);
    EXPECT_EQ(first.deliveries, second.deliveries);
    EXPECT_EQ(first.sim_events, second.sim_events);
    EXPECT_EQ(first.net_stats.bytes_delivered,
              second.net_stats.bytes_delivered);
    EXPECT_EQ(first.summary, second.summary);
  }
}

TEST(Explorer, InModelSeedSweepIsViolationFree) {
  // The PR-sized smoke: every §3.2 property plus quiescence across a window
  // of seed-derived fault-injected scenarios.  CI sweeps far larger windows
  // via the svs_explore binary (ctest: explorer_smoke).
  ScenarioExplorer explorer;
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    ScenarioSpec spec;
    spec.seed = seed;
    const auto outcome = explorer.run(spec);
    EXPECT_EQ(outcome.violations, std::vector<std::string>{})
        << "seed " << seed << " [" << outcome.summary << "]";
    EXPECT_TRUE(outcome.quiesced) << "seed " << seed;
    EXPECT_GT(outcome.deliveries, 0u) << "seed " << seed;
  }
}

TEST(Explorer, KEnumPurgeBiasedPinnedSweepStaysClean) {
  // The explorer-level regression for the k-enumeration GC-vs-pred race
  // the purge-debt ledger closed (DESIGN.md §7): every scenario pinned to
  // k-enumeration, which the generator purge-biases, across a fixed seed
  // window.  The checker verifies against the item ground truth that the
  // bitmaps under-declare, so a ledger regression that strands a §3.2
  // obligation surfaces here; CI sweeps far larger windows with
  // `svs_explore --relation=kenum`.  (The hand-written
  // Node.PurgeDebtLedgerClosesKEnumGcVsPredRace test pins the exact
  // minimal race, which random scenarios reach only in astronomically
  // rare conjunctions — 50k pre-ledger seeds never hit it.)
  ScenarioExplorer::Options options;
  options.relation_pin = RelationKind::k_enum;
  ScenarioExplorer explorer(options);
  std::uint64_t purged_total = 0;
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    const auto exploration = explorer.explore(seed);
    EXPECT_EQ(exploration.outcome.violations, std::vector<std::string>{})
        << "seed " << seed << " [" << exploration.outcome.summary << "]";
    EXPECT_NE(exploration.outcome.summary.find("k-enum"), std::string::npos);
    purged_total += exploration.outcome.net_stats.purged_outgoing;
  }
  // The bias did its job: sender-side purging actually fired in the window.
  EXPECT_GT(purged_total, 0u);
}

TEST(Explorer, RelationPinIsPartOfTheRepro) {
  // A pinned scenario's one-line repro must replay with the pin, or the
  // shrunk spec would silently reproduce a different scenario.
  ScenarioExplorer::Options options;
  options.relation_pin = RelationKind::k_enum;
  ScenarioExplorer explorer(options);
  const auto exploration = explorer.explore(7);
  EXPECT_NE(exploration.spec.repro().find("--relation=kenum"),
            std::string::npos);
  ScenarioSpec enum_spec;
  enum_spec.seed = 7;
  enum_spec.relation_pin = RelationKind::enumeration;
  EXPECT_NE(enum_spec.repro().find("--relation=enum"), std::string::npos);
  // The printed flag round-trips through the parser's shared table for
  // every kind — a repro line can never name a kind the tool rejects.
  for (const auto kind :
       {RelationKind::empty, RelationKind::item_tag, RelationKind::k_enum,
        RelationKind::enumeration}) {
    EXPECT_EQ(relation_from_flag(relation_flag(kind)), kind);
  }
  EXPECT_FALSE(relation_from_flag("bogus").has_value());
  // Pinned and unpinned runs of one seed share every other derived choice;
  // the pin only swaps the representation under test.
  const auto pinned = explorer.run(exploration.spec);
  ScenarioSpec unpinned;
  unpinned.seed = 7;
  const auto free_run = explorer.run(unpinned);
  EXPECT_EQ(pinned.group_size, free_run.group_size);
  EXPECT_EQ(pinned.faults_total, free_run.faults_total);
  EXPECT_EQ(pinned.planned_sends, free_run.planned_sends);
}

TEST(Explorer, MaskAndLimitActuallyReduceTheScenario) {
  ScenarioExplorer explorer;
  ScenarioSpec spec;
  spec.seed = 7;  // seed 7's plan has 5 faults (see fault_plan generation)
  const auto full = explorer.run(spec);
  ASSERT_GT(full.faults_total, 0u);
  EXPECT_EQ(full.faults_active, full.faults_total);

  ScenarioSpec reduced = spec;
  reduced.fault_mask = 0;
  reduced.message_limit = 3;
  const auto small = explorer.run(reduced);
  EXPECT_EQ(small.faults_active, 0u);
  EXPECT_LT(small.planned_sends, full.planned_sends);
  EXPECT_LE(small.multicasts, 3u * small.group_size);
}

TEST(Explorer, HostileSeedFailsShrinksAndReplays) {
  // Find a hostile seed whose out-of-model drop actually bites (many do not
  // — the view-change flush repairs drops that precede a reconfiguration).
  ScenarioExplorer::Options hostile_options;
  hostile_options.hostile = true;
  ScenarioExplorer explorer(hostile_options);
  std::optional<ScenarioExplorer::Exploration> failing;
  for (std::uint64_t seed = 1; seed <= 40 && !failing.has_value(); ++seed) {
    auto exploration = explorer.explore(seed);
    if (!exploration.outcome.violations.empty()) {
      failing = std::move(exploration);
    }
  }
  ASSERT_TRUE(failing.has_value())
      << "no hostile seed in 1..40 produced a violation";

  // The shrunk spec exists, is no larger, and still fails.
  ASSERT_TRUE(failing->shrunk.has_value());
  ASSERT_TRUE(failing->shrunk_outcome.has_value());
  const auto& shrunk = *failing->shrunk;
  const auto& shrunk_outcome = *failing->shrunk_outcome;
  EXPECT_FALSE(shrunk_outcome.violations.empty());
  EXPECT_LE(shrunk_outcome.faults_active, failing->outcome.faults_active);
  EXPECT_LE(shrunk_outcome.planned_sends, failing->outcome.planned_sends);

  // The hostile drop must be part of the minimal explanation: an in-model
  // subset alone cannot break §3.2.
  bool kept_hostile = false;
  // (The drop is the last generated fault; its bit survived iff the mask
  // still selects an out-of-model entry — detectable via the run itself.)
  EXPECT_GT(shrunk_outcome.net_stats.injected_drops, 0u);
  kept_hostile = shrunk_outcome.net_stats.injected_drops > 0;
  EXPECT_TRUE(kept_hostile);

  // Replays are exact: same violations, same byte counters, twice over.
  const auto replay_a = explorer.run(shrunk);
  const auto replay_b = explorer.run(shrunk);
  EXPECT_EQ(replay_a.violations, shrunk_outcome.violations);
  EXPECT_EQ(replay_b.violations, shrunk_outcome.violations);
  EXPECT_EQ(replay_a.net_stats.bytes_delivered,
            shrunk_outcome.net_stats.bytes_delivered);
  EXPECT_EQ(replay_a.sim_events, shrunk_outcome.sim_events);

  // And the repro line carries every reduction knob.
  const auto line = shrunk.repro();
  EXPECT_NE(line.find("--seed="), std::string::npos);
  EXPECT_NE(line.find("--hostile"), std::string::npos);
  EXPECT_NE(line.find("--faults=0x"), std::string::npos);
  EXPECT_NE(line.find("--msgs="), std::string::npos);
}

}  // namespace
}  // namespace svs::sim
