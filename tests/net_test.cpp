// Unit tests for the simulated network: FIFO lanes, backpressure, purging.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "util/contracts.hpp"
#include "sim/random.hpp"

namespace svs::net {
namespace {

class TestMessage final : public Message {
 public:
  explicit TestMessage(int tag)
      : Message(MessageType::other, static_cast<std::uint64_t>(tag)),
        tag_(tag) {}
  [[nodiscard]] int tag() const { return tag_; }
  [[nodiscard]] std::size_t compute_wire_size() const override { return 4; }

 private:
  int tag_;
};

int tag_of(const MessagePtr& m) {
  return std::dynamic_pointer_cast<const TestMessage>(m)->tag();
}

class Sink final : public Endpoint {
 public:
  bool on_message(ProcessId from, const MessagePtr& message,
                  Lane lane) override {
    if (lane == Lane::data && !accept_data) {
      ++refused;
      return false;
    }
    received.push_back({from, message, lane});
    return true;
  }

  struct Rec {
    ProcessId from;
    MessagePtr message;
    Lane lane;
  };
  std::vector<Rec> received;
  int refused = 0;
  bool accept_data = true;
};

struct NetFixture : ::testing::Test {
  NetFixture() : network(sim, {}) {
    for (std::uint32_t i = 0; i < 3; ++i) {
      network.attach(ProcessId(i), sinks[i]);
    }
  }
  MessagePtr msg(int tag) { return std::make_shared<TestMessage>(tag); }

  sim::Simulator sim;
  Sink sinks[3];
  net::Network network;
};

TEST_F(NetFixture, DeliversWithDelay) {
  network.send(ProcessId(0), ProcessId(1), msg(1), Lane::data);
  EXPECT_TRUE(sinks[1].received.empty());
  sim.run();
  ASSERT_EQ(sinks[1].received.size(), 1u);
  EXPECT_EQ(sim.now(), sim::TimePoint::origin() + sim::Duration::millis(1));
  EXPECT_EQ(sinks[1].received[0].from, ProcessId(0));
}

TEST_F(NetFixture, FifoPerLane) {
  for (int i = 0; i < 20; ++i) {
    network.send(ProcessId(0), ProcessId(1), msg(i), Lane::data);
  }
  sim.run();
  ASSERT_EQ(sinks[1].received.size(), 20u);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(tag_of(sinks[1].received[i].message), i);
  }
}

TEST_F(NetFixture, SelfSendWorks) {
  network.send(ProcessId(0), ProcessId(0), msg(7), Lane::control);
  sim.run();
  ASSERT_EQ(sinks[0].received.size(), 1u);
  EXPECT_EQ(tag_of(sinks[0].received[0].message), 7);
}

TEST_F(NetFixture, RefusedDataStallsUntilResume) {
  sinks[1].accept_data = false;
  network.send(ProcessId(0), ProcessId(1), msg(1), Lane::data);
  network.send(ProcessId(0), ProcessId(1), msg(2), Lane::data);
  sim.run();
  EXPECT_TRUE(sinks[1].received.empty());
  EXPECT_EQ(sinks[1].refused, 1);  // only the head is attempted
  EXPECT_EQ(network.data_backlog(ProcessId(0), ProcessId(1)), 2u);

  sinks[1].accept_data = true;
  network.resume(ProcessId(1));
  sim.run();
  ASSERT_EQ(sinks[1].received.size(), 2u);
  EXPECT_EQ(tag_of(sinks[1].received[0].message), 1);
  EXPECT_EQ(tag_of(sinks[1].received[1].message), 2);
  EXPECT_EQ(network.data_backlog(ProcessId(0), ProcessId(1)), 0u);
}

TEST_F(NetFixture, ControlOvertakesStalledData) {
  sinks[1].accept_data = false;
  network.send(ProcessId(0), ProcessId(1), msg(1), Lane::data);
  network.send(ProcessId(0), ProcessId(1), msg(2), Lane::control);
  sim.run();
  ASSERT_EQ(sinks[1].received.size(), 1u);
  EXPECT_EQ(sinks[1].received[0].lane, Lane::control);
}

TEST_F(NetFixture, CrashedSenderSendsNothing) {
  network.crash(ProcessId(0));
  network.send(ProcessId(0), ProcessId(1), msg(1), Lane::data);
  sim.run();
  EXPECT_TRUE(sinks[1].received.empty());
  EXPECT_EQ(network.stats().sent, 0u);
}

TEST_F(NetFixture, MessagesInFlightAtCrashOfSenderStillArrive) {
  network.send(ProcessId(0), ProcessId(1), msg(1), Lane::data);
  network.crash(ProcessId(0));
  sim.run();
  EXPECT_EQ(sinks[1].received.size(), 1u);
}

TEST_F(NetFixture, DataToCrashedReceiverStallsInBuffer) {
  network.crash(ProcessId(1));
  network.send(ProcessId(0), ProcessId(1), msg(1), Lane::data);
  sim.run();
  EXPECT_TRUE(sinks[1].received.empty());
  // A reliable protocol keeps unacknowledged data buffered.
  EXPECT_EQ(network.data_backlog(ProcessId(0), ProcessId(1)), 1u);
}

TEST_F(NetFixture, ControlToCrashedReceiverIsDropped) {
  network.crash(ProcessId(1));
  network.send(ProcessId(0), ProcessId(1), msg(1), Lane::control);
  sim.run();
  EXPECT_TRUE(sinks[1].received.empty());
  EXPECT_EQ(network.stats().dropped_to_crashed, 1u);
}

TEST_F(NetFixture, CrashObserversFire) {
  ProcessId crashed;
  network.subscribe_crash([&](ProcessId p, sim::TimePoint) { crashed = p; });
  network.crash(ProcessId(2));
  EXPECT_EQ(crashed, ProcessId(2));
  EXPECT_TRUE(network.is_crashed(ProcessId(2)));
  EXPECT_TRUE(network.crash_time(ProcessId(2)).has_value());
  EXPECT_FALSE(network.crash_time(ProcessId(0)).has_value());
}

TEST_F(NetFixture, PurgeOutgoingRemovesMatching) {
  sinks[1].accept_data = false;
  for (int i = 0; i < 5; ++i) {
    network.send(ProcessId(0), ProcessId(1), msg(i), Lane::data);
  }
  sim.run();  // head attempted and stalled
  const auto removed =
      network.purge_outgoing(ProcessId(0), [](const MessagePtr& m) {
        return tag_of(m) % 2 == 0;  // purge 0, 2, 4
      });
  EXPECT_EQ(removed, 3u);
  EXPECT_EQ(network.data_backlog(ProcessId(0), ProcessId(1)), 2u);
  EXPECT_EQ(network.stats().purged_outgoing, 3u);

  sinks[1].accept_data = true;
  network.resume(ProcessId(1));
  sim.run();
  ASSERT_EQ(sinks[1].received.size(), 2u);
  EXPECT_EQ(tag_of(sinks[1].received[0].message), 1);
  EXPECT_EQ(tag_of(sinks[1].received[1].message), 3);
}

TEST_F(NetFixture, PurgingScheduledHeadStillDeliversRest) {
  // Purge the head while its arrival event is pending; the next message
  // must still be delivered.
  network.send(ProcessId(0), ProcessId(1), msg(1), Lane::data);
  network.send(ProcessId(0), ProcessId(1), msg(2), Lane::data);
  const auto removed = network.purge_outgoing(
      ProcessId(0), [](const MessagePtr& m) { return tag_of(m) == 1; });
  EXPECT_EQ(removed, 1u);
  sim.run();
  ASSERT_EQ(sinks[1].received.size(), 1u);
  EXPECT_EQ(tag_of(sinks[1].received[0].message), 2);
}

TEST_F(NetFixture, DropOutgoingIsNotCountedAsPurged) {
  sinks[1].accept_data = false;
  network.send(ProcessId(0), ProcessId(1), msg(1), Lane::data);
  sim.run();
  const auto removed =
      network.drop_outgoing(ProcessId(0), [](const MessagePtr&) { return true; });
  EXPECT_EQ(removed, 1u);
  EXPECT_EQ(network.stats().purged_outgoing, 0u);
}

TEST_F(NetFixture, BacklogDrainObserverFires) {
  int drains = 0;
  network.subscribe_backlog_drain(ProcessId(0), [&] { ++drains; });
  network.send(ProcessId(0), ProcessId(1), msg(1), Lane::data);
  sim.run();
  EXPECT_EQ(drains, 1);
  network.purge_outgoing(ProcessId(0), [](const MessagePtr&) { return true; });
  EXPECT_EQ(drains, 1);  // nothing queued; no notification
}

TEST_F(NetFixture, LinkSlowdownDelaysDelivery) {
  network.set_link_slowdown(ProcessId(0), ProcessId(1),
                            sim::Duration::millis(50));
  network.send(ProcessId(0), ProcessId(1), msg(1), Lane::data);
  network.send(ProcessId(0), ProcessId(2), msg(2), Lane::data);
  sim.run_until(sim::TimePoint::origin() + sim::Duration::millis(10));
  EXPECT_TRUE(sinks[1].received.empty());
  EXPECT_EQ(sinks[2].received.size(), 1u);  // other link unaffected
  sim.run();
  EXPECT_EQ(sinks[1].received.size(), 1u);
}

TEST_F(NetFixture, JitterPreservesFifo) {
  sim::Simulator jsim;
  Network jnet(jsim, {.delay = sim::Duration::millis(1),
                      .jitter = sim::Duration::millis(10),
                      .seed = 99});
  Sink a, b;
  jnet.attach(ProcessId(0), a);
  jnet.attach(ProcessId(1), b);
  for (int i = 0; i < 50; ++i) {
    jnet.send(ProcessId(0), ProcessId(1), std::make_shared<TestMessage>(i),
              Lane::data);
  }
  jsim.run();
  ASSERT_EQ(b.received.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(tag_of(b.received[i].message), i);
}

TEST_F(NetFixture, DoubleAttachRejected) {
  Sink extra;
  EXPECT_THROW(network.attach(ProcessId(0), extra), util::ContractViolation);
}

TEST_F(NetFixture, SendToUnknownRejected) {
  EXPECT_THROW(network.send(ProcessId(0), ProcessId(9), msg(1), Lane::data),
               util::ContractViolation);
}

TEST_F(NetFixture, StatsCount) {
  network.send(ProcessId(0), ProcessId(1), msg(1), Lane::data);
  network.send(ProcessId(1), ProcessId(2), msg(2), Lane::control);
  sim.run();
  EXPECT_EQ(network.stats().sent, 2u);
  EXPECT_EQ(network.stats().delivered, 2u);
}

// ---------------------------------------------------------------------------
// dense registry + multicast fan-out
// ---------------------------------------------------------------------------

TEST_F(NetFixture, MulticastSkipsSelfAndReachesEveryDestination) {
  const std::vector<ProcessId> all{ProcessId(0), ProcessId(1), ProcessId(2)};
  network.multicast(ProcessId(0), all, msg(5), Lane::data);
  sim.run();
  EXPECT_TRUE(sinks[0].received.empty());  // self skipped by default
  ASSERT_EQ(sinks[1].received.size(), 1u);
  ASSERT_EQ(sinks[2].received.size(), 1u);
  EXPECT_EQ(tag_of(sinks[1].received[0].message), 5);
  EXPECT_EQ(network.stats().sent, 2u);
}

TEST_F(NetFixture, MulticastWithoutSkipSelfDeliversLoopback) {
  const std::vector<ProcessId> all{ProcessId(0), ProcessId(1), ProcessId(2)};
  network.multicast(ProcessId(0), all, msg(6), Lane::control,
                    /*skip_self=*/false);
  sim.run();
  ASSERT_EQ(sinks[0].received.size(), 1u);  // loopback copy included
  EXPECT_EQ(sinks[1].received.size(), 1u);
  EXPECT_EQ(sinks[2].received.size(), 1u);
}

TEST_F(NetFixture, MulticastFromCrashedSenderIsNoop) {
  network.crash(ProcessId(0));
  const std::vector<ProcessId> all{ProcessId(0), ProcessId(1), ProcessId(2)};
  network.multicast(ProcessId(0), all, msg(7), Lane::data);
  sim.run();
  EXPECT_EQ(network.stats().sent, 0u);
}

TEST_F(NetFixture, MulticastMatchesSendLoopOrdering) {
  // The fan-out must be byte-equivalent to a send() loop: same per-link
  // FIFO contents, same delivery times.
  sim::Simulator s2;
  Network n2(s2, {});
  Sink other[3];
  for (std::uint32_t i = 0; i < 3; ++i) n2.attach(ProcessId(i), other[i]);

  const std::vector<ProcessId> all{ProcessId(0), ProcessId(1), ProcessId(2)};
  for (int i = 0; i < 10; ++i) {
    network.multicast(ProcessId(0), all, msg(i), Lane::data);
    for (const auto to : all) {
      if (to != ProcessId(0)) {
        n2.send(ProcessId(0), to, std::make_shared<TestMessage>(i),
                Lane::data);
      }
    }
  }
  sim.run();
  s2.run();
  for (int r = 1; r < 3; ++r) {
    ASSERT_EQ(sinks[r].received.size(), other[r].received.size());
    for (std::size_t i = 0; i < sinks[r].received.size(); ++i) {
      EXPECT_EQ(tag_of(sinks[r].received[i].message),
                tag_of(other[r].received[i].message));
    }
  }
  EXPECT_EQ(sim.executed(), s2.executed());
}

TEST_F(NetFixture, AttachReStridePreservesQueuedTraffic) {
  // Attaching a new process re-strides the flat link table; messages
  // already queued (and their delivery timers) must survive.
  network.send(ProcessId(0), ProcessId(1), msg(1), Lane::data);
  Sink late;
  network.attach(ProcessId(3), late);
  network.send(ProcessId(0), ProcessId(3), msg(2), Lane::data);
  sim.run();
  ASSERT_EQ(sinks[1].received.size(), 1u);
  EXPECT_EQ(tag_of(sinks[1].received[0].message), 1);
  ASSERT_EQ(late.received.size(), 1u);
  EXPECT_EQ(tag_of(late.received[0].message), 2);
}

// ---------------------------------------------------------------------------
// windowed sender-side purging
// ---------------------------------------------------------------------------

TEST_F(NetFixture, WindowedPurgeRemovesOnlyTheWindow) {
  sinks[1].accept_data = false;
  for (int i = 1; i <= 8; ++i) {
    network.send(ProcessId(0), ProcessId(1), msg(i), Lane::data);
  }
  sim.run();  // head attempted and stalled
  // Window [3, 6): candidates 3, 4, 5; victims all of them.
  const auto removed = network.purge_outgoing_window(
      ProcessId(0), ProcessId(1), 3, 6,
      [](const MessagePtr&) { return true; });
  EXPECT_EQ(removed, 3u);
  EXPECT_EQ(network.stats().purge_window_scanned, 3u);
  EXPECT_EQ(network.data_backlog(ProcessId(0), ProcessId(1)), 5u);

  sinks[1].accept_data = true;
  network.resume(ProcessId(1));
  sim.run();
  ASSERT_EQ(sinks[1].received.size(), 5u);
  const int expect[] = {1, 2, 6, 7, 8};
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(tag_of(sinks[1].received[i].message), expect[i]);
  }
}

TEST_F(NetFixture, CountOutgoingWindowDoesNotRemove) {
  sinks[1].accept_data = false;
  for (int i = 1; i <= 6; ++i) {
    network.send(ProcessId(0), ProcessId(1), msg(i), Lane::data);
  }
  sim.run();
  const auto counted = network.count_outgoing_window(
      ProcessId(0), ProcessId(1), 2, 5,
      [](const MessagePtr& m) { return tag_of(m) % 2 == 0; });
  EXPECT_EQ(counted, 2u);  // 2 and 4 within [2, 5)
  EXPECT_EQ(network.data_backlog(ProcessId(0), ProcessId(1)), 6u);
  EXPECT_EQ(network.stats().purged_outgoing, 0u);
}

TEST_F(NetFixture, WindowedPurgeOfScheduledHeadStillDeliversRest) {
  network.send(ProcessId(0), ProcessId(1), msg(1), Lane::data);
  network.send(ProcessId(0), ProcessId(1), msg(2), Lane::data);
  const auto removed = network.purge_outgoing_window(
      ProcessId(0), ProcessId(1), 1, 2,
      [](const MessagePtr&) { return true; });
  EXPECT_EQ(removed, 1u);
  sim.run();
  ASSERT_EQ(sinks[1].received.size(), 1u);
  EXPECT_EQ(tag_of(sinks[1].received[0].message), 2);
}

TEST(NetPurgeEquivalence, WindowedMatchesFullScanRandomized) {
  // The windowed purge (binary-searched [floor, below) subrange) and the
  // reference full-deque scan with the equivalent predicate must remove the
  // same victims and deliver the same survivors, for arbitrary windows and
  // victim sets — mirroring the delivery-queue equivalence test.
  svs::sim::Rng rng(0x5eed5eedULL);
  const auto next_random = [&rng] { return rng.next_u64(); };
  for (int round = 0; round < 60; ++round) {
    sim::Simulator sim_a, sim_b;
    Network net_a(sim_a, {});
    Network net_b(sim_b, {});
    Sink producer_a, consumer_a, producer_b, consumer_b;
    net_a.attach(ProcessId(0), producer_a);
    net_a.attach(ProcessId(1), consumer_a);
    net_b.attach(ProcessId(0), producer_b);
    net_b.attach(ProcessId(1), consumer_b);
    consumer_a.accept_data = false;
    consumer_b.accept_data = false;

    const int count = 1 + static_cast<int>(next_random() % 50);
    for (int seq = 1; seq <= count; ++seq) {
      net_a.send(ProcessId(0), ProcessId(1), std::make_shared<TestMessage>(seq),
                 Lane::data);
      net_b.send(ProcessId(0), ProcessId(1), std::make_shared<TestMessage>(seq),
                 Lane::data);
    }
    sim_a.run();
    sim_b.run();

    const std::uint64_t floor_key = next_random() % (count + 2);
    const std::uint64_t below_key =
        floor_key + next_random() % (count + 2 - floor_key);
    std::vector<bool> is_victim(count + 1, false);
    for (int seq = 1; seq <= count; ++seq) is_victim[seq] = next_random() % 3 == 0;

    const auto removed_windowed = net_a.purge_outgoing_window(
        ProcessId(0), ProcessId(1), floor_key, below_key,
        [&](const MessagePtr& m) { return is_victim[tag_of(m)]; });
    const auto removed_full = net_b.purge_outgoing_to(
        ProcessId(0), ProcessId(1), [&](const MessagePtr& m) {
          const auto key = static_cast<std::uint64_t>(tag_of(m));
          return key >= floor_key && key < below_key && is_victim[tag_of(m)];
        });
    ASSERT_EQ(removed_windowed, removed_full) << "round " << round;

    consumer_a.accept_data = true;
    consumer_b.accept_data = true;
    net_a.resume(ProcessId(1));
    net_b.resume(ProcessId(1));
    sim_a.run();
    sim_b.run();
    ASSERT_EQ(consumer_a.received.size(), consumer_b.received.size())
        << "round " << round;
    for (std::size_t i = 0; i < consumer_a.received.size(); ++i) {
      ASSERT_EQ(tag_of(consumer_a.received[i].message),
                tag_of(consumer_b.received[i].message))
          << "round " << round;
    }
  }
}

}  // namespace
}  // namespace svs::net
