// Unit tests for the simulated network: FIFO lanes, backpressure, purging.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "util/contracts.hpp"

namespace svs::net {
namespace {

class TestMessage final : public Message {
 public:
  explicit TestMessage(int tag) : tag_(tag) {}
  [[nodiscard]] int tag() const { return tag_; }
  [[nodiscard]] std::size_t wire_size() const override { return 4; }

 private:
  int tag_;
};

int tag_of(const MessagePtr& m) {
  return std::dynamic_pointer_cast<const TestMessage>(m)->tag();
}

class Sink final : public Endpoint {
 public:
  bool on_message(ProcessId from, const MessagePtr& message,
                  Lane lane) override {
    if (lane == Lane::data && !accept_data) {
      ++refused;
      return false;
    }
    received.push_back({from, message, lane});
    return true;
  }

  struct Rec {
    ProcessId from;
    MessagePtr message;
    Lane lane;
  };
  std::vector<Rec> received;
  int refused = 0;
  bool accept_data = true;
};

struct NetFixture : ::testing::Test {
  NetFixture() : network(sim, {}) {
    for (std::uint32_t i = 0; i < 3; ++i) {
      network.attach(ProcessId(i), sinks[i]);
    }
  }
  MessagePtr msg(int tag) { return std::make_shared<TestMessage>(tag); }

  sim::Simulator sim;
  Sink sinks[3];
  net::Network network;
};

TEST_F(NetFixture, DeliversWithDelay) {
  network.send(ProcessId(0), ProcessId(1), msg(1), Lane::data);
  EXPECT_TRUE(sinks[1].received.empty());
  sim.run();
  ASSERT_EQ(sinks[1].received.size(), 1u);
  EXPECT_EQ(sim.now(), sim::TimePoint::origin() + sim::Duration::millis(1));
  EXPECT_EQ(sinks[1].received[0].from, ProcessId(0));
}

TEST_F(NetFixture, FifoPerLane) {
  for (int i = 0; i < 20; ++i) {
    network.send(ProcessId(0), ProcessId(1), msg(i), Lane::data);
  }
  sim.run();
  ASSERT_EQ(sinks[1].received.size(), 20u);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(tag_of(sinks[1].received[i].message), i);
  }
}

TEST_F(NetFixture, SelfSendWorks) {
  network.send(ProcessId(0), ProcessId(0), msg(7), Lane::control);
  sim.run();
  ASSERT_EQ(sinks[0].received.size(), 1u);
  EXPECT_EQ(tag_of(sinks[0].received[0].message), 7);
}

TEST_F(NetFixture, RefusedDataStallsUntilResume) {
  sinks[1].accept_data = false;
  network.send(ProcessId(0), ProcessId(1), msg(1), Lane::data);
  network.send(ProcessId(0), ProcessId(1), msg(2), Lane::data);
  sim.run();
  EXPECT_TRUE(sinks[1].received.empty());
  EXPECT_EQ(sinks[1].refused, 1);  // only the head is attempted
  EXPECT_EQ(network.data_backlog(ProcessId(0), ProcessId(1)), 2u);

  sinks[1].accept_data = true;
  network.resume(ProcessId(1));
  sim.run();
  ASSERT_EQ(sinks[1].received.size(), 2u);
  EXPECT_EQ(tag_of(sinks[1].received[0].message), 1);
  EXPECT_EQ(tag_of(sinks[1].received[1].message), 2);
  EXPECT_EQ(network.data_backlog(ProcessId(0), ProcessId(1)), 0u);
}

TEST_F(NetFixture, ControlOvertakesStalledData) {
  sinks[1].accept_data = false;
  network.send(ProcessId(0), ProcessId(1), msg(1), Lane::data);
  network.send(ProcessId(0), ProcessId(1), msg(2), Lane::control);
  sim.run();
  ASSERT_EQ(sinks[1].received.size(), 1u);
  EXPECT_EQ(sinks[1].received[0].lane, Lane::control);
}

TEST_F(NetFixture, CrashedSenderSendsNothing) {
  network.crash(ProcessId(0));
  network.send(ProcessId(0), ProcessId(1), msg(1), Lane::data);
  sim.run();
  EXPECT_TRUE(sinks[1].received.empty());
  EXPECT_EQ(network.stats().sent, 0u);
}

TEST_F(NetFixture, MessagesInFlightAtCrashOfSenderStillArrive) {
  network.send(ProcessId(0), ProcessId(1), msg(1), Lane::data);
  network.crash(ProcessId(0));
  sim.run();
  EXPECT_EQ(sinks[1].received.size(), 1u);
}

TEST_F(NetFixture, DataToCrashedReceiverStallsInBuffer) {
  network.crash(ProcessId(1));
  network.send(ProcessId(0), ProcessId(1), msg(1), Lane::data);
  sim.run();
  EXPECT_TRUE(sinks[1].received.empty());
  // A reliable protocol keeps unacknowledged data buffered.
  EXPECT_EQ(network.data_backlog(ProcessId(0), ProcessId(1)), 1u);
}

TEST_F(NetFixture, ControlToCrashedReceiverIsDropped) {
  network.crash(ProcessId(1));
  network.send(ProcessId(0), ProcessId(1), msg(1), Lane::control);
  sim.run();
  EXPECT_TRUE(sinks[1].received.empty());
  EXPECT_EQ(network.stats().dropped_to_crashed, 1u);
}

TEST_F(NetFixture, CrashObserversFire) {
  ProcessId crashed;
  network.subscribe_crash([&](ProcessId p, sim::TimePoint) { crashed = p; });
  network.crash(ProcessId(2));
  EXPECT_EQ(crashed, ProcessId(2));
  EXPECT_TRUE(network.is_crashed(ProcessId(2)));
  EXPECT_TRUE(network.crash_time(ProcessId(2)).has_value());
  EXPECT_FALSE(network.crash_time(ProcessId(0)).has_value());
}

TEST_F(NetFixture, PurgeOutgoingRemovesMatching) {
  sinks[1].accept_data = false;
  for (int i = 0; i < 5; ++i) {
    network.send(ProcessId(0), ProcessId(1), msg(i), Lane::data);
  }
  sim.run();  // head attempted and stalled
  const auto removed =
      network.purge_outgoing(ProcessId(0), [](const MessagePtr& m) {
        return tag_of(m) % 2 == 0;  // purge 0, 2, 4
      });
  EXPECT_EQ(removed, 3u);
  EXPECT_EQ(network.data_backlog(ProcessId(0), ProcessId(1)), 2u);
  EXPECT_EQ(network.stats().purged_outgoing, 3u);

  sinks[1].accept_data = true;
  network.resume(ProcessId(1));
  sim.run();
  ASSERT_EQ(sinks[1].received.size(), 2u);
  EXPECT_EQ(tag_of(sinks[1].received[0].message), 1);
  EXPECT_EQ(tag_of(sinks[1].received[1].message), 3);
}

TEST_F(NetFixture, PurgingScheduledHeadStillDeliversRest) {
  // Purge the head while its arrival event is pending; the next message
  // must still be delivered.
  network.send(ProcessId(0), ProcessId(1), msg(1), Lane::data);
  network.send(ProcessId(0), ProcessId(1), msg(2), Lane::data);
  const auto removed = network.purge_outgoing(
      ProcessId(0), [](const MessagePtr& m) { return tag_of(m) == 1; });
  EXPECT_EQ(removed, 1u);
  sim.run();
  ASSERT_EQ(sinks[1].received.size(), 1u);
  EXPECT_EQ(tag_of(sinks[1].received[0].message), 2);
}

TEST_F(NetFixture, DropOutgoingIsNotCountedAsPurged) {
  sinks[1].accept_data = false;
  network.send(ProcessId(0), ProcessId(1), msg(1), Lane::data);
  sim.run();
  const auto removed =
      network.drop_outgoing(ProcessId(0), [](const MessagePtr&) { return true; });
  EXPECT_EQ(removed, 1u);
  EXPECT_EQ(network.stats().purged_outgoing, 0u);
}

TEST_F(NetFixture, BacklogDrainObserverFires) {
  int drains = 0;
  network.subscribe_backlog_drain(ProcessId(0), [&] { ++drains; });
  network.send(ProcessId(0), ProcessId(1), msg(1), Lane::data);
  sim.run();
  EXPECT_EQ(drains, 1);
  network.purge_outgoing(ProcessId(0), [](const MessagePtr&) { return true; });
  EXPECT_EQ(drains, 1);  // nothing queued; no notification
}

TEST_F(NetFixture, LinkSlowdownDelaysDelivery) {
  network.set_link_slowdown(ProcessId(0), ProcessId(1),
                            sim::Duration::millis(50));
  network.send(ProcessId(0), ProcessId(1), msg(1), Lane::data);
  network.send(ProcessId(0), ProcessId(2), msg(2), Lane::data);
  sim.run_until(sim::TimePoint::origin() + sim::Duration::millis(10));
  EXPECT_TRUE(sinks[1].received.empty());
  EXPECT_EQ(sinks[2].received.size(), 1u);  // other link unaffected
  sim.run();
  EXPECT_EQ(sinks[1].received.size(), 1u);
}

TEST_F(NetFixture, JitterPreservesFifo) {
  sim::Simulator jsim;
  Network jnet(jsim, {.delay = sim::Duration::millis(1),
                      .jitter = sim::Duration::millis(10),
                      .seed = 99});
  Sink a, b;
  jnet.attach(ProcessId(0), a);
  jnet.attach(ProcessId(1), b);
  for (int i = 0; i < 50; ++i) {
    jnet.send(ProcessId(0), ProcessId(1), std::make_shared<TestMessage>(i),
              Lane::data);
  }
  jsim.run();
  ASSERT_EQ(b.received.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(tag_of(b.received[i].message), i);
}

TEST_F(NetFixture, DoubleAttachRejected) {
  Sink extra;
  EXPECT_THROW(network.attach(ProcessId(0), extra), util::ContractViolation);
}

TEST_F(NetFixture, SendToUnknownRejected) {
  EXPECT_THROW(network.send(ProcessId(0), ProcessId(9), msg(1), Lane::data),
               util::ContractViolation);
}

TEST_F(NetFixture, StatsCount) {
  network.send(ProcessId(0), ProcessId(1), msg(1), Lane::data);
  network.send(ProcessId(1), ProcessId(2), msg(2), Lane::control);
  sim.run();
  EXPECT_EQ(network.stats().sent, 2u);
  EXPECT_EQ(network.stats().delivered, 2u);
}

}  // namespace
}  // namespace svs::net
