// util::TimerWheel unit coverage: arm/cancel/re-arm, cascade across levels,
// deterministic in-tick firing order, far-future deadlines, and a randomized
// equivalence sweep against a sorted multimap reference scheduler.
#include <algorithm>
#include <cstdint>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "sim/random.hpp"
#include "util/contracts.hpp"
#include "util/timer_wheel.hpp"

namespace svs {
namespace {

using util::TimerWheel;

std::vector<std::uint64_t> drain(TimerWheel& wheel, std::uint64_t now_us) {
  std::vector<std::uint64_t> fired;
  wheel.advance(now_us, [&](std::uint64_t payload) { fired.push_back(payload); });
  return fired;
}

TEST(TimerWheel, FiresAtDeadlineNeverEarly) {
  TimerWheel wheel;  // 1µs ticks
  wheel.arm(100, 1);
  EXPECT_EQ(wheel.size(), 1u);
  EXPECT_EQ(wheel.next_deadline_us(), 100u);
  EXPECT_TRUE(drain(wheel, 99).empty());
  const auto fired = drain(wheel, 100);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], 1u);
  EXPECT_TRUE(wheel.empty());
  EXPECT_EQ(wheel.next_deadline_us(), TimerWheel::kNever);
}

TEST(TimerWheel, CoarseTickRoundsDeadlinesUp) {
  TimerWheel wheel(10);  // 10µs ticks
  wheel.arm(101, 7);     // rounds up to tick 11 = 110µs
  EXPECT_TRUE(drain(wheel, 109).empty());
  EXPECT_EQ(drain(wheel, 110).size(), 1u);
}

TEST(TimerWheel, CancelPreventsFiringAndGoesStale) {
  TimerWheel wheel;
  const auto id = wheel.arm(50, 1);
  EXPECT_TRUE(wheel.pending(id));
  EXPECT_TRUE(wheel.cancel(id));
  EXPECT_FALSE(wheel.pending(id));
  EXPECT_FALSE(wheel.cancel(id)) << "double cancel must be a no-op";
  EXPECT_TRUE(drain(wheel, 1000).empty());
  // The freed index is reused by the next arm; the old handle must not
  // resolve to the new timer.
  const auto id2 = wheel.arm(60, 2);
  EXPECT_NE(id, id2);
  EXPECT_FALSE(wheel.pending(id));
  EXPECT_FALSE(wheel.cancel(id));
  EXPECT_TRUE(wheel.pending(id2));
}

TEST(TimerWheel, HandleStaleAfterFiring) {
  TimerWheel wheel;
  const auto id = wheel.arm(10, 1);
  EXPECT_EQ(drain(wheel, 10).size(), 1u);
  EXPECT_FALSE(wheel.pending(id));
  EXPECT_FALSE(wheel.cancel(id));
}

TEST(TimerWheel, ReArmAfterCancelUsesNewDeadline) {
  TimerWheel wheel;
  const auto id = wheel.arm(500, 9);
  EXPECT_TRUE(wheel.cancel(id));
  wheel.arm(100, 9);
  EXPECT_EQ(wheel.next_deadline_us(), 100u);
  const auto fired = drain(wheel, 100);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], 9u);
  EXPECT_TRUE(drain(wheel, 500).empty());
}

TEST(TimerWheel, PastDeadlineFiresOnNextAdvance) {
  TimerWheel wheel;
  EXPECT_TRUE(drain(wheel, 1000).empty());  // cursor now past 1000µs
  wheel.arm(5, 3);                          // long overdue
  // The cursor already processed tick 1000, so the overdue timer sits on
  // the next unprocessed tick — and next_deadline_us() reports exactly
  // where to sleep until.
  EXPECT_EQ(wheel.next_deadline_us(), 1001u);
  const auto fired = drain(wheel, 1001);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], 3u);
}

TEST(TimerWheel, CascadeAcrossLevels) {
  TimerWheel wheel;
  // Level 1 (256µs..65.5ms), level 2 (..16.8s), level 3 (..71.6min) spans.
  wheel.arm(1'000, 1);
  wheel.arm(100'000, 2);
  wheel.arm(10'000'000, 3);
  EXPECT_EQ(wheel.cascades(), 0u);
  EXPECT_EQ(drain(wheel, 999).size(), 0u);
  EXPECT_EQ(drain(wheel, 1'000), std::vector<std::uint64_t>{1});
  EXPECT_GT(wheel.cascades(), 0u) << "a level>=1 deadline must cascade down";
  EXPECT_EQ(drain(wheel, 99'999).size(), 0u);
  EXPECT_EQ(drain(wheel, 100'000), std::vector<std::uint64_t>{2});
  EXPECT_EQ(drain(wheel, 9'999'999).size(), 0u);
  EXPECT_EQ(drain(wheel, 10'000'000), std::vector<std::uint64_t>{3});
  EXPECT_TRUE(wheel.empty());
}

TEST(TimerWheel, FarFutureDeadlineBeyondHorizon) {
  TimerWheel wheel;
  // > 2^32 µs (~71.6 min) away: clamps into the top level, re-resolves on
  // cascade, and still fires exactly at its deadline.
  const std::uint64_t deadline = 3ull << 32;  // ~3.6 hours
  wheel.arm(deadline, 42);
  EXPECT_LE(wheel.next_deadline_us(), deadline)
      << "peek is a lower bound while parked in the top level";
  EXPECT_TRUE(drain(wheel, deadline - 1).empty());
  const auto fired = drain(wheel, deadline);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], 42u);
}

TEST(TimerWheel, SameTickFiresInArmOrder) {
  TimerWheel wheel;
  // Armed in shuffled call order but all due the same instant; several are
  // armed far enough out to take different cascade paths into the tick.
  const std::uint64_t t = 1ull << 20;  // level-2 territory from tick 0
  for (std::uint64_t i = 0; i < 64; ++i) wheel.arm(t, i);
  const auto fired = drain(wheel, t);
  ASSERT_EQ(fired.size(), 64u);
  for (std::uint64_t i = 0; i < 64; ++i) {
    EXPECT_EQ(fired[i], i) << "in-tick order must equal arm order";
  }
}

TEST(TimerWheel, ArmOrderHoldsAcrossMixedCascadePaths) {
  TimerWheel wheel;
  // Walk the cursor close to the deadline first, so later arms land in
  // level 0/1 while earlier ones came from level 2 — the arm sequence must
  // still decide the in-tick order.
  const std::uint64_t t = 100'000;
  wheel.arm(t, 0);            // level 2 away
  (void)drain(wheel, 90'000);
  wheel.arm(t, 1);            // level 1 away
  (void)drain(wheel, 99'900);
  wheel.arm(t, 2);            // level 0 away
  const auto fired = drain(wheel, t);
  EXPECT_EQ(fired, (std::vector<std::uint64_t>{0, 1, 2}));
}

TEST(TimerWheel, CallbackCanCancelAndArm) {
  TimerWheel wheel;
  const auto a = wheel.arm(10, 1);
  const auto b = wheel.arm(10, 2);
  (void)a;
  std::vector<std::uint64_t> fired;
  wheel.advance(20, [&](std::uint64_t payload) {
    fired.push_back(payload);
    if (payload == 1) {
      EXPECT_TRUE(wheel.cancel(b));  // cancel a same-tick sibling mid-fire
      wheel.arm(15, 3);              // already due: lands in the next tick
    }
  });
  EXPECT_EQ(fired, (std::vector<std::uint64_t>{1, 3}))
      << "cancelled sibling must not fire; re-arm fires within the advance";
  EXPECT_TRUE(wheel.empty());
}

TEST(TimerWheel, RandomizedEquivalenceWithSortedMultimap) {
  sim::Rng rng(0x7EE1'5EED);
  TimerWheel wheel(2);  // non-trivial tick: reference must model rounding
  std::multimap<std::uint64_t, std::uint64_t> reference;  // deadline_tick -> payload
  std::map<std::uint64_t, TimerWheel::TimerId> live;      // payload -> handle
  std::uint64_t now = 0;
  std::uint64_t cursor_tick = 0;  // models the wheel: due arms fire "next"
  std::uint64_t next_payload = 1;
  std::vector<std::uint64_t> wheel_fired;
  std::vector<std::uint64_t> ref_fired;

  for (int step = 0; step < 5'000; ++step) {
    const auto action = rng.below(100);
    if (action < 55) {
      // Arm at a spread of horizons: same tick to multiple levels out.
      const std::uint64_t horizon = 1ull << rng.below(22);
      const std::uint64_t deadline = now + rng.below(horizon + 1);
      const std::uint64_t payload = next_payload++;
      live[payload] = wheel.arm(deadline, payload);
      // ceil to the tick, clamped forward like the wheel: a deadline the
      // cursor already passed fires on the next advance, not in the past.
      const std::uint64_t tick =
          std::max(deadline / 2 + (deadline % 2 != 0), cursor_tick);
      reference.emplace(tick, payload);
    } else if (action < 70 && !live.empty()) {
      // Cancel a pseudo-random live timer.
      auto it = live.begin();
      std::advance(it, static_cast<long>(rng.below(live.size())));
      EXPECT_TRUE(wheel.cancel(it->second));
      for (auto r = reference.begin(); r != reference.end(); ++r) {
        if (r->second == it->first) {
          reference.erase(r);
          break;
        }
      }
      live.erase(it);
    } else {
      // Advance by a spread of jumps (0 .. ~16ms).
      now += rng.below(1ull << rng.below(15));
      wheel.advance(now, [&](std::uint64_t payload) {
        wheel_fired.push_back(payload);
        live.erase(payload);
      });
      const std::uint64_t now_tick = now / 2;
      while (!reference.empty() && reference.begin()->first <= now_tick) {
        ref_fired.push_back(reference.begin()->second);
        reference.erase(reference.begin());
      }
      cursor_tick = now_tick + 1;
      ASSERT_EQ(wheel_fired.size(), ref_fired.size()) << "step " << step;
    }
  }
  // Flush everything still pending and compare the complete histories.
  now += 1ull << 33;
  wheel.advance(now, [&](std::uint64_t payload) { wheel_fired.push_back(payload); });
  while (!reference.empty()) {
    ref_fired.push_back(reference.begin()->second);
    reference.erase(reference.begin());
  }
  ASSERT_EQ(wheel_fired.size(), ref_fired.size());
  // The wheel fires tick-by-tick in arm order; the multimap is sorted by
  // (tick, insertion order for equal ticks) — identical sequences.
  EXPECT_EQ(wheel_fired, ref_fired);
  EXPECT_TRUE(wheel.empty());
  EXPECT_GT(wheel.cascades(), 0u);
}

TEST(TimerWheel, ManyTimersOneTickStressAndDrain) {
  TimerWheel wheel;
  std::vector<TimerWheel::TimerId> ids;
  for (std::uint64_t i = 0; i < 1'000; ++i) ids.push_back(wheel.arm(777, i));
  for (std::uint64_t i = 0; i < 1'000; i += 2) EXPECT_TRUE(wheel.cancel(ids[i]));
  const auto fired = drain(wheel, 777);
  ASSERT_EQ(fired.size(), 500u);
  for (std::size_t i = 0; i < fired.size(); ++i) {
    EXPECT_EQ(fired[i], 2 * i + 1) << "odd payloads, still in arm order";
  }
}

TEST(TimerWheel, RejectsZeroTick) {
  EXPECT_THROW(TimerWheel wheel(0), util::ContractViolation);
}

}  // namespace
}  // namespace svs
