// Unit tests for the DeliveryQueue, centred on purge-index equivalence:
// the indexed per-sender purge path must compute exactly the victim sets of
// the reference full-scan path, while never examining foreign senders'
// entries and doing sub-linear work per arrival.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "core/delivery_queue.hpp"
#include "core/message.hpp"
#include "core/observer.hpp"
#include "obs/batch.hpp"
#include "obs/relation.hpp"
#include "sim/random.hpp"

namespace svs::core {
namespace {

const ViewId kView{0};

DataMessagePtr msg(std::uint32_t sender, std::uint64_t seq,
                   obs::Annotation annotation = obs::Annotation::none()) {
  return std::make_shared<DataMessage>(net::ProcessId(sender), seq, kView,
                                       std::move(annotation), nullptr);
}

/// Collects on_purge victims so two queues' purge histories can be diffed.
class PurgeRecorder final : public NodeObserver {
 public:
  void on_purge(net::ProcessId, const DataMessagePtr& victim,
                const DataMessagePtr& by) override {
    victims.emplace_back(victim->id(), by->id());
  }
  std::vector<std::pair<MsgId, MsgId>> victims;
};

/// Delegates to an inner relation while recording which candidate senders
/// each covers() query touched.
class SpyRelation final : public obs::Relation {
 public:
  explicit SpyRelation(std::shared_ptr<const obs::Relation> inner)
      : inner_(std::move(inner)) {}

  [[nodiscard]] bool covers(const obs::MessageRef& newer,
                            const obs::MessageRef& older) const override {
    queried_senders.insert(newer.sender);
    queried_senders.insert(older.sender);
    return inner_->covers(newer, older);
  }
  [[nodiscard]] bool per_sender() const override {
    return inner_->per_sender();
  }
  [[nodiscard]] std::uint64_t coverage_floor(
      const obs::MessageRef& newer) const override {
    return inner_->coverage_floor(newer);
  }
  [[nodiscard]] const char* name() const override { return "spy"; }

  mutable std::set<net::ProcessId> queried_senders;

 private:
  std::shared_ptr<const obs::Relation> inner_;
};

TEST(DeliveryQueue, FifoOrderAndCounts) {
  DeliveryQueue q(std::make_shared<obs::EmptyRelation>(), net::ProcessId(0),
                  nullptr);
  q.push_view(View(kView, {net::ProcessId(0)}));
  q.push_data(msg(1, 1));
  q.push_data(msg(2, 1));
  EXPECT_EQ(q.length(), 3u);
  EXPECT_EQ(q.data_count(), 2u);
  EXPECT_TRUE(q.accepted(MsgId{net::ProcessId(1), 1}));

  auto e1 = q.pop_front();
  ASSERT_TRUE(e1.has_value());
  EXPECT_TRUE(e1->view.has_value());
  auto e2 = q.pop_front();
  ASSERT_TRUE(e2.has_value());
  EXPECT_EQ(e2->data->sender(), net::ProcessId(1));
  // Delivery moves a message out of the queue but not out of the accepted
  // set (it is recorded in the delivered history by the node).
  EXPECT_TRUE(q.accepted(MsgId{net::ProcessId(1), 1}));
  EXPECT_EQ(q.data_count(), 1u);
  auto e3 = q.pop_front();
  ASSERT_TRUE(e3.has_value());
  EXPECT_FALSE(q.pop_front().has_value());
}

TEST(DeliveryQueue, CollectDeliveredRespectsFloors) {
  DeliveryQueue q(std::make_shared<obs::EmptyRelation>(), net::ProcessId(0),
                  nullptr);
  for (std::uint64_t s = 1; s <= 5; ++s) {
    q.push_data(msg(1, s));
    auto e = q.pop_front();
    q.record_delivered(e->data);
  }
  EXPECT_EQ(q.delivered_retained(), 5u);
  const auto collected = q.collect_delivered(
      [](net::ProcessId) { return std::uint64_t{3}; });
  EXPECT_EQ(collected, 3u);
  EXPECT_EQ(q.delivered_retained(), 2u);
  EXPECT_FALSE(q.accepted(MsgId{net::ProcessId(1), 3}));
  EXPECT_TRUE(q.accepted(MsgId{net::ProcessId(1), 4}));
}

TEST(DeliveryQueue, CollectTrustsTheLedgerFloorsUnconditionally) {
  // One GC rule for every relation (DESIGN.md §3/§7): the floors come from
  // the StabilityLedger's covered frontiers, which never pass a seq whose
  // §3.2 obligation is not yet discharged everywhere — so the queue
  // collects everything at or below them, with no retained-cover insurance
  // and no per-relation policy.  Per-sender floors are respected exactly.
  DeliveryQueue q(std::make_shared<obs::ItemTagRelation>(), net::ProcessId(0),
                  nullptr);
  for (const auto& [sender, seq] :
       std::vector<std::pair<std::uint32_t, std::uint64_t>>{
           {1, 1}, {2, 1}, {1, 2}, {2, 2}, {1, 3}}) {
    q.push_data(msg(sender, seq, obs::Annotation::item(4)));
    auto e = q.pop_front();
    q.record_delivered(e->data);
  }
  const auto collected = q.collect_delivered([](net::ProcessId sender) {
    return sender == net::ProcessId(1) ? std::uint64_t{2} : std::uint64_t{1};
  });
  EXPECT_EQ(collected, 3u);  // 1#1, 1#2, 2#1
  EXPECT_EQ(q.delivered_retained(), 2u);
  EXPECT_FALSE(q.accepted(MsgId{net::ProcessId(1), 1}));
  EXPECT_FALSE(q.accepted(MsgId{net::ProcessId(1), 2}));
  EXPECT_TRUE(q.accepted(MsgId{net::ProcessId(1), 3}));
  EXPECT_FALSE(q.accepted(MsgId{net::ProcessId(2), 1}));
  EXPECT_TRUE(q.accepted(MsgId{net::ProcessId(2), 2}));
}

TEST(DeliveryQueue, PushDataFlushInsertsInPerSenderSeqPosition) {
  for (const bool indexed : {true, false}) {
    DeliveryQueue q(std::make_shared<obs::ItemTagRelation>(),
                    net::ProcessId(0), nullptr, indexed);
    q.push_data(msg(1, 2));
    q.push_data(msg(2, 1));
    q.push_data(msg(1, 4));
    // A flush repair of sender 1's gap seq 3 lands before its queued seq 4.
    q.push_data_flush(msg(1, 3));
    // No queued higher seq for sender 2: its repair appends at the tail.
    q.push_data_flush(msg(2, 5));
    std::vector<MsgId> order;
    while (auto e = q.pop_front()) order.push_back(e->data->id());
    const std::vector<MsgId> expected{
        {net::ProcessId(1), 2}, {net::ProcessId(2), 1},
        {net::ProcessId(1), 3}, {net::ProcessId(1), 4},
        {net::ProcessId(2), 5}};
    EXPECT_EQ(order, expected) << (indexed ? "indexed" : "full-scan");
  }
}

TEST(DeliveryQueue, IndexedPurgeNeverTouchesForeignSenders) {
  const auto spy =
      std::make_shared<SpyRelation>(std::make_shared<obs::ItemTagRelation>());
  DeliveryQueue q(spy, net::ProcessId(0), nullptr, /*use_index=*/true);
  // Sender 1 updates item 7; senders 2 and 3 fill the queue with noise.
  for (std::uint64_t s = 1; s <= 10; ++s) {
    q.push_data(msg(1, s, obs::Annotation::item(7)));
    q.push_data(msg(2, s, obs::Annotation::item(7)));
    q.push_data(msg(3, s, obs::Annotation::item(s)));
  }
  spy->queried_senders.clear();
  const auto by = msg(1, 11, obs::Annotation::item(7));
  EXPECT_EQ(q.count_victims(*by, kView), 10u);
  EXPECT_EQ(q.purge_with(by, kView), 10u);
  EXPECT_TRUE(q.covered_by_accepted(*msg(1, 5, obs::Annotation::item(9)),
                                    kView) == false);
  EXPECT_EQ(spy->queried_senders,
            (std::set<net::ProcessId>{net::ProcessId(1)}));

  // The reference path, by contrast, examines everything.
  DeliveryQueue ref(spy, net::ProcessId(0), nullptr, /*use_index=*/false);
  for (std::uint64_t s = 1; s <= 10; ++s) {
    ref.push_data(msg(1, s, obs::Annotation::item(7)));
    ref.push_data(msg(2, s, obs::Annotation::item(7)));
  }
  spy->queried_senders.clear();
  EXPECT_EQ(ref.purge_with(msg(1, 11, obs::Annotation::item(7)), kView), 10u);
  EXPECT_EQ(spy->queried_senders,
            (std::set<net::ProcessId>{net::ProcessId(1), net::ProcessId(2)}));
}

TEST(DeliveryQueue, CoverageFloorBoundsScanWork) {
  // With a k-enum horizon of 4, an arrival can cover at most the 4
  // preceding seqs: the indexed purge must examine O(k) candidates however
  // long the sender's backlog is.
  const std::size_t k = 4;
  DeliveryQueue q(std::make_shared<obs::KEnumRelation>(), net::ProcessId(0),
                  nullptr, /*use_index=*/true);
  obs::BatchComposer composer({obs::AnnotationKind::k_enum, k, 0});
  for (std::uint64_t s = 1; s <= 200; ++s) {
    q.push_data(msg(1, s, composer.single(/*item=*/7, s)));
  }
  const auto before = q.stats().purge_scan_steps;
  const auto by = msg(1, 201, composer.single(7, 201));
  q.purge_with(by, kView);
  EXPECT_LE(q.stats().purge_scan_steps - before, k);
}

// ---------------------------------------------------------------------------
// Randomized equivalence: indexed vs reference full-scan purging over
// generated traces must remove identical victims in identical order.
// ---------------------------------------------------------------------------

struct QueuePair {
  explicit QueuePair(obs::RelationPtr relation)
      : indexed(relation, net::ProcessId(0), &indexed_log, true),
        reference(relation, net::ProcessId(0), &reference_log, false) {}

  void expect_equal(const char* where) {
    ASSERT_EQ(indexed.length(), reference.length()) << where;
    ASSERT_EQ(indexed.data_count(), reference.data_count()) << where;
    // purge_full visits senders in index order while the reference walks the
    // queue, so victim *order* may differ; the victim *sets* must not.
    auto a = indexed_log.victims;
    auto b = reference_log.victims;
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    ASSERT_EQ(a, b) << where;
  }

  PurgeRecorder indexed_log;
  PurgeRecorder reference_log;
  DeliveryQueue indexed;
  DeliveryQueue reference;
};

void run_equivalence_trace(const obs::RelationPtr& relation,
                           obs::AnnotationKind kind, std::uint64_t seed) {
  sim::Rng rng(seed);
  const std::uint32_t senders = 4;
  const std::size_t k = 8;
  std::vector<obs::BatchComposer> composers;
  std::vector<std::uint64_t> next_seq(senders, 1);
  for (std::uint32_t s = 0; s < senders; ++s) {
    composers.emplace_back(obs::BatchComposer::Config{kind, k, 0});
  }
  QueuePair queues(relation);

  for (int step = 0; step < 600; ++step) {
    const auto roll = rng.below(100);
    if (roll < 70) {
      // Arrival: a fresh message from a random sender updating one of a few
      // hot items, purging as it lands (the t3 sequence).
      const auto s = static_cast<std::uint32_t>(rng.below(senders));
      const std::uint64_t seq = next_seq[s]++;
      const std::uint64_t item = rng.below(5);
      obs::Annotation ann = kind == obs::AnnotationKind::item_tag
                                ? obs::Annotation::item(item)
                                : composers[s].single(item, seq);
      const auto m = msg(s, seq, std::move(ann));
      ASSERT_EQ(queues.indexed.covered_by_accepted(*m, kView),
                queues.reference.covered_by_accepted(*m, kView))
          << "covered mismatch at step " << step;
      ASSERT_EQ(queues.indexed.count_victims(*m, kView),
                queues.reference.count_victims(*m, kView))
          << "victim count mismatch at step " << step;
      const auto removed_i = queues.indexed.purge_with(m, kView);
      const auto removed_r = queues.reference.purge_with(m, kView);
      ASSERT_EQ(removed_i, removed_r) << "purge mismatch at step " << step;
      queues.indexed.push_data(m);
      queues.reference.push_data(m);
    } else if (roll < 90) {
      // Delivery.
      const auto a = queues.indexed.pop_front();
      const auto b = queues.reference.pop_front();
      ASSERT_EQ(a.has_value(), b.has_value());
      if (a.has_value()) {
        ASSERT_EQ(a->data->id(), b->data->id()) << "head mismatch " << step;
      }
    } else {
      // Full purge pass (the t7 epilogue).
      const auto removed_i = queues.indexed.purge_full(kView);
      const auto removed_r = queues.reference.purge_full(kView);
      ASSERT_EQ(removed_i, removed_r) << "purge_full mismatch " << step;
    }
    queues.expect_equal("step");
    if (::testing::Test::HasFatalFailure()) return;
  }
  // The indexed path must have done no more scan work than the reference.
  EXPECT_LE(queues.indexed.stats().purge_scan_steps,
            queues.reference.stats().purge_scan_steps);
}

TEST(DeliveryQueueEquivalence, ItemTagTraces) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    run_equivalence_trace(std::make_shared<obs::ItemTagRelation>(),
                          obs::AnnotationKind::item_tag, seed);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(DeliveryQueueEquivalence, KEnumTraces) {
  for (std::uint64_t seed = 10; seed <= 14; ++seed) {
    run_equivalence_trace(std::make_shared<obs::KEnumRelation>(),
                          obs::AnnotationKind::k_enum, seed);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(DeliveryQueueEquivalence, EnumerationTraces) {
  for (std::uint64_t seed = 20; seed <= 24; ++seed) {
    run_equivalence_trace(std::make_shared<obs::EnumerationRelation>(),
                          obs::AnnotationKind::enumeration, seed);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

}  // namespace
}  // namespace svs::core
