// Threaded loopback backend tests.
//
// The backend must (a) actually move encoded byte buffers across a thread
// boundary — the receiver sees a freshly decoded object, never the sender's
// pointer — and (b) behave exactly like the sim backend at the protocol
// level: the cross-backend equivalence tests run a nontrivial scenario
// (slow consumer + one crash + view changes) on all three Transport
// backends — sim, threaded loopback, and the UDP datagram backend — and
// demand identical application-visible delivery/view sequences per process
// and identical measured byte counters, even with real datagram loss
// forced at the socket boundary.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/group.hpp"
#include "core/message.hpp"
#include "net/fault_injector.hpp"
#include "net/loopback.hpp"
#include "obs/batch.hpp"
#include "obs/relation.hpp"
#include "sim/fault_plan.hpp"
#include "sim/simulator.hpp"
#include "workload/consumer.hpp"
#include "workload/item_op.hpp"

namespace svs::net {
namespace {

using core::Delivery;
using core::ViewId;

// ---------------------------------------------------------------------------
// wire mechanics
// ---------------------------------------------------------------------------

class Recorder final : public Endpoint {
 public:
  bool on_message(ProcessId from, const MessagePtr& message,
                  Lane lane) override {
    received.push_back({from, message, lane});
    return true;
  }
  struct Rec {
    ProcessId from;
    MessagePtr message;
    Lane lane;
  };
  std::vector<Rec> received;
};

TEST(ThreadedLoopback, DeliversFreshlyDecodedObjects) {
  sim::Simulator sim;
  ThreadedLoopback wire(sim, {});
  Recorder a, b;
  wire.attach(ProcessId(0), a);
  wire.attach(ProcessId(1), b);

  const auto sent = std::make_shared<core::DataMessage>(
      ProcessId(0), 1, ViewId(0), obs::Annotation::item(5),
      std::make_shared<workload::ItemOp>(workload::OpKind::update, 5, 42, 1,
                                         true));
  wire.send(ProcessId(0), ProcessId(1), sent, Lane::data);
  sim.run();

  ASSERT_EQ(b.received.size(), 1u);
  const auto& got = b.received[0].message;
  // Same bytes, different object: no shared-pointer identity across the
  // wire.
  EXPECT_NE(got.get(), sent.get());
  ASSERT_EQ(got->type(), MessageType::data);
  const auto& dm = static_cast<const core::DataMessage&>(*got);
  EXPECT_EQ(dm.sender(), ProcessId(0));
  EXPECT_EQ(dm.seq(), 1u);
  EXPECT_EQ(dm.annotation(), obs::Annotation::item(5));
  const auto* op = static_cast<const workload::ItemOp*>(dm.payload().get());
  ASSERT_NE(op, nullptr);
  EXPECT_EQ(op->item(), 5u);
  EXPECT_EQ(op->value(), 42u);
  EXPECT_TRUE(op->commit());

  // Wire telemetry: one frame crossed, its size is the measured one.
  EXPECT_EQ(wire.wire_frames(), 1u);
  EXPECT_EQ(wire.wire_bytes(), sent->wire_size());
  EXPECT_EQ(wire.stats().bytes_delivered, wire.wire_bytes());
}

TEST(ThreadedLoopback, WireBytesMatchLinkLayerCountersWithoutRefusals) {
  sim::Simulator sim;
  ThreadedLoopback wire(sim, {});
  Recorder a, b, c;
  wire.attach(ProcessId(0), a);
  wire.attach(ProcessId(1), b);
  wire.attach(ProcessId(2), c);
  const std::vector<ProcessId> all{ProcessId(0), ProcessId(1), ProcessId(2)};
  for (int i = 1; i <= 20; ++i) {
    const auto m = std::make_shared<core::DataMessage>(
        ProcessId(0), static_cast<std::uint64_t>(i), ViewId(0),
        obs::Annotation::enumerate({static_cast<std::uint64_t>(i)}),
        nullptr);
    wire.multicast(ProcessId(0), all, m, Lane::data);
  }
  sim.run();
  EXPECT_EQ(b.received.size(), 20u);
  EXPECT_EQ(c.received.size(), 20u);
  EXPECT_EQ(wire.stats().bytes_sent, wire.stats().bytes_delivered);
  EXPECT_EQ(wire.wire_bytes(), wire.stats().bytes_delivered);
  EXPECT_EQ(wire.wire_frames(), 40u);
}

// ---------------------------------------------------------------------------
// cross-backend equivalence
// ---------------------------------------------------------------------------

struct ScenarioResult {
  std::vector<std::vector<std::string>> events;  // per process
  NetworkStats stats;
  std::uint64_t wire_frames = 0;
  std::uint64_t wire_bytes = 0;
  UdpLaneStats lane;  // udp backend only
  std::size_t produced = 0;
  // Quiescent-gossip telemetry summed over the surviving nodes: the
  // suppression decisions are part of the protocol schedule, so they must
  // be backend-identical just like the delivery histories.
  std::uint64_t rounds_suppressed = 0;
  std::uint64_t gossip_heartbeats = 0;
  std::uint64_t frontier_piggybacks = 0;
  // SWIM runs only: one formatted counter line per surviving detector.
  // Every probe, suspicion and piggybacked update is a deterministic
  // function of the protocol schedule, so the lines must match verbatim
  // across backends.  The totals back the qualitative assertions.
  std::vector<std::string> swim_counters;
  std::uint64_t swim_probes = 0;
  std::uint64_t swim_suspicions = 0;
  std::uint64_t swim_confirms = 0;
  std::uint64_t swim_piggybacked = 0;
};

std::string describe(const Delivery& delivery) {
  std::ostringstream os;
  if (const auto* data = std::get_if<core::DataDelivery>(&delivery)) {
    const auto& m = *data->message;
    os << "D " << m.sender() << "#" << m.seq();
    if (const auto* op =
            dynamic_cast<const workload::ItemOp*>(m.payload().get())) {
      os << " item=" << op->item() << " val=" << op->value()
         << (op->commit() ? " commit" : "");
    }
  } else if (const auto* view = std::get_if<core::ViewDelivery>(&delivery)) {
    os << "V " << view->view;
  } else {
    os << "X " << std::get<core::ExclusionDelivery>(delivery).last_view;
  }
  return os.str();
}

/// Slow consumer at replica 3, node 2 crashes mid-run (auto-membership
/// excludes it), node 1 later triggers a pure reconfiguration.  The
/// producer retries around flow-control blockage, so sender-side purging,
/// refusals and the view-change flush all fire on both backends.
///
/// With `faults`, the crash moves into the plan and the run additionally
/// carries per-link jitter, a healed partition and data duplication through
/// the Transport fault hooks — the injector is rebuilt per run, so both
/// backends see identical fault randomness.
ScenarioResult run_scenario(core::Group::Backend backend,
                            const sim::FaultPlan* faults = nullptr,
                            core::Group::FdKind fd = core::Group::FdKind::oracle) {
  constexpr std::size_t kNodes = 4;
  constexpr std::size_t kMessages = 220;
  sim::Simulator sim;
  core::Group::Config cfg;
  cfg.size = kNodes;
  cfg.backend = backend;
  cfg.node.relation = std::make_shared<obs::ItemTagRelation>();
  cfg.node.delivery_capacity = 12;
  cfg.node.out_capacity = 12;
  cfg.network.jitter = sim::Duration::micros(500);
  cfg.network.seed = 0xfeedface;
  cfg.auto_membership = true;
  cfg.node.quiescent = true;  // adaptive gossip on, on every backend
  cfg.fd_kind = fd;
  if (fd == core::Group::FdKind::swim) {
    // Fast enough to catch the 150ms crash well before the reconfiguration,
    // slow enough that the healed partition only produces transient
    // suspicion.  The seed pins every shuffle and relay draw.
    cfg.swim.period = sim::Duration::millis(40);
    cfg.swim.direct_timeout = sim::Duration::millis(12);
    cfg.swim.suspicion_periods = 2;
    cfg.swim.seed = 0x5117;
  }
  std::optional<PlannedFaultInjector> injector;
  if (faults != nullptr) injector.emplace(*faults);
  core::Group group(sim, cfg);
  if (injector.has_value()) {
    group.network().set_fault_injector(&*injector);
    schedule_crashes(sim, group.network(), *faults);
  }

  ScenarioResult result;
  result.events.resize(kNodes);

  // Replicas 0..2 consume instantly, replica 3 is the slow one.
  std::vector<std::unique_ptr<workload::InstantConsumer>> instant;
  for (std::size_t i = 0; i + 1 < kNodes; ++i) {
    instant.push_back(
        std::make_unique<workload::InstantConsumer>(sim, group.node(i)));
    instant.back()->set_sink([&result, i](const Delivery& d) {
      result.events[i].push_back(describe(d));
    });
    instant.back()->start();
  }
  workload::RateConsumer slow(sim, group.node(kNodes - 1), 70.0);
  slow.set_sink([&result](const Delivery& d) {
    result.events[kNodes - 1].push_back(describe(d));
  });
  slow.start();

  // Producer: a periodic tick on node 0, retried around flow control.
  // A small hot item set makes most updates obsolete quickly.
  std::function<void()> produce = [&] {
    if (result.produced >= kMessages) return;
    const auto item = static_cast<std::uint64_t>(result.produced % 5);
    const auto payload = std::make_shared<workload::ItemOp>(
        workload::OpKind::update, item, result.produced * 11,
        result.produced, true);
    if (group.node(0)
            .multicast(payload, obs::Annotation::item(item))
            .has_value()) {
      ++result.produced;
    }
    sim.schedule_after(sim::Duration::millis(2), produce);
  };
  sim.schedule_after(sim::Duration::millis(1), produce);

  // One crash (auto-membership excludes it) and one pure reconfiguration.
  // Under a fault plan the crash is the plan's (already scheduled above).
  if (faults == nullptr) {
    sim.schedule_after(sim::Duration::millis(150), [&] { group.crash(2); });
  }
  sim.schedule_after(sim::Duration::millis(600),
                     [&] { group.node(1).request_view_change({}); });

  const auto deadline =
      sim::TimePoint::origin() + sim::Duration::seconds(120.0);
  while (sim.now() < deadline) {
    sim.run_until(sim.now() + sim::Duration::seconds(1.0));
    if (result.produced >= kMessages &&
        group.node(0).delivery_queue_length() == 0 &&
        group.node(1).delivery_queue_length() == 0 &&
        group.node(kNodes - 1).delivery_queue_length() == 0 &&
        group.network().data_backlog(group.pid(0), group.pid(kNodes - 1)) ==
            0) {
      break;
    }
  }

  result.stats = group.network().stats();
  for (std::size_t i = 0; i < kNodes; ++i) {
    if (i == 2) continue;  // crashed mid-run on every variant
    const auto& node_stats = group.node(i).stats();
    result.rounds_suppressed += node_stats.gossip_rounds_suppressed;
    result.gossip_heartbeats += node_stats.gossip_heartbeats;
    result.frontier_piggybacks += node_stats.frontier_piggybacks;
  }
  for (std::size_t i = 0; i < kNodes; ++i) {
    if (i == 2) continue;  // crashed mid-run on every variant
    const auto* detector = group.swim_detector(i);
    if (detector == nullptr) continue;
    const auto& c = detector->counters();
    std::ostringstream os;
    os << "p" << i << " probes=" << c.probes_sent << " acks="
       << c.acks_received << " indirect=" << c.indirect_probes_sent
       << " relayed=" << c.ping_reqs_relayed << " susp=" << c.suspicions
       << " refut=" << c.refutations << " confirm=" << c.confirms
       << " piggy=" << c.updates_piggybacked << " inc="
       << detector->incarnation();
    result.swim_counters.push_back(os.str());
    result.swim_probes += c.probes_sent;
    result.swim_suspicions += c.suspicions;
    result.swim_confirms += c.confirms;
    result.swim_piggybacked += c.updates_piggybacked;
  }
  if (auto* loopback = group.loopback()) {
    result.wire_frames = loopback->wire_frames();
    result.wire_bytes = loopback->wire_bytes();
  }
  if (auto* udp = group.udp()) {
    // Drain the shadow wire before sampling: the lane counters only settle
    // once every crossing's frame has wire-delivered and byte-verified.
    const std::int64_t drain = net::UdpTransport::mono_us() + 10'000'000;
    while (!udp->links_idle() && net::UdpTransport::mono_us() < drain) {
      udp->service(1'000);
    }
    EXPECT_TRUE(udp->links_idle()) << "shadow wire failed to drain";
    result.lane = udp->lane_stats();
  }
  return result;
}

/// The NetworkStats every backend must agree on, byte for byte.  The lane
/// counters (UdpLaneStats) are deliberately excluded: they measure real
/// kernel behaviour and are asserted qualitatively instead.
void expect_equal_protocol_stats(const ScenarioResult& a,
                                 const ScenarioResult& b,
                                 const char* which) {
  EXPECT_EQ(a.stats.sent, b.stats.sent) << which;
  EXPECT_EQ(a.stats.delivered, b.stats.delivered) << which;
  EXPECT_EQ(a.stats.bytes_sent, b.stats.bytes_sent) << which;
  EXPECT_EQ(a.stats.bytes_delivered, b.stats.bytes_delivered) << which;
  EXPECT_EQ(a.stats.purged_outgoing, b.stats.purged_outgoing) << which;
  EXPECT_EQ(a.stats.bytes_purged, b.stats.bytes_purged) << which;
}

TEST(CrossBackendEquivalence, IdenticalDeliverySequencesAndByteCounters) {
  const ScenarioResult sim_run = run_scenario(core::Group::Backend::sim);
  const ScenarioResult wire_run =
      run_scenario(core::Group::Backend::threaded_loopback);

  ASSERT_EQ(sim_run.produced, 220u) << "sim scenario did not complete";
  ASSERT_EQ(wire_run.produced, 220u) << "loopback scenario did not complete";

  // The scenario actually exercised the interesting machinery.
  EXPECT_GT(sim_run.stats.purged_outgoing, 0u);
  EXPECT_GT(sim_run.stats.refusals, 0u);
  std::size_t view_events = 0;
  for (const auto& e : sim_run.events[0]) {
    if (e.rfind("V ", 0) == 0) ++view_events;
  }
  EXPECT_GE(view_events, 3u)  // initial + exclusion + reconfiguration
      << "expected the crash exclusion and the reconfiguration to install";

  // Application-visible history: identical per process, event by event.
  for (std::size_t i = 0; i < sim_run.events.size(); ++i) {
    EXPECT_EQ(sim_run.events[i], wire_run.events[i]) << "process " << i;
  }

  // Measured byte counters agree: the loopback's bytes are counted on real
  // encoded buffers, the sim's on codec-checked wire_size() — same numbers.
  expect_equal_protocol_stats(sim_run, wire_run, "sim vs loopback");

  // And the wire really moved those bytes: every delivered byte crossed a
  // thread as an encoded frame (refused attempts cross again on retry).
  EXPECT_GT(wire_run.wire_frames, 0u);
  EXPECT_GE(wire_run.wire_bytes, wire_run.stats.bytes_delivered);

  // Third backend: the same scenario where every delivery crossing really
  // traverses the kernel as a UDP datagram.  The synchronous crossing (the
  // virtual clock stands still while the lane transmits, retransmits and
  // acks) makes the protocol history bit-identical to the other two.
  const ScenarioResult udp_run = run_scenario(core::Group::Backend::udp);
  ASSERT_EQ(udp_run.produced, 220u) << "udp scenario did not complete";
  for (std::size_t i = 0; i < sim_run.events.size(); ++i) {
    EXPECT_EQ(sim_run.events[i], udp_run.events[i]) << "udp process " << i;
  }
  expect_equal_protocol_stats(sim_run, udp_run, "sim vs udp");
  // Every delivered frame really crossed the kernel, reliably.
  EXPECT_GT(udp_run.lane.datagrams_sent, 0u);
  EXPECT_GT(udp_run.lane.frames_delivered, 0u);
  EXPECT_EQ(udp_run.lane.link_resets, 0u);
  EXPECT_EQ(udp_run.lane.malformed_datagrams, 0u);
  EXPECT_EQ(udp_run.lane.stray_datagrams, 0u);
  // Encode-once held across the datagram path too: frames multicast to
  // several receivers are encoded once and reused.
  EXPECT_GT(udp_run.lane.frame_reuses, 0u);
}

/// Per-link jitter onto the slow consumer, a healed symmetric partition
/// isolating node 1, the node-2 crash as a plan entry, probabilistic
/// duplication on a busy link and all-links datagram loss.  Every fault
/// draws from an id-keyed rng stream, so a rebuilt injector replays the
/// same fault schedule on any backend.
sim::FaultPlan nontrivial_fault_plan() {
  sim::FaultPlan plan;
  plan.seed = 0xfa017;
  const auto add = [&plan](sim::FaultSpec f) {
    f.id = static_cast<std::uint32_t>(plan.faults.size());
    plan.faults.push_back(f);
  };
  {
    sim::FaultSpec jitter;
    jitter.kind = sim::FaultKind::link_jitter;
    jitter.a = 0;
    jitter.b = 3;
    jitter.start = sim::TimePoint::at_micros(50'000);
    jitter.end = sim::TimePoint::at_micros(500'000);
    jitter.magnitude = sim::Duration::millis(8);
    add(jitter);
  }
  {
    sim::FaultSpec part;
    part.kind = sim::FaultKind::partition;
    part.side_mask = 0x2;  // {p1} vs the rest
    part.symmetric = true;
    part.start = sim::TimePoint::at_micros(200'000);
    part.end = sim::TimePoint::at_micros(330'000);
    add(part);
  }
  {
    sim::FaultSpec crash;
    crash.kind = sim::FaultKind::crash;
    crash.a = 2;
    crash.start = sim::TimePoint::at_micros(150'000);
    crash.end = crash.start;
    add(crash);
  }
  {
    sim::FaultSpec dup;
    dup.kind = sim::FaultKind::duplicate;
    dup.a = 0;
    dup.b = 1;
    dup.probability = 0.4;
    dup.start = sim::TimePoint::origin();
    dup.end = sim::TimePoint::at_micros(1'000'000);
    add(dup);
  }
  {
    // All-links datagram loss.  In-model it charges a per-lost-transmission
    // recovery delay through the injector (identically on every backend);
    // on the UDP backend the same spec additionally drops real datagrams at
    // the socket boundary, repaired by real retransmissions.
    sim::FaultSpec loss;
    loss.kind = sim::FaultKind::loss;
    loss.a = sim::FaultSpec::kAllLinks;
    loss.probability = 0.1;
    loss.magnitude = sim::Duration::millis(3);
    loss.start = sim::TimePoint::origin();
    loss.end = sim::TimePoint::at_micros(800'000);
    add(loss);
  }
  return plan;
}

TEST(CrossBackendEquivalence, IdenticalUnderNontrivialFaultPlan) {
  // The flagship scenario perturbed through the Transport fault hooks: the
  // injector is rebuilt per run, so the simulated fabric and the
  // byte-moving loopback must produce identical histories and identical
  // measured counters — including the injected-fault counters.
  const sim::FaultPlan plan = nontrivial_fault_plan();
  ASSERT_TRUE(plan.in_model());

  const ScenarioResult sim_run =
      run_scenario(core::Group::Backend::sim, &plan);
  const ScenarioResult wire_run =
      run_scenario(core::Group::Backend::threaded_loopback, &plan);

  ASSERT_EQ(sim_run.produced, 220u) << "sim scenario did not complete";
  ASSERT_EQ(wire_run.produced, 220u) << "loopback scenario did not complete";

  // The faults actually fired.
  EXPECT_GT(sim_run.stats.injected_duplicates, 0u);
  EXPECT_GT(sim_run.stats.injected_losses, 0u);
  EXPECT_GT(sim_run.stats.purged_outgoing, 0u);
  std::size_t view_events = 0;
  for (const auto& e : sim_run.events[0]) {
    if (e.rfind("V ", 0) == 0) ++view_events;
  }
  EXPECT_GE(view_events, 3u);

  for (std::size_t i = 0; i < sim_run.events.size(); ++i) {
    EXPECT_EQ(sim_run.events[i], wire_run.events[i]) << "process " << i;
  }
  expect_equal_protocol_stats(sim_run, wire_run, "sim vs loopback");
  EXPECT_EQ(sim_run.stats.injected_duplicates,
            wire_run.stats.injected_duplicates);
  EXPECT_EQ(sim_run.stats.injected_drops, wire_run.stats.injected_drops);
  EXPECT_EQ(sim_run.stats.injected_pauses, wire_run.stats.injected_pauses);
  EXPECT_EQ(sim_run.stats.injected_losses, wire_run.stats.injected_losses);

  // Quiescent gossip engaged under this churn+loss plan — rounds really
  // were suppressed and frontiers really rode on data traffic — and every
  // suppression decision replayed identically on the byte-moving backend.
  EXPECT_GT(sim_run.rounds_suppressed, 0u) << "quiescence never engaged";
  EXPECT_GT(sim_run.frontier_piggybacks, 0u) << "no frontier piggybacked";
  EXPECT_EQ(sim_run.rounds_suppressed, wire_run.rounds_suppressed);
  EXPECT_EQ(sim_run.gossip_heartbeats, wire_run.gossip_heartbeats);
  EXPECT_EQ(sim_run.frontier_piggybacks, wire_run.frontier_piggybacks);

  // Duplicated copies crossed the wire thread as separately encoded frames.
  EXPECT_GT(wire_run.wire_frames, 0u);
  EXPECT_GE(wire_run.wire_bytes, wire_run.stats.bytes_delivered);

  // Third backend: identical histories even though the loss fault now
  // *really* discards ~10% of the datagrams at the socket boundary and the
  // reliable lane recovers every one of them in real time.
  const ScenarioResult udp_run =
      run_scenario(core::Group::Backend::udp, &plan);
  ASSERT_EQ(udp_run.produced, 220u) << "udp scenario did not complete";
  for (std::size_t i = 0; i < sim_run.events.size(); ++i) {
    EXPECT_EQ(sim_run.events[i], udp_run.events[i]) << "udp process " << i;
  }
  expect_equal_protocol_stats(sim_run, udp_run, "sim vs udp");
  EXPECT_EQ(sim_run.stats.injected_duplicates,
            udp_run.stats.injected_duplicates);
  EXPECT_EQ(sim_run.stats.injected_losses, udp_run.stats.injected_losses);
  EXPECT_EQ(sim_run.rounds_suppressed, udp_run.rounds_suppressed);
  EXPECT_EQ(sim_run.gossip_heartbeats, udp_run.gossip_heartbeats);
  EXPECT_EQ(sim_run.frontier_piggybacks, udp_run.frontier_piggybacks);
  // The losses were real and so was the repair: datagrams dropped before
  // sendto, recovered by timeout-driven retransmission, zero protocol loss
  // (the identical histories above are the proof).
  EXPECT_GT(udp_run.lane.injected_losses, 0u);
  EXPECT_GT(udp_run.lane.retransmissions, 0u);
  EXPECT_EQ(udp_run.lane.link_resets, 0u);
}

TEST(CrossBackendEquivalence, SwimFdPinnedUnderChurnAndLoss) {
  // The same churn+loss plan, now with the SWIM detector pinned instead of
  // the oracle: the crash is detected by real ping/ping-req traffic, the
  // healed partition produces transient suspicion, and every one of those
  // control messages is encoded and decoded on the wire backends.  The
  // view sequences (the "V ..." event lines) and the per-detector
  // probe/suspicion counters must be bit-identical across all three
  // backends — any divergence means the swim codec or its timer schedule
  // leaks backend-specific behaviour.
  const sim::FaultPlan plan = nontrivial_fault_plan();
  ASSERT_TRUE(plan.in_model());

  const ScenarioResult sim_run = run_scenario(
      core::Group::Backend::sim, &plan, core::Group::FdKind::swim);
  ASSERT_EQ(sim_run.produced, 220u) << "sim scenario did not complete";

  // SWIM actually drove the membership: the crash was found by probing
  // (suspicion -> confirm -> exclusion), updates spread by piggybacking,
  // and the view history still shows the exclusion and the explicit
  // reconfiguration.
  std::uint64_t suspicions = 0, confirms = 0, probes = 0, piggybacked = 0;
  ASSERT_EQ(sim_run.swim_counters.size(), 3u);
  for (const auto& line : sim_run.swim_counters) {
    std::uint64_t v = 0;
    std::sscanf(line.c_str() + line.find("probes="), "probes=%lu", &v);
    probes += v;
    std::sscanf(line.c_str() + line.find("susp="), "susp=%lu", &v);
    suspicions += v;
    std::sscanf(line.c_str() + line.find("confirm="), "confirm=%lu", &v);
    confirms += v;
    std::sscanf(line.c_str() + line.find("piggy="), "piggy=%lu", &v);
    piggybacked += v;
  }
  EXPECT_GT(probes, 0u);
  EXPECT_GT(suspicions, 0u) << "the crash was never suspected";
  EXPECT_GT(confirms, 0u) << "no suspicion hardened into a confirm";
  EXPECT_GT(piggybacked, 0u) << "no membership update disseminated";
  std::size_t view_events = 0;
  for (const auto& e : sim_run.events[0]) {
    if (e.rfind("V ", 0) == 0) ++view_events;
  }
  EXPECT_GE(view_events, 3u)
      << "expected the swim-driven exclusion and the reconfiguration";

  const ScenarioResult wire_run = run_scenario(
      core::Group::Backend::threaded_loopback, &plan,
      core::Group::FdKind::swim);
  ASSERT_EQ(wire_run.produced, 220u) << "loopback scenario did not complete";
  for (std::size_t i = 0; i < sim_run.events.size(); ++i) {
    EXPECT_EQ(sim_run.events[i], wire_run.events[i]) << "process " << i;
  }
  expect_equal_protocol_stats(sim_run, wire_run, "sim vs loopback");
  EXPECT_EQ(sim_run.swim_counters, wire_run.swim_counters);
  EXPECT_EQ(sim_run.rounds_suppressed, wire_run.rounds_suppressed);
  EXPECT_EQ(sim_run.gossip_heartbeats, wire_run.gossip_heartbeats);
  EXPECT_EQ(sim_run.frontier_piggybacks, wire_run.frontier_piggybacks);

  const ScenarioResult udp_run = run_scenario(
      core::Group::Backend::udp, &plan, core::Group::FdKind::swim);
  ASSERT_EQ(udp_run.produced, 220u) << "udp scenario did not complete";
  for (std::size_t i = 0; i < sim_run.events.size(); ++i) {
    EXPECT_EQ(sim_run.events[i], udp_run.events[i]) << "udp process " << i;
  }
  expect_equal_protocol_stats(sim_run, udp_run, "sim vs udp");
  EXPECT_EQ(sim_run.swim_counters, udp_run.swim_counters);
  // The swim control traffic really crossed the kernel: pings and acks are
  // datagrams like everything else, and the lane recovered the injected
  // losses without resetting.
  EXPECT_GT(udp_run.lane.datagrams_sent, 0u);
  EXPECT_EQ(udp_run.lane.link_resets, 0u);
  EXPECT_EQ(udp_run.lane.malformed_datagrams, 0u);
}

// ---------------------------------------------------------------------------
// purge-debt gossip equivalence (k-enumeration)
// ---------------------------------------------------------------------------

struct DebtScenarioResult {
  std::vector<std::vector<std::string>> events;  // per process
  NetworkStats stats;
  std::uint64_t debts_recorded = 0;
  std::uint64_t debts_collected = 0;
  std::uint64_t debt_entries_gossiped = 0;
  std::uint64_t debt_bytes_gossiped = 0;
  std::size_t produced = 0;
};

/// k-enumeration producer on node 0 (BatchComposer singleton batches over a
/// small hot item set), one stalled-then-slow consumer so the outgoing
/// buffer backs up and sender-side purging records debts, a crash excluded
/// by the membership policy mid-run.  The debt sections of the stability
/// gossip are real wire traffic, so both backends must agree on every debt
/// counter byte for byte.
DebtScenarioResult run_debt_scenario(core::Group::Backend backend) {
  constexpr std::size_t kNodes = 4;
  constexpr std::size_t kMessages = 160;
  sim::Simulator sim;
  core::Group::Config cfg;
  cfg.size = kNodes;
  cfg.backend = backend;
  cfg.node.relation = std::make_shared<obs::KEnumRelation>();
  cfg.node.delivery_capacity = 3;
  cfg.node.out_capacity = 10;
  cfg.network.jitter = sim::Duration::micros(300);
  cfg.network.seed = 0xdeb7;
  cfg.auto_membership = true;
  core::Group group(sim, cfg);

  DebtScenarioResult result;
  result.events.resize(kNodes);

  std::vector<std::unique_ptr<workload::InstantConsumer>> instant;
  for (std::size_t i = 0; i + 1 < kNodes; ++i) {
    instant.push_back(
        std::make_unique<workload::InstantConsumer>(sim, group.node(i)));
    instant.back()->set_sink([&result, i](const core::Delivery& d) {
      result.events[i].push_back(describe(d));
    });
    instant.back()->start();
  }
  workload::RateConsumer slow(sim, group.node(kNodes - 1), 45.0);
  slow.set_sink([&result](const core::Delivery& d) {
    result.events[kNodes - 1].push_back(describe(d));
  });
  slow.start();

  // Producer with real k-enum annotations: three hot items cycling, so the
  // slow consumer's backlog always holds purgeable predecessors.  The
  // composer is only advanced when the multicast commits.
  auto composer = std::make_shared<obs::BatchComposer>(
      obs::BatchComposer::Config{obs::AnnotationKind::k_enum, 12, 0});
  std::function<void()> produce = [&sim, &group, &result, composer,
                                   &produce] {
    if (result.produced >= kMessages) return;
    const auto item = static_cast<std::uint64_t>(result.produced % 3);
    const auto payload = std::make_shared<workload::ItemOp>(
        workload::OpKind::update, item, result.produced * 11,
        result.produced, true);
    obs::BatchComposer trial = *composer;
    const auto annotation =
        trial.single(item, group.node(0).next_seq());
    if (group.node(0).multicast(payload, annotation).has_value()) {
      *composer = std::move(trial);
      ++result.produced;
    }
    sim.schedule_after(sim::Duration::millis(2), produce);
  };
  sim.schedule_after(sim::Duration::millis(1), produce);

  sim.schedule_after(sim::Duration::millis(200), [&] { group.crash(2); });

  const auto deadline =
      sim::TimePoint::origin() + sim::Duration::seconds(120.0);
  while (sim.now() < deadline) {
    sim.run_until(sim.now() + sim::Duration::seconds(1.0));
    if (result.produced >= kMessages &&
        group.node(0).delivery_queue_length() == 0 &&
        group.node(kNodes - 1).delivery_queue_length() == 0 &&
        group.network().data_backlog(group.pid(0), group.pid(kNodes - 1)) ==
            0) {
      break;
    }
  }

  result.stats = group.network().stats();
  for (std::size_t i = 0; i < kNodes; ++i) {
    const auto& stats = group.node(i).stats();
    result.debts_recorded += stats.debts_recorded;
    result.debts_collected += stats.debts_collected;
    result.debt_entries_gossiped += stats.debt_entries_gossiped;
    result.debt_bytes_gossiped += stats.debt_bytes_gossiped;
  }
  return result;
}

TEST(CrossBackendEquivalence, KEnumPurgeDebtGossipIsBackendIdentical) {
  const DebtScenarioResult sim_run =
      run_debt_scenario(core::Group::Backend::sim);
  const DebtScenarioResult wire_run =
      run_debt_scenario(core::Group::Backend::threaded_loopback);

  ASSERT_EQ(sim_run.produced, 160u) << "sim scenario did not complete";
  ASSERT_EQ(wire_run.produced, 160u) << "loopback scenario did not complete";

  // The machinery under test actually fired: sender-side purges recorded
  // debts, the gossip shipped them, and stability retired them again.
  EXPECT_GT(sim_run.debts_recorded, 0u);
  EXPECT_GT(sim_run.debt_entries_gossiped, 0u);
  EXPECT_GT(sim_run.debt_bytes_gossiped, 0u);
  EXPECT_GT(sim_run.debts_collected, 0u);
  std::size_t view_events = 0;
  for (const auto& e : sim_run.events[0]) {
    if (e.rfind("V ", 0) == 0) ++view_events;
  }
  EXPECT_GE(view_events, 2u) << "the crash exclusion must install";

  // Identical per-process histories...
  for (std::size_t i = 0; i < sim_run.events.size(); ++i) {
    EXPECT_EQ(sim_run.events[i], wire_run.events[i]) << "process " << i;
  }
  // ...and identical debt-gossip counters: the ledger's wire behaviour is
  // a pure function of the protocol schedule, whether the stability
  // message moves as a refcounted object or as encoded-then-decoded bytes.
  EXPECT_EQ(sim_run.debts_recorded, wire_run.debts_recorded);
  EXPECT_EQ(sim_run.debts_collected, wire_run.debts_collected);
  EXPECT_EQ(sim_run.debt_entries_gossiped, wire_run.debt_entries_gossiped);
  EXPECT_EQ(sim_run.debt_bytes_gossiped, wire_run.debt_bytes_gossiped);
  EXPECT_EQ(sim_run.stats.sent, wire_run.stats.sent);
  EXPECT_EQ(sim_run.stats.bytes_sent, wire_run.stats.bytes_sent);
  EXPECT_EQ(sim_run.stats.bytes_delivered, wire_run.stats.bytes_delivered);
  EXPECT_EQ(sim_run.stats.purged_outgoing, wire_run.stats.purged_outgoing);
  EXPECT_EQ(sim_run.stats.bytes_purged, wire_run.stats.bytes_purged);
  EXPECT_EQ(sim_run.stats.gossip_bytes_saved,
            wire_run.stats.gossip_bytes_saved);
}

}  // namespace
}  // namespace svs::net
