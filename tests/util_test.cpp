// Unit tests for util: contracts, strong ids, byte codec.
#include <gtest/gtest.h>

#include <sstream>
#include <unordered_set>

#include "util/bytes.hpp"
#include "util/contracts.hpp"
#include "util/strong_id.hpp"
#include "sim/random.hpp"

namespace svs::util {
namespace {

TEST(Contracts, RequireThrowsContractViolation) {
  EXPECT_THROW(SVS_REQUIRE(false, "boom"), ContractViolation);
  EXPECT_NO_THROW(SVS_REQUIRE(true, "fine"));
}

TEST(Contracts, AssertThrowsLogicViolation) {
  EXPECT_THROW(SVS_ASSERT(false, "boom"), LogicViolation);
  EXPECT_NO_THROW(SVS_ASSERT(true, "fine"));
}

TEST(Contracts, MessagesCarryContext) {
  try {
    SVS_REQUIRE(1 == 2, "the message");
    FAIL() << "should have thrown";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("the message"), std::string::npos);
    EXPECT_NE(what.find("util_test.cpp"), std::string::npos);
  }
}

TEST(Contracts, UnreachableThrows) {
  EXPECT_THROW(SVS_UNREACHABLE("nope"), LogicViolation);
}

struct FooTag {
  static constexpr const char* prefix() { return "f"; }
};
struct BarTag {
  static constexpr const char* prefix() { return "b"; }
};
using FooId = StrongId<FooTag, std::uint32_t>;
using BarId = StrongId<BarTag, std::uint32_t>;

TEST(StrongId, ComparesAndOrders) {
  EXPECT_EQ(FooId(3), FooId(3));
  EXPECT_NE(FooId(3), FooId(4));
  EXPECT_LT(FooId(3), FooId(4));
  EXPECT_EQ(FooId(3).next(), FooId(4));
}

TEST(StrongId, DistinctTagsAreDistinctTypes) {
  static_assert(!std::is_same_v<FooId, BarId>);
  static_assert(!std::is_convertible_v<FooId, BarId>);
}

TEST(StrongId, Streams) {
  std::ostringstream os;
  os << FooId(42);
  EXPECT_EQ(os.str(), "f42");
}

TEST(StrongId, Hashable) {
  std::unordered_set<FooId> s;
  s.insert(FooId(1));
  s.insert(FooId(1));
  s.insert(FooId(2));
  EXPECT_EQ(s.size(), 2u);
}

TEST(Bytes, VarintRoundTrip) {
  ByteWriter w;
  const std::uint64_t values[] = {0,    1,    127,        128,
                                  300,  16383, 16384,     0xFFFFFFFFULL,
                                  ~0ULL};
  for (const auto v : values) w.u64(v);
  ByteReader r(w.data());
  for (const auto v : values) EXPECT_EQ(r.u64(), v);
  EXPECT_TRUE(r.exhausted());
}

TEST(Bytes, VarintSizeMatchesEncoding) {
  for (const std::uint64_t v :
       {0ULL, 127ULL, 128ULL, 16384ULL, 1ULL << 40, ~0ULL}) {
    ByteWriter w;
    w.u64(v);
    EXPECT_EQ(w.size(), varint_size(v)) << v;
  }
}

TEST(Bytes, Fixed64RoundTrip) {
  ByteWriter w;
  w.fixed64(0x0123456789ABCDEFULL);
  EXPECT_EQ(w.size(), 8u);
  ByteReader r(w.data());
  EXPECT_EQ(r.fixed64(), 0x0123456789ABCDEFULL);
}

TEST(Bytes, StringRoundTrip) {
  ByteWriter w;
  w.str("hello");
  w.str("");
  w.str(std::string("\0binary\xff", 8));
  ByteReader r(w.data());
  EXPECT_EQ(r.str(), "hello");
  EXPECT_EQ(r.str(), "");
  EXPECT_EQ(r.str(), std::string("\0binary\xff", 8));
}

TEST(Bytes, UnderrunThrows) {
  ByteWriter w;
  w.u8(0x80);  // truncated varint
  ByteReader r(w.data());
  EXPECT_THROW(r.u64(), ContractViolation);
}

TEST(Bytes, OverlongVarintRejected) {
  // Ten bytes whose tail would set bits above 63: the value cannot be
  // represented, so the decoder must throw instead of silently wrapping.
  Bytes buf(9, 0x80);
  buf.push_back(0x7F);
  ByteReader r(buf);
  EXPECT_THROW(r.u64(), ContractViolation);

  // The canonical 10-byte encoding of ~0 (final byte 0x01) stays valid.
  ByteWriter w;
  w.u64(~0ULL);
  EXPECT_EQ(w.size(), 10u);
  ByteReader r2(w.data());
  EXPECT_EQ(r2.u64(), ~0ULL);
}

TEST(Bytes, U32OverflowRejected) {
  ByteWriter w;
  w.u64(1ULL << 33);
  ByteReader r(w.data());
  EXPECT_THROW(r.u32(), ContractViolation);
}

TEST(Bytes, EmptyReaderIsExhausted) {
  Bytes empty;
  ByteReader r(empty);
  EXPECT_TRUE(r.exhausted());
  EXPECT_THROW(r.u8(), ContractViolation);
}

TEST(Bytes, SkipBoundsChecked) {
  ByteWriter w;
  w.u64(300);
  ByteReader r(w.data());
  r.skip(1);
  EXPECT_EQ(r.position(), 1u);
  EXPECT_THROW(r.skip(5), ContractViolation);
  r.skip(r.remaining());
  EXPECT_TRUE(r.exhausted());
}

TEST(Bytes, ReaderFuzzNeverMisbehaves) {
  // Deterministic byte-level fuzz of the primitive decoders: on arbitrary
  // buffers every read either returns a value or throws ContractViolation —
  // no UB, no LogicViolation, and the position never runs past the end.
  // (The message-level mutation fuzz lives in codec_test.cpp; the ASan +
  // UBSan CI job runs both under sanitizers.)
  svs::sim::Rng rng(0x0ddba11ULL);
  const auto next_random = [&rng] { return rng.next_u64(); };
  for (int round = 0; round < 2000; ++round) {
    Bytes buf(next_random() % 24);
    for (auto& b : buf) b = static_cast<std::uint8_t>(next_random());
    ByteReader r(buf);
    while (!r.exhausted()) {
      const std::size_t before = r.position();
      try {
        switch (next_random() % 5) {
          case 0: (void)r.u8(); break;
          case 1: (void)r.u32(); break;
          case 2: (void)r.u64(); break;
          case 3: (void)r.fixed64(); break;
          default: (void)r.str(); break;
        }
      } catch (const ContractViolation&) {
        break;  // malformed from here on; this buffer is done
      }
      ASSERT_GT(r.position(), before) << "reads must consume";
      ASSERT_LE(r.position(), buf.size());
    }
  }
}

}  // namespace
}  // namespace svs::util
