// Figure 5: what the buffer size buys, reliable vs semantic.
//
//   Fig 5(a): minimum consumer rate tolerated with <5% producer idle, as a
//             function of buffer size, against the average input rate.
//   Fig 5(b): how long a completely stopped consumer is tolerated before
//             the producer blocks.
//
// Paper reference points: with a reliable protocol the threshold can never
// drop below the average input rate no matter the buffers; with SVS it
// falls below it once buffers give purging room (and approaches the
// never-obsolete floor).  For Fig 5(b) at buffer 24 the paper reports
// 342 ms (reliable) vs 857 ms (semantic) — a ~2.5x gap that should hold in
// shape here.
#include <array>
#include <iostream>
#include <vector>

#include "bench/common.hpp"
#include "bench/json.hpp"
#include "metrics/table.hpp"
#include "workload/game_generator.hpp"

int main() {
  using svs::bench::RunConfig;
  using svs::bench::find_threshold_rate;
  using svs::bench::run_slow_consumer;
  using svs::metrics::Table;

  const svs::bench::WallClock wall;
  svs::bench::JsonArray fig5a_rows;
  svs::bench::JsonArray fig5b_rows;
  svs::workload::GameTraceGenerator::Config gen;

  std::cout << "== Fig 5(a): tolerated consumer threshold (<5% idle) vs "
               "buffer size ==\n\n";
  Table fig5a({"buffer (msg)", "reliable msg/s", "semantic msg/s",
               "avg input msg/s"});
  std::vector<std::array<double, 3>> thresholds;  // buffer, reliable, semantic
  for (const std::size_t buffer : {4u, 8u, 12u, 16u, 20u, 24u, 28u}) {
    gen.batch.k = 4 * buffer;
    const auto trace = svs::workload::GameTraceGenerator(gen).generate(4000);
    RunConfig cfg;
    cfg.trace = &trace;
    cfg.buffer = buffer;

    cfg.purge_receiver = cfg.purge_sender = false;
    const double reliable = find_threshold_rate(cfg);
    cfg.purge_receiver = cfg.purge_sender = true;
    const double semantic = find_threshold_rate(cfg);
    thresholds.push_back({static_cast<double>(buffer), reliable, semantic});

    fig5a.row({Table::num(std::uint64_t{buffer}), Table::num(reliable, 1),
               Table::num(semantic, 1),
               Table::num(trace.stats().avg_rate_msgs_per_sec, 1)});
    fig5a_rows.push(svs::bench::JsonObject()
                        .add("buffer", static_cast<double>(buffer))
                        .add("reliable_threshold", reliable)
                        .add("semantic_threshold", semantic)
                        .add("avg_input_rate",
                             trace.stats().avg_rate_msgs_per_sec));
  }
  fig5a.print(std::cout);

  // The paper derives Fig 5(b) from Fig 5(a): "The difference between the
  // messages being produced and the messages being purged indicates the
  // rate at which buffers fill-up for a given configuration.  From this
  // rate, we can also estimate the maximum length of the perturbation" —
  // i.e. tolerated = total buffering / fill rate, where the fill rate under
  // a full stop equals the threshold rate itself (input minus the purge
  // rate).  We print that estimate and a direct stall measurement.
  std::cout << "\n== Fig 5(b): tolerated full-stop perturbation vs buffer "
               "size ==\n   (paper at buffer 24: reliable 342 ms, semantic "
               "857 ms, ratio 2.5)\n\n";
  Table fig5b({"buffer (msg)", "est. reliable (ms)", "est. semantic (ms)",
               "measured rel (ms)", "measured sem (ms)", "ratio"});
  for (const auto& [buffer_d, rel_thr, sem_thr] : thresholds) {
    const auto buffer = static_cast<std::size_t>(buffer_d);
    gen.batch.k = 4 * buffer;
    const auto trace = svs::workload::GameTraceGenerator(gen).generate(4000);
    RunConfig cfg;
    cfg.trace = &trace;
    cfg.buffer = buffer;
    cfg.consumer_rate = 400.0;   // fast until the stop
    cfg.stop_at_seconds = 30.0;  // well into steady state

    cfg.purge_receiver = cfg.purge_sender = false;
    const auto reliable = run_slow_consumer(cfg);
    cfg.purge_receiver = cfg.purge_sender = true;
    const auto semantic = run_slow_consumer(cfg);

    // Our pipeline buffers 2x`buffer` (delivery queue + outgoing buffer).
    const double total = 2.0 * buffer_d;
    const double est_rel_ms = total / rel_thr * 1000.0;
    const double est_sem_ms = total / sem_thr * 1000.0;
    const double rel_ms =
        reliable.tolerated_seconds.value_or(-0.001) * 1000.0;
    const double sem_ms =
        semantic.tolerated_seconds.value_or(-0.001) * 1000.0;
    fig5b.row({Table::num(std::uint64_t{buffer}), Table::num(est_rel_ms, 0),
               Table::num(est_sem_ms, 0), Table::num(rel_ms, 0),
               Table::num(sem_ms, 0),
               Table::num(rel_ms > 0 ? sem_ms / rel_ms : 0.0)});
    fig5b_rows.push(svs::bench::run_result_json(semantic)
                        .add("buffer", static_cast<double>(buffer))
                        .add("est_reliable_ms", est_rel_ms)
                        .add("est_semantic_ms", est_sem_ms)
                        .add("measured_reliable_ms", rel_ms)
                        .add("measured_semantic_ms", sem_ms));
  }
  fig5b.print(std::cout);
  std::cout << "\n(estimates follow the paper's fill-rate method; measured = "
               "consumer stopped\n at t=30s, time until the producer first "
               "blocks; a negative entry would mean\n it never blocked)\n";

  svs::bench::JsonObject payload;
  payload.add("bench", "fig5_thresholds")
      .add("wall_seconds", wall.seconds())
      .raw("thresholds", fig5a_rows.render())
      .raw("perturbations", fig5b_rows.render());
  svs::bench::write_bench_json("fig5_thresholds", payload);
  return 0;
}
