// View-change cost, reliable vs semantic (§3.3, §5.4 discussion).
//
// "the amount of used buffer space impacts on the latency of the view
//  change protocol, which must wait for all pending messages to be stable"
// and "SVS [...] has no negative impact on the latency of the view change
// protocol" — because purging keeps the agreed pred-view and the flush
// small even with a slow consumer in the group.
//
// A view change is triggered mid-run at various consumer rates; we report
// the initiator's INIT->install latency, the size of the agreed pred-view,
// and how many messages had to be re-sent ("flushed") to the slow member.
#include <iostream>

#include "bench/common.hpp"
#include "bench/json.hpp"
#include "metrics/table.hpp"
#include "workload/game_generator.hpp"

int main() {
  using svs::bench::RunConfig;
  using svs::bench::run_slow_consumer;
  using svs::metrics::Table;

  const svs::bench::WallClock wall;
  svs::bench::JsonArray rows;
  constexpr std::size_t kBuffer = 15;
  svs::workload::GameTraceGenerator::Config gen;
  gen.batch.k = 4 * kBuffer;
  const auto trace = svs::workload::GameTraceGenerator(gen).generate(3000);

  std::cout << "== View change triggered at t=30s, buffer = " << kBuffer
            << " ==\n\n";
  Table table({"consumer msg/s", "protocol", "latency (ms)", "|pred-view|",
               "flushed to slow"});
  for (const int rate : {120, 80, 60, 45, 35}) {
    for (const bool purging : {false, true}) {
      RunConfig cfg;
      cfg.trace = &trace;
      cfg.buffer = kBuffer;
      cfg.consumer_rate = rate;
      cfg.purge_receiver = cfg.purge_sender = purging;
      cfg.view_change_at_seconds = 30.0;
      const auto r = run_slow_consumer(cfg);
      table.row({Table::num(std::uint64_t(rate)),
                 purging ? "semantic" : "reliable",
                 Table::num(r.change_latency_ms.value_or(-1.0)),
                 Table::num(std::uint64_t{r.pred_view_size}),
                 Table::num(r.flushed_at_slow)});
      rows.push(svs::bench::run_result_json(r)
                    .add("protocol", purging ? "semantic" : "reliable")
                    .add("consumer_rate", static_cast<double>(rate))
                    .add("buffer", static_cast<double>(kBuffer)));
    }
  }
  table.print(std::cout);
  std::cout << "\n(|pred-view| is the number of messages agreed for the "
               "closing view; under\n purging it shrinks because obsolete "
               "messages left every buffer before the\n change)\n";

  svs::bench::JsonObject payload;
  payload.add("bench", "view_change")
      .add("wall_seconds", wall.seconds())
      .raw("runs", rows.render());
  svs::bench::write_bench_json("view_change", payload);
  return 0;
}
