// Figure 4: impact of a single slow consumer, reliable vs semantic.
//
//   Fig 4(a): producer idle % as the consumer slows down.
//   Fig 4(b): buffer occupancy at the slow consumer.
//
// Paper reference points (their trace, buffer 15): the reliable protocol
// needs >= 73 msg/s to keep the producer under 5% idle, the semantic one
// only ~28 msg/s.  Absolute thresholds depend on the trace; the shape to
// check is (i) both curves rise as the consumer slows, (ii) the semantic
// threshold sits far below the reliable one, and (iii) between the two
// thresholds the semantic protocol keeps buffers from filling up.
#include <iostream>

#include "bench/common.hpp"
#include "bench/json.hpp"
#include "metrics/table.hpp"
#include "workload/game_generator.hpp"

int main() {
  using svs::bench::JsonArray;
  using svs::bench::JsonObject;
  using svs::bench::RunConfig;
  using svs::bench::run_slow_consumer;
  using svs::metrics::Table;

  svs::workload::GameTraceGenerator::Config gen;
  const svs::bench::WallClock wall;
  JsonArray rows;

  for (const std::size_t buffer : {10u, 15u}) {
    gen.batch.k = 4 * buffer;  // 2x the two-stage pipeline (EXPERIMENTS.md)
    const auto trace = svs::workload::GameTraceGenerator(gen).generate(4000);

    std::cout << "== Fig 4, buffer = " << buffer << " messages (trace: "
              << Table::num(trace.stats().avg_rate_msgs_per_sec)
              << " msg/s avg input) ==\n\n";
    Table table({"consumer msg/s", "idle% reliable", "idle% semantic",
                 "queue reliable", "queue semantic"});

    for (int rate = 140; rate >= 20; rate -= 10) {
      RunConfig cfg;
      cfg.trace = &trace;
      cfg.buffer = buffer;
      cfg.consumer_rate = rate;

      cfg.purge_receiver = cfg.purge_sender = false;
      const auto reliable = run_slow_consumer(cfg);
      cfg.purge_receiver = cfg.purge_sender = true;
      const auto semantic = run_slow_consumer(cfg);

      rows.push(svs::bench::run_result_json(reliable)
                    .add("protocol", "reliable")
                    .add("buffer", static_cast<double>(buffer))
                    .add("consumer_rate", static_cast<double>(rate)));
      rows.push(svs::bench::run_result_json(semantic)
                    .add("protocol", "semantic")
                    .add("buffer", static_cast<double>(buffer))
                    .add("consumer_rate", static_cast<double>(rate)));

      table.row({Table::num(std::uint64_t(rate)),
                 Table::num(100.0 * reliable.idle_fraction),
                 Table::num(100.0 * semantic.idle_fraction),
                 Table::num(reliable.avg_queue, 1),
                 Table::num(semantic.avg_queue, 1)});
    }
    table.print(std::cout);
    std::cout << "\n";
  }
  std::cout << "(idle% = producer blocked by flow control, Fig 4(a); queue = "
               "time-averaged\n delivery-queue occupancy at the slow "
               "consumer in messages, Fig 4(b))\n";

  JsonObject payload;
  payload.add("bench", "fig4_slow_consumer")
      .add("wall_seconds", wall.seconds())
      .raw("runs", rows.render());
  svs::bench::write_bench_json("fig4_slow_consumer", payload);
  return 0;
}
