// Microbenchmarks of the hot paths: simulator events, network hops,
// end-to-end multicast delivery, purging, consensus instances, trace
// generation.
//
// The main() epilogue measures the purge-index win directly and writes it
// to BENCH_micro.json: purge-scan steps per arrival for the indexed
// per-sender path vs the reference full-scan path across queue lengths
// (sub-linear vs linear), plus simulator events per second.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <functional>
#include <memory>
#include <vector>

#include "bench/json.hpp"
#include "consensus/mux.hpp"
#include "core/delivery_queue.hpp"
#include "core/group.hpp"
#include "fd/oracle.hpp"
#include "metrics/stats.hpp"
#include "obs/batch.hpp"
#include "sim/explorer.hpp"
#include "sim/simulator.hpp"
#include "workload/consumer.hpp"
#include "workload/game_generator.hpp"

namespace {

using namespace svs;

void BM_Simulator_ScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    for (int i = 0; i < 1000; ++i) {
      sim.schedule_after(sim::Duration::micros(i), [] {});
    }
    benchmark::DoNotOptimize(sim.run());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_Simulator_ScheduleRun);

class NullPayload final : public core::Payload {
 public:
  [[nodiscard]] std::size_t wire_size() const override { return 8; }
};

void BM_Multicast_EndToEnd(benchmark::State& state) {
  // Cost of one multicast fully delivered to a group of n (events, queue
  // operations, delivery) under the empty relation.
  const auto n = static_cast<std::size_t>(state.range(0));
  sim::Simulator sim;
  core::Group::Config cfg;
  cfg.size = n;
  cfg.node.relation = std::make_shared<obs::EmptyRelation>();
  cfg.auto_membership = false;
  core::Group group(sim, cfg);
  const auto payload = std::make_shared<NullPayload>();
  for (auto _ : state) {
    group.node(0).multicast(payload, obs::Annotation::none());
    sim.run();
    for (std::size_t i = 0; i < n; ++i) {
      while (group.node(i).try_deliver().has_value()) {
      }
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Multicast_EndToEnd)->Arg(3)->Arg(5)->Arg(9);

void BM_Multicast_WithPurging(benchmark::State& state) {
  // Same, but with item-tag purging doing work at every hop (single hot
  // item, bounded queues).
  sim::Simulator sim;
  core::Group::Config cfg;
  cfg.size = 4;
  cfg.node.relation = std::make_shared<obs::ItemTagRelation>();
  cfg.node.delivery_capacity = 16;
  cfg.node.out_capacity = 16;
  cfg.auto_membership = false;
  core::Group group(sim, cfg);
  const auto payload = std::make_shared<NullPayload>();
  for (auto _ : state) {
    group.node(0).multicast(payload, obs::Annotation::item(1));
    sim.run();
    while (group.node(0).try_deliver().has_value()) {
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Multicast_WithPurging);

class IntValue final : public consensus::ValueBase {
 public:
  explicit IntValue(int v) : v_(v) {}
  [[nodiscard]] std::size_t wire_size() const override { return 4; }

 private:
  [[maybe_unused]] int v_;
};

class MuxEndpoint final : public net::Endpoint {
 public:
  explicit MuxEndpoint(net::ProcessId self) : mux(self) {}
  bool on_message(net::ProcessId from, const net::MessagePtr& m,
                  net::Lane) override {
    mux.on_message(from, m);
    return true;
  }
  consensus::Mux mux;
};

void BM_Consensus_Decide(benchmark::State& state) {
  // Full 5-participant Chandra-Toueg instance, propose to decision.
  const std::size_t n = 5;
  sim::Simulator sim;
  net::Network network(sim, {});
  std::vector<std::unique_ptr<MuxEndpoint>> procs;
  std::vector<std::unique_ptr<fd::OracleDetector>> fds;
  std::vector<net::ProcessId> pids;
  for (std::size_t i = 0; i < n; ++i) {
    pids.push_back(net::ProcessId(static_cast<std::uint32_t>(i)));
  }
  for (std::size_t i = 0; i < n; ++i) {
    procs.push_back(std::make_unique<MuxEndpoint>(pids[i]));
    network.attach(pids[i], *procs[i]);
    fds.push_back(std::make_unique<fd::OracleDetector>(
        sim, network, pids[i], sim::Duration::millis(10)));
  }
  std::uint64_t instance = 0;
  for (auto _ : state) {
    ++instance;
    int decided = 0;
    for (std::size_t i = 0; i < n; ++i) {
      auto& inst = procs[i]->mux.open(
          network, *fds[i], consensus::InstanceId(instance), pids,
          [&decided](const consensus::ValuePtr&) { ++decided; });
      inst.propose(std::make_shared<IntValue>(static_cast<int>(i)));
    }
    sim.run();
    if (decided != static_cast<int>(n)) state.SkipWithError("no decision");
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Consensus_Decide);

void BM_ViewChange(benchmark::State& state) {
  // A full view change (INIT -> PRED -> consensus -> install) in a group
  // of 4 with empty queues.
  sim::Simulator sim;
  core::Group::Config cfg;
  cfg.size = 4;
  cfg.node.relation = std::make_shared<obs::EmptyRelation>();
  cfg.auto_membership = false;
  core::Group group(sim, cfg);
  sim.run();
  for (auto _ : state) {
    group.node(0).request_view_change({});
    sim.run();
    for (std::size_t i = 0; i < 4; ++i) {
      while (group.node(i).try_deliver().has_value()) {
      }
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ViewChange);

void BM_TraceGeneration(benchmark::State& state) {
  workload::GameTraceGenerator::Config cfg;
  std::uint64_t seed = 0;
  for (auto _ : state) {
    cfg.seed = ++seed;
    workload::GameTraceGenerator gen(cfg);
    benchmark::DoNotOptimize(gen.generate(1000));
  }
  state.SetItemsProcessed(state.iterations() * 1000);  // rounds
}
BENCHMARK(BM_TraceGeneration);

// ---------------------------------------------------------------------------
// JSON epilogue: the measured refactor wins.
// ---------------------------------------------------------------------------

/// Average covers() examinations per arrival (capacity pre-check + purge)
/// against a steady queue of `length` entries spread over 8 senders, under
/// the k-enumeration relation.  The indexed path is bounded by the bitmap
/// horizon; the reference path scans the whole queue.
double purge_steps_per_arrival(bool indexed, std::size_t length) {
  constexpr std::uint32_t kSenders = 8;
  constexpr std::size_t kHorizon = 16;
  const core::ViewId view{0};
  core::DeliveryQueue queue(std::make_shared<obs::KEnumRelation>(),
                            net::ProcessId(0), nullptr, indexed);
  std::vector<obs::BatchComposer> composers;
  std::vector<std::uint64_t> next_seq(kSenders, 1);
  for (std::uint32_t s = 0; s < kSenders; ++s) {
    composers.emplace_back(
        obs::BatchComposer::Config{obs::AnnotationKind::k_enum, kHorizon, 0});
  }
  std::uint64_t item = 0;
  const auto arrival = [&](std::uint32_t s) {
    const std::uint64_t seq = next_seq[s]++;
    // Every message updates a fresh item, so nothing is ever covered and
    // the queue length stays put — the scan cost is what varies.
    const auto m = std::make_shared<core::DataMessage>(
        net::ProcessId(s), seq, view, composers[s].single(++item, seq),
        nullptr);
    (void)queue.count_victims(*m, view);
    queue.purge_with(m, view);
    queue.push_data(m);
  };
  for (std::uint32_t s = 0; queue.data_count() < length; s = (s + 1) % kSenders) {
    arrival(s);
  }
  const auto before = queue.stats().purge_scan_steps;
  constexpr int kArrivals = 256;
  for (int i = 0; i < kArrivals; ++i) {
    arrival(static_cast<std::uint32_t>(i) % kSenders);
    queue.pop_front();  // hold the length steady
  }
  return static_cast<double>(queue.stats().purge_scan_steps - before) /
         kArrivals;
}

/// Broadcast fan-out cost vs group size: one producer flooding a group of
/// n, full delivery at every member.  On the dense-registry path the cost
/// per destination (send + queue + delivery) must stay flat as n grows —
/// the O(1)-per-destination claim of the flat link table.  Also reports
/// simulator events per multicast (≈ linear in n by construction: n
/// deliveries happen regardless; what must not grow is the *wall cost per
/// destination*).
bench::JsonObject measure_fanout(std::size_t n) {
  sim::Simulator sim;
  core::Group::Config cfg;
  cfg.size = n;
  cfg.node.relation = std::make_shared<obs::EmptyRelation>();
  cfg.auto_membership = false;
  // Stability gossip is all-to-all by design (every member reports to every
  // other); it would put an O(n²)-messages term on top of the O(n) fan-out
  // this micro isolates.  Disabled here; the gossip's own cost is exercised
  // by the figure benches.
  cfg.node.stability_interval = sim::Duration::zero();
  core::Group group(sim, cfg);
  const auto payload = std::make_shared<NullPayload>();
  // Keep total deliveries roughly constant across sizes so every row costs
  // similar wall time.
  const int multicasts = static_cast<int>(96'000 / n);
  const bench::WallClock wall;
  for (int i = 0; i < multicasts; ++i) {
    group.node(0).multicast(payload, obs::Annotation::none());
    sim.run();
    for (std::size_t d = 0; d < n; ++d) {
      while (group.node(d).try_deliver().has_value()) {
      }
    }
  }
  const double seconds = wall.seconds();
  const double destinations =
      static_cast<double>(multicasts) * static_cast<double>(n - 1);
  bench::JsonObject o;
  o.add("group_size", static_cast<double>(n))
      .add("multicasts", static_cast<double>(multicasts))
      .add("wall_seconds", seconds)
      .add("ns_per_destination", seconds * 1e9 / destinations)
      .add("events_per_multicast",
           static_cast<double>(sim.executed()) / multicasts)
      .add("events_per_second",
           seconds > 0.0 ? static_cast<double>(sim.executed()) / seconds
                         : 0.0);
  return o;
}

/// Transport-layer fan-out cost: Network::multicast into accept-all sinks,
/// no protocol above.  Isolates the dense-registry send path — resolving
/// the sender row once and enqueueing per destination must cost the same
/// at n = 64 as at n = 4.
bench::JsonObject measure_net_fanout(std::size_t n) {
  class AcceptAll final : public net::Endpoint {
   public:
    bool on_message(net::ProcessId, const net::MessagePtr&,
                    net::Lane) override {
      return true;
    }
  };
  sim::Simulator sim;
  net::Network network(sim, {});
  std::vector<AcceptAll> sinks(n);
  std::vector<net::ProcessId> pids;
  pids.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    pids.push_back(net::ProcessId(static_cast<std::uint32_t>(i)));
    network.attach(pids[i], sinks[i]);
  }
  const auto m = std::make_shared<core::DataMessage>(
      pids[0], 1, core::ViewId(0), obs::Annotation::none(), nullptr);
  const int multicasts = static_cast<int>(256'000 / n);
  const bench::WallClock wall;
  for (int i = 0; i < multicasts; ++i) {
    network.multicast(pids[0], pids, m, net::Lane::data);
    sim.run();
  }
  const double seconds = wall.seconds();
  const double destinations =
      static_cast<double>(multicasts) * static_cast<double>(n - 1);
  bench::JsonObject o;
  o.add("group_size", static_cast<double>(n))
      .add("multicasts", static_cast<double>(multicasts))
      .add("wall_seconds", seconds)
      .add("ns_per_destination", seconds * 1e9 / destinations);
  return o;
}

/// End-to-end event throughput: a 5-node group flooding multicasts,
/// reported as simulator events per wall second — plus the pool's view of
/// the same loop (hits/misses/bytes recycled), the direct measurement of
/// how much of the hot path escapes the system allocator.
bench::JsonObject measure_events_per_second() {
  const metrics::Stats pool_before = metrics::Stats::snapshot();
  const bench::WallClock wall;
  sim::Simulator sim;
  core::Group::Config cfg;
  cfg.size = 5;
  cfg.node.relation = std::make_shared<obs::EmptyRelation>();
  cfg.auto_membership = false;
  core::Group group(sim, cfg);
  const auto payload = std::make_shared<NullPayload>();
  for (int i = 0; i < 20'000; ++i) {
    group.node(0).multicast(payload, obs::Annotation::none());
    sim.run();
    for (std::size_t n = 0; n < 5; ++n) {
      while (group.node(n).try_deliver().has_value()) {
      }
    }
  }
  const double seconds = wall.seconds();
  const metrics::Stats pool = metrics::Stats::snapshot() - pool_before;
  bench::JsonObject o;
  o.add("multicasts", 20'000.0)
      .add("messages_sent",
           static_cast<double>(group.network().stats().sent))
      .add("sim_events", static_cast<double>(sim.executed()))
      .add("wall_seconds", seconds)
      .add("events_per_second",
           seconds > 0.0 ? static_cast<double>(sim.executed()) / seconds
                         : 0.0)
      .add("pool_hits", static_cast<double>(pool.pool_hits))
      .add("pool_misses", static_cast<double>(pool.pool_misses))
      .add("pool_bytes_recycled", static_cast<double>(pool.bytes_recycled));
  return o;
}

/// Real-socket flood: the multicast_flood loop, but every delivery crosses
/// the kernel as a UDP datagram and comes back through the reliable lane
/// (all-local sync crossing, so the protocol history is bit-identical to
/// the sim backend).  Reports the end-to-end event rate over real sockets
/// plus the lane's own economy: datagrams and ack bytes per multicast, and
/// the encode-once reuse counters.  Loopback loses nothing, so
/// retransmissions stay near zero — the odd one is a scheduling stall
/// outliving the RTO, repaired and counted as a duplicate drop.
bench::JsonObject measure_udp_loopback_flood() {
  constexpr int kMulticasts = 4'000;
  constexpr std::size_t kNodes = 5;
  const bench::WallClock wall;
  sim::Simulator sim;
  core::Group::Config cfg;
  cfg.size = kNodes;
  cfg.backend = core::Group::Backend::udp;
  cfg.node.relation = std::make_shared<obs::EmptyRelation>();
  cfg.auto_membership = false;
  core::Group group(sim, cfg);
  const auto payload = std::make_shared<NullPayload>();
  for (int i = 0; i < kMulticasts; ++i) {
    group.node(0).multicast(payload, obs::Annotation::none());
    sim.run();
    for (std::size_t n = 0; n < kNodes; ++n) {
      while (group.node(n).try_deliver().has_value()) {
      }
    }
  }
  // Drain the shadow wire so the syscall economy covers every multicast:
  // the verdicts were synchronous, but the frames ship in batches behind
  // the crossings and the lane counters settle only at links_idle().
  auto* udp = group.udp();
  const std::int64_t drain = net::UdpTransport::mono_us() + 10'000'000;
  while (!udp->links_idle() && net::UdpTransport::mono_us() < drain) {
    udp->service(1'000);
  }
  const double seconds = wall.seconds();
  const auto lane = udp->lane_stats();
  const double syscalls =
      static_cast<double>(lane.syscalls_sent + lane.syscalls_recvd);
  const double datagrams = static_cast<double>(lane.datagrams_sent);
  bench::JsonObject o;
  o.add("multicasts", static_cast<double>(kMulticasts))
      .add("sim_events", static_cast<double>(sim.executed()))
      .add("wall_seconds", seconds)
      .add("events_per_second",
           seconds > 0.0 ? static_cast<double>(sim.executed()) / seconds
                         : 0.0)
      .add("datagrams_per_multicast",
           static_cast<double>(lane.datagrams_sent) / kMulticasts)
      .add("syscalls_per_multicast", syscalls / kMulticasts)
      .add("datagrams_per_syscall", syscalls > 0.0 ? datagrams / syscalls : 0.0)
      .add("syscalls_sent", static_cast<double>(lane.syscalls_sent))
      .add("syscalls_recvd", static_cast<double>(lane.syscalls_recvd))
      .add("mmsg_sends", static_cast<double>(lane.mmsg_sends))
      .add("mmsg_recvs", static_cast<double>(lane.mmsg_recvs))
      .add("wheel_cascades", static_cast<double>(lane.wheel_cascades))
      .add("datagram_bytes_sent",
           static_cast<double>(lane.datagram_bytes_sent))
      .add("ack_bytes", static_cast<double>(lane.ack_bytes))
      .add("frames_delivered", static_cast<double>(lane.frames_delivered))
      .add("frame_encodes", static_cast<double>(lane.frame_encodes))
      .add("frame_reuses", static_cast<double>(lane.frame_reuses))
      .add("retransmissions", static_cast<double>(lane.retransmissions))
      .add("duplicate_drops", static_cast<double>(lane.duplicate_drops));
  return o;
}

/// Scenario-explorer throughput: full seed-derived fault-injected scenarios
/// (group + consumers + fault plan + SpecChecker + quiescence drive) per
/// wall second, and the simulator event rate achieved inside them.  This is
/// the cost of one unit of model-testing coverage — what bounds how many
/// seeds a CI sweep can afford.
bench::JsonObject measure_explorer_throughput() {
  constexpr std::uint64_t kSeeds = 64;
  sim::ScenarioExplorer explorer;
  std::uint64_t events = 0;
  std::uint64_t deliveries = 0;
  std::uint64_t fault_specs = 0;
  std::uint64_t fault_events = 0;  // measured injector activity
  std::uint64_t violations = 0;
  const bench::WallClock wall;
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    sim::ScenarioSpec spec;
    spec.seed = seed;
    const auto outcome = explorer.run(spec);
    events += outcome.sim_events;
    deliveries += outcome.deliveries;
    fault_specs += outcome.faults_active;
    fault_events += outcome.net_stats.injected_duplicates +
                    outcome.net_stats.injected_drops +
                    outcome.net_stats.injected_pauses;
    violations += outcome.violations.size();
  }
  const double seconds = wall.seconds();
  bench::JsonObject o;
  o.add("scenarios", static_cast<double>(kSeeds))
      .add("fault_specs_scheduled", static_cast<double>(fault_specs))
      .add("fault_events_injected", static_cast<double>(fault_events))
      .add("deliveries", static_cast<double>(deliveries))
      .add("violations", static_cast<double>(violations))
      .add("wall_seconds", seconds)
      .add("scenarios_per_second",
           seconds > 0.0 ? static_cast<double>(kSeeds) / seconds : 0.0)
      .add("events_per_second",
           seconds > 0.0 ? static_cast<double>(events) / seconds : 0.0);
  return o;
}

/// Purge-debt ledger cost under the workload it exists for: a k-enumeration
/// producer cycling three hot items into a group with one slow consumer, so
/// the outgoing buffer backs up and every fresh multicast purges queued
/// predecessors.  Reports how many debts the run recorded, shipped and
/// retired, the exact debt-section wire bytes, and the end-state ledger
/// size (must be zero: debts are GC'd once their covers are stable).
bench::JsonObject measure_stability_debt() {
  constexpr std::size_t kNodes = 4;
  constexpr std::size_t kMessages = 4000;
  const bench::WallClock wall;
  sim::Simulator sim;
  core::Group::Config cfg;
  cfg.size = kNodes;
  cfg.node.relation = std::make_shared<obs::KEnumRelation>();
  // Two delivery slots against three cycling items: the slow consumer's
  // queue holds two of them and refuses the third, so the channel backs up
  // and sender-side purging fires (receiver-side purging alone cannot keep
  // it flowing, unlike the single-item case).
  cfg.node.delivery_capacity = 2;
  cfg.node.out_capacity = 10;
  cfg.auto_membership = false;
  core::Group group(sim, cfg);
  std::vector<std::unique_ptr<workload::InstantConsumer>> instant;
  for (std::size_t i = 0; i + 1 < kNodes; ++i) {
    instant.push_back(
        std::make_unique<workload::InstantConsumer>(sim, group.node(i)));
    instant.back()->start();
  }
  workload::RateConsumer slow(sim, group.node(kNodes - 1), 100.0);
  slow.start();
  obs::BatchComposer composer(
      obs::BatchComposer::Config{obs::AnnotationKind::k_enum, 12, 0});
  std::size_t produced = 0;
  std::size_t peak_own = 0;
  std::function<void()> produce = [&] {
    if (produced >= kMessages) return;
    const auto item = static_cast<std::uint64_t>(produced % 3);
    obs::BatchComposer trial = composer;
    const auto annotation = trial.single(item, group.node(0).next_seq());
    if (group.node(0)
            .multicast(std::make_shared<NullPayload>(), annotation)
            .has_value()) {
      composer = std::move(trial);
      ++produced;
      peak_own =
          std::max(peak_own, group.node(0).stability_ledger().own_debts());
    }
    sim.schedule_after(sim::Duration::micros(500), produce);
  };
  sim.schedule_after(sim::Duration::micros(500), produce);
  const auto deadline = sim::TimePoint::origin() + sim::Duration::seconds(60.0);
  while (sim.now() < deadline && produced < kMessages) {
    sim.run_until(sim.now() + sim::Duration::seconds(1.0));
  }
  if (produced >= kMessages) {
    // Only a finished producer stops rescheduling itself; draining an
    // unfinished one would spin forever — report the degraded counters
    // instead.
    sim.run();  // drain + gossip quiescence
  }
  const double seconds = wall.seconds();
  const auto& stats = group.node(0).stats();
  bench::JsonObject o;
  o.add("multicasts", static_cast<double>(produced))
      .add("purged_outgoing",
           static_cast<double>(group.network().stats().purged_outgoing))
      .add("debts_recorded", static_cast<double>(stats.debts_recorded))
      .add("debts_collected", static_cast<double>(stats.debts_collected))
      .add("debt_entries_gossiped",
           static_cast<double>(stats.debt_entries_gossiped))
      .add("debt_bytes_gossiped",
           static_cast<double>(stats.debt_bytes_gossiped))
      .add("peak_own_debts", static_cast<double>(peak_own))
      .add("end_own_debts",
           static_cast<double>(group.node(0).stability_ledger().own_debts()))
      .add("gossip_bytes_saved",
           static_cast<double>(group.network().stats().gossip_bytes_saved))
      .add("wall_seconds", seconds)
      .add("events_per_second",
           seconds > 0.0 ? static_cast<double>(sim.executed()) / seconds
                         : 0.0);
  return o;
}

/// Steady-state gossip economy (the quiescence measurement): a 6-node
/// group delivers a paced burst, converges, then sits idle for 10 virtual
/// seconds.  With quiescence on, converged members go silent and most
/// standalone rounds during the burst fold into piggybacked frontiers;
/// with it off (the classic fixed cadence, NodeConfig::quiescent = false)
/// every member gossips every interval forever.  Reports idle
/// bytes/member/s both ways, the reduction factor, and the virtual time
/// each mode took to converge after the burst — which must match: silence
/// must not buy latency.
bench::JsonObject measure_steady_state_bytes() {
  constexpr std::size_t kNodes = 6;
  struct Outcome {
    double convergence_ms = -1.0;  // -1 = did not converge (a bug)
    double idle_bytes_per_member_s = 0.0;
    std::uint64_t rounds_suppressed = 0;
    std::uint64_t piggybacks = 0;
  };
  const auto run = [&](bool quiescent) {
    Outcome out;
    sim::Simulator sim;
    core::Group::Config cfg;
    cfg.size = kNodes;
    cfg.node.relation = std::make_shared<obs::EmptyRelation>();
    cfg.node.quiescent = quiescent;
    cfg.auto_membership = false;
    core::Group group(sim, cfg);
    const auto payload = std::make_shared<NullPayload>();
    const auto drain = [&] {
      for (std::size_t n = 0; n < kNodes; ++n) {
        while (group.node(n).try_deliver().has_value()) {
        }
      }
    };
    // Paced burst: one multicast per virtual millisecond.  The classic
    // mode's gossip timer never stops, so the whole measurement runs in
    // bounded run_until slices — never sim.run().
    for (int i = 0; i < 64; ++i) {
      group.node(0).multicast(payload, obs::Annotation::none());
      sim.run_until(sim.now() + sim::Duration::millis(1));
      drain();
    }
    const auto converged = [&] {
      for (std::size_t n = 0; n < kNodes; ++n) {
        const auto& ledger = group.node(n).stability_ledger();
        if (group.node(n).delivered_retained() != 0 ||
            ledger.own_debts() != 0 || ledger.merged_debts() != 0) {
          return false;
        }
      }
      return true;
    };
    const sim::TimePoint burst_end = sim.now();
    const auto deadline = burst_end + sim::Duration::seconds(30.0);
    while (!converged() && sim.now() < deadline) {
      sim.run_until(sim.now() + sim::Duration::millis(10));
      drain();
    }
    if (converged()) {
      out.convergence_ms =
          static_cast<double>((sim.now() - burst_end).as_micros()) / 1000.0;
    }
    // Idle window: the application sends nothing for 10 virtual seconds,
    // so every byte on the wire is background gossip.
    const std::uint64_t bytes_before = group.network().stats().bytes_sent;
    sim.run_until(sim.now() + sim::Duration::seconds(10.0));
    const std::uint64_t idle_bytes =
        group.network().stats().bytes_sent - bytes_before;
    out.idle_bytes_per_member_s =
        static_cast<double>(idle_bytes) / (10.0 * kNodes);
    for (std::size_t n = 0; n < kNodes; ++n) {
      out.rounds_suppressed += group.node(n).stats().gossip_rounds_suppressed;
      out.piggybacks += group.node(n).stats().frontier_piggybacks;
    }
    return out;
  };
  const Outcome on = run(true);
  const Outcome off = run(false);
  bench::JsonObject o;
  o.add("idle_bytes_per_member_s_quiescent", on.idle_bytes_per_member_s)
      .add("idle_bytes_per_member_s_classic", off.idle_bytes_per_member_s)
      // +1 keeps the factor finite when quiescent idle cost is exactly 0.
      .add("idle_reduction_factor",
           off.idle_bytes_per_member_s / (on.idle_bytes_per_member_s + 1.0))
      .add("convergence_ms_quiescent", on.convergence_ms)
      .add("convergence_ms_classic", off.convergence_ms)
      .add("gossip_rounds_suppressed",
           static_cast<double>(on.rounds_suppressed))
      .add("frontier_piggybacks", static_cast<double>(on.piggybacks));
  return o;
}

/// Large-group scaling (n = 256..1024): SWIM failure detection plus
/// ring-aggregated stability digests, measured as (a) a paced flood fully
/// delivered at every member, (b) one complete view change, and (c) a
/// 10-virtual-second idle window in which every byte on the wire is
/// failure-detector probing or stability gossip.  The headline metric is
/// idle_control_bytes_per_member_s: the per-member control cost must stay
/// flat as n quadruples — SWIM probes one peer per period regardless of
/// group size, and the digest ring addresses O(1) successors per round
/// (DESIGN.md §11).  All counters are virtual-time metrics, so they are
/// bit-stable across machines; only the wall fields vary.
bench::JsonObject measure_large_group(std::size_t n) {
  const bench::WallClock wall;
  sim::Simulator sim;
  core::Group::Config cfg;
  cfg.size = n;
  cfg.node.relation = std::make_shared<obs::EmptyRelation>();
  cfg.node.quiescent = true;
  cfg.fd_kind = core::Group::FdKind::swim;
  cfg.swim.seed = 0x516;
  cfg.auto_membership = false;
  core::Group group(sim, cfg);
  const auto payload = std::make_shared<NullPayload>();
  const auto drain = [&] {
    for (std::size_t i = 0; i < n; ++i) {
      while (group.node(i).try_deliver().has_value()) {
      }
    }
  };
  // (a) Paced flood, total deliveries held roughly constant across sizes.
  // The SWIM probe timers never stop, so the whole measurement runs in
  // bounded run_until slices — never sim.run().
  const int multicasts = static_cast<int>(32'768 / n);
  int produced = 0;
  const bench::WallClock flood_wall;
  while (produced < multicasts) {
    if (group.node(0)
            .multicast(payload, obs::Annotation::none())
            .has_value()) {
      ++produced;
    }
    sim.run_until(sim.now() + sim::Duration::millis(1));
    drain();
  }
  sim.run_until(sim.now() + sim::Duration::millis(50));  // flood tail
  drain();
  const double flood_seconds = flood_wall.seconds();

  // (b) One full view change: INIT -> n PREDs -> consensus -> install at
  // every member.
  const auto target = group.node(0).current_view().id().next();
  const auto vc_start = sim.now();
  group.node(0).request_view_change({});
  const auto installed_everywhere = [&] {
    for (std::size_t i = 0; i < n; ++i) {
      if (group.node(i).current_view().id().value() < target.value()) {
        return false;
      }
    }
    return true;
  };
  const auto vc_deadline = sim.now() + sim::Duration::seconds(30.0);
  while (!installed_everywhere() && sim.now() < vc_deadline) {
    sim.run_until(sim.now() + sim::Duration::millis(5));
    drain();
  }
  const bool vc_done = installed_everywhere();
  const double vc_ms =
      static_cast<double>((sim.now() - vc_start).as_micros()) / 1000.0;

  // Let stability settle so the idle window measures the steady state, not
  // the tail of the view change.
  sim.run_until(sim.now() + sim::Duration::seconds(2.0));
  drain();

  // (c) Idle window: the application is silent, so every byte is control
  // traffic (SWIM pings/acks + stability digests/gossip).
  const std::uint64_t bytes_before = group.network().stats().bytes_sent;
  const std::uint64_t sent_before = group.network().stats().sent;
  sim.run_until(sim.now() + sim::Duration::seconds(10.0));
  const std::uint64_t idle_bytes =
      group.network().stats().bytes_sent - bytes_before;
  const std::uint64_t idle_msgs = group.network().stats().sent - sent_before;

  std::uint64_t probes = 0;
  std::uint64_t suspicions = 0;
  std::uint64_t digest_rounds = 0;
  std::uint64_t digest_rows = 0;
  std::uint64_t suppressed = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (const auto* detector = group.swim_detector(i)) {
      probes += detector->counters().probes_sent;
      suspicions += detector->counters().suspicions;
    }
    const auto& stats = group.node(i).stats();
    digest_rounds += stats.digest_rounds;
    digest_rows += stats.digest_rows_sent;
    suppressed += stats.gossip_rounds_suppressed;
  }

  const double seconds = wall.seconds();
  bench::JsonObject o;
  o.add("group_size", static_cast<double>(n))
      .add("multicasts", static_cast<double>(produced))
      .add("flood_wall_seconds", flood_seconds)
      .add("view_change_completed", vc_done ? 1.0 : 0.0)
      .add("view_change_ms", vc_ms)
      .add("idle_control_bytes_per_member_s",
           static_cast<double>(idle_bytes) / (10.0 * static_cast<double>(n)))
      .add("idle_control_msgs_per_member_s",
           static_cast<double>(idle_msgs) / (10.0 * static_cast<double>(n)))
      .add("swim_probes_sent", static_cast<double>(probes))
      .add("swim_suspicions", static_cast<double>(suspicions))  // 0: no faults
      .add("digest_rounds", static_cast<double>(digest_rounds))
      .add("digest_rows_sent", static_cast<double>(digest_rows))
      .add("gossip_rounds_suppressed", static_cast<double>(suppressed))
      .add("sim_events", static_cast<double>(sim.executed()))
      .add("wall_seconds", seconds)
      .add("events_per_second",
           seconds > 0.0 ? static_cast<double>(sim.executed()) / seconds
                         : 0.0);
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  const svs::bench::WallClock wall;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  svs::bench::JsonArray scaling;
  for (const std::size_t length : {64u, 256u, 1024u, 4096u}) {
    scaling.push(svs::bench::JsonObject()
                     .add("queue_length", static_cast<double>(length))
                     .add("indexed_steps_per_arrival",
                          purge_steps_per_arrival(true, length))
                     .add("full_scan_steps_per_arrival",
                          purge_steps_per_arrival(false, length)));
  }
  svs::bench::JsonArray fanout;
  svs::bench::JsonArray net_fanout;
  for (const std::size_t n : {4u, 8u, 16u, 32u, 64u}) {
    fanout.push(measure_fanout(n));
    net_fanout.push(measure_net_fanout(n));
  }
  svs::bench::JsonObject payload;
  payload.add("bench", "micro")
      .raw("purge_scaling", scaling.render())
      .raw("fanout_scaling", fanout.render())
      .raw("net_fanout_scaling", net_fanout.render())
      .raw("multicast_flood", measure_events_per_second().render())
      .raw("udp_loopback_flood", measure_udp_loopback_flood().render())
      .raw("explorer_throughput", measure_explorer_throughput().render())
      .raw("stability_debt", measure_stability_debt().render())
      .raw("steady_state_bytes", measure_steady_state_bytes().render());
  // Keyed sub-objects (not an array) so bench_compare's dotted paths can
  // gate individual sizes, e.g. large_group.n256.idle_control_bytes_per_member_s.
  svs::bench::JsonObject large_group;
  for (const std::size_t n : {256u, 512u, 1024u}) {
    large_group.raw("n" + std::to_string(n),
                    measure_large_group(n).render());
  }
  payload.raw("large_group", large_group.render())
      .add("wall_seconds", wall.seconds());
  // Process-wide suppression/batching telemetry across everything above.
  const svs::metrics::Stats counters = svs::metrics::Stats::snapshot();
  payload.raw("runtime_counters",
              svs::bench::JsonObject()
                  .add("gossip_rounds_suppressed",
                       static_cast<double>(counters.gossip_rounds_suppressed))
                  .add("frontier_piggybacks",
                       static_cast<double>(counters.frontier_piggybacks))
                  .add("frames_batched",
                       static_cast<double>(counters.frames_batched))
                  .add("batch_flushes",
                       static_cast<double>(counters.batch_flushes))
                  .add("syscalls_sent",
                       static_cast<double>(counters.syscalls_sent))
                  .add("syscalls_recvd",
                       static_cast<double>(counters.syscalls_recvd))
                  .add("wheel_cascades",
                       static_cast<double>(counters.wheel_cascades))
                  .render());
  svs::bench::write_bench_json("micro", payload);
  return 0;
}
