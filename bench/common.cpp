#include "bench/common.hpp"

#include <memory>
#include <vector>

#include "bench/json.hpp"

#include "core/group.hpp"
#include "metrics/stats.hpp"
#include "obs/relation.hpp"
#include "util/contracts.hpp"
#include "workload/consumer.hpp"
#include "workload/producer.hpp"

namespace svs::bench {

RunResult run_slow_consumer(const RunConfig& config) {
  SVS_REQUIRE(config.trace != nullptr, "a trace is required");
  SVS_REQUIRE(config.replicas >= 2, "need at least producer + consumer");

  const WallClock wall;
  sim::Simulator sim;
  core::Group::Config cfg;
  cfg.size = config.replicas;
  cfg.node.relation = std::make_shared<obs::KEnumRelation>();
  cfg.node.purge_delivery_queue = config.purge_receiver;
  cfg.node.purge_outgoing = config.purge_sender;
  cfg.node.delivery_capacity = config.buffer;
  cfg.node.out_capacity = config.buffer;
  cfg.auto_membership = false;  // measuring tolerance, not exclusion
  core::Group group(sim, cfg);

  const std::size_t slow = config.replicas - 1;
  std::vector<std::unique_ptr<workload::InstantConsumer>> instant;
  for (std::size_t i = 0; i < slow; ++i) {
    instant.push_back(
        std::make_unique<workload::InstantConsumer>(sim, group.node(i)));
    instant.back()->start();
  }
  workload::RateConsumer consumer(sim, group.node(slow), config.consumer_rate);
  consumer.start();

  workload::TraceProducer producer(sim, group.node(0), *config.trace);
  producer.start();

  // Sample the slow replica's delivery queue and the producer's outgoing
  // buffer towards it every 5 ms — how the paper "observ[es] the amount of
  // buffer used".
  metrics::PeriodicSampler queue_probe(
      sim, sim::Duration::millis(5),
      [&group, slow] {
        return static_cast<double>(group.node(slow).delivery_data_count());
      });
  metrics::PeriodicSampler backlog_probe(
      sim, sim::Duration::millis(5), [&group, slow] {
        return static_cast<double>(
            group.network().data_backlog(group.pid(0), group.pid(slow)));
      });
  queue_probe.start();
  backlog_probe.start();

  RunResult result;

  if (config.view_change_at_seconds.has_value()) {
    sim.schedule_after(
        sim::Duration::seconds(*config.view_change_at_seconds),
        [&group] { group.node(1).request_view_change({}); });
  }

  if (config.stop_at_seconds.has_value()) {
    // Perturbation mode: stop the consumer, poll for the first producer
    // blockage, then end the measurement.
    const auto stop_at = sim::Duration::seconds(*config.stop_at_seconds);
    sim.schedule_after(stop_at, [&consumer] { consumer.stop(); });
    sim.run_until(sim::TimePoint::origin() + stop_at);

    // Poll every millisecond for the blockage.
    const auto stopped_at = sim.now();
    std::optional<sim::TimePoint> blocked_at;
    for (int ms = 1; ms <= 60'000; ++ms) {
      sim.run_until(stopped_at + sim::Duration::millis(ms));
      if (producer.currently_blocked()) {
        blocked_at = sim.now();
        break;
      }
      if (producer.done()) break;
    }
    if (blocked_at.has_value()) {
      result.tolerated_seconds = (*blocked_at - stopped_at).as_seconds();
    }
  } else {
    // The samplers re-arm forever, so run in bounded slices until the
    // producer finished and the slow path drained (plus a safety cap).
    const auto deadline =
        sim::TimePoint::origin() + sim::Duration::seconds(3600.0);
    while (sim.now() < deadline) {
      sim.run_until(sim.now() + sim::Duration::seconds(1.0));
      if (producer.done() &&
          group.node(slow).delivery_queue_length() == 0 &&
          group.network().data_backlog(group.pid(0), group.pid(slow)) == 0) {
        break;
      }
    }
  }

  queue_probe.stop();
  backlog_probe.stop();

  result.idle_fraction = producer.idle_fraction();
  result.avg_queue = queue_probe.series().mean();
  result.max_queue = queue_probe.series().max();
  result.avg_backlog = backlog_probe.series().mean();
  result.max_backlog = backlog_probe.series().max();
  result.purged_receiver = group.node(slow).stats().purged_delivery;
  result.purged_sender = group.network().stats().purged_outgoing;
  result.refused = group.node(slow).stats().refused_data;
  result.producer_done = producer.done();
  result.messages_sent = group.network().stats().sent;
  result.messages_delivered = group.network().stats().delivered;
  result.bytes_sent = group.network().stats().bytes_sent;
  result.bytes_delivered = group.network().stats().bytes_delivered;
  result.bytes_purged = group.network().stats().bytes_purged;
  result.purge_scan_steps =
      group.node(slow).delivery_queue().stats().purge_scan_steps;
  result.sim_events = sim.executed();
  result.wall_seconds = wall.seconds();
  result.events_per_second =
      result.wall_seconds > 0.0
          ? static_cast<double>(result.sim_events) / result.wall_seconds
          : 0.0;

  if (config.view_change_at_seconds.has_value()) {
    const auto& stats = group.node(1).stats();
    if (stats.views_installed > 0) {
      result.change_latency_ms = stats.last_change_latency.as_millis();
      result.pred_view_size = stats.last_flush_total;
      result.flushed_at_slow = group.node(slow).stats().flushed_in;
    }
  }
  return result;
}

JsonObject run_result_json(const RunResult& r) {
  JsonObject o;
  o.add("idle_fraction", r.idle_fraction)
      .add("avg_queue", r.avg_queue)
      .add("max_queue", r.max_queue)
      .add("avg_backlog", r.avg_backlog)
      .add("messages_sent", static_cast<double>(r.messages_sent))
      .add("messages_delivered", static_cast<double>(r.messages_delivered))
      .add("bytes_sent", static_cast<double>(r.bytes_sent))
      .add("bytes_delivered", static_cast<double>(r.bytes_delivered))
      .add("bytes_purged", static_cast<double>(r.bytes_purged))
      .add("purged_receiver", static_cast<double>(r.purged_receiver))
      .add("purged_sender", static_cast<double>(r.purged_sender))
      .add("refused", static_cast<double>(r.refused))
      .add("purge_scan_steps", static_cast<double>(r.purge_scan_steps))
      .add("sim_events", static_cast<double>(r.sim_events))
      .add("events_per_second", r.events_per_second)
      .add("wall_seconds", r.wall_seconds);
  if (r.change_latency_ms.has_value()) {
    o.add("view_change_latency_ms", *r.change_latency_ms)
        .add("pred_view_size", static_cast<double>(r.pred_view_size))
        .add("flushed_at_slow", static_cast<double>(r.flushed_at_slow));
  }
  if (r.tolerated_seconds.has_value()) {
    o.add("tolerated_seconds", *r.tolerated_seconds);
  }
  return o;
}

double find_threshold_rate(const RunConfig& base, double max_idle, double lo,
                           double hi, double precision) {
  // Invariants: hi tolerates (idle <= max_idle), lo does not.  Establish
  // them first, then bisect.
  RunConfig probe = base;
  probe.consumer_rate = hi;
  if (run_slow_consumer(probe).idle_fraction > max_idle) return hi;
  probe.consumer_rate = lo;
  if (run_slow_consumer(probe).idle_fraction <= max_idle) return lo;
  while (hi - lo > precision) {
    const double mid = 0.5 * (lo + hi);
    probe.consumer_rate = mid;
    if (run_slow_consumer(probe).idle_fraction <= max_idle) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

}  // namespace svs::bench
