// Shared experiment runner for the figure benchmarks: the §5.3 simulation
// model — a trace-driven producer, a group of replicas, one slow consumer —
// instrumented for producer idle time, buffer occupancy, purge counts and
// view-change costs.
#pragma once

#include <cstdint>
#include <optional>

#include "bench/json.hpp"
#include "workload/trace.hpp"

namespace svs::bench {

struct RunConfig {
  /// The trace to replay (generate once, reuse across runs).
  const workload::Trace* trace = nullptr;

  std::size_t replicas = 4;
  /// Delivery-queue and outgoing-buffer bound, in messages (the paper's
  /// "buffer size"; each of the two stages gets this bound).
  std::size_t buffer = 15;
  bool purge_receiver = true;  // semantic vs reliable
  bool purge_sender = true;

  /// Consumption rate of the slow replica (msgs/s); the others are instant.
  double consumer_rate = 50.0;

  /// Optional full-stop perturbation: the slow consumer halts at this time
  /// and the run measures how long until the producer blocks.
  std::optional<double> stop_at_seconds;

  /// Optional view change (empty leave set) triggered at this time.
  std::optional<double> view_change_at_seconds;
};

struct RunResult {
  double idle_fraction = 0.0;     // producer blocked share (Fig 4(a)/5(a))
  double avg_queue = 0.0;         // slow replica delivery queue (Fig 4(b))
  double max_queue = 0.0;
  double avg_backlog = 0.0;       // producer's outgoing buffer to the slow one
  double max_backlog = 0.0;
  std::uint64_t purged_receiver = 0;
  std::uint64_t purged_sender = 0;
  std::uint64_t refused = 0;
  bool producer_done = false;

  // Substrate telemetry (the perf-trajectory fields of BENCH_*.json).
  std::uint64_t messages_sent = 0;       // network sends across the group
  std::uint64_t messages_delivered = 0;  // network-level deliveries
  // Measured wire bytes (encoded sizes, codec-checked — see DESIGN.md §6):
  // what the paper's §4.2 compactness argument is actually about.
  std::uint64_t bytes_sent = 0;          // enqueued towards receivers
  std::uint64_t bytes_delivered = 0;     // accepted by receivers
  std::uint64_t bytes_purged = 0;        // reclaimed by sender-side purging
  std::uint64_t purge_scan_steps = 0;    // covers() work at the slow replica
  std::uint64_t sim_events = 0;          // simulator events executed
  double wall_seconds = 0.0;             // host time for the whole run
  double events_per_second = 0.0;        // sim_events / wall_seconds

  // Perturbation measurement (stop_at_seconds set): time from the stop
  // until the producer first blocks; unset if it never blocked.
  std::optional<double> tolerated_seconds;

  // View-change measurement (view_change_at_seconds set).
  std::optional<double> change_latency_ms;   // INIT -> install at initiator
  std::size_t pred_view_size = 0;            // |agreed pred-view|
  std::uint64_t flushed_at_slow = 0;         // messages re-sent to the slow one
};

/// Runs one slow-consumer experiment to completion (or until the
/// perturbation measurement resolves).
RunResult run_slow_consumer(const RunConfig& config);

/// The telemetry fields of one run as a JSON row (benches add their own
/// configuration keys next to these).
JsonObject run_result_json(const RunResult& r);

/// Smallest consumer rate (msg/s) that keeps the producer's idle fraction
/// at or below `max_idle`, found by bisection over [lo, hi] at `precision`
/// msg/s — the "threshold value" of Fig 5(a).
double find_threshold_rate(const RunConfig& base, double max_idle = 0.05,
                           double lo = 2.0, double hi = 200.0,
                           double precision = 1.0);

}  // namespace svs::bench
