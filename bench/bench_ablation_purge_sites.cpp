// Ablation A1: where does purging help — the receiver's delivery queue
// (Figure 1's shaded purge calls), the sender's outgoing buffers (the
// companion technique of [22]), or both?
//
// The paper enables both ("purging to be applied in the delivery queues as
// well as during view changes", plus [22] for the sender side); this
// ablation separates their contributions.
#include <iostream>

#include "bench/common.hpp"
#include "bench/json.hpp"
#include "metrics/table.hpp"
#include "workload/game_generator.hpp"

int main() {
  using svs::bench::RunConfig;
  using svs::bench::find_threshold_rate;
  using svs::bench::run_slow_consumer;
  using svs::metrics::Table;

  const svs::bench::WallClock wall;
  svs::bench::JsonArray rows;
  constexpr std::size_t kBuffer = 15;
  svs::workload::GameTraceGenerator::Config gen;
  gen.batch.k = 4 * kBuffer;
  const auto trace = svs::workload::GameTraceGenerator(gen).generate(4000);

  struct Variant {
    const char* name;
    bool receiver;
    bool sender;
  };
  const Variant variants[] = {
      {"none (reliable)", false, false},
      {"receiver only", true, false},
      {"sender only", false, true},
      {"receiver+sender", true, true},
  };

  std::cout << "== Ablation: purge sites (buffer = " << kBuffer
            << ", trace avg "
            << Table::num(trace.stats().avg_rate_msgs_per_sec)
            << " msg/s) ==\n\n";
  Table table({"purge sites", "threshold msg/s", "idle% @50/s",
               "purged recv", "purged send"});
  for (const auto& v : variants) {
    RunConfig cfg;
    cfg.trace = &trace;
    cfg.buffer = kBuffer;
    cfg.purge_receiver = v.receiver;
    cfg.purge_sender = v.sender;
    const double threshold = find_threshold_rate(cfg);
    cfg.consumer_rate = 50.0;
    const auto at50 = run_slow_consumer(cfg);
    table.row({v.name, Table::num(threshold, 1),
               Table::num(100.0 * at50.idle_fraction),
               Table::num(at50.purged_receiver),
               Table::num(at50.purged_sender)});
    rows.push(svs::bench::run_result_json(at50)
                  .add("purge_sites", v.name)
                  .add("threshold", threshold));
  }
  table.print(std::cout);
  std::cout << "\n(threshold = minimum consumer rate keeping the producer "
               "under 5% idle)\n";

  svs::bench::JsonObject payload;
  payload.add("bench", "ablation_purge_sites")
      .add("buffer", static_cast<double>(kBuffer))
      .add("wall_seconds", wall.seconds())
      .raw("variants", rows.render());
  svs::bench::write_bench_json("ablation_purge_sites", payload);
  return 0;
}
