// Figure 3 + §5.2 in-text statistics: characterisation of the workload.
//
//   Fig 3(a): frequency of item modifications by rank.
//   Fig 3(b): distribution of the distance to the closest related message.
//   Text:     41.88% never obsolete, 42.33 items active, 1.39 modified/round.
//
// The paper measures a recorded Quake session; we measure the calibrated
// synthetic generator (DESIGN.md §4) over the same number of rounds.
#include <algorithm>
#include <iostream>
#include <vector>

#include "bench/json.hpp"
#include "metrics/table.hpp"
#include "workload/game_generator.hpp"

int main() {
  using svs::metrics::Table;

  const svs::bench::WallClock wall;
  svs::workload::GameTraceGenerator::Config cfg;
  cfg.batch.k = 60;
  const auto trace =
      svs::workload::GameTraceGenerator(cfg).generate(11696);  // §5.2 length
  const auto& s = trace.stats();

  std::cout << "== §5.2 trace characterisation (paper vs reproduction) ==\n\n";
  Table header({"metric", "paper", "measured"});
  header.row({"rounds", "11696", Table::num(std::uint64_t{s.rounds})})
      .row({"messages", "(not given)", Table::num(std::uint64_t{s.messages})})
      .row({"avg items active/round", "42.33", Table::num(s.avg_active_items)})
      .row({"avg items modified/round", "1.39",
            Table::num(s.avg_modified_per_round)})
      .row({"never-obsolete share", "41.88%",
            Table::num(100.0 * s.never_obsolete_share) + "%"})
      .row({"avg input rate (msg/s)", "(Fig 5a line)",
            Table::num(s.avg_rate_msgs_per_sec)});
  header.print(std::cout);

  std::cout << "\n== Fig 3(a): % of rounds each item is modified, by rank ==\n"
            << "   (paper: rank 1 at ~22%, long tail towards zero)\n\n";
  std::vector<double> freqs;
  for (const auto& [item, f] : s.modification_frequency) freqs.push_back(f);
  std::sort(freqs.rbegin(), freqs.rend());
  Table fig3a({"item rank", "% of rounds"});
  for (std::size_t r = 0; r < freqs.size() && r < 50; ++r) {
    if (r < 10 || (r + 1) % 5 == 0) {
      fig3a.row({Table::num(std::uint64_t{r + 1}),
                 Table::num(100.0 * freqs[r])});
    }
  }
  fig3a.print(std::cout);

  std::cout << "\n== Fig 3(b): distance to closest related message ==\n"
            << "   (% of obsoleted messages; paper: peak below 5, most "
               "within 10)\n\n";
  Table fig3b({"distance", "% of messages", "cumulative %"});
  double cumulative = 0.0;
  for (std::size_t d = 1; d <= 20; ++d) {
    const auto it = s.distance_histogram.find(d);
    const double share = it == s.distance_histogram.end() ? 0.0 : it->second;
    cumulative += share;
    fig3b.row({Table::num(std::uint64_t{d}), Table::num(100.0 * share),
               Table::num(100.0 * cumulative)});
  }
  fig3b.print(std::cout);
  std::cout << "\n(total beyond distance 20: "
            << Table::num(100.0 * (1.0 - cumulative)) << "%)\n";

  svs::bench::JsonArray distances;
  for (std::size_t d = 1; d <= 20; ++d) {
    const auto it = s.distance_histogram.find(d);
    const double share = it == s.distance_histogram.end() ? 0.0 : it->second;
    distances.push(svs::bench::JsonObject()
                       .add("distance", static_cast<double>(d))
                       .add("share", share));
  }
  svs::bench::JsonObject payload;
  payload.add("bench", "fig3_trace")
      .add("rounds", static_cast<double>(s.rounds))
      .add("messages", static_cast<double>(s.messages))
      .add("avg_active_items", s.avg_active_items)
      .add("avg_modified_per_round", s.avg_modified_per_round)
      .add("never_obsolete_share", s.never_obsolete_share)
      .add("avg_rate_msgs_per_sec", s.avg_rate_msgs_per_sec)
      .raw("distance_histogram", distances.render())
      .add("wall_seconds", wall.seconds());
  svs::bench::write_bench_json("fig3_trace", payload);
  return 0;
}
