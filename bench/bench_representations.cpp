// §4.2: cost of the obsolescence-representation techniques.
//
// "The k-enumeration is not only extremely compact to be stored and
//  transmitted over the network but also makes it very easy to compute the
//  representation of transitive obsolescence relations using only shift and
//  binary 'or' operators."
//
// Measured here: covers() queries, transitive composition, batch commits
// and encoded sizes for item tagging, message enumeration and
// k-enumeration.
#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "bench/json.hpp"
#include "core/message.hpp"
#include "net/codec.hpp"
#include "obs/annotation.hpp"
#include "obs/batch.hpp"
#include "obs/kbitmap.hpp"
#include "obs/relation.hpp"
#include "util/bytes.hpp"
#include "workload/item_op.hpp"

namespace {

using namespace svs;

void BM_KEnum_Covers(benchmark::State& state) {
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  obs::KBitmap bm(k);
  for (std::size_t d = 1; d <= k; d += 3) bm.set(d);
  const auto newer = obs::Annotation::kenum(bm);
  const auto older = obs::Annotation::none();
  const obs::KEnumRelation rel;
  std::uint64_t seq = 1000;
  for (auto _ : state) {
    const obs::MessageRef n{net::ProcessId(1), seq, &newer};
    const obs::MessageRef o{net::ProcessId(1), seq - (seq % k) - 1, &older};
    benchmark::DoNotOptimize(rel.covers(n, o));
    ++seq;
  }
}
BENCHMARK(BM_KEnum_Covers)->Arg(32)->Arg(64)->Arg(256);

void BM_Enumeration_Covers(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<std::uint64_t> seqs;
  for (std::size_t i = 0; i < n; ++i) seqs.push_back(2 * i + 1);
  const auto newer = obs::Annotation::enumerate(seqs);
  const auto older = obs::Annotation::none();
  const obs::EnumerationRelation rel;
  std::uint64_t probe = 0;
  for (auto _ : state) {
    const obs::MessageRef ne{net::ProcessId(1), 10'000, &newer};
    const obs::MessageRef ol{net::ProcessId(1), probe % 9'000, &older};
    benchmark::DoNotOptimize(rel.covers(ne, ol));
    ++probe;
  }
}
BENCHMARK(BM_Enumeration_Covers)->Arg(8)->Arg(64)->Arg(512);

void BM_ItemTag_Covers(benchmark::State& state) {
  const auto a = obs::Annotation::item(7);
  const auto b = obs::Annotation::item(7);
  const obs::ItemTagRelation rel;
  std::uint64_t seq = 2;
  for (auto _ : state) {
    const obs::MessageRef n{net::ProcessId(1), seq, &a};
    const obs::MessageRef o{net::ProcessId(1), seq - 1, &b};
    benchmark::DoNotOptimize(rel.covers(n, o));
    ++seq;
  }
}
BENCHMARK(BM_ItemTag_Covers);

void BM_KEnum_Compose(benchmark::State& state) {
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  obs::KBitmap pred(k);
  for (std::size_t d = 1; d <= k; d += 2) pred.set(d);
  for (auto _ : state) {
    obs::KBitmap bm(k);
    bm.compose(pred, 5);
    benchmark::DoNotOptimize(bm);
  }
}
BENCHMARK(BM_KEnum_Compose)->Arg(32)->Arg(64)->Arg(256)->Arg(1024);

void BM_BatchCommit(benchmark::State& state) {
  // A steady stream of 3-item batches over 100 items.
  const auto repr = static_cast<obs::AnnotationKind>(state.range(0));
  obs::BatchComposer composer({repr, 64, 128});
  std::uint64_t seq = 1;
  std::uint64_t item = 0;
  for (auto _ : state) {
    composer.begin();
    const std::uint64_t a = item % 100, b = (item + 37) % 100,
                        c = (item + 61) % 100;
    composer.add_item(a);
    composer.add_item(b);
    composer.add_item(c);
    composer.note_update_seq(a, seq++);
    composer.note_update_seq(b, seq++);
    benchmark::DoNotOptimize(composer.commit(seq++, c));
    ++item;
  }
}
BENCHMARK(BM_BatchCommit)
    ->Arg(static_cast<int>(obs::AnnotationKind::k_enum))
    ->Arg(static_cast<int>(obs::AnnotationKind::enumeration));

void BM_Annotation_EncodedBytes(benchmark::State& state) {
  // Not a timing benchmark: reports the §4.2 wire-size comparison as
  // counters (bytes per annotation after a realistic commit stream).
  obs::BatchComposer kenum({obs::AnnotationKind::k_enum, 64, 0});
  obs::BatchComposer enumeration({obs::AnnotationKind::enumeration, 0, 128});
  obs::BatchComposer tag({obs::AnnotationKind::item_tag, 0, 0});
  std::uint64_t seq = 1;
  double kenum_bytes = 0, enum_bytes = 0, tag_bytes = 0;
  std::size_t count = 0;
  for (auto _ : state) {
    const std::uint64_t item = seq % 40;
    kenum_bytes += static_cast<double>(kenum.single(item, seq).wire_size());
    enum_bytes +=
        static_cast<double>(enumeration.single(item, seq).wire_size());
    tag_bytes += static_cast<double>(tag.single(item, seq).wire_size());
    ++seq;
    ++count;
  }
  state.counters["kenum_B"] =
      benchmark::Counter(kenum_bytes / static_cast<double>(count));
  state.counters["enum_B"] =
      benchmark::Counter(enum_bytes / static_cast<double>(count));
  state.counters["tag_B"] =
      benchmark::Counter(tag_bytes / static_cast<double>(count));
}
BENCHMARK(BM_Annotation_EncodedBytes);

void BM_Annotation_EncodeDecode(benchmark::State& state) {
  obs::KBitmap bm(64);
  for (std::size_t d = 1; d <= 64; d += 5) bm.set(d);
  const auto ann = obs::Annotation::kenum(bm);
  for (auto _ : state) {
    util::ByteWriter w;
    ann.encode(w);
    util::ByteReader r(w.data());
    benchmark::DoNotOptimize(obs::Annotation::decode(r));
  }
}
BENCHMARK(BM_Annotation_EncodeDecode);

/// The §4.2 wire-size comparison over a realistic commit stream, as JSON.
/// Measured: every annotation is actually encoded and the buffer length
/// counted (the codec asserts wire_size() equals it, so the two agree by
/// contract).
svs::bench::JsonObject annotation_sizes() {
  obs::BatchComposer kenum({obs::AnnotationKind::k_enum, 64, 0});
  obs::BatchComposer enumeration({obs::AnnotationKind::enumeration, 0, 128});
  obs::BatchComposer tag({obs::AnnotationKind::item_tag, 0, 0});
  const auto measured = [](const obs::Annotation& a) {
    util::ByteWriter w;
    a.encode(w);
    return static_cast<double>(w.size());
  };
  double kenum_bytes = 0, enum_bytes = 0, tag_bytes = 0;
  constexpr int kMessages = 10'000;
  for (std::uint64_t seq = 1; seq <= kMessages; ++seq) {
    const std::uint64_t item = seq % 40;
    kenum_bytes += measured(kenum.single(item, seq));
    enum_bytes += measured(enumeration.single(item, seq));
    tag_bytes += measured(tag.single(item, seq));
  }
  svs::bench::JsonObject o;
  o.add("messages", static_cast<double>(kMessages))
      .add("kenum_bytes_per_msg", kenum_bytes / kMessages)
      .add("enumeration_bytes_per_msg", enum_bytes / kMessages)
      .add("item_tag_bytes_per_msg", tag_bytes / kMessages);
  return o;
}

/// Full-message wire cost per representation: the same commit stream as
/// complete DATA messages (header + annotation + ItemOp payload) encoded
/// through net::Codec, bytes counted on the actual buffers.  This is the
/// §4.2 comparison as it lands on the wire, annotation overhead amortized
/// against the rest of the message.
svs::bench::JsonObject measured_message_bytes() {
  struct Rep {
    const char* name;
    obs::BatchComposer composer;
  };
  Rep reps[] = {
      {"kenum", obs::BatchComposer({obs::AnnotationKind::k_enum, 64, 0})},
      {"enumeration",
       obs::BatchComposer({obs::AnnotationKind::enumeration, 0, 128})},
      {"item_tag", obs::BatchComposer({obs::AnnotationKind::item_tag, 0, 0})},
  };
  constexpr int kMessages = 10'000;
  svs::bench::JsonObject o;
  o.add("messages", static_cast<double>(kMessages));
  for (auto& rep : reps) {
    std::uint64_t bytes = 0;
    for (std::uint64_t seq = 1; seq <= kMessages; ++seq) {
      const std::uint64_t item = seq % 40;
      const core::DataMessage m(
          net::ProcessId(1), seq, core::ViewId(1),
          rep.composer.single(item, seq),
          std::make_shared<workload::ItemOp>(workload::OpKind::update, item,
                                             seq * 7, seq, true));
      const util::Bytes frame = net::Codec::encode(m);
      bytes += frame.size();
    }
    o.add(std::string(rep.name) + "_total_bytes", static_cast<double>(bytes))
        .add(std::string(rep.name) + "_bytes_per_msg",
             static_cast<double>(bytes) / kMessages);
  }
  return o;
}

/// Wire cost of the stability gossip's purge-debt sections: the same
/// StabilityMessage encoded through net::Codec with growing debt ledgers,
/// bytes counted on the actual buffers.  This is the price of making
/// purges wire facts — what the unified GC costs the control lane.
svs::bench::JsonObject stability_debt_bytes() {
  const core::StabilityMessage::Seen seen{{net::ProcessId(0), 900},
                                          {net::ProcessId(1), 850},
                                          {net::ProcessId(2), 910},
                                          {net::ProcessId(3), 899}};
  svs::bench::JsonArray rows;
  for (const std::size_t debts : {0u, 2u, 8u, 32u, 128u}) {
    core::StabilityMessage::Debts ledger;
    ledger.reserve(debts);
    // Realistic shape: purged seqs trail the frontier, covers a few ahead.
    for (std::size_t i = 0; i < debts; ++i) {
      const std::uint64_t seq = 700 + i * 3;
      ledger.push_back(core::PurgeDebt{seq, seq + 2 + i % 5});
    }
    const core::StabilityMessage m(core::ViewId(3), 640, seen, ledger);
    const util::Bytes frame = net::Codec::encode(m);
    rows.push(svs::bench::JsonObject()
                  .add("debt_entries", static_cast<double>(debts))
                  .add("message_bytes", static_cast<double>(frame.size()))
                  .add("bytes_per_debt",
                       debts == 0 ? 0.0
                                  : static_cast<double>(
                                        frame.size() -
                                        core::StabilityMessage(
                                            core::ViewId(3), 640, seen, {})
                                            .wire_size()) /
                                        static_cast<double>(debts)));
  }
  svs::bench::JsonObject o;
  o.raw("rows", rows.render());
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  const svs::bench::WallClock wall;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  svs::bench::JsonObject payload;
  payload.add("bench", "representations")
      .raw("annotation_sizes", annotation_sizes().render())
      .raw("measured_message_bytes", measured_message_bytes().render())
      .raw("stability_debt", stability_debt_bytes().render())
      .add("wall_seconds", wall.seconds());
  svs::bench::write_bench_json("representations", payload);
  return 0;
}
