// Multi-group shard scaling: many independent SVS groups placed across
// worker threads by runtime::ShardedRunner (DESIGN.md §8).
//
// One group is inherently serial (one event loop, thread-confined state);
// the scaling axis is running *many* groups, one shard per core.  This
// bench floods kGroups five-node groups (the bench_micro multicast_flood
// workload, split across groups) under 1/2/4/8 shards and reports:
//
//   * aggregate wall-clock events/s — honest on this machine, i.e. it only
//     exceeds the 1-shard number when the box actually has spare cores;
//   * projected-parallel events/s = total events / max per-shard CPU time
//     — the critical path if every shard had its own core.  CPU time (not
//     wall) excludes time-slicing, so this is the machine-independent
//     scaling signal even when shards outnumber cores (shards share no
//     state, so nothing else serializes them);
//   * per-shard byte counters, whose sum is placement-invariant (equal
//     across every shard count — checked here and in tests/shard_test.cpp).
//
// Usage: bench_shard_scaling [multicasts_per_group]   (default 150)
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/json.hpp"
#include "core/group.hpp"
#include "obs/relation.hpp"
#include "runtime/shard.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace svs;

constexpr std::uint32_t kGroups = 128;
constexpr std::size_t kGroupSize = 5;

class NullPayload final : public core::Payload {
 public:
  [[nodiscard]] std::size_t wire_size() const override { return 8; }
};

/// One shard's work: flood each group key placed on it.  Every group owns
/// its simulator and transport, so the workload per key is identical no
/// matter which shard (or how many shards) runs it.
runtime::ShardReport flood_shard(std::span<const std::uint64_t> keys,
                                 int multicasts_per_group) {
  runtime::ShardReport report;
  for ([[maybe_unused]] const std::uint64_t key : keys) {
    sim::Simulator sim;
    core::Group::Config cfg;
    cfg.size = kGroupSize;
    cfg.node.relation = std::make_shared<obs::EmptyRelation>();
    cfg.auto_membership = false;
    core::Group group(sim, cfg);
    const auto payload = std::make_shared<NullPayload>();
    for (int i = 0; i < multicasts_per_group; ++i) {
      group.node(0).multicast(payload, obs::Annotation::none());
      sim.run();
      for (std::size_t n = 0; n < kGroupSize; ++n) {
        while (group.node(n).try_deliver().has_value()) {
          ++report.deliveries;
        }
      }
    }
    report.net += group.network().stats();
    report.sim_events += sim.executed();
  }
  return report;
}

}  // namespace

int main(int argc, char** argv) {
  const int multicasts_per_group = argc > 1 ? std::atoi(argv[1]) : 150;
  const unsigned cores = std::thread::hardware_concurrency();

  std::vector<std::uint64_t> keys;
  for (std::uint64_t g = 0; g < kGroups; ++g) keys.push_back(g);

  std::printf("shard scaling: %u groups x %zu nodes, %d multicasts/group\n",
              kGroups, kGroupSize, multicasts_per_group);
  std::printf("  (hardware_concurrency = %u)\n\n", cores);
  std::printf("%7s %12s %12s %16s %16s %10s\n", "shards", "wall_s",
              "max_cpu_s", "agg_events/s", "projected_ev/s", "speedup");

  bench::WallClock clock;
  bench::JsonArray rows;
  std::uint64_t reference_bytes_sent = 0;
  double reference_projected = 0.0;
  bool bytes_invariant = true;

  for (const std::uint32_t shards : {1u, 2u, 4u, 8u}) {
    runtime::ShardedRunner runner({.shards = shards});
    const auto report = runner.run(
        keys, [&](std::uint32_t, std::span<const std::uint64_t> mine) {
          return flood_shard(mine, multicasts_per_group);
        });

    const double aggregate =
        static_cast<double>(report.sim_events) / report.wall_seconds;
    const double projected = report.max_shard_cpu_seconds > 0
                                 ? static_cast<double>(report.sim_events) /
                                       report.max_shard_cpu_seconds
                                 : 0.0;
    if (shards == 1) reference_projected = projected;
    const double speedup =
        reference_projected > 0 ? projected / reference_projected : 0.0;
    std::printf("%7u %12.3f %12.3f %16.0f %16.0f %9.2fx\n", shards,
                report.wall_seconds, report.max_shard_cpu_seconds, aggregate,
                projected, speedup);

    if (reference_bytes_sent == 0) reference_bytes_sent = report.net.bytes_sent;
    if (report.net.bytes_sent != reference_bytes_sent) bytes_invariant = false;

    bench::JsonArray per_shard;
    for (std::size_t s = 0; s < report.shards.size(); ++s) {
      const auto& shard = report.shards[s];
      per_shard.push(bench::JsonObject{}
                         .add("shard", static_cast<double>(s))
                         .add("sim_events",
                              static_cast<double>(shard.sim_events))
                         .add("busy_seconds", shard.busy_seconds)
                         .add("cpu_seconds", shard.cpu_seconds)
                         .add("sent", static_cast<double>(shard.net.sent))
                         .add("delivered",
                              static_cast<double>(shard.net.delivered))
                         .add("bytes_sent",
                              static_cast<double>(shard.net.bytes_sent)));
    }
    rows.push(
        bench::JsonObject{}
            .add("shards", static_cast<double>(shards))
            .add("wall_seconds", report.wall_seconds)
            .add("max_shard_busy_seconds", report.max_shard_busy_seconds)
            .add("max_shard_cpu_seconds", report.max_shard_cpu_seconds)
            .add("sim_events", static_cast<double>(report.sim_events))
            .add("deliveries", static_cast<double>(report.deliveries))
            .add("aggregate_events_per_second", aggregate)
            .add("projected_parallel_events_per_second", projected)
            .add("projected_speedup_vs_one_shard", speedup)
            .add("bytes_sent", static_cast<double>(report.net.bytes_sent))
            .add("bytes_delivered",
                 static_cast<double>(report.net.bytes_delivered))
            .raw("per_shard", per_shard.render()));
  }

  std::printf("\nbyte counters placement-invariant across shard counts: %s\n",
              bytes_invariant ? "yes" : "NO (BUG)");

  bench::JsonObject payload;
  payload.add("groups", static_cast<double>(kGroups))
      .add("group_size", static_cast<double>(kGroupSize))
      .add("multicasts_per_group", static_cast<double>(multicasts_per_group))
      .add("hardware_concurrency", static_cast<double>(cores))
      .add("bytes_invariant", bytes_invariant)
      .raw("scaling", rows.render())
      .add("wall_time_seconds", clock.seconds());
  bench::write_bench_json("shard_scaling", payload);

  return bytes_invariant ? 0 : 1;
}
