// Ablation A2: the k-enumeration horizon (§4.2/§5.2).
//
// The paper picks "k equal to twice the buffer size" without exploring the
// choice.  This sweep shows why the horizon must span what can be buffered
// along the path (receiver queue + outgoing buffer): too small a k makes
// covering bits fall off the bitmap and purging fades out; beyond the
// pipeline span, extra horizon buys nothing but wire bytes.
#include <iostream>

#include "bench/common.hpp"
#include "bench/json.hpp"
#include "metrics/table.hpp"
#include "obs/kbitmap.hpp"
#include "workload/game_generator.hpp"

int main() {
  using svs::bench::RunConfig;
  using svs::bench::find_threshold_rate;
  using svs::metrics::Table;

  const svs::bench::WallClock wall;
  svs::bench::JsonArray rows;
  constexpr std::size_t kBuffer = 15;  // pipeline = 2 * 15 = 30 messages

  std::cout << "== Ablation: k-enum horizon at buffer = " << kBuffer
            << " (pipeline spans 2x" << kBuffer << " = 30) ==\n\n";
  Table table({"k", "bitmap bytes", "semantic threshold msg/s"});
  for (const std::size_t k : {4u, 8u, 15u, 30u, 60u, 120u, 240u}) {
    svs::workload::GameTraceGenerator::Config gen;
    gen.batch.k = k;
    const auto trace = svs::workload::GameTraceGenerator(gen).generate(4000);
    RunConfig cfg;
    cfg.trace = &trace;
    cfg.buffer = kBuffer;
    const double threshold = find_threshold_rate(cfg);
    table.row({Table::num(std::uint64_t{k}),
               Table::num(std::uint64_t{svs::obs::KBitmap(k).wire_size()}),
               Table::num(threshold, 1)});
    rows.push(svs::bench::JsonObject()
                  .add("k", static_cast<double>(k))
                  .add("bitmap_bytes",
                       static_cast<double>(svs::obs::KBitmap(k).wire_size()))
                  .add("semantic_threshold", threshold));
  }
  table.print(std::cout);
  std::cout << "\n(the reliable baseline's threshold is the k=0 limit; "
               "thresholds bottom out\n once k covers the buffered pipeline, "
               "matching §5.2's k = 2x rule of thumb)\n";

  svs::bench::JsonObject payload;
  payload.add("bench", "ablation_k")
      .add("buffer", static_cast<double>(kBuffer))
      .add("wall_seconds", wall.seconds())
      .raw("sweep", rows.render());
  svs::bench::write_bench_json("ablation_k", payload);
  return 0;
}
