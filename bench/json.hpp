// Minimal machine-readable output for the bench binaries.
//
// Every bench_* writes a BENCH_<name>.json next to its working directory so
// successive PRs can diff the perf trajectory (messages sent/purged,
// view-change latency, purge-scan work, events per second, wall time)
// without scraping the human-readable tables.
#pragma once

#include <chrono>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace svs::bench {

inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

inline std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  std::ostringstream os;
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    os << static_cast<std::int64_t>(v);
  } else {
    os.precision(12);
    os << v;
  }
  return os.str();
}

/// Order-preserving JSON object builder.
class JsonObject {
 public:
  JsonObject& add(const std::string& key, double v) {
    return raw(key, json_number(v));
  }
  JsonObject& add(const std::string& key, bool v) {
    return raw(key, v ? "true" : "false");
  }
  JsonObject& add(const std::string& key, const std::string& v) {
    std::string quoted;
    quoted.reserve(v.size() + 2);
    quoted.push_back('"');
    quoted += json_escape(v);
    quoted.push_back('"');
    return raw(key, std::move(quoted));
  }
  JsonObject& add(const std::string& key, const char* v) {
    return add(key, std::string(v));
  }
  JsonObject& raw(const std::string& key, std::string rendered) {
    fields_.emplace_back(key, std::move(rendered));
    return *this;
  }

  [[nodiscard]] std::string render() const {
    // Appended piecewise: chained operator+ on temporaries trips GCC 12's
    // -Wrestrict false positive once inlined (breaks the -Werror CI job).
    std::string out = "{";
    for (std::size_t i = 0; i < fields_.size(); ++i) {
      if (i != 0) out += ", ";
      out.push_back('"');
      out += json_escape(fields_[i].first);
      out += "\": ";
      out += fields_[i].second;
    }
    out.push_back('}');
    return out;
  }

 private:
  std::vector<std::pair<std::string, std::string>> fields_;
};

class JsonArray {
 public:
  JsonArray& push(const JsonObject& o) {
    items_.push_back(o.render());
    return *this;
  }
  JsonArray& push_raw(std::string rendered) {
    items_.push_back(std::move(rendered));
    return *this;
  }

  [[nodiscard]] std::string render() const {
    std::string out = "[";
    for (std::size_t i = 0; i < items_.size(); ++i) {
      if (i != 0) out += ", ";
      out += items_[i];
    }
    out.push_back(']');
    return out;
  }

 private:
  std::vector<std::string> items_;
};

/// Wall-clock stopwatch for the mandatory wall_time_seconds field.
class WallClock {
 public:
  WallClock() : start_(std::chrono::steady_clock::now()) {}
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Build provenance for the `meta` key: which commit, compiler and flags
/// produced a JSON (committed baselines are meaningless without it).  The
/// macros come from CMake (target_compile_definitions on svs_bench_common);
/// each degrades to "unknown" when absent so ad-hoc compiles still build.
inline std::string bench_meta_json() {
  JsonObject meta;
#ifdef SVS_BENCH_GIT_SHA
  meta.add("git_sha", SVS_BENCH_GIT_SHA);
#else
  meta.add("git_sha", "unknown");
#endif
#ifdef __VERSION__
  meta.add("compiler", __VERSION__);
#else
  meta.add("compiler", "unknown");
#endif
#ifdef SVS_BENCH_BUILD_TYPE
  meta.add("build_type", SVS_BENCH_BUILD_TYPE);
#else
  meta.add("build_type", "unknown");
#endif
#ifdef SVS_BENCH_CXX_FLAGS
  meta.add("cxx_flags", SVS_BENCH_CXX_FLAGS);
#else
  meta.add("cxx_flags", "unknown");
#endif
  return meta.render();
}

/// Writes BENCH_<name>.json (overwriting) and notes the path on stdout.
/// Appends the `meta` provenance key; the caller's sections keep their
/// names and order, so existing JSON diffing stays valid.
inline void write_bench_json(const std::string& name,
                             const JsonObject& payload) {
  JsonObject stamped = payload;
  stamped.raw("meta", bench_meta_json());
  std::string path = "BENCH_";
  path += name;
  path += ".json";
  std::ofstream out(path);
  out << stamped.render() << "\n";
  std::cout << "\n[json] wrote " << path << "\n";
}

}  // namespace svs::bench
