// The paper's motivating scenario (§1, §5): a multi-player game server
// replicated primary-backup over SVS.
//
// A synthetic Quake-like trace drives the primary; three backups apply the
// delivered stream to replicated item tables.  One backup is slow — it can
// only consume 45 msg/s while the game produces ~62 msg/s — yet with
// semantic purging the producer is never throttled and all replicas hold
// identical state.
//
// Run: build/examples/game_replication
#include <cstdio>
#include <memory>
#include <vector>

#include "app/item_table.hpp"
#include "core/group.hpp"
#include "workload/consumer.hpp"
#include "workload/game_generator.hpp"
#include "workload/producer.hpp"

int main() {
  using namespace svs;

  constexpr std::size_t kReplicas = 4;
  constexpr std::size_t kBuffer = 15;     // messages (delivery + outgoing)
  constexpr double kSlowRate = 45.0;      // msg/s at the slow backup

  sim::Simulator sim;

  // 1. Generate the game session (the paper records 11696 rounds; 3000 is
  //    plenty to reach steady state here).
  workload::GameTraceGenerator::Config gen;
  // §5.2 sets k to twice the buffering a message can sit behind; here the
  // path buffers up to 2*kBuffer messages (delivery queue + outgoing
  // buffer), hence 4x.  See EXPERIMENTS.md.
  gen.batch.k = 4 * kBuffer;
  const auto trace = workload::GameTraceGenerator(gen).generate(3000);
  std::printf("trace: %zu messages in %.0f s (%.1f msg/s, %.1f%% never "
              "obsolete)\n",
              trace.stats().messages, trace.stats().duration_seconds,
              trace.stats().avg_rate_msgs_per_sec,
              100.0 * trace.stats().never_obsolete_share);

  // 2. Wire the replicated server.
  core::Group::Config cfg;
  cfg.size = kReplicas;
  cfg.node.relation = std::make_shared<obs::KEnumRelation>();
  cfg.node.delivery_capacity = kBuffer;
  cfg.node.out_capacity = kBuffer;
  core::Group group(sim, cfg);

  std::vector<app::ItemTable> tables(kReplicas);
  std::vector<std::unique_ptr<workload::InstantConsumer>> fast;
  for (std::size_t i = 0; i + 1 < kReplicas; ++i) {
    fast.push_back(std::make_unique<workload::InstantConsumer>(
        sim, group.node(i)));
    fast.back()->set_sink(
        [t = &tables[i]](const core::Delivery& d) { t->apply(d); });
    fast.back()->start();
  }
  workload::RateConsumer slow(sim, group.node(kReplicas - 1), kSlowRate);
  slow.set_sink(
      [t = &tables[kReplicas - 1]](const core::Delivery& d) { t->apply(d); });
  slow.start();

  // 3. The primary executes client requests and disseminates updates.
  workload::TraceProducer producer(sim, group.node(0), trace);
  producer.start();
  sim.run();

  // 4. Drain the tail and report.
  for (std::size_t i = 0; i < kReplicas; ++i) {
    for (const auto& d : group.drain(i)) tables[i].apply(d);
  }

  const auto& slow_node = group.node(kReplicas - 1);
  std::printf("\nprimary: sent %zu messages, idle %.2f%% of the time\n",
              producer.sent(), 100.0 * producer.idle_fraction());
  std::printf("slow backup: consumed %llu deliveries, purged %llu in its "
              "queue, %llu more in the primary's outgoing buffer\n",
              static_cast<unsigned long long>(tables[kReplicas - 1]
                                                  .ops_applied()),
              static_cast<unsigned long long>(
                  slow_node.stats().purged_delivery),
              static_cast<unsigned long long>(
                  group.network().stats().purged_outgoing));

  std::printf("\nreplica state digests:\n");
  for (std::size_t i = 0; i < kReplicas; ++i) {
    std::printf("  replica %zu: %016llx (%zu items, %llu ops applied)%s\n", i,
                static_cast<unsigned long long>(tables[i].digest()),
                tables[i].size(),
                static_cast<unsigned long long>(tables[i].ops_applied()),
                tables[i].digest() == tables[0].digest() ? "  [match]"
                                                         : "  [MISMATCH]");
  }
  std::printf("\nThe slow backup applied fewer operations (obsolete updates "
              "were purged)\nbut converged to the same state — that is "
              "Semantic View Synchrony.\n");
  return 0;
}
