// Perturbation tolerance, reliable vs semantic (the mechanism behind
// Figures 4(a) and 5(b)).
//
// The same game trace is replayed twice with the same buffers: once with a
// classic reliable protocol (no purging) and once with SVS.  A backup stops
// consuming for 400 ms in the middle of the run — the kind of transient
// "performance perturbation" (GC pause, disk stall, scheduling glitch) the
// paper argues groups must survive without reconfiguring.
//
// Run: build/examples/perturbation_tolerance
#include <cstdio>
#include <memory>
#include <vector>

#include "core/group.hpp"
#include "workload/consumer.hpp"
#include "workload/game_generator.hpp"
#include "workload/producer.hpp"

namespace {

struct Outcome {
  double idle_pct;
  unsigned long long purged;
  unsigned long long refused;
};

Outcome run(bool purging, const svs::workload::Trace& trace) {
  using namespace svs;
  constexpr std::size_t kBuffer = 20;

  sim::Simulator sim;
  core::Group::Config cfg;
  cfg.size = 4;
  cfg.node.relation = std::make_shared<obs::KEnumRelation>();
  cfg.node.purge_delivery_queue = purging;
  cfg.node.purge_outgoing = purging;
  cfg.node.delivery_capacity = kBuffer;
  cfg.node.out_capacity = kBuffer;
  core::Group group(sim, cfg);

  std::vector<std::unique_ptr<workload::InstantConsumer>> fast;
  for (std::size_t i = 0; i < 3; ++i) {
    fast.push_back(
        std::make_unique<workload::InstantConsumer>(sim, group.node(i)));
    fast.back()->start();
  }
  // The perturbed backup is otherwise fast (500 msg/s).
  workload::RateConsumer victim(sim, group.node(3), 500.0);
  victim.start();

  workload::TraceProducer producer(sim, group.node(0), trace);
  producer.start();

  // A full one-second stop, twice.  With ~62 msg/s of input and 2x20
  // messages of buffering, a reliable protocol is exhausted after ~650 ms;
  // purging stretches that well past a second (Fig 5(b)).
  for (const double at : {10.0, 20.0}) {
    sim.schedule_after(sim::Duration::seconds(at), [&] { victim.stop(); });
    sim.schedule_after(sim::Duration::seconds(at + 1.0),
                       [&] { victim.resume(); });
  }
  sim.run();

  return Outcome{
      100.0 * producer.idle_fraction(),
      static_cast<unsigned long long>(
          group.node(3).stats().purged_delivery +
          group.network().stats().purged_outgoing),
      static_cast<unsigned long long>(group.node(3).stats().refused_data)};
}

}  // namespace

int main() {
  svs::workload::GameTraceGenerator::Config gen;
  gen.batch.k = 80;  // 2x the 40-message pipeline (see EXPERIMENTS.md)
  const auto trace = svs::workload::GameTraceGenerator(gen).generate(900);
  std::printf("trace: %.1f msg/s average input rate\n\n",
              trace.stats().avg_rate_msgs_per_sec);

  const auto reliable = run(false, trace);
  const auto semantic = run(true, trace);

  std::printf("%-10s  %12s  %10s  %10s\n", "protocol", "producer idle",
              "purged", "refusals");
  std::printf("%-10s  %11.2f%%  %10llu  %10llu\n", "reliable",
              reliable.idle_pct, reliable.purged, reliable.refused);
  std::printf("%-10s  %11.2f%%  %10llu  %10llu\n", "semantic",
              semantic.idle_pct, semantic.purged, semantic.refused);
  std::printf("\nWith the same buffers, purging absorbs the stop-the-world "
              "pauses that\nstall the reliable protocol's producer (compare "
              "Fig 5(b) in the paper).\n");
  return 0;
}
