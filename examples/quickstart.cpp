// Quickstart: a three-member SVS group exchanging item updates.
//
// Shows the essential API surface:
//   * core::Group wires simulator + network + failure detectors + nodes;
//   * Node::multicast(payload, annotation) sends; the annotation tells the
//     protocol which earlier messages the new one makes obsolete;
//   * Node::try_deliver() pulls data messages and view notifications;
//   * a slow member's queue purges obsolete updates instead of filling up.
//
// Run: build/examples/quickstart
#include <cstdio>
#include <memory>

#include "core/group.hpp"
#include "obs/relation.hpp"
#include "sim/simulator.hpp"

namespace {

/// A tiny payload: the new value of one item.
class ItemValue final : public svs::core::Payload {
 public:
  ItemValue(int item, int value) : item_(item), value_(value) {}
  [[nodiscard]] int item() const { return item_; }
  [[nodiscard]] int value() const { return value_; }
  [[nodiscard]] std::size_t wire_size() const override { return 8; }

 private:
  int item_;
  int value_;
};

void drain_and_print(const char* who, svs::core::Group& group, std::size_t i) {
  std::printf("%s delivers:", who);
  for (const auto& d : group.drain(i)) {
    if (const auto* data = std::get_if<svs::core::DataDelivery>(&d)) {
      const auto v =
          std::static_pointer_cast<const ItemValue>(data->message->payload());
      std::printf("  item%d=%d", v->item(), v->value());
    } else if (const auto* view = std::get_if<svs::core::ViewDelivery>(&d)) {
      std::printf("  [view v%llu, %zu members]",
                  static_cast<unsigned long long>(view->view.id().value()),
                  view->view.size());
    } else {
      std::printf("  [excluded]");
    }
  }
  std::printf("\n");
}

}  // namespace

int main() {
  svs::sim::Simulator sim;

  // A group of three processes using item-tag obsolescence: a newer update
  // of the same item makes the older one obsolete (§4.2, item tagging).
  svs::core::Group::Config cfg;
  cfg.size = 3;
  cfg.node.relation = std::make_shared<svs::obs::ItemTagRelation>();
  svs::core::Group group(sim, cfg);

  // Process p0 updates item 1 five times and item 2 once.  Nobody consumes
  // yet, so the five updates of item 1 collapse to the newest in every
  // delivery queue.
  for (int v = 1; v <= 5; ++v) {
    group.node(0).multicast(std::make_shared<ItemValue>(1, v * 10),
                            svs::obs::Annotation::item(1));
    sim.run();  // let the update propagate before sending the next
  }
  group.node(0).multicast(std::make_shared<ItemValue>(2, 7),
                          svs::obs::Annotation::item(2));
  sim.run();

  std::printf("after five updates of item1 and one of item2 (purging!):\n");
  drain_and_print("  p1", group, 1);
  drain_and_print("  p2", group, 2);
  std::printf("  p1 purged %llu obsolete updates in its queue\n",
              static_cast<unsigned long long>(
                  group.node(1).stats().purged_delivery));

  // Membership is dynamic: p2 leaves; the survivors install view v1.
  group.node(2).request_view_change({group.pid(2)});
  sim.run();
  group.node(0).multicast(std::make_shared<ItemValue>(1, 99),
                          svs::obs::Annotation::item(1));
  sim.run();

  std::printf("after p2 leaves and p0 updates item1 again:\n");
  drain_and_print("  p0", group, 0);
  drain_and_print("  p1", group, 1);
  drain_and_print("  p2", group, 2);
  return 0;
}
