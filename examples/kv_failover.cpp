// Primary-backup replicated key-value store with fail-over (§4's usage
// pattern as an application).
//
// The primary replicates single writes and atomic multi-key transactions;
// when it crashes, the failure detector triggers a view change, the next
// replica finds itself primary in the new view and keeps serving — with the
// exact state the group agreed on at the view boundary.
//
// Run: build/examples/kv_failover
#include <cstdio>
#include <memory>
#include <vector>

#include "app/kv_store.hpp"
#include "core/group.hpp"
#include "workload/consumer.hpp"

int main() {
  using namespace svs;

  sim::Simulator sim;
  core::Group::Config cfg;
  cfg.size = 3;
  cfg.node.relation = std::make_shared<obs::KEnumRelation>();
  core::Group group(sim, cfg);

  std::vector<std::unique_ptr<app::KvStore>> stores;
  std::vector<std::unique_ptr<workload::InstantConsumer>> consumers;
  for (std::size_t i = 0; i < 3; ++i) {
    stores.push_back(
        std::make_unique<app::KvStore>(group.node(i), app::KvStore::Config{}));
    consumers.push_back(
        std::make_unique<workload::InstantConsumer>(sim, group.node(i)));
    consumers.back()->set_sink(
        [s = stores.back().get()](const core::Delivery& d) { s->apply(d); });
    consumers.back()->start();
  }
  sim.run();

  std::printf("replica 0 is primary: %s\n",
              stores[0]->is_primary() ? "yes" : "no");

  // Plain writes and an atomic multi-key transaction (one §4.1 composite
  // update: partial application is impossible, even under purging).
  stores[0]->put("hero/health", 100);
  stores[0]->put("hero/mana", 50);
  stores[0]->put_all({{"boss/health", 5000},
                      {"boss/phase", 1},
                      {"arena/door", 0}});
  // Hot key overwritten many times: backups may purge the intermediates.
  for (std::uint64_t v = 0; v < 200; ++v) stores[0]->put("hero/pos", v);
  sim.run();

  std::printf("after writes:   replica1 hero/pos=%llu boss/health=%llu "
              "(digests %s)\n",
              static_cast<unsigned long long>(*stores[1]->get("hero/pos")),
              static_cast<unsigned long long>(*stores[1]->get("boss/health")),
              stores[1]->digest() == stores[0]->digest() ? "agree"
                                                         : "DISAGREE");

  // The primary crashes mid-service.
  std::printf("\n-- replica 0 crashes --\n");
  group.crash(0);
  sim.run();

  std::printf("view v%llu installed; replica 1 primary: %s\n",
              static_cast<unsigned long long>(
                  stores[1]->applied_view()->id().value()),
              stores[1]->is_primary() ? "yes" : "no");

  // The new primary picks up where the group state left off.
  stores[1]->put("hero/health", 73);
  stores[1]->put_all({{"boss/health", 4200}, {"boss/phase", 2}});
  stores[1]->erase("arena/door");
  sim.run();

  std::printf("after failover: replica2 hero/health=%llu boss/phase=%llu "
              "arena/door=%s (digests %s)\n",
              static_cast<unsigned long long>(*stores[2]->get("hero/health")),
              static_cast<unsigned long long>(*stores[2]->get("boss/phase")),
              stores[2]->get("arena/door").has_value() ? "present" : "gone",
              stores[2]->digest() == stores[1]->digest() ? "agree"
                                                         : "DISAGREE");
  return 0;
}
