// svs_proc — one SVS process of a real multi-process deployment.
//
// Runs a full protocol stack (Node + heartbeat failure detector +
// membership policy) over net::UdpTransport in distributed mode, driven by
// runtime::RealTimeDriver: virtual-clock timers (heartbeats, grace periods,
// stability gossip) fire at wall pace while real UDP datagrams carry every
// inter-process message.  tools/svs_deploy forks N of these on localhost.
//
// Startup is a tiny introducer flow on the same socket the lane will use:
// process 0 binds the well-known --introducer-port; everyone else binds an
// ephemeral port and sends JOIN(id, port) every 100ms until the introducer
// answers with the full ROSTER (it answers every JOIN once all --n members
// are known, so a lost ROSTER datagram is repaired by the next retry, and a
// late joiner is re-sent the roster mid-run through the stray-datagram
// hook).
//
// The process floods multicasts for --produce-ms of its --duration-ms run,
// then quiesces so every surviving process converges before shutdown.  On
// SIGTERM/SIGINT it stops the driver, flushes a metrics JSON (view
// sequence, delivery history, lane/protocol counters) to --metrics and
// exits 0 — so ONLY kill -9 models a crash.  svs_deploy asserts view
// synchrony and per-sender delivery agreement across the survivors'
// metrics files.
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/membership.hpp"
#include "core/node.hpp"
#include "fd/heartbeat.hpp"
#include "net/dgram.hpp"
#include "net/udp_transport.hpp"
#include "obs/relation.hpp"
#include "runtime/real_time.hpp"
#include "sim/simulator.hpp"
#include "workload/consumer.hpp"
#include "workload/item_op.hpp"

namespace {

volatile std::sig_atomic_t g_signal = 0;

void on_signal(int sig) { g_signal = sig; }

struct CliOptions {
  std::uint32_t id = 0;
  std::uint32_t n = 0;
  std::uint16_t introducer_port = 0;
  std::int64_t duration_ms = 8'000;
  std::int64_t produce_ms = -1;  // default: duration / 2
  std::int64_t interval_ms = 5;
  std::uint32_t loss_permille = 0;
  int rcvbuf_bytes = 0;
  std::string metrics;
};

bool parse_u64(const char* text, std::uint64_t& out) {
  char* end = nullptr;
  out = std::strtoull(text, &end, 10);
  return end != text && *end == '\0';
}

bool parse_flag(const char* arg, const char* name, const char** value) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *value = arg + len + 1;
  return true;
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --id=I --n=N --introducer-port=P --metrics=PATH "
               "[--duration-ms=MS] [--produce-ms=MS] [--interval-ms=MS] "
               "[--loss=PERMILLE] [--rcvbuf=BYTES]\n",
               argv0);
  return 2;
}

bool parse(int argc, char** argv, CliOptions& options) {
  bool have_id = false, have_n = false, have_port = false;
  for (int i = 1; i < argc; ++i) {
    const char* value = nullptr;
    std::uint64_t u = 0;
    if (parse_flag(argv[i], "--id", &value)) {
      if (!parse_u64(value, u)) return false;
      options.id = static_cast<std::uint32_t>(u);
      have_id = true;
    } else if (parse_flag(argv[i], "--n", &value)) {
      if (!parse_u64(value, u) || u < 1 || u > 64) return false;
      options.n = static_cast<std::uint32_t>(u);
      have_n = true;
    } else if (parse_flag(argv[i], "--introducer-port", &value)) {
      if (!parse_u64(value, u) || u == 0 || u > 65'535) return false;
      options.introducer_port = static_cast<std::uint16_t>(u);
      have_port = true;
    } else if (parse_flag(argv[i], "--duration-ms", &value)) {
      if (!parse_u64(value, u)) return false;
      options.duration_ms = static_cast<std::int64_t>(u);
    } else if (parse_flag(argv[i], "--produce-ms", &value)) {
      if (!parse_u64(value, u)) return false;
      options.produce_ms = static_cast<std::int64_t>(u);
    } else if (parse_flag(argv[i], "--interval-ms", &value)) {
      if (!parse_u64(value, u) || u == 0) return false;
      options.interval_ms = static_cast<std::int64_t>(u);
    } else if (parse_flag(argv[i], "--loss", &value)) {
      if (!parse_u64(value, u) || u > 999) return false;
      options.loss_permille = static_cast<std::uint32_t>(u);
    } else if (parse_flag(argv[i], "--rcvbuf", &value)) {
      if (!parse_u64(value, u)) return false;
      options.rcvbuf_bytes = static_cast<int>(u);
    } else if (parse_flag(argv[i], "--metrics", &value)) {
      options.metrics = value;
    } else {
      return false;
    }
  }
  if (options.produce_ms < 0) options.produce_ms = options.duration_ms / 2;
  return have_id && have_n && have_port && !options.metrics.empty() &&
         options.id < options.n;
}

std::string describe(const svs::core::Delivery& delivery) {
  std::ostringstream os;
  if (const auto* data =
          std::get_if<svs::core::DataDelivery>(&delivery)) {
    const auto& m = *data->message;
    os << "D " << m.sender() << "#" << m.seq();
    if (const auto* op = dynamic_cast<const svs::workload::ItemOp*>(
            m.payload().get())) {
      os << " item=" << op->item() << " val=" << op->value();
    }
  } else if (const auto* view =
                 std::get_if<svs::core::ViewDelivery>(&delivery)) {
    os << "V " << view->view;
  } else {
    os << "X "
       << std::get<svs::core::ExclusionDelivery>(delivery).last_view;
  }
  return os.str();
}

void json_string_array(std::ostream& os, const char* key,
                       const std::vector<std::string>& values) {
  os << "  \"" << key << "\": [";
  for (std::size_t i = 0; i < values.size(); ++i) {
    // The describe() vocabulary has no quotes or backslashes; escape them
    // anyway so the file stays valid JSON whatever ends up in a view name.
    os << (i == 0 ? "" : ", ") << '"';
    for (const char c : values[i]) {
      if (c == '"' || c == '\\') os << '\\';
      os << c;
    }
    os << '"';
  }
  os << "]";
}

struct Metrics {
  const CliOptions* options = nullptr;
  std::string exit_reason = "duration";
  std::uint64_t produced = 0;
  std::vector<std::string> views;
  std::vector<std::string> history;
  svs::net::UdpLaneStats lane;
  svs::net::NetworkStats net;
  svs::core::NodeStats node;
};

/// Atomic flush: write to a temp file, rename into place, so svs_deploy
/// never reads a half-written report (a kill -9 victim leaves either
/// nothing or a stale temp behind, both of which read as "crashed").
bool write_metrics(const Metrics& m) {
  const std::string tmp = m.options->metrics + ".tmp";
  {
    std::ofstream os(tmp, std::ios::trunc);
    if (!os) return false;
    os << "{\n";
    os << "  \"id\": " << m.options->id << ",\n";
    os << "  \"n\": " << m.options->n << ",\n";
    os << "  \"exit_reason\": \"" << m.exit_reason << "\",\n";
    os << "  \"produced\": " << m.produced << ",\n";
    json_string_array(os, "views", m.views);
    os << ",\n";
    json_string_array(os, "history", m.history);
    os << ",\n";
    os << "  \"multicasts\": " << m.node.multicasts << ",\n";
    os << "  \"delivered_data\": " << m.node.delivered_data << ",\n";
    os << "  \"datagrams_sent\": " << m.lane.datagrams_sent << ",\n";
    os << "  \"datagrams_received\": " << m.lane.datagrams_received << ",\n";
    os << "  \"frames_delivered\": " << m.lane.frames_delivered << ",\n";
    os << "  \"retransmissions\": " << m.lane.retransmissions << ",\n";
    os << "  \"duplicate_drops\": " << m.lane.duplicate_drops << ",\n";
    os << "  \"injected_losses\": " << m.lane.injected_losses << ",\n";
    os << "  \"link_resets\": " << m.lane.link_resets << ",\n";
    os << "  \"inbound_stalls\": " << m.lane.inbound_stalls << ",\n";
    os << "  \"zero_window_probes\": " << m.lane.zero_window_probes << ",\n";
    os << "  \"malformed_datagrams\": " << m.lane.malformed_datagrams
       << ",\n";
    os << "  \"stray_datagrams\": " << m.lane.stray_datagrams << ",\n";
    os << "  \"syscalls_sent\": " << m.lane.syscalls_sent << ",\n";
    os << "  \"syscalls_recvd\": " << m.lane.syscalls_recvd << ",\n";
    os << "  \"datagrams_per_syscall\": "
       << (m.lane.syscalls_sent + m.lane.syscalls_recvd > 0
               ? static_cast<double>(m.lane.datagrams_sent +
                                     m.lane.datagrams_received) /
                     static_cast<double>(m.lane.syscalls_sent +
                                         m.lane.syscalls_recvd)
               : 0.0)
       << ",\n";
    os << "  \"wheel_cascades\": " << m.lane.wheel_cascades << "\n";
    os << "}\n";
    if (!os) return false;
  }
  return std::rename(tmp.c_str(), m.options->metrics.c_str()) == 0;
}

/// The introducer flow.  Returns the full roster (id -> port), or empty on
/// signal/timeout.  The introducer keeps answering late JOINs through this
/// same handler for the rest of the run (`handler stays installed`).
std::map<std::uint32_t, std::uint16_t> run_join_flow(
    svs::net::UdpTransport& transport, const CliOptions& options) {
  using svs::net::Datagram;
  std::map<std::uint32_t, std::uint16_t> roster;
  bool roster_complete = false;

  if (options.id == 0) {
    roster[0] = transport.local_port(svs::net::ProcessId(0));
    transport.set_stray_datagram_handler([&](const Datagram& d) {
      if (d.kind != Datagram::Kind::join) return;
      roster[d.join_id] = d.join_port;
      if (roster.size() < options.n) return;
      roster_complete = true;
      // Answer *every* join once complete: lost rosters get repaired by
      // the joiner's retry, late joiners get re-sent the list mid-run.
      const svs::util::Bytes bytes = Datagram::encode_roster(
          {roster.begin(), roster.end()});
      auto& socket = transport.socket_of(svs::net::ProcessId(0));
      for (const auto& [id, port] : roster) {
        if (id != 0) (void)socket.send_to(port, bytes.data(), bytes.size());
      }
    });
  } else {
    transport.set_stray_datagram_handler([&](const Datagram& d) {
      if (d.kind != Datagram::Kind::roster || roster_complete) return;
      for (const auto& [id, port] : d.roster) roster[id] = port;
      roster_complete = roster.size() == options.n;
    });
  }

  const std::int64_t deadline =
      svs::net::UdpTransport::mono_us() + 30'000'000;
  std::int64_t next_join_us = 0;
  while (!roster_complete && g_signal == 0 &&
         svs::net::UdpTransport::mono_us() < deadline) {
    if (options.id != 0 &&
        svs::net::UdpTransport::mono_us() >= next_join_us) {
      const svs::util::Bytes join = Datagram::encode_join(
          options.id, transport.local_port(svs::net::ProcessId(options.id)));
      (void)transport.socket_of(svs::net::ProcessId(options.id))
          .send_to(options.introducer_port, join.data(), join.size());
      next_join_us = svs::net::UdpTransport::mono_us() + 100'000;
    }
    transport.pump(20'000);
  }
  if (!roster_complete) return {};
  if (options.id != 0) {
    // Joiners are done with pre-protocol traffic; later stray datagrams
    // (duplicate rosters) are just counted.
    transport.set_stray_datagram_handler({});
  }
  return roster;
}

int run(const CliOptions& options) {
  using namespace svs;

  sim::Simulator sim;
  net::UdpTransport::Config tc;
  tc.bind_local = true;
  tc.bind_port = options.id == 0 ? options.introducer_port : 0;
  tc.loss_rate = static_cast<double>(options.loss_permille) / 1000.0;
  tc.rcvbuf_bytes = options.rcvbuf_bytes;
  // Real processes on one box: base RTO above scheduling jitter, retry
  // budget sized so a kill -9'd peer is declared dead in a few seconds
  // (10+20+40+80+160+250*9 ms ~ 2.6s) — the heartbeat timeout usually wins.
  tc.link.window = 64;
  tc.link.rto_base_us = 10'000;
  tc.link.rto_max_us = 250'000;
  tc.link.max_retries = 14;
  net::UdpTransport transport(sim, tc);

  Metrics metrics;
  metrics.options = &options;

  const auto roster = run_join_flow(transport, options);
  if (roster.empty()) {
    metrics.exit_reason = g_signal != 0 ? "signal_during_join" : "join_timeout";
    write_metrics(metrics);
    return g_signal != 0 ? 0 : 1;
  }
  const net::ProcessId self(options.id);
  std::vector<net::ProcessId> members, peers;
  for (const auto& [id, port] : roster) {
    members.emplace_back(id);
    if (id != options.id) {
      peers.emplace_back(id);
      transport.add_peer(net::ProcessId(id), port);
    }
  }

  // The protocol stack, wired exactly like core::Group's heartbeat mode.
  fd::HeartbeatDetector::Config hb_config;
  hb_config.interval = sim::Duration::millis(100);
  hb_config.initial_timeout = sim::Duration::seconds(2.0);
  hb_config.max_timeout = sim::Duration::seconds(5.0);
  fd::HeartbeatDetector detector(sim, transport, self, peers, hb_config);

  core::NodeConfig nc;
  // The empty relation = plain view synchrony: no purging, so every
  // survivor must deliver identical per-sender sequences — the property
  // svs_deploy checks across processes.
  nc.relation = std::make_shared<obs::EmptyRelation>();
  nc.delivery_capacity = 64;
  nc.out_capacity = 64;
  const core::View initial(core::ViewId(0), members);
  core::Node node(sim, transport, detector, self, initial, nc);
  node.set_control_sink(
      [&detector](net::ProcessId from, const net::MessagePtr& message) {
        if (message->type() == net::MessageType::heartbeat) {
          detector.on_heartbeat(from);
        }
      });
  detector.start();
  core::MembershipPolicy::Config mc;
  mc.suspicion_grace = sim::Duration::millis(300);
  core::MembershipPolicy policy(sim, node, detector, mc);

  workload::InstantConsumer consumer(sim, node);
  consumer.set_sink([&metrics](const core::Delivery& d) {
    const std::string line = describe(d);
    if (line[0] == 'V' || line[0] == 'X') metrics.views.push_back(line);
    metrics.history.push_back(line);
  });
  consumer.start();

  // Flood: multicast every --interval-ms until --produce-ms of virtual time
  // (which tracks wall time), then quiesce so survivors converge before the
  // driver stops.  Retries ride the same timer when flow control blocks.
  const auto produce_until =
      sim::TimePoint::origin() + sim::Duration::millis(options.produce_ms);
  std::function<void()> produce = [&] {
    if (sim.now() >= produce_until) return;
    const auto payload = std::make_shared<workload::ItemOp>(
        workload::OpKind::update, options.id, metrics.produced,
        metrics.produced, true);
    if (node.multicast(payload, obs::Annotation::none()).has_value()) {
      ++metrics.produced;
    }
    sim.schedule_after(sim::Duration::millis(options.interval_ms), produce);
  };
  sim.schedule_after(sim::Duration::millis(1 + options.id), produce);

  runtime::RealTimeDriver driver(sim, transport);
  driver.run(sim::Duration::millis(options.duration_ms),
             [] { return g_signal != 0; });

  metrics.exit_reason = g_signal != 0 ? "signal" : "duration";
  metrics.lane = transport.lane_stats();
  metrics.net = transport.stats();
  metrics.node = node.stats();
  if (!write_metrics(metrics)) {
    std::fprintf(stderr, "svs_proc %u: cannot write %s\n", options.id,
                 options.metrics.c_str());
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions options;
  if (!parse(argc, argv, options)) return usage(argv[0]);
  std::signal(SIGTERM, on_signal);
  std::signal(SIGINT, on_signal);
  return run(options);
}
