// Regression gate over two BENCH_*.json files.
//
// Compares one numeric metric (dotted key path into nested objects) between
// a committed baseline and a fresh run, and fails when the candidate fell
// more than the tolerance below the baseline (higher-is-better, the
// default) or rose more than the tolerance above it (--lower-is-better:
// cost metrics such as idle steady-state bytes).  CI runs it after the
// Release bench job against bench/baseline/, so a multicast hot-path or
// steady-state-cost regression breaks the build instead of silently
// eroding what the perf PRs bought.
//
// Usage:
//   bench_compare <baseline.json> <candidate.json>
//                 [--key=multicast_flood.events_per_second]
//                 [--tolerance=0.05] [--lower-is-better]
//
// Exit codes: 0 = within tolerance (or improved), 1 = regression,
//             2 = usage / file / parse / missing-key error.
//
// The parser below handles exactly what bench/json.hpp emits (objects,
// arrays, strings with simple escapes, numbers, bools, null) — it is a
// reader for our own writer, not a general JSON library.
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

namespace {

// ---------------------------------------------------------------------------
// minimal JSON
// ---------------------------------------------------------------------------

struct JsonValue {
  enum class Kind { object, array, string, number, boolean, null };
  Kind kind = Kind::null;
  std::map<std::string, std::shared_ptr<JsonValue>> object;
  std::vector<std::shared_ptr<JsonValue>> array;
  std::string string;
  double number = 0.0;
  bool boolean = false;
};

using JsonPtr = std::shared_ptr<JsonValue>;

class Parser {
 public:
  explicit Parser(std::string text) : text_(std::move(text)) {}

  /// Throws std::runtime_error with position context on malformed input.
  JsonPtr parse() {
    const JsonPtr v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing garbage after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    std::ostringstream os;
    os << "JSON error at offset " << pos_ << ": " << what;
    throw std::runtime_error(os.str());
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  JsonPtr value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return string_value();
    if (c == 't' || c == 'f') return boolean();
    if (c == 'n') return null();
    return number();
  }

  JsonPtr object() {
    auto v = std::make_shared<JsonValue>();
    v->kind = JsonValue::Kind::object;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = raw_string();
      skip_ws();
      expect(':');
      v->object[key] = value();
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonPtr array() {
    auto v = std::make_shared<JsonValue>();
    v->kind = JsonValue::Kind::array;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v->array.push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string raw_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("unterminated escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          default: fail(std::string("unsupported escape \\") + e);
        }
      } else {
        out += c;
      }
    }
  }

  JsonPtr string_value() {
    auto v = std::make_shared<JsonValue>();
    v->kind = JsonValue::Kind::string;
    v->string = raw_string();
    return v;
  }

  JsonPtr boolean() {
    auto v = std::make_shared<JsonValue>();
    v->kind = JsonValue::Kind::boolean;
    if (text_.compare(pos_, 4, "true") == 0) {
      v->boolean = true;
      pos_ += 4;
    } else if (text_.compare(pos_, 5, "false") == 0) {
      v->boolean = false;
      pos_ += 5;
    } else {
      fail("bad literal");
    }
    return v;
  }

  JsonPtr null() {
    if (text_.compare(pos_, 4, "null") != 0) fail("bad literal");
    pos_ += 4;
    auto v = std::make_shared<JsonValue>();
    v->kind = JsonValue::Kind::null;
    return v;
  }

  JsonPtr number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    auto v = std::make_shared<JsonValue>();
    v->kind = JsonValue::Kind::number;
    try {
      v->number = std::stod(text_.substr(start, pos_ - start));
    } catch (const std::exception&) {
      fail("bad number");
    }
    return v;
  }

  std::string text_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// comparison
// ---------------------------------------------------------------------------

/// Walks a dotted path ("multicast_flood.events_per_second") into nested
/// objects; returns nullptr when any hop is missing.
JsonPtr lookup(const JsonPtr& root, const std::string& path) {
  JsonPtr node = root;
  std::size_t begin = 0;
  while (node != nullptr && begin <= path.size()) {
    const std::size_t dot = path.find('.', begin);
    const std::string key = path.substr(
        begin, dot == std::string::npos ? std::string::npos : dot - begin);
    if (node->kind != JsonValue::Kind::object) return nullptr;
    const auto it = node->object.find(key);
    if (it == node->object.end()) return nullptr;
    node = it->second;
    if (dot == std::string::npos) return node;
    begin = dot + 1;
  }
  return nullptr;
}

JsonPtr load(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "bench_compare: cannot open %s\n", path.c_str());
    return nullptr;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  try {
    return Parser(buffer.str()).parse();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_compare: %s: %s\n", path.c_str(), e.what());
    return nullptr;
  }
}

std::string meta_sha(const JsonPtr& root) {
  const JsonPtr sha = lookup(root, "meta.git_sha");
  return sha != nullptr && sha->kind == JsonValue::Kind::string ? sha->string
                                                                : "unknown";
}

int usage() {
  std::fprintf(
      stderr,
      "usage: bench_compare <baseline.json> <candidate.json>\n"
      "                     [--key=multicast_flood.events_per_second]\n"
      "                     [--tolerance=0.05] [--lower-is-better]\n"
      "Fails (exit 1) when candidate < baseline * (1 - tolerance)\n"
      "(higher-is-better, the default), or — with --lower-is-better —\n"
      "when candidate > baseline * (1 + tolerance).  A lower-is-better\n"
      "baseline of 0 requires the candidate to be 0 as well.\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string key = "multicast_flood.events_per_second";
  double tolerance = 0.05;
  bool lower_is_better = false;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--key=", 0) == 0) {
      key = arg.substr(6);
    } else if (arg == "--lower-is-better") {
      lower_is_better = true;
    } else if (arg.rfind("--tolerance=", 0) == 0) {
      char* end = nullptr;
      tolerance = std::strtod(arg.c_str() + 12, &end);
      if (end == nullptr || *end != '\0' || tolerance < 0.0 ||
          tolerance >= 1.0) {
        std::fprintf(stderr, "bench_compare: bad tolerance '%s'\n",
                     arg.c_str());
        return 2;
      }
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else {
      files.push_back(arg);
    }
  }
  if (files.size() != 2 || key.empty()) return usage();

  const JsonPtr baseline = load(files[0]);
  const JsonPtr candidate = load(files[1]);
  if (baseline == nullptr || candidate == nullptr) return 2;

  const JsonPtr base_value = lookup(baseline, key);
  const JsonPtr cand_value = lookup(candidate, key);
  for (const auto& [name, value] :
       {std::pair{files[0], base_value}, std::pair{files[1], cand_value}}) {
    if (value == nullptr || value->kind != JsonValue::Kind::number) {
      std::fprintf(stderr, "bench_compare: %s: no numeric key '%s'\n",
                   name.c_str(), key.c_str());
      return 2;
    }
  }
  if (base_value->number < 0.0 || cand_value->number < 0.0) {
    std::fprintf(stderr, "bench_compare: %s must be non-negative\n",
                 key.c_str());
    return 2;
  }
  if (base_value->number == 0.0 && !lower_is_better) {
    std::fprintf(stderr, "bench_compare: baseline %s is not positive\n",
                 key.c_str());
    return 2;
  }

  bool ok = false;
  double ratio = 0.0;
  double bound = 0.0;
  if (lower_is_better) {
    // Cost metric.  A zero baseline is a legitimate floor (a fully
    // quiescent group idles at zero bytes): holding it means staying at
    // zero, and any positive candidate is a regression.
    bound = 1.0 + tolerance;
    if (base_value->number == 0.0) {
      ratio = cand_value->number == 0.0 ? 1.0 : bound + 1.0;
      ok = cand_value->number == 0.0;
    } else {
      ratio = cand_value->number / base_value->number;
      ok = ratio <= bound;
    }
  } else {
    bound = 1.0 - tolerance;
    ratio = cand_value->number / base_value->number;
    ok = ratio >= bound;
  }
  std::printf(
      "bench_compare: %s (%s)\n  baseline  %.6g  (%s, git %s)\n"
      "  candidate %.6g  (%s, git %s)\n  ratio %.4f (%s %.4f)  -> %s\n",
      key.c_str(), lower_is_better ? "lower-is-better" : "higher-is-better",
      base_value->number, files[0].c_str(), meta_sha(baseline).c_str(),
      cand_value->number, files[1].c_str(), meta_sha(candidate).c_str(),
      ratio, lower_is_better ? "ceiling" : "floor", bound,
      ok ? "OK" : "REGRESSION");
  return ok ? 0 : 1;
}
