// svs_deploy — multi-process deployment harness with crash injection.
//
// Forks N svs_proc processes on localhost (process 0 is the introducer on a
// well-known port; everyone else joins through it), lets the group flood
// multicasts, kill -9's --kill of them mid-flood, and SIGTERMs the
// survivors after --duration-ms so they flush their metrics JSON.  Then it
// *verifies* the run from those reports:
//
//   * every survivor exited cleanly with a parseable report;
//   * the survivors' view sequences are identical, and the final view
//     contains exactly the survivors — the kill -9 victims were excluded
//     by the heartbeat + membership machinery, via real consensus over
//     real UDP;
//   * per-sender delivery sequences are identical across survivors (the
//     processes run the empty relation, i.e. plain view synchrony, so
//     agreement must be exact — any datagram loss the kernel or the
//     --loss model inflicted was repaired below the protocol);
//   * under forced loss, the repair provably happened (retransmissions >
//     0) and no datagram was ever delivered corrupt (malformed == 0).
//
//   svs_deploy --n=5 --kill=2                      # crash survival
//   svs_deploy --n=5 --kill=1 --loss=200           # + 20% datagram loss
//   svs_deploy --n=3 --kill=0 --duration-ms=4000   # quick smoke
//
// Exit code 0 iff every check passed.  Per-process logs and reports stay in
// --outdir (CI uploads them on failure).
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace {

struct CliOptions {
  std::uint32_t n = 5;
  std::uint32_t kill = 1;
  std::int64_t kill_at_ms = 3'000;
  std::int64_t duration_ms = 10'000;
  std::int64_t produce_ms = 5'000;
  std::uint32_t loss_permille = 0;
  std::uint16_t port = 0;  // 0 = derive from pid
  std::string outdir = "svs_deploy_out";
  std::string proc_path;  // default: svs_proc next to this binary
};

bool parse_u64(const char* text, std::uint64_t& out) {
  char* end = nullptr;
  out = std::strtoull(text, &end, 10);
  return end != text && *end == '\0';
}

bool parse_flag(const char* arg, const char* name, const char** value) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *value = arg + len + 1;
  return true;
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--n=N] [--kill=K] [--kill-at-ms=MS] "
               "[--duration-ms=MS] [--produce-ms=MS] [--loss=PERMILLE] "
               "[--port=P] [--outdir=DIR] [--proc=PATH]\n",
               argv0);
  return 2;
}

bool parse(int argc, char** argv, CliOptions& options) {
  for (int i = 1; i < argc; ++i) {
    const char* value = nullptr;
    std::uint64_t u = 0;
    if (parse_flag(argv[i], "--n", &value)) {
      if (!parse_u64(value, u) || u < 2 || u > 32) return false;
      options.n = static_cast<std::uint32_t>(u);
    } else if (parse_flag(argv[i], "--kill", &value)) {
      if (!parse_u64(value, u)) return false;
      options.kill = static_cast<std::uint32_t>(u);
    } else if (parse_flag(argv[i], "--kill-at-ms", &value)) {
      if (!parse_u64(value, u)) return false;
      options.kill_at_ms = static_cast<std::int64_t>(u);
    } else if (parse_flag(argv[i], "--duration-ms", &value)) {
      if (!parse_u64(value, u)) return false;
      options.duration_ms = static_cast<std::int64_t>(u);
    } else if (parse_flag(argv[i], "--produce-ms", &value)) {
      if (!parse_u64(value, u)) return false;
      options.produce_ms = static_cast<std::int64_t>(u);
    } else if (parse_flag(argv[i], "--loss", &value)) {
      if (!parse_u64(value, u) || u > 999) return false;
      options.loss_permille = static_cast<std::uint32_t>(u);
    } else if (parse_flag(argv[i], "--port", &value)) {
      if (!parse_u64(value, u) || u == 0 || u > 65'535) return false;
      options.port = static_cast<std::uint16_t>(u);
    } else if (parse_flag(argv[i], "--outdir", &value)) {
      options.outdir = value;
    } else if (parse_flag(argv[i], "--proc", &value)) {
      options.proc_path = value;
    } else {
      return false;
    }
  }
  // The introducer (0) must survive to re-send rosters; victims are the
  // highest ids.
  return options.kill < options.n;
}

std::string sibling_binary(const char* argv0, const char* name) {
  char buffer[4096];
  const ssize_t len =
      ::readlink("/proc/self/exe", buffer, sizeof(buffer) - 1);
  std::string self = len > 0 ? std::string(buffer, static_cast<size_t>(len))
                             : std::string(argv0);
  const auto slash = self.find_last_of('/');
  return (slash == std::string::npos ? std::string(".")
                                     : self.substr(0, slash)) +
         "/" + name;
}

// --- minimal JSON field extraction (matches svs_proc's writer) -------------

struct Report {
  bool present = false;
  std::string raw;
  std::vector<std::string> views;
  std::vector<std::string> history;

  [[nodiscard]] std::uint64_t number(const std::string& key) const {
    const std::string needle = "\"" + key + "\": ";
    const auto at = raw.find(needle);
    if (at == std::string::npos) return 0;
    return std::strtoull(raw.c_str() + at + needle.size(), nullptr, 10);
  }
  [[nodiscard]] std::string text(const std::string& key) const {
    const std::string needle = "\"" + key + "\": \"";
    const auto at = raw.find(needle);
    if (at == std::string::npos) return "";
    const auto start = at + needle.size();
    return raw.substr(start, raw.find('"', start) - start);
  }
};

std::vector<std::string> string_array(const std::string& raw,
                                      const std::string& key) {
  std::vector<std::string> out;
  const std::string needle = "\"" + key + "\": [";
  auto at = raw.find(needle);
  if (at == std::string::npos) return out;
  at += needle.size();
  while (at < raw.size() && raw[at] != ']') {
    if (raw[at] == '"') {
      std::string item;
      for (++at; at < raw.size() && raw[at] != '"'; ++at) {
        if (raw[at] == '\\' && at + 1 < raw.size()) ++at;
        item.push_back(raw[at]);
      }
      out.push_back(std::move(item));
    }
    ++at;
  }
  return out;
}

Report read_report(const std::string& path) {
  Report r;
  std::ifstream is(path);
  if (!is) return r;
  std::ostringstream buffer;
  buffer << is.rdbuf();
  r.raw = buffer.str();
  r.present = !r.raw.empty();
  r.views = string_array(r.raw, "views");
  r.history = string_array(r.raw, "history");
  return r;
}

/// The "D <sender>#..." subsequence of a history, for one sender.
std::vector<std::string> sender_sequence(const std::vector<std::string>& h,
                                         std::uint32_t sender) {
  const std::string prefix = "D " + std::to_string(sender) + "#";
  std::vector<std::string> out;
  for (const auto& line : h) {
    if (line.rfind(prefix, 0) == 0) out.push_back(line);
  }
  return out;
}

int g_failures = 0;

void check(bool ok, const std::string& what) {
  if (ok) {
    std::printf("  ok: %s\n", what.c_str());
  } else {
    std::printf("  FAIL: %s\n", what.c_str());
    ++g_failures;
  }
}

void sleep_ms(std::int64_t ms) {
  ::usleep(static_cast<useconds_t>(ms * 1'000));
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions options;
  if (!parse(argc, argv, options)) return usage(argv[0]);
  if (options.proc_path.empty()) {
    options.proc_path = sibling_binary(argv[0], "svs_proc");
  }
  if (options.port == 0) {
    options.port = static_cast<std::uint16_t>(
        20'000 + (static_cast<std::uint32_t>(::getpid()) * 7919u) % 40'000);
  }
  ::mkdir(options.outdir.c_str(), 0755);

  const std::uint32_t first_victim = options.n - options.kill;
  std::printf("svs_deploy: n=%u kill=%u (ids %u..%u) port=%u loss=%u‰ "
              "duration=%" PRId64 "ms\n",
              options.n, options.kill, first_victim, options.n - 1,
              options.port, options.loss_permille, options.duration_ms);

  // --- launch ---------------------------------------------------------
  std::vector<pid_t> pids(options.n, -1);
  std::vector<std::string> metrics(options.n);
  for (std::uint32_t id = 0; id < options.n; ++id) {
    metrics[id] = options.outdir + "/proc_" + std::to_string(id) + ".json";
    std::remove(metrics[id].c_str());
    const std::string log =
        options.outdir + "/proc_" + std::to_string(id) + ".log";
    const pid_t pid = ::fork();
    if (pid == 0) {
      const int fd = ::open(log.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
      if (fd >= 0) {
        ::dup2(fd, 1);
        ::dup2(fd, 2);
        ::close(fd);
      }
      std::vector<std::string> args = {
          options.proc_path,
          "--id=" + std::to_string(id),
          "--n=" + std::to_string(options.n),
          "--introducer-port=" + std::to_string(options.port),
          "--duration-ms=" + std::to_string(options.duration_ms),
          "--produce-ms=" + std::to_string(options.produce_ms),
          "--loss=" + std::to_string(options.loss_permille),
          "--metrics=" + metrics[id],
      };
      std::vector<char*> argv_exec;
      for (auto& a : args) argv_exec.push_back(a.data());
      argv_exec.push_back(nullptr);
      ::execv(options.proc_path.c_str(), argv_exec.data());
      std::perror("execv svs_proc");
      ::_exit(127);
    }
    pids[id] = pid;
  }

  // --- crash injection: kill -9, the only crash model ------------------
  sleep_ms(options.kill_at_ms);
  for (std::uint32_t id = first_victim; id < options.n; ++id) {
    std::printf("kill -9 process %u (pid %d) at t=%" PRId64 "ms\n", id,
                pids[id], options.kill_at_ms);
    ::kill(pids[id], SIGKILL);
  }

  // --- let the survivors run out their duration, then stop them --------
  sleep_ms(options.duration_ms - options.kill_at_ms + 500);
  for (std::uint32_t id = 0; id < first_victim; ++id) {
    ::kill(pids[id], SIGTERM);
  }
  std::vector<int> exit_codes(options.n, -1);
  const std::int64_t reap_deadline_rounds = 100;  // 10s
  for (std::int64_t round = 0; round < reap_deadline_rounds; ++round) {
    bool all = true;
    for (std::uint32_t id = 0; id < options.n; ++id) {
      if (exit_codes[id] != -1) continue;
      int status = 0;
      const pid_t r = ::waitpid(pids[id], &status, WNOHANG);
      if (r == pids[id]) {
        exit_codes[id] = WIFEXITED(status) ? WEXITSTATUS(status)
                                           : 128 + WTERMSIG(status);
      } else {
        all = false;
      }
    }
    if (all) break;
    sleep_ms(100);
  }
  for (std::uint32_t id = 0; id < options.n; ++id) {
    if (exit_codes[id] == -1) {
      std::printf("  FAIL: process %u (pid %d) did not exit; kill -9\n", id,
                  pids[id]);
      ++g_failures;
      ::kill(pids[id], SIGKILL);
      (void)::waitpid(pids[id], nullptr, 0);
    }
  }

  // --- verify ----------------------------------------------------------
  std::printf("verifying %u survivor report(s) in %s\n", first_victim,
              options.outdir.c_str());
  std::vector<Report> reports(options.n);
  for (std::uint32_t id = 0; id < first_victim; ++id) {
    reports[id] = read_report(metrics[id]);
    check(exit_codes[id] == 0, "survivor " + std::to_string(id) +
                                   " exited 0 (got " +
                                   std::to_string(exit_codes[id]) + ")");
    check(reports[id].present,
          "survivor " + std::to_string(id) + " wrote its report");
    if (!reports[id].present) continue;
    const std::string reason = reports[id].text("exit_reason");
    check(reason == "signal" || reason == "duration",
          "survivor " + std::to_string(id) + " finished the run (" + reason +
              ")");
    check(reports[id].number("produced") > 0,
          "survivor " + std::to_string(id) + " produced messages");
    check(reports[id].number("malformed_datagrams") == 0,
          "survivor " + std::to_string(id) + " saw no malformed datagrams");
  }
  for (std::uint32_t id = first_victim; id < options.n; ++id) {
    check(!read_report(metrics[id]).present,
          "victim " + std::to_string(id) +
              " left no report (kill -9 is a crash, not a shutdown)");
  }

  const Report& ref = reports[0];
  if (ref.present) {
    // View synchrony across real processes: identical view sequences, and
    // the final view is exactly the survivor set.
    std::string expected_final = "{";
    for (std::uint32_t id = 0; id < first_victim; ++id) {
      expected_final += (id == 0 ? "p" : ",p") + std::to_string(id);
    }
    expected_final += "}";
    check(!ref.views.empty(), "survivor 0 delivered views");
    if (options.kill > 0) {
      check(ref.views.size() >= 2,
            "the exclusion view installed (got " +
                std::to_string(ref.views.size()) + " view(s))");
    }
    if (!ref.views.empty()) {
      const std::string& final_view = ref.views.back();
      check(final_view.find(expected_final) != std::string::npos,
            "final view " + final_view + " is exactly the survivor set " +
                expected_final);
    }
    for (std::uint32_t id = 1; id < first_victim; ++id) {
      if (!reports[id].present) continue;
      check(reports[id].views == ref.views,
            "survivor " + std::to_string(id) +
                " agrees on the view sequence");
      for (std::uint32_t sender = 0; sender < options.n; ++sender) {
        check(sender_sequence(reports[id].history, sender) ==
                  sender_sequence(ref.history, sender),
              "survivor " + std::to_string(id) +
                  " agrees on sender " + std::to_string(sender) +
                  "'s delivery sequence");
      }
    }
    std::uint64_t delivered = 0;
    for (std::uint32_t id = 0; id < first_victim; ++id) {
      delivered += reports[id].number("delivered_data");
    }
    check(delivered > 0, "survivors delivered data (" +
                             std::to_string(delivered) + " total)");
    if (options.loss_permille > 0) {
      std::uint64_t retransmissions = 0, injected = 0;
      for (std::uint32_t id = 0; id < first_victim; ++id) {
        retransmissions += reports[id].number("retransmissions");
        injected += reports[id].number("injected_losses");
      }
      check(injected > 0, "the loss model dropped datagrams (" +
                              std::to_string(injected) + ")");
      check(retransmissions > 0,
            "losses were repaired by retransmission (" +
                std::to_string(retransmissions) + ")");
    }
  }

  if (g_failures == 0) {
    std::printf("svs_deploy: all checks passed\n");
    return 0;
  }
  std::printf("svs_deploy: %d check(s) FAILED (logs in %s)\n", g_failures,
              options.outdir.c_str());
  return 1;
}
