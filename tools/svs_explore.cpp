// svs_explore — seeded scenario exploration CLI (DESIGN.md §7).
//
// Sweep mode (the default) runs the seed-derived scenario for every seed in
// a range under the SpecChecker; any violation is shrunk to a minimal
// failing scenario and reported as a one-line repro that replays it
// exactly:
//
//   svs_explore --seeds=1000                # seeds 1..1000, expect silence
//   svs_explore --seeds=200 --seed-start=7  # a different window
//   svs_explore --seed=42                   # replay one seed, verbose
//   svs_explore --seed=42 --faults=0x5 --msgs=7   # replay a shrunk repro
//   svs_explore --seeds=50 --hostile        # include out-of-model faults
//                                           # (expected to fail; exercises
//                                           # the shrinker pipeline)
//   svs_explore --seeds=500 --relation=kenum  # pin every scenario to
//                                           # k-enumeration (purge-biased:
//                                           # the GC-vs-pred regression
//                                           # surface); also: item, enum,
//                                           # reliable
//   svs_explore --seeds=200 --loss=200      # add 20% all-links datagram
//                                           # loss (in-model: repaired by
//                                           # retransmission) to every
//                                           # scenario
//   svs_explore --seeds=500 --quiescent=1   # pin every scenario to
//                                           # quiescent adaptive gossip
//                                           # (0 = classic fixed cadence;
//                                           # unpinned scenarios draw
//                                           # ~50/50)
//   svs_explore --seeds=500 --fd=swim       # pin every scenario's failure
//                                           # detector backend (also:
//                                           # oracle, heartbeat; unpinned
//                                           # scenarios draw 50/25/25)
//
// Exit code 0 iff every run was violation-free.  On failures the repro
// lines are also appended to EXPLORE_failures.txt (CI uploads it).
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "sim/explorer.hpp"

namespace {

struct CliOptions {
  std::uint64_t seed = 0;
  bool single = false;
  std::uint64_t seeds = 0;
  std::uint64_t seed_start = 1;
  std::uint64_t fault_mask = ~0ULL;
  std::uint32_t message_limit = svs::sim::ScenarioSpec::kNoLimit;
  std::optional<svs::sim::RelationKind> relation_pin;
  std::optional<bool> quiescent_pin;
  std::optional<svs::sim::FdBackend> fd_pin;
  std::uint32_t loss_permille = 0;
  bool hostile = false;
  bool quiet = false;
  std::string failures_file = "EXPLORE_failures.txt";
};

bool parse_relation(const char* value,
                    std::optional<svs::sim::RelationKind>& out) {
  // Shared flag table (sim::relation_flag), so repro lines always
  // round-trip through this parser.
  const auto kind = svs::sim::relation_from_flag(value);
  if (!kind.has_value()) return false;
  out = kind;
  return true;
}

bool parse_u64(const char* text, std::uint64_t& out, int base = 10) {
  char* end = nullptr;
  out = std::strtoull(text, &end, base);
  return end != text && *end == '\0';
}

bool parse_flag(const char* arg, const char* name, const char** value) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *value = arg + len + 1;
  return true;
}

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--seeds=N] [--seed-start=S] | [--seed=N [--faults=0xMASK] "
      "[--msgs=K]] [--relation=reliable|item|kenum|enum] [--quiescent=0|1] "
      "[--fd=oracle|heartbeat|swim] [--loss=PERMILLE] [--hostile] [--quiet] "
      "[--failures-file=PATH]\n",
      argv0);
  return 2;
}

bool parse(int argc, char** argv, CliOptions& options) {
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const char* value = nullptr;
    if (parse_flag(arg, "--seed", &value)) {
      if (!parse_u64(value, options.seed)) return false;
      options.single = true;
    } else if (parse_flag(arg, "--seeds", &value)) {
      if (!parse_u64(value, options.seeds) || options.seeds == 0) return false;
    } else if (parse_flag(arg, "--seed-start", &value)) {
      if (!parse_u64(value, options.seed_start)) return false;
    } else if (parse_flag(arg, "--faults", &value)) {
      const bool hex = std::strncmp(value, "0x", 2) == 0;
      if (!parse_u64(hex ? value + 2 : value, options.fault_mask,
                     hex ? 16 : 10)) {
        return false;
      }
    } else if (parse_flag(arg, "--msgs", &value)) {
      std::uint64_t limit = 0;
      if (!parse_u64(value, limit)) return false;
      options.message_limit = static_cast<std::uint32_t>(limit);
    } else if (parse_flag(arg, "--relation", &value)) {
      if (!parse_relation(value, options.relation_pin)) return false;
    } else if (parse_flag(arg, "--quiescent", &value)) {
      if (std::strcmp(value, "0") == 0) {
        options.quiescent_pin = false;
      } else if (std::strcmp(value, "1") == 0) {
        options.quiescent_pin = true;
      } else {
        return false;
      }
    } else if (parse_flag(arg, "--fd", &value)) {
      // Shared flag table (sim::fd_flag), so repro lines round-trip.
      const auto backend = svs::sim::fd_from_flag(value);
      if (!backend.has_value()) return false;
      options.fd_pin = backend;
    } else if (parse_flag(arg, "--loss", &value)) {
      std::uint64_t permille = 0;
      if (!parse_u64(value, permille) || permille > 999) return false;
      options.loss_permille = static_cast<std::uint32_t>(permille);
    } else if (parse_flag(arg, "--failures-file", &value)) {
      options.failures_file = value;
    } else if (std::strcmp(arg, "--hostile") == 0) {
      options.hostile = true;
    } else if (std::strcmp(arg, "--quiet") == 0) {
      options.quiet = true;
    } else {
      return false;
    }
  }
  return options.single || options.seeds > 0;
}

void print_outcome(const svs::sim::ScenarioSpec& spec,
                   const svs::sim::ScenarioOutcome& outcome) {
  std::printf("scenario: %s\n", outcome.summary.c_str());
  std::printf(
      "  multicasts=%" PRIu64 " deliveries=%" PRIu64 " events=%" PRIu64
      " purged=%" PRIu64 " dup=%" PRIu64 " lost=%" PRIu64 " quiesced=%s\n",
      outcome.multicasts, outcome.deliveries, outcome.sim_events,
      outcome.net_stats.purged_outgoing, outcome.net_stats.injected_duplicates,
      outcome.net_stats.injected_losses, outcome.quiesced ? "yes" : "no");
  if (outcome.violations.empty()) {
    std::printf("  OK: every checked property held\n");
    return;
  }
  std::printf("  %zu violation(s):\n", outcome.violations.size());
  for (const auto& v : outcome.violations) {
    std::printf("    %s\n", v.c_str());
  }
  std::printf("  repro: %s\n", spec.repro().c_str());
}

int run_single(const CliOptions& options) {
  svs::sim::ScenarioExplorer::Options explorer_options;
  explorer_options.hostile = options.hostile;
  explorer_options.relation_pin = options.relation_pin;
  explorer_options.quiescent_pin = options.quiescent_pin;
  explorer_options.fd_pin = options.fd_pin;
  explorer_options.loss_permille = options.loss_permille;
  svs::sim::ScenarioExplorer explorer(explorer_options);
  svs::sim::ScenarioSpec spec;
  spec.seed = options.seed;
  spec.relation_pin = options.relation_pin;
  spec.quiescent_pin = options.quiescent_pin;
  spec.fd_pin = options.fd_pin;
  spec.fault_mask = options.fault_mask;
  spec.message_limit = options.message_limit;
  spec.hostile = options.hostile;
  spec.loss_permille = options.loss_permille;
  const auto outcome = explorer.run(spec);
  print_outcome(spec, outcome);

  // A full (unshrunk) failing replay also demonstrates the shrinker.
  if (!outcome.violations.empty() && spec.fault_mask == ~0ULL &&
      spec.message_limit == svs::sim::ScenarioSpec::kNoLimit) {
    const auto shrunk = explorer.shrink(spec);
    const auto shrunk_outcome = explorer.run(shrunk);
    std::printf("shrunk: %s\n", shrunk_outcome.summary.c_str());
    std::printf("  %zu violation(s); repro: %s\n",
                shrunk_outcome.violations.size(), shrunk.repro().c_str());
  }
  return outcome.violations.empty() ? 0 : 1;
}

int run_sweep(const CliOptions& options) {
  svs::sim::ScenarioExplorer::Options explorer_options;
  explorer_options.hostile = options.hostile;
  explorer_options.relation_pin = options.relation_pin;
  explorer_options.quiescent_pin = options.quiescent_pin;
  explorer_options.fd_pin = options.fd_pin;
  explorer_options.loss_permille = options.loss_permille;
  svs::sim::ScenarioExplorer explorer(explorer_options);
  std::vector<std::string> failures;
  std::uint64_t events = 0;
  for (std::uint64_t i = 0; i < options.seeds; ++i) {
    const std::uint64_t seed = options.seed_start + i;
    const auto exploration = explorer.explore(seed);
    events += exploration.outcome.sim_events;
    if (!exploration.outcome.violations.empty()) {
      const auto& spec =
          exploration.shrunk.has_value() ? *exploration.shrunk
                                         : exploration.spec;
      const auto& outcome = exploration.shrunk_outcome.has_value()
                                ? *exploration.shrunk_outcome
                                : exploration.outcome;
      // Keep the ORIGINAL violation on the artifact line: shrinking chases
      // any failure, so the minimal scenario may surface a different
      // (weaker) violation class than the bug that flagged the seed.
      std::string line = spec.repro();
      line += "   # original: ";
      line += exploration.outcome.violations.front();
      if (exploration.shrunk_outcome.has_value() &&
          !outcome.violations.empty() &&
          outcome.violations.front() != exploration.outcome.violations.front()) {
        line += " | shrunk: ";
        line += outcome.violations.front();
      }
      failures.push_back(line);
      std::printf("seed %" PRIu64 ": %zu violation(s)\n  first: %s\n"
                  "  shrunk repro: %s\n",
                  seed, exploration.outcome.violations.size(),
                  exploration.outcome.violations.front().c_str(),
                  spec.repro().c_str());
    }
    if (!options.quiet && (i + 1) % 100 == 0) {
      std::printf("  ... %" PRIu64 "/%" PRIu64 " seeds, %zu failure(s)\n",
                  i + 1, options.seeds, failures.size());
      std::fflush(stdout);
    }
  }
  std::printf("explored %" PRIu64 " seed(s) [%" PRIu64
              "..%" PRIu64 "]: %zu failure(s), %" PRIu64 " sim events\n",
              options.seeds, options.seed_start,
              options.seed_start + options.seeds - 1, failures.size(),
              events);
  if (!failures.empty()) {
    std::ofstream out(options.failures_file, std::ios::app);
    for (const auto& line : failures) out << line << "\n";
    std::printf("repro lines appended to %s\n",
                options.failures_file.c_str());
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions options;
  if (!parse(argc, argv, options)) return usage(argv[0]);
  return options.single ? run_single(options) : run_sweep(options);
}
