// Replicated server state: the "relatively small collection of data items"
// of §1, applied batch-atomically per §4.1.
//
// Operations accumulate in a pending buffer; when a commit-flagged
// operation arrives (FIFO order guarantees its whole batch precedes it) the
// buffer is applied atomically.  Purging interacts with batches safely:
//
//   * surviving operations of a batch whose commit was purged are merged
//     into the next applied batch — the super-set rule (§4.1) guarantees
//     that batch re-updates every affected item, and FIFO order means the
//     newer values win, so the post-apply state is correct;
//   * intermediate states on a slow replica may skip detail (that is the
//     point of SVS), but at every view installation all members that
//     install both views converge — digest() is compared for exactly that.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "core/message.hpp"
#include "workload/item_op.hpp"

namespace svs::app {

class ItemTable {
 public:
  struct Item {
    std::uint64_t value = 0;
    std::uint64_t updated_round = 0;
  };

  /// Feeds one delivery (data or view) into the table.
  void apply(const core::Delivery& delivery);

  [[nodiscard]] std::size_t size() const { return items_.size(); }
  [[nodiscard]] std::optional<Item> get(workload::ItemId id) const;

  /// Order-independent digest of the full state, for convergence checks.
  [[nodiscard]] std::uint64_t digest() const;

  /// Digest recorded right before each view was installed, keyed by the
  /// *new* view id — the paper's consistency claim is that these agree
  /// across members (§4: "all group members have the same state when a new
  /// view is installed").
  [[nodiscard]] const std::map<std::uint64_t, std::uint64_t>&
  digests_at_install() const {
    return digests_at_install_;
  }

  [[nodiscard]] std::uint64_t batches_applied() const {
    return batches_applied_;
  }
  [[nodiscard]] std::uint64_t ops_applied() const { return ops_applied_; }
  [[nodiscard]] std::size_t pending_ops() const { return pending_.size(); }

 private:
  void apply_op(const workload::ItemOp& op);

  std::map<workload::ItemId, Item> items_;
  std::vector<std::shared_ptr<const workload::ItemOp>> pending_;
  std::map<std::uint64_t, std::uint64_t> digests_at_install_;
  std::uint64_t batches_applied_ = 0;
  std::uint64_t ops_applied_ = 0;
};

}  // namespace svs::app
