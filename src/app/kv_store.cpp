#include "app/kv_store.hpp"

#include "util/contracts.hpp"

namespace svs::app {
namespace {

workload::ItemId hash_key(const std::string& key) {
  // FNV-1a 64.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const unsigned char c : key) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

KvStore::KvStore(core::Node& node, Config config)
    : node_(node),
      config_(config),
      composer_(config.batch),
      next_planned_seq_(node.next_seq()) {
  node_.set_unblocked_callback([this] { pump(); });
}

void KvStore::apply(const core::Delivery& delivery) {
  if (const auto* view = std::get_if<core::ViewDelivery>(&delivery)) {
    view_ = view->view;
  }
  table_.apply(delivery);
}

workload::ItemId KvStore::intern(const std::string& key) {
  const auto it = key_to_id_.find(key);
  if (it != key_to_id_.end()) return it->second;
  const workload::ItemId id = hash_key(key);
  const auto [rev, inserted] = id_to_key_.emplace(id, key);
  SVS_REQUIRE(inserted || rev->second == key,
              "key hash collision; use distinct keys");
  key_to_id_.emplace(key, id);
  return id;
}

std::optional<std::uint64_t> KvStore::get(const std::string& key) const {
  const auto it = key_to_id_.find(key);
  if (it == key_to_id_.end()) {
    const auto item = table_.get(hash_key(key));
    return item.has_value() ? std::optional(item->value) : std::nullopt;
  }
  const auto item = table_.get(it->second);
  return item.has_value() ? std::optional(item->value) : std::nullopt;
}

bool KvStore::is_primary() const {
  return view_.has_value() && !view_->members().empty() &&
         view_->members().front() == node_.id();
}

bool KvStore::put(const std::string& key, std::uint64_t value) {
  return put_all({{key, value}});
}

bool KvStore::put_all(
    const std::vector<std::pair<std::string, std::uint64_t>>& kvs) {
  if (!is_primary() || kvs.empty()) return false;
  std::vector<std::pair<workload::ItemId, std::uint64_t>> puts;
  puts.reserve(kvs.size());
  for (const auto& [key, value] : kvs) {
    puts.emplace_back(intern(key), value);
  }
  enqueue_batch(puts, {});
  return true;
}

bool KvStore::erase(const std::string& key) {
  if (!is_primary()) return false;
  // The applied table is the source of truth — a freshly promoted primary
  // can erase keys interned by its predecessor.  (An erase racing the
  // not-yet-applied put of the same key is refused; callers see their own
  // writes only once the delivery loop has run.)
  if (!get(key).has_value()) return false;
  enqueue_batch({}, {intern(key)});
  return true;
}

void KvStore::enqueue_batch(
    const std::vector<std::pair<workload::ItemId, std::uint64_t>>& puts,
    const std::vector<workload::ItemId>& erases) {
  const std::uint64_t round = write_round_++;
  composer_.begin();
  for (const auto& [id, value] : puts) composer_.add_item(id);
  for (const auto id : erases) composer_.add_item(id);

  const std::size_t total = puts.size() + erases.size();
  SVS_ASSERT(total > 0, "empty batch");
  std::size_t k = 0;
  for (const auto& [id, value] : puts) {
    const std::uint64_t seq = next_planned_seq_++;
    const bool last = ++k == total;
    obs::Annotation ann = obs::Annotation::none();
    if (last) {
      ann = composer_.commit(seq, id);
    } else {
      composer_.note_update_seq(id, seq);
    }
    outbox_.push_back(Planned{
        std::make_shared<workload::ItemOp>(workload::OpKind::update, id,
                                           value, round, last),
        std::move(ann), seq});
  }
  for (const auto id : erases) {
    const std::uint64_t seq = next_planned_seq_++;
    const bool last = ++k == total;
    obs::Annotation ann = obs::Annotation::none();
    if (last) {
      ann = composer_.commit(seq, id);
    } else {
      composer_.note_update_seq(id, seq);
    }
    outbox_.push_back(Planned{
        std::make_shared<workload::ItemOp>(workload::OpKind::destroy, id,
                                           /*value=*/0, round, last),
        std::move(ann), seq});
  }
  pump();
}

void KvStore::pump() {
  while (!outbox_.empty()) {
    Planned& head = outbox_.front();
    const auto seq = node_.multicast(head.payload, head.annotation);
    if (!seq.has_value()) return;  // retried on the unblocked callback
    SVS_ASSERT(*seq == head.seq,
               "KvStore must be the node's only multicast source");
    outbox_.pop_front();
  }
}

}  // namespace svs::app
