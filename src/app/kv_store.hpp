// Primary-backup replicated key-value store over SVS — the §4 usage
// pattern as a reusable component.
//
// One member (the lowest-ranked in the current view) acts as the primary
// and issues writes; every member applies the delivered stream to an
// ItemTable.  Multi-key transactions map to §4.1 composite updates: a batch
// of single-key messages whose last one carries the commit and the
// obsolescence annotation (k-enumeration by default).  Writes that hit flow
// control wait in an internal outbox and drain when the protocol unblocks,
// so transactions stay atomic and annotations stay consistent.
//
// Obsolescence here is what makes the store tolerate slow replicas: an
// overwritten value's message can be purged once the newer write's commit
// is on its way, so a lagging backup receives "less detailed information"
// (§1) but converges to the same state at every view installation.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "app/item_table.hpp"
#include "core/node.hpp"
#include "obs/batch.hpp"

namespace svs::app {

class KvStore {
 public:
  struct Config {
    obs::BatchComposer::Config batch{obs::AnnotationKind::k_enum, 32, 0};
  };

  /// Wraps a node.  The store must be the node's only multicast source.
  KvStore(core::Node& node, Config config);

  // -- replica side -------------------------------------------------------

  /// Wire this to the node's consumer sink.
  void apply(const core::Delivery& delivery);

  [[nodiscard]] std::optional<std::uint64_t> get(const std::string& key) const;
  [[nodiscard]] std::size_t size() const { return table_.size(); }
  [[nodiscard]] std::uint64_t digest() const { return table_.digest(); }
  [[nodiscard]] const ItemTable& table() const { return table_; }

  /// True once this replica's applied stream says it leads the view.
  [[nodiscard]] bool is_primary() const;
  [[nodiscard]] std::optional<core::View> applied_view() const {
    return view_;
  }

  // -- writer side (call on the primary) -----------------------------------

  /// Asynchronously replicates key := value.  Returns false if this replica
  /// is not the primary.
  bool put(const std::string& key, std::uint64_t value);

  /// Atomic multi-key write (one §4.1 composite update).
  bool put_all(const std::vector<std::pair<std::string, std::uint64_t>>& kvs);

  /// Removes a key (must exist from this writer's perspective).
  bool erase(const std::string& key);

  /// Writes not yet accepted by the protocol (blocked by flow control).
  [[nodiscard]] std::size_t outbox_depth() const { return outbox_.size(); }

 private:
  struct Planned {
    core::PayloadPtr payload;
    obs::Annotation annotation;
    std::uint64_t seq;
  };

  [[nodiscard]] workload::ItemId intern(const std::string& key);
  void enqueue_batch(
      const std::vector<std::pair<workload::ItemId, std::uint64_t>>& puts,
      const std::vector<workload::ItemId>& erases);
  void pump();

  core::Node& node_;
  Config config_;
  obs::BatchComposer composer_;
  ItemTable table_;
  std::optional<core::View> view_;

  std::unordered_map<std::string, workload::ItemId> key_to_id_;
  std::unordered_map<workload::ItemId, std::string> id_to_key_;
  std::uint64_t next_planned_seq_;
  std::uint64_t write_round_ = 0;  // batch counter fed into ItemOp::round
  std::deque<Planned> outbox_;
};

}  // namespace svs::app
