#include "app/item_table.hpp"

#include "util/contracts.hpp"

namespace svs::app {

void ItemTable::apply(const core::Delivery& delivery) {
  if (const auto* data = std::get_if<core::DataDelivery>(&delivery)) {
    const auto& payload = data->message->payload();
    SVS_REQUIRE(payload != nullptr &&
                    payload->payload_kind() == workload::ItemOp::kPayloadKind,
                "ItemTable expects ItemOp payloads");
    const auto op =
        std::static_pointer_cast<const workload::ItemOp>(payload);
    pending_.push_back(op);
    if (op->commit()) {
      for (const auto& p : pending_) apply_op(*p);
      ops_applied_ += pending_.size();
      pending_.clear();
      ++batches_applied_;
    }
    return;
  }
  if (const auto* view = std::get_if<core::ViewDelivery>(&delivery)) {
    // State as of the installation of the new view.  Pending (uncommitted)
    // operations are not part of the state; they were delivered, so the
    // rest of the batch is agreed to follow in the new view's flush —
    // however the protocol flushes *before* the view notification, so by
    // construction any pending tail here is a batch cut by a crashed
    // sender, which every surviving member cut identically.
    digests_at_install_[view->view.id().value()] = digest();
    return;
  }
  // Exclusion: nothing to update; the replica simply stops participating.
}

void ItemTable::apply_op(const workload::ItemOp& op) {
  switch (op.op()) {
    case workload::OpKind::create:
      SVS_REQUIRE(!items_.contains(op.item()), "create of an existing item");
      items_.emplace(op.item(), Item{op.value(), op.round()});
      break;
    case workload::OpKind::update: {
      // Upsert: persistent world items exist implicitly from the start
      // (only transients are created explicitly).  Transient updates always
      // find their item: creates are never obsolete and FIFO order places
      // them first.
      auto& item = items_[op.item()];
      item.value = op.value();
      item.updated_round = op.round();
      break;
    }
    case workload::OpKind::destroy:
      // Tolerates an absent item: every earlier write of it may have been
      // purged as obsolete (covered by this very batch's commit), in which
      // case a slow replica destroys something it never materialised.
      items_.erase(op.item());
      break;
  }
}

std::optional<ItemTable::Item> ItemTable::get(workload::ItemId id) const {
  const auto it = items_.find(id);
  if (it == items_.end()) return std::nullopt;
  return it->second;
}

std::uint64_t ItemTable::digest() const {
  // Order-independent is unnecessary (map iterates sorted); fold with a
  // strong mix so single-item differences cannot cancel out.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ULL;
    h ^= h >> 32;
  };
  for (const auto& [id, item] : items_) {
    mix(id);
    mix(item.value);
  }
  return h;
}

}  // namespace svs::app
