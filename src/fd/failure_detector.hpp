// Failure detector abstraction (§3.1: "an asynchronous message passing
// system model augmented with a failure detector").
//
// Consumers (the view-change protocol's t7 guard, the membership policy,
// consensus) only need the suspect predicate plus change notifications.
#pragma once

#include <functional>
#include <vector>

#include "net/types.hpp"

namespace svs::fd {

/// Unreliable failure detector interface.
///
/// Implementations are local to one process: each process owns its own
/// detector instance, as in the Chandra–Toueg model.
class FailureDetector {
 public:
  using Listener = std::function<void()>;

  FailureDetector() = default;
  FailureDetector(const FailureDetector&) = delete;
  FailureDetector& operator=(const FailureDetector&) = delete;
  virtual ~FailureDetector() = default;

  /// Does this process currently suspect `p` to have crashed?
  [[nodiscard]] virtual bool suspects(net::ProcessId p) const = 0;

  /// Invoked after every change of the suspect set.  Listeners re-evaluate
  /// their guards (e.g. Figure 1's t7 waits on "all unsuspected members
  /// answered").
  void subscribe(Listener listener);

 protected:
  /// Derived classes call this after mutating their suspect set.
  void notify_changed();

 private:
  std::vector<Listener> listeners_;
};

}  // namespace svs::fd
