// Oracle failure detector: perfect detection after a fixed delay.
//
// Reads the simulator's crash registry, so it never makes a false suspicion
// and suspects every crash exactly `detection_delay` after it happens.
// This models an eventually-perfect detector with a known bound and gives
// tests deterministic failure-detection timing; the heartbeat detector
// (fd/heartbeat.hpp) provides the realistic, message-based alternative.
#pragma once

#include <unordered_set>

#include "fd/failure_detector.hpp"
#include "net/transport.hpp"
#include "sim/simulator.hpp"

namespace svs::fd {

class OracleDetector final : public FailureDetector {
 public:
  /// One instance monitors crashes on behalf of one owner process.  The
  /// owner itself is never suspected (it would be dead, not suspicious).
  OracleDetector(sim::Simulator& simulator, net::Transport& network,
                 net::ProcessId owner, sim::Duration detection_delay);

  [[nodiscard]] bool suspects(net::ProcessId p) const override;

 private:
  void on_crash(net::ProcessId p, sim::TimePoint when);

  sim::Simulator& sim_;
  net::ProcessId owner_;
  sim::Duration detection_delay_;
  std::unordered_set<net::ProcessId> suspected_;
};

}  // namespace svs::fd
