// Heartbeat-based failure detector with adaptive timeouts.
//
// Every `interval` the owner broadcasts a heartbeat on the control lane.
// A peer is suspected when no heartbeat arrived within its current timeout;
// a late heartbeat from a suspected peer revokes the suspicion and enlarges
// that peer's timeout (multiplicatively), so in any run where delays
// eventually stabilise there is a time after which no correct process is
// suspected — the eventually-strong (◊S) behaviour the protocols assume.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "fd/failure_detector.hpp"
#include "net/message.hpp"
#include "net/transport.hpp"
#include "sim/simulator.hpp"

namespace svs::fd {

/// Control-lane heartbeat message.
class HeartbeatMessage final : public net::Message {
 public:
  HeartbeatMessage() : net::Message(net::MessageType::heartbeat) {}

  [[nodiscard]] std::size_t compute_wire_size() const override {
    return 1;  // the type tag is the whole message; sender/lane are framing
  }
};

class HeartbeatDetector final : public FailureDetector {
 public:
  struct Config {
    sim::Duration interval = sim::Duration::millis(20);
    sim::Duration initial_timeout = sim::Duration::millis(100);
    /// Timeout multiplier applied after a false suspicion (>= 1.0).
    double backoff = 2.0;
    sim::Duration max_timeout = sim::Duration::seconds(10.0);
  };

  /// Monitors `peers` (which must not contain `owner`) on behalf of `owner`.
  HeartbeatDetector(sim::Simulator& simulator, net::Transport& network,
                    net::ProcessId owner, std::vector<net::ProcessId> peers,
                    Config config);

  /// Begins emitting heartbeats and arming peer timers.
  void start();

  /// The owner's endpoint routes arriving HeartbeatMessages here.
  void on_heartbeat(net::ProcessId from);

  [[nodiscard]] bool suspects(net::ProcessId p) const override;

  /// Current timeout for a peer (exposed for tests of the adaptive rule).
  [[nodiscard]] sim::Duration timeout_of(net::ProcessId p) const;

 private:
  void broadcast();
  void arm_timer(net::ProcessId p);
  void on_timeout(net::ProcessId p);

  sim::Simulator& sim_;
  net::Transport& net_;
  net::ProcessId owner_;
  std::vector<net::ProcessId> peers_;
  Config config_;
  bool started_ = false;

  struct PeerState {
    sim::Duration timeout;
    sim::EventId timer;
    bool suspected = false;
  };
  std::unordered_map<net::ProcessId, PeerState> state_;
};

}  // namespace svs::fd
