#include "fd/swim.hpp"

#include <algorithm>

#include "util/contracts.hpp"
#include "util/pool.hpp"

namespace svs::fd {
namespace {

/// Dissemination budget: each update rides ~factor * log2(n) messages, the
/// classic SWIM bound for whole-group epidemic coverage.
std::uint32_t dissemination_budget(std::size_t group, std::uint32_t factor) {
  std::uint32_t lg = 0;
  while ((std::uint64_t{1} << lg) < group + 1) ++lg;
  return std::max<std::uint32_t>(1, factor * (lg + 1));
}

}  // namespace

SwimDetector::SwimDetector(sim::Simulator& simulator, net::Transport& network,
                           net::ProcessId owner,
                           std::vector<net::ProcessId> peers, Config config)
    : sim_(simulator),
      net_(network),
      owner_(owner),
      peers_(std::move(peers)),
      config_(config),
      rng_(sim::Rng::stream(config.seed, owner.value())) {
  SVS_REQUIRE(config_.period > sim::Duration::zero(),
              "protocol period must be positive");
  SVS_REQUIRE(config_.direct_timeout > sim::Duration::zero() &&
                  config_.direct_timeout < config_.period,
              "direct timeout must fall inside the protocol period");
  SVS_REQUIRE(config_.suspicion_periods >= 1,
              "suspicion must last at least one protocol period");
  SVS_REQUIRE(config_.piggyback_limit >= 1,
              "dissemination needs at least one piggyback slot");
  SVS_REQUIRE(config_.retransmit_factor >= 1,
              "updates must ride at least one message");
  SVS_REQUIRE(std::find(peers_.begin(), peers_.end(), owner_) == peers_.end(),
              "a detector does not monitor its own process");
  for (const auto p : peers_) members_.emplace(p, Member{});
  update_budget_ =
      dissemination_budget(peers_.size() + 1, config_.retransmit_factor);
}

void SwimDetector::start() {
  SVS_REQUIRE(!started_, "detector already started");
  started_ = true;
  begin_probe();
  sim_.schedule_after(config_.period, [this] { on_period(); });
}

void SwimDetector::on_period() {
  resolve_probe();
  // Relay entries older than a full period can never be answered in a way
  // the origin still cares about; dropping them bounds the relay map.
  relays_.erase(relays_.begin(), relays_.lower_bound(relay_gc_floor_));
  relay_gc_floor_ = next_nonce_;
  begin_probe();
  sim_.schedule_after(config_.period, [this] { on_period(); });
}

void SwimDetector::resolve_probe() {
  if (probe_active_ && !probe_acked_) begin_suspicion(probe_target_);
  probe_active_ = false;
}

std::optional<net::ProcessId> SwimDetector::next_target() {
  // Shuffled round-robin (the SWIM paper's §4.3 refinement): every peer is
  // probed within one cycle, in an order reshuffled per cycle.  Confirmed
  // peers stay in the rotation: until the view layer excludes them they are
  // still members, and probing them is the recovery channel through which a
  // falsely confirmed (e.g. healed-partition) member refutes.
  if (peers_.empty()) return std::nullopt;
  if (probe_cursor_ >= probe_order_.size()) {
    probe_order_ = peers_;
    for (std::size_t i = probe_order_.size(); i > 1; --i) {
      std::swap(probe_order_[i - 1], probe_order_[rng_.below(i)]);
    }
    probe_cursor_ = 0;
  }
  return probe_order_[probe_cursor_++];
}

void SwimDetector::begin_probe() {
  if (peers_.empty()) return;
  const auto target = next_target();
  if (!target.has_value()) return;
  probe_active_ = true;
  probe_acked_ = false;
  probe_target_ = *target;
  probe_nonce_ = next_nonce_++;
  ++counters_.probes_sent;
  // Tell the accused: pinging a member we hold suspect or confirmed
  // re-enqueues that belief so it rides this very ping.  The target then
  // refutes with a bumped incarnation, and its strictly-higher alive is
  // the only update that can clear a confirm — the path that restores
  // accuracy after a healed partition left both sides confirming each
  // other.
  const Member& accused = members_.at(probe_target_);
  if (accused.state != State::alive) {
    enqueue_update(SwimUpdate{probe_target_,
                              accused.state == State::confirmed
                                  ? SwimUpdate::Status::confirm
                                  : SwimUpdate::Status::suspect,
                              accused.incarnation});
  }
  net_.send(owner_, probe_target_,
            util::pool_shared<SwimPingMessage>(probe_nonce_, take_piggyback()),
            net::Lane::control);
  const std::uint64_t nonce = probe_nonce_;
  sim_.schedule_after(config_.direct_timeout,
                      [this, nonce] { on_direct_timeout(nonce); });
}

void SwimDetector::on_direct_timeout(std::uint64_t nonce) {
  if (!probe_active_ || probe_nonce_ != nonce || probe_acked_) return;
  if (config_.indirect_probes == 0) return;
  // k random relays, distinct, excluding the target and confirmed peers.
  std::vector<net::ProcessId> candidates;
  candidates.reserve(peers_.size());
  for (const auto p : peers_) {
    if (p != probe_target_ && !confirmed(p)) candidates.push_back(p);
  }
  const std::size_t k = std::min(config_.indirect_probes, candidates.size());
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t pick = i + rng_.below(candidates.size() - i);
    std::swap(candidates[i], candidates[pick]);
    ++counters_.indirect_probes_sent;
    net_.send(owner_, candidates[i],
              util::pool_shared<SwimPingReqMessage>(
                  probe_nonce_, probe_target_, take_piggyback()),
              net::Lane::control);
  }
}

void SwimDetector::on_message(net::ProcessId from,
                              const net::MessagePtr& message) {
  switch (message->type()) {
    case net::MessageType::swim_ping:
      handle_ping(from, static_cast<const SwimPingMessage&>(*message));
      break;
    case net::MessageType::swim_ping_req:
      handle_ping_req(from, static_cast<const SwimPingReqMessage&>(*message));
      break;
    case net::MessageType::swim_ack:
      handle_ack(from, static_cast<const SwimAckMessage&>(*message));
      break;
    default:
      break;  // not a SWIM message; ignore
  }
}

void SwimDetector::handle_ping(net::ProcessId from, const SwimPingMessage& m) {
  merge_updates(m.updates());
  net_.send(owner_, from,
            util::pool_shared<SwimAckMessage>(m.nonce(), owner_, incarnation_,
                                              take_piggyback()),
            net::Lane::control);
}

void SwimDetector::handle_ping_req(net::ProcessId from,
                                   const SwimPingReqMessage& m) {
  merge_updates(m.updates());
  if (m.target() == owner_) {
    // Degenerate relay request; answer for ourselves directly.
    net_.send(owner_, from,
              util::pool_shared<SwimAckMessage>(m.nonce(), owner_,
                                                incarnation_,
                                                take_piggyback()),
              net::Lane::control);
    return;
  }
  const std::uint64_t relay_nonce = next_nonce_++;
  relays_.emplace(relay_nonce, Relay{from, m.nonce()});
  ++counters_.ping_reqs_relayed;
  net_.send(owner_, m.target(),
            util::pool_shared<SwimPingMessage>(relay_nonce, take_piggyback()),
            net::Lane::control);
}

void SwimDetector::handle_ack(net::ProcessId from, const SwimAckMessage& m) {
  (void)from;
  merge_updates(m.updates());
  ++counters_.acks_received;
  // The ack certifies its subject alive at the carried incarnation.
  apply_update(
      SwimUpdate{m.subject(), SwimUpdate::Status::alive, m.incarnation()});
  if (probe_active_ && m.nonce() == probe_nonce_ &&
      m.subject() == probe_target_) {
    probe_acked_ = true;
  }
  const auto relay = relays_.find(m.nonce());
  if (relay != relays_.end()) {
    net_.send(owner_, relay->second.origin,
              util::pool_shared<SwimAckMessage>(relay->second.origin_nonce,
                                                m.subject(), m.incarnation(),
                                                take_piggyback()),
              net::Lane::control);
    relays_.erase(relay);
  }
}

void SwimDetector::begin_suspicion(net::ProcessId p) {
  Member& member = members_.at(p);
  if (member.state != State::alive) return;  // already suspect or confirmed
  member.state = State::suspect;
  ++counters_.suspicions;
  enqueue_update(
      SwimUpdate{p, SwimUpdate::Status::suspect, member.incarnation});
  const std::uint64_t incarnation = member.incarnation;
  member.suspicion_timer = sim_.schedule_after(
      config_.period * static_cast<std::int64_t>(config_.suspicion_periods),
      [this, p, incarnation] { on_suspicion_timeout(p, incarnation); });
  notify_changed();
}

void SwimDetector::on_suspicion_timeout(net::ProcessId p,
                                        std::uint64_t incarnation) {
  Member& member = members_.at(p);
  member.suspicion_timer = sim::EventId{};
  // A refutation (or a fresher suspicion with its own timer) got here
  // first; this timeout is stale.
  if (member.state != State::suspect || member.incarnation != incarnation) {
    return;
  }
  member.state = State::confirmed;
  ++counters_.confirms;
  enqueue_update(
      SwimUpdate{p, SwimUpdate::Status::confirm, member.incarnation});
  notify_changed();
}

void SwimDetector::apply_update(const SwimUpdate& update) {
  if (update.member == owner_) {
    // Someone suspects — or has already confirmed — *us*: refute by
    // bumping our incarnation; the strictly-higher alive update beats the
    // stale suspicion or confirm wherever it arrives in time.  Refuting a
    // confirm matters after a healed partition: each side confirmed the
    // other while cut off, and only the accused's own bump can clear it.
    if ((update.status == SwimUpdate::Status::suspect ||
         update.status == SwimUpdate::Status::confirm) &&
        update.incarnation >= incarnation_) {
      incarnation_ = update.incarnation + 1;
      ++counters_.refutations;
      enqueue_update(
          SwimUpdate{owner_, SwimUpdate::Status::alive, incarnation_});
    } else if (update.status == SwimUpdate::Status::alive &&
               update.incarnation > incarnation_) {
      incarnation_ = update.incarnation;  // our own echo, round-tripped
    }
    return;
  }
  const auto it = members_.find(update.member);
  if (it == members_.end()) return;  // not a monitored peer
  Member& member = it->second;
  if (member.state == State::confirmed) {
    // Confirm is sticky — no same-incarnation gossip reopens it — but not
    // terminal: exclusion is the view layer's job, and while the member is
    // still in the view its own refutation (a strictly higher incarnation
    // alive) resurrects it.  Without this a healed partition leaves both
    // sides permanently confirming each other, and consensus — which needs
    // some coordinator eventually unsuspected by all (◊S) — never
    // terminates.
    if (update.status == SwimUpdate::Status::alive &&
        update.incarnation > member.incarnation) {
      member.state = State::alive;
      member.incarnation = update.incarnation;
      ++counters_.refutations;
      enqueue_update(update);
      notify_changed();
    }
    return;
  }
  switch (update.status) {
    case SwimUpdate::Status::alive:
      // Alive overrides suspect only with a strictly higher incarnation —
      // that is what makes a refutation unforgeable by stale gossip.
      if (update.incarnation > member.incarnation) {
        member.incarnation = update.incarnation;
        if (member.state == State::suspect) {
          member.state = State::alive;
          if (member.suspicion_timer.valid()) {
            sim_.cancel(member.suspicion_timer);
            member.suspicion_timer = sim::EventId{};
          }
          ++counters_.refutations;
          notify_changed();
        }
        enqueue_update(update);
      }
      break;
    case SwimUpdate::Status::suspect:
      if (member.state == State::alive
              ? update.incarnation >= member.incarnation
              : update.incarnation > member.incarnation) {
        member.incarnation = update.incarnation;
        if (member.state == State::alive) {
          member.state = State::suspect;
          ++counters_.suspicions;
          const std::uint64_t incarnation = member.incarnation;
          const net::ProcessId p = update.member;
          member.suspicion_timer = sim_.schedule_after(
              config_.period *
                  static_cast<std::int64_t>(config_.suspicion_periods),
              [this, p, incarnation] { on_suspicion_timeout(p, incarnation); });
          notify_changed();
        }
        enqueue_update(SwimUpdate{update.member, SwimUpdate::Status::suspect,
                                  member.incarnation});
      }
      break;
    case SwimUpdate::Status::confirm:
      member.state = State::confirmed;
      member.incarnation = std::max(member.incarnation, update.incarnation);
      if (member.suspicion_timer.valid()) {
        sim_.cancel(member.suspicion_timer);
        member.suspicion_timer = sim::EventId{};
      }
      ++counters_.confirms;
      enqueue_update(SwimUpdate{update.member, SwimUpdate::Status::confirm,
                                member.incarnation});
      notify_changed();
      break;
  }
}

void SwimDetector::merge_updates(const SwimUpdates& updates) {
  for (const auto& update : updates) apply_update(update);
}

void SwimDetector::enqueue_update(const SwimUpdate& update) {
  // One current update per member (the override rules already picked the
  // winner); a fresh update restarts the dissemination budget.
  dissemination_[update.member] = Dissemination{update, update_budget_};
}

SwimUpdates SwimDetector::take_piggyback() {
  SwimUpdates out;
  if (dissemination_.empty()) return out;
  // Least-transmitted entries first (fresh news spreads fastest); ties
  // break by member id, so selection is deterministic.
  std::vector<std::map<net::ProcessId, Dissemination>::iterator> entries;
  entries.reserve(dissemination_.size());
  for (auto it = dissemination_.begin(); it != dissemination_.end(); ++it) {
    entries.push_back(it);
  }
  std::sort(entries.begin(), entries.end(), [](const auto& a, const auto& b) {
    if (a->second.remaining != b->second.remaining) {
      return a->second.remaining > b->second.remaining;
    }
    return a->first < b->first;
  });
  const std::size_t take = std::min(config_.piggyback_limit, entries.size());
  out.reserve(take);
  for (std::size_t i = 0; i < take; ++i) {
    out.push_back(entries[i]->second.update);
    if (--entries[i]->second.remaining == 0) {
      dissemination_.erase(entries[i]);
    }
  }
  counters_.updates_piggybacked += out.size();
  return out;
}

bool SwimDetector::suspects(net::ProcessId p) const {
  const auto it = members_.find(p);
  return it != members_.end() && it->second.state != State::alive;
}

bool SwimDetector::confirmed(net::ProcessId p) const {
  const auto it = members_.find(p);
  return it != members_.end() && it->second.state == State::confirmed;
}

std::uint64_t SwimDetector::incarnation_of(net::ProcessId p) const {
  const auto it = members_.find(p);
  SVS_REQUIRE(it != members_.end(), "unknown peer");
  return it->second.incarnation;
}

}  // namespace svs::fd
