// SWIM-style failure detector (DESIGN.md §11).
//
// Instead of every member heartbeating every other member — O(n²) control
// messages per interval — each member probes ONE random peer per protocol
// period: a direct ping, then (on timeout) k indirect ping-req probes
// through random relays, then suspicion.  Suspicion carries the suspect's
// incarnation number; the suspect refutes by disseminating a higher-
// incarnation alive update, which beats the pending confirm.  Membership
// updates spread epidemically as bounded piggyback sections on the probe
// traffic itself, so the detector's per-member byte rate is constant in
// the group size.
//
// Every random choice (probe order shuffles, indirect-relay picks) comes
// from one sim::Rng stream seeded at construction, and every timer is a
// simulator event — two runs with the same seed are bit-identical, and a
// shrunk explorer scenario replays exactly.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "fd/failure_detector.hpp"
#include "net/message.hpp"
#include "net/transport.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "util/bytes.hpp"

namespace svs::fd {

/// One piggybacked membership update: (member, status, incarnation).
/// Status order matters for the override rules (confirm yields only to a
/// strictly higher-incarnation alive — the member's own refutation).
struct SwimUpdate {
  enum class Status : std::uint8_t { alive = 0, suspect = 1, confirm = 2 };

  net::ProcessId member;
  Status status = Status::alive;
  std::uint64_t incarnation = 0;

  /// Exact encoded size — the same arithmetic the codec writes (member
  /// varint, one status byte, incarnation varint).
  [[nodiscard]] std::size_t wire_size() const {
    return util::varint_size(member.value()) + 1 +
           util::varint_size(incarnation);
  }

  friend bool operator==(const SwimUpdate&, const SwimUpdate&) = default;
};

using SwimUpdates = std::vector<SwimUpdate>;

/// Exact encoded size of an update section (count varint + entries).
[[nodiscard]] inline std::size_t swim_updates_wire_size(
    const SwimUpdates& updates) {
  std::size_t n = util::varint_size(updates.size());
  for (const auto& update : updates) n += update.wire_size();
  return n;
}

/// Direct probe: "are you alive?"  The nonce matches the eventual ack to
/// the probe that asked.
class SwimPingMessage final : public net::Message {
 public:
  SwimPingMessage(std::uint64_t nonce, SwimUpdates updates)
      : net::Message(net::MessageType::swim_ping),
        nonce_(nonce),
        updates_(std::move(updates)) {}

  [[nodiscard]] std::uint64_t nonce() const { return nonce_; }
  [[nodiscard]] const SwimUpdates& updates() const { return updates_; }

  [[nodiscard]] std::size_t compute_wire_size() const override {
    return 1 + util::varint_size(nonce_) + swim_updates_wire_size(updates_);
  }

 private:
  std::uint64_t nonce_;
  SwimUpdates updates_;
};

/// Indirect probe request: "ping `target` for me".  The relay pings the
/// target with its own nonce and forwards the ack back under this one.
class SwimPingReqMessage final : public net::Message {
 public:
  SwimPingReqMessage(std::uint64_t nonce, net::ProcessId target,
                     SwimUpdates updates)
      : net::Message(net::MessageType::swim_ping_req),
        nonce_(nonce),
        target_(target),
        updates_(std::move(updates)) {}

  [[nodiscard]] std::uint64_t nonce() const { return nonce_; }
  [[nodiscard]] net::ProcessId target() const { return target_; }
  [[nodiscard]] const SwimUpdates& updates() const { return updates_; }

  [[nodiscard]] std::size_t compute_wire_size() const override {
    return 1 + util::varint_size(nonce_) +
           util::varint_size(target_.value()) +
           swim_updates_wire_size(updates_);
  }

 private:
  std::uint64_t nonce_;
  net::ProcessId target_;
  SwimUpdates updates_;
};

/// Probe answer.  `subject` is the member certified alive (the responder
/// for a direct ack, the probed target for a relayed one) at `incarnation`
/// — so an ack doubles as a refutation carrier.
class SwimAckMessage final : public net::Message {
 public:
  SwimAckMessage(std::uint64_t nonce, net::ProcessId subject,
                 std::uint64_t incarnation, SwimUpdates updates)
      : net::Message(net::MessageType::swim_ack),
        nonce_(nonce),
        subject_(subject),
        incarnation_(incarnation),
        updates_(std::move(updates)) {}

  [[nodiscard]] std::uint64_t nonce() const { return nonce_; }
  [[nodiscard]] net::ProcessId subject() const { return subject_; }
  [[nodiscard]] std::uint64_t incarnation() const { return incarnation_; }
  [[nodiscard]] const SwimUpdates& updates() const { return updates_; }

  [[nodiscard]] std::size_t compute_wire_size() const override {
    return 1 + util::varint_size(nonce_) +
           util::varint_size(subject_.value()) +
           util::varint_size(incarnation_) + swim_updates_wire_size(updates_);
  }

 private:
  std::uint64_t nonce_;
  net::ProcessId subject_;
  std::uint64_t incarnation_;
  SwimUpdates updates_;
};

class SwimDetector final : public FailureDetector {
 public:
  struct Config {
    /// One probe target per protocol period.
    sim::Duration period = sim::Duration::millis(100);
    /// How long the direct ping may go unanswered before the k indirect
    /// ping-req probes go out.  Must leave room for the indirect round
    /// trip before the period ends.
    sim::Duration direct_timeout = sim::Duration::millis(30);
    /// k — indirect probe relays per failed direct probe.
    std::size_t indirect_probes = 3;
    /// Suspicion lasts this many protocol periods before it hardens into
    /// a confirm (unless a refutation lands first).
    std::uint32_t suspicion_periods = 3;
    /// Maximum membership updates piggybacked on one outgoing message.
    std::size_t piggyback_limit = 8;
    /// Each update rides ~retransmit_factor * log2(n) outgoing messages
    /// before it stops disseminating.
    std::uint32_t retransmit_factor = 3;
    /// Seed of this detector's private sim::Rng stream.
    std::uint64_t seed = 1;
  };

  /// Per-detector event counters, exposed for the state-machine unit
  /// tests and the cross-backend equivalence assertions.
  struct Counters {
    std::uint64_t probes_sent = 0;           // direct pings originated
    std::uint64_t acks_received = 0;         // acks arriving here
    std::uint64_t indirect_probes_sent = 0;  // ping-reqs originated
    std::uint64_t ping_reqs_relayed = 0;     // ping-reqs served as relay
    std::uint64_t suspicions = 0;            // transitions into suspect
    std::uint64_t refutations = 0;           // suspicions revoked by alive
    std::uint64_t confirms = 0;              // transitions into confirm
    std::uint64_t updates_piggybacked = 0;   // update entries shipped
  };

  /// Monitors `peers` (which must not contain `owner`) on behalf of
  /// `owner`.  All timers and random draws are deterministic functions of
  /// (config.seed, the simulator schedule).
  SwimDetector(sim::Simulator& simulator, net::Transport& network,
               net::ProcessId owner, std::vector<net::ProcessId> peers,
               Config config);

  /// Begins the protocol-period probe loop.
  void start();

  /// The owner's endpoint routes arriving swim_* messages here.
  void on_message(net::ProcessId from, const net::MessagePtr& message);

  /// Suspected = suspect or confirmed faulty.
  [[nodiscard]] bool suspects(net::ProcessId p) const override;

  /// Hardened suspicion (refutable only by the member's own
  /// higher-incarnation alive; exposed for tests).
  [[nodiscard]] bool confirmed(net::ProcessId p) const;

  [[nodiscard]] const Counters& counters() const { return counters_; }

  /// This member's own incarnation number (bumps on self-refutation).
  [[nodiscard]] std::uint64_t incarnation() const { return incarnation_; }

  /// Last known incarnation of a peer (exposed for tests).
  [[nodiscard]] std::uint64_t incarnation_of(net::ProcessId p) const;

 private:
  enum class State : std::uint8_t { alive, suspect, confirmed };

  struct Member {
    State state = State::alive;
    std::uint64_t incarnation = 0;
    sim::EventId suspicion_timer;
  };

  /// A pending dissemination entry: the current update for one member and
  /// how many more outgoing messages it may ride.
  struct Dissemination {
    SwimUpdate update;
    std::uint32_t remaining = 0;
  };

  /// A ping sent on behalf of someone else's ping-req: when the target's
  /// ack lands here, forward it to the origin under the origin's nonce.
  struct Relay {
    net::ProcessId origin;
    std::uint64_t origin_nonce = 0;
  };

  void on_period();
  void begin_probe();
  void resolve_probe();
  void on_direct_timeout(std::uint64_t nonce);
  void on_suspicion_timeout(net::ProcessId p, std::uint64_t incarnation);

  void handle_ping(net::ProcessId from, const SwimPingMessage& m);
  void handle_ping_req(net::ProcessId from, const SwimPingReqMessage& m);
  void handle_ack(net::ProcessId from, const SwimAckMessage& m);

  void begin_suspicion(net::ProcessId p);
  void apply_update(const SwimUpdate& update);
  void merge_updates(const SwimUpdates& updates);
  void enqueue_update(const SwimUpdate& update);
  [[nodiscard]] SwimUpdates take_piggyback();

  [[nodiscard]] std::optional<net::ProcessId> next_target();

  sim::Simulator& sim_;
  net::Transport& net_;
  net::ProcessId owner_;
  std::vector<net::ProcessId> peers_;
  Config config_;
  sim::Rng rng_;
  bool started_ = false;

  std::map<net::ProcessId, Member> members_;
  std::uint64_t incarnation_ = 0;

  // Shuffled round-robin probe order: every peer is probed once per n
  // periods, reshuffled each cycle.
  std::vector<net::ProcessId> probe_order_;
  std::size_t probe_cursor_ = 0;

  // The in-flight probe of the current protocol period.
  bool probe_active_ = false;
  bool probe_acked_ = false;
  net::ProcessId probe_target_;
  std::uint64_t probe_nonce_ = 0;

  std::uint64_t next_nonce_ = 1;
  std::map<std::uint64_t, Relay> relays_;
  std::uint64_t relay_gc_floor_ = 1;

  std::map<net::ProcessId, Dissemination> dissemination_;
  std::uint32_t update_budget_ = 1;

  Counters counters_;
};

}  // namespace svs::fd
