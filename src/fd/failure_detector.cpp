#include "fd/failure_detector.hpp"

#include <utility>

#include "util/contracts.hpp"

namespace svs::fd {

void FailureDetector::subscribe(Listener listener) {
  SVS_REQUIRE(listener != nullptr, "listener must be callable");
  listeners_.push_back(std::move(listener));
}

void FailureDetector::notify_changed() {
  // Copy: a listener may subscribe another listener while running.
  const auto snapshot = listeners_;
  for (const auto& l : snapshot) l();
}

}  // namespace svs::fd
