#include "fd/oracle.hpp"

namespace svs::fd {

OracleDetector::OracleDetector(sim::Simulator& simulator,
                               net::Transport& network, net::ProcessId owner,
                               sim::Duration detection_delay)
    : sim_(simulator), owner_(owner), detection_delay_(detection_delay) {
  SVS_REQUIRE(detection_delay >= sim::Duration::zero(),
              "detection delay must be >= 0");
  // Detectors must exist before any crash occurs; crashes that happened
  // earlier would be invisible.  All harnesses construct detectors at
  // simulation start, so subscribing is sufficient.
  network.subscribe_crash(
      [this](net::ProcessId p, sim::TimePoint when) { on_crash(p, when); });
}

void OracleDetector::on_crash(net::ProcessId p, sim::TimePoint when) {
  (void)when;
  if (p == owner_) return;  // the owner is dead, not suspicious
  sim_.schedule_after(detection_delay_, [this, p] {
    if (suspected_.insert(p).second) notify_changed();
  });
}

bool OracleDetector::suspects(net::ProcessId p) const {
  return suspected_.contains(p);
}

}  // namespace svs::fd
