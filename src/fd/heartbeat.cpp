#include "fd/heartbeat.hpp"

#include <algorithm>

#include "util/contracts.hpp"
#include "util/pool.hpp"

namespace svs::fd {

HeartbeatDetector::HeartbeatDetector(sim::Simulator& simulator,
                                     net::Transport& network,
                                     net::ProcessId owner,
                                     std::vector<net::ProcessId> peers,
                                     Config config)
    : sim_(simulator),
      net_(network),
      owner_(owner),
      peers_(std::move(peers)),
      config_(config) {
  SVS_REQUIRE(config_.interval > sim::Duration::zero(),
              "heartbeat interval must be positive");
  SVS_REQUIRE(config_.initial_timeout > config_.interval,
              "timeout must exceed the heartbeat interval");
  SVS_REQUIRE(config_.backoff >= 1.0, "backoff must be >= 1");
  SVS_REQUIRE(std::find(peers_.begin(), peers_.end(), owner_) == peers_.end(),
              "a detector does not monitor its own process");
  for (const auto p : peers_) {
    state_.emplace(p, PeerState{config_.initial_timeout, sim::EventId{}, false});
  }
}

void HeartbeatDetector::start() {
  SVS_REQUIRE(!started_, "detector already started");
  started_ = true;
  broadcast();
  for (const auto p : peers_) arm_timer(p);
}

void HeartbeatDetector::broadcast() {
  for (const auto p : peers_) {
    net_.send(owner_, p, util::pool_shared<HeartbeatMessage>(),
              net::Lane::control);
  }
  sim_.schedule_after(config_.interval, [this] { broadcast(); });
}

void HeartbeatDetector::arm_timer(net::ProcessId p) {
  PeerState& st = state_.at(p);
  if (st.timer.valid()) sim_.cancel(st.timer);
  st.timer = sim_.schedule_after(st.timeout, [this, p] { on_timeout(p); });
}

void HeartbeatDetector::on_timeout(net::ProcessId p) {
  PeerState& st = state_.at(p);
  st.timer = sim::EventId{};
  if (!st.suspected) {
    st.suspected = true;
    notify_changed();
  }
}

void HeartbeatDetector::on_heartbeat(net::ProcessId from) {
  const auto it = state_.find(from);
  if (it == state_.end()) return;  // not a monitored peer; ignore
  PeerState& st = it->second;
  if (st.suspected) {
    // False suspicion: revoke and adapt so it eventually stops recurring.
    st.suspected = false;
    const auto widened = sim::Duration::micros(static_cast<std::int64_t>(
        static_cast<double>(st.timeout.as_micros()) * config_.backoff));
    st.timeout = std::min(widened, config_.max_timeout);
    notify_changed();
  }
  arm_timer(from);
}

bool HeartbeatDetector::suspects(net::ProcessId p) const {
  const auto it = state_.find(p);
  return it != state_.end() && it->second.suspected;
}

sim::Duration HeartbeatDetector::timeout_of(net::ProcessId p) const {
  const auto it = state_.find(p);
  SVS_REQUIRE(it != state_.end(), "unknown peer");
  return it->second.timeout;
}

}  // namespace svs::fd
