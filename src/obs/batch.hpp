// Producer-side composition of obsolescence annotations for composite
// (multi-item) updates — §4.1 and Figure 2.
//
// A composite update (e.g. one game round) is split into a batch of
// single-item update messages terminated by a commit; "the role of the
// commit message can be performed by the last message in each update".
// Receivers apply a batch atomically when its commit arrives (FIFO order
// guarantees the batch precedes it).  Obsolescence rules:
//
//   * plain (non-final) update messages never obsolete anything — "only the
//     commit messages, and not the individual updates, can make messages
//     from previous batches obsolete";
//   * the commit declares obsolete, for every item the batch updates, that
//     item's previous update message — Figure 2: C(2) makes U(b,1) obsolete,
//     not U(b,2);
//   * a message that itself carried a commit for a multi-item batch B may
//     only be declared obsolete by a commit whose batch is a superset of B
//     ("we only have m ⊑ m' if the set of items updated by m' is a super-set
//     of the items updated by m") — otherwise purging the carrier would
//     break the atomic application of B's surviving updates.  Singleton
//     batches degenerate to plain single-item semantics;
//   * transitive closure is folded into the annotation (k-enum: shift/OR of
//     the predecessor's bitmap; enumeration: union of its list), so the
//     relation oracles can answer ⊑ with a single lookup.
#pragma once

#include <cstdint>
#include <optional>
#include <set>
#include <unordered_map>
#include <vector>

#include "obs/annotation.hpp"
#include "obs/kbitmap.hpp"

namespace svs::obs {

class BatchComposer {
 public:
  struct Config {
    /// Representation produced for commit messages; plain updates always
    /// carry Annotation::none().  item_tag is only valid for streams of
    /// singleton batches (§4.2: tagging "cannot be easily extended to
    /// applications that use multi-item composite updates").
    AnnotationKind representation = AnnotationKind::k_enum;
    /// k-enum bitmap horizon (paper: "k equal to twice the buffer size").
    std::size_t k = 32;
    /// Enumerations drop seqs further than this behind the commit
    /// (0 = unbounded) — the paper's "only the recent messages from the
    /// enumeration need to be carried" optimisation.
    std::uint64_t enumeration_window = 0;
  };

  explicit BatchComposer(Config config);

  /// Starts a new composite update.  No batch may be in progress.
  void begin();

  /// Declares that the current batch updates `item` (idempotent).
  void add_item(std::uint64_t item);

  /// Annotation for a non-final update message of the batch.
  [[nodiscard]] Annotation update_annotation() const {
    return Annotation::none();
  }

  /// Records the sequence number the protocol assigned to the batch's
  /// update of `item` (call right after multicasting it).
  void note_update_seq(std::uint64_t item, std::uint64_t seq);

  /// Finishes the batch: computes the commit-carrier's annotation given the
  /// sequence number it will be multicast with.  `carrier_item` is the item
  /// whose update doubles as the commit (must be in the batch; every other
  /// batch item must have a noted seq < commit_seq).
  Annotation commit(std::uint64_t commit_seq, std::uint64_t carrier_item);

  /// Single-message convenience: a singleton batch in one call.
  Annotation single(std::uint64_t item, std::uint64_t seq);

  [[nodiscard]] bool in_batch() const { return in_batch_; }
  [[nodiscard]] const Config& config() const { return config_; }

 private:
  struct ItemRecord {
    std::uint64_t seq = 0;
    KBitmap closure{0};                     // for k_enum
    std::vector<std::uint64_t> enum_closure;  // for enumeration (sorted)
    bool multi_carrier = false;  // carried a commit for a multi-item batch
    std::set<std::uint64_t> batch_items;  // that batch's items (if carrier)
  };

  Config config_;
  bool in_batch_ = false;
  std::set<std::uint64_t> batch_items_;
  std::unordered_map<std::uint64_t, std::uint64_t> noted_seqs_;
  std::unordered_map<std::uint64_t, ItemRecord> last_;
};

}  // namespace svs::obs
