#include "obs/annotation.hpp"

#include <algorithm>
#include <utility>

#include "util/contracts.hpp"

namespace svs::obs {

Annotation Annotation::item(std::uint64_t tag) {
  Annotation a;
  a.kind_ = AnnotationKind::item_tag;
  a.tag_ = tag;
  return a;
}

Annotation Annotation::enumerate(std::vector<std::uint64_t> seqs) {
  Annotation a;
  a.kind_ = AnnotationKind::enumeration;
  std::sort(seqs.begin(), seqs.end());
  seqs.erase(std::unique(seqs.begin(), seqs.end()), seqs.end());
  a.enumerated_ = std::move(seqs);
  return a;
}

Annotation Annotation::kenum(KBitmap bitmap) {
  Annotation a;
  a.kind_ = AnnotationKind::k_enum;
  a.bitmap_ = std::move(bitmap);
  return a;
}

std::uint64_t Annotation::tag() const {
  SVS_REQUIRE(kind_ == AnnotationKind::item_tag, "not an item-tag annotation");
  return tag_;
}

const std::vector<std::uint64_t>& Annotation::enumerated() const {
  SVS_REQUIRE(kind_ == AnnotationKind::enumeration,
              "not an enumeration annotation");
  return enumerated_;
}

const KBitmap& Annotation::bitmap() const {
  SVS_REQUIRE(kind_ == AnnotationKind::k_enum, "not a k-enum annotation");
  return bitmap_;
}

std::size_t Annotation::wire_size() const {
  switch (kind_) {
    case AnnotationKind::none:
      return 1;
    case AnnotationKind::item_tag:
      return 1 + util::varint_size(tag_);
    case AnnotationKind::enumeration: {
      // Delta encoding between sorted seqs, as a real implementation would.
      std::size_t n = 1 + util::varint_size(enumerated_.size());
      std::uint64_t prev = 0;
      for (const auto s : enumerated_) {
        n += util::varint_size(s - prev);
        prev = s;
      }
      return n;
    }
    case AnnotationKind::k_enum:
      return 1 + bitmap_.wire_size();
  }
  SVS_UNREACHABLE("invalid annotation kind");
}

void Annotation::encode(util::ByteWriter& writer) const {
  writer.u8(static_cast<std::uint8_t>(kind_));
  switch (kind_) {
    case AnnotationKind::none:
      break;
    case AnnotationKind::item_tag:
      writer.u64(tag_);
      break;
    case AnnotationKind::enumeration: {
      writer.u64(enumerated_.size());
      std::uint64_t prev = 0;
      for (const auto s : enumerated_) {
        writer.u64(s - prev);
        prev = s;
      }
      break;
    }
    case AnnotationKind::k_enum:
      bitmap_.encode(writer);
      break;
  }
}

Annotation Annotation::decode(util::ByteReader& reader) {
  const std::uint8_t kind_raw = reader.u8();
  // Wire-facing: a bad tag is malformed input (ContractViolation), never UB.
  SVS_REQUIRE(kind_raw <= static_cast<std::uint8_t>(AnnotationKind::k_enum),
              "bad annotation kind on the wire");
  switch (static_cast<AnnotationKind>(kind_raw)) {
    case AnnotationKind::none:
      return none();
    case AnnotationKind::item_tag:
      return item(reader.u64());
    case AnnotationKind::enumeration: {
      const std::uint64_t n = reader.u64();
      // Each delta is at least one byte: bounds the allocation below.
      SVS_REQUIRE(n <= reader.remaining(),
                  "enumeration longer than the buffer");
      std::vector<std::uint64_t> seqs;
      seqs.reserve(n);
      std::uint64_t prev = 0;
      for (std::uint64_t i = 0; i < n; ++i) {
        prev += reader.u64();
        seqs.push_back(prev);
      }
      return enumerate(std::move(seqs));
    }
    case AnnotationKind::k_enum:
      return kenum(KBitmap::decode(reader));
  }
  SVS_UNREACHABLE("kind range checked above");
}

}  // namespace svs::obs
