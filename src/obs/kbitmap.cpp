#include "obs/kbitmap.hpp"

#include <algorithm>
#include <bit>

#include "util/contracts.hpp"

namespace svs::obs {

KBitmap::KBitmap(std::size_t k)
    : k_(k), words_((k + kWordBits - 1) / kWordBits, 0) {}

void KBitmap::set(std::size_t distance) {
  SVS_REQUIRE(distance >= 1 && distance <= k_,
              "distance outside the bitmap horizon");
  const std::size_t bit = distance - 1;
  words_[bit / kWordBits] |= std::uint64_t{1} << (bit % kWordBits);
}

bool KBitmap::test(std::size_t distance) const {
  if (distance < 1 || distance > k_) return false;
  const std::size_t bit = distance - 1;
  return (words_[bit / kWordBits] >> (bit % kWordBits)) & 1U;
}

void KBitmap::compose(const KBitmap& predecessor, std::size_t distance) {
  SVS_REQUIRE(distance >= 1, "predecessor distance must be >= 1");
  if (distance > k_) return;  // beyond the horizon: nothing representable
  set(distance);
  // this |= predecessor << distance, clipped at the horizon — pure word
  // shifts and ORs, which is the efficiency argument of §4.2.
  const std::size_t word_shift = distance / kWordBits;
  const std::size_t bit_shift = distance % kWordBits;
  for (std::size_t i = words_.size(); i-- > word_shift;) {
    const std::size_t src = i - word_shift;
    std::uint64_t v = 0;
    if (src < predecessor.words_.size()) {
      v = predecessor.words_[src] << bit_shift;
    }
    if (bit_shift != 0 && src >= 1 && src - 1 < predecessor.words_.size()) {
      v |= predecessor.words_[src - 1] >> (kWordBits - bit_shift);
    }
    words_[i] |= v;
  }
  clear_tail();
}

void KBitmap::merge(const KBitmap& other) {
  const std::size_t n = std::min(words_.size(), other.words_.size());
  for (std::size_t i = 0; i < n; ++i) words_[i] |= other.words_[i];
  clear_tail();
}

void KBitmap::clear_tail() {
  if (words_.empty()) return;
  const std::size_t used = k_ % kWordBits;
  if (used != 0) {
    words_.back() &= (std::uint64_t{1} << used) - 1;
  }
}

bool KBitmap::empty() const {
  for (const auto w : words_) {
    if (w != 0) return false;
  }
  return true;
}

std::size_t KBitmap::popcount() const {
  std::size_t n = 0;
  for (const auto w : words_) n += static_cast<std::size_t>(std::popcount(w));
  return n;
}

std::vector<std::size_t> KBitmap::set_distances() const {
  std::vector<std::size_t> out;
  for (std::size_t d = 1; d <= k_; ++d) {
    if (test(d)) out.push_back(d);
  }
  return out;
}

std::size_t KBitmap::wire_size() const {
  return util::varint_size(k_) + (k_ + 7) / 8;
}

void KBitmap::encode(util::ByteWriter& writer) const {
  writer.u64(k_);
  for (std::size_t byte = 0; byte < (k_ + 7) / 8; ++byte) {
    std::uint8_t b = 0;
    for (std::size_t i = 0; i < 8; ++i) {
      const std::size_t d = byte * 8 + i + 1;
      if (test(d)) b |= static_cast<std::uint8_t>(1U << i);
    }
    writer.u8(b);
  }
}

KBitmap KBitmap::decode(util::ByteReader& reader) {
  const std::uint64_t k = reader.u64();
  // The payload is ceil(k/8) bytes; a horizon the buffer cannot possibly
  // hold is malformed input, not a gigabyte allocation.
  SVS_REQUIRE(k <= 8 * static_cast<std::uint64_t>(reader.remaining()),
              "bitmap horizon longer than the buffer");
  KBitmap bm(static_cast<std::size_t>(k));
  for (std::size_t byte = 0; byte < (k + 7) / 8; ++byte) {
    const std::uint8_t b = reader.u8();
    for (std::size_t i = 0; i < 8; ++i) {
      const std::size_t d = byte * 8 + i + 1;
      if (d <= k && ((b >> i) & 1U) != 0) bm.set(d);
    }
  }
  return bm;
}

}  // namespace svs::obs
