// Obsolescence relation oracles.
//
// §3.2: the relation '≺' is an irreflexive partial order on messages; the
// protocol only ever asks "does newer make older obsolete?".  Relation
// implementations answer that from the messages' sender/sequence identity
// and their annotations.  covers() must return the *strict transitive*
// relation (m ≺ m'), i.e. implementations answer for the transitive closure;
// the provided representations achieve this because producers encode
// closures into the annotations (see batch.hpp and the paper's §4.2 note on
// preserving transitivity).
//
// The same-view restriction of Figure 1's purge function is enforced by the
// protocol (core/), not here.
#pragma once

#include <cstdint>
#include <memory>
#include <set>
#include <utility>

#include "net/types.hpp"
#include "obs/annotation.hpp"

namespace svs::obs {

/// Identity + annotation of a message as seen by a relation.
struct MessageRef {
  net::ProcessId sender;
  std::uint64_t seq = 0;
  const Annotation* annotation = nullptr;  // never null when passed to covers
};

/// Oracle for the obsolescence partial order.
class Relation {
 public:
  Relation() = default;
  Relation(const Relation&) = delete;
  Relation& operator=(const Relation&) = delete;
  virtual ~Relation() = default;

  /// True iff `older ≺ newer` (strict).  Implementations must be
  /// irreflexive and antisymmetric by construction and transitive given
  /// closure-carrying annotations.
  [[nodiscard]] virtual bool covers(const MessageRef& newer,
                                    const MessageRef& older) const = 0;

  /// True when the relation only ever relates messages of the same sender
  /// with the newer one carrying the higher sequence number (all of §4.2's
  /// representations).  The protocol exploits this: with FIFO channels a
  /// fresh arrival has the highest seq of its sender at the receiver, so
  /// nothing already accepted can cover it and the t3 suppression test can
  /// skip scanning the delivered history.  It is also what lets the
  /// delivery queue index entries by sender and purge without a full scan.
  [[nodiscard]] virtual bool per_sender() const { return false; }

  /// Lowest same-sender sequence number `newer` can possibly cover — the
  /// per-sender fast path through the representations (DESIGN.md §2): an
  /// indexed purge only visits seqs in [coverage_floor(newer), newer.seq)
  /// instead of every entry of the sender.  Must be conservative (may
  /// under-estimate, never over-estimate).  Only meaningful for per_sender
  /// relations; the default claims the whole prefix.
  [[nodiscard]] virtual std::uint64_t coverage_floor(
      const MessageRef& newer) const {
    (void)newer;
    return 0;
  }

  /// Human-readable name for reports.
  [[nodiscard]] virtual const char* name() const = 0;
};

using RelationPtr = std::shared_ptr<const Relation>;

/// The empty relation: nothing is ever obsolete.  With it, SVS reduces to
/// conventional View Synchrony (§3.2: "If no messages m, m' exist such that
/// m ≺ m', SVS reduces to conventional VS") — this is the paper's
/// "reliable" baseline.
class EmptyRelation final : public Relation {
 public:
  [[nodiscard]] bool per_sender() const override { return true; }
  [[nodiscard]] bool covers(const MessageRef&,
                            const MessageRef&) const override {
    return false;
  }
  [[nodiscard]] std::uint64_t coverage_floor(
      const MessageRef& newer) const override {
    return newer.seq;  // covers nothing: the scan range is empty
  }
  [[nodiscard]] const char* name() const override { return "reliable"; }
};

/// Item tagging (§4.2): same sender + same tag, higher sequence wins.
class ItemTagRelation final : public Relation {
 public:
  [[nodiscard]] bool per_sender() const override { return true; }
  [[nodiscard]] bool covers(const MessageRef& newer,
                            const MessageRef& older) const override;
  [[nodiscard]] const char* name() const override { return "item-tag"; }
};

/// Message enumeration (§4.2): the newer message explicitly lists the
/// sequence numbers (same sender) it obsoletes.
class EnumerationRelation final : public Relation {
 public:
  [[nodiscard]] bool per_sender() const override { return true; }
  [[nodiscard]] bool covers(const MessageRef& newer,
                            const MessageRef& older) const override;
  [[nodiscard]] std::uint64_t coverage_floor(
      const MessageRef& newer) const override;
  [[nodiscard]] const char* name() const override { return "enumeration"; }
};

/// k-enumeration (§4.2): "m ⊑ m' if m'.sn − k <= m.sn < m'.sn and
/// m'.bm[m'.sn − m.sn]".
class KEnumRelation final : public Relation {
 public:
  [[nodiscard]] bool per_sender() const override { return true; }
  [[nodiscard]] bool covers(const MessageRef& newer,
                            const MessageRef& older) const override;
  [[nodiscard]] std::uint64_t coverage_floor(
      const MessageRef& newer) const override;
  [[nodiscard]] const char* name() const override { return "k-enumeration"; }
};

/// Test helper: an arbitrary, explicitly constructed partial order over
/// (sender, seq) pairs — including cross-sender pairs, which the abstract
/// SVS specification permits even though the compact representations are
/// per-sender.  add() inserts an edge and maintains the transitive closure;
/// it rejects edges that would create a cycle (the relation must stay a
/// strict partial order).
class ExplicitRelation final : public Relation {
 public:
  using Key = std::pair<std::uint32_t, std::uint64_t>;  // (sender raw, seq)

  void add(net::ProcessId obsolete_sender, std::uint64_t obsolete_seq,
           net::ProcessId newer_sender, std::uint64_t newer_seq);

  [[nodiscard]] bool covers(const MessageRef& newer,
                            const MessageRef& older) const override;
  [[nodiscard]] const char* name() const override { return "explicit"; }

  [[nodiscard]] std::size_t edge_count() const { return edges_.size(); }

 private:
  [[nodiscard]] bool has_edge(const Key& older, const Key& newer) const;

  std::set<std::pair<Key, Key>> edges_;  // (older, newer), closed
};

}  // namespace svs::obs
