// k-enumeration bitmap (§4.2).
//
// "Each message explicitly enumerates which of the k preceding messages it
//  makes obsolete.  This information can be stored in a bitmap of k size.
//  If the nth position of the bitmap is set to true, the message makes
//  obsolete the nth preceding message. [...] makes it very easy to compute
//  the representation of transitive obsolescence relations using only shift
//  and binary 'or' operators."
//
// Bit for distance d (1-based: d = this.seq - other.seq) is stored at index
// d-1.  compose() implements the shift/OR transitivity rule: declaring that
// this message obsoletes its predecessor at distance d also inherits (shifted
// by d) everything that predecessor declared obsolete.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/bytes.hpp"

namespace svs::obs {

class KBitmap {
 public:
  /// Creates an empty bitmap with horizon `k` (max representable distance).
  /// k = 0 produces a bitmap that can never mark anything (useful as the
  /// annotation of messages that obsolete nothing).
  explicit KBitmap(std::size_t k = 0);

  [[nodiscard]] std::size_t k() const { return k_; }

  /// Marks the predecessor at distance d (1 <= d <= k) as obsoleted.
  void set(std::size_t distance);

  /// True if the predecessor at distance d is marked.  Distances outside
  /// [1, k] are never marked.
  [[nodiscard]] bool test(std::size_t distance) const;

  /// Inherits a predecessor's obsolescences: this |= (pred << d) | bit(d).
  /// Bits shifted beyond the horizon are dropped — the paper's observation
  /// that "it is very unlikely that two messages far apart in the message
  /// stream can be found simultaneously in the same buffer" makes the loss
  /// harmless as long as k is at least the buffer span (k = 2x buffer size
  /// in §5.2).
  void compose(const KBitmap& predecessor, std::size_t distance);

  /// ORs another bitmap at distance 0 (used when several predecessors are
  /// merged into a commit; see batch.hpp).
  void merge(const KBitmap& other);

  [[nodiscard]] bool empty() const;
  [[nodiscard]] std::size_t popcount() const;

  /// Set distances in increasing order (test/debug helper).
  [[nodiscard]] std::vector<std::size_t> set_distances() const;

  /// Encoded size: varint(k) + ceil(k/8) payload bytes (fixed-size bitmap as
  /// the paper prescribes — compactness is the point of the technique).
  [[nodiscard]] std::size_t wire_size() const;
  void encode(util::ByteWriter& writer) const;
  static KBitmap decode(util::ByteReader& reader);

  friend bool operator==(const KBitmap&, const KBitmap&) = default;

 private:
  static constexpr std::size_t kWordBits = 64;

  /// Zeroes bits beyond the horizon after word-wise operations.
  void clear_tail();

  std::size_t k_;
  std::vector<std::uint64_t> words_;
};

}  // namespace svs::obs
