#include "obs/batch.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace svs::obs {

BatchComposer::BatchComposer(Config config) : config_(config) {
  SVS_REQUIRE(config_.representation == AnnotationKind::k_enum ||
                  config_.representation == AnnotationKind::enumeration ||
                  config_.representation == AnnotationKind::item_tag,
              "commit representation must be k_enum, enumeration or item_tag");
  if (config_.representation == AnnotationKind::k_enum) {
    SVS_REQUIRE(config_.k >= 1, "k-enum horizon must be at least 1");
  }
}

void BatchComposer::begin() {
  SVS_REQUIRE(!in_batch_, "previous batch not committed");
  in_batch_ = true;
  batch_items_.clear();
  noted_seqs_.clear();
}

void BatchComposer::add_item(std::uint64_t item) {
  SVS_REQUIRE(in_batch_, "no batch in progress");
  batch_items_.insert(item);
}

void BatchComposer::note_update_seq(std::uint64_t item, std::uint64_t seq) {
  SVS_REQUIRE(in_batch_, "no batch in progress");
  SVS_REQUIRE(batch_items_.contains(item), "item not in the current batch");
  noted_seqs_[item] = seq;
}

Annotation BatchComposer::commit(std::uint64_t commit_seq,
                                 std::uint64_t carrier_item) {
  SVS_REQUIRE(in_batch_, "no batch in progress");
  SVS_REQUIRE(batch_items_.contains(carrier_item),
              "carrier item must belong to the batch");
  for (const auto item : batch_items_) {
    if (item == carrier_item) continue;
    const auto noted = noted_seqs_.find(item);
    SVS_REQUIRE(noted != noted_seqs_.end() && noted->second < commit_seq,
                "every non-carrier item needs a noted seq below the commit's");
  }
  if (config_.representation == AnnotationKind::item_tag) {
    SVS_REQUIRE(batch_items_.size() == 1,
                "item tagging only supports singleton batches");
  }

  // Gather the obsolescence declared by this commit.
  KBitmap bitmap(config_.k);
  std::vector<std::uint64_t> enumerated;
  for (const auto item : batch_items_) {
    const auto rec = last_.find(item);
    if (rec == last_.end()) continue;  // first update of this item
    const ItemRecord& prev = rec->second;
    SVS_REQUIRE(prev.seq < commit_seq, "sequence numbers must be monotone");

    // The super-set rule: a multi-item commit carrier survives unless this
    // batch updates all items of its batch.
    if (prev.multi_carrier &&
        !std::includes(batch_items_.begin(), batch_items_.end(),
                       prev.batch_items.begin(), prev.batch_items.end())) {
      continue;
    }

    switch (config_.representation) {
      case AnnotationKind::k_enum: {
        const std::uint64_t distance = commit_seq - prev.seq;
        if (distance <= config_.k) {
          bitmap.compose(prev.closure, static_cast<std::size_t>(distance));
        }
        break;
      }
      case AnnotationKind::enumeration: {
        enumerated.push_back(prev.seq);
        enumerated.insert(enumerated.end(), prev.enum_closure.begin(),
                          prev.enum_closure.end());
        break;
      }
      case AnnotationKind::item_tag:
        break;  // tag identity is the whole representation
      default:
        SVS_UNREACHABLE("unsupported representation");
    }
  }

  Annotation annotation = Annotation::none();
  switch (config_.representation) {
    case AnnotationKind::k_enum:
      annotation = Annotation::kenum(bitmap);
      break;
    case AnnotationKind::enumeration: {
      if (config_.enumeration_window != 0) {
        const std::uint64_t floor =
            commit_seq > config_.enumeration_window
                ? commit_seq - config_.enumeration_window
                : 0;
        std::erase_if(enumerated,
                      [floor](std::uint64_t s) { return s < floor; });
      }
      annotation = Annotation::enumerate(std::move(enumerated));
      break;
    }
    case AnnotationKind::item_tag:
      annotation = Annotation::item(carrier_item);
      break;
    default:
      SVS_UNREACHABLE("unsupported representation");
  }

  // Update per-item records for future batches.
  const bool multi = batch_items_.size() > 1;
  for (const auto item : batch_items_) {
    ItemRecord rec;
    if (item == carrier_item) {
      rec.seq = commit_seq;
      rec.multi_carrier = multi;
      if (multi) rec.batch_items = batch_items_;
      if (config_.representation == AnnotationKind::k_enum) {
        rec.closure = annotation.kind() == AnnotationKind::k_enum
                          ? annotation.bitmap()
                          : KBitmap(config_.k);
      } else if (config_.representation == AnnotationKind::enumeration) {
        rec.enum_closure = annotation.kind() == AnnotationKind::enumeration
                               ? annotation.enumerated()
                               : std::vector<std::uint64_t>{};
      }
    } else {
      rec.seq = noted_seqs_.at(item);
      rec.closure = KBitmap(config_.representation == AnnotationKind::k_enum
                                ? config_.k
                                : 0);
    }
    last_[item] = std::move(rec);
  }

  in_batch_ = false;
  return annotation;
}

Annotation BatchComposer::single(std::uint64_t item, std::uint64_t seq) {
  begin();
  add_item(item);
  return commit(seq, item);
}

}  // namespace svs::obs
