// Obsolescence annotations: how a multicast message tells the protocol which
// earlier messages it makes obsolete (§4.2).
//
// "we prefer to let the application supply this information to the protocol
//  as an extra parameter of the multicast operation"
//
// Three representation techniques from the paper plus the trivial empty one:
//   - none:         the message obsoletes nothing (also: reliable baseline)
//   - item_tag:     integer tag; same sender + same tag + higher seq covers
//   - enumeration:  explicit list of obsoleted predecessor seqs (transitive
//                   closure included by the producer)
//   - k_enum:       distance bitmap over the k preceding messages
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "obs/kbitmap.hpp"
#include "util/bytes.hpp"

namespace svs::obs {

enum class AnnotationKind : std::uint8_t {
  none = 0,
  item_tag = 1,
  enumeration = 2,
  k_enum = 3,
};

/// Value object attached to each multicast.  Exactly one representation is
/// active, selected by kind().
class Annotation {
 public:
  /// Obsoletes nothing.
  Annotation() = default;

  [[nodiscard]] static Annotation none() { return Annotation(); }

  /// Item-tagging: this message updates the item identified by `tag`.
  [[nodiscard]] static Annotation item(std::uint64_t tag);

  /// Message enumeration: explicit absolute sequence numbers (same sender)
  /// of every message this one obsoletes, transitive closure included.
  [[nodiscard]] static Annotation enumerate(std::vector<std::uint64_t> seqs);

  /// k-enumeration: distance bitmap.
  [[nodiscard]] static Annotation kenum(KBitmap bitmap);

  [[nodiscard]] AnnotationKind kind() const { return kind_; }

  /// Valid only for kind() == item_tag.
  [[nodiscard]] std::uint64_t tag() const;

  /// Valid only for kind() == enumeration (sorted ascending).
  [[nodiscard]] const std::vector<std::uint64_t>& enumerated() const;

  /// Valid only for kind() == k_enum.
  [[nodiscard]] const KBitmap& bitmap() const;

  /// Encoded size of the annotation as carried in a message header.
  [[nodiscard]] std::size_t wire_size() const;
  void encode(util::ByteWriter& writer) const;
  static Annotation decode(util::ByteReader& reader);

  friend bool operator==(const Annotation&, const Annotation&) = default;

 private:
  AnnotationKind kind_ = AnnotationKind::none;
  std::uint64_t tag_ = 0;
  std::vector<std::uint64_t> enumerated_;
  KBitmap bitmap_{0};
};

}  // namespace svs::obs
