#include "obs/relation.hpp"

#include <algorithm>
#include <vector>

#include "util/contracts.hpp"

namespace svs::obs {

bool ItemTagRelation::covers(const MessageRef& newer,
                             const MessageRef& older) const {
  SVS_REQUIRE(newer.annotation != nullptr && older.annotation != nullptr,
              "relation queried without annotations");
  if (newer.sender != older.sender) return false;
  if (newer.seq <= older.seq) return false;
  if (newer.annotation->kind() != AnnotationKind::item_tag ||
      older.annotation->kind() != AnnotationKind::item_tag) {
    return false;
  }
  return newer.annotation->tag() == older.annotation->tag();
}

bool EnumerationRelation::covers(const MessageRef& newer,
                                 const MessageRef& older) const {
  SVS_REQUIRE(newer.annotation != nullptr && older.annotation != nullptr,
              "relation queried without annotations");
  if (newer.sender != older.sender) return false;
  if (newer.seq <= older.seq) return false;
  if (newer.annotation->kind() != AnnotationKind::enumeration) return false;
  const auto& seqs = newer.annotation->enumerated();
  return std::binary_search(seqs.begin(), seqs.end(), older.seq);
}

bool KEnumRelation::covers(const MessageRef& newer,
                           const MessageRef& older) const {
  SVS_REQUIRE(newer.annotation != nullptr && older.annotation != nullptr,
              "relation queried without annotations");
  if (newer.sender != older.sender) return false;
  if (newer.seq <= older.seq) return false;
  if (newer.annotation->kind() != AnnotationKind::k_enum) return false;
  const std::uint64_t distance = newer.seq - older.seq;
  return newer.annotation->bitmap().test(static_cast<std::size_t>(distance));
}

std::uint64_t EnumerationRelation::coverage_floor(
    const MessageRef& newer) const {
  if (newer.annotation == nullptr ||
      newer.annotation->kind() != AnnotationKind::enumeration) {
    return newer.seq;  // covers nothing
  }
  const auto& seqs = newer.annotation->enumerated();
  return seqs.empty() ? newer.seq : seqs.front();  // sorted ascending
}

std::uint64_t KEnumRelation::coverage_floor(const MessageRef& newer) const {
  if (newer.annotation == nullptr ||
      newer.annotation->kind() != AnnotationKind::k_enum) {
    return newer.seq;  // covers nothing
  }
  const std::uint64_t k = newer.annotation->bitmap().k();
  return newer.seq > k ? newer.seq - k : 0;
}

void ExplicitRelation::add(net::ProcessId obsolete_sender,
                           std::uint64_t obsolete_seq,
                           net::ProcessId newer_sender,
                           std::uint64_t newer_seq) {
  const Key older{obsolete_sender.value(), obsolete_seq};
  const Key newer{newer_sender.value(), newer_seq};
  SVS_REQUIRE(older != newer, "the relation is irreflexive");
  SVS_REQUIRE(!has_edge(newer, older),
              "edge would create a cycle; the relation must be a partial order");

  // Insert and re-close transitively: everything that reaches `older`
  // now also reaches everything reachable from `newer`.
  std::vector<Key> into_older{older};
  std::vector<Key> from_newer{newer};
  for (const auto& [a, b] : edges_) {
    if (b == older) into_older.push_back(a);
    if (a == newer) from_newer.push_back(b);
  }
  for (const auto& a : into_older) {
    for (const auto& b : from_newer) {
      SVS_REQUIRE(a != b, "closure would create a cycle");
      edges_.emplace(a, b);
    }
  }
}

bool ExplicitRelation::has_edge(const Key& older, const Key& newer) const {
  return edges_.contains({older, newer});
}

bool ExplicitRelation::covers(const MessageRef& newer,
                              const MessageRef& older) const {
  return has_edge(Key{older.sender.value(), older.seq},
                  Key{newer.sender.value(), newer.seq});
}

}  // namespace svs::obs
