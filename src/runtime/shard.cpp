#include "runtime/shard.hpp"

#include <algorithm>
#include <chrono>
#include <ctime>
#include <exception>
#include <thread>
#include <utility>

#include "util/contracts.hpp"

namespace svs::runtime {
namespace {

/// CPU time consumed by the calling thread, or 0 when the platform has no
/// per-thread clock (the metric then degrades gracefully to "unknown").
[[nodiscard]] double thread_cpu_seconds() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
    return static_cast<double>(ts.tv_sec) +
           static_cast<double>(ts.tv_nsec) * 1e-9;
  }
#endif
  return 0.0;
}

/// Domain separator for key hashes.  Keys and vnode ids go through the
/// same mix64, so without a salt a key equal to a vnode id ((shard << 32)
/// | vnode) hashes exactly onto that shard's ring point — small sequential
/// keys (1..vnodes_per_shard) would all collide with shard 0's points and
/// pile onto it.  The salt's high 32 bits are far beyond any realistic
/// shard count, so the two id spaces can no longer meet.
constexpr std::uint64_t kKeyDomain = 0xD6E8FEB86659FD93ULL;

/// splitmix64 finalizer: a full-avalanche 64-bit mix, deterministic
/// everywhere (no std::hash, whose value is implementation-defined).
[[nodiscard]] std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace

// ---------------------------------------------------------------------------
// HashRing
// ---------------------------------------------------------------------------

HashRing::HashRing(std::uint32_t shards, std::uint32_t vnodes_per_shard)
    : shards_(shards) {
  SVS_REQUIRE(shards > 0, "a ring needs at least one shard");
  SVS_REQUIRE(vnodes_per_shard > 0, "a shard needs at least one ring point");
  ring_.reserve(static_cast<std::size_t>(shards) * vnodes_per_shard);
  for (std::uint32_t s = 0; s < shards; ++s) {
    for (std::uint32_t v = 0; v < vnodes_per_shard; ++v) {
      // Mix the (shard, vnode) pair so each shard's points scatter
      // independently — this is what makes growth minimally disruptive:
      // shard N+1's points are the same no matter how many shards exist.
      const std::uint64_t h =
          mix64((static_cast<std::uint64_t>(s) << 32) | (v + 1));
      ring_.push_back(Point{h, s});
    }
  }
  std::sort(ring_.begin(), ring_.end(), [](const Point& a, const Point& b) {
    // Tie-break by shard for determinism (64-bit collisions are
    // vanishingly rare, but placement must not depend on sort stability).
    return a.hash != b.hash ? a.hash < b.hash : a.shard < b.shard;
  });
}

std::uint32_t HashRing::shard_of(std::uint64_t key) const {
  const std::uint64_t h = mix64(key ^ kKeyDomain);
  const auto it = std::lower_bound(
      ring_.begin(), ring_.end(), h,
      [](const Point& p, std::uint64_t hash) { return p.hash < hash; });
  return it != ring_.end() ? it->shard : ring_.front().shard;
}

// ---------------------------------------------------------------------------
// ShardedRunner
// ---------------------------------------------------------------------------

ShardedRunner::ShardedRunner(Config config)
    : config_(config), ring_(config.shards, config.vnodes_per_shard) {}

std::vector<std::vector<std::uint64_t>> ShardedRunner::place(
    std::span<const std::uint64_t> keys) const {
  std::vector<std::vector<std::uint64_t>> placed(config_.shards);
  for (const std::uint64_t key : keys) {
    placed[ring_.shard_of(key)].push_back(key);
  }
  return placed;
}

RunReport ShardedRunner::run(std::span<const std::uint64_t> keys,
                             const ShardMain& main) {
  SVS_REQUIRE(main != nullptr, "a shard body is required");
  const auto placed = place(keys);

  std::vector<ShardReport> reports(config_.shards);
  std::vector<std::exception_ptr> failures(config_.shards);
  std::vector<std::thread> workers;
  workers.reserve(config_.shards);

  const auto start = std::chrono::steady_clock::now();
  for (std::uint32_t s = 0; s < config_.shards; ++s) {
    workers.emplace_back([&, s] {
      const auto begin = std::chrono::steady_clock::now();
      const double cpu_begin = thread_cpu_seconds();
      try {
        reports[s] = main(s, placed[s]);
      } catch (...) {
        failures[s] = std::current_exception();
      }
      reports[s].busy_seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        begin)
              .count();
      reports[s].cpu_seconds = thread_cpu_seconds() - cpu_begin;
    });
  }
  for (auto& worker : workers) worker.join();
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  for (const auto& failure : failures) {
    if (failure != nullptr) std::rethrow_exception(failure);
  }

  RunReport merged;
  merged.wall_seconds = wall;
  merged.shards = std::move(reports);
  for (const ShardReport& shard : merged.shards) {
    merged.net += shard.net;
    merged.sim_events += shard.sim_events;
    merged.deliveries += shard.deliveries;
    merged.max_shard_busy_seconds =
        std::max(merged.max_shard_busy_seconds, shard.busy_seconds);
    merged.max_shard_cpu_seconds =
        std::max(merged.max_shard_cpu_seconds, shard.cpu_seconds);
  }
  return merged;
}

}  // namespace svs::runtime
