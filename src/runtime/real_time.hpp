// Wall-clock driver for the distributed UDP deployment (tools/svs_proc).
//
// The whole SVS stack runs on the virtual clock (sim::Simulator): timers,
// heartbeats, membership grace periods, consensus retries.  A deployed
// process must instead advance through *wall* time while real datagrams
// arrive at unpredictable instants.  RealTimeDriver reconciles the two with
// a lockstep loop:
//
//   1. advance the virtual clock to (start_virtual + wall elapsed), firing
//      every timer that came due;
//   2. pump the UDP transport — drain arrived datagrams (which enqueue
//      protocol work at the *current* virtual time) and sweep due
//      retransmissions;
//   3. sleep in the pump's poll until the next datagram or a short tick,
//      whichever comes first.
//
// Virtual time therefore tracks wall time from below (never ahead), so a
// timer never fires early relative to the kernel's datagram delivery, and
// all inner-network delays keep their meaning as real milliseconds.
#pragma once

#include <cstdint>
#include <functional>

#include "net/udp_transport.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace svs::runtime {

class RealTimeDriver {
 public:
  struct Config {
    /// Upper bound on one poll sleep: the virtual clock is re-synced at
    /// least this often even with no traffic.
    std::int64_t tick_us = 2'000;
  };

  RealTimeDriver(sim::Simulator& simulator, net::UdpTransport& transport)
      : RealTimeDriver(simulator, transport, Config()) {}
  RealTimeDriver(sim::Simulator& simulator, net::UdpTransport& transport,
                 Config config)
      : sim_(simulator), transport_(transport), config_(config) {}

  /// Runs the lockstep loop for `duration` of wall time, or until `stop`
  /// (polled once per iteration) returns true.  Returns the number of
  /// datagrams pumped.
  std::size_t run(sim::Duration duration,
                  const std::function<bool()>& stop = {});

 private:
  sim::Simulator& sim_;
  net::UdpTransport& transport_;
  Config config_;
};

}  // namespace svs::runtime
