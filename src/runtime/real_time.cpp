#include "runtime/real_time.hpp"

#include <algorithm>

namespace svs::runtime {

std::size_t RealTimeDriver::run(sim::Duration duration,
                                const std::function<bool()>& stop) {
  const std::int64_t start_wall = net::UdpTransport::mono_us();
  const sim::TimePoint start_virtual = sim_.now();
  const std::int64_t budget_us = duration.as_micros();
  std::size_t pumped = 0;
  for (;;) {
    const std::int64_t elapsed = net::UdpTransport::mono_us() - start_wall;
    if (elapsed >= budget_us) break;
    if (stop && stop()) break;
    // Virtual time chases wall time from below; every due timer fires here.
    sim_.run_until(start_virtual + sim::Duration::micros(elapsed));
    const std::int64_t remaining = budget_us - elapsed;
    std::int64_t wait = std::min(config_.tick_us, remaining);
    // Cap the sleep at the next virtual timer's wall-clock due time, so a
    // µs-scale timer fires µs late at worst — not a whole poll tick late.
    // (The transport's own wheel deadlines cap the wait further inside
    // pump(), at the same µs precision.)
    sim::TimePoint next{};
    if (sim_.next_event_time(next)) {
      const std::int64_t gap = (next - start_virtual).as_micros() - elapsed;
      wait = std::clamp<std::int64_t>(gap, 1, wait);
    }
    pumped += transport_.pump(wait);
  }
  return pumped;
}

}  // namespace svs::runtime
