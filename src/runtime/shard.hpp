// Multi-group shard scaling (DESIGN.md §8).
//
// One SVS group is inherently serial: its simulator is a single event loop
// and its state is thread-confined.  The paper's "millions of users" story
// is therefore *many groups* — independent rooms/channels/cells — and the
// scaling axis is placing those groups across cores.  This module is that
// placement layer:
//
//   * HashRing — deterministic consistent hashing with virtual nodes.
//     Group keys map to shards; growing the ring from N to N+1 shards only
//     moves keys onto the new shard (≈ 1/(N+1) of them), never between
//     surviving shards, so a resize does not reshuffle the world.
//   * ShardedRunner — spawns one worker thread per shard, hands each the
//     keys the ring placed on it, and runs the caller's ShardMain there.
//     Each shard builds its own simulator, transport and groups inside its
//     worker (single ownership, no shared mutable state, per-thread
//     allocator pools stay local), and returns a ShardReport; the runner
//     merges them (NetworkStats::operator+=) into one RunReport.
//
// Because shards share nothing, per-shard counters sum exactly to what an
// unsharded run of the same groups produces (tests/shard_test.cpp pins
// this), and aggregate throughput scales with cores up to the machine's
// parallelism (bench_shard_scaling measures it).
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "net/transport.hpp"

namespace svs::runtime {

/// Deterministic consistent-hash ring (virtual-node flavour).  Hashing is
/// seed-free splitmix64 mixing — placement is identical across platforms
/// and runs, which the deterministic benches and tests rely on.
class HashRing {
 public:
  explicit HashRing(std::uint32_t shards, std::uint32_t vnodes_per_shard = 64);

  /// The shard owning `key` (the first ring point at or after the key's
  /// hash, wrapping).
  [[nodiscard]] std::uint32_t shard_of(std::uint64_t key) const;

  [[nodiscard]] std::uint32_t shards() const { return shards_; }

 private:
  struct Point {
    std::uint64_t hash;
    std::uint32_t shard;
  };
  std::vector<Point> ring_;  // sorted by hash
  std::uint32_t shards_;
};

/// What one shard's worker hands back after running its groups.
struct ShardReport {
  net::NetworkStats net;         // the shard transport's counters
  std::uint64_t sim_events = 0;  // events its simulator executed
  std::uint64_t deliveries = 0;  // application-level deliveries (optional)
  double busy_seconds = 0.0;     // wall time the worker spent in ShardMain
  /// CPU time the worker thread consumed in ShardMain.  Unlike
  /// busy_seconds this excludes time-slicing waits, so it stays meaningful
  /// when the machine has fewer cores than shards.
  double cpu_seconds = 0.0;
};

/// The merged result of one ShardedRunner::run.
struct RunReport {
  net::NetworkStats net;  // counter-wise sum over all shards
  std::uint64_t sim_events = 0;
  std::uint64_t deliveries = 0;
  /// Start-to-last-join wall time.  On a machine with >= shards cores this
  /// approaches max_shard_busy_seconds; on fewer cores the workers time-
  /// slice and it approaches the sum instead.
  double wall_seconds = 0.0;
  /// The critical path if every shard had its own core — what the wall
  /// clock converges to with enough hardware parallelism (shards share no
  /// state, so nothing else serializes them).
  double max_shard_busy_seconds = 0.0;
  /// Same critical path measured in per-thread CPU time: immune to
  /// time-slicing, so it is the scaling signal to trust when the machine
  /// has fewer cores than shards.
  double max_shard_cpu_seconds = 0.0;
  std::vector<ShardReport> shards;  // per-shard breakdown, indexed by shard
};

/// Places group keys on shards and runs a worker thread per shard.
class ShardedRunner {
 public:
  struct Config {
    std::uint32_t shards = 1;
    std::uint32_t vnodes_per_shard = 64;
  };

  /// Runs on the shard's worker thread with the keys placed there (possibly
  /// none).  Builds its own simulator/transport/groups — nothing crosses
  /// threads except the returned report.
  using ShardMain = std::function<ShardReport(
      std::uint32_t shard, std::span<const std::uint64_t> keys)>;

  explicit ShardedRunner(Config config);

  [[nodiscard]] const HashRing& ring() const { return ring_; }

  /// keys[i] -> per-shard key lists (index = shard), ring placement order
  /// preserved within a shard.
  [[nodiscard]] std::vector<std::vector<std::uint64_t>> place(
      std::span<const std::uint64_t> keys) const;

  /// Places `keys`, spawns one thread per shard, runs `main` on each, joins
  /// and merges.  A ShardMain exception is rethrown here after every worker
  /// joined.
  RunReport run(std::span<const std::uint64_t> keys, const ShardMain& main);

 private:
  Config config_;
  HashRing ring_;
};

}  // namespace svs::runtime
