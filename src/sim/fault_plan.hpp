// Declarative, seed-derived fault schedules (DESIGN.md §7).
//
// A FaultPlan is pure data: a list of FaultSpec entries, each naming a kind,
// the processes or link it touches, a virtual-time window and a magnitude.
// The plan is *applied* by the transport layer (net::PlannedFaultInjector,
// hooked into net::Network via Transport::set_fault_injector) and by the
// scenario harness (crash scheduling, consumer throttling); this file knows
// nothing about the network so the plan stays serializable and maskable.
//
// The in-model fault vocabulary — the perturbations §3.2 must survive:
//
//   * link_jitter     — FIFO-preserving random extra delay on one directed
//                       link (arrival times stay monotone per lane; only the
//                       schedule shifts).
//   * partition       — an outage with a heal time: messages *sent* while
//                       the partition is up are held and arrive after heal
//                       (reliable FIFO channels with retransmission, as TCP
//                       would behave); messages already in flight still
//                       arrive.  Symmetric or one-directional.
//   * crash           — crash-stop at a virtual time (the paper's only
//                       process fault; the FD + membership machinery must
//                       exclude the victim).
//   * duplicate       — probabilistic data-lane duplication on a directed
//                       link (a conservative retransmitter); receivers
//                       suppress the copy via the per-sender reception
//                       watermark.
//   * pause_receiver  — the receiver stops accepting data-lane traffic for a
//                       window (the network-visible face of a consumer that
//                       completely stops, Fig 5(b)); backpressure, not loss.
//   * loss            — probabilistic datagram loss on a directed link (or
//                       every link, a = kAllLinks), *recovered by the
//                       reliable channel*: each lost transmission costs one
//                       retransmission round-trip, modeled as extra delay
//                       drawn geometrically from the loss probability.  The
//                       message still arrives (in-model — §3.1 channels stay
//                       reliable); the UDP backend additionally realizes the
//                       drops as real discarded datagrams at the socket
//                       boundary, recovered by real retransmissions.
//
// Plus one deliberately OUT-OF-MODEL kind, excluded from tolerated plans and
// generated only under GenerateOptions::hostile:
//
//   * drop_one        — silently drop the k-th data message on a link.  This
//                       breaks the reliable-channel assumption, so §3.2 is
//                       expected to fail — it exists to prove the checker,
//                       the explorer and the shrinker actually fire.
//
// Every spec carries a stable `id` (its index in the unmasked plan): the
// injector derives each fault's private rng stream from (plan.seed, id), so
// masking entries out — the shrinker's first move — never perturbs the
// randomness of the entries that remain.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace svs::sim {

enum class FaultKind : std::uint8_t {
  link_jitter,
  partition,
  crash,
  duplicate,
  pause_receiver,
  loss,      // datagram loss repaired by retransmission (in-model)
  drop_one,  // out-of-model (hostile plans only)
};

[[nodiscard]] const char* fault_kind_name(FaultKind kind);

/// One scheduled fault.  Processes are raw ProcessId values (the group
/// harness assigns ProcessId(i) to member i, so these double as dense
/// indices).  Fields are kind-specific; unused ones stay zero.
struct FaultSpec {
  /// loss: `a` value meaning "every link" (a real id can't collide: groups
  /// are capped at 64 processes).  A self-link (from == to) is never lossy —
  /// loopback traffic doesn't cross the wire.
  static constexpr std::uint32_t kAllLinks = 0xffff'ffff;

  FaultKind kind = FaultKind::link_jitter;
  /// Stable index in the unmasked plan; seeds this fault's rng stream.
  std::uint32_t id = 0;
  /// link faults: directed link a -> b.  crash / pause_receiver: process a.
  /// loss: a = kAllLinks makes the window apply to every link.
  std::uint32_t a = 0;
  std::uint32_t b = 0;
  /// Active window [start, end).  crash uses only start.
  TimePoint start;
  TimePoint end;
  /// link_jitter: extra delay is uniform in [0, magnitude].
  /// loss: the per-lost-transmission retransmission delay.
  Duration magnitude = Duration::zero();
  /// duplicate: per-message duplication probability.
  /// loss: per-transmission loss probability (in [0, 1)).
  double probability = 0.0;
  /// partition: bitmask of side-A processes; links crossing side A <-> side B
  /// are severed (A -> B only unless symmetric).
  std::uint64_t side_mask = 0;
  /// partition: sever both directions.
  bool symmetric = false;
  /// drop_one: ordinal (1-based) of the doomed data message on the link.
  std::uint64_t param = 0;

  [[nodiscard]] bool active_at(TimePoint now) const {
    return now >= start && now < end;
  }
  [[nodiscard]] std::string describe() const;
};

struct FaultPlan {
  /// Stream seed for the injector's per-fault rngs (see sim::Rng::stream).
  std::uint64_t seed = 0;
  std::vector<FaultSpec> faults;

  /// True when no out-of-model fault is present: a group stack is expected
  /// to preserve every §3.2 property under an in-model plan.
  [[nodiscard]] bool in_model() const;

  /// Subset selection for shrinking: keeps fault `i` (position in this
  /// plan's list) iff bit `i` of `keep` is set.  Ids are preserved, so the
  /// surviving faults replay with identical randomness.
  [[nodiscard]] FaultPlan masked(std::uint64_t keep) const;

  [[nodiscard]] std::string describe() const;

  struct GenerateOptions {
    std::uint32_t processes = 3;
    /// Faults are scheduled within [0, horizon) and every window heals by
    /// ~0.9 * horizon, so a run driven past the horizon quiesces.
    Duration horizon = Duration::seconds(1.5);
    /// Upper bound on generated crash faults.  Callers budget this so that
    /// crashes + voluntary leaves stay below half the group (consensus
    /// liveness needs an alive majority of every view).
    std::uint32_t max_crashes = 1;
    /// Include out-of-model faults (drop_one).  Plans stop being tolerated.
    bool hostile = false;
  };

  /// Derives a plan from a seed: 0-3 jitter windows, at most one partition
  /// (always healed), up to max_crashes crashes, 0-2 duplication windows,
  /// 0-2 datagram-loss windows and at most one receiver pause.
  /// Deterministic; independent of any other stream derived from the same
  /// master seed.
  static FaultPlan generate(std::uint64_t seed, const GenerateOptions& options);
};

}  // namespace svs::sim
