// Deterministic, portable pseudo-random numbers.
//
// The standard <random> distributions are implementation-defined, so the
// same seed can produce different traces on different standard libraries.
// The experiments must be bit-reproducible, hence: xoshiro256** generator
// (seeded via splitmix64) plus hand-rolled distributions.
//
// This is the single prng for the whole tree — protocol simulation,
// workload generation, the fault-plan injector, the scenario explorer,
// randomized tests and the benches all share it, so a generator fix or a
// portability audit lands everywhere at once.
//
// Stream semantics (how to get independent sequences from one seed):
//
//   * Rng::stream(seed, k) — the k-th named substream of a master seed.
//     Pure function of (seed, k): adding draws to stream 3 never perturbs
//     stream 7.  This is how one 64-bit scenario seed fans out into
//     shape / workload / fault-plan / per-fault randomness without the
//     streams contaminating each other (shrinking relies on it: removing
//     one fault must not reshuffle the rest of the run).
//   * rng.split()        — forks a child stream *positionally*: the child
//     seed is taken from the parent's sequence, so successive splits yield
//     independent children but the k-th split depends on how many draws
//     (and splits) preceded it.  Use stream() when identity must be stable
//     under plan edits; use split() for a dynamic number of components
//     created in a fixed order.
#pragma once

#include <cstdint>
#include <vector>

#include "util/contracts.hpp"

namespace svs::sim {

/// xoshiro256** 1.0 — fast, high-quality, tiny state.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Uniform over all 64-bit values.
  std::uint64_t next_u64();

  /// Uniform in [0, bound) without modulo bias.  bound must be > 0.
  std::uint64_t below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t between(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Bernoulli trial with success probability p in [0, 1].
  bool chance(double p);

  /// Exponentially distributed value with the given mean (> 0).
  double exponential(double mean);

  /// Geometric: number of failures before first success, p in (0, 1].
  std::uint64_t geometric(double p);

  /// Forks an independent stream (for per-component rngs that must not
  /// perturb each other's sequences when call order changes).  Positional:
  /// the child's identity depends on the parent's draw count; see the
  /// stream-semantics note at the top of this header.
  Rng split();

  /// The `stream_id`-th named substream of `seed`: a pure function of its
  /// arguments, independent of any other (seed, id) pair's sequence.
  [[nodiscard]] static Rng stream(std::uint64_t seed, std::uint64_t stream_id);

 private:
  std::uint64_t s_[4];
};

/// Zipf-distributed ranks in [1, n]: P(rank = r) proportional to r^-s.
///
/// Used to model item popularity (Fig 3(a): "a small number of items is
/// modified frequently").  Sampling is O(log n) via the precomputed CDF.
class ZipfDistribution {
 public:
  ZipfDistribution(std::size_t n, double exponent);

  [[nodiscard]] std::size_t n() const { return cdf_.size(); }
  [[nodiscard]] double exponent() const { return exponent_; }

  /// Samples a rank in [1, n].
  std::size_t sample(Rng& rng) const;

  /// Probability mass of a given rank (for calibration tests).
  [[nodiscard]] double pmf(std::size_t rank) const;

 private:
  std::vector<double> cdf_;
  double exponent_;
};

}  // namespace svs::sim
