// Deterministic, portable pseudo-random numbers.
//
// The standard <random> distributions are implementation-defined, so the
// same seed can produce different traces on different standard libraries.
// The experiments must be bit-reproducible, hence: xoshiro256** generator
// (seeded via splitmix64) plus hand-rolled distributions.
#pragma once

#include <cstdint>
#include <vector>

#include "util/contracts.hpp"

namespace svs::sim {

/// xoshiro256** 1.0 — fast, high-quality, tiny state.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Uniform over all 64-bit values.
  std::uint64_t next_u64();

  /// Uniform in [0, bound) without modulo bias.  bound must be > 0.
  std::uint64_t below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t between(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Bernoulli trial with success probability p in [0, 1].
  bool chance(double p);

  /// Exponentially distributed value with the given mean (> 0).
  double exponential(double mean);

  /// Geometric: number of failures before first success, p in (0, 1].
  std::uint64_t geometric(double p);

  /// Forks an independent stream (for per-component rngs that must not
  /// perturb each other's sequences when call order changes).
  Rng split();

 private:
  std::uint64_t s_[4];
};

/// Zipf-distributed ranks in [1, n]: P(rank = r) proportional to r^-s.
///
/// Used to model item popularity (Fig 3(a): "a small number of items is
/// modified frequently").  Sampling is O(log n) via the precomputed CDF.
class ZipfDistribution {
 public:
  ZipfDistribution(std::size_t n, double exponent);

  [[nodiscard]] std::size_t n() const { return cdf_.size(); }
  [[nodiscard]] double exponent() const { return exponent_; }

  /// Samples a rank in [1, n].
  std::size_t sample(Rng& rng) const;

  /// Probability mass of a given rank (for calibration tests).
  [[nodiscard]] double pmf(std::size_t rank) const;

 private:
  std::vector<double> cdf_;
  double exponent_;
};

}  // namespace svs::sim
