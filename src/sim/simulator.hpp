// Deterministic discrete-event simulator.
//
// This is the substrate the paper's evaluation runs on (§5.3: "a high-level
// discrete event simulation").  Determinism guarantees: two runs with the
// same seed and the same schedule of calls produce identical histories.
// Ties in event time are broken by insertion sequence number.
//
// Hot-path representation (DESIGN.md §2): actions are InlineFunctions (no
// heap allocation for ordinary captures) stored in a pooled slot array with
// a free list, so scheduling and running an event never touches the
// allocator once the pool is warm.  The binary heap carries only
// (time, seq, slot) keys; cancellation is O(1) by bumping the slot out from
// under its heap entry (lazy removal).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.hpp"
#include "util/contracts.hpp"
#include "util/inline_function.hpp"

namespace svs::sim {

/// Identifies a scheduled event so it can be cancelled before it fires.
class EventId {
 public:
  constexpr EventId() = default;
  [[nodiscard]] constexpr bool valid() const { return seq_ != 0; }
  friend constexpr auto operator<=>(EventId, EventId) = default;

 private:
  friend class Simulator;
  constexpr EventId(std::uint64_t seq, std::uint32_t slot)
      : seq_(seq), slot_(slot) {}
  std::uint64_t seq_{0};
  std::uint32_t slot_{0};
};

/// Single-threaded event loop over virtual time.
class Simulator {
 public:
  using Action = util::InlineFunction<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time.  While an event runs, this is the event's time.
  [[nodiscard]] TimePoint now() const { return now_; }

  /// Schedules `action` to run at absolute time `when` (>= now).
  EventId schedule_at(TimePoint when, Action action);

  /// Schedules `action` to run `delay` (>= 0) after the current time.
  EventId schedule_after(Duration delay, Action action);

  /// Cancels a pending event; returns false if it already ran or was
  /// cancelled before.  Cancelling is O(1) (lazy removal from the heap).
  bool cancel(EventId id);

  /// Runs events until the queue is empty or `limit` events have run.
  /// Returns the number of events executed.
  std::size_t run(std::size_t limit = kNoLimit);

  /// Runs all events with time <= deadline, then advances now() to deadline.
  std::size_t run_until(TimePoint deadline);

  /// Events currently pending (including lazily cancelled ones).
  [[nodiscard]] std::size_t pending() const { return heap_.size(); }

  /// Time of the earliest pending event — a conservative lower bound, since
  /// the heap top may be a lazily-cancelled entry that will be skipped.
  /// Returns false (and leaves `when` untouched) when nothing is pending.
  /// Real-time drivers use this to cap their socket waits so a virtual
  /// timer never fires late by a whole poll tick.
  [[nodiscard]] bool next_event_time(TimePoint& when) const {
    if (heap_.empty()) return false;
    when = heap_.front().when;
    return true;
  }

  /// Total events executed over this simulator's lifetime (bench telemetry).
  [[nodiscard]] std::uint64_t executed() const { return executed_; }

  static constexpr std::size_t kNoLimit = static_cast<std::size_t>(-1);

 private:
  struct HeapEntry {
    TimePoint when;
    std::uint64_t seq;
    std::uint32_t slot;
    friend bool operator<(const HeapEntry& a, const HeapEntry& b) {
      // std::push_heap builds a max-heap on <; invert for earliest-first,
      // with insertion order as deterministic tie-break.
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  /// One pooled action cell.  seq doubles as the liveness generation: a heap
  /// entry whose seq no longer matches its slot's was cancelled (or the slot
  /// was recycled for a newer event) and is skipped on pop.
  struct Slot {
    Action action;
    std::uint64_t seq = 0;
    std::uint32_t next_free = kNoSlot;
  };

  static constexpr std::uint32_t kNoSlot = static_cast<std::uint32_t>(-1);

  bool step();
  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t slot);

  TimePoint now_{};
  std::uint64_t next_seq_{1};
  std::uint64_t executed_{0};
  std::vector<HeapEntry> heap_;
  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNoSlot;
};

}  // namespace svs::sim
