// Deterministic discrete-event simulator.
//
// This is the substrate the paper's evaluation runs on (§5.3: "a high-level
// discrete event simulation").  Determinism guarantees: two runs with the
// same seed and the same schedule of calls produce identical histories.
// Ties in event time are broken by insertion sequence number.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>

#include "sim/time.hpp"
#include "util/contracts.hpp"

namespace svs::sim {

/// Identifies a scheduled event so it can be cancelled before it fires.
class EventId {
 public:
  constexpr EventId() = default;
  [[nodiscard]] constexpr bool valid() const { return seq_ != 0; }
  friend constexpr auto operator<=>(EventId, EventId) = default;

 private:
  friend class Simulator;
  constexpr explicit EventId(std::uint64_t seq) : seq_(seq) {}
  std::uint64_t seq_{0};
};

/// Single-threaded event loop over virtual time.
class Simulator {
 public:
  using Action = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time.  While an event runs, this is the event's time.
  [[nodiscard]] TimePoint now() const { return now_; }

  /// Schedules `action` to run at absolute time `when` (>= now).
  EventId schedule_at(TimePoint when, Action action);

  /// Schedules `action` to run `delay` (>= 0) after the current time.
  EventId schedule_after(Duration delay, Action action);

  /// Cancels a pending event; returns false if it already ran or was
  /// cancelled before.  Cancelling is O(1) (lazy removal from the heap).
  bool cancel(EventId id);

  /// Runs events until the queue is empty or `limit` events have run.
  /// Returns the number of events executed.
  std::size_t run(std::size_t limit = kNoLimit);

  /// Runs all events with time <= deadline, then advances now() to deadline.
  std::size_t run_until(TimePoint deadline);

  /// Events currently pending (including lazily cancelled ones).
  [[nodiscard]] std::size_t pending() const { return queue_.size(); }

  static constexpr std::size_t kNoLimit = static_cast<std::size_t>(-1);

 private:
  struct Entry {
    TimePoint when;
    std::uint64_t seq;
    // Heap entries carry only keys; actions live in a side map so that
    // cancel() does not have to touch the heap.
    friend bool operator<(const Entry& a, const Entry& b) {
      // std::priority_queue is a max-heap; invert for earliest-first, with
      // insertion order as deterministic tie-break.
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  bool step();

  TimePoint now_{};
  std::uint64_t next_seq_{1};
  std::priority_queue<Entry> queue_;
  // seq -> action; an entry missing here was cancelled (lazy removal).
  std::unordered_map<std::uint64_t, Action> actions_;
};

}  // namespace svs::sim
