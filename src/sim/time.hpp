// Virtual time for the discrete-event simulation.
//
// All protocol and workload code is written against this clock; nothing in
// the library reads wall time, which is what makes every run reproducible.
#pragma once

#include <cstdint>
#include <ostream>

namespace svs::sim {

/// A span of virtual time, in integer microseconds.
///
/// Integer microseconds give deterministic arithmetic (no floating-point
/// accumulation) at a resolution far below anything the modelled systems
/// (30 Hz game rounds, millisecond links) can observe.
class Duration {
 public:
  constexpr Duration() = default;

  [[nodiscard]] static constexpr Duration micros(std::int64_t us) {
    return Duration(us);
  }
  [[nodiscard]] static constexpr Duration millis(std::int64_t ms) {
    return Duration(ms * 1000);
  }
  [[nodiscard]] static constexpr Duration seconds(double s) {
    return Duration(static_cast<std::int64_t>(s * 1e6));
  }
  [[nodiscard]] static constexpr Duration zero() { return Duration(0); }

  [[nodiscard]] constexpr std::int64_t as_micros() const { return us_; }
  [[nodiscard]] constexpr double as_millis() const { return us_ / 1e3; }
  [[nodiscard]] constexpr double as_seconds() const { return us_ / 1e6; }

  friend constexpr auto operator<=>(Duration, Duration) = default;
  friend constexpr Duration operator+(Duration a, Duration b) {
    return Duration(a.us_ + b.us_);
  }
  friend constexpr Duration operator-(Duration a, Duration b) {
    return Duration(a.us_ - b.us_);
  }
  friend constexpr Duration operator*(Duration a, std::int64_t k) {
    return Duration(a.us_ * k);
  }
  friend constexpr Duration operator/(Duration a, std::int64_t k) {
    return Duration(a.us_ / k);
  }
  constexpr Duration& operator+=(Duration b) {
    us_ += b.us_;
    return *this;
  }

  friend std::ostream& operator<<(std::ostream& os, Duration d) {
    return os << d.us_ << "us";
  }

 private:
  constexpr explicit Duration(std::int64_t us) : us_(us) {}
  std::int64_t us_{0};
};

/// An instant of virtual time (microseconds since simulation start).
class TimePoint {
 public:
  constexpr TimePoint() = default;

  [[nodiscard]] static constexpr TimePoint origin() { return TimePoint(); }
  [[nodiscard]] static constexpr TimePoint at_micros(std::int64_t us) {
    TimePoint t;
    t.us_ = us;
    return t;
  }

  [[nodiscard]] constexpr std::int64_t as_micros() const { return us_; }
  [[nodiscard]] constexpr double as_seconds() const { return us_ / 1e6; }

  friend constexpr auto operator<=>(TimePoint, TimePoint) = default;
  friend constexpr TimePoint operator+(TimePoint t, Duration d) {
    return at_micros(t.us_ + d.as_micros());
  }
  friend constexpr Duration operator-(TimePoint a, TimePoint b) {
    return Duration::micros(a.us_ - b.us_);
  }

  friend std::ostream& operator<<(std::ostream& os, TimePoint t) {
    return os << "t+" << t.us_ << "us";
  }

 private:
  std::int64_t us_{0};
};

}  // namespace svs::sim
