// Seeded scenario exploration with failing-case shrinking (DESIGN.md §7).
//
// One 64-bit seed determines a complete scenario: group size, obsolescence
// relation, buffer bounds, failure-detector kind, a per-node workload plan,
// mid-run reconfigurations / voluntary leaves, and a sim::FaultPlan of
// in-model perturbations (jitter, partitions with heal, crashes,
// duplication, receiver pauses).  The explorer runs the scenario on the
// simulated transport under a core::SpecChecker and verifies every §3.2
// property plus the quiescence/liveness check — across thousands of seeds
// this is the systematic model test the ROADMAP's "as many scenarios as you
// can imagine" asks for.
//
// On a violation the explorer *shrinks*: it masks fault-plan entries out
// one by one (each fault replays with private, id-keyed randomness, so
// removal never reshuffles the rest — sim/fault_plan.hpp) and bisects the
// per-node workload down to the smallest prefix that still fails.  The
// result is a minimal failing ScenarioSpec whose one-line repro
// (`svs_explore --seed=N [--faults=0x.. --msgs=K]`) replays the failure
// exactly, run after run.
//
// Layering note: this file lives in sim/ with the other harness substrate
// but sits at the *top* of the stack — it drives core::Group, the workload
// consumers and the transport fault hooks.  Nothing below sim/explorer
// includes it.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "net/transport.hpp"

namespace svs::sim {

/// Which obsolescence representation a scenario's protocol stack runs.
/// The spec checker always verifies against the *ground truth* relation
/// (same sender + same item + higher seq, transitively closed by
/// construction); k_enum and enumeration under-declare it — a bitmap
/// cannot reach past k, a windowed enumeration truncates — which is
/// exactly what makes their GC interesting (DESIGN.md §7).
enum class RelationKind : std::uint8_t {
  empty = 0,       // reliable baseline (strict VS must also hold)
  item_tag = 1,
  k_enum = 2,
  enumeration = 3,
};

/// The `--relation=` CLI flag for a kind, and its inverse.  One shared
/// table: ScenarioSpec::repro() prints these and svs_explore parses them,
/// so a printed repro line always round-trips.
[[nodiscard]] const char* relation_flag(RelationKind kind);
[[nodiscard]] std::optional<RelationKind> relation_from_flag(
    std::string_view flag);

/// Which failure-detector backend a scenario's group runs.  All three are
/// drawn by the seed (oracle half the time; heartbeat and SWIM a quarter
/// each) and pinnable via `--fd=` for targeted sweeps.
enum class FdBackend : std::uint8_t {
  oracle = 0,
  heartbeat = 1,
  swim = 2,
};

/// The `--fd=` CLI flag for a backend, and its inverse (same round-trip
/// discipline as relation_flag).
[[nodiscard]] const char* fd_flag(FdBackend backend);
[[nodiscard]] std::optional<FdBackend> fd_from_flag(std::string_view flag);

/// A replayable point in scenario space: the seed plus the shrinker's two
/// reduction knobs and the optional relation pin.  Defaults mean "the full
/// seed-derived scenario".
struct ScenarioSpec {
  static constexpr std::uint32_t kNoLimit = 0xffffffff;

  std::uint64_t seed = 0;
  /// Overrides the seed-derived relation kind (e.g. a purge-biased
  /// k-enumeration sweep: the GC-vs-pred regression surface).  Part of the
  /// repro line.
  std::optional<RelationKind> relation_pin;
  /// Keep fault-plan entry i iff bit i is set (entries are masked out by
  /// the shrinker; randomness of the survivors is unaffected).
  std::uint64_t fault_mask = ~0ULL;
  /// Per-node workload prefix: each node sends at most this many of its
  /// planned messages.
  std::uint32_t message_limit = kNoLimit;
  /// Include the out-of-model fault kinds (drop_one) in generation.  §3.2
  /// is expected to break under hostile plans; the flag exists to exercise
  /// the checker/shrinker pipeline and must be part of the repro.
  bool hostile = false;
  /// Overrides the seed-derived quiescent-gossip draw (~50% of scenarios
  /// run adaptive quiescent gossip, the rest the classic fixed cadence).
  /// Part of the repro line (`--quiescent=0|1`).
  std::optional<bool> quiescent_pin;
  /// Overrides the seed-derived failure-detector backend (e.g. a
  /// SWIM-pinned sweep).  Part of the repro line (`--fd=`).
  std::optional<FdBackend> fd_pin;
  /// Extra all-links datagram-loss fault, in permille (0 = none): appended
  /// to the plan *after* masking with a stable id, so it is never shrunk
  /// away and never perturbs the seed-derived faults.  In-model (loss is
  /// repaired by retransmission); on the UDP backend the same spec also
  /// drops real datagrams.  Part of the repro line (`--loss=`).
  std::uint32_t loss_permille = 0;

  /// The one-line replay command for this spec.
  [[nodiscard]] std::string repro() const;
};

struct ScenarioOutcome {
  /// Empty = every checked property held.  Includes §3.2 (SpecChecker),
  /// strict VS for empty-relation scenarios, quiescence/liveness, and a
  /// synthetic "did not quiesce" entry when the run missed its deadline.
  std::vector<std::string> violations;
  bool quiesced = false;
  /// Scenario shape, for logs and the repro report.
  std::uint32_t group_size = 0;
  std::size_t faults_active = 0;   // fault-plan entries after masking
  std::size_t faults_total = 0;    // entries in the unmasked plan
  std::size_t planned_sends = 0;   // workload entries after truncation
  std::uint64_t multicasts = 0;    // successful t2 calls (checker-recorded)
  std::uint64_t deliveries = 0;    // data deliveries (checker-recorded)
  std::uint64_t sim_events = 0;    // simulator events executed
  net::NetworkStats net_stats;
  /// Human-readable scenario description (shape + fault plan).
  std::string summary;
};

class ScenarioExplorer {
 public:
  struct Options {
    /// Generate hostile (out-of-model) faults in explore()'d scenarios.
    bool hostile = false;
    /// Pin every explored scenario's relation kind (svs_explore
    /// --relation=...); nullopt = seed-derived.
    std::optional<RelationKind> relation_pin;
    /// Pin every explored scenario's gossip mode (svs_explore
    /// --quiescent=0|1); nullopt = seed-derived (~50/50).
    std::optional<bool> quiescent_pin;
    /// Pin every explored scenario's failure-detector backend
    /// (svs_explore --fd=oracle|heartbeat|swim); nullopt = seed-derived.
    std::optional<FdBackend> fd_pin;
    /// Add an all-links datagram-loss fault to every explored scenario
    /// (svs_explore --loss=permille).
    std::uint32_t loss_permille = 0;
  };

  ScenarioExplorer() = default;
  explicit ScenarioExplorer(Options options) : options_(options) {}

  /// Runs the scenario `spec` describes.  Pure function of the spec: the
  /// same spec always produces the same outcome, which is what makes repro
  /// lines and shrinking meaningful.
  [[nodiscard]] ScenarioOutcome run(const ScenarioSpec& spec) const;

  struct Exploration {
    ScenarioSpec spec;
    ScenarioOutcome outcome;
    /// Present iff the original run failed: the minimal failing spec found
    /// by shrinking, and its (still-failing) outcome.
    std::optional<ScenarioSpec> shrunk;
    std::optional<ScenarioOutcome> shrunk_outcome;
  };

  /// run() + shrink-on-violation for one seed.
  [[nodiscard]] Exploration explore(std::uint64_t seed) const;

  /// Reduces a failing spec: greedy fault-mask removal to a fixpoint, then
  /// a bisection of the workload prefix, then one more fault pass.  The
  /// returned spec is always still failing.
  [[nodiscard]] ScenarioSpec shrink(const ScenarioSpec& failing) const;

 private:
  Options options_{};
};

}  // namespace svs::sim
