#include "sim/simulator.hpp"

#include <utility>

namespace svs::sim {

EventId Simulator::schedule_at(TimePoint when, Action action) {
  SVS_REQUIRE(when >= now_, "cannot schedule an event in the past");
  SVS_REQUIRE(action != nullptr, "event action must be callable");
  const std::uint64_t seq = next_seq_++;
  queue_.push(Entry{when, seq});
  actions_.emplace(seq, std::move(action));
  return EventId(seq);
}

EventId Simulator::schedule_after(Duration delay, Action action) {
  SVS_REQUIRE(delay >= Duration::zero(), "delay must be non-negative");
  return schedule_at(now_ + delay, std::move(action));
}

bool Simulator::cancel(EventId id) {
  return actions_.erase(id.seq_) != 0;
}

bool Simulator::step() {
  while (!queue_.empty()) {
    const Entry top = queue_.top();
    auto it = actions_.find(top.seq);
    if (it == actions_.end()) {
      queue_.pop();  // cancelled; discard lazily
      continue;
    }
    // Move the action out before running it: the action may schedule or
    // cancel other events (and even re-enter the queue).
    Action action = std::move(it->second);
    actions_.erase(it);
    queue_.pop();
    SVS_ASSERT(top.when >= now_, "event queue went backwards in time");
    now_ = top.when;
    action();
    return true;
  }
  return false;
}

std::size_t Simulator::run(std::size_t limit) {
  std::size_t executed = 0;
  while (executed < limit && step()) {
    ++executed;
  }
  return executed;
}

std::size_t Simulator::run_until(TimePoint deadline) {
  SVS_REQUIRE(deadline >= now_, "deadline must not be in the past");
  std::size_t executed = 0;
  while (!queue_.empty()) {
    // Peek at the earliest live event.
    const Entry top = queue_.top();
    if (actions_.find(top.seq) == actions_.end()) {
      queue_.pop();
      continue;
    }
    if (top.when > deadline) break;
    if (step()) ++executed;
  }
  now_ = deadline;
  return executed;
}

}  // namespace svs::sim
