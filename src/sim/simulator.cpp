#include "sim/simulator.hpp"

#include <algorithm>
#include <utility>

namespace svs::sim {

std::uint32_t Simulator::acquire_slot() {
  if (free_head_ != kNoSlot) {
    const std::uint32_t slot = free_head_;
    free_head_ = slots_[slot].next_free;
    return slot;
  }
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void Simulator::release_slot(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.action = nullptr;
  s.seq = 0;
  s.next_free = free_head_;
  free_head_ = slot;
}

EventId Simulator::schedule_at(TimePoint when, Action action) {
  SVS_REQUIRE(when >= now_, "cannot schedule an event in the past");
  SVS_REQUIRE(action != nullptr, "event action must be callable");
  const std::uint64_t seq = next_seq_++;
  const std::uint32_t slot = acquire_slot();
  slots_[slot].action = std::move(action);
  slots_[slot].seq = seq;
  heap_.push_back(HeapEntry{when, seq, slot});
  std::push_heap(heap_.begin(), heap_.end());
  return EventId(seq, slot);
}

EventId Simulator::schedule_after(Duration delay, Action action) {
  SVS_REQUIRE(delay >= Duration::zero(), "delay must be non-negative");
  return schedule_at(now_ + delay, std::move(action));
}

bool Simulator::cancel(EventId id) {
  if (!id.valid() || id.slot_ >= slots_.size()) return false;
  if (slots_[id.slot_].seq != id.seq_) return false;  // ran or cancelled
  release_slot(id.slot_);  // the heap entry is skipped when it surfaces
  return true;
}

bool Simulator::step() {
  while (!heap_.empty()) {
    const HeapEntry top = heap_.front();
    std::pop_heap(heap_.begin(), heap_.end());
    heap_.pop_back();
    if (slots_[top.slot].seq != top.seq) continue;  // cancelled; discard

    // Move the action out before running it: the action may schedule or
    // cancel other events (and even re-enter the queue).
    Action action = std::move(slots_[top.slot].action);
    release_slot(top.slot);
    SVS_ASSERT(top.when >= now_, "event queue went backwards in time");
    now_ = top.when;
    ++executed_;
    action();
    return true;
  }
  return false;
}

std::size_t Simulator::run(std::size_t limit) {
  std::size_t executed = 0;
  while (executed < limit && step()) {
    ++executed;
  }
  return executed;
}

std::size_t Simulator::run_until(TimePoint deadline) {
  SVS_REQUIRE(deadline >= now_, "deadline must not be in the past");
  std::size_t executed = 0;
  while (!heap_.empty()) {
    // Peek at the earliest live event, discarding cancelled entries.
    const HeapEntry top = heap_.front();
    if (slots_[top.slot].seq != top.seq) {
      std::pop_heap(heap_.begin(), heap_.end());
      heap_.pop_back();
      continue;
    }
    if (top.when > deadline) break;
    if (step()) ++executed;
  }
  now_ = deadline;
  return executed;
}

}  // namespace svs::sim
