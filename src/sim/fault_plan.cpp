#include "sim/fault_plan.hpp"

#include <algorithm>
#include <sstream>
#include <tuple>
#include <utility>

#include "sim/random.hpp"
#include "util/contracts.hpp"

namespace svs::sim {

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::link_jitter: return "link_jitter";
    case FaultKind::partition: return "partition";
    case FaultKind::crash: return "crash";
    case FaultKind::duplicate: return "duplicate";
    case FaultKind::pause_receiver: return "pause_receiver";
    case FaultKind::loss: return "loss";
    case FaultKind::drop_one: return "drop_one";
  }
  SVS_UNREACHABLE("unknown fault kind");
}

std::string FaultSpec::describe() const {
  std::ostringstream os;
  os << fault_kind_name(kind) << "[" << id << "]";
  switch (kind) {
    case FaultKind::link_jitter:
      os << " p" << a << "->p" << b << " +" << magnitude << " @["
         << start << "," << end << ")";
      break;
    case FaultKind::partition: {
      os << " sides 0x" << std::hex << side_mask << std::dec
         << (symmetric ? " sym" : " asym") << " @[" << start << "," << end
         << ")";
      break;
    }
    case FaultKind::crash:
      os << " p" << a << " @" << start;
      break;
    case FaultKind::duplicate:
      os << " p" << a << "->p" << b << " p=" << probability << " @["
         << start << "," << end << ")";
      break;
    case FaultKind::pause_receiver:
      os << " p" << a << " @[" << start << "," << end << ")";
      break;
    case FaultKind::loss:
      if (a == kAllLinks) {
        os << " all-links";
      } else {
        os << " p" << a << "->p" << b;
      }
      os << " p=" << probability << " rtx=" << magnitude << " @[" << start
         << "," << end << ")";
      break;
    case FaultKind::drop_one:
      os << " p" << a << "->p" << b << " msg#" << param;
      break;
  }
  return os.str();
}

bool FaultPlan::in_model() const {
  return std::none_of(faults.begin(), faults.end(), [](const FaultSpec& f) {
    return f.kind == FaultKind::drop_one;
  });
}

FaultPlan FaultPlan::masked(std::uint64_t keep) const {
  FaultPlan out;
  out.seed = seed;
  for (std::size_t i = 0; i < faults.size(); ++i) {
    if (i < 64 && (keep & (1ULL << i)) == 0) continue;
    out.faults.push_back(faults[i]);
  }
  return out;
}

std::string FaultPlan::describe() const {
  std::ostringstream os;
  os << faults.size() << " fault(s)";
  for (const auto& f : faults) os << "; " << f.describe();
  return os.str();
}

FaultPlan FaultPlan::generate(std::uint64_t seed,
                              const GenerateOptions& options) {
  SVS_REQUIRE(options.processes >= 2, "fault plans need at least two processes");
  SVS_REQUIRE(options.processes <= 64,
              "partition side masks are 64-bit; cap the group at 64");
  FaultPlan plan;
  plan.seed = seed;
  // Stream 0 of the plan seed shapes the plan; streams 1 + id drive each
  // fault's runtime draws inside the injector.
  Rng rng = Rng::stream(seed, 0);
  const std::uint32_t n = options.processes;
  const std::int64_t horizon_us = options.horizon.as_micros();
  // Windows must heal well before the horizon so runs quiesce.
  const std::int64_t settle_us = horizon_us * 9 / 10;

  const auto window = [&](std::int64_t max_len_us) {
    const std::int64_t start = static_cast<std::int64_t>(
        rng.below(static_cast<std::uint64_t>(settle_us * 2 / 3)));
    const std::int64_t len = 1 + static_cast<std::int64_t>(rng.below(
        static_cast<std::uint64_t>(std::min(max_len_us, settle_us - start))));
    return std::pair{TimePoint::at_micros(start),
                     TimePoint::at_micros(start + len)};
  };
  const auto directed_link = [&] {
    const auto a = static_cast<std::uint32_t>(rng.below(n));
    auto b = static_cast<std::uint32_t>(rng.below(n - 1));
    if (b >= a) ++b;
    return std::pair{a, b};
  };
  const auto push = [&](FaultSpec spec) {
    spec.id = static_cast<std::uint32_t>(plan.faults.size());
    plan.faults.push_back(spec);
  };

  // Per-link jitter: 0-3 windows of FIFO-preserving extra delay.
  const std::uint64_t jitters = rng.below(4);
  for (std::uint64_t j = 0; j < jitters; ++j) {
    FaultSpec f;
    f.kind = FaultKind::link_jitter;
    std::tie(f.a, f.b) = directed_link();
    std::tie(f.start, f.end) = window(horizon_us / 2);
    f.magnitude = Duration::micros(
        1000 + static_cast<std::int64_t>(rng.below(40'000)));
    push(f);
  }

  // At most one partition, always healed.  Side A is a random nonempty
  // proper subset of the group.
  if (rng.chance(0.5)) {
    FaultSpec f;
    f.kind = FaultKind::partition;
    const std::uint64_t all = n >= 64 ? ~0ULL : (1ULL << n) - 1;
    do {
      f.side_mask = rng.next_u64() & all;
    } while (f.side_mask == 0 || f.side_mask == all);
    f.symmetric = rng.chance(0.6);
    std::tie(f.start, f.end) = window(horizon_us / 3);
    push(f);
  }

  // Crash-stops, within the caller's liveness budget.
  const std::uint64_t crashes =
      options.max_crashes == 0 ? 0 : rng.below(options.max_crashes + 1);
  std::vector<std::uint32_t> crashed;
  for (std::uint64_t c = 0; c < crashes; ++c) {
    FaultSpec f;
    f.kind = FaultKind::crash;
    do {
      f.a = static_cast<std::uint32_t>(rng.below(n));
    } while (std::find(crashed.begin(), crashed.end(), f.a) != crashed.end());
    crashed.push_back(f.a);
    f.start = TimePoint::at_micros(
        horizon_us / 10 +
        static_cast<std::int64_t>(rng.below(
            static_cast<std::uint64_t>(horizon_us * 7 / 10))));
    f.end = f.start;
    push(f);
  }

  // Data-lane duplication: 0-2 probabilistic windows.
  const std::uint64_t dups = rng.below(3);
  for (std::uint64_t d = 0; d < dups; ++d) {
    FaultSpec f;
    f.kind = FaultKind::duplicate;
    std::tie(f.a, f.b) = directed_link();
    std::tie(f.start, f.end) = window(horizon_us);
    f.probability = 0.1 + rng.uniform01() * 0.6;
    push(f);
  }

  // Datagram loss repaired by retransmission: 0-2 windows, each either one
  // directed link or (1 in 4) every link at once.
  const std::uint64_t losses = rng.below(3);
  for (std::uint64_t l = 0; l < losses; ++l) {
    FaultSpec f;
    f.kind = FaultKind::loss;
    if (rng.chance(0.25)) {
      f.a = FaultSpec::kAllLinks;
      f.b = 0;
    } else {
      std::tie(f.a, f.b) = directed_link();
    }
    std::tie(f.start, f.end) = window(horizon_us / 2);
    f.probability = 0.05 + rng.uniform01() * 0.30;
    // Per-lost-transmission recovery delay: a retransmission timeout.
    f.magnitude = Duration::micros(
        2'000 + static_cast<std::int64_t>(rng.below(8'000)));
    push(f);
  }

  // At most one receiver pause (slow-consumer stall seen from the network).
  if (rng.chance(0.4)) {
    FaultSpec f;
    f.kind = FaultKind::pause_receiver;
    f.a = static_cast<std::uint32_t>(rng.below(n));
    std::tie(f.start, f.end) = window(horizon_us / 4);
    push(f);
  }

  if (options.hostile) {
    // One silent drop on a random link: out-of-model, §3.2 should break.
    FaultSpec f;
    f.kind = FaultKind::drop_one;
    std::tie(f.a, f.b) = directed_link();
    f.start = TimePoint::origin();
    f.end = TimePoint::at_micros(horizon_us);
    f.param = 1 + rng.below(8);
    push(f);
  }

  SVS_ASSERT(plan.faults.size() <= 64, "fault masks are 64-bit");
  return plan;
}

}  // namespace svs::sim
