#include "sim/random.hpp"

#include <algorithm>
#include <cmath>

namespace svs::sim {
namespace {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  // splitmix64 expansion guarantees a non-zero state for any seed.
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  SVS_REQUIRE(bound > 0, "below() needs a positive bound");
  // Lemire-style rejection to avoid modulo bias.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::between(std::int64_t lo, std::int64_t hi) {
  SVS_REQUIRE(lo <= hi, "between() needs lo <= hi");
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  return lo + static_cast<std::int64_t>(span == 0 ? next_u64() : below(span));
}

double Rng::uniform01() {
  // 53 random bits into [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  SVS_REQUIRE(lo <= hi, "uniform() needs lo <= hi");
  return lo + (hi - lo) * uniform01();
}

bool Rng::chance(double p) {
  SVS_REQUIRE(p >= 0.0 && p <= 1.0, "probability must be in [0, 1]");
  return uniform01() < p;
}

double Rng::exponential(double mean) {
  SVS_REQUIRE(mean > 0.0, "exponential mean must be positive");
  double u = uniform01();
  if (u <= 0.0) u = 0x1.0p-53;  // avoid log(0)
  return -mean * std::log(u);
}

std::uint64_t Rng::geometric(double p) {
  SVS_REQUIRE(p > 0.0 && p <= 1.0, "geometric p must be in (0, 1]");
  if (p >= 1.0) return 0;
  double u = uniform01();
  if (u <= 0.0) u = 0x1.0p-53;
  return static_cast<std::uint64_t>(std::floor(std::log(u) / std::log1p(-p)));
}

Rng Rng::stream(std::uint64_t seed, std::uint64_t stream_id) {
  // Two splitmix64 rounds over the id decorrelate adjacent stream ids, then
  // the xor with the master seed selects the family.  The Rng constructor
  // runs its own splitmix expansion on top, so even (seed, id) pairs whose
  // xor collides yield sequences that diverge immediately.
  std::uint64_t sm = stream_id;
  const std::uint64_t a = splitmix64(sm);
  const std::uint64_t b = splitmix64(sm);
  return Rng(seed ^ a ^ rotl(b, 31));
}

Rng Rng::split() {
  // Derive a child seed from two outputs; the parent stream advances, so
  // successive splits yield independent children.
  const std::uint64_t a = next_u64();
  const std::uint64_t b = next_u64();
  return Rng(a ^ rotl(b, 29));
}

ZipfDistribution::ZipfDistribution(std::size_t n, double exponent)
    : exponent_(exponent) {
  SVS_REQUIRE(n > 0, "zipf needs at least one rank");
  SVS_REQUIRE(exponent >= 0.0, "zipf exponent must be non-negative");
  cdf_.resize(n);
  double acc = 0.0;
  for (std::size_t r = 1; r <= n; ++r) {
    acc += std::pow(static_cast<double>(r), -exponent);
    cdf_[r - 1] = acc;
  }
  for (auto& c : cdf_) c /= acc;
  cdf_.back() = 1.0;  // guard against rounding
}

std::size_t ZipfDistribution::sample(Rng& rng) const {
  const double u = rng.uniform01();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin()) + 1;
}

double ZipfDistribution::pmf(std::size_t rank) const {
  SVS_REQUIRE(rank >= 1 && rank <= cdf_.size(), "rank out of range");
  const double hi = cdf_[rank - 1];
  const double lo = rank >= 2 ? cdf_[rank - 2] : 0.0;
  return hi - lo;
}

}  // namespace svs::sim
