#include "sim/explorer.hpp"

#include <algorithm>
#include <memory>
#include <sstream>
#include <utility>

#include "core/checker.hpp"
#include "core/group.hpp"
#include "net/fault_injector.hpp"
#include "obs/batch.hpp"
#include "obs/relation.hpp"
#include "sim/fault_plan.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "util/contracts.hpp"
#include "workload/consumer.hpp"
#include "workload/item_op.hpp"

namespace svs::sim {
namespace {

struct PlannedSend {
  TimePoint at;
  std::uint64_t item = 0;
};

/// The fully derived scenario (shape + workload + faults), after the spec's
/// mask and truncation have been applied.  Everything here is a pure
/// function of the ScenarioSpec.
struct Scenario {
  std::uint32_t n = 3;
  RelationKind relation = RelationKind::item_tag;
  std::size_t kenum_horizon = 8;       // k_enum bitmap horizon
  std::uint64_t enum_window = 0;       // enumeration truncation (0 = full)
  bool purging = true;
  std::size_t delivery_capacity = 0;
  std::size_t out_capacity = 0;
  FdBackend fd = FdBackend::oracle;
  sim::Duration oracle_delay = sim::Duration::millis(30);
  sim::Duration suspicion_grace = sim::Duration::millis(20);
  bool slow_consumer = false;
  double slow_rate = 50.0;
  bool reconfigure = false;
  std::uint32_t reconfigurer = 0;
  TimePoint reconfigure_at;
  bool quiescent = true;
  bool leave = false;
  std::uint32_t leaver = 0;
  TimePoint leave_at;
  Duration horizon = Duration::millis(1500);
  std::vector<std::vector<PlannedSend>> sends;  // per node, time-sorted
  FaultPlan faults;                             // masked
  std::size_t faults_total = 0;                 // before masking
  std::size_t planned_total = 0;                // after truncation
};

// Master-seed stream ids (sim::Rng::stream): keep them distinct so no two
// derivation phases share a sequence.
constexpr std::uint64_t kShapeStream = 0;
constexpr std::uint64_t kWorkloadStream = 1;
constexpr std::uint64_t kFaultSeedStream = 2;

Scenario make_scenario(const ScenarioSpec& spec) {
  Scenario sc;
  Rng shape = Rng::stream(spec.seed, kShapeStream);

  sc.n = static_cast<std::uint32_t>(3 + shape.below(4));  // 3..6
  // Relation mix, biased towards the representations whose GC is hardest:
  // k-enumeration (and windowed enumeration) under-declare the true
  // obsolescence order, which is where the purge-debt ledger earns its
  // keep.  The draws always happen (pin or not) so a pinned replay shares
  // every other derived choice with the unpinned seed.
  const std::uint64_t relation_draw = shape.below(100);
  sc.relation = relation_draw < 20   ? RelationKind::empty
                : relation_draw < 50 ? RelationKind::item_tag
                : relation_draw < 85 ? RelationKind::k_enum
                                     : RelationKind::enumeration;
  sc.kenum_horizon = 2 + shape.below(9);            // 2..10
  sc.enum_window = shape.chance(0.5) ? 2 + shape.below(6) : 0;
  const bool purge_draw_tight = shape.chance(0.85);
  const bool purge_draw_loose = shape.chance(0.95);
  if (spec.relation_pin.has_value()) sc.relation = *spec.relation_pin;
  // Purge-biased where it matters: k-enum and enumeration scenarios almost
  // always run sender-side purging (the regression surface); the empty
  // relation purges nothing by construction.
  sc.purging = sc.relation == RelationKind::item_tag ? purge_draw_tight
                                                     : purge_draw_loose;
  if (shape.chance(0.55)) {
    // Tight buffers are where sender-side purging (and its GC interplay)
    // actually fires: go as low as one delivery slot.
    sc.delivery_capacity = 1 + shape.below(15);
    sc.out_capacity = 2 + shape.below(15);
  }
  // One uniform01 draw (exactly the old heartbeat-chance draw, so every
  // later stream position is unchanged): [0, .25) heartbeat as before,
  // [.25, .5) SWIM carved out of the old oracle share, the rest oracle.
  const double fd_draw = shape.uniform01();
  sc.fd = fd_draw < 0.25   ? FdBackend::heartbeat
          : fd_draw < 0.50 ? FdBackend::swim
                           : FdBackend::oracle;
  if (spec.fd_pin.has_value()) sc.fd = *spec.fd_pin;
  sc.oracle_delay = Duration::millis(5 + static_cast<std::int64_t>(shape.below(30)));
  sc.suspicion_grace =
      Duration::millis(5 + static_cast<std::int64_t>(shape.below(20)));
  sc.slow_consumer = shape.chance(0.5);
  sc.slow_rate = 8.0 + static_cast<double>(shape.below(75));

  // Departure budget: crashes plus voluntary leaves must leave every view
  // with an alive majority (consensus liveness), so cap them below half of
  // the initial group.
  const std::uint32_t budget = (sc.n - 1) / 2;
  sc.leave = budget > 0 && shape.chance(0.3);
  const std::uint32_t crash_budget = budget - (sc.leave ? 1 : 0);

  // The fault plan draws from its own master seed, so its internal streams
  // (shape, per-fault) can never collide with the explorer's.
  const std::uint64_t plan_seed =
      Rng::stream(spec.seed, kFaultSeedStream).next_u64();
  FaultPlan::GenerateOptions fault_options;
  fault_options.processes = sc.n;
  fault_options.horizon = sc.horizon;
  fault_options.max_crashes = crash_budget;
  fault_options.hostile = spec.hostile;
  const FaultPlan full = FaultPlan::generate(plan_seed, fault_options);
  sc.faults_total = full.faults.size();
  sc.faults = full.masked(spec.fault_mask);

  // The spec's explicit loss knob rides along after masking: its id sits
  // past every generated entry (stable rng stream regardless of the mask),
  // and the shrinker's mask bits never cover it — a requested loss rate is
  // part of the scenario, not a removable fault.
  if (spec.loss_permille > 0) {
    FaultSpec f;
    f.kind = FaultKind::loss;
    f.id = static_cast<std::uint32_t>(full.faults.size());
    f.a = FaultSpec::kAllLinks;
    f.start = TimePoint::origin();
    f.end = TimePoint::origin() + sc.horizon;
    f.probability = std::min(static_cast<double>(spec.loss_permille), 999.0) /
                    1000.0;
    f.magnitude = Duration::millis(3);  // per-lost-transmission RTO
    sc.faults.faults.push_back(f);
  }

  // The voluntary leaver must not be one of the (unmasked) plan's crash
  // victims — a crashed node cannot request its own departure.  Note the
  // choice depends on the full plan, not the mask, so shrinking the mask
  // never moves the leaver.
  if (sc.leave) {
    std::vector<std::uint32_t> victims;
    for (const auto& f : full.faults) {
      if (f.kind == FaultKind::crash) victims.push_back(f.a);
    }
    std::uint32_t pick =
        static_cast<std::uint32_t>(shape.below(sc.n - victims.size()));
    for (std::uint32_t p = 0; p < sc.n; ++p) {
      if (std::find(victims.begin(), victims.end(), p) != victims.end()) {
        continue;
      }
      if (pick == 0) {
        sc.leaver = p;
        break;
      }
      --pick;
    }
    sc.leave_at = TimePoint::origin() + sc.horizon + sc.horizon / 5;
  }
  sc.reconfigure = shape.chance(0.5);
  sc.reconfigurer = static_cast<std::uint32_t>(shape.below(sc.n));
  sc.reconfigure_at = TimePoint::origin() + sc.horizon * 9 / 20;
  // Quiescent adaptive gossip in ~half the scenarios, the classic fixed
  // cadence in the rest.  The draw always happens (pin or not), and it is
  // the LAST shape draw, so pinned replays — and pre-quiescence seeds —
  // share every other derived choice.
  const bool quiescent_draw = shape.chance(0.5);
  sc.quiescent = spec.quiescent_pin.value_or(quiescent_draw);

  // Workload: per node, a time-sorted plan of tagged multicasts within the
  // horizon.  Generated in full, then truncated to the spec's per-node
  // prefix (the shrinker's second knob).
  Rng workload = Rng::stream(spec.seed, kWorkloadStream);
  sc.sends.resize(sc.n);
  for (std::uint32_t i = 0; i < sc.n; ++i) {
    auto& plan = sc.sends[i];
    // Two workload shapes per node: uniform singles (the old generator),
    // or game-round-like bursts — a run of quick updates of ONE item, which
    // is what builds purge chains inside a backed-up channel (§4.1's
    // composite-update traffic, and the purge-debt regression surface).
    const bool bursty = workload.chance(0.5);
    if (!bursty) {
      const std::uint64_t count = 8 + workload.below(25);
      plan.reserve(count);
      for (std::uint64_t m = 0; m < count; ++m) {
        plan.push_back(PlannedSend{
            TimePoint::origin() +
                Duration::micros(static_cast<std::int64_t>(workload.below(
                    static_cast<std::uint64_t>(sc.horizon.as_micros())))),
            workload.below(6)});
      }
    } else {
      const std::uint64_t bursts = 3 + workload.below(6);
      for (std::uint64_t b = 0; b < bursts; ++b) {
        const std::uint64_t item = workload.below(6);
        const std::uint64_t length = 2 + workload.below(6);
        TimePoint at =
            TimePoint::origin() +
            Duration::micros(static_cast<std::int64_t>(workload.below(
                static_cast<std::uint64_t>(sc.horizon.as_micros()))));
        for (std::uint64_t m = 0; m < length; ++m) {
          plan.push_back(PlannedSend{at, item});
          at = at + Duration::micros(
                        500 + static_cast<std::int64_t>(workload.below(4000)));
        }
      }
    }
    // stable_sort: equal-time ties keep generation order, so the plan is
    // identical across standard libraries (repro lines are cross-platform).
    std::stable_sort(plan.begin(), plan.end(),
                     [](const PlannedSend& a, const PlannedSend& b) {
                       return a.at < b.at;
                     });
    if (spec.message_limit != ScenarioSpec::kNoLimit &&
        plan.size() > spec.message_limit) {
      plan.resize(spec.message_limit);
    }
    sc.planned_total += plan.size();
  }
  return sc;
}

const char* relation_label(RelationKind kind) {
  switch (kind) {
    case RelationKind::empty: return "empty-rel";
    case RelationKind::item_tag: return "item-tags";
    case RelationKind::k_enum: return "k-enum";
    case RelationKind::enumeration: return "enum";
  }
  return "?";
}

/// The *ground truth* obsolescence order of the explorer workload: same
/// sender, same planned item, higher seq — transitively closed by
/// construction.  Drivers send their plan prefix in order, so node i's
/// seq s is plan entry s-1; the compact annotations (k-enum bitmaps,
/// windowed enumerations) under-declare this truth, never contradict it.
class PlannedItemTruth final : public obs::Relation {
 public:
  explicit PlannedItemTruth(std::vector<std::vector<std::uint64_t>> items)
      : items_(std::move(items)) {}

  [[nodiscard]] bool per_sender() const override { return true; }
  [[nodiscard]] bool covers(const obs::MessageRef& newer,
                            const obs::MessageRef& older) const override {
    if (newer.sender != older.sender || newer.seq <= older.seq) return false;
    const auto node = static_cast<std::size_t>(newer.sender.value());
    if (node >= items_.size()) return false;
    const auto& plan = items_[node];
    if (newer.seq > plan.size() || older.seq == 0 ||
        older.seq > plan.size()) {
      return false;
    }
    return plan[newer.seq - 1] == plan[older.seq - 1];
  }
  [[nodiscard]] const char* name() const override { return "planned-truth"; }

 private:
  std::vector<std::vector<std::uint64_t>> items_;  // node -> (seq-1 -> item)
};

std::string summarize(const Scenario& sc) {
  std::ostringstream os;
  os << "n=" << sc.n << ' ' << relation_label(sc.relation);
  if (sc.relation == RelationKind::k_enum) os << "(k=" << sc.kenum_horizon << ")";
  if (sc.relation == RelationKind::enumeration && sc.enum_window != 0) {
    os << "(win=" << sc.enum_window << ")";
  }
  os << (sc.quiescent ? " quiescent" : " classic")
     << (sc.purging ? " purge" : " reliable") << " cap="
     << sc.delivery_capacity << "/" << sc.out_capacity << ' '
     << fd_flag(sc.fd) << "-fd";
  if (sc.slow_consumer) os << " slow=" << sc.slow_rate << "/s";
  if (sc.reconfigure) os << " reconf@p" << sc.reconfigurer;
  if (sc.leave) os << " leave@p" << sc.leaver;
  os << " msgs=" << sc.planned_total << " | " << sc.faults.describe();
  return os.str();
}

/// Per-node producer: multicasts its planned sends at their times, retrying
/// around flow control via the unblocked callback; stops when the node
/// leaves the group or crash-stops.  For the compact representations it
/// composes the annotations the way a real producer would
/// (obs::BatchComposer, singleton batches): k-enum bitmaps fold the
/// transitive closure up to the horizon, enumerations carry (optionally
/// windowed) seq lists.
class Driver {
 public:
  Driver(Simulator& sim, core::Group& group, std::size_t index,
         std::vector<PlannedSend> planned, const Scenario& sc)
      : sim_(sim),
        group_(group),
        index_(index),
        planned_(std::move(planned)),
        relation_(sc.relation),
        composer_(composer_config(sc)) {}

  void start() {
    group_.node(index_).set_unblocked_callback([this] { pump(); });
    if (!planned_.empty()) {
      sim_.schedule_at(planned_[0].at, [this] { pump(); });
    }
  }

  [[nodiscard]] bool done() const {
    return next_ >= planned_.size() || group_.node(index_).excluded() ||
           group_.network().is_crashed(group_.pid(index_));
  }

 private:
  static obs::BatchComposer::Config composer_config(const Scenario& sc) {
    obs::BatchComposer::Config cfg;
    cfg.representation = sc.relation == RelationKind::enumeration
                             ? obs::AnnotationKind::enumeration
                             : obs::AnnotationKind::k_enum;
    cfg.k = sc.kenum_horizon;
    cfg.enumeration_window = sc.enum_window;
    return cfg;
  }

  [[nodiscard]] obs::Annotation annotate(std::uint64_t item,
                                         std::uint64_t seq,
                                         obs::BatchComposer& trial) const {
    switch (relation_) {
      case RelationKind::empty: return obs::Annotation::none();
      case RelationKind::item_tag: return obs::Annotation::item(item);
      case RelationKind::k_enum:
      case RelationKind::enumeration: return trial.single(item, seq);
    }
    SVS_UNREACHABLE("relation kind exhausted");
  }

  void pump() {
    core::Node& node = group_.node(index_);
    while (next_ < planned_.size()) {
      if (node.excluded() ||
          group_.network().is_crashed(group_.pid(index_))) {
        return;  // left the group (or the fault plan crash-stopped us)
      }
      const PlannedSend& p = planned_[next_];
      if (sim_.now() < p.at) {
        sim_.schedule_at(p.at, [this] { pump(); });
        return;
      }
      // The composer notes the seq it annotates for, but a multicast may
      // still be refused by flow control — so the annotation is composed
      // on a scratch copy that only replaces the real composer once the
      // send committed.
      obs::BatchComposer trial = composer_;
      const auto annotation = annotate(p.item, node.next_seq(), trial);
      const auto payload = std::make_shared<workload::ItemOp>(
          workload::OpKind::update, p.item, next_ * 17 + index_,
          next_, true);
      if (!node.multicast(payload, annotation).has_value()) {
        return;  // flow-controlled; the unblocked callback re-enters
      }
      composer_ = std::move(trial);
      ++next_;
    }
  }

  Simulator& sim_;
  core::Group& group_;
  std::size_t index_;
  std::vector<PlannedSend> planned_;
  RelationKind relation_;
  obs::BatchComposer composer_;
  std::size_t next_ = 0;
};

}  // namespace

const char* relation_flag(RelationKind kind) {
  switch (kind) {
    case RelationKind::empty: return "reliable";
    case RelationKind::item_tag: return "item";
    case RelationKind::k_enum: return "kenum";
    case RelationKind::enumeration: return "enum";
  }
  return "?";
}

std::optional<RelationKind> relation_from_flag(std::string_view flag) {
  for (const auto kind :
       {RelationKind::empty, RelationKind::item_tag, RelationKind::k_enum,
        RelationKind::enumeration}) {
    if (flag == relation_flag(kind)) return kind;
  }
  return std::nullopt;
}

const char* fd_flag(FdBackend backend) {
  switch (backend) {
    case FdBackend::oracle: return "oracle";
    case FdBackend::heartbeat: return "heartbeat";
    case FdBackend::swim: return "swim";
  }
  return "?";
}

std::optional<FdBackend> fd_from_flag(std::string_view flag) {
  for (const auto backend :
       {FdBackend::oracle, FdBackend::heartbeat, FdBackend::swim}) {
    if (flag == fd_flag(backend)) return backend;
  }
  return std::nullopt;
}

std::string ScenarioSpec::repro() const {
  std::ostringstream os;
  os << "svs_explore --seed=" << seed;
  if (relation_pin.has_value()) {
    os << " --relation=" << relation_flag(*relation_pin);
  }
  if (quiescent_pin.has_value()) {
    os << " --quiescent=" << (*quiescent_pin ? 1 : 0);
  }
  if (fd_pin.has_value()) os << " --fd=" << fd_flag(*fd_pin);
  if (hostile) os << " --hostile";
  if (loss_permille != 0) os << " --loss=" << loss_permille;
  if (fault_mask != ~0ULL) {
    os << " --faults=0x" << std::hex << fault_mask << std::dec;
  }
  if (message_limit != kNoLimit) os << " --msgs=" << message_limit;
  return os.str();
}

ScenarioOutcome ScenarioExplorer::run(const ScenarioSpec& spec) const {
  const Scenario sc = make_scenario(spec);

  Simulator sim;
  // The protocol runs the scenario's declared representation; the checker
  // verifies against the ground truth (which the compact representations
  // only under-approximate — §3.2's guarantee is w.r.t. the application's
  // true obsolescence semantics).
  obs::RelationPtr relation;
  obs::RelationPtr truth;
  switch (sc.relation) {
    case RelationKind::empty:
      relation = truth = std::make_shared<obs::EmptyRelation>();
      break;
    case RelationKind::item_tag:
      relation = truth = std::make_shared<obs::ItemTagRelation>();
      break;
    case RelationKind::k_enum:
      relation = std::make_shared<obs::KEnumRelation>();
      break;
    case RelationKind::enumeration:
      relation = std::make_shared<obs::EnumerationRelation>();
      break;
  }
  if (truth == nullptr) {
    std::vector<std::vector<std::uint64_t>> planned_items(sc.n);
    for (std::uint32_t i = 0; i < sc.n; ++i) {
      planned_items[i].reserve(sc.sends[i].size());
      for (const auto& p : sc.sends[i]) planned_items[i].push_back(p.item);
    }
    truth = std::make_shared<PlannedItemTruth>(std::move(planned_items));
  }
  core::SpecChecker checker(truth);

  core::Group::Config cfg;
  cfg.size = sc.n;
  cfg.node.relation = relation;
  cfg.node.purge_delivery_queue = sc.purging;
  cfg.node.purge_outgoing = sc.purging;
  cfg.node.quiescent = sc.quiescent;
  cfg.node.delivery_capacity = sc.delivery_capacity;
  cfg.node.out_capacity = sc.out_capacity;
  switch (sc.fd) {
    case FdBackend::oracle:
      cfg.fd_kind = core::Group::FdKind::oracle;
      break;
    case FdBackend::heartbeat:
      cfg.fd_kind = core::Group::FdKind::heartbeat;
      break;
    case FdBackend::swim:
      cfg.fd_kind = core::Group::FdKind::swim;
      // Scale the protocol to the scenario horizon so a real crash is
      // probed, suspected and confirmed well inside the settle window
      // even in a 6-member group.  Same rng-stream discipline as every
      // other backend: the seed pins all draws.
      cfg.swim.period = Duration::millis(40);
      cfg.swim.direct_timeout = Duration::millis(12);
      cfg.swim.suspicion_periods = 2;
      cfg.swim.seed = spec.seed;
      break;
  }
  cfg.oracle_delay = sc.oracle_delay;
  cfg.membership.suspicion_grace = sc.suspicion_grace;
  cfg.auto_membership = true;
  cfg.observer = &checker;

  // Injector declared before the group: the transport is torn down first,
  // so the hook can never dangle.
  net::PlannedFaultInjector injector(sc.faults);
  core::Group group(sim, cfg);
  group.network().set_fault_injector(&injector);
  net::schedule_crashes(sim, group.network(), sc.faults);

  // Consumers: everyone drains; at most one node is rate-limited.
  std::vector<std::unique_ptr<workload::InstantConsumer>> instant;
  std::unique_ptr<workload::RateConsumer> slow;
  const std::size_t slow_at = sc.slow_consumer ? sc.n - 1 : sc.n;
  for (std::size_t i = 0; i < sc.n; ++i) {
    if (i == slow_at) {
      slow = std::make_unique<workload::RateConsumer>(sim, group.node(i),
                                                      sc.slow_rate);
      slow->start();
    } else {
      instant.push_back(
          std::make_unique<workload::InstantConsumer>(sim, group.node(i)));
      instant.back()->start();
    }
  }

  std::vector<std::unique_ptr<Driver>> drivers;
  for (std::size_t i = 0; i < sc.n; ++i) {
    drivers.push_back(std::make_unique<Driver>(sim, group, i, sc.sends[i],
                                               sc));
    drivers.back()->start();
  }

  if (sc.reconfigure) {
    sim.schedule_at(sc.reconfigure_at, [&group, &sc] {
      core::Node& node = group.node(sc.reconfigurer);
      if (!node.excluded() &&
          !group.network().is_crashed(group.pid(sc.reconfigurer))) {
        node.request_view_change({});
      }
    });
  }
  if (sc.leave) {
    sim.schedule_at(sc.leave_at, [&group, &sc] {
      core::Node& node = group.node(sc.leaver);
      if (!node.excluded() &&
          !group.network().is_crashed(group.pid(sc.leaver))) {
        node.request_view_change({group.pid(sc.leaver)});
      }
    });
  }

  // Latest scheduled disturbance: quiescence cannot begin before it.
  TimePoint settle = TimePoint::origin() + sc.horizon;
  for (const auto& f : sc.faults.faults) {
    settle = std::max(settle, std::max(f.start, f.end));
  }
  if (sc.leave) settle = std::max(settle, sc.leave_at);
  if (sc.reconfigure) settle = std::max(settle, sc.reconfigure_at);

  const auto is_survivor = [&](std::size_t i) {
    return !group.network().is_crashed(group.pid(i)) &&
           !group.node(i).excluded();
  };
  // A node is *stranded* when its current view has no alive strict
  // majority: no view change can ever decide there (a blocked one stays
  // blocked; the membership guard rightly refuses to start one), so
  // backlogs towards dead members never clear and producers stay throttled.
  // A primary-partition stack legitimately halts in that state, so
  // stranded nodes are exempt from the progress conditions below and the
  // checker applies only the unconditional (quorum-free) guarantees.
  const auto stranded = [&](std::size_t i) {
    const core::View& v = group.node(i).current_view();
    std::size_t alive = 0;
    for (const auto p : v.members()) {
      if (!group.network().is_crashed(p)) ++alive;
    }
    return 2 * alive <= v.size();
  };
  const auto quiesced = [&] {
    if (sim.now() <= settle) return false;
    for (std::size_t i = 0; i < sc.n; ++i) {
      if (!drivers[i]->done() && !stranded(i)) return false;
    }
    for (std::size_t i = 0; i < sc.n; ++i) {
      if (!is_survivor(i)) continue;
      if (group.node(i).delivery_queue_length() != 0) return false;
      if (stranded(i)) continue;  // halted below quorum: nothing will move
      if (group.node(i).blocked()) return false;
      for (std::size_t j = 0; j < sc.n; ++j) {
        if (i == j || group.network().is_crashed(group.pid(j)) ||
            stranded(j)) {
          continue;
        }
        if (group.network().data_backlog(group.pid(i), group.pid(j)) != 0) {
          return false;
        }
      }
    }
    return true;
  };

  // Drive to quiescence.  The generous deadline leaves room for adaptive
  // heartbeat timeouts and slow consumers; virtual seconds are cheap.
  const TimePoint deadline = settle + Duration::seconds(40.0);
  int stable = 0;
  while (sim.now() < deadline) {
    sim.run_until(sim.now() + Duration::millis(500));
    // Two consecutive quiet samples: anything in flight at the first one
    // (a consensus decision, a deferred install) lands within the extra
    // half-second of virtual time.
    if (quiesced()) {
      if (++stable >= 2) break;
    } else {
      stable = 0;
    }
  }
  ScenarioOutcome outcome;
  outcome.quiesced = quiesced();

  // Close every log: pull whatever the consumers have not drained yet.
  for (std::size_t i = 0; i < sc.n; ++i) group.drain(i);

  outcome.violations = checker.verify();
  if (sc.relation == RelationKind::empty) {
    const auto strict = checker.verify_strict_vs();
    outcome.violations.insert(outcome.violations.end(), strict.begin(),
                              strict.end());
  }
  if (outcome.quiesced) {
    std::vector<net::ProcessId> alive;
    for (std::size_t i = 0; i < sc.n; ++i) {
      if (!group.network().is_crashed(group.pid(i))) {
        alive.push_back(group.pid(i));
      }
    }
    const auto quiet = checker.verify_quiescence(alive);
    outcome.violations.insert(outcome.violations.end(), quiet.begin(),
                              quiet.end());
  } else {
    outcome.violations.push_back(
        "run did not quiesce before the deadline (liveness violated)");
  }

  outcome.group_size = sc.n;
  outcome.faults_active = sc.faults.faults.size();
  outcome.faults_total = sc.faults_total;
  outcome.planned_sends = sc.planned_total;
  outcome.multicasts = checker.total_multicasts();
  outcome.deliveries = checker.total_deliveries();
  outcome.sim_events = sim.executed();
  outcome.net_stats = group.network().stats();
  outcome.summary = summarize(sc);
  return outcome;
}

ScenarioSpec ScenarioExplorer::shrink(const ScenarioSpec& failing) const {
  const auto fails = [this](const ScenarioSpec& trial) {
    return !run(trial).violations.empty();
  };

  ScenarioSpec best = failing;
  const Scenario full = make_scenario(failing);

  // Restrict the mask to real entries so repro lines stay readable.
  if (full.faults_total < 64) {
    best.fault_mask &= (1ULL << full.faults_total) - 1;
  }

  // Pass 1: greedy fault removal to a fixpoint.  One bit at a time — each
  // fault's randomness is private (id-keyed stream), so removals compose.
  const auto drop_faults = [&] {
    bool progress = true;
    while (progress) {
      progress = false;
      for (std::size_t bit = 0; bit < full.faults_total && bit < 64; ++bit) {
        const std::uint64_t flag = 1ULL << bit;
        if ((best.fault_mask & flag) == 0) continue;
        ScenarioSpec trial = best;
        trial.fault_mask &= ~flag;
        if (fails(trial)) {
          best = trial;
          progress = true;
        }
      }
    }
  };
  drop_faults();

  // Pass 2: bisect the per-node workload prefix.  hi always names a failing
  // limit, so the result fails even where failure is not monotone in the
  // message count.
  std::uint32_t max_planned = 0;
  for (const auto& plan : full.sends) {
    max_planned = std::max(max_planned,
                           static_cast<std::uint32_t>(plan.size()));
  }
  // Capping at max_planned truncates nothing, so this spec is
  // scenario-identical to `best` and known to fail.
  std::uint32_t hi = std::min(best.message_limit, max_planned);
  best.message_limit = hi;
  std::uint32_t lo = 0;
  while (lo < hi) {
    const std::uint32_t mid = lo + (hi - lo) / 2;
    ScenarioSpec trial = best;
    trial.message_limit = mid;
    if (fails(trial)) {
      hi = mid;
      best.message_limit = mid;
    } else {
      lo = mid + 1;
    }
  }

  // Pass 3: the smaller workload may have made more faults redundant.
  drop_faults();
  return best;
}

ScenarioExplorer::Exploration ScenarioExplorer::explore(
    std::uint64_t seed) const {
  Exploration exploration;
  exploration.spec.seed = seed;
  exploration.spec.relation_pin = options_.relation_pin;
  exploration.spec.quiescent_pin = options_.quiescent_pin;
  exploration.spec.fd_pin = options_.fd_pin;
  exploration.spec.hostile = options_.hostile;
  exploration.spec.loss_permille = options_.loss_permille;
  exploration.outcome = run(exploration.spec);
  if (!exploration.outcome.violations.empty()) {
    exploration.shrunk = shrink(exploration.spec);
    exploration.shrunk_outcome = run(*exploration.shrunk);
  }
  return exploration;
}

}  // namespace svs::sim
