#include "metrics/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/contracts.hpp"

namespace svs::metrics {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  SVS_REQUIRE(!headers_.empty(), "a table needs columns");
}

Table& Table::row(std::vector<std::string> cells) {
  SVS_REQUIRE(cells.size() == headers_.size(),
              "row width must match the header");
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::num(std::uint64_t v) { return std::to_string(v); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& r : rows_) widths[c] = std::max(widths[c], r[c].size());
  }
  const auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "  " : "  |  ");
      os.width(static_cast<std::streamsize>(widths[c]));
      os << cells[c];
    }
    os << "\n";
  };
  line(headers_);
  std::size_t total = headers_.size() * 5;
  for (const auto w : widths) total += w;
  os << "  " << std::string(total, '-') << "\n";
  for (const auto& r : rows_) line(r);
}

}  // namespace svs::metrics
