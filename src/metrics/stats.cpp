#include "metrics/stats.hpp"

#include <algorithm>
#include <atomic>

#include "util/contracts.hpp"
#include "util/pool.hpp"

namespace svs::metrics {

namespace {
std::atomic<std::uint64_t> g_gossip_rounds_suppressed{0};
std::atomic<std::uint64_t> g_frontier_piggybacks{0};
std::atomic<std::uint64_t> g_frames_batched{0};
std::atomic<std::uint64_t> g_batch_flushes{0};
std::atomic<std::uint64_t> g_syscalls_sent{0};
std::atomic<std::uint64_t> g_syscalls_recvd{0};
std::atomic<std::uint64_t> g_wheel_cascades{0};
}  // namespace

namespace counters {
void note_gossip_round_suppressed() {
  g_gossip_rounds_suppressed.fetch_add(1, std::memory_order_relaxed);
}
void note_frontier_piggyback() {
  g_frontier_piggybacks.fetch_add(1, std::memory_order_relaxed);
}
void note_frames_batched(std::uint64_t n) {
  g_frames_batched.fetch_add(n, std::memory_order_relaxed);
}
void note_batch_flush() {
  g_batch_flushes.fetch_add(1, std::memory_order_relaxed);
}
void note_send_syscall() {
  g_syscalls_sent.fetch_add(1, std::memory_order_relaxed);
}
void note_recv_syscall() {
  g_syscalls_recvd.fetch_add(1, std::memory_order_relaxed);
}
void note_wheel_cascades(std::uint64_t n) {
  g_wheel_cascades.fetch_add(n, std::memory_order_relaxed);
}
}  // namespace counters

Stats Stats::snapshot() {
  const util::PoolStats pools = util::Pool::aggregate();
  return Stats{pools.hits,
               pools.misses,
               pools.bytes_recycled,
               g_gossip_rounds_suppressed.load(std::memory_order_relaxed),
               g_frontier_piggybacks.load(std::memory_order_relaxed),
               g_frames_batched.load(std::memory_order_relaxed),
               g_batch_flushes.load(std::memory_order_relaxed),
               g_syscalls_sent.load(std::memory_order_relaxed),
               g_syscalls_recvd.load(std::memory_order_relaxed),
               g_wheel_cascades.load(std::memory_order_relaxed)};
}

void Summary::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  sum_ += x;
  ++count_;
}

double Summary::mean() const { return count_ == 0 ? 0.0 : sum_ / count_; }
double Summary::min() const { return min_; }
double Summary::max() const { return max_; }

void TimeWeightedMean::record(sim::TimePoint now, double x) {
  SVS_REQUIRE(now >= last_, "samples must be time-ordered");
  const double dt = static_cast<double>((now - last_).as_micros());
  weighted_sum_ += dt * x;
  total_time_ += dt;
  last_ = now;
  max_ = std::max(max_, x);
}

double TimeWeightedMean::mean() const {
  return total_time_ <= 0.0 ? 0.0 : weighted_sum_ / total_time_;
}

PeriodicSampler::PeriodicSampler(sim::Simulator& simulator,
                                 sim::Duration period,
                                 std::function<double()> probe)
    : sim_(simulator), period_(period), probe_(std::move(probe)),
      mean_(simulator.now()) {
  SVS_REQUIRE(period_ > sim::Duration::zero(), "period must be positive");
  SVS_REQUIRE(probe_ != nullptr, "probe must be callable");
}

void PeriodicSampler::start() {
  SVS_REQUIRE(!pending_.valid(), "sampler already running");
  tick();
}

void PeriodicSampler::tick() {
  mean_.record(sim_.now(), probe_());
  pending_ = sim_.schedule_after(period_, [this] { tick(); });
}

void PeriodicSampler::stop() {
  if (pending_.valid()) {
    sim_.cancel(pending_);
    pending_ = sim::EventId{};
  }
}

void Histogram::add(std::int64_t key, std::uint64_t weight) {
  buckets_[key] += weight;
  total_ += weight;
}

double Histogram::share(std::int64_t key) const {
  if (total_ == 0) return 0.0;
  const auto it = buckets_.find(key);
  return it == buckets_.end()
             ? 0.0
             : static_cast<double>(it->second) / static_cast<double>(total_);
}

std::int64_t Histogram::percentile(double p) const {
  SVS_REQUIRE(p >= 0.0 && p <= 100.0, "percentile must be in [0, 100]");
  if (total_ == 0) return 0;
  const double target = p / 100.0 * static_cast<double>(total_);
  std::uint64_t acc = 0;
  for (const auto& [k, n] : buckets_) {
    acc += n;
    if (static_cast<double>(acc) >= target) return k;
  }
  return buckets_.rbegin()->first;
}

}  // namespace svs::metrics
