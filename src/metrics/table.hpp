// Fixed-width table printing for experiment output, so every bench prints
// figure series the same way.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace svs::metrics {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  Table& row(std::vector<std::string> cells);

  /// Formats a double with the given precision.
  static std::string num(double v, int precision = 2);
  static std::string num(std::uint64_t v);

  void print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace svs::metrics
