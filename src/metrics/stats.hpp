// Small statistics toolkit for the experiment harnesses.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace svs::metrics {

/// Mean/min/max/count over plain samples.
class Summary {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;

 private:
  std::size_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Time-weighted average of a piecewise-constant signal (e.g. buffer
/// occupancy): each add() records the value holding *since* the previous
/// add.
class TimeWeightedMean {
 public:
  explicit TimeWeightedMean(sim::TimePoint start) : last_(start) {}

  /// Reports that the signal has had value `x` since the last call.
  void record(sim::TimePoint now, double x);

  [[nodiscard]] double mean() const;
  [[nodiscard]] double max() const { return max_; }

 private:
  sim::TimePoint last_;
  double weighted_sum_ = 0.0;
  double total_time_ = 0.0;
  double max_ = 0.0;
};

/// Samples a callback at a fixed period and accumulates a TimeWeightedMean.
/// This mirrors how the paper "observ[es] the amount of buffer used".
class PeriodicSampler {
 public:
  PeriodicSampler(sim::Simulator& simulator, sim::Duration period,
                  std::function<double()> probe);

  void start();
  void stop();

  [[nodiscard]] const TimeWeightedMean& series() const { return mean_; }

 private:
  void tick();

  sim::Simulator& sim_;
  sim::Duration period_;
  std::function<double()> probe_;
  TimeWeightedMean mean_;
  sim::EventId pending_{};
};

/// Process-wide runtime counters sampled by harnesses and benches.  Today
/// this covers allocator observability (the pooled hot-path allocator in
/// util/pool.hpp counts free-list reuses vs system-allocator trips) plus
/// quiescence/batching observability: suppressed gossip rounds and frontier
/// piggybacks from core::Node, and frame-batching activity from the
/// transports.  snapshot() aggregates over every thread's pool plus the
/// process-wide counters; diff two snapshots to attribute work to a measured
/// region (bench_micro's flood and steady-state sections do).
struct Stats {
  std::uint64_t pool_hits = 0;
  std::uint64_t pool_misses = 0;
  std::uint64_t bytes_recycled = 0;
  std::uint64_t gossip_rounds_suppressed = 0;
  std::uint64_t frontier_piggybacks = 0;
  std::uint64_t frames_batched = 0;
  std::uint64_t batch_flushes = 0;
  std::uint64_t syscalls_sent = 0;    // kernel send calls (sendto/sendmmsg)
  std::uint64_t syscalls_recvd = 0;   // kernel recv calls (recv/recvmmsg)
  std::uint64_t wheel_cascades = 0;   // timer-wheel level-to-level moves

  [[nodiscard]] static Stats snapshot();

  [[nodiscard]] Stats operator-(const Stats& since) const {
    return Stats{pool_hits - since.pool_hits,
                 pool_misses - since.pool_misses,
                 bytes_recycled - since.bytes_recycled,
                 gossip_rounds_suppressed - since.gossip_rounds_suppressed,
                 frontier_piggybacks - since.frontier_piggybacks,
                 frames_batched - since.frames_batched,
                 batch_flushes - since.batch_flushes,
                 syscalls_sent - since.syscalls_sent,
                 syscalls_recvd - since.syscalls_recvd,
                 wheel_cascades - since.wheel_cascades};
  }
};

/// Cheap process-wide counters noted from protocol/transport hot paths and
/// folded into Stats::snapshot().  Relaxed atomics: these are telemetry, not
/// synchronization.
namespace counters {
void note_gossip_round_suppressed();
void note_frontier_piggyback();
void note_frames_batched(std::uint64_t n);
void note_batch_flush();
void note_send_syscall();
void note_recv_syscall();
void note_wheel_cascades(std::uint64_t n);
}  // namespace counters

/// Integer-keyed histogram with share/percentile helpers.
class Histogram {
 public:
  void add(std::int64_t key, std::uint64_t weight = 1);

  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] double share(std::int64_t key) const;
  [[nodiscard]] std::int64_t percentile(double p) const;  // p in [0, 100]
  [[nodiscard]] const std::map<std::int64_t, std::uint64_t>& buckets() const {
    return buckets_;
  }

 private:
  std::map<std::int64_t, std::uint64_t> buckets_;
  std::uint64_t total_ = 0;
};

}  // namespace svs::metrics
