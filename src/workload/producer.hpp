// Trace-driven producer with flow-control accounting.
//
// §5.3: "A producer injects traffic in one of the nodes according to the
// item update pattern recorded experimentally" — and the metric of
// Fig 4(a)/5(a) is how long the producer is *blocked by flow control*.
// Each trace message is injected at its scheduled time, or as soon as the
// protocol accepts it if it was blocked; the time between first refusal and
// eventual acceptance accumulates as blocked time.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "core/membership.hpp"
#include "core/node.hpp"
#include "sim/simulator.hpp"
#include "workload/trace.hpp"

namespace svs::workload {

class TraceProducer {
 public:
  TraceProducer(sim::Simulator& simulator, core::Node& node,
                const Trace& trace);

  TraceProducer(const TraceProducer&) = delete;
  TraceProducer& operator=(const TraceProducer&) = delete;

  /// Schedules the first injection.  `on_done` (optional) fires after the
  /// last message is accepted.
  void start(std::function<void()> on_done = nullptr);

  /// Optionally report blockage to a membership policy (for the paper's
  /// "exclude on lack of buffer space" trigger).
  void attach_policy(core::MembershipPolicy* policy) { policy_ = policy; }

  [[nodiscard]] std::size_t sent() const { return next_; }
  [[nodiscard]] bool done() const { return next_ >= trace_.messages().size(); }
  [[nodiscard]] sim::Duration blocked_time() const { return blocked_total_; }
  [[nodiscard]] bool currently_blocked() const {
    return blocked_since_.has_value();
  }

  /// Fraction of elapsed time (start -> now/done) spent blocked — the
  /// "producer idle" percentage of Fig 4(a).
  [[nodiscard]] double idle_fraction() const;

 private:
  void pump();

  sim::Simulator& sim_;
  core::Node& node_;
  const Trace& trace_;
  core::MembershipPolicy* policy_ = nullptr;

  std::size_t next_ = 0;
  sim::TimePoint started_{};
  sim::TimePoint finished_{};
  std::optional<sim::TimePoint> blocked_since_;
  sim::Duration blocked_total_ = sim::Duration::zero();
  std::function<void()> on_done_;
  bool started_flag_ = false;
  // Pending time-based wakeup; pump() is also re-entered by the node's
  // unblocked callback, so the wakeup must be deduplicated (due times are
  // non-decreasing along the trace, so one pending wakeup is always the
  // right one).
  sim::EventId wakeup_{};
};

}  // namespace svs::workload
