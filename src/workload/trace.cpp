#include "workload/trace.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace svs::workload {
namespace {

/// Ground-truth oracle: transitive closure of the trace's direct edges.
/// Seqs are 1-based positions in the single producer's stream.
class TraceRelation final : public obs::Relation {
 public:
  explicit TraceRelation(const std::vector<TraceMessage>& messages) {
    closure_.resize(messages.size());
    for (std::size_t i = 0; i < messages.size(); ++i) {
      auto& mine = closure_[i];
      for (const std::size_t d : messages[i].direct_covers) {
        SVS_ASSERT(d < i, "direct edges must point backwards");
        mine.push_back(d);
        mine.insert(mine.end(), closure_[d].begin(), closure_[d].end());
      }
      std::sort(mine.begin(), mine.end());
      mine.erase(std::unique(mine.begin(), mine.end()), mine.end());
    }
  }

  [[nodiscard]] bool covers(const obs::MessageRef& newer,
                            const obs::MessageRef& older) const override {
    if (newer.sender != older.sender) return false;
    if (newer.seq <= older.seq || newer.seq == 0 || older.seq == 0) {
      return false;
    }
    const std::size_t ni = static_cast<std::size_t>(newer.seq - 1);
    const std::size_t oi = static_cast<std::size_t>(older.seq - 1);
    if (ni >= closure_.size()) return false;
    const auto& c = closure_[ni];
    return std::binary_search(c.begin(), c.end(), oi);
  }

  [[nodiscard]] const char* name() const override { return "trace-truth"; }

 private:
  std::vector<std::vector<std::size_t>> closure_;
};

}  // namespace

obs::RelationPtr Trace::ground_truth() const {
  if (ground_truth_ == nullptr) {
    ground_truth_ = std::make_shared<TraceRelation>(messages_);
  }
  return ground_truth_;
}

}  // namespace svs::workload
