#include "workload/game_generator.hpp"

#include <algorithm>
#include <set>
#include <unordered_map>

#include "util/contracts.hpp"

namespace svs::workload {
namespace {

/// Deterministic pseudo-content for an item's new state, independent of the
/// generator's rng consumption (so tweaking distributions does not change
/// payload values in unrelated ways).
std::uint64_t synth_value(ItemId item, std::uint64_t round) {
  std::uint64_t x = item * 0x9E3779B97F4A7C15ULL + round * 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 31;
  x *= 0x94D049BB133111EBULL;
  return x ^ (x >> 29);
}

}  // namespace

GameTraceGenerator::GameTraceGenerator(Config config) : config_(config) {
  SVS_REQUIRE(config_.rounds_per_second > 0, "round rate must be positive");
  SVS_REQUIRE(config_.persistent_items >= 1, "need at least one item");
  SVS_REQUIRE(config_.round_jitter >= 0 && config_.round_jitter < 1,
              "jitter must be in [0, 1)");
  SVS_REQUIRE(config_.transient_life_rounds >= 1,
              "transients must live at least one round");
}

Trace GameTraceGenerator::generate(std::size_t rounds) {
  sim::Rng rng(config_.seed);
  const sim::ZipfDistribution zipf(config_.persistent_items,
                                   config_.zipf_exponent);
  obs::BatchComposer composer(config_.batch);

  std::vector<TraceMessage> messages;

  // Ground-truth bookkeeping, mirroring BatchComposer's rules but with
  // message *indices* and without any representation horizon.
  struct GtRecord {
    std::size_t index = 0;
    bool multi_carrier = false;
    std::set<ItemId> batch_items;
  };
  std::unordered_map<ItemId, GtRecord> gt_last;

  struct Transient {
    ItemId id;
    std::size_t updates_left;
  };
  std::vector<Transient> transients;
  ItemId next_transient = 1'000'000;

  // Statistics accumulators.
  std::map<ItemId, std::size_t> rounds_modified;
  double active_sum = 0.0;
  std::uint64_t modified_sum = 0;

  struct PlannedOp {
    OpKind op;
    ItemId item;
  };

  sim::TimePoint now = sim::TimePoint::origin();
  const double interval_s = 1.0 / config_.rounds_per_second;

  for (std::uint64_t round = 0; round < rounds; ++round) {
    // ---- decide the round's operations ---------------------------------
    std::vector<PlannedOp> creates;
    std::vector<PlannedOp> updates;
    std::vector<PlannedOp> destroys;

    for (auto it = transients.begin(); it != transients.end();) {
      if (it->updates_left == 0) {
        destroys.push_back({OpKind::destroy, it->id});
        it = transients.erase(it);
      } else {
        updates.push_back({OpKind::update, it->id});
        --it->updates_left;
        ++it;
      }
    }
    if (rng.chance(config_.transient_spawn_rate)) {
      const ItemId id = next_transient++;
      creates.push_back({OpKind::create, id});
      transients.push_back(
          {id, 1 + static_cast<std::size_t>(
                       rng.geometric(1.0 / config_.transient_life_rounds))});
    }

    if (!rng.chance(config_.idle_round_probability)) {
      std::size_t count =
          1 + static_cast<std::size_t>(
                  rng.geometric(1.0 - config_.update_continue));
      if (rng.chance(config_.burst_probability)) {
        count += 1 + static_cast<std::size_t>(
                         rng.below(config_.burst_extra_max));
      }
      count = std::min(count, config_.persistent_items);
      std::set<ItemId> chosen;
      std::size_t attempts = 0;
      while (chosen.size() < count && attempts < 50 * count) {
        chosen.insert(static_cast<ItemId>(zipf.sample(rng) - 1));
        ++attempts;
      }
      for (const auto item : chosen) {
        updates.push_back({OpKind::update, item});
      }
    }

    // ---- statistics ------------------------------------------------------
    active_sum +=
        static_cast<double>(config_.persistent_items + transients.size());
    modified_sum += updates.size();
    for (const auto& op : updates) ++rounds_modified[op.item];

    // ---- materialize the batch ------------------------------------------
    // Order: creates, updates, destroys — the commit is carried by the last
    // registered (update/destroy) operation; creations are never obsolete
    // and never obsolete anything, so they stay outside the composer.
    std::vector<PlannedOp> ops;
    ops.insert(ops.end(), creates.begin(), creates.end());
    ops.insert(ops.end(), updates.begin(), updates.end());
    ops.insert(ops.end(), destroys.begin(), destroys.end());
    if (ops.empty()) {
      now = now + sim::Duration::seconds(
                      interval_s *
                      (1.0 + config_.round_jitter *
                                 rng.uniform(-1.0, 1.0)));
      continue;
    }

    const std::size_t registered = updates.size() + destroys.size();
    std::set<ItemId> batch_items;
    if (registered > 0) {
      composer.begin();
      for (const auto& op : updates) {
        composer.add_item(op.item);
        batch_items.insert(op.item);
      }
      for (const auto& op : destroys) {
        composer.add_item(op.item);
        batch_items.insert(op.item);
      }
    }

    for (std::size_t k = 0; k < ops.size(); ++k) {
      const PlannedOp& op = ops[k];
      const bool last_of_round = k + 1 == ops.size();
      const std::uint64_t seq = messages.size() + 1;

      obs::Annotation annotation = obs::Annotation::none();
      std::vector<std::size_t> direct;

      const bool is_registered = op.op != OpKind::create;
      if (is_registered && last_of_round) {
        // Commit carrier: declare predecessors (representation-clipped in
        // the annotation, exact in the ground truth).
        annotation = composer.commit(seq, op.item);
        for (const auto item : batch_items) {
          const auto rec = gt_last.find(item);
          if (rec == gt_last.end()) continue;
          if (rec->second.multi_carrier &&
              !std::includes(batch_items.begin(), batch_items.end(),
                             rec->second.batch_items.begin(),
                             rec->second.batch_items.end())) {
            continue;  // super-set rule: the old carrier must survive
          }
          direct.push_back(rec->second.index);
        }
        std::sort(direct.begin(), direct.end());
      } else if (is_registered) {
        composer.note_update_seq(op.item, seq);
      }

      messages.push_back(TraceMessage{
          now + sim::Duration::micros(static_cast<std::int64_t>(50 * k)),
          std::make_shared<ItemOp>(op.op, op.item,
                                   synth_value(op.item, round), round,
                                   last_of_round),
          std::move(annotation), seq, std::move(direct)});
    }

    // Refresh ground-truth records (after all edges were computed).
    {
      const std::size_t first_index = messages.size() - ops.size();
      const bool multi = batch_items.size() > 1;
      for (std::size_t k = 0; k < ops.size(); ++k) {
        const PlannedOp& op = ops[k];
        if (op.op == OpKind::create) continue;
        const bool carrier = k + 1 == ops.size();
        GtRecord rec;
        rec.index = first_index + k;
        rec.multi_carrier = carrier && multi;
        if (rec.multi_carrier) rec.batch_items = batch_items;
        gt_last[op.item] = std::move(rec);
      }
    }

    now = now + sim::Duration::seconds(
                    interval_s *
                    (1.0 + config_.round_jitter * rng.uniform(-1.0, 1.0)));
  }

  // ---- trace-wide statistics ---------------------------------------------
  TraceStats stats;
  stats.rounds = rounds;
  stats.messages = messages.size();
  stats.duration_seconds = now.as_seconds();
  stats.avg_rate_msgs_per_sec =
      stats.duration_seconds > 0
          ? static_cast<double>(messages.size()) / stats.duration_seconds
          : 0.0;
  stats.avg_active_items = rounds > 0 ? active_sum / rounds : 0.0;
  stats.avg_modified_per_round =
      rounds > 0 ? static_cast<double>(modified_sum) / rounds : 0.0;

  std::vector<std::size_t> closest(messages.size(), 0);  // 0 = never covered
  for (std::size_t i = 0; i < messages.size(); ++i) {
    for (const std::size_t victim : messages[i].direct_covers) {
      const std::size_t distance = i - victim;
      if (closest[victim] == 0 || distance < closest[victim]) {
        closest[victim] = distance;
      }
    }
  }
  std::size_t never = 0;
  std::map<std::size_t, std::size_t> histogram;
  for (const std::size_t d : closest) {
    if (d == 0) {
      ++never;
    } else {
      ++histogram[d];
    }
  }
  stats.never_obsolete_share =
      messages.empty()
          ? 0.0
          : static_cast<double>(never) / static_cast<double>(messages.size());
  const std::size_t obsoleted = messages.size() - never;
  for (const auto& [d, count] : histogram) {
    stats.distance_histogram[d] =
        obsoleted > 0 ? static_cast<double>(count) / obsoleted : 0.0;
  }
  for (const auto& [item, n] : rounds_modified) {
    stats.modification_frequency[item] =
        rounds > 0 ? static_cast<double>(n) / rounds : 0.0;
  }

  return Trace(std::move(messages), std::move(stats));
}

}  // namespace svs::workload
