// Synthetic multi-player-game update stream (the paper's Quake trace
// substitute — see DESIGN.md §4).
//
// The paper instruments a real Quake server; we cannot, so this generator
// produces a round-based stream with the same structure and calibrated to
// the same published statistics:
//
//   * the server computes ~30 rounds/s (§5.2);
//   * each round updates few items (paper average: 1.39) out of a larger
//     active set (paper average: 42.33);
//   * item popularity is highly skewed — Fig 3(a) shows the top item
//     modified in ~22% of rounds with a long tail (a Zipf distribution over
//     the persistent items reproduces this);
//   * transient items (bullets/projectiles) are created, updated for a few
//     rounds and destroyed; creations and destructions are never obsolete;
//   * each round's operations form one composite (multi-item) update whose
//     last message carries the commit (§4.1);
//   * with these ingredients a large share of messages never becomes
//     obsolete (paper: 41.88%) — creations, destructions, multi-item commit
//     carriers (protected by the super-set rule), final values — and
//     related messages sit close together in the stream (Fig 3(b)).
#pragma once

#include <cstdint>

#include "obs/batch.hpp"
#include "sim/random.hpp"
#include "workload/trace.hpp"

namespace svs::workload {

class GameTraceGenerator {
 public:
  struct Config {
    std::uint64_t seed = 1;

    // -- timing ----------------------------------------------------------
    double rounds_per_second = 30.0;
    /// Uniform jitter applied to each round interval (fraction of it).
    double round_jitter = 0.25;

    // -- persistent world ------------------------------------------------
    // Defaults are calibrated (see tests/workload_test.cpp bands) to land
    // on the paper's published statistics: ~42 items active, ~1.4 modified
    // per round, ~42% of messages never obsolete, related messages mostly
    // within 10 positions of each other.
    std::size_t persistent_items = 41;
    double zipf_exponent = 1.0;
    /// A round has no persistent updates with this probability.
    double idle_round_probability = 0.42;
    /// Otherwise 1 + geometric(update_continue) items are updated.
    double update_continue = 0.25;
    /// Occasionally a burst touches many items at once (fights).
    double burst_probability = 0.04;
    std::size_t burst_extra_max = 6;

    // -- transients (bullets) ---------------------------------------------
    /// Expected spawns per round (Bernoulli per potential spawn).
    double transient_spawn_rate = 0.30;
    /// Lifetime in rounds: 1 + geometric(1/life) updates before destroy.
    double transient_life_rounds = 2.0;

    // -- representation ----------------------------------------------------
    obs::BatchComposer::Config batch{obs::AnnotationKind::k_enum, 32, 0};
  };

  explicit GameTraceGenerator(Config config);

  /// Generates a trace of `rounds` rounds (the paper records 11 696).
  [[nodiscard]] Trace generate(std::size_t rounds);

 private:
  Config config_;
};

}  // namespace svs::workload
