#include "workload/consumer.hpp"

#include "util/contracts.hpp"

namespace svs::workload {

InstantConsumer::InstantConsumer(sim::Simulator& simulator, core::Node& node)
    : sim_(simulator), node_(node) {}

void InstantConsumer::start() {
  node_.set_deliverable_callback([this] { drain(); });
  drain();
}

void InstantConsumer::drain() {
  while (auto d = node_.try_deliver()) {
    ++consumed_;
    if (sink_) sink_(*d);
  }
}

RateConsumer::RateConsumer(sim::Simulator& simulator, core::Node& node,
                           double msgs_per_second)
    : sim_(simulator), node_(node), rate_(msgs_per_second) {
  SVS_REQUIRE(msgs_per_second > 0, "consumption rate must be positive");
}

void RateConsumer::start() {
  node_.set_deliverable_callback([this] {
    if (stopped_ || pending_.valid() || !waiting_) return;
    waiting_ = false;
    take_one();
  });
  take_one();
}

void RateConsumer::take_one() {
  if (stopped_) return;
  const auto d = node_.try_deliver();
  if (!d.has_value()) {
    waiting_ = true;  // re-armed by the deliverable callback
    return;
  }
  ++consumed_;
  if (sink_) sink_(*d);
  // Busy for the per-message service time, then take the next one.
  pending_ = sim_.schedule_after(sim::Duration::seconds(1.0 / rate_), [this] {
    pending_ = sim::EventId{};
    take_one();
  });
}

void RateConsumer::stop() {
  stopped_ = true;
  if (pending_.valid()) {
    sim_.cancel(pending_);
    pending_ = sim::EventId{};
  }
}

void RateConsumer::resume() {
  SVS_REQUIRE(stopped_, "resume() without stop()");
  stopped_ = false;
  waiting_ = false;
  take_one();
}

void RateConsumer::set_rate(double msgs_per_second) {
  SVS_REQUIRE(msgs_per_second > 0, "consumption rate must be positive");
  rate_ = msgs_per_second;
}

}  // namespace svs::workload
