#include "workload/producer.hpp"

#include <utility>

#include "util/contracts.hpp"

namespace svs::workload {

TraceProducer::TraceProducer(sim::Simulator& simulator, core::Node& node,
                             const Trace& trace)
    : sim_(simulator), node_(node), trace_(trace) {}

void TraceProducer::start(std::function<void()> on_done) {
  SVS_REQUIRE(!started_flag_, "producer already started");
  started_flag_ = true;
  on_done_ = std::move(on_done);
  started_ = sim_.now();
  node_.set_unblocked_callback([this] { pump(); });
  if (!trace_.messages().empty()) {
    const sim::TimePoint first = started_ + (trace_.messages()[0].at -
                                             sim::TimePoint::origin());
    sim_.schedule_at(first, [this] { pump(); });
  } else {
    finished_ = sim_.now();
    if (on_done_) on_done_();
  }
}

void TraceProducer::pump() {
  while (next_ < trace_.messages().size()) {
    const TraceMessage& tm = trace_.messages()[next_];
    const sim::TimePoint due = started_ + (tm.at - sim::TimePoint::origin());
    if (sim_.now() < due) {
      // Not yet time for this message; try again at its deadline (unless a
      // wakeup is already pending — unblocked callbacks re-enter pump()).
      if (!wakeup_.valid()) {
        wakeup_ = sim_.schedule_at(due, [this] {
          wakeup_ = sim::EventId{};
          pump();
        });
      }
      return;
    }
    const auto seq = node_.multicast(tm.payload, tm.annotation);
    if (!seq.has_value()) {
      // Flow-controlled: start (or continue) accounting blocked time.
      if (!blocked_since_.has_value()) {
        blocked_since_ = sim_.now();
        if (policy_ != nullptr) policy_->producer_blocked();
      }
      return;  // the unblocked callback re-enters pump()
    }
    SVS_ASSERT(*seq == tm.seq,
               "trace expects to be the node's only multicast source");
    if (blocked_since_.has_value()) {
      blocked_total_ += sim_.now() - *blocked_since_;
      blocked_since_.reset();
      if (policy_ != nullptr) policy_->producer_unblocked();
    }
    ++next_;
  }
  if (finished_ == sim::TimePoint{} && next_ >= trace_.messages().size()) {
    finished_ = sim_.now();
    if (on_done_) on_done_();
  }
}

double TraceProducer::idle_fraction() const {
  const sim::TimePoint end =
      done() && finished_ != sim::TimePoint{} ? finished_ : sim_.now();
  const auto elapsed = end - started_;
  if (elapsed <= sim::Duration::zero()) return 0.0;
  auto blocked = blocked_total_;
  if (blocked_since_.has_value()) blocked += end - *blocked_since_;
  return static_cast<double>(blocked.as_micros()) /
         static_cast<double>(elapsed.as_micros());
}

}  // namespace svs::workload
