// Application payload: one operation on one game item (§5.2).
//
// The replicated server state is "a relatively small collection of data
// items"; each round updates a few of them.  Create/destroy must be
// delivered reliably; updates convey newer values and become obsolete.
// The last operation of a round carries the commit flag terminating the
// round's batch (§4.1: "the role of the commit message can be performed by
// the last message in each update").
#pragma once

#include <cstdint>

#include "core/message.hpp"
#include "util/bytes.hpp"

namespace svs::workload {

enum class OpKind : std::uint8_t { create, update, destroy };

using ItemId = std::uint64_t;

class ItemOp final : public core::Payload {
 public:
  /// Payload::payload_kind value claimed by ItemOp.
  static constexpr std::uint32_t kPayloadKind = 1;

  ItemOp(OpKind op, ItemId item, std::uint64_t value, std::uint64_t round,
         bool commit)
      : op_(op), item_(item), value_(value), round_(round), commit_(commit) {}

  [[nodiscard]] OpKind op() const { return op_; }
  [[nodiscard]] ItemId item() const { return item_; }
  /// New item state (stands in for position/velocity/attributes).
  [[nodiscard]] std::uint64_t value() const { return value_; }
  [[nodiscard]] std::uint64_t round() const { return round_; }
  /// True if this operation terminates its round's batch.
  [[nodiscard]] bool commit() const { return commit_; }

  [[nodiscard]] std::size_t wire_size() const override {
    // Exactly what the registered codec writes: op/commit byte + item and
    // round varints + 8 bytes of fixed-width state (the compact fixed-point
    // item value a game server would ship).
    return 1 + util::varint_size(item_) + util::varint_size(round_) + 8;
  }

  [[nodiscard]] std::uint32_t payload_kind() const override {
    return kPayloadKind;
  }

 private:
  OpKind op_;
  ItemId item_;
  std::uint64_t value_;
  std::uint64_t round_;
  bool commit_;
};

}  // namespace svs::workload
