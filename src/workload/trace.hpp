// A generated message trace plus its obsolescence ground truth and the
// statistics the paper reports about the recorded Quake session (§5.2).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "obs/annotation.hpp"
#include "obs/relation.hpp"
#include "sim/time.hpp"
#include "workload/item_op.hpp"

namespace svs::workload {

/// One planned multicast of the trace.
struct TraceMessage {
  sim::TimePoint at;  // when the producer wants to inject it
  std::shared_ptr<const ItemOp> payload;
  obs::Annotation annotation;  // as carried on the wire (may clip at k)
  std::uint64_t seq = 0;       // sequence number the protocol will assign
  /// Indices (into Trace::messages) of earlier messages this one *truly*
  /// supersedes, directly (unclipped ground truth).
  std::vector<std::size_t> direct_covers;
};

/// The §5.2 measurements, computed over a generated trace so benches can
/// print them next to the paper's numbers.
struct TraceStats {
  std::size_t rounds = 0;
  std::size_t messages = 0;
  double duration_seconds = 0.0;
  double avg_rate_msgs_per_sec = 0.0;      // the Fig 5(a) horizontal line
  double avg_active_items = 0.0;           // paper: 42.33
  double avg_modified_per_round = 0.0;     // paper: 1.39
  double never_obsolete_share = 0.0;       // paper: 0.4188
  /// distance -> share of *obsoleted* messages whose closest related
  /// successor is that many messages ahead (Fig 3(b)).
  std::map<std::size_t, double> distance_histogram;
  /// item -> fraction of rounds in which it was modified (Fig 3(a) after
  /// sorting descending).
  std::map<ItemId, double> modification_frequency;
};

class Trace {
 public:
  Trace(std::vector<TraceMessage> messages, TraceStats stats)
      : messages_(std::move(messages)), stats_(std::move(stats)) {}

  [[nodiscard]] const std::vector<TraceMessage>& messages() const {
    return messages_;
  }
  [[nodiscard]] const TraceStats& stats() const { return stats_; }

  /// Ground-truth obsolescence relation (transitive closure of the direct
  /// edges, not clipped by any representation horizon).  Built lazily and
  /// cached; intended for specification checking on test-sized traces.
  [[nodiscard]] obs::RelationPtr ground_truth() const;

 private:
  std::vector<TraceMessage> messages_;
  TraceStats stats_;
  mutable obs::RelationPtr ground_truth_;
};

}  // namespace svs::workload
