// Consumers model the application side of §5.3's simulation: "all processes
// except the slow one consume messages instantly; the time it takes for the
// slower process to consume each message can be varied".
#pragma once

#include <cstdint>
#include <functional>

#include "core/node.hpp"
#include "sim/simulator.hpp"

namespace svs::workload {

/// Drains the node's queue as soon as anything becomes deliverable.
class InstantConsumer {
 public:
  InstantConsumer(sim::Simulator& simulator, core::Node& node);

  void start();

  /// Invoked for every delivery (application hook).
  void set_sink(std::function<void(const core::Delivery&)> sink) {
    sink_ = std::move(sink);
  }

  [[nodiscard]] std::uint64_t consumed() const { return consumed_; }

 private:
  void drain();

  sim::Simulator& sim_;
  core::Node& node_;
  std::function<void(const core::Delivery&)> sink_;
  std::uint64_t consumed_ = 0;
};

/// Consumes at a fixed rate: after taking a delivery it is busy for
/// 1/rate seconds.  stop()/resume() model a full performance perturbation
/// (the receiver that "completely stops to process messages" of Fig 5(b)).
class RateConsumer {
 public:
  RateConsumer(sim::Simulator& simulator, core::Node& node,
               double msgs_per_second);

  void start();
  void stop();
  void resume();
  /// Changes the consumption rate from now on.
  void set_rate(double msgs_per_second);

  void set_sink(std::function<void(const core::Delivery&)> sink) {
    sink_ = std::move(sink);
  }

  [[nodiscard]] std::uint64_t consumed() const { return consumed_; }
  [[nodiscard]] bool stopped() const { return stopped_; }

 private:
  void take_one();

  sim::Simulator& sim_;
  core::Node& node_;
  double rate_;
  bool stopped_ = false;
  bool waiting_ = false;  // queue was empty; deliverable callback re-arms
  sim::EventId pending_{};
  std::function<void(const core::Delivery&)> sink_;
  std::uint64_t consumed_ = 0;
};

}  // namespace svs::workload
