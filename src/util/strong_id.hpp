// Strongly typed integral identifiers (ProcessId, ViewId, ...).
//
// Following C++ Core Guidelines I.4 ("make interfaces precisely and strongly
// typed"): a ProcessId cannot be accidentally passed where a ViewId is
// expected, yet both stay trivially copyable and hashable.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <ostream>

namespace svs::util {

template <typename Tag, typename Rep = std::uint64_t>
class StrongId {
 public:
  using rep_type = Rep;

  constexpr StrongId() = default;
  constexpr explicit StrongId(Rep value) : value_(value) {}

  [[nodiscard]] constexpr Rep value() const { return value_; }

  friend constexpr auto operator<=>(StrongId, StrongId) = default;

  /// Successor id; used for e.g. the "next view" (view ids are sequential).
  [[nodiscard]] constexpr StrongId next() const { return StrongId(value_ + 1); }

  friend std::ostream& operator<<(std::ostream& os, StrongId id) {
    return os << Tag::prefix() << id.value_;
  }

 private:
  Rep value_{0};
};

}  // namespace svs::util

/// Hash support so strong ids can key unordered containers.
template <typename Tag, typename Rep>
struct std::hash<svs::util::StrongId<Tag, Rep>> {
  std::size_t operator()(svs::util::StrongId<Tag, Rep> id) const noexcept {
    return std::hash<Rep>{}(id.value());
  }
};
