// Pooled hot-path allocator (DESIGN.md §8).
//
// The protocol's steady state allocates the same handful of shapes over and
// over: a DataMessage (+ shared_ptr control block) per multicast, a decoded
// message per wire crossing, list/set nodes per delivery-queue insert.  The
// general-purpose allocator pays locking, size-class search and cache misses
// for objects whose lifetime is a few microseconds; this pool recycles them
// from per-thread free lists instead.
//
// Shape:
//
//   * one Pool per thread (thread_local handle; the Pool object itself lives
//     in a process-wide registry and is leased to threads, so blocks owned
//     by a pool stay valid after its thread exits and short-lived wire
//     threads reuse warmed pools instead of starting cold);
//   * blocks are bucketed into 16-byte size classes up to kMaxPooledBytes;
//     larger requests fall through to operator new and are counted as
//     misses (never pooled: the tail is rare and would pin memory);
//   * every block carries a header naming its owning pool and class.  Frees
//     from the owning thread push onto that class's local free list with no
//     synchronization; frees from any other thread (a message decoded on a
//     wire thread and released on the protocol thread) push onto the
//     owner's mutex-protected remote list, which the owner drains in bulk
//     the next time the local list runs dry.
//
// Counters (hits / misses / bytes_recycled) are single-writer: only the
// owning thread's allocate() path touches them, with relaxed atomics so
// metrics::Stats::snapshot() can aggregate across threads race-free.  A hit
// means a free-listed block was reused; bytes_recycled accumulates the
// byte size of those reuses.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <utility>

namespace svs::util {

/// Allocation counters of one pool (or an aggregate over all pools).
struct PoolStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t bytes_recycled = 0;

  PoolStats& operator+=(const PoolStats& o) {
    hits += o.hits;
    misses += o.misses;
    bytes_recycled += o.bytes_recycled;
    return *this;
  }
};

/// Per-thread free-list pool.  Obtain the calling thread's pool with
/// Pool::local(); do not construct directly (the registry owns them).
class Pool {
 public:
  /// Largest request served from the free lists; bigger ones go straight to
  /// operator new.  Covers every hot shape (messages + control block,
  /// list/map/set nodes, small vectors) with room to spare.
  static constexpr std::size_t kMaxPooledBytes = 1024;

  /// The calling thread's pool (leased from the registry on first use,
  /// returned — with its warmed free lists — when the thread exits).
  static Pool& local();

  /// Sum of the counters of every pool ever leased (live or parked).
  [[nodiscard]] static PoolStats aggregate();

  void* allocate(std::size_t bytes);
  void deallocate(void* p) noexcept;

  /// This pool's own counters (tests; cross-thread aggregation goes
  /// through aggregate()).
  [[nodiscard]] PoolStats stats() const;

  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

 private:
  friend class PoolRegistry;
  Pool();
  ~Pool();

  struct Header;
  struct ClassList;

  /// Steals the whole remote-free list of `cls`; returns its head.
  Header* drain_remote(std::size_t cls);
  void bump(std::atomic<std::uint64_t>& counter, std::uint64_t delta);

  struct Impl;
  Impl* impl_;
};

/// std::allocator-compatible adapter over the calling thread's Pool.
/// Stateless: allocation always goes through Pool::local(), deallocation is
/// routed to the owning pool by the block header, so containers and shared
/// pointers may migrate between threads freely.
template <typename T>
class PoolAllocator {
 public:
  using value_type = T;

  PoolAllocator() noexcept = default;
  template <typename U>
  PoolAllocator(const PoolAllocator<U>&) noexcept {}  // NOLINT(*-explicit*)

  [[nodiscard]] T* allocate(std::size_t n) {
    return static_cast<T*>(Pool::local().allocate(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t) noexcept {
    Pool::local().deallocate(p);
  }

  friend bool operator==(const PoolAllocator&, const PoolAllocator&) {
    return true;
  }
};

/// make_shared with pooled storage: object and control block live in one
/// pooled allocation, recycled when the last reference drops (on whatever
/// thread that happens).
template <typename T, typename... Args>
[[nodiscard]] std::shared_ptr<T> pool_shared(Args&&... args) {
  return std::allocate_shared<T>(PoolAllocator<T>{},
                                 std::forward<Args>(args)...);
}

}  // namespace svs::util
