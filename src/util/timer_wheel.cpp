#include "util/timer_wheel.hpp"

#include <algorithm>
#include <bit>

#include "util/contracts.hpp"

namespace svs::util {

namespace {

constexpr std::uint64_t kSlotMask = TimerWheel::kSlots - 1;

std::uint64_t index_of(TimerWheel::TimerId id) { return id & 0xFFFF'FFFFull; }
std::uint32_t generation_of(TimerWheel::TimerId id) {
  return static_cast<std::uint32_t>(id >> 32);
}
TimerWheel::TimerId make_id(std::uint64_t index, std::uint32_t generation) {
  return (static_cast<std::uint64_t>(generation) << 32) | index;
}

}  // namespace

TimerWheel::TimerWheel(std::uint64_t tick_us) : tick_us_(tick_us) {
  SVS_REQUIRE(tick_us > 0, "timer wheel tick must be positive");
  for (auto& level : heads_) {
    for (auto& head : level) head = kNil;
  }
  for (auto& level : occupied_) {
    for (auto& word : level) word = 0;
  }
}

std::int32_t TimerWheel::alloc_entry() {
  if (!free_.empty()) {
    const std::int32_t idx = free_.back();
    free_.pop_back();
    return idx;
  }
  SVS_ASSERT(entries_.size() < 0x8000'0000ull, "timer wheel entry overflow");
  entries_.emplace_back();
  entries_.back().generation = 1;  // id 0 (gen 0, index 0) is never live
  return static_cast<std::int32_t>(entries_.size() - 1);
}

void TimerWheel::free_entry(std::int32_t idx) {
  Entry& e = entries_[static_cast<std::size_t>(idx)];
  if (e.level >= 0) unlink(idx);
  e.live = false;
  ++e.generation;  // invalidate every outstanding handle to this index
  free_.push_back(idx);
  --size_;
}

void TimerWheel::link(std::int32_t idx, int level, int slot) {
  Entry& e = entries_[static_cast<std::size_t>(idx)];
  e.level = static_cast<std::int16_t>(level);
  e.slot = static_cast<std::int16_t>(slot);
  e.prev = kNil;
  e.next = heads_[level][slot];
  if (e.next != kNil) entries_[static_cast<std::size_t>(e.next)].prev = idx;
  heads_[level][slot] = idx;
  occupied_[level][slot >> 6] |= 1ull << (slot & 63);
}

void TimerWheel::unlink(std::int32_t idx) {
  Entry& e = entries_[static_cast<std::size_t>(idx)];
  const int level = e.level;
  const int slot = e.slot;
  SVS_ASSERT(level >= 0, "unlinking a timer that is not in a slot");
  if (e.prev != kNil) {
    entries_[static_cast<std::size_t>(e.prev)].next = e.next;
  } else {
    heads_[level][slot] = e.next;
  }
  if (e.next != kNil) entries_[static_cast<std::size_t>(e.next)].prev = e.prev;
  if (heads_[level][slot] == kNil) {
    occupied_[level][slot >> 6] &= ~(1ull << (slot & 63));
  }
  e.prev = e.next = kNil;
  e.level = e.slot = -1;
}

void TimerWheel::place(std::int32_t idx, std::uint64_t floor_tick) {
  Entry& e = entries_[static_cast<std::size_t>(idx)];
  // Never place behind the wheel's cursor: a past deadline fires at the
  // floor (the next unprocessed tick), preserving "due timers fire on the
  // next advance" without ever touching an already-processed slot.
  std::uint64_t placement = std::max(e.deadline_tick, floor_tick);
  const std::uint64_t delta = placement - cur_tick_;
  int level = 0;
  if (delta < kSlots) {
    level = 0;
  } else if (delta < (kSlots << kSlotBits)) {
    level = 1;
  } else if (delta < (kSlots << (2 * kSlotBits))) {
    level = 2;
  } else if (delta < (kSlots << (3 * kSlotBits))) {
    level = 3;
  } else {
    // Beyond the horizon: clamp into the top level's farthest slot and
    // re-resolve on cascade (deadline_tick keeps the true deadline).
    level = kLevels - 1;
    placement = cur_tick_ + (kSlots << (3 * kSlotBits)) - 1;
  }
  const int slot =
      static_cast<int>((placement >> (kSlotBits * level)) & kSlotMask);
  link(idx, level, slot);
}

const TimerWheel::Entry* TimerWheel::resolve(TimerId id) const {
  const std::uint64_t idx = index_of(id);
  if (idx >= entries_.size()) return nullptr;
  const Entry& e = entries_[idx];
  if (!e.live || e.generation != generation_of(id)) return nullptr;
  return &e;
}

TimerWheel::TimerId TimerWheel::arm(std::uint64_t deadline_us,
                                    std::uint64_t payload) {
  const std::int32_t idx = alloc_entry();
  Entry& e = entries_[static_cast<std::size_t>(idx)];
  // Round UP to a tick boundary so a timer never fires early.
  e.deadline_tick = deadline_us / tick_us_ +
                    static_cast<std::uint64_t>(deadline_us % tick_us_ != 0);
  e.payload = payload;
  e.arm_seq = ++arm_seq_;
  e.live = true;
  ++size_;
  // Arms from inside a fire callback go to the next tick: the current
  // tick's slot has already been extracted.
  place(idx, cur_tick_ + static_cast<std::uint64_t>(firing_));
  return make_id(static_cast<std::uint64_t>(idx), e.generation);
}

bool TimerWheel::cancel(TimerId id) {
  const Entry* e = resolve(id);
  if (e == nullptr) return false;
  free_entry(static_cast<std::int32_t>(index_of(id)));
  return true;
}

bool TimerWheel::pending(TimerId id) const { return resolve(id) != nullptr; }

namespace {

/// Smallest set bit >= `from` in a 256-bit map, or -1.
int next_bit(const std::uint64_t* words, int from) {
  for (int w = from >> 6; w < 4; ++w) {
    std::uint64_t bits = words[w];
    if (w == (from >> 6)) bits &= ~0ull << (from & 63);
    if (bits != 0) return w * 64 + std::countr_zero(bits);
  }
  return -1;
}

}  // namespace

std::uint64_t TimerWheel::next_occupied_tick() const {
  std::uint64_t best = kNever;
  for (int level = 0; level < kLevels; ++level) {
    const int shift = kSlotBits * level;
    const int cur_digit = static_cast<int>((cur_tick_ >> shift) & kSlotMask);
    const std::uint64_t base = cur_tick_ >> (shift + kSlotBits);
    int slot = next_bit(occupied_[level], cur_digit);
    std::uint64_t t;
    if (slot >= 0) {
      t = ((base << kSlotBits) | static_cast<std::uint64_t>(slot)) << shift;
      // A level>=1 slot equal to the cursor's digit starts a window the
      // cursor is already inside; its entries cascade at the cursor.
      if (t < cur_tick_) t = cur_tick_;
    } else {
      slot = next_bit(occupied_[level], 0);
      if (slot < 0) continue;
      t = (((base + 1) << kSlotBits) | static_cast<std::uint64_t>(slot))
          << shift;
    }
    best = std::min(best, t);
  }
  return best;
}

std::uint64_t TimerWheel::next_deadline_us() const {
  const std::uint64_t t = next_occupied_tick();
  return t == kNever ? kNever : t * tick_us_;
}

std::size_t TimerWheel::advance(std::uint64_t now_us,
                                FunctionRef<void(std::uint64_t)> fire) {
  const std::uint64_t target = now_us / tick_us_;
  std::size_t fired = 0;
  while (cur_tick_ <= target) {
    const std::uint64_t tick = next_occupied_tick();
    if (tick == kNever || tick > target) {
      cur_tick_ = target + 1;
      break;
    }
    cur_tick_ = tick;
    // Cascade every level whose window starts at this tick, highest first,
    // so an entry can trickle from level 3 all the way into this tick's
    // level-0 slot in one pass.
    for (int level = kLevels - 1; level >= 1; --level) {
      const int shift = kSlotBits * level;
      if ((tick & ((1ull << shift) - 1)) != 0) continue;
      const int slot = static_cast<int>((tick >> shift) & kSlotMask);
      while (heads_[level][slot] != kNil) {
        const std::int32_t idx = heads_[level][slot];
        unlink(idx);
        ++cascades_;
        place(idx, tick);
      }
    }
    // Extract the due slot whole (every entry in it is due: placements are
    // always >= the cursor, so a level-0 slot never mixes windows), then
    // fire in arm order — deterministic regardless of cascade history.
    const int slot0 = static_cast<int>(tick & kSlotMask);
    scratch_.clear();
    while (heads_[0][slot0] != kNil) {
      const std::int32_t idx = heads_[0][slot0];
      unlink(idx);
      scratch_.emplace_back(idx,
                            entries_[static_cast<std::size_t>(idx)].arm_seq);
    }
    std::sort(scratch_.begin(), scratch_.end(),
              [](const auto& a, const auto& b) { return a.second < b.second; });
    firing_ = true;
    for (const auto& [idx, seq] : scratch_) {
      Entry& e = entries_[static_cast<std::size_t>(idx)];
      // Skip entries cancelled by an earlier callback this tick — including
      // the index-reuse case, which a fresh arm_seq unmasks.
      if (!e.live || e.arm_seq != seq) continue;
      const std::uint64_t payload = e.payload;
      free_entry(idx);  // handle goes stale before the callback runs
      fire(payload);
      ++fired;
    }
    firing_ = false;
    cur_tick_ = tick + 1;
  }
  return fired;
}

}  // namespace svs::util
