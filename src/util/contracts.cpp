#include "util/contracts.hpp"

#include <sstream>

namespace svs::util {
namespace {

std::string render(const char* kind, const char* expr, const char* file,
                   int line, const std::string& msg) {
  std::ostringstream os;
  os << kind << ": " << msg << " [" << expr << "] at " << file << ":" << line;
  return os.str();
}

}  // namespace

void throw_contract_violation(const char* expr, const char* file, int line,
                              const std::string& msg) {
  throw ContractViolation(render("precondition violated", expr, file, line, msg));
}

void throw_logic_violation(const char* expr, const char* file, int line,
                           const std::string& msg) {
  throw LogicViolation(render("invariant violated", expr, file, line, msg));
}

}  // namespace svs::util
