// Hierarchical timer wheel: O(1) arm/cancel, amortized O(1) advance.
//
// The UDP transport schedules three kinds of deadlines per link —
// retransmission, batch flush, zero-window probe — and before this wheel
// existed every pump scanned every ReliableLink for its next_deadline().
// The wheel turns that O(links) sweep into a peek: next_deadline_us() reads
// per-level occupancy bitmaps, and advance() visits only occupied slots.
//
// Layout: 4 levels x 256 slots over a configurable tick (default 1µs).
// A timer `delta` ticks in the future lives at level L where
// delta < 256^(L+1); level 0 resolves single ticks, level 3 spans ~71.6
// minutes, and deadlines beyond the horizon clamp into the top level and
// re-resolve on cascade (entries keep their true deadline).
//
// Determinism: within one tick, timers fire in arm order, always — firing
// extracts the slot into a scratch vector and stable-sorts by a monotonic
// arm sequence number, so the order is independent of which cascade path an
// entry took to reach the slot.  Deadlines round UP to a tick boundary, so
// a timer never fires before its deadline.  Timers armed from inside a fire
// callback with an already-due deadline land in the next tick (and still
// fire within the same advance() when time allows).
#pragma once

#include <cstdint>
#include <vector>

#include "util/function_ref.hpp"

namespace svs::util {

class TimerWheel {
 public:
  /// Opaque handle; 0 is never a live timer.  Stays invalid (cancel/pending
  /// return false) after the timer fires, is cancelled, or the slot index is
  /// reused — a stale handle can never touch a newer timer.
  using TimerId = std::uint64_t;
  static constexpr TimerId kInvalidTimer = 0;

  static constexpr int kLevels = 4;
  static constexpr int kSlotBits = 8;
  static constexpr std::uint64_t kSlots = 1ull << kSlotBits;

  explicit TimerWheel(std::uint64_t tick_us = 1);

  /// Schedules `payload` to fire at the first advance() whose `now_us` is
  /// >= `deadline_us`.  Past deadlines fire on the very next advance.
  TimerId arm(std::uint64_t deadline_us, std::uint64_t payload);

  /// Cancels a pending timer.  Returns false (and does nothing) when the
  /// handle is stale: already fired, already cancelled, or never armed.
  bool cancel(TimerId id);

  /// True while the timer is armed and has not fired or been cancelled.
  bool pending(TimerId id) const;

  /// Earliest instant any timer could fire, in µs (a lower bound: deadlines
  /// still parked in a high level report their window start and refine as
  /// they cascade — sleeping until this value and re-advancing converges).
  /// Returns kNever when no timer is armed.
  static constexpr std::uint64_t kNever = ~0ull;
  std::uint64_t next_deadline_us() const;

  /// Fires every timer with deadline <= now_us, in deterministic order
  /// (tick by tick; arm order within a tick).  Returns the fire count.
  std::size_t advance(std::uint64_t now_us, FunctionRef<void(std::uint64_t)> fire);

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::uint64_t tick_us() const { return tick_us_; }
  /// Total entries moved between levels by advance(); observable cost metric.
  std::uint64_t cascades() const { return cascades_; }

 private:
  static constexpr std::int32_t kNil = -1;

  struct Entry {
    std::uint64_t deadline_tick = 0;
    std::uint64_t payload = 0;
    std::uint64_t arm_seq = 0;
    std::uint32_t generation = 0;
    std::int32_t prev = kNil;
    std::int32_t next = kNil;
    std::int16_t level = -1;  // -1 when free or extracted
    std::int16_t slot = -1;
    bool live = false;
  };

  std::int32_t alloc_entry();
  void free_entry(std::int32_t idx);
  void link(std::int32_t idx, int level, int slot);
  void unlink(std::int32_t idx);
  void place(std::int32_t idx, std::uint64_t floor_tick);
  const Entry* resolve(TimerId id) const;

  /// Smallest occupied absolute tick >= cur_tick_, or kNever.  For level>=1
  /// entries this is their slot's window start (cascade point), not their
  /// final deadline.
  std::uint64_t next_occupied_tick() const;

  std::uint64_t tick_us_;
  std::uint64_t cur_tick_ = 0;   // next tick not yet processed
  std::uint64_t arm_seq_ = 0;
  std::uint64_t cascades_ = 0;
  std::size_t size_ = 0;
  bool firing_ = false;  // arms during a fire callback land in the next tick

  std::vector<Entry> entries_;
  std::vector<std::int32_t> free_;
  std::int32_t heads_[kLevels][kSlots];
  std::uint64_t occupied_[kLevels][kSlots / 64];

  // Scratch for one tick's extraction; member to avoid per-tick allocation.
  // Pairs of (entry index, arm_seq at extraction): a fire callback may
  // cancel a scratch-mate and arm a new timer that reuses the freed index,
  // so each entry re-validates by its unique arm_seq before firing.
  std::vector<std::pair<std::int32_t, std::uint64_t>> scratch_;
};

}  // namespace svs::util
