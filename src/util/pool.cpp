#include "util/pool.hpp"

#include <array>
#include <mutex>
#include <vector>

#include "util/contracts.hpp"

namespace svs::util {
namespace {

constexpr std::size_t kGranularity = 16;
constexpr std::size_t kClasses = Pool::kMaxPooledBytes / kGranularity;
constexpr std::uint32_t kLargeClass = ~std::uint32_t{0};

[[nodiscard]] constexpr std::size_t class_of(std::size_t bytes) {
  return (bytes + kGranularity - 1) / kGranularity - 1;
}

[[nodiscard]] constexpr std::size_t class_bytes(std::size_t cls) {
  return (cls + 1) * kGranularity;
}

}  // namespace

/// Precedes every block handed out.  16 bytes, so user data keeps
/// max_align_t alignment.  While a block sits on a free list the owner word
/// is reused as the list link (the owner is re-stamped on reuse: local
/// lists belong to exactly one pool, and remote lists drain into their
/// owner's local lists).
struct Pool::Header {
  union {
    Impl* owner;   // while allocated (nullptr: not pooled, operator new)
    Header* next;  // while free-listed
  };
  std::uint32_t cls;
  std::uint32_t reserved;
};

struct Pool::Impl {
  // Touched by the owning thread only.
  std::array<Header*, kClasses> local{};
  // Blocks freed by other threads; drained in bulk when a local list runs
  // dry.  The mutex is uncontended unless objects actually migrate.
  std::mutex remote_mutex;
  std::array<Header*, kClasses> remote{};
  // Single-writer (the owning thread's allocate()), relaxed-atomic so
  // aggregate() reads race-free.
  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> misses{0};
  std::atomic<std::uint64_t> bytes_recycled{0};
};

// ---------------------------------------------------------------------------
// registry: owns every Pool; leases them to threads
// ---------------------------------------------------------------------------

class PoolRegistry {
 public:
  /// Leaked singleton: pools (and the blocks they own) must outlive every
  /// thread-local handle and every late-destroyed object, so the registry
  /// is never torn down.
  static PoolRegistry& instance() {
    static auto* registry = new PoolRegistry;
    return *registry;
  }

  Pool* lease() {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (!parked_.empty()) {
      Pool* pool = parked_.back();
      parked_.pop_back();
      return pool;
    }
    all_.push_back(new Pool);  // immortal, like the registry itself
    return all_.back();
  }

  void release(Pool* pool) {
    const std::lock_guard<std::mutex> lock(mutex_);
    parked_.push_back(pool);
  }

  [[nodiscard]] PoolStats aggregate() {
    const std::lock_guard<std::mutex> lock(mutex_);
    PoolStats total;
    for (const Pool* pool : all_) total += pool->stats();
    return total;
  }

 private:
  std::mutex mutex_;
  std::vector<Pool*> all_;     // owned; never freed (blocks may outlive all)
  std::vector<Pool*> parked_;  // leased out and returned (thread exited)
};

namespace {

/// Thread-local lease: acquired on first use, returned (warm) on thread
/// exit so the next wire/shard thread starts with populated free lists.
struct LocalLease {
  Pool* pool = nullptr;
  ~LocalLease() {
    if (pool != nullptr) PoolRegistry::instance().release(pool);
  }
};

}  // namespace

Pool& Pool::local() {
  thread_local LocalLease lease;
  if (lease.pool == nullptr) lease.pool = PoolRegistry::instance().lease();
  return *lease.pool;
}

PoolStats Pool::aggregate() { return PoolRegistry::instance().aggregate(); }

// ---------------------------------------------------------------------------
// pool
// ---------------------------------------------------------------------------

Pool::Pool() : impl_(new Impl) {
  static_assert(sizeof(Header) == 16);
  static_assert(alignof(std::max_align_t) <= 16);
}

Pool::~Pool() {
  // Unreached in practice (the registry is leaked), but correct: return
  // every free-listed block to the system allocator.
  for (std::size_t cls = 0; cls < kClasses; ++cls) {
    for (Header* h = impl_->local[cls]; h != nullptr;) {
      Header* next = h->next;
      ::operator delete(h);
      h = next;
    }
    for (Header* h = impl_->remote[cls]; h != nullptr;) {
      Header* next = h->next;
      ::operator delete(h);
      h = next;
    }
  }
  delete impl_;
}

void Pool::bump(std::atomic<std::uint64_t>& counter, std::uint64_t delta) {
  // Single-writer counter: plain load+store (no RMW) keeps the hot path at
  // two ordinary moves while aggregate() reads stay race-free.
  counter.store(counter.load(std::memory_order_relaxed) + delta,
                std::memory_order_relaxed);
}

Pool::Header* Pool::drain_remote(std::size_t cls) {
  const std::lock_guard<std::mutex> lock(impl_->remote_mutex);
  Header* head = impl_->remote[cls];
  impl_->remote[cls] = nullptr;
  return head;
}

void* Pool::allocate(std::size_t bytes) {
  if (bytes == 0) bytes = 1;
  if (bytes > kMaxPooledBytes) {
    bump(impl_->misses, 1);
    auto* h = static_cast<Header*>(::operator new(sizeof(Header) + bytes));
    h->owner = nullptr;
    h->cls = kLargeClass;
    return h + 1;
  }
  const std::size_t cls = class_of(bytes);
  if (impl_->local[cls] == nullptr) impl_->local[cls] = drain_remote(cls);
  Header* h = impl_->local[cls];
  if (h != nullptr) {
    impl_->local[cls] = h->next;
    h->owner = impl_;
    SVS_ASSERT(h->cls == cls, "pooled block migrated size classes");
    bump(impl_->hits, 1);
    bump(impl_->bytes_recycled, class_bytes(cls));
    return h + 1;
  }
  bump(impl_->misses, 1);
  h = static_cast<Header*>(::operator new(sizeof(Header) + class_bytes(cls)));
  h->owner = impl_;
  h->cls = static_cast<std::uint32_t>(cls);
  h->reserved = 0;
  return h + 1;
}

void Pool::deallocate(void* p) noexcept {
  if (p == nullptr) return;
  auto* h = static_cast<Header*>(p) - 1;
  if (h->cls == kLargeClass) {
    ::operator delete(h);
    return;
  }
  Impl* owner = h->owner;
  const std::size_t cls = h->cls;
  if (owner == impl_) {
    h->next = impl_->local[cls];
    impl_->local[cls] = h;
    return;
  }
  // Freed by a thread that does not own the block's pool (e.g. a message
  // decoded on a wire thread, released on the protocol thread): hand it
  // back through the owner's remote list.
  const std::lock_guard<std::mutex> lock(owner->remote_mutex);
  h->next = owner->remote[cls];
  owner->remote[cls] = h;
}

PoolStats Pool::stats() const {
  PoolStats s;
  s.hits = impl_->hits.load(std::memory_order_relaxed);
  s.misses = impl_->misses.load(std::memory_order_relaxed);
  s.bytes_recycled = impl_->bytes_recycled.load(std::memory_order_relaxed);
  return s;
}

}  // namespace svs::util
