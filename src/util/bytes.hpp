// Minimal byte-oriented encoder/decoder.
//
// The simulator passes messages in memory, but §4.2 of the paper argues about
// the *wire compactness* of the obsolescence representations.  This codec is
// used to compute and test realistic encoded sizes (varint-based, like a
// typical GCS transport) and by the representation benchmarks.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace svs::util {

using Bytes = std::vector<std::uint8_t>;

/// Appends primitive values to a byte buffer (LEB128 varints for integers).
class ByteWriter {
 public:
  void u8(std::uint8_t v);
  void u32(std::uint32_t v);   // varint
  void u64(std::uint64_t v);   // varint
  void fixed64(std::uint64_t v);
  void bytes(const std::uint8_t* data, std::size_t n);
  void str(const std::string& s);

  [[nodiscard]] const Bytes& data() const { return buf_; }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }
  Bytes take() { return std::move(buf_); }

 private:
  Bytes buf_;
};

/// Reads values written by ByteWriter; throws ContractViolation on underrun
/// or malformed varints.  Non-owning: views either a Bytes buffer or a raw
/// span (the UDP receive path decodes straight out of its pooled datagram
/// rings without copying into a Bytes first).
class ByteReader {
 public:
  explicit ByteReader(const Bytes& buf) : data_(buf.data()), size_(buf.size()) {}
  explicit ByteReader(std::span<const std::uint8_t> buf)
      : data_(buf.data()), size_(buf.size()) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  std::uint64_t fixed64();
  std::string str();

  /// Skips `n` bytes; throws ContractViolation on underrun.
  void skip(std::size_t n);

  [[nodiscard]] bool exhausted() const { return pos_ == size_; }
  [[nodiscard]] std::size_t remaining() const { return size_ - pos_; }
  /// Bytes consumed so far (length-framed decoders verify consumption).
  [[nodiscard]] std::size_t position() const { return pos_; }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_{0};
};

/// Number of bytes a varint encoding of v occupies.
[[nodiscard]] std::size_t varint_size(std::uint64_t v);

}  // namespace svs::util
