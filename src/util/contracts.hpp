// Contract checking used across the library.
//
// Three categories, all always-on (the protocols implemented here are the
// product under test; silent corruption is worse than a small constant cost):
//
//   SVS_REQUIRE(cond, msg)   -- precondition on a public API; violation means
//                               the *caller* misused the interface.
//   SVS_ASSERT(cond, msg)    -- internal invariant; violation means a bug in
//                               this library.
//   SVS_UNREACHABLE(msg)     -- control flow that must never be reached.
//
// Violations throw (ContractViolation / LogicViolation) so tests can assert
// on them and long simulations fail loudly instead of diverging quietly.
#pragma once

#include <stdexcept>
#include <string>

namespace svs::util {

/// Thrown when a public-interface precondition is violated by the caller.
class ContractViolation : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Thrown when an internal invariant of the library does not hold.
class LogicViolation : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

[[noreturn]] void throw_contract_violation(const char* expr, const char* file,
                                           int line, const std::string& msg);
[[noreturn]] void throw_logic_violation(const char* expr, const char* file,
                                        int line, const std::string& msg);

}  // namespace svs::util

#define SVS_REQUIRE(cond, msg)                                             \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::svs::util::throw_contract_violation(#cond, __FILE__, __LINE__,     \
                                            (msg));                        \
    }                                                                      \
  } while (false)

#define SVS_ASSERT(cond, msg)                                              \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::svs::util::throw_logic_violation(#cond, __FILE__, __LINE__, (msg)); \
    }                                                                      \
  } while (false)

#define SVS_UNREACHABLE(msg) \
  ::svs::util::throw_logic_violation("unreachable", __FILE__, __LINE__, (msg))
