// Move-only callable wrapper with small-buffer storage.
//
// std::function heap-allocates for captures beyond two or three words and
// drags in copy machinery the simulator never uses.  Event actions are
// created and destroyed millions of times per run, so they get a leaner
// vehicle: callables whose state fits kInlineBytes live inside the wrapper
// itself (no allocation); larger ones fall back to a single heap cell.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace svs::util {

template <typename Signature, std::size_t InlineBytes = 48>
class InlineFunction;

template <typename R, typename... Args, std::size_t InlineBytes>
class InlineFunction<R(Args...), InlineBytes> {
 public:
  InlineFunction() noexcept = default;
  InlineFunction(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, InlineFunction> &&
             std::is_invocable_r_v<R, std::remove_cvref_t<F>&, Args...>)
  InlineFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    emplace(std::forward<F>(f));
  }

  InlineFunction(InlineFunction&& other) noexcept { take(std::move(other)); }

  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      reset();
      take(std::move(other));
    }
    return *this;
  }

  InlineFunction& operator=(std::nullptr_t) noexcept {
    reset();
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() { reset(); }

  [[nodiscard]] explicit operator bool() const noexcept {
    return vtable_ != nullptr;
  }

  friend bool operator==(const InlineFunction& f, std::nullptr_t) noexcept {
    return !static_cast<bool>(f);
  }

  R operator()(Args... args) {
    return vtable_->invoke(storage(), std::forward<Args>(args)...);
  }

 private:
  struct VTable {
    R (*invoke)(void* self, Args&&... args);
    // dst == nullptr: destroy the callable at src.  Otherwise move it from
    // src's storage into dst's (and destroy the moved-from remains).
    void (*relocate)(void* src, void* dst);
  };

  template <typename F>
  static constexpr bool fits_inline =
      sizeof(F) <= InlineBytes && alignof(F) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<F>;

  template <typename F>
  void emplace(F&& f) {
    using Fn = std::remove_cvref_t<F>;
    if constexpr (fits_inline<Fn>) {
      ::new (storage()) Fn(std::forward<F>(f));
      static constexpr VTable table{
          [](void* self, Args&&... args) -> R {
            return (*std::launder(static_cast<Fn*>(self)))(
                std::forward<Args>(args)...);
          },
          [](void* src, void* dst) {
            Fn* fn = std::launder(static_cast<Fn*>(src));
            if (dst != nullptr) ::new (dst) Fn(std::move(*fn));
            fn->~Fn();
          }};
      vtable_ = &table;
    } else {
      ::new (storage()) Fn*(new Fn(std::forward<F>(f)));
      static constexpr VTable table{
          [](void* self, Args&&... args) -> R {
            return (**std::launder(static_cast<Fn**>(self)))(
                std::forward<Args>(args)...);
          },
          [](void* src, void* dst) {
            Fn** cell = std::launder(static_cast<Fn**>(src));
            if (dst != nullptr) {
              ::new (dst) Fn*(*cell);
            } else {
              delete *cell;
            }
          }};
      vtable_ = &table;
    }
  }

  void take(InlineFunction&& other) noexcept {
    if (other.vtable_ == nullptr) return;
    other.vtable_->relocate(other.storage(), storage());
    vtable_ = std::exchange(other.vtable_, nullptr);
  }

  void reset() noexcept {
    if (vtable_ == nullptr) return;
    vtable_->relocate(storage(), nullptr);
    vtable_ = nullptr;
  }

  [[nodiscard]] void* storage() noexcept { return storage_; }

  const VTable* vtable_ = nullptr;
  alignas(std::max_align_t) unsigned char storage_[InlineBytes];
};

}  // namespace svs::util
