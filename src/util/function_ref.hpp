// Non-owning callable reference.
//
// The Transport interface (net/transport.hpp) exposes purge operations whose
// victim predicates must cross a virtual-call boundary.  A template parameter
// cannot (templates cannot be virtual) and std::function would allocate per
// call on the multicast fan-out path.  FunctionRef is two words — object
// pointer + trampoline — valid for the duration of the call, which is all a
// purge needs: the predicate never outlives the purge that runs it.
#pragma once

#include <memory>
#include <type_traits>
#include <utility>

namespace svs::util {

template <typename Signature>
class FunctionRef;

template <typename R, typename... Args>
class FunctionRef<R(Args...)> {
 public:
  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, FunctionRef> &&
             std::is_invocable_r_v<R, F&, Args...>)
  FunctionRef(F&& f) noexcept  // NOLINT(google-explicit-constructor)
      : obj_(const_cast<void*>(
            static_cast<const void*>(std::addressof(f)))),
        call_([](void* obj, Args... args) -> R {
          return (*static_cast<std::remove_reference_t<F>*>(obj))(
              std::forward<Args>(args)...);
        }) {}

  R operator()(Args... args) const {
    return call_(obj_, std::forward<Args>(args)...);
  }

 private:
  void* obj_;
  R (*call_)(void*, Args...);
};

}  // namespace svs::util
