#include "util/bytes.hpp"

#include "util/contracts.hpp"

namespace svs::util {

void ByteWriter::u8(std::uint8_t v) { buf_.push_back(v); }

void ByteWriter::u64(std::uint64_t v) {
  while (v >= 0x80) {
    buf_.push_back(static_cast<std::uint8_t>(v) | 0x80U);
    v >>= 7;
  }
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void ByteWriter::u32(std::uint32_t v) { u64(v); }

void ByteWriter::fixed64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void ByteWriter::bytes(const std::uint8_t* data, std::size_t n) {
  buf_.insert(buf_.end(), data, data + n);
}

void ByteWriter::str(const std::string& s) {
  u64(s.size());
  bytes(reinterpret_cast<const std::uint8_t*>(s.data()), s.size());
}

std::uint8_t ByteReader::u8() {
  SVS_REQUIRE(pos_ < size_, "byte buffer underrun");
  return data_[pos_++];
}

std::uint64_t ByteReader::u64() {
  std::uint64_t result = 0;
  int shift = 0;
  for (;;) {
    SVS_REQUIRE(pos_ < size_, "varint truncated");
    SVS_REQUIRE(shift < 64, "varint too long");
    const std::uint8_t byte = data_[pos_++];
    // The 10th byte holds bit 63 only: anything above would be silently
    // shifted out, so an over-long encoding must be rejected, not wrapped.
    SVS_REQUIRE(shift < 63 || byte <= 1, "varint overflows 64 bits");
    result |= static_cast<std::uint64_t>(byte & 0x7FU) << shift;
    if ((byte & 0x80U) == 0) return result;
    shift += 7;
  }
}

std::uint32_t ByteReader::u32() {
  const std::uint64_t v = u64();
  SVS_REQUIRE(v <= 0xFFFFFFFFULL, "u32 overflow");
  return static_cast<std::uint32_t>(v);
}

std::uint64_t ByteReader::fixed64() {
  SVS_REQUIRE(remaining() >= 8, "fixed64 truncated");
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * i);
  }
  return v;
}

void ByteReader::skip(std::size_t n) {
  SVS_REQUIRE(remaining() >= n, "skip past end of buffer");
  pos_ += n;
}

std::string ByteReader::str() {
  const std::uint64_t n = u64();
  SVS_REQUIRE(remaining() >= n, "string truncated");
  std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
  pos_ += n;
  return s;
}

std::size_t varint_size(std::uint64_t v) {
  std::size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

}  // namespace svs::util
