#include "consensus/mux.hpp"

#include <utility>

#include "util/contracts.hpp"

namespace svs::consensus {

Instance& Mux::open(net::Transport& network, fd::FailureDetector& detector,
                    InstanceId id, std::vector<net::ProcessId> participants,
                    Instance::DecideCallback on_decide) {
  SVS_REQUIRE(!instances_.contains(id), "instance already open");
  auto instance = std::make_unique<Instance>(network, detector, self_,
                                             std::move(participants), id,
                                             std::move(on_decide));
  Instance& ref = *instance;
  instances_.emplace(id, std::move(instance));

  const auto parked = buffered_.find(id);
  if (parked != buffered_.end()) {
    // Replay in arrival order; the instance is not yet proposed-to, so these
    // simply populate its tallies.
    for (const auto& b : parked->second) ref.on_message(b.from, *b.message);
    buffered_.erase(parked);
  }
  return ref;
}

bool Mux::on_message(net::ProcessId from, const net::MessagePtr& message) {
  if (message->type() != net::MessageType::consensus) return false;
  const auto consensus_message =
      std::static_pointer_cast<const ConsensusMessage>(message);

  const InstanceId id = consensus_message->instance();
  const auto it = instances_.find(id);
  if (it != instances_.end()) {
    it->second->on_message(from, *consensus_message);
  } else {
    buffered_[id].push_back(Buffered{from, consensus_message});
  }
  return true;
}

Instance* Mux::find(InstanceId id) {
  const auto it = instances_.find(id);
  return it == instances_.end() ? nullptr : it->second.get();
}

}  // namespace svs::consensus
