// Consensus values.
//
// §3.1: "A consensus protocol is assumed to be available and modeled as a
// procedure which takes as an input parameter a proposed value and returns
// a decided value."  The protocol never inspects values, so they are passed
// as immutable refcounted blobs; callers downcast to their concrete type
// (the view-change protocol proposes a (next-view, pred-view) pair, tests
// propose small integers).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>

namespace svs::consensus {

/// Base for anything a protocol wants to agree on.
class ValueBase {
 public:
  ValueBase() = default;
  ValueBase(const ValueBase&) = delete;
  ValueBase& operator=(const ValueBase&) = delete;
  virtual ~ValueBase() = default;

  /// Exact encoded size of the value body; the registered value codec
  /// (net/codec.hpp) asserts the equality at every encode.  Kind-0 values
  /// are encoded as `wire_size()` filler bytes.
  [[nodiscard]] virtual std::size_t wire_size() const = 0;

  /// Wire-decode tag, mirroring core::Payload::payload_kind.  0 is the
  /// opaque fallback (size-preserving, not interpretable after a round
  /// trip); protocols claim small positive values and register a codec.
  [[nodiscard]] virtual std::uint32_t value_kind() const { return 0; }
};

using ValuePtr = std::shared_ptr<const ValueBase>;

/// Size-preserving stand-in produced when a kind-0 value is decoded from
/// the wire (cf. core::OpaquePayload).
class OpaqueValue final : public ValueBase {
 public:
  explicit OpaqueValue(std::size_t encoded_size) : size_(encoded_size) {}
  [[nodiscard]] std::size_t wire_size() const override { return size_; }

 private:
  std::size_t size_;
};

}  // namespace svs::consensus
