// Consensus values.
//
// §3.1: "A consensus protocol is assumed to be available and modeled as a
// procedure which takes as an input parameter a proposed value and returns
// a decided value."  The protocol never inspects values, so they are passed
// as immutable refcounted blobs; callers downcast to their concrete type
// (the view-change protocol proposes a (next-view, pred-view) pair, tests
// propose small integers).
#pragma once

#include <cstddef>
#include <memory>

namespace svs::consensus {

/// Base for anything a protocol wants to agree on.
class ValueBase {
 public:
  ValueBase() = default;
  ValueBase(const ValueBase&) = delete;
  ValueBase& operator=(const ValueBase&) = delete;
  virtual ~ValueBase() = default;

  /// Estimated encoded size; consensus messages account for it.
  [[nodiscard]] virtual std::size_t wire_size() const = 0;
};

using ValuePtr = std::shared_ptr<const ValueBase>;

}  // namespace svs::consensus
