// Multiplexes consensus instances for one process and buffers early traffic.
//
// A process opens an instance when it is ready to propose (Figure 1's t7);
// other group members may already have proposed and their messages may
// arrive first.  The Mux parks such messages until the local instance is
// opened, then replays them in arrival order.
#pragma once

#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "consensus/instance.hpp"

namespace svs::consensus {

class Mux {
 public:
  explicit Mux(net::ProcessId self) : self_(self) {}

  /// Creates (and retains forever — instances are tiny and runs open few)
  /// the instance and replays any buffered messages for it.
  Instance& open(net::Transport& network, fd::FailureDetector& detector,
                 InstanceId id, std::vector<net::ProcessId> participants,
                 Instance::DecideCallback on_decide);

  /// Routes a network message if it is consensus traffic.
  /// Returns true when consumed.
  bool on_message(net::ProcessId from, const net::MessagePtr& message);

  [[nodiscard]] Instance* find(InstanceId id);

 private:
  struct Buffered {
    net::ProcessId from;
    std::shared_ptr<const ConsensusMessage> message;
  };

  net::ProcessId self_;
  std::unordered_map<InstanceId, std::unique_ptr<Instance>> instances_;
  std::unordered_map<InstanceId, std::deque<Buffered>> buffered_;
};

}  // namespace svs::consensus
