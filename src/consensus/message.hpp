// Wire messages of the Chandra-Toueg consensus protocol.
#pragma once

#include <cstdint>

#include "consensus/value.hpp"
#include "net/message.hpp"
#include "util/bytes.hpp"
#include "util/strong_id.hpp"

namespace svs::consensus {

struct InstanceIdTag {
  static constexpr const char* prefix() { return "c"; }
};

/// One consensus instance per decision (the view-change protocol uses the
/// current view's id as the instance id).
using InstanceId = util::StrongId<InstanceIdTag, std::uint64_t>;

using Round = std::uint32_t;

enum class Phase : std::uint8_t {
  estimate,  // participant -> coordinator: current estimate + timestamp
  propose,   // coordinator -> all: adopted proposal for this round
  ack,       // participant -> coordinator: proposal adopted
  nack,      // participant -> coordinator: coordinator was suspected
  decide,    // reliable broadcast of the decision
};

class ConsensusMessage final : public net::Message {
 public:
  ConsensusMessage(InstanceId instance, Round round, Phase phase,
                   ValuePtr value, Round timestamp)
      : net::Message(net::MessageType::consensus),
        instance_(instance),
        round_(round),
        phase_(phase),
        value_(std::move(value)),
        timestamp_(timestamp) {}

  [[nodiscard]] InstanceId instance() const { return instance_; }
  [[nodiscard]] Round round() const { return round_; }
  [[nodiscard]] Phase phase() const { return phase_; }
  [[nodiscard]] const ValuePtr& value() const { return value_; }
  [[nodiscard]] Round timestamp() const { return timestamp_; }

  [[nodiscard]] std::size_t compute_wire_size() const override {
    // Exactly what the codec writes: tag + instance + round + phase +
    // timestamp + presence flag, then (if present) the value framing
    // (kind + length varints) and the value body.
    std::size_t n = 1 + util::varint_size(instance_.value()) +
                    util::varint_size(round_) + 1 +
                    util::varint_size(timestamp_) + 1;
    if (value_ != nullptr) {
      const std::size_t body = value_->wire_size();
      n += util::varint_size(value_->value_kind()) + util::varint_size(body) +
           body;
    }
    return n;
  }

 private:
  InstanceId instance_;
  Round round_;
  Phase phase_;
  ValuePtr value_;
  Round timestamp_;
};

}  // namespace svs::consensus
