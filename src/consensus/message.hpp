// Wire messages of the Chandra-Toueg consensus protocol.
#pragma once

#include <cstdint>

#include "consensus/value.hpp"
#include "net/message.hpp"
#include "util/strong_id.hpp"

namespace svs::consensus {

struct InstanceIdTag {
  static constexpr const char* prefix() { return "c"; }
};

/// One consensus instance per decision (the view-change protocol uses the
/// current view's id as the instance id).
using InstanceId = util::StrongId<InstanceIdTag, std::uint64_t>;

using Round = std::uint32_t;

enum class Phase : std::uint8_t {
  estimate,  // participant -> coordinator: current estimate + timestamp
  propose,   // coordinator -> all: adopted proposal for this round
  ack,       // participant -> coordinator: proposal adopted
  nack,      // participant -> coordinator: coordinator was suspected
  decide,    // reliable broadcast of the decision
};

class ConsensusMessage final : public net::Message {
 public:
  ConsensusMessage(InstanceId instance, Round round, Phase phase,
                   ValuePtr value, Round timestamp)
      : net::Message(net::MessageType::consensus),
        instance_(instance),
        round_(round),
        phase_(phase),
        value_(std::move(value)),
        timestamp_(timestamp) {}

  [[nodiscard]] InstanceId instance() const { return instance_; }
  [[nodiscard]] Round round() const { return round_; }
  [[nodiscard]] Phase phase() const { return phase_; }
  [[nodiscard]] const ValuePtr& value() const { return value_; }
  [[nodiscard]] Round timestamp() const { return timestamp_; }

  [[nodiscard]] std::size_t wire_size() const override {
    // tag + instance + round + ts (varints, ~2 bytes each typical) + value.
    return 10 + (value_ != nullptr ? value_->wire_size() : 0);
  }

 private:
  InstanceId instance_;
  Round round_;
  Phase phase_;
  ValuePtr value_;
  Round timestamp_;
};

}  // namespace svs::consensus
