// One instance of Chandra-Toueg ◊S consensus (rotating coordinator).
//
// Implements the classic algorithm (Chandra & Toueg, JACM 1996) the paper's
// §3.1 assumes as a building block:
//
//   round r, coordinator c = participants[r mod n]:
//     phase 1  every participant sends (ESTIMATE, r, estimate, ts) to c
//     phase 2  c adopts the estimate with the largest ts among a majority
//              and broadcasts (PROPOSE, r, v)
//     phase 3  a participant either receives PROPOSE — adopts v, ts := r,
//              sends ACK — or comes to suspect c — sends NACK; either way
//              it then enters round r+1
//     phase 4  c, upon a majority of ACKs for round r (whenever they
//              arrive), reliably broadcasts (DECIDE, v)
//
//   reliable broadcast: on first DECIDE, relay DECIDE to all, then decide.
//
// Safety (agreement, validity, integrity) holds with any failure detector;
// termination needs ◊S behaviour and a majority of correct participants —
// exactly the system model of §3.1 ("crash-stop failures of at most a
// minority of processes").
//
// The implementation is event-driven: every input (message, suspicion
// change, propose call) mutates the tally state and then `advance()`
// re-evaluates the guards of the current round.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "consensus/message.hpp"
#include "consensus/value.hpp"
#include "fd/failure_detector.hpp"
#include "net/transport.hpp"
#include "sim/simulator.hpp"

namespace svs::consensus {

/// Statistics exposed for tests and benchmarks.
struct InstanceStats {
  Round rounds_entered = 0;
  std::uint64_t messages_sent = 0;
};

class Instance {
 public:
  using DecideCallback = std::function<void(const ValuePtr&)>;

  Instance(net::Transport& network, fd::FailureDetector& detector,
           net::ProcessId self, std::vector<net::ProcessId> participants,
           InstanceId id, DecideCallback on_decide);

  Instance(const Instance&) = delete;
  Instance& operator=(const Instance&) = delete;

  /// Submits this process's proposal.  May be called at most once; messages
  /// arriving before propose() are buffered by the Mux, so proposals may be
  /// late relative to other participants.
  void propose(ValuePtr value);

  /// Routes a consensus message for this instance.
  void on_message(net::ProcessId from, const ConsensusMessage& message);

  [[nodiscard]] bool decided() const { return decision_ != nullptr; }
  [[nodiscard]] const ValuePtr& decision() const { return decision_; }
  [[nodiscard]] InstanceId id() const { return id_; }
  [[nodiscard]] const InstanceStats& stats() const { return stats_; }

 private:
  struct Estimate {
    ValuePtr value;
    Round timestamp = 0;
  };

  [[nodiscard]] net::ProcessId coordinator(Round r) const;
  [[nodiscard]] std::size_t majority() const {
    return participants_.size() / 2 + 1;
  }
  void send(net::ProcessId to, Phase phase, Round round, const ValuePtr& value,
            Round ts);
  void broadcast(Phase phase, Round round, const ValuePtr& value, Round ts);
  void enter_round(Round r);
  void advance();
  void decide(const ValuePtr& value);

  net::Transport& net_;
  fd::FailureDetector& fd_;
  net::ProcessId self_;
  std::vector<net::ProcessId> participants_;
  InstanceId id_;
  DecideCallback on_decide_;

  bool proposed_ = false;
  Estimate estimate_;           // current estimate of this process
  Round round_ = 0;             // current round
  bool sent_estimate_ = false;  // for the current round
  bool answered_ = false;       // ACK or NACK sent in the current round
  bool relayed_decide_ = false;
  ValuePtr decision_;

  // Tallies, keyed by round (messages may arrive for rounds this process
  // has not reached yet, or for rounds a slow coordinator left behind).
  std::map<Round, std::map<net::ProcessId, Estimate>> estimates_;
  std::map<Round, ValuePtr> proposals_;
  std::map<Round, std::set<net::ProcessId>> acks_;
  std::map<Round, bool> proposed_in_round_;  // coordinator duty done

  InstanceStats stats_;
};

}  // namespace svs::consensus
