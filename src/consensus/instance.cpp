#include "consensus/instance.hpp"

#include <utility>

#include "util/contracts.hpp"

namespace svs::consensus {

Instance::Instance(net::Transport& network, fd::FailureDetector& detector,
                   net::ProcessId self,
                   std::vector<net::ProcessId> participants, InstanceId id,
                   DecideCallback on_decide)
    : net_(network),
      fd_(detector),
      self_(self),
      participants_(std::move(participants)),
      id_(id),
      on_decide_(std::move(on_decide)) {
  SVS_REQUIRE(!participants_.empty(), "consensus needs participants");
  SVS_REQUIRE(on_decide_ != nullptr, "decide callback must be callable");
  bool member = false;
  for (const auto p : participants_) member = member || p == self_;
  SVS_REQUIRE(member, "self must be a participant");
  // Phase-3 progress depends on suspicion changes; re-evaluate guards on
  // every failure-detector transition.  The instance must outlive the
  // detector subscription, which holds because the Mux never destroys
  // instances (see mux.hpp).
  fd_.subscribe([this] { advance(); });
}

net::ProcessId Instance::coordinator(Round r) const {
  return participants_[r % participants_.size()];
}

void Instance::send(net::ProcessId to, Phase phase, Round round,
                    const ValuePtr& value, Round ts) {
  ++stats_.messages_sent;
  net_.send(self_, to,
            std::make_shared<ConsensusMessage>(id_, round, phase, value, ts),
            net::Lane::control);
}

void Instance::broadcast(Phase phase, Round round, const ValuePtr& value,
                         Round ts) {
  for (const auto p : participants_) send(p, phase, round, value, ts);
}

void Instance::propose(ValuePtr value) {
  SVS_REQUIRE(value != nullptr, "cannot propose a null value");
  SVS_REQUIRE(!proposed_, "propose() may be called at most once");
  proposed_ = true;
  estimate_ = Estimate{std::move(value), 0};
  enter_round(0);
}

void Instance::enter_round(Round r) {
  round_ = r;
  sent_estimate_ = false;
  answered_ = false;
  ++stats_.rounds_entered;
  advance();
}

void Instance::on_message(net::ProcessId from, const ConsensusMessage& m) {
  SVS_REQUIRE(m.instance() == id_, "message routed to wrong instance");
  if (decided()) return;  // decision already relayed; nothing left to do

  switch (m.phase()) {
    case Phase::estimate:
      estimates_[m.round()][from] = Estimate{m.value(), m.timestamp()};
      break;
    case Phase::propose:
      // Only the legitimate coordinator's proposal counts (defensive; the
      // model is crash-stop, not Byzantine).
      if (from == coordinator(m.round())) {
        proposals_.emplace(m.round(), m.value());
      }
      break;
    case Phase::ack:
      if (self_ == coordinator(m.round())) acks_[m.round()].insert(from);
      break;
    case Phase::nack:
      break;  // progress is driven by this process's own failure detector
    case Phase::decide:
      decide(m.value());
      return;
  }
  advance();
}

void Instance::advance() {
  if (decided() || !proposed_) return;

  // Loop: answering a proposal moves this process to the next round, whose
  // guards may already be satisfied by buffered messages.
  for (;;) {
    // Phase 1: send this round's estimate to the coordinator.
    if (!sent_estimate_) {
      send(coordinator(round_), Phase::estimate, round_, estimate_.value,
           estimate_.timestamp);
      sent_estimate_ = true;
    }

    // Phase 2 (coordinator): adopt the best estimate of a majority.
    if (self_ == coordinator(round_) && !proposed_in_round_[round_]) {
      const auto& tally = estimates_[round_];
      if (tally.size() >= majority()) {
        const Estimate* best = nullptr;
        for (const auto& [p, est] : tally) {
          if (best == nullptr || est.timestamp > best->timestamp) best = &est;
        }
        SVS_ASSERT(best != nullptr && best->value != nullptr,
                   "majority tally must contain estimates");
        proposed_in_round_[round_] = true;
        broadcast(Phase::propose, round_, best->value, 0);
      }
    }

    // Phase 4 (coordinator, any past round): majority of ACKs decides.
    for (const auto& [r, who] : acks_) {
      if (who.size() >= majority() && proposed_in_round_[r]) {
        decide(proposals_.at(r));
        return;
      }
    }

    // Phase 3 (participant): adopt-and-ack, or suspect-and-nack.
    if (!answered_) {
      const auto proposal = proposals_.find(round_);
      if (proposal != proposals_.end()) {
        // ts := round + 1 ensures adopted estimates always outrank initial
        // ones (timestamp 0), which is what the locking argument needs.
        estimate_ = Estimate{proposal->second, round_ + 1};
        send(coordinator(round_), Phase::ack, round_, nullptr, 0);
        answered_ = true;
        round_ += 1;
        sent_estimate_ = false;
        answered_ = false;
        ++stats_.rounds_entered;
        continue;  // evaluate the new round's guards
      }
      if (fd_.suspects(coordinator(round_))) {
        send(coordinator(round_), Phase::nack, round_, nullptr, 0);
        round_ += 1;
        sent_estimate_ = false;
        answered_ = false;
        ++stats_.rounds_entered;
        continue;
      }
    }
    break;  // no guard fired; wait for the next event
  }
}

void Instance::decide(const ValuePtr& value) {
  if (decided()) return;
  SVS_ASSERT(value != nullptr, "decision value must not be null");
  decision_ = value;
  if (!relayed_decide_) {
    relayed_decide_ = true;
    // Reliable broadcast: whoever decides first makes sure everyone hears.
    for (const auto p : participants_) {
      if (p != self_) send(p, Phase::decide, round_, value, 0);
    }
  }
  on_decide_(decision_);
}

}  // namespace svs::consensus
