#include "core/stability_ledger.hpp"

#include <algorithm>
#include <iterator>

#include "util/bytes.hpp"
#include "util/contracts.hpp"

namespace svs::core {

// ---------------------------------------------------------------------------
// reception record
// ---------------------------------------------------------------------------

void StabilityLedger::record_reception(Channel& channel, std::uint64_t seq) {
  if (!channel.any_received) {
    channel.any_received = true;
    channel.base = channel.floor = channel.high = seq;
    return;
  }
  channel.high = std::max(channel.high, seq);
  if (seq == channel.floor + 1) {
    // Contiguous extension; absorb any sparse entries it now connects.
    ++channel.floor;
    auto next = channel.sparse.begin();
    while (next != channel.sparse.end() && *next == channel.floor + 1) {
      ++channel.floor;
      next = channel.sparse.erase(next);
    }
  } else if (seq > channel.floor + 1) {
    channel.sparse.insert(seq);  // received across a gap (or ahead)
  } else if (seq + 1 == channel.base) {
    // A flush-in just below the base (the view's first arrivals were purged
    // out of the channel): extend downwards.
    --channel.base;
  } else if (seq < channel.base) {
    channel.sparse.insert(seq);  // below-base reception with a further gap
  }
  // seq within [base, floor] or already sparse: duplicate note, no-op.
}

void StabilityLedger::note_seen(net::ProcessId sender, std::uint64_t seq) {
  Channel& channel = channels_[sender];
  record_reception(channel, seq);
  advance_frontier(sender, channel);
}

bool StabilityLedger::received(net::ProcessId sender,
                               std::uint64_t seq) const {
  const auto it = channels_.find(sender);
  return it != channels_.end() && it->second.has(seq);
}

std::optional<std::uint64_t> StabilityLedger::high_water(
    net::ProcessId sender) const {
  const auto it = channels_.find(sender);
  if (it == channels_.end() || !it->second.any_received) return std::nullopt;
  return it->second.high;
}

// ---------------------------------------------------------------------------
// purge-debt ledger
// ---------------------------------------------------------------------------

bool StabilityLedger::set_anchor(net::ProcessId sender, std::uint64_t anchor) {
  Channel& channel = channels_[sender];
  if (channel.anchor.has_value()) {
    SVS_ASSERT(*channel.anchor == anchor,
               "a channel's per-view anchor never moves");
    return false;
  }
  channel.anchor = anchor;
  channel.explained = anchor;
  ++reportable_;
  // The entry becomes reportable now even if the frontier never moves past
  // the anchor; advance_frontier then only adjusts the frontier's varint.
  changed_.insert(sender);
  entry_wire_bytes_ +=
      util::varint_size(sender.value()) + util::varint_size(channel.explained);
  dirty_ = true;
  advance_frontier(sender, channel);
  return true;
}

bool StabilityLedger::record_own_debt(std::uint64_t seq,
                                      std::uint64_t cover_seq) {
  SVS_REQUIRE(cover_seq > seq,
              "a purge debt's cover is the fresh multicast, strictly newer");
  const auto [it, inserted] = own_debts_.try_emplace(seq, cover_seq);
  if (!inserted) {
    SVS_ASSERT(it->second == cover_seq,
               "a seq is purged at most once, by exactly one cover");
    return false;
  }
  own_debts_unshipped_.insert(seq);
  own_debt_wire_bytes_ +=
      StabilityMessage::debt_wire_size(PurgeDebt{seq, cover_seq});
  dirty_ = true;
  return true;
}

bool StabilityLedger::merge_debts(net::ProcessId sender,
                                  const StabilityMessage::Debts& debts) {
  if (debts.empty()) return false;
  Channel& channel = channels_[sender];
  bool news = false;
  for (const auto& debt : debts) {
    if (debt.seq <= channel.explained && channel.anchor.has_value()) {
      continue;  // already explained (and its ledger entry pruned)
    }
    const auto [it, inserted] =
        channel.debts.try_emplace(debt.seq, debt.cover_seq);
    if (inserted) {
      ++merged_debt_count_;
      news = true;
    } else {
      SVS_ASSERT(it->second == debt.cover_seq,
                 "conflicting covers announced for one purged seq");
    }
  }
  advance_frontier(sender, channel);
  return news;
}

bool StabilityLedger::obligation_met(net::ProcessId sender,
                                     std::uint64_t seq) const {
  const auto it = channels_.find(sender);
  if (it == channels_.end()) return false;
  const Channel& channel = it->second;
  if (channel.has(seq)) return true;
  if (channel.anchor.has_value() && seq <= channel.explained) return true;
  return channel.chain_cover_received(seq);
}

std::optional<std::uint64_t> StabilityLedger::frontier(
    net::ProcessId sender) const {
  const auto it = channels_.find(sender);
  if (it == channels_.end() || !it->second.anchor.has_value()) {
    return std::nullopt;
  }
  return it->second.explained;
}

void StabilityLedger::advance_frontier(net::ProcessId sender,
                                       Channel& channel) {
  if (!channel.anchor.has_value()) return;
  const std::uint64_t before = channel.explained;
  for (;;) {
    const std::uint64_t next = channel.explained + 1;
    if (channel.any_received && next >= channel.base &&
        next <= channel.floor) {
      // Inside the contiguous received run: the whole run explains itself
      // in one hop — this is the entire loop for gap-free channels (the
      // flood hot path).
      channel.explained = channel.floor;
      continue;
    }
    if (channel.has(next)) {
      ++channel.explained;
      continue;
    }
    // A gap is explained only when its debt chain reaches a message this
    // node actually received — "purged with live cover".
    if (channel.chain_cover_received(next)) {
      ++channel.explained;
      continue;
    }
    break;
  }
  if (channel.explained == before) return;
  // Merged debts at or below the frontier can never matter here again
  // (obligation_met answers from the frontier first).
  if (!channel.debts.empty()) {
    const auto stale = channel.debts.upper_bound(channel.explained);
    merged_debt_count_ -= static_cast<std::size_t>(
        std::distance(channel.debts.begin(), stale));
    channel.debts.erase(channel.debts.begin(), stale);
  }
  changed_.insert(sender);
  entry_wire_bytes_ +=
      util::varint_size(channel.explained) - util::varint_size(before);
  dirty_ = true;
}

// ---------------------------------------------------------------------------
// gossip
// ---------------------------------------------------------------------------

StabilityMessage::Seen StabilityLedger::snapshot() const {
  StabilityMessage::Seen out;
  out.reserve(reportable_);
  for (const auto& [sender, channel] : channels_) {
    if (channel.anchor.has_value()) {
      out.emplace_back(sender, channel.explained);
    }
  }
  return out;
}

StabilityLedger::Round StabilityLedger::take_snapshot() {
  Round round;
  round.seen = snapshot();
  round.debts.reserve(own_debts_.size());
  for (const auto& [seq, cover] : own_debts_) {
    round.debts.push_back(PurgeDebt{seq, cover});
  }
  changed_.clear();
  own_debts_unshipped_.clear();
  dirty_ = false;
  return round;
}

StabilityLedger::Round StabilityLedger::take_delta() {
  Round round;
  round.seen.reserve(changed_.size());
  for (const auto sender : changed_) {
    round.seen.emplace_back(sender, channels_.at(sender).explained);
  }
  round.debts.reserve(own_debts_unshipped_.size());
  for (const auto seq : own_debts_unshipped_) {
    round.debts.push_back(PurgeDebt{seq, own_debts_.at(seq)});
  }
  changed_.clear();
  own_debts_unshipped_.clear();
  dirty_ = false;
  return round;
}

bool StabilityLedger::merge_report(net::ProcessId from,
                                   const StabilityMessage::Seen& seen) {
  auto& vector = peer_seen_[from];
  bool news = false;
  for (const auto& [sender, seq] : seen) {
    auto& high = vector[sender];
    if (seq > high) {
      high = seq;
      news = true;
    }
  }
  return news;
}

std::uint64_t StabilityLedger::floor_of(net::ProcessId sender,
                                        const View& view,
                                        net::ProcessId self) const {
  const auto own = channels_.find(sender);
  std::uint64_t floor =
      own == channels_.end() || !own->second.anchor.has_value()
          ? 0
          : own->second.explained;
  for (const auto p : view.members()) {
    if (p == self) continue;
    const auto vec = peer_seen_.find(p);
    if (vec == peer_seen_.end()) return 0;
    const auto it = vec->second.find(sender);
    const std::uint64_t reported = it == vec->second.end() ? 0 : it->second;
    floor = std::min(floor, reported);
  }
  return floor;
}

std::size_t StabilityLedger::collect_debts(const View& view,
                                           net::ProcessId self) {
  // O(1) fast-out: with no debts anywhere — every run without sender-side
  // purging pressure, including the flood hot path — this costs nothing.
  if (own_debts_.empty() && merged_debt_count_ == 0) return 0;
  std::size_t collected = 0;
  // Own debts: once every member's reported frontier for this node's
  // channel passed q, no one can still need q explained (frontiers are
  // monotone), so the debt — and its gossip bytes — retire.
  if (!own_debts_.empty()) {
    const std::uint64_t floor = floor_of(self, view, self);
    auto it = own_debts_.begin();
    while (it != own_debts_.end() && it->first <= floor) {
      own_debt_wire_bytes_ -=
          StabilityMessage::debt_wire_size(PurgeDebt{it->first, it->second});
      own_debts_unshipped_.erase(it->first);
      it = own_debts_.erase(it);
      ++collected;
    }
  }
  // Merged debts prune as the local frontier passes them (advance_frontier
  // already does this on every move; this sweep only matters for channels
  // whose frontier last moved before their debts arrived).
  if (merged_debt_count_ != 0) {
    for (auto& [sender, channel] : channels_) {
      if (!channel.anchor.has_value() || channel.debts.empty()) continue;
      const auto stale = channel.debts.upper_bound(channel.explained);
      merged_debt_count_ -= static_cast<std::size_t>(
          std::distance(channel.debts.begin(), stale));
      channel.debts.erase(channel.debts.begin(), stale);
    }
  }
  return collected;
}

void StabilityLedger::reset() {
  channels_.clear();
  merged_debt_count_ = 0;
  peer_seen_.clear();
  changed_.clear();
  reportable_ = 0;
  own_debts_.clear();
  own_debts_unshipped_.clear();
  own_debt_wire_bytes_ = 0;
  entry_wire_bytes_ = 0;
  dirty_ = false;
}

}  // namespace svs::core
