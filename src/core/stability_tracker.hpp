// Stability tracking — the gossip GC of the delivered history (§2.1).
//
// Tracks this node's per-sender reception high-water marks (seen) and the
// latest reception vectors reported by the other members of the view.  A
// delivered message whose seq is at or below every member's mark is stable:
// every process received it, so it can never be needed by a t7 flush again
// and is garbage-collected from the delivered history — which is also what
// keeps PRED messages and the agreed pred-view small.
//
// The tracker owns the state and the stability arithmetic; the Node owns
// the gossip timer and the wire traffic (it knows the network and the
// quiescence rules).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>

#include "core/message.hpp"
#include "core/types.hpp"
#include "net/types.hpp"

namespace svs::core {

class StabilityTracker {
 public:
  /// Records a reception (accepted or suppressed) of `seq` from `sender`
  /// and marks the tracker dirty for the next gossip round.
  void note_seen(net::ProcessId sender, std::uint64_t seq);

  /// This node's high-water mark for `sender`, if any message was received.
  [[nodiscard]] std::optional<std::uint64_t> seen(net::ProcessId sender) const;

  /// Snapshot of the local reception vector, as gossiped to the peers.
  [[nodiscard]] StabilityMessage::Seen snapshot() const;

  /// The entries whose mark changed since the previous take_delta() (or
  /// since construction/reset) — what a gossip round actually needs to
  /// ship, because marks are monotone and merge_report is a per-entry max.
  /// Clears the change set and the dirty flag.  After a view install
  /// (reset()) every subsequent mark counts as changed, so the first
  /// post-install gossip is a full snapshot by construction.
  [[nodiscard]] StabilityMessage::Seen take_delta();

  /// Full vector variant of take_delta(): returns every mark and clears
  /// the change set.  Periodic full rounds make the delta gossip
  /// self-healing — a delta dropped by a receiver (e.g. for a view
  /// mismatch during install skew) is repaired by the next full round.
  [[nodiscard]] StabilityMessage::Seen take_snapshot();

  /// Number of senders with a recorded mark (|snapshot()|, O(1)).
  [[nodiscard]] std::size_t tracked_senders() const {
    return seen_seq_.size();
  }

  /// Exact encoded size of the snapshot's (sender, seq) entries — what a
  /// full-vector gossip's entry section would put on the wire.  Maintained
  /// incrementally (O(1) per mark update), so the delta-gossip savings
  /// telemetry never materializes the snapshot it avoided sending.
  [[nodiscard]] std::size_t entry_wire_bytes() const {
    return entry_wire_bytes_;
  }

  /// Merges a peer's gossiped reception vector (marks are monotone).
  void merge_report(net::ProcessId from, const StabilityMessage::Seen& seen);

  /// Highest seq of `sender` known to be received by every member of
  /// `view` (self included).  Any member that has not reported yet (or a
  /// crashed one whose reports stopped) holds the floor at zero — stability
  /// then waits for the view change that excludes it, as in a real group
  /// stack.
  [[nodiscard]] std::uint64_t floor_of(net::ProcessId sender, const View& view,
                                       net::ProcessId self) const;

  /// True when something was received since the last gossip (the gossip
  /// quiesces when nothing new arrived, so idle groups go silent).
  [[nodiscard]] bool dirty() const { return dirty_; }
  void clear_dirty() { dirty_ = false; }

  /// Install-time reset: reception marks are per-view.
  void reset();

 private:
  // Highest sequence number received (accepted or suppressed) per sender in
  // the current view.  FIFO channels make reception contiguous, so at t7 a
  // pred-view message at or below this mark was already received here and
  // must not be re-added (DESIGN.md §3).
  std::map<net::ProcessId, std::uint64_t> seen_seq_;
  // Latest reception vectors reported by the other members.
  std::map<net::ProcessId, std::map<net::ProcessId, std::uint64_t>> peer_seen_;
  // Senders whose mark rose since the last take_delta().
  std::set<net::ProcessId> changed_;
  // Exact encoded bytes of the snapshot's (sender, seq) entries (see
  // entry_wire_bytes()).
  std::size_t entry_wire_bytes_ = 0;
  bool dirty_ = false;
};

}  // namespace svs::core
