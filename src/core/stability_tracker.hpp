// Stability tracking — the gossip GC of the delivered history (§2.1).
//
// Tracks this node's per-sender reception record and the latest reception
// vectors reported by the other members of the view.  A delivered message
// whose seq is at or below every member's reported mark is *stable*: the
// gossip says every process received it, so it should never be needed by a
// t7 flush again and is garbage-collected from the delivered history —
// which is also what keeps PRED messages and the agreed pred-view small.
//
// Reception is NOT contiguous under sender-side semantic purging: a sender
// may purge seq q out of a channel (its cover rides behind), so the
// receiver's high-water mark can jump a gap it never received.  The
// scenario explorer found the resulting §3.2 violation (DESIGN.md §7): a
// high mark was read as proof of reception, a message was GC'd everywhere,
// and its only in-channel cover died with an excluded sender.  Hence the
// tracker records the exact per-sender reception *set* — compressed as
// (base, contiguous floor, sparse tail) so the common gap-free case stays
// O(1) — and exposes two distinct queries:
//
//   * received(sender, seq) — exact membership; what the t7 flush skip and
//     any "was this consumed here?" reasoning must use;
//   * high_water(sender)    — the FIFO channel's monotone frontier; what
//     duplicate suppression may use (a purged gap seq can never arrive, so
//     any arrival at or below the frontier is a duplicate).
//
// The gossiped marks stay scalar high-waters (wire format unchanged); the
// GC therefore additionally requires a retained cover for purging senders
// (DeliveryQueue::collect_delivered), because a scalar mark cannot promise
// reception of the gap seqs below it.
//
// The tracker owns the state and the stability arithmetic; the Node owns
// the gossip timer and the wire traffic (it knows the network and the
// quiescence rules).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>

#include "core/message.hpp"
#include "core/types.hpp"
#include "net/types.hpp"

namespace svs::core {

class StabilityTracker {
 public:
  /// Records a reception (accepted, suppressed, or flushed-in) of `seq`
  /// from `sender` and marks the tracker dirty for the next gossip round.
  /// Idempotent.
  void note_seen(net::ProcessId sender, std::uint64_t seq);

  /// Exact reception query: was `seq` from `sender` received here in this
  /// view?  Sound under the reception gaps sender-side purging creates.
  [[nodiscard]] bool received(net::ProcessId sender, std::uint64_t seq) const;

  /// This node's reception high-water mark for `sender`, if any message was
  /// received.  On a FIFO channel every arrival at or below it is a
  /// duplicate (gap seqs were purged out of the channel and never arrive);
  /// it is NOT evidence that the seqs below it were received.
  [[nodiscard]] std::optional<std::uint64_t> high_water(
      net::ProcessId sender) const;

  /// Snapshot of the local reception vector, as gossiped to the peers.
  [[nodiscard]] StabilityMessage::Seen snapshot() const;

  /// The entries whose mark changed since the previous take_delta() (or
  /// since construction/reset) — what a gossip round actually needs to
  /// ship, because marks are monotone and merge_report is a per-entry max.
  /// Clears the change set and the dirty flag.  After a view install
  /// (reset()) every subsequent mark counts as changed, so the first
  /// post-install gossip is a full snapshot by construction.
  [[nodiscard]] StabilityMessage::Seen take_delta();

  /// Full vector variant of take_delta(): returns every mark and clears
  /// the change set.  Periodic full rounds make the delta gossip
  /// self-healing — a delta dropped by a receiver (e.g. for a view
  /// mismatch during install skew) is repaired by the next full round.
  [[nodiscard]] StabilityMessage::Seen take_snapshot();

  /// Number of senders with a recorded mark (|snapshot()|, O(1)).
  [[nodiscard]] std::size_t tracked_senders() const {
    return seen_seq_.size();
  }

  /// Exact encoded size of the snapshot's (sender, seq) entries — what a
  /// full-vector gossip's entry section would put on the wire.  Maintained
  /// incrementally (O(1) per mark update), so the delta-gossip savings
  /// telemetry never materializes the snapshot it avoided sending.
  [[nodiscard]] std::size_t entry_wire_bytes() const {
    return entry_wire_bytes_;
  }

  /// Merges a peer's gossiped reception vector (marks are monotone).
  void merge_report(net::ProcessId from, const StabilityMessage::Seen& seen);

  /// Highest seq of `sender` known to be received by every member of
  /// `view` (self included).  Any member that has not reported yet (or a
  /// crashed one whose reports stopped) holds the floor at zero — stability
  /// then waits for the view change that excludes it, as in a real group
  /// stack.
  [[nodiscard]] std::uint64_t floor_of(net::ProcessId sender, const View& view,
                                       net::ProcessId self) const;

  /// True when something was received since the last gossip (the gossip
  /// quiesces when nothing new arrived, so idle groups go silent).
  [[nodiscard]] bool dirty() const { return dirty_; }
  void clear_dirty() { dirty_ = false; }

  /// Install-time reset: reception marks are per-view.
  void reset();

 private:
  // Per-sender reception record for the current view, compressed: every
  // seq in [base, floor] was received, plus the sparse set above the floor
  // (entries there have unreceived gaps below them).  Gap-free reception —
  // the common case — only advances `floor`, O(1); a flush-in can close a
  // gap and re-absorb the sparse tail.  `high` is the monotone channel
  // frontier reported to peers and used for duplicate detection.
  struct Reception {
    std::uint64_t base = 0;
    std::uint64_t floor = 0;
    std::uint64_t high = 0;
    std::set<std::uint64_t> sparse;
  };
  std::map<net::ProcessId, Reception> seen_seq_;
  // Latest reception vectors reported by the other members.
  std::map<net::ProcessId, std::map<net::ProcessId, std::uint64_t>> peer_seen_;
  // Senders whose mark rose since the last take_delta().
  std::set<net::ProcessId> changed_;
  // Exact encoded bytes of the snapshot's (sender, seq) entries (see
  // entry_wire_bytes()).
  std::size_t entry_wire_bytes_ = 0;
  bool dirty_ = false;
};

}  // namespace svs::core
