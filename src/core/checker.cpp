#include "core/checker.hpp"

#include <algorithm>
#include <set>
#include <sstream>

#include "util/contracts.hpp"

namespace svs::core {
namespace {

std::string describe(const MsgId& id) {
  std::ostringstream os;
  os << id;
  return os.str();
}

}  // namespace

SpecChecker::SpecChecker(obs::RelationPtr ground_truth)
    : ground_truth_(std::move(ground_truth)) {
  SVS_REQUIRE(ground_truth_ != nullptr, "checker needs a ground-truth relation");
}

void SpecChecker::on_multicast(net::ProcessId p, const DataMessagePtr& m) {
  SVS_ASSERT(m->sender() == p, "multicast recorded for the wrong process");
  const auto [it, inserted] = sent_.emplace(m->id(), m);
  (void)it;
  SVS_ASSERT(inserted, "sequence numbers must be unique per sender");
  sent_by_sender_[p].push_back(m);
}

void SpecChecker::on_deliver(net::ProcessId p, const DataMessagePtr& m) {
  logs_[p].events.push_back(Event{m, std::nullopt, std::nullopt});
  ++total_deliveries_;
}

void SpecChecker::on_install(net::ProcessId p, const View& v) {
  logs_[p].events.push_back(Event{nullptr, v, std::nullopt});
}

void SpecChecker::on_excluded(net::ProcessId p, ViewId last_view) {
  logs_[p].events.push_back(Event{nullptr, std::nullopt, last_view});
}

void SpecChecker::on_flush_in(net::ProcessId p, const DataMessagePtr& m) {
  flush_ins_[p].insert(m->id());
}

bool SpecChecker::covered(const DataMessage& older,
                          const DataMessage& newer) const {
  if (older.id() == newer.id()) return true;
  return ground_truth_->covers(newer.ref(), older.ref());
}

std::vector<DataMessagePtr> SpecChecker::delivered_in(net::ProcessId p,
                                                      ViewId v) const {
  std::vector<DataMessagePtr> out;
  const auto log = logs_.find(p);
  if (log == logs_.end()) return out;
  std::optional<ViewId> current;
  for (const auto& e : log->second.events) {
    if (e.install.has_value()) {
      current = e.install->id();
    } else if (e.data != nullptr && current.has_value() && *current == v) {
      out.push_back(e.data);
    }
  }
  return out;
}

std::vector<View> SpecChecker::views_installed(net::ProcessId p) const {
  std::vector<View> out;
  const auto log = logs_.find(p);
  if (log == logs_.end()) return out;
  for (const auto& e : log->second.events) {
    if (e.install.has_value()) out.push_back(*e.install);
  }
  return out;
}

std::vector<std::string> SpecChecker::verify() const {
  std::vector<std::string> violations;
  const auto complain = [&violations](const std::string& s) {
    violations.push_back(s);
  };

  // ---- Integrity ---------------------------------------------------------
  for (const auto& [p, log] : logs_) {
    std::unordered_set<MsgId> seen;
    for (const auto& e : log.events) {
      if (e.data == nullptr) continue;
      const MsgId id = e.data->id();
      if (!sent_.contains(id)) {
        std::ostringstream os;
        os << p << " delivered " << describe(id) << " which was never sent"
           << " (no-creation violated)";
        complain(os.str());
      }
      if (!seen.insert(id).second) {
        std::ostringstream os;
        os << p << " delivered " << describe(id) << " twice"
           << " (no-duplication violated)";
        complain(os.str());
      }
    }
  }

  // ---- FIFO (i): per-sender delivery order -------------------------------
  // Flush-ins are exempt (retro-delivery of a sender-purged gap whose cover
  // died with an excluded sender — see the header); everything else must be
  // strictly seq-increasing per sender.  The frontier keeps its maximum so
  // post-repair channel deliveries are still checked against it.
  for (const auto& [p, log] : logs_) {
    const auto flush_in = flush_ins_.find(p);
    std::map<net::ProcessId, std::uint64_t> last_seq;
    for (const auto& e : log.events) {
      if (e.data == nullptr) continue;
      const auto sender = e.data->sender();
      const auto it = last_seq.find(sender);
      if (it != last_seq.end() && e.data->seq() <= it->second &&
          (flush_in == flush_ins_.end() ||
           !flush_in->second.contains(e.data->id()))) {
        std::ostringstream os;
        os << p << " delivered " << describe(e.data->id())
           << " after seq " << it->second << " of the same sender"
           << " (FIFO clause (i) violated)";
        complain(os.str());
      }
      auto& frontier = last_seq[sender];
      frontier = std::max(frontier, e.data->seq());
    }
  }

  // ---- Per-process view/segment structure --------------------------------
  // installed view ids must be consecutive.
  for (const auto& [p, log] : logs_) {
    std::optional<ViewId> prev;
    for (const auto& e : log.events) {
      if (!e.install.has_value()) continue;
      if (prev.has_value() && e.install->id().value() != prev->value() + 1) {
        std::ostringstream os;
        os << p << " installed " << e.install->id() << " right after "
           << *prev << " (views must be consecutive)";
        complain(os.str());
      }
      prev = e.install->id();
    }
  }

  // ---- SVS + FIFO-SR (ii) across view boundaries --------------------------
  // For process q and view v: deliveries of q before q's install of the
  // view following v (i.e. everything up to that install event).
  struct Segment {
    std::vector<DataMessagePtr> in_view;     // delivered within v
    std::vector<DataMessagePtr> up_to_next;  // delivered before VIEW(v+1)
    std::unordered_set<MsgId> up_to_next_ids;
    bool closed = false;                     // q installed v+1
  };
  // per process: view id -> segment
  std::map<net::ProcessId, std::map<std::uint64_t, Segment>> segments;
  for (const auto& [p, log] : logs_) {
    std::optional<std::uint64_t> current;
    std::vector<DataMessagePtr> prefix;
    for (const auto& e : log.events) {
      if (e.install.has_value()) {
        const std::uint64_t v = e.install->id().value();
        if (current.has_value()) {
          Segment& seg = segments[p][*current];
          seg.closed = true;
          seg.up_to_next = prefix;  // everything delivered before VIEW(v)
          for (const auto& m : prefix) seg.up_to_next_ids.insert(m->id());
        }
        current = v;
        segments[p][v];  // create
      } else if (e.data != nullptr) {
        prefix.push_back(e.data);
        if (current.has_value()) {
          segments[p][*current].in_view.push_back(e.data);
        }
      }
    }
  }

  const auto delivers_cover = [&](const Segment& seg, const DataMessage& m) {
    if (seg.up_to_next_ids.contains(m.id())) return true;  // delivered as-is
    return std::any_of(
        seg.up_to_next.begin(), seg.up_to_next.end(),
        [&](const DataMessagePtr& c) { return covered(m, *c); });
  };

  for (const auto& [p, p_segs] : segments) {
    for (const auto& [v, p_seg] : p_segs) {
      if (!p_seg.closed) continue;  // p did not install v+1
      // FIFO-SR (ii): per sender, every message sent in v before the last
      // one p delivered must be covered by something p delivered.
      std::map<net::ProcessId, std::uint64_t> max_seq;
      for (const auto& m : p_seg.in_view) {
        if (m->view().value() != v) continue;
        auto& best = max_seq[m->sender()];
        best = std::max(best, m->seq());
      }
      for (const auto& [sender, horizon] : max_seq) {
        const auto sent_it = sent_by_sender_.find(sender);
        if (sent_it == sent_by_sender_.end()) continue;
        for (const auto& m : sent_it->second) {
          if (m->view().value() != v || m->seq() >= horizon) continue;
          if (!delivers_cover(p_seg, *m)) {
            std::ostringstream os;
            os << p << " delivered up to " << sender << "#" << horizon
               << " in view v" << v << " but omitted non-obsolete "
               << describe(m->id()) << " (FIFO-SR clause (ii) violated)";
            complain(os.str());
          }
        }
      }
      // SVS: everything p delivered in v must be covered at every q that
      // also installed v and v+1.
      for (const auto& [q, q_segs] : segments) {
        if (q == p) continue;
        const auto q_seg_it = q_segs.find(v);
        if (q_seg_it == q_segs.end() || !q_seg_it->second.closed) continue;
        for (const auto& m : p_seg.in_view) {
          if (!delivers_cover(q_seg_it->second, *m)) {
            std::ostringstream os;
            os << p << " delivered " << describe(m->id()) << " in view v" << v
               << " but " << q << " delivered nothing covering it before v"
               << v + 1 << " (SVS violated)";
            complain(os.str());
          }
        }
      }
    }
  }

  return violations;
}

std::vector<std::string> SpecChecker::verify_quiescence(
    std::span<const net::ProcessId> alive) const {
  std::vector<std::string> violations;

  // Survivors: alive and never excluded (a voluntary leave or a membership
  // exclusion both surface as an exclusion event in the process's log).
  std::vector<net::ProcessId> survivors;
  for (const auto p : alive) {
    const auto log = logs_.find(p);
    const bool excluded =
        log != logs_.end() &&
        std::any_of(log->second.events.begin(), log->second.events.end(),
                    [](const Event& e) { return e.excluded.has_value(); });
    if (!excluded) survivors.push_back(p);
  }
  std::sort(survivors.begin(), survivors.end());
  survivors.erase(std::unique(survivors.begin(), survivors.end()),
                  survivors.end());
  if (survivors.empty()) return violations;

  // ---- convergence: one common final view ---------------------------------
  // Unconditional: view agreement is decided by consensus, so survivors end
  // in the same final view even when the group lost its alive quorum.
  std::optional<View> final_view;
  for (const auto q : survivors) {
    const auto views = views_installed(q);
    if (views.empty()) {
      std::ostringstream os;
      os << q << " never installed a view (quiescence violated)";
      violations.push_back(os.str());
      continue;
    }
    if (!final_view.has_value()) {
      final_view = views.back();
    } else if (views.back() != *final_view) {
      std::ostringstream os;
      os << q << " ended in " << views.back() << " but others ended in "
         << *final_view << " (final views diverged; quiescence violated)";
      violations.push_back(os.str());
    }
  }
  if (!final_view.has_value()) return violations;
  for (const auto q : survivors) {
    if (!final_view->contains(q)) {
      std::ostringstream os;
      os << q << " survived but is not a member of the final view "
         << *final_view << " (quiescence violated)";
      violations.push_back(os.str());
    }
  }

  // Liveness below is *conditional* on the final view retaining an alive
  // strict majority: a rump view without quorum cannot decide the view
  // change that would exclude its dead members or flush its channels — a
  // primary-partition stack legitimately halts there (DESIGN.md §7).
  const bool quorum_held = 2 * survivors.size() > final_view->size();
  if (!quorum_held) return violations;

  if (final_view->members() != survivors) {
    std::ostringstream os;
    os << "final view " << *final_view << " does not match the survivor set"
       << " despite an alive quorum (quiescence violated)";
    violations.push_back(os.str());
  }

  // ---- liveness: surviving senders' messages reach every survivor --------
  // Delivered or obsoleted-by-⊑: q delivered m itself, or delivered some m''
  // that covers m under the ground truth.
  for (const auto q : survivors) {
    const auto log = logs_.find(q);
    std::unordered_set<MsgId> delivered_ids;
    std::vector<const DataMessage*> delivered;
    if (log != logs_.end()) {
      for (const auto& e : log->second.events) {
        if (e.data == nullptr) continue;
        delivered_ids.insert(e.data->id());
        delivered.push_back(e.data.get());
      }
    }
    for (const auto& [id, m] : sent_) {
      if (!std::binary_search(survivors.begin(), survivors.end(),
                              m->sender())) {
        continue;  // §3.2 does not promise delivery for dead/left senders
      }
      if (delivered_ids.contains(id)) continue;
      const bool obsoleted =
          std::any_of(delivered.begin(), delivered.end(),
                      [&](const DataMessage* c) { return covered(*m, *c); });
      if (!obsoleted) {
        std::ostringstream os;
        os << q << " neither delivered nor obsoleted " << describe(id)
           << " from surviving sender " << m->sender()
           << " (quiescent liveness violated)";
        violations.push_back(os.str());
      }
    }
  }
  return violations;
}

std::vector<std::string> SpecChecker::verify_strict_vs() const {
  std::vector<std::string> violations;
  // Collect, per process, per closed view, the set of delivered ids.
  std::map<net::ProcessId, std::map<std::uint64_t, std::set<MsgId>>> by_view;
  std::map<net::ProcessId, std::set<std::uint64_t>> closed;
  for (const auto& [p, log] : logs_) {
    std::optional<std::uint64_t> current;
    for (const auto& e : log.events) {
      if (e.install.has_value()) {
        if (current.has_value()) closed[p].insert(*current);
        current = e.install->id().value();
        by_view[p][*current];
      } else if (e.data != nullptr && current.has_value()) {
        by_view[p][*current].insert(e.data->id());
      }
    }
  }
  const auto is_closed = [&closed](net::ProcessId p, std::uint64_t v) {
    const auto it = closed.find(p);
    return it != closed.end() && it->second.contains(v);
  };
  for (const auto& [p, p_views] : by_view) {
    for (const auto& [v, p_set] : p_views) {
      if (!is_closed(p, v)) continue;
      for (const auto& [q, q_views] : by_view) {
        if (q <= p) continue;
        const auto qv = q_views.find(v);
        if (qv == q_views.end() || !is_closed(q, v)) continue;
        if (p_set != qv->second) {
          std::ostringstream os;
          os << p << " and " << q << " delivered different sets in view v"
             << v << " (" << p_set.size() << " vs " << qv->second.size()
             << " messages; strict VS violated)";
          violations.push_back(os.str());
        }
      }
    }
  }
  return violations;
}

}  // namespace svs::core
