#include "core/node.hpp"

#include <algorithm>
#include <utility>

#include "metrics/stats.hpp"
#include "util/pool.hpp"

namespace svs::core {
namespace {

/// splitmix64 finalizer — the same seed-free mixing the runtime::HashRing
/// placement uses, so the digest ring's member order is deterministic
/// across platforms and runs.
std::uint64_t ring_mix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace

Node::Node(sim::Simulator& simulator, net::Transport& network,
           fd::FailureDetector& detector, net::ProcessId self, View initial,
           NodeConfig config, NodeObserver* observer)
    : sim_(simulator),
      net_(network),
      fd_(detector),
      self_(self),
      config_(std::move(config)),
      observer_(observer),
      view_(std::move(initial)),
      queue_(config_.relation, self, observer,
             config_.indexed_delivery_queue),
      consensus_mux_(self) {
  SVS_REQUIRE(config_.relation != nullptr, "a relation oracle is required");
  SVS_REQUIRE(view_.contains(self_), "initial view must contain this node");
  // This node's own channel anchor: its covered frontier starts just below
  // its first multicast of the view (seqs start at 1, so the anchor is 0).
  stability_.set_anchor(self_, view_first_seq_ - 1);
  stability_.clear_dirty();  // nothing to gossip until traffic flows
  net_.attach(self_, *this);
  net_.subscribe_backlog_drain(self_, [this] { notify_unblocked(); });
  // t7's guard re-evaluates whenever the suspect set changes.
  fd_.subscribe([this] { try_propose(); });
  // The first view notification, so applications always learn membership
  // from the delivery stream.
  queue_.push_view(view_);
  compute_ring_successors();
  // Classic fixed-cadence mode sends a round every interval from the start
  // and never parks; quiescent mode arms only when there is something to
  // report.
  if (!config_.quiescent) arm_stability_gossip();
}

// ---------------------------------------------------------------------------
// digest ring (DESIGN.md §11)
// ---------------------------------------------------------------------------

bool Node::ring_mode() const {
  return config_.digest_ring_threshold != 0 &&
         config_.digest_ring_fanout != 0 &&
         view_.size() >= config_.digest_ring_threshold;
}

void Node::compute_ring_successors() {
  ring_successors_.clear();
  if (!ring_mode()) return;
  // Deterministic ring: members ordered by their splitmix64 hash (id as
  // tie-break), successors are the next fanout members after self.  Every
  // member computes the same ring from the agreed view, no coordination.
  std::vector<net::ProcessId> ring(view_.members().begin(),
                                   view_.members().end());
  std::sort(ring.begin(), ring.end(),
            [](net::ProcessId a, net::ProcessId b) {
              const auto ha = ring_mix(a.value());
              const auto hb = ring_mix(b.value());
              if (ha != hb) return ha < hb;
              return a < b;
            });
  const auto self_pos = std::find(ring.begin(), ring.end(), self_);
  SVS_ASSERT(self_pos != ring.end(), "this node is in its own view");
  const std::size_t start =
      static_cast<std::size_t>(self_pos - ring.begin());
  const std::size_t fanout =
      std::min(config_.digest_ring_fanout, ring.size() - 1);
  ring_successors_.reserve(fanout);
  for (std::size_t i = 1; i <= fanout; ++i) {
    ring_successors_.push_back(ring[(start + i) % ring.size()]);
  }
}

StabilityDigestMessage::Row Node::make_relay_row(net::ProcessId origin) const {
  StabilityDigestMessage::Row row;
  row.origin = origin;
  row.anchor = stability_.channel_anchor(origin);
  const auto& reports = stability_.peer_reports();
  const auto report = reports.find(origin);
  if (report != reports.end()) {
    row.seen.reserve(report->second.size());
    for (const auto& [sender, seq] : report->second) {
      row.seen.emplace_back(sender, seq);
    }
  }
  const auto debts = relay_debts_.find(origin);
  if (debts != relay_debts_.end()) {
    row.debts.reserve(debts->second.size());
    for (const auto& [seq, cover] : debts->second) {
      row.debts.push_back(PurgeDebt{seq, cover});
    }
  }
  return row;
}

void Node::retain_relay_debts(net::ProcessId origin,
                              const StabilityMessage::Debts& debts) {
  if (debts.empty()) return;
  auto& retained = relay_debts_[origin];
  for (const auto& debt : debts) {
    retained.try_emplace(debt.seq, debt.cover_seq);
  }
}

void Node::handle_stability_digest(
    net::ProcessId from,
    const std::shared_ptr<const StabilityDigestMessage>& m) {
  (void)from;
  if (excluded_ || m->view() != view_.id()) return;  // stale or early; drop
  bool any_news = false;
  for (const auto& row : m->rows()) {
    if (row.origin == self_) continue;  // nobody relays our state to us
    // Each row merges exactly like the origin's own gossip round would —
    // idempotent, commutative max/union merges, so multi-hop relay order
    // never matters.
    bool news = false;
    if (row.anchor.has_value()) {
      news |= stability_.set_anchor(row.origin, *row.anchor);
    }
    news |= stability_.merge_debts(row.origin, row.debts);
    news |= stability_.merge_report(row.origin, row.seen);
    retain_relay_debts(row.origin, row.debts);
    if (news) {
      dirty_rows_.insert(row.origin);
      any_news = true;
    }
  }
  collect_stable();
  if (stability_.dirty() || !dirty_rows_.empty()) {
    note_gossip_progress();
    arm_stability_gossip();
    return;
  }
  consider_refresh(any_news);
}

// ---------------------------------------------------------------------------
// t1 — deliver
// ---------------------------------------------------------------------------

std::optional<Delivery> Node::try_deliver() {
  auto entry = queue_.pop_front();
  if (!entry.has_value()) return std::nullopt;

  if (entry->data != nullptr) {
    ++stats_.delivered_data;
    if (entry->data->view() == view_.id()) {
      queue_.record_delivered(entry->data);
    } else {
      // Remnant of a previous view (its id left the accepted set at install).
    }
    if (config_.delivery_capacity != 0) {
      net_.resume(self_);   // space freed: stalled links may retry
      notify_unblocked();   // the producer's self-copy may fit now
    }
    if (observer_ != nullptr) observer_->on_deliver(self_, entry->data);
    return Delivery{DataDelivery{std::move(entry->data)}};
  }

  SVS_ASSERT(entry->view.has_value(), "queue entry is neither data nor view");
  const View& v = *entry->view;
  if (v.contains(self_)) {
    if (observer_ != nullptr) observer_->on_install(self_, v);
    return Delivery{ViewDelivery{v}};
  }
  const ViewId last(v.id().value() - 1);
  if (observer_ != nullptr) observer_->on_excluded(self_, last);
  return Delivery{ExclusionDelivery{last}};
}

// ---------------------------------------------------------------------------
// t2 — multicast
// ---------------------------------------------------------------------------

bool Node::can_multicast() const {
  if (change_.blocked() || excluded_ || !view_.contains(self_)) return false;
  if (config_.out_capacity != 0) {
    for (const auto peer : view_.members()) {
      if (peer == self_) continue;
      if (net_.data_backlog(self_, peer) >= config_.out_capacity) return false;
    }
  }
  if (config_.delivery_capacity != 0 &&
      queue_.data_count() + 1 > config_.delivery_capacity) {
    return false;
  }
  return true;
}

std::optional<std::uint64_t> Node::multicast(PayloadPtr payload,
                                             obs::Annotation annotation) {
  if (change_.blocked() || excluded_ || !view_.contains(self_)) {
    ++stats_.multicast_blocked;
    return std::nullopt;
  }

  const auto m = util::pool_shared<DataMessage>(
      self_, next_seq_, view_.id(), std::move(annotation), std::move(payload));

  // Flow control (§5.3) first: a full outgoing buffer towards any member,
  // or a full local delivery queue, blocks the producer.  Admission
  // accounts for the space this message's own purging would free, but only
  // *counts* — nothing is evicted before the commit point below, so a
  // refused multicast leaves every buffer intact and the messages the
  // never-sent covering message would have obsoleted still flow.
  if (config_.out_capacity != 0) {
    for (const auto peer : view_.members()) {
      if (peer == self_) continue;
      const std::size_t backlog = net_.data_backlog(self_, peer);
      if (backlog < config_.out_capacity) continue;
      const std::size_t victims =
          config_.purge_outgoing ? count_outgoing_victims(peer, *m) : 0;
      if (backlog - victims >= config_.out_capacity) {
        ++stats_.multicast_blocked;
        return std::nullopt;
      }
    }
  }
  std::size_t self_victims = 0;
  if (config_.purge_delivery_queue) {
    self_victims = queue_.count_victims(*m, view_.id());
  }
  if (config_.delivery_capacity != 0 &&
      queue_.data_count() + 1 - self_victims > config_.delivery_capacity) {
    ++stats_.multicast_blocked;
    return std::nullopt;
  }

  // Committed: assign the sequence number and go.
  ++next_seq_;
  ++stats_.multicasts;
  if (observer_ != nullptr) observer_->on_multicast(self_, m);

  // Sender-side semantic purging ([22], enabled for the semantic protocol):
  // enqueueing a new message evicts the messages it covers from the
  // outgoing buffers, which is what lets a slow receiver's buffer drain
  // without being consumed.  The purge is windowed (DESIGN.md §2): only
  // queued entries with seq in [coverage_floor(m), seq(m)) are visited —
  // the window is per-message, so it is resolved once before the fan-out
  // (for a message that can cover nothing, the whole loop vanishes).
  if (config_.purge_outgoing) {
    const auto [floor_seq, below_seq] = outgoing_purge_window(*m);
    if (floor_seq < below_seq) {
      for (const auto peer : view_.members()) {
        if (peer == self_) continue;
        purge_outgoing_covered(peer, m, floor_seq, below_seq);
      }
    }
  }

  // addToTail(to-deliver, m); purge(to-deliver) — the sender delivers its
  // own messages, so they are flushed to others if it survives into the
  // next view.  note_seen runs before the piggyback attach so the delta
  // section captures this very message's frontier advance, and the attach
  // runs before the send so the section is part of the encoded frame.
  if (config_.purge_delivery_queue) queue_.purge_with(m, view_.id());
  queue_.push_data(m);
  note_seen(*m);
  maybe_attach_piggyback(*m);
  net_.multicast(self_, view_.members(), m, net::Lane::data);
  notify_deliverable();
  return m->seq();
}

// ---------------------------------------------------------------------------
// sender-side purging helpers — the windowed outgoing fast path
// ---------------------------------------------------------------------------

std::pair<std::uint64_t, std::uint64_t> Node::outgoing_purge_window(
    const DataMessage& m) const {
  // Per-sender relations can only cover same-sender seqs in
  // [coverage_floor, seq); anything else may relate any two of this
  // sender's queued messages, so the whole queue is the window.
  if (config_.relation->per_sender()) {
    return {config_.relation->coverage_floor(m.ref()), m.seq()};
  }
  return {0, std::numeric_limits<std::uint64_t>::max()};
}

bool Node::covers_outgoing(const net::MessagePtr& queued, const DataMessage& m,
                           const obs::MessageRef& mref) const {
  if (queued->type() != net::MessageType::data) return false;
  const auto* dm = static_cast<const DataMessage*>(queued.get());
  return dm->view() == m.view() && config_.relation->covers(mref, dm->ref());
}

std::size_t Node::count_outgoing_victims(net::ProcessId peer,
                                         const DataMessage& m) {
  const auto [floor_seq, below_seq] = outgoing_purge_window(m);
  const auto mref = m.ref();
  return net_.count_outgoing_window(
      self_, peer, floor_seq, below_seq,
      [&](const net::MessagePtr& queued) {
        return covers_outgoing(queued, m, mref);
      });
}

void Node::purge_outgoing_covered(net::ProcessId peer, const DataMessagePtr& m,
                                  std::uint64_t floor_seq,
                                  std::uint64_t below_seq) {
  const auto mref = m->ref();
  net_.purge_outgoing_window(
      self_, peer, floor_seq, below_seq,
      [&](const net::MessagePtr& queued) {
        if (!covers_outgoing(queued, *m, mref)) return false;
        const auto victim =
            std::static_pointer_cast<const DataMessage>(queued);
        // The purge becomes a wire fact: the debt (victim -> m) rides the
        // stability gossip, so receivers can tell "purged with live cover"
        // from "lost" when the victim's seq is a gap below their mark
        // (DESIGN.md §3/§7).  One debt per seq, however many buffers this
        // multicast purges it from.
        if (stability_.record_own_debt(victim->seq(), m->seq())) {
          ++stats_.debts_recorded;
        }
        if (observer_ != nullptr) observer_->on_purge(self_, victim, m);
        return true;
      });
}

// ---------------------------------------------------------------------------
// t3 — receive data
// ---------------------------------------------------------------------------

bool Node::handle_data(net::ProcessId from, const DataMessagePtr& m) {
  if (excluded_) return true;  // consume and ignore: no longer in the group

  if (m->view().value() < view_.id().value()) {
    // Sent in a superseded view; the agreed pred-view already settled what
    // is delivered there.
    ++stats_.stale_view_drops;
    return true;
  }
  // A piggybacked stability section of the current view is usable as soon
  // as the view matches — even when the data itself is refused or dropped
  // as duplicate below (merging is idempotent, so a flow-control redelivery
  // merging twice is harmless).  Future-view piggybacks wait with their
  // message; past-view ones died with the early return above.
  if (m->view() == view_.id()) merge_piggyback(from, *m);

  if (change_.blocked() || m->view().value() > view_.id().value()) {
    // Blocked (t3's ¬blocked guard) or sent in a view this node has not
    // installed yet: leave it in the channel until the view change settles.
    ++stats_.refused_data;
    return false;
  }

  SVS_ASSERT(view_.contains(from), "DATA in cv from a non-member");

  // Network-level duplication (an injected fault, or a conservative
  // retransmitter in a real stack) is tolerated: FIFO channels deliver the
  // copy after the original, so a current-view arrival at or below the
  // per-sender reception high-water mark can only be a duplicate.  The
  // accepted() probe alone would not do — the original may have been
  // suppressed as obsolete, or already stability-collected.
  const auto frontier = stability_.high_water(m->sender());
  if ((frontier.has_value() && m->seq() <= *frontier) ||
      queue_.accepted(m->id())) {
    ++stats_.duplicate_drops;
    return true;  // consumed; the original already went through t3
  }

  // t3's test: already covered by an accepted message?
  if (queue_.covered_by_accepted(*m, view_.id())) {
    ++stats_.suppressed_obsolete;
    note_seen(*m);
    return true;  // consumed; never enters the queue
  }

  // Count the space its purging would free before checking capacity.
  std::size_t victims = 0;
  if (config_.purge_delivery_queue) {
    victims = queue_.count_victims(*m, view_.id());
  }
  if (config_.delivery_capacity != 0 &&
      queue_.data_count() + 1 - victims > config_.delivery_capacity) {
    ++stats_.refused_data;
    return false;  // ceases to accept from the network (§5.3)
  }

  if (victims > 0) queue_.purge_with(m, view_.id());
  queue_.push_data(m);
  note_seen(*m);
  notify_deliverable();
  return true;
}

void Node::note_seen(const DataMessage& m) {
  stability_.note_seen(m.sender(), m.seq());
  note_gossip_progress();
  arm_stability_gossip();
}

void Node::note_gossip_progress() {
  clean_rounds_ = 0;
  fruitless_heartbeats_ = 0;
  refresh_spent_ = false;
}

// ---------------------------------------------------------------------------
// stability tracking — GC of the delivered history (§2.1)
// ---------------------------------------------------------------------------

void Node::arm_stability_gossip() {
  if (stability_armed_ || excluded_ ||
      config_.stability_interval <= sim::Duration::zero()) {
    return;
  }
  stability_armed_ = true;
  sim_.schedule_after(config_.stability_interval, [this] {
    stability_armed_ = false;
    gossip_stability();
  });
}

void Node::gossip_stability() {
  if (excluded_) return;

  // Quiescent mode (DESIGN.md §10): a clean timer firing is *suppressed* —
  // silence tells the peers "nothing changed", which is sound because
  // frontiers are monotone and merging is idempotent (a peer that misses
  // nothing can learn nothing from an empty round).  Silence is bounded:
  // while convergence is outstanding (retained history, live debts) every
  // silent_round_period-th clean round escalates to a full-vector
  // heartbeat, which repairs any lost round; heartbeats that observe no
  // progress are budgeted so a floor held down by a crashed member (which
  // only a view change can lift) parks the timer instead of ticking
  // forever.  Classic mode ships the (possibly empty) round every interval
  // — the pre-quiescence fixed-cadence baseline.
  bool force_full = false;
  const bool relay_news = ring_mode() && !dirty_rows_.empty();
  if (!stability_.dirty() && !relay_news && config_.quiescent) {
    if (refresh_pending_) {
      refresh_pending_ = false;
      force_full = true;  // anti-entropy response to a still-gossiping peer
      ++stats_.gossip_heartbeats;
    } else {
      // Floors may already cover messages the application consumed after
      // the last merge (nothing re-runs collection on local delivery) —
      // sweep before judging convergence, or a fully-stable node would
      // tick suppressed rounds against its own stale retained count.
      collect_stable();
      const bool converged = queue_.delivered_retained() == 0 &&
                             stability_.own_debts() == 0 &&
                             stability_.merged_debts() == 0;
      if (converged) {
        // Nothing to report and nothing outstanding: true silence.  The
        // timer parks; the next delivery, merge or install re-arms it.
        clean_rounds_ = 0;
        fruitless_heartbeats_ = 0;
        return;
      }
      ++clean_rounds_;
      if (clean_rounds_ % config_.silent_round_period != 0) {
        ++stats_.gossip_rounds_suppressed;
        metrics::counters::note_gossip_round_suppressed();
        arm_stability_gossip();
        return;
      }
      const bool progressed = queue_.delivered_retained() != hb_retained_ ||
                              stability_.own_debts() != hb_own_debts_ ||
                              stability_.merged_debts() != hb_merged_debts_;
      if (!progressed && fruitless_heartbeats_ >= config_.heartbeat_budget) {
        ++stats_.gossip_rounds_suppressed;
        metrics::counters::note_gossip_round_suppressed();
        return;  // park: only a progress event re-arms and resets the budget
      }
      fruitless_heartbeats_ = progressed ? 0 : fruitless_heartbeats_ + 1;
      hb_retained_ = queue_.delivered_retained();
      hb_own_debts_ = stability_.own_debts();
      hb_merged_debts_ = stability_.merged_debts();
      ++stats_.gossip_heartbeats;
      force_full = true;
    }
  }

  // Delta gossip: frontiers are monotone, merge_report is a per-entry max
  // and debt merging is a union, so shipping only the entries that changed
  // since the last round is equivalent to a full snapshot — O(changed)
  // instead of O(n) bytes per peer, O(n²) -> O(changes) gossip bytes
  // group-wide.  A receiver drops rounds sent across a view mismatch
  // (install skew), which would lose delta entries for good, so the first
  // rounds of a view and every kFullGossipPeriod-th thereafter ship the
  // full vector and the full debt ledger — any dropped delta is repaired
  // by the next full round (an incomplete debt picture only under-explains
  // gaps, which is conservative: frontiers lag, collection waits).
  constexpr std::uint64_t kFullGossipPeriod = 8;
  const bool full = force_full || gossip_round_ < 2 ||
                    gossip_round_ % kFullGossipPeriod == 0;
  ++gossip_round_;
  auto round = full ? stability_.take_snapshot() : stability_.take_delta();
  const std::uint64_t anchor = view_first_seq_ - 1;
  stats_.debt_entries_gossiped += round.debts.size();
  for (const auto& debt : round.debts) {
    stats_.debt_bytes_gossiped += StabilityMessage::debt_wire_size(debt);
  }
  if (ring_mode()) {
    // Ring digest (DESIGN.md §11): the self row is exactly the all-to-all
    // round's content, followed by the relayed rows that changed since the
    // last digest (every known row on full rounds, the self-healing
    // analogue of the full-vector gossip).  Shipped to O(fanout) ring
    // successors instead of the whole view.
    StabilityDigestMessage::Rows rows;
    rows.push_back(StabilityDigestMessage::Row{
        self_, anchor, std::move(round.seen), std::move(round.debts)});
    if (full) {
      for (const auto& [origin, report] : stability_.peer_reports()) {
        if (origin == self_) continue;
        (void)report;
        rows.push_back(make_relay_row(origin));
      }
    } else {
      for (const auto origin : dirty_rows_) {
        if (origin == self_) continue;
        rows.push_back(make_relay_row(origin));
      }
    }
    dirty_rows_.clear();
    ++stats_.digest_rounds;
    stats_.digest_rows_sent += rows.size();
    const auto digest = util::pool_shared<StabilityDigestMessage>(
        view_.id(), std::move(rows));
    for (const auto successor : ring_successors_) {
      net_.send(self_, successor, digest, net::Lane::control);
    }
    arm_stability_gossip();  // keep gossiping while traffic flows
    return;
  }

  const auto m = util::pool_shared<StabilityMessage>(
      view_.id(), anchor, std::move(round.seen), std::move(round.debts));
  // Bytes a full-snapshot gossip would have cost (exact encoded size of the
  // current reception vector and debt ledger, aggregated incrementally by
  // the ledger — nothing is materialized on the delta path), credited
  // across the fan-out.
  const std::size_t full_size =
      full ? m->wire_size()
           : StabilityMessage::wire_size_for_entries(
                 view_.id(), anchor, stability_.tracked_senders(),
                 stability_.entry_wire_bytes(), stability_.own_debts(),
                 stability_.debt_wire_bytes());
  net_.note_gossip_bytes_saved(
      static_cast<std::uint64_t>(full_size - m->wire_size()) *
      (view_.size() - 1));
  net_.multicast(self_, view_.members(), m, net::Lane::control);
  arm_stability_gossip();  // keep gossiping while traffic flows
}

void Node::handle_stability(net::ProcessId from,
                            const std::shared_ptr<const StabilityMessage>& m) {
  if (excluded_ || m->view() != view_.id()) return;  // stale or early; drop
  bool news = stability_.set_anchor(from, m->anchor());
  news |= stability_.merge_debts(from, m->debts());
  news |= stability_.merge_report(from, m->seen());
  if (ring_mode() && news) {
    // The sender's round is relayable knowledge: its row changed here.
    dirty_rows_.insert(from);
    retain_relay_debts(from, m->debts());
  }
  collect_stable();
  // Merging can advance this node's own covered frontiers (a debt just
  // explained a gap) — that is reportable state, so the gossip must run
  // again even if no data arrives in the meantime.
  if (stability_.dirty()) {
    note_gossip_progress();
    arm_stability_gossip();
    return;
  }
  consider_refresh(news);
}

void Node::consider_refresh(bool news) {
  // Anti-entropy refresh (quiescent mode): a round that taught this node
  // *nothing* is a peer re-sending state we already merged — a stuck peer,
  // most likely missing this node's report (lost ahead of a silent
  // stretch) and heartbeating against a floor that cannot move without
  // it.  Answer with one forced full round, at most once per progress
  // epoch (refresh_spent_) and once per heartbeat window (last_refresh_),
  // so mutual refreshes between two stuck nodes terminate instead of
  // ping-ponging forever.  A round carrying news never triggers a refresh:
  // mid-traffic rounds always advance something here, and the sender will
  // get this node's state from its ordinary dirty rounds.
  if (config_.quiescent && !news && !refresh_spent_ &&
      config_.stability_interval > sim::Duration::zero() &&
      sim_.now() - last_refresh_ >=
          config_.stability_interval *
              static_cast<std::int64_t>(config_.silent_round_period)) {
    refresh_spent_ = true;
    refresh_pending_ = true;
    last_refresh_ = sim_.now();
    arm_stability_gossip();
  }
}

void Node::collect_stable() {
  // A message is stable once every current member's covered frontier
  // passed it: each member then provably received it or received a cover
  // resolved through the sender-announced purge debts, so no future flush
  // can need it (DESIGN.md §3/§7).  One rule for every relation.  Any
  // member that has not reported yet (or a crashed one whose reports
  // stopped) holds the floor down — stability then waits for the view
  // change that excludes it, as in a real group stack.
  if (queue_.delivered_retained() != 0) {
    stats_.stability_gcs += queue_.collect_delivered(
        [this](net::ProcessId sender) {
          return stability_.floor_of(sender, view_, self_);
        });
  }
  // Debts whose seq every member's frontier passed retire with the
  // messages they explained — the ledger stays bounded by the un-stable
  // window.
  stats_.debts_collected += stability_.collect_debts(view_, self_);
}

void Node::maybe_attach_piggyback(DataMessage& m) {
  // Quiescent mode rides the stability delta on outgoing DATA: under
  // traffic the group's stability knowledge spreads at data latency with a
  // few extra bytes per message, so the standalone gossip lane stays
  // suppressed.  Rate-limited to one section per stability_interval — the
  // cadence a standalone round would have had — so a flood does not pay
  // section bytes on every message.  Runs post-commit, pre-encode: the
  // message has its final seq but no cached wire size or frame yet.
  if (!config_.quiescent ||
      config_.stability_interval <= sim::Duration::zero() ||
      !stability_.dirty()) {
    return;
  }
  const auto now = sim_.now();
  if (piggyback_sent_ && now - last_piggyback_ < config_.stability_interval) {
    return;
  }
  piggyback_sent_ = true;
  last_piggyback_ = now;
  auto round = stability_.take_delta();
  StabilityPiggyback pb;
  pb.anchor = view_first_seq_ - 1;
  pb.seen = std::move(round.seen);
  pb.debts = std::move(round.debts);
  stats_.debt_entries_gossiped += pb.debts.size();
  for (const auto& debt : pb.debts) {
    stats_.debt_bytes_gossiped += purge_debt_wire_size(debt);
  }
  ++stats_.frontier_piggybacks;
  metrics::counters::note_frontier_piggyback();
  m.set_piggyback(std::move(pb));
}

void Node::merge_piggyback(net::ProcessId from, const DataMessage& m) {
  const auto& pb = m.piggyback();
  if (!pb.has_value()) return;
  // Same merge as a standalone round of the same view — idempotent and
  // commutative, so piggyback-vs-gossip arrival order never matters.
  bool news = stability_.set_anchor(from, pb->anchor);
  news |= stability_.merge_debts(from, pb->debts);
  news |= stability_.merge_report(from, pb->seen);
  if (ring_mode() && news) {
    dirty_rows_.insert(from);
    retain_relay_debts(from, pb->debts);
  }
  collect_stable();
  if (stability_.dirty()) {
    note_gossip_progress();
    arm_stability_gossip();
  }
}

// ---------------------------------------------------------------------------
// t4 — trigger view change
// ---------------------------------------------------------------------------

bool Node::request_view_change(const std::vector<net::ProcessId>& leave) {
  if (change_.blocked() || excluded_) return false;
  ++stats_.view_changes_initiated;
  const auto init = std::make_shared<InitMessage>(view_.id(), leave);
  net_.multicast(self_, view_.members(), init, net::Lane::control,
                 /*skip_self=*/false);
  return true;
}

// ---------------------------------------------------------------------------
// t5 — first INIT: block, emit PRED
// ---------------------------------------------------------------------------

void Node::handle_init(net::ProcessId from,
                       const std::shared_ptr<const InitMessage>& m) {
  if (excluded_) return;
  if (m->view().value() < view_.id().value()) return;  // superseded
  if (m->view().value() > view_.id().value()) {
    change_.defer(m->view().value(), from, m);
    return;
  }
  if (change_.blocked()) return;  // only the first INIT is acted upon

  change_.begin(*m, view_, sim_.now());

  // Re-check the proposal guard when the suspected-member pred grace runs
  // out: every PRED arrival re-checks it too, but if the last awaited PRED
  // never comes (the member really is dead) nothing else would.  A stale
  // timer is harmless — ready_to_propose re-validates everything,
  // including the *current* change's own start time.
  if (config_.pred_grace > sim::Duration::zero()) {
    sim_.schedule_after(config_.pred_grace, [this] { try_propose(); });
  }

  // Forward so every correct process initiates (t5).
  if (from != self_) {
    net_.multicast(self_, view_.members(), m, net::Lane::control,
                   /*skip_self=*/false);
  }

  const auto pred = std::make_shared<PredMessage>(view_.id(), local_pred());
  net_.multicast(self_, view_.members(), pred, net::Lane::control,
                 /*skip_self=*/false);

  // Opened last: the Mux may have buffered the decision already (this node
  // can be the last to hear about the change), in which case opening the
  // instance installs the next view synchronously — all t5 work must be
  // done by then.
  open_consensus();
}

std::vector<DataMessagePtr> Node::local_pred() const {
  // {[DATA, v, d] ∈ (delivered ∪ to-deliver) : v = cv}, in delivery order.
  std::vector<DataMessagePtr> result;
  queue_.append_local_pred(view_.id(), result);
  return result;
}

// ---------------------------------------------------------------------------
// t6 — accumulate PRED
// ---------------------------------------------------------------------------

void Node::handle_pred(net::ProcessId from,
                       const std::shared_ptr<const PredMessage>& m) {
  if (excluded_) return;
  if (m->view().value() < view_.id().value()) return;
  if (m->view().value() > view_.id().value()) {
    change_.defer(m->view().value(), from, m);
    return;
  }
  change_.add_pred(from, *m);
  try_propose();
}

// ---------------------------------------------------------------------------
// t7 — propose and install
// ---------------------------------------------------------------------------

void Node::try_propose() {
  if (excluded_ ||
      !change_.ready_to_propose(view_, fd_, sim_.now(), config_.pred_grace)) {
    return;
  }

  auto* instance =
      consensus_mux_.find(consensus::InstanceId(view_.id().value()));
  SVS_ASSERT(instance != nullptr, "consensus instance must be open by t5");
  instance->propose(change_.take_proposal(view_));
}

void Node::open_consensus() {
  consensus_mux_.open(
      net_, fd_, consensus::InstanceId(view_.id().value()), view_.members(),
      [this](const consensus::ValuePtr& value) {
        const auto decided =
            std::dynamic_pointer_cast<const ProposalValue>(value);
        SVS_ASSERT(decided != nullptr,
                   "view-change consensus decided a foreign value type");
        install(*decided);
      });
}

void Node::install(const ProposalValue& decided) {
  SVS_ASSERT(change_.blocked() && !excluded_, "install outside a view change");
  SVS_ASSERT(decided.next_view().id() == view_.id().next(),
             "consensus decided a non-successor view");

  // Flush: append the agreed messages this process is missing, in
  // (sender, seq) order.  A message is skipped when (a) it is still here,
  // (b) its §3.2 obligation is already discharged — it was received here
  // (the exact reception record, NOT the raw high-water mark: sender-side
  // purging leaves gaps below the mark that were never received), or a
  // received message covers it through the sender-announced purge-debt
  // chain (a debt-known gap whose live cover arrived needs no retro
  // repair) — or (c) an accepted message covers it (t3's own test).
  // Capacity is not enforced here: the flush uses the reserved view-change
  // space (§5.3).
  for (const auto& m : decided.pred_view()) {
    if (m->view() != view_.id()) continue;  // defensive; all should be cv
    if (queue_.accepted(m->id())) continue;
    if (stability_.obligation_met(m->sender(), m->seq())) continue;
    if (queue_.covered_by_accepted(*m, view_.id())) continue;
    queue_.push_data_flush(m);
    note_seen(*m);
    if (observer_ != nullptr) observer_->on_flush_in(self_, m);
    ++stats_.flushed_in;
  }
  if (config_.purge_delivery_queue) queue_.purge_full(view_.id());

  // addToTail(to-deliver, [VIEW, next-view]).
  queue_.push_view(decided.next_view());
  notify_deliverable();

  ++stats_.views_installed;
  stats_.last_flush_total = decided.pred_view().size();
  stats_.last_change_latency = sim_.now() - change_.started_at();

  if (!decided.next_view().contains(self_)) {
    excluded_ = true;  // stays blocked; the group goes on without this node
    return;
  }

  view_ = decided.next_view();
  change_.reset();
  queue_.reset_view();
  stability_.reset();
  dirty_rows_.clear();   // relayed rows are per-view, like the ledger
  relay_debts_.clear();
  compute_ring_successors();
  view_first_seq_ = next_seq_;  // this view's seqs start here
  stability_.set_anchor(self_, view_first_seq_ - 1);
  stability_.clear_dirty();  // an anchor alone is not worth a gossip round
  gossip_round_ = 0;  // per-view: early rounds ship full vectors again
  note_gossip_progress();  // a view change is churn: silence starts over
  refresh_pending_ = false;
  piggyback_sent_ = false;  // the new view re-anchors the piggyback cadence
  if (!config_.quiescent) arm_stability_gossip();

  // Outgoing messages of superseded views would be discarded on arrival;
  // reclaim their buffer space now (this is what frees the buffers that
  // were saturated towards a crashed or expelled member).
  net_.drop_outgoing(self_, [nv = view_.id()](const net::MessagePtr& queued) {
    return queued->type() == net::MessageType::data &&
           static_cast<const DataMessage*>(queued.get())->view() != nv;
  });

  for (const auto& callback : install_callbacks_) callback(view_);
  replay_pending_control();
  net_.resume(self_);  // accept data again (stale ones get discarded)
  notify_unblocked();
}

void Node::replay_pending_control() {
  // Drop anything for superseded views, replay what targets the new view.
  // A replay may install a further view synchronously (a buffered
  // decision); its own install() replays the batches that became due.
  const auto batch = change_.take_due(view_.id().value());
  for (const auto& [from, message] : batch) {
    switch (message->type()) {
      case net::MessageType::init:
        handle_init(from,
                    std::static_pointer_cast<const InitMessage>(message));
        break;
      case net::MessageType::pred:
        handle_pred(from,
                    std::static_pointer_cast<const PredMessage>(message));
        break;
      default:
        SVS_UNREACHABLE("deferred control batch holds only INIT/PRED");
    }
  }
}

// ---------------------------------------------------------------------------
// wiring
// ---------------------------------------------------------------------------

bool Node::on_message(net::ProcessId from, const net::MessagePtr& message,
                      net::Lane lane) {
  // Switch on the wire-level type tag — one predicted branch per arrival,
  // no RTTI probes on the receive path.
  if (lane == net::Lane::data) {
    SVS_ASSERT(message->type() == net::MessageType::data,
               "non-data message on the data lane");
    return handle_data(from,
                       std::static_pointer_cast<const DataMessage>(message));
  }
  switch (message->type()) {
    case net::MessageType::init:
      handle_init(from, std::static_pointer_cast<const InitMessage>(message));
      return true;
    case net::MessageType::pred:
      handle_pred(from, std::static_pointer_cast<const PredMessage>(message));
      return true;
    case net::MessageType::stability:
      handle_stability(
          from, std::static_pointer_cast<const StabilityMessage>(message));
      return true;
    case net::MessageType::stability_digest:
      handle_stability_digest(
          from,
          std::static_pointer_cast<const StabilityDigestMessage>(message));
      return true;
    case net::MessageType::consensus: {
      const bool consumed = consensus_mux_.on_message(from, message);
      SVS_ASSERT(consumed, "consensus traffic must be consumed by the mux");
      return true;
    }
    default:
      if (control_sink_ != nullptr) {
        control_sink_(from, message);
        return true;
      }
      SVS_UNREACHABLE("unroutable control message");
  }
}

std::vector<net::ProcessId> Node::saturated_peers() const {
  std::vector<net::ProcessId> result;
  if (config_.out_capacity == 0) return result;
  for (const auto peer : view_.members()) {
    if (peer == self_) continue;
    if (net_.data_backlog(self_, peer) >= config_.out_capacity) {
      result.push_back(peer);
    }
  }
  return result;
}

void Node::set_unblocked_callback(std::function<void()> callback) {
  unblocked_callback_ = std::move(callback);
}

void Node::subscribe_install(std::function<void(const View&)> callback) {
  SVS_REQUIRE(callback != nullptr, "install callback must be callable");
  install_callbacks_.push_back(std::move(callback));
}

void Node::set_control_sink(
    std::function<void(net::ProcessId, const net::MessagePtr&)> sink) {
  control_sink_ = std::move(sink);
}

void Node::set_deliverable_callback(std::function<void()> callback) {
  deliverable_callback_ = std::move(callback);
}

void Node::notify_deliverable() {
  if (deliverable_callback_ == nullptr || deliverable_notify_pending_) return;
  deliverable_notify_pending_ = true;
  sim_.schedule_after(sim::Duration::zero(), [this] {
    deliverable_notify_pending_ = false;
    if (deliverable_callback_ != nullptr && !queue_.empty()) {
      deliverable_callback_();
    }
  });
}

void Node::notify_unblocked() {
  if (unblocked_callback_ == nullptr || unblock_notify_pending_) return;
  unblock_notify_pending_ = true;
  // Deferred to its own event: the trigger often fires mid-operation
  // (e.g. inside a purge during multicast), and producers re-enter
  // multicast from the callback.
  sim_.schedule_after(sim::Duration::zero(), [this] {
    unblock_notify_pending_ = false;
    if (unblocked_callback_ != nullptr) unblocked_callback_();
  });
}

}  // namespace svs::core
