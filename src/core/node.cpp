#include "core/node.hpp"

#include <algorithm>
#include <utility>

namespace svs::core {

Node::Node(sim::Simulator& simulator, net::Network& network,
           fd::FailureDetector& detector, net::ProcessId self, View initial,
           NodeConfig config, NodeObserver* observer)
    : sim_(simulator),
      net_(network),
      fd_(detector),
      self_(self),
      config_(std::move(config)),
      observer_(observer),
      view_(std::move(initial)),
      consensus_mux_(self) {
  SVS_REQUIRE(config_.relation != nullptr, "a relation oracle is required");
  SVS_REQUIRE(view_.contains(self_), "initial view must contain this node");
  net_.attach(self_, *this);
  net_.subscribe_backlog_drain(self_, [this] { notify_unblocked(); });
  // t7's guard re-evaluates whenever the suspect set changes.
  fd_.subscribe([this] { try_propose(); });
  // The first view notification, so applications always learn membership
  // from the delivery stream.
  to_deliver_.push_back(QueueEntry{nullptr, view_});
}

// ---------------------------------------------------------------------------
// t1 — deliver
// ---------------------------------------------------------------------------

std::optional<Delivery> Node::try_deliver() {
  if (to_deliver_.empty()) return std::nullopt;
  QueueEntry entry = std::move(to_deliver_.front());
  to_deliver_.pop_front();

  if (entry.data != nullptr) {
    SVS_ASSERT(data_count_ > 0, "data count out of sync with queue");
    --data_count_;
    ++stats_.delivered_data;
    if (entry.data->view() == view_.id()) {
      delivered_view_.push_back(entry.data);
    } else {
      // Remnant of a previous view (its id left accepted_ids_ at install).
    }
    if (config_.delivery_capacity != 0) {
      net_.resume(self_);   // space freed: stalled links may retry
      notify_unblocked();   // the producer's self-copy may fit now
    }
    if (observer_ != nullptr) observer_->on_deliver(self_, entry.data);
    return Delivery{DataDelivery{std::move(entry.data)}};
  }

  SVS_ASSERT(entry.view.has_value(), "queue entry is neither data nor view");
  const View& v = *entry.view;
  if (v.contains(self_)) {
    if (observer_ != nullptr) observer_->on_install(self_, v);
    return Delivery{ViewDelivery{v}};
  }
  const ViewId last(v.id().value() - 1);
  if (observer_ != nullptr) observer_->on_excluded(self_, last);
  return Delivery{ExclusionDelivery{last}};
}

// ---------------------------------------------------------------------------
// t2 — multicast
// ---------------------------------------------------------------------------

bool Node::can_multicast() const {
  if (blocked_ || excluded_ || !view_.contains(self_)) return false;
  if (config_.out_capacity != 0) {
    for (const auto peer : view_.members()) {
      if (peer == self_) continue;
      if (net_.data_backlog(self_, peer) >= config_.out_capacity) return false;
    }
  }
  if (config_.delivery_capacity != 0 &&
      data_count_ + 1 > config_.delivery_capacity) {
    return false;
  }
  return true;
}

std::optional<std::uint64_t> Node::multicast(PayloadPtr payload,
                                             obs::Annotation annotation) {
  if (blocked_ || excluded_ || !view_.contains(self_)) {
    ++stats_.multicast_blocked;
    return std::nullopt;
  }

  const auto m = std::make_shared<DataMessage>(
      self_, next_seq_, view_.id(), std::move(annotation), std::move(payload));

  // Sender-side semantic purging ([22], enabled for the semantic protocol):
  // enqueueing a new message evicts the messages it covers from the
  // outgoing buffers, which is what lets a slow receiver's buffer drain
  // without being consumed.
  if (config_.purge_outgoing) {
    for (const auto peer : view_.members()) {
      if (peer == self_) continue;
      net_.purge_outgoing_to(
          self_, peer, [this, &m](const net::MessagePtr& queued) {
            const auto dm =
                std::dynamic_pointer_cast<const DataMessage>(queued);
            if (dm == nullptr || dm->view() != m->view()) return false;
            if (!config_.relation->covers(m->ref(), dm->ref())) return false;
            if (observer_ != nullptr) observer_->on_purge(self_, dm, m);
            return true;
          });
    }
  }

  // Flow control (§5.3): a full outgoing buffer towards any member, or a
  // full local delivery queue, blocks the producer.
  if (config_.out_capacity != 0) {
    for (const auto peer : view_.members()) {
      if (peer == self_) continue;
      if (net_.data_backlog(self_, peer) >= config_.out_capacity) {
        ++stats_.multicast_blocked;
        return std::nullopt;
      }
    }
  }
  std::size_t self_victims = 0;
  if (config_.purge_delivery_queue) {
    for (const auto& e : to_deliver_) {
      if (e.data != nullptr && e.data->view() == m->view() &&
          config_.relation->covers(m->ref(), e.data->ref())) {
        ++self_victims;
      }
    }
  }
  if (config_.delivery_capacity != 0 &&
      data_count_ + 1 - self_victims > config_.delivery_capacity) {
    ++stats_.multicast_blocked;
    return std::nullopt;
  }

  // Committed: assign the sequence number and go.
  ++next_seq_;
  ++stats_.multicasts;
  if (observer_ != nullptr) observer_->on_multicast(self_, m);
  for (const auto peer : view_.members()) {
    if (peer == self_) continue;
    net_.send(self_, peer, m, net::Lane::data);
  }
  // addToTail(to-deliver, m); purge(to-deliver) — the sender delivers its
  // own messages, so they are flushed to others if it survives into the
  // next view.
  if (config_.purge_delivery_queue) purge_queue_with(m);
  to_deliver_.push_back(QueueEntry{m, std::nullopt});
  ++data_count_;
  accepted_ids_.insert(m->id());
  note_seen(*m);
  notify_deliverable();
  return m->seq();
}

// ---------------------------------------------------------------------------
// t3 — receive data
// ---------------------------------------------------------------------------

bool Node::handle_data(net::ProcessId from, const DataMessagePtr& m) {
  if (excluded_) return true;  // consume and ignore: no longer in the group

  if (m->view().value() < view_.id().value()) {
    // Sent in a superseded view; the agreed pred-view already settled what
    // is delivered there.
    ++stats_.stale_view_drops;
    return true;
  }
  if (blocked_ || m->view().value() > view_.id().value()) {
    // Blocked (t3's ¬blocked guard) or sent in a view this node has not
    // installed yet: leave it in the channel until the view change settles.
    ++stats_.refused_data;
    return false;
  }

  SVS_ASSERT(view_.contains(from), "DATA in cv from a non-member");
  SVS_ASSERT(!accepted_ids_.contains(m->id()),
             "FIFO channels must not deliver duplicates");

  // t3's test: already covered by an accepted message?
  if (covered_by_accepted(*m)) {
    ++stats_.suppressed_obsolete;
    note_seen(*m);
    return true;  // consumed; never enters the queue
  }

  // Count the space its purging would free before checking capacity.
  std::size_t victims = 0;
  if (config_.purge_delivery_queue) {
    for (const auto& e : to_deliver_) {
      if (e.data != nullptr && e.data->view() == m->view() &&
          config_.relation->covers(m->ref(), e.data->ref())) {
        ++victims;
      }
    }
  }
  if (config_.delivery_capacity != 0 &&
      data_count_ + 1 - victims > config_.delivery_capacity) {
    ++stats_.refused_data;
    return false;  // ceases to accept from the network (§5.3)
  }

  if (victims > 0) purge_queue_with(m);
  to_deliver_.push_back(QueueEntry{m, std::nullopt});
  ++data_count_;
  accepted_ids_.insert(m->id());
  note_seen(*m);
  notify_deliverable();
  return true;
}

void Node::note_seen(const DataMessage& m) {
  auto& high = seen_seq_[m.sender()];
  high = std::max(high, m.seq());
  stability_dirty_ = true;
  arm_stability_gossip();
}

// ---------------------------------------------------------------------------
// stability tracking — GC of the delivered history (§2.1)
// ---------------------------------------------------------------------------

void Node::arm_stability_gossip() {
  if (stability_armed_ || excluded_ ||
      config_.stability_interval <= sim::Duration::zero()) {
    return;
  }
  stability_armed_ = true;
  sim_.schedule_after(config_.stability_interval, [this] {
    stability_armed_ = false;
    gossip_stability();
  });
}

void Node::gossip_stability() {
  if (excluded_ || !stability_dirty_) return;  // quiesce until new traffic
  stability_dirty_ = false;
  StabilityMessage::Seen seen(seen_seq_.begin(), seen_seq_.end());
  const auto m =
      std::make_shared<StabilityMessage>(view_.id(), std::move(seen));
  for (const auto p : view_.members()) {
    if (p != self_) net_.send(self_, p, m, net::Lane::control);
  }
  arm_stability_gossip();  // keep gossiping while traffic flows
}

void Node::handle_stability(net::ProcessId from,
                            const std::shared_ptr<const StabilityMessage>& m) {
  if (excluded_ || m->view() != view_.id()) return;  // stale or early; drop
  auto& vector = peer_seen_[from];
  for (const auto& [sender, seq] : m->seen()) {
    auto& high = vector[sender];
    high = std::max(high, seq);
  }
  collect_stable();
}

void Node::collect_stable() {
  if (delivered_view_.empty()) return;
  // A message is stable once every current member has received it.  Any
  // member that has not reported yet (or a crashed one whose reports
  // stopped) holds the floor down — stability then waits for the view
  // change that excludes it, as in a real group stack.
  const auto floor_of = [this](net::ProcessId sender) {
    const auto own = seen_seq_.find(sender);
    std::uint64_t floor =
        own == seen_seq_.end() ? 0 : own->second;
    for (const auto p : view_.members()) {
      if (p == self_) continue;
      const auto vec = peer_seen_.find(p);
      if (vec == peer_seen_.end()) return std::uint64_t{0};
      const auto it = vec->second.find(sender);
      const std::uint64_t reported =
          it == vec->second.end() ? 0 : it->second;
      floor = std::min(floor, reported);
    }
    return floor;
  };

  std::map<net::ProcessId, std::uint64_t> floors;
  const std::size_t before = delivered_view_.size();
  std::erase_if(delivered_view_, [&](const DataMessagePtr& m) {
    const auto [it, inserted] = floors.emplace(m->sender(), 0);
    if (inserted) it->second = floor_of(m->sender());
    if (m->seq() > it->second) return false;
    remove_from_accepted(m->id());
    return true;
  });
  stats_.stability_gcs += before - delivered_view_.size();
}

bool Node::covered_by_accepted(const DataMessage& m) const {
  const auto covers = [&](const DataMessagePtr& candidate) {
    return candidate->view() == m.view() &&
           config_.relation->covers(candidate->ref(), m.ref());
  };
  // Per-sender relations need a covering message from the same sender with
  // a higher sequence number.  FIFO channels deliver per-sender seqs in
  // order, so everything delivered from m's sender is below m's seq (at t7
  // the high-water filter already removed candidates at or below it) —
  // scanning the unbounded delivered history would never match.  Only
  // cross-sender relations (e.g. the test-only ExplicitRelation) require
  // the full scan.
  if (!config_.relation->per_sender()) {
    for (const auto& d : delivered_view_) {
      if (covers(d)) return true;
    }
  }
  for (const auto& e : to_deliver_) {
    if (e.data != nullptr && covers(e.data)) return true;
  }
  return false;
}

std::size_t Node::purge_queue_with(const DataMessagePtr& by) {
  std::size_t removed = 0;
  for (auto it = to_deliver_.begin(); it != to_deliver_.end();) {
    if (it->data != nullptr && it->data->view() == by->view() &&
        config_.relation->covers(by->ref(), it->data->ref())) {
      if (observer_ != nullptr) observer_->on_purge(self_, it->data, by);
      remove_from_accepted(it->data->id());
      it = to_deliver_.erase(it);
      --data_count_;
      ++removed;
    } else {
      ++it;
    }
  }
  stats_.purged_delivery += removed;
  return removed;
}

std::size_t Node::purge_queue_full() {
  // purge(S): remove every data entry covered by another entry of the same
  // view still in S.  Quadratic over a queue that is at most a few dozen
  // entries long (§5.3 buffer sizes).
  std::size_t removed = 0;
  for (auto it = to_deliver_.begin(); it != to_deliver_.end();) {
    bool covered = false;
    if (it->data != nullptr) {
      for (const auto& other : to_deliver_) {
        if (other.data != nullptr && other.data != it->data &&
            other.data->view() == it->data->view() &&
            config_.relation->covers(other.data->ref(), it->data->ref())) {
          if (observer_ != nullptr) {
            observer_->on_purge(self_, it->data, other.data);
          }
          covered = true;
          break;
        }
      }
    }
    if (covered) {
      remove_from_accepted(it->data->id());
      it = to_deliver_.erase(it);
      --data_count_;
      ++removed;
    } else {
      ++it;
    }
  }
  stats_.purged_delivery += removed;
  return removed;
}

void Node::remove_from_accepted(const MsgId& id) { accepted_ids_.erase(id); }

// ---------------------------------------------------------------------------
// t4 — trigger view change
// ---------------------------------------------------------------------------

bool Node::request_view_change(const std::vector<net::ProcessId>& leave) {
  if (blocked_ || excluded_) return false;
  ++stats_.view_changes_initiated;
  const auto init = std::make_shared<InitMessage>(view_.id(), leave);
  for (const auto p : view_.members()) {
    net_.send(self_, p, init, net::Lane::control);
  }
  return true;
}

// ---------------------------------------------------------------------------
// t5 — first INIT: block, emit PRED
// ---------------------------------------------------------------------------

void Node::handle_init(net::ProcessId from,
                       const std::shared_ptr<const InitMessage>& m) {
  if (excluded_) return;
  if (m->view().value() < view_.id().value()) return;  // superseded
  if (m->view().value() > view_.id().value()) {
    pending_control_[m->view().value()].emplace_back(from, m);
    return;
  }
  if (blocked_) return;  // only the first INIT of a view is acted upon

  change_started_ = sim_.now();

  // Forward so every correct process initiates (t5).
  if (from != self_) {
    for (const auto p : view_.members()) {
      net_.send(self_, p, m, net::Lane::control);
    }
  }

  blocked_ = true;
  leave_.clear();
  for (const auto p : m->leave()) {
    if (view_.contains(p)) leave_.insert(p);
  }

  const auto pred = std::make_shared<PredMessage>(view_.id(), local_pred());
  for (const auto p : view_.members()) {
    net_.send(self_, p, pred, net::Lane::control);
  }

  // Opened last: the Mux may have buffered the decision already (this node
  // can be the last to hear about the change), in which case opening the
  // instance installs the next view synchronously — all t5 work must be
  // done by then.
  open_consensus();
}

std::vector<DataMessagePtr> Node::local_pred() const {
  // {[DATA, v, d] ∈ (delivered ∪ to-deliver) : v = cv}, in delivery order.
  std::vector<DataMessagePtr> result = delivered_view_;
  for (const auto& e : to_deliver_) {
    if (e.data != nullptr && e.data->view() == view_.id()) {
      result.push_back(e.data);
    }
  }
  return result;
}

// ---------------------------------------------------------------------------
// t6 — accumulate PRED
// ---------------------------------------------------------------------------

void Node::handle_pred(net::ProcessId from,
                       const std::shared_ptr<const PredMessage>& m) {
  if (excluded_) return;
  if (m->view().value() < view_.id().value()) return;
  if (m->view().value() > view_.id().value()) {
    pending_control_[m->view().value()].emplace_back(from, m);
    return;
  }
  for (const auto& msg : m->accepted()) {
    global_pred_.emplace(msg->id(), msg);
  }
  pred_received_.insert(from);
  try_propose();
}

// ---------------------------------------------------------------------------
// t7 — propose and install
// ---------------------------------------------------------------------------

void Node::try_propose() {
  if (!blocked_ || proposed_ || excluded_) return;

  // ∀p ∈ memb(v) : ¬suspects(p) ⇒ p ∈ pred-received, and a majority answered.
  for (const auto p : view_.members()) {
    if (!fd_.suspects(p) && !pred_received_.contains(p)) return;
  }
  if (pred_received_.size() <= view_.size() / 2) return;

  proposed_ = true;
  std::vector<net::ProcessId> next_members;
  for (const auto p : pred_received_) {
    if (!leave_.contains(p)) next_members.push_back(p);
  }
  std::vector<DataMessagePtr> pred_view;
  pred_view.reserve(global_pred_.size());
  for (const auto& [id, msg] : global_pred_) pred_view.push_back(msg);

  auto* instance =
      consensus_mux_.find(consensus::InstanceId(view_.id().value()));
  SVS_ASSERT(instance != nullptr, "consensus instance must be open by t5");
  instance->propose(std::make_shared<ProposalValue>(
      View(view_.id().next(), std::move(next_members)),
      std::move(pred_view)));
}

void Node::open_consensus() {
  consensus_mux_.open(
      net_, fd_, consensus::InstanceId(view_.id().value()), view_.members(),
      [this](const consensus::ValuePtr& value) {
        const auto decided =
            std::dynamic_pointer_cast<const ProposalValue>(value);
        SVS_ASSERT(decided != nullptr,
                   "view-change consensus decided a foreign value type");
        install(*decided);
      });
}

void Node::install(const ProposalValue& decided) {
  SVS_ASSERT(blocked_ && !excluded_, "install outside a view change");
  SVS_ASSERT(decided.next_view().id() == view_.id().next(),
             "consensus decided a non-successor view");

  // Flush: append the agreed messages this process is missing, in
  // (sender, seq) order.  A message is skipped when (a) it is still here,
  // (b) an accepted message covers it (t3's own test), or (c) it is at or
  // below the per-sender reception high-water mark — it was received and
  // consumed earlier, and whatever covered it then was delivered or is
  // about to be (DESIGN.md §3).  Capacity is not enforced here: the flush
  // uses the reserved view-change space (§5.3).
  for (const auto& m : decided.pred_view()) {
    if (m->view() != view_.id()) continue;  // defensive; all should be cv
    if (accepted_ids_.contains(m->id())) continue;
    const auto seen = seen_seq_.find(m->sender());
    if (seen != seen_seq_.end() && m->seq() <= seen->second) continue;
    if (covered_by_accepted(*m)) continue;
    to_deliver_.push_back(QueueEntry{m, std::nullopt});
    ++data_count_;
    accepted_ids_.insert(m->id());
    note_seen(*m);
    ++stats_.flushed_in;
  }
  if (config_.purge_delivery_queue) purge_queue_full();

  // addToTail(to-deliver, [VIEW, next-view]).
  to_deliver_.push_back(QueueEntry{nullptr, decided.next_view()});
  notify_deliverable();

  ++stats_.views_installed;
  stats_.last_flush_total = decided.pred_view().size();
  stats_.last_change_latency = sim_.now() - change_started_;

  if (!decided.next_view().contains(self_)) {
    excluded_ = true;  // stays blocked; the group goes on without this node
    return;
  }

  view_ = decided.next_view();
  blocked_ = false;
  proposed_ = false;
  leave_.clear();
  global_pred_.clear();
  pred_received_.clear();
  delivered_view_.clear();
  accepted_ids_.clear();
  seen_seq_.clear();
  peer_seen_.clear();
  stability_dirty_ = false;

  // Outgoing messages of superseded views would be discarded on arrival;
  // reclaim their buffer space now (this is what frees the buffers that
  // were saturated towards a crashed or expelled member).
  net_.drop_outgoing(self_, [nv = view_.id()](const net::MessagePtr& queued) {
    const auto dm = std::dynamic_pointer_cast<const DataMessage>(queued);
    return dm != nullptr && dm->view() != nv;
  });

  for (const auto& callback : install_callbacks_) callback(view_);
  replay_pending_control();
  net_.resume(self_);  // accept data again (stale ones get discarded)
  notify_unblocked();
}

void Node::replay_pending_control() {
  // Drop anything for superseded views, replay what targets the new view.
  while (!pending_control_.empty()) {
    const auto it = pending_control_.begin();
    if (it->first > view_.id().value()) break;
    const auto batch = std::move(it->second);
    const bool current = it->first == view_.id().value();
    pending_control_.erase(it);
    if (!current) continue;
    for (const auto& [from, message] : batch) {
      if (const auto init =
              std::dynamic_pointer_cast<const InitMessage>(message)) {
        handle_init(from, init);
      } else if (const auto pred =
                     std::dynamic_pointer_cast<const PredMessage>(message)) {
        handle_pred(from, pred);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// wiring
// ---------------------------------------------------------------------------

bool Node::on_message(net::ProcessId from, const net::MessagePtr& message,
                      net::Lane lane) {
  if (lane == net::Lane::data) {
    const auto data = std::dynamic_pointer_cast<const DataMessage>(message);
    SVS_ASSERT(data != nullptr, "non-data message on the data lane");
    return handle_data(from, data);
  }
  if (const auto init = std::dynamic_pointer_cast<const InitMessage>(message)) {
    handle_init(from, init);
    return true;
  }
  if (const auto pred = std::dynamic_pointer_cast<const PredMessage>(message)) {
    handle_pred(from, pred);
    return true;
  }
  if (const auto stability =
          std::dynamic_pointer_cast<const StabilityMessage>(message)) {
    handle_stability(from, stability);
    return true;
  }
  if (consensus_mux_.on_message(from, message)) return true;
  if (control_sink_ != nullptr) {
    control_sink_(from, message);
    return true;
  }
  SVS_UNREACHABLE("unroutable control message");
}

std::vector<net::ProcessId> Node::saturated_peers() const {
  std::vector<net::ProcessId> result;
  if (config_.out_capacity == 0) return result;
  for (const auto peer : view_.members()) {
    if (peer == self_) continue;
    if (net_.data_backlog(self_, peer) >= config_.out_capacity) {
      result.push_back(peer);
    }
  }
  return result;
}

void Node::set_unblocked_callback(std::function<void()> callback) {
  unblocked_callback_ = std::move(callback);
}

void Node::subscribe_install(std::function<void(const View&)> callback) {
  SVS_REQUIRE(callback != nullptr, "install callback must be callable");
  install_callbacks_.push_back(std::move(callback));
}

void Node::set_control_sink(
    std::function<void(net::ProcessId, const net::MessagePtr&)> sink) {
  control_sink_ = std::move(sink);
}

void Node::set_deliverable_callback(std::function<void()> callback) {
  deliverable_callback_ = std::move(callback);
}

void Node::notify_deliverable() {
  if (deliverable_callback_ == nullptr || deliverable_notify_pending_) return;
  deliverable_notify_pending_ = true;
  sim_.schedule_after(sim::Duration::zero(), [this] {
    deliverable_notify_pending_ = false;
    if (deliverable_callback_ != nullptr && !to_deliver_.empty()) {
      deliverable_callback_();
    }
  });
}

void Node::notify_unblocked() {
  if (unblocked_callback_ == nullptr || unblock_notify_pending_) return;
  unblock_notify_pending_ = true;
  // Deferred to its own event: the trigger often fires mid-operation
  // (e.g. inside a purge during multicast), and producers re-enter
  // multicast from the callback.
  sim_.schedule_after(sim::Duration::zero(), [this] {
    unblock_notify_pending_ = false;
    if (unblocked_callback_ != nullptr) unblocked_callback_();
  });
}

}  // namespace svs::core
