// Convenience harness: a fully wired group of SVS nodes over a transport
// backend, with per-node failure detectors and membership policies.
// Used by tests, examples and the experiment drivers.
#pragma once

#include <memory>
#include <vector>

#include "core/membership.hpp"
#include "core/node.hpp"
#include "core/observer.hpp"
#include "fd/heartbeat.hpp"
#include "fd/oracle.hpp"
#include "fd/swim.hpp"
#include "net/loopback.hpp"
#include "net/network.hpp"
#include "net/udp_transport.hpp"
#include "sim/simulator.hpp"

namespace svs::core {

class Group {
 public:
  enum class FdKind { oracle, heartbeat, swim };

  /// Which net::Transport implementation carries the group's traffic.
  enum class Backend {
    sim,                // in-memory simulated fabric (the default)
    threaded_loopback,  // every delivery encoded, moved across a wire
                        // thread as bytes, and decoded fresh
    udp,                // every delivery shipped through the kernel as a
                        // real UDP datagram, recovered by the reliable
                        // lane (net/udp_transport.hpp, all-local mode)
  };

  struct Config {
    std::size_t size = 3;
    NodeConfig node;  // template applied to every node
    net::Network::Config network;
    Backend backend = Backend::sim;
    /// Backend::udp: reliable-lane tuning and socket-boundary loss.
    net::ReliableLink::Config udp_link;
    double udp_loss_rate = 0.0;
    std::uint64_t udp_lane_seed = 0x0DD5'0CE7;
    /// Backend::udp: if > 0, shrink every socket's SO_RCVBUF (kernel-drop
    /// stress mode).
    int udp_rcvbuf_bytes = 0;
    FdKind fd_kind = FdKind::oracle;
    /// Oracle detection delay (crash -> suspicion).
    sim::Duration oracle_delay = sim::Duration::millis(30);
    fd::HeartbeatDetector::Config heartbeat;
    /// FdKind::swim: shared template; each detector derives its private
    /// rng stream from (swim.seed, owner), so one config serves them all.
    fd::SwimDetector::Config swim;
    /// Attach a MembershipPolicy to every node (suspicion-driven
    /// exclusions).  Disable for experiments that must not reconfigure.
    bool auto_membership = true;
    MembershipPolicy::Config membership;
    /// Optional observer shared by all nodes (e.g. a SpecChecker).
    NodeObserver* observer = nullptr;
  };

  Group(sim::Simulator& simulator, Config config);

  [[nodiscard]] std::size_t size() const { return nodes_.size(); }
  [[nodiscard]] net::ProcessId pid(std::size_t i) const {
    return net::ProcessId(static_cast<std::uint32_t>(i));
  }
  [[nodiscard]] Node& node(std::size_t i) { return *nodes_.at(i); }
  [[nodiscard]] fd::FailureDetector& detector(std::size_t i) {
    return *detectors_.at(i);
  }
  /// The SWIM backend's counters/incarnations; null on the other kinds.
  [[nodiscard]] fd::SwimDetector* swim_detector(std::size_t i) {
    return dynamic_cast<fd::SwimDetector*>(detectors_.at(i).get());
  }
  [[nodiscard]] MembershipPolicy* policy(std::size_t i) {
    return policies_.empty() ? nullptr : policies_.at(i).get();
  }
  [[nodiscard]] net::Transport& network() { return *network_; }
  /// The loopback backend's wire telemetry; null on the other backends.
  [[nodiscard]] net::ThreadedLoopback* loopback() {
    return dynamic_cast<net::ThreadedLoopback*>(network_.get());
  }
  /// The UDP backend's lane telemetry and sockets; null on the others.
  [[nodiscard]] net::UdpTransport* udp() {
    return dynamic_cast<net::UdpTransport*>(network_.get());
  }
  [[nodiscard]] sim::Simulator& simulator() { return sim_; }

  /// Crash-stops process i.
  void crash(std::size_t i) { network_->crash(pid(i)); }

  /// Drains node i's delivery queue (t1 in a loop), returning everything.
  std::vector<Delivery> drain(std::size_t i);

 private:
  sim::Simulator& sim_;
  std::unique_ptr<net::Transport> network_;
  std::vector<std::unique_ptr<fd::FailureDetector>> detectors_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::unique_ptr<MembershipPolicy>> policies_;
};

}  // namespace svs::core
