// Runtime specification checker for the §3.2 properties.
//
// Attached as a NodeObserver to every node, it records the global history
// (multicasts, deliveries, view installations, exclusions) and verifies:
//
//   * Semantic View Synchrony — if p installs v_i and v_{i+1} and delivers
//     m in v_i, every q installing both delivers some m' with m ⊑ m'
//     before installing v_{i+1};
//   * FIFO Semantically Reliable (i) — no process delivers m after m' when
//     their sender multicast m first.  One precise exemption: a view-change
//     flush may retro-deliver a message its sender had purged out of the
//     channel when the gap's only cover died with an excluded sender —
//     omitting it would violate SVS and diverge replicas, so the flush
//     repairs it late.  Only deliveries the node tagged as flush-ins
//     (NodeObserver::on_flush_in) are exempt; any other reorder is flagged
//     (DESIGN.md §7);
//   * FIFO Semantically Reliable (ii) — per sender, only obsolete
//     predecessors of the last delivered message may be omitted at a view
//     boundary;
//   * Integrity — no creation, no duplication;
//   * strict View Synchrony — same delivered sets per view (meaningful for
//     the empty relation, where SVS degenerates to VS).
//
// The checker evaluates ⊑ with a caller-supplied *ground-truth* relation.
// This matters: compact representations may under-declare long transitive
// chains (a k-enum bitmap cannot mark a predecessor further than k back),
// and the protocol's guarantee is with respect to the application's true
// obsolescence semantics, of which the annotations are a safe
// under-approximation.  See DESIGN.md.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/observer.hpp"
#include "obs/relation.hpp"

namespace svs::core {

class SpecChecker final : public NodeObserver {
 public:
  /// `ground_truth` answers the true m ≺ m' (transitively closed).
  explicit SpecChecker(obs::RelationPtr ground_truth);

  // -- recording (NodeObserver) ------------------------------------------
  void on_multicast(net::ProcessId p, const DataMessagePtr& m) override;
  void on_deliver(net::ProcessId p, const DataMessagePtr& m) override;
  void on_install(net::ProcessId p, const View& v) override;
  void on_excluded(net::ProcessId p, ViewId last_view) override;
  void on_flush_in(net::ProcessId p, const DataMessagePtr& m) override;

  // -- verification -------------------------------------------------------

  /// All §3.2 properties.  Returns human-readable violations (empty = pass).
  [[nodiscard]] std::vector<std::string> verify() const;

  /// Classic View Synchrony: processes installing v_i and v_{i+1} delivered
  /// exactly the same data messages in v_i.  Holds when the relation is
  /// empty; under purging it is expected to fail (that is the relaxation).
  [[nodiscard]] std::vector<std::string> verify_strict_vs() const;

  /// Quiescence / liveness.  Intended for runs driven to a stable end state
  /// (every fault healed, traffic stopped, membership policies in place,
  /// all queues drained): `alive` is the set of processes that had not
  /// crashed by the end of the run; the *survivors* are the alive processes
  /// that were never excluded.  Verifies that
  ///   * every survivor installed the same final view F and is a member of
  ///     it (the group converged — consensus agreement makes this
  ///     unconditional, even under quorum loss);
  /// and, when F retained an alive quorum (2·|survivors| > |F| — liveness
  /// in a primary-partition group stack is *conditional* on an alive
  /// majority; a rump view below quorum legitimately halts, DESIGN.md §7):
  ///   * F's membership is exactly the survivor set (dead and departed
  ///     members were excluded);
  ///   * every message multicast by a survivor was, at every survivor,
  ///     either delivered or obsoleted-by-⊑ (some delivered message covers
  ///     it under the ground truth) — nothing a live sender published is
  ///     silently lost, which verify() alone cannot promise for the final
  ///     (never-closed) view.
  /// Safety (verify()) holds mid-run; this check is only meaningful at
  /// quiescence — calling it on a run cut off mid-view-change reports
  /// spurious divergence.
  [[nodiscard]] std::vector<std::string> verify_quiescence(
      std::span<const net::ProcessId> alive) const;

  // -- history introspection ----------------------------------------------

  [[nodiscard]] std::uint64_t total_multicasts() const {
    return static_cast<std::uint64_t>(sent_.size());
  }
  [[nodiscard]] std::uint64_t total_deliveries() const {
    return total_deliveries_;
  }

  /// Data messages delivered by process p within its view-v segment.
  [[nodiscard]] std::vector<DataMessagePtr> delivered_in(
      net::ProcessId p, ViewId v) const;

  /// Views installed by p, in order.
  [[nodiscard]] std::vector<View> views_installed(net::ProcessId p) const;

 private:
  struct Event {
    DataMessagePtr data;           // data delivery
    std::optional<View> install;   // view installation
    std::optional<ViewId> excluded;
  };
  struct ProcessLog {
    std::vector<Event> events;
  };

  /// True iff older ⊑ newer under the ground truth (reflexive closure).
  [[nodiscard]] bool covered(const DataMessage& older,
                             const DataMessage& newer) const;

  std::map<net::ProcessId, ProcessLog> logs_;
  // Messages each process obtained via a t7 flush — the only deliveries
  // exempt from the FIFO (i) order check (gap repairs may be retrograde).
  std::map<net::ProcessId, std::unordered_set<MsgId>> flush_ins_;
  std::map<MsgId, DataMessagePtr> sent_;
  // Per sender: seqs in multicast order (they are assigned monotonically).
  std::map<net::ProcessId, std::vector<DataMessagePtr>> sent_by_sender_;
  std::uint64_t total_deliveries_ = 0;
  obs::RelationPtr ground_truth_;
};

}  // namespace svs::core
