#include "core/group.hpp"

#include <utility>

namespace svs::core {

Group::Group(sim::Simulator& simulator, Config config) : sim_(simulator) {
  SVS_REQUIRE(config.size >= 1, "a group needs at least one member");
  if (config.backend == Backend::threaded_loopback) {
    network_ =
        std::make_unique<net::ThreadedLoopback>(simulator, config.network);
  } else if (config.backend == Backend::udp) {
    net::UdpTransport::Config udp;
    udp.network = config.network;
    udp.link = config.udp_link;
    udp.lane_seed = config.udp_lane_seed;
    udp.loss_rate = config.udp_loss_rate;
    udp.rcvbuf_bytes = config.udp_rcvbuf_bytes;
    network_ = std::make_unique<net::UdpTransport>(simulator, udp);
  } else {
    network_ = std::make_unique<net::Network>(simulator, config.network);
  }

  std::vector<net::ProcessId> members;
  members.reserve(config.size);
  for (std::size_t i = 0; i < config.size; ++i) members.push_back(pid(i));
  const View initial(ViewId(0), members);

  // Detectors first (they must exist before nodes subscribe to them), but
  // heartbeat emission starts only after every endpoint is attached.
  std::vector<fd::HeartbeatDetector*> heartbeats;
  std::vector<fd::SwimDetector*> swims;
  for (std::size_t i = 0; i < config.size; ++i) {
    std::vector<net::ProcessId> peers;
    for (const auto p : members) {
      if (p != pid(i)) peers.push_back(p);
    }
    if (config.fd_kind == FdKind::oracle) {
      detectors_.push_back(std::make_unique<fd::OracleDetector>(
          simulator, *network_, pid(i), config.oracle_delay));
    } else if (config.fd_kind == FdKind::heartbeat) {
      auto hb = std::make_unique<fd::HeartbeatDetector>(
          simulator, *network_, pid(i), std::move(peers), config.heartbeat);
      heartbeats.push_back(hb.get());
      detectors_.push_back(std::move(hb));
    } else {
      auto swim = std::make_unique<fd::SwimDetector>(
          simulator, *network_, pid(i), std::move(peers), config.swim);
      swims.push_back(swim.get());
      detectors_.push_back(std::move(swim));
    }
  }

  for (std::size_t i = 0; i < config.size; ++i) {
    nodes_.push_back(std::make_unique<Node>(simulator, *network_,
                                            *detectors_[i], pid(i), initial,
                                            config.node, config.observer));
  }

  // Route detector traffic to the detectors and start them.
  if (config.fd_kind == FdKind::heartbeat) {
    for (std::size_t i = 0; i < config.size; ++i) {
      auto* hb = heartbeats[i];
      nodes_[i]->set_control_sink(
          [hb](net::ProcessId from, const net::MessagePtr& message) {
            if (message->type() == net::MessageType::heartbeat) {
              hb->on_heartbeat(from);
            }
          });
      hb->start();
    }
  } else if (config.fd_kind == FdKind::swim) {
    for (std::size_t i = 0; i < config.size; ++i) {
      auto* swim = swims[i];
      nodes_[i]->set_control_sink(
          [swim](net::ProcessId from, const net::MessagePtr& message) {
            switch (message->type()) {
              case net::MessageType::swim_ping:
              case net::MessageType::swim_ping_req:
              case net::MessageType::swim_ack:
                swim->on_message(from, message);
                break;
              default:
                break;  // e.g. stale heartbeats after a backend swap
            }
          });
      swim->start();
    }
  }

  if (config.auto_membership) {
    for (std::size_t i = 0; i < config.size; ++i) {
      policies_.push_back(std::make_unique<MembershipPolicy>(
          simulator, *nodes_[i], *detectors_[i], config.membership));
    }
  }
}

std::vector<Delivery> Group::drain(std::size_t i) {
  std::vector<Delivery> out;
  while (auto d = nodes_.at(i)->try_deliver()) {
    out.push_back(std::move(*d));
  }
  return out;
}

}  // namespace svs::core
