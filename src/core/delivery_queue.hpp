// The to-deliver queue and delivered history of one SVS node, with indexed
// semantic purging.
//
// Owns the Figure-1 buffers the protocol purges: the ordered to-deliver
// queue (data entries interleaved with VIEW notifications), the delivered
// history of the current view (retained for a possible t7 flush until
// stability gossip collects it), and the accepted-id set spanning both.
//
// The purge fast path (DESIGN.md §2): for Relation::per_sender() relations a
// covering message and its victims share a sender, so the queue maintains a
// per-sender seq -> entry index and `purge_with`/`covered_by_accepted` visit
// only that sender's entries — further narrowed to
// [relation.coverage_floor(by), by.seq) — instead of scanning the whole
// queue.  Cross-sender relations (the test-only ExplicitRelation) take the
// reference full-scan path.  `use_index = false` forces the reference path
// everywhere; the randomized equivalence test and the before/after bench
// numbers rely on both paths computing identical victim sets.
//
// Index representation (DESIGN.md §8): structure-of-arrays.  Each sender's
// queued entries live in parallel columns sorted by seq — the seq keys
// packed in one contiguous array (what a window scan actually compares),
// with views, annotation pointers and queue-entry handles alongside.  The
// FIFO discipline makes inserts appends and pops head-advances (amortized
// O(1) via a head offset); only the rare t7 flush inserts mid-column.  A
// purge window scan is a linear walk over packed integers instead of a
// pointer chase through map nodes.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/message.hpp"
#include "core/observer.hpp"
#include "core/types.hpp"
#include "obs/relation.hpp"
#include "util/pool.hpp"

namespace svs::core {

class DeliveryQueue {
 public:
  /// One slot of the to-deliver queue: either data or a view notification
  /// ([VIEW, v] in Figure 1; exclusion is a view the node is not part of).
  struct Entry {
    DataMessagePtr data;       // null for view notifications
    std::optional<View> view;  // engaged for view notifications
  };

  struct Stats {
    std::uint64_t purged = 0;           // victims removed from the queue
    std::uint64_t purge_scan_steps = 0; // covers() candidates examined
    std::uint64_t cover_scan_steps = 0; // candidates examined by t3's test
  };

  DeliveryQueue(obs::RelationPtr relation, net::ProcessId self,
                NodeObserver* observer, bool use_index = true);

  DeliveryQueue(const DeliveryQueue&) = delete;
  DeliveryQueue& operator=(const DeliveryQueue&) = delete;

  // -- queue --------------------------------------------------------------

  void push_data(const DataMessagePtr& m);

  /// Flush-in variant of push_data (t7): inserts `m` before the first
  /// queued entry of the same sender with a higher seq, so a view-change
  /// repair of a sender-purged gap keeps per-sender FIFO whenever the later
  /// seqs are still undelivered; appends when none is queued (the repair is
  /// then a retro-delivery, which the spec checker exempts from FIFO (i) —
  /// DESIGN.md §7).
  void push_data_flush(const DataMessagePtr& m);
  void push_view(const View& v);

  [[nodiscard]] bool empty() const { return entries_.empty(); }
  [[nodiscard]] std::size_t length() const { return entries_.size(); }
  [[nodiscard]] std::size_t data_count() const { return data_count_; }

  /// Pops the queue head (t1).  Data entries leave the per-sender index but
  /// stay accepted — delivery moves a message from the queue to the
  /// delivered history, not out of the accepted set.
  std::optional<Entry> pop_front();

  // -- accepted set (queue + delivered history) ---------------------------

  [[nodiscard]] bool accepted(const MsgId& id) const {
    return accepted_ids_.contains(id);
  }

  /// Appends a just-delivered current-view message to the retained history.
  void record_delivered(const DataMessagePtr& m) {
    delivered_view_.push_back(m);
  }

  [[nodiscard]] std::size_t delivered_retained() const {
    return delivered_view_.size();
  }

  /// GC of the stable delivered prefix: removes (and un-accepts) delivered
  /// messages with seq <= floor_of(sender).  Returns the number collected.
  ///
  /// This single rule is sound for *every* relation because the floors are
  /// the StabilityLedger's covered frontiers, not raw reception marks: a
  /// member's frontier passes a seq only when that member received the
  /// message or a live cover resolved through the sender-announced purge
  /// debts (DESIGN.md §3/§7).  Collection therefore never strands a §3.2
  /// obligation, and needs no retained-cover insurance or per-relation GC
  /// policy.
  std::size_t collect_delivered(
      const std::function<std::uint64_t(net::ProcessId)>& floor_of);

  // -- semantic purging ---------------------------------------------------

  /// True iff some accepted (queued or delivered) message of view `cv`
  /// covers m — the suppression test of t3 and the flush filter of t7.
  [[nodiscard]] bool covered_by_accepted(const DataMessage& m, ViewId cv);

  /// Number of queued entries purge_with(by) would remove, without removing
  /// them (the §5.3 capacity pre-checks of t2/t3).
  [[nodiscard]] std::size_t count_victims(const DataMessage& by, ViewId cv);

  /// purge(to-deliver) restricted to victims covered by `by` (view cv).
  std::size_t purge_with(const DataMessagePtr& by, ViewId cv);

  /// Full purge pass: removes every data entry covered by another entry of
  /// the same view still queued (used after the t7 flush).
  std::size_t purge_full(ViewId cv);

  // -- view change support ------------------------------------------------

  /// Appends {[DATA, v, d] ∈ (delivered ∪ to-deliver) : v = cv} to `out`,
  /// in delivery order (t5's local predicate).
  void append_local_pred(ViewId cv, std::vector<DataMessagePtr>& out) const;

  /// Install-time reset: clears the delivered history and the accepted set.
  /// Entries still queued (remnants of the superseded view, including
  /// just-flushed messages) stay to be consumed and stay indexed — purging
  /// relates messages by view equality, so remnants drop out of every scan
  /// that targets the new view on their own.
  void reset_view();

  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] const obs::Relation& relation() const { return *relation_; }
  [[nodiscard]] bool indexed() const { return use_index_; }

 private:
  // List nodes and accepted-id nodes recycle through the thread's pool:
  // every multicast/arrival allocates one of each, every delivery or purge
  // frees them, so the steady state never touches the system allocator.
  using List = std::list<Entry, util::PoolAllocator<Entry>>;

  /// One sender's queued entries as parallel columns sorted by seq
  /// (structure-of-arrays, DESIGN.md §8).  The live range is [head, size):
  /// popping the sender's lowest seq advances `head` instead of shifting,
  /// and the dead prefix is compacted once it dominates.  Invariants:
  /// seqs is strictly ascending over the live range; the four columns are
  /// index-parallel; slots[i]->data is the message whose seq/view/
  /// annotation the other columns mirror (annotation pointers are stable:
  /// they point into shared-ptr-owned immutable messages).
  struct SenderColumn {
    std::vector<std::uint64_t> seqs;
    std::vector<ViewId> views;
    std::vector<const obs::Annotation*> notes;
    std::vector<List::iterator> slots;
    std::size_t head = 0;

    [[nodiscard]] std::size_t size() const { return seqs.size(); }
    [[nodiscard]] bool empty() const { return head == seqs.size(); }
    /// First live position with seqs[pos] >= seq.
    [[nodiscard]] std::size_t lower_bound(std::uint64_t seq) const;
    /// First live position with seqs[pos] > seq.
    [[nodiscard]] std::size_t upper_bound(std::uint64_t seq) const;
    void insert_at(std::size_t pos, const DataMessagePtr& m,
                   List::iterator it);
    void erase_at(std::size_t pos);
    /// Marks `pos` removed without shifting (a purge pass punches out its
    /// victims mid-scan, then sweeps once).  Punched = null annotation.
    void punch(std::size_t pos) { notes[pos] = nullptr; }
    /// Drops every punched position, then compacts the dead prefix if it
    /// dominates.
    void sweep_punched();
  };

  void index_insert(const DataMessagePtr& m, List::iterator it);
  void index_erase(const DataMessage& m);
  /// Removes a queued data entry: observer hook, index, accepted set.
  List::iterator erase_entry(List::iterator it, const DataMessagePtr& by);
  [[nodiscard]] bool fast_path() const {
    return use_index_ && relation_->per_sender();
  }

  obs::RelationPtr relation_;
  net::ProcessId self_;
  NodeObserver* observer_;  // optional, not owned
  bool use_index_;

  List entries_;
  std::size_t data_count_ = 0;  // data entries in entries_
  std::unordered_map<net::ProcessId, SenderColumn> by_sender_;
  std::vector<DataMessagePtr> delivered_view_;  // delivered with view == cv
  std::unordered_set<MsgId, std::hash<MsgId>, std::equal_to<MsgId>,
                     util::PoolAllocator<MsgId>>
      accepted_ids_;  // ids queued or delivered
  Stats stats_;
};

}  // namespace svs::core
