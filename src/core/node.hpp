// The Semantic View Synchrony protocol of Figure 1.
//
// One Node is one group member.  It implements the seven transitions:
//
//   t1  try_deliver()            — application consumes the queue head
//   t2  multicast()              — send tagged data + self-insert + purge
//   t3  handle_data()            — accept data of the current view, suppress
//                                  obsolete arrivals, purge the queue
//   t4  request_view_change()    — disseminate INIT
//   t5  handle_init()            — forward INIT, block, emit PRED
//   t6  handle_pred()            — accumulate global-pred / pred-received
//   t7  try_propose()+install()  — propose to consensus, flush the decided
//                                  pred-view, deliver VIEW, unblock
//
// The shaded (SVS-specific) parts of Figure 1 — every purge call and the
// obsolescence test of t3 — are controlled by NodeConfig: with purging
// disabled or the EmptyRelation, the node is a conventional View Synchrony
// implementation, which is the paper's "reliable" baseline.
//
// Bounded buffers and flow control follow the simulation model of §5.3:
// the delivery queue bounds its data occupancy (control entries and
// view-change flushes use reserved space); a full node refuses data from
// the network; multicast blocks when any outgoing buffer is full.
//
// The Node itself is a thin transition coordinator (DESIGN.md §1): the
// purgeable buffers live in DeliveryQueue (with the per-sender purge
// index), the gossip GC state — reception records, covered frontiers and
// the purge-debt ledger — in StabilityLedger, and the t4–t7 bookkeeping
// in ViewChangeEngine.  The Node wires them to the network, the failure
// detector and the consensus multiplexer.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <optional>
#include <set>
#include <utility>
#include <vector>

#include "consensus/mux.hpp"
#include "core/delivery_queue.hpp"
#include "core/message.hpp"
#include "core/observer.hpp"
#include "core/stability_ledger.hpp"
#include "core/types.hpp"
#include "core/view_change_engine.hpp"
#include "fd/failure_detector.hpp"
#include "net/transport.hpp"
#include "obs/relation.hpp"
#include "sim/simulator.hpp"

namespace svs::core {

struct NodeConfig {
  /// Max data messages in the delivery queue; 0 = unbounded (pure Figure 1).
  std::size_t delivery_capacity = 0;
  /// Max data messages queued towards any single destination; 0 = unbounded.
  std::size_t out_capacity = 0;
  /// Apply purging to the delivery queue (t2/t3/t7 purge calls).
  bool purge_delivery_queue = true;
  /// Apply purging to outgoing buffers (sender-side semantic purging, [22]).
  bool purge_outgoing = true;
  /// Use the per-sender purge index for per_sender() relations; disable to
  /// force the reference full-scan path (before/after measurements).
  bool indexed_delivery_queue = true;
  /// The obsolescence relation oracle.  Required.  EmptyRelation yields VS.
  obs::RelationPtr relation;
  /// Period of the stability gossip that garbage-collects the delivered
  /// history once every member received a message (zero disables it; the
  /// history then grows until the next view change).  The gossip quiesces
  /// when nothing new was received, so idle groups go silent.
  sim::Duration stability_interval = sim::Duration::millis(50);
  /// Adaptive quiescent gossip (DESIGN.md §10).  true (default): a round is
  /// suppressed entirely when the ledger has no delta to report; while
  /// convergence is still outstanding every silent_round_period-th clean
  /// round escalates to a full-vector heartbeat, and after heartbeat_budget
  /// consecutive no-progress heartbeats the timer parks until new traffic,
  /// a merge, or an install re-arms it.  Stability sections also piggyback
  /// on outgoing DATA (at most one per stability_interval), so a group
  /// under traffic needs almost no standalone gossip.  false: classic fixed
  /// cadence — a round is sent every interval even when nothing changed and
  /// nothing piggybacks (the pre-quiescence baseline the steady-state bench
  /// measures against; it never goes silent, so drive it with run_until).
  bool quiescent = true;
  /// Clean rounds between heartbeats while unconverged (quiescent mode).
  std::uint64_t silent_round_period = 4;
  /// Consecutive no-progress heartbeats before the gossip timer parks.
  std::uint64_t heartbeat_budget = 8;
  /// Ring-aggregated stability digests (DESIGN.md §11).  When the view has
  /// at least this many members, each gossip round ships a digest of
  /// best-known per-origin stability rows to digest_ring_fanout
  /// deterministic ring successors instead of multicasting an all-to-all
  /// StabilityMessage — O(fanout) control messages per member per round
  /// instead of O(n).  The quiescent ladder, piggybacking and no-news
  /// refresh compose unchanged on top.  0 disables ring mode entirely;
  /// small views (every existing test and golden) stay on the all-to-all
  /// path bit-identically.
  std::size_t digest_ring_threshold = 16;
  /// Ring successors each digest round addresses (>= 1 when ring mode is
  /// enabled; news travels `fanout` ring positions per round).
  std::size_t digest_ring_fanout = 2;
  /// How long a view change waits for the PREDs of *suspected* members
  /// before proposing without them.  A live member that was falsely
  /// suspected (a healed partition ahead of the detector's refutation)
  /// answers within one round trip; folding its PRED in keeps it in the
  /// next view and, critically, brings the covers of its sender-side
  /// purges into the agreed pred-view — without them a receiver that
  /// delivered past a purged gap closes the view with the gap uncovered
  /// (FIFO-SR clause (ii), DESIGN.md §3).  A crashed member stays silent
  /// and costs the change at most this long.
  sim::Duration pred_grace = sim::Duration::millis(30);
};

struct NodeStats {
  std::uint64_t multicasts = 0;
  std::uint64_t multicast_blocked = 0;   // t2 attempts refused by flow control
  std::uint64_t delivered_data = 0;
  std::uint64_t purged_delivery = 0;     // victims removed from the queue
  std::uint64_t suppressed_obsolete = 0; // arrivals already covered (t3 test)
  std::uint64_t stale_view_drops = 0;    // data of superseded views discarded
  std::uint64_t duplicate_drops = 0;     // network-duplicated arrivals dropped
  std::uint64_t refused_data = 0;        // arrivals stalled (buffer full)
  std::uint64_t flushed_in = 0;          // pred-view messages added at install
  std::uint64_t stability_gcs = 0;       // delivered messages collected
  std::uint64_t debts_recorded = 0;      // own purge debts entered the ledger
  std::uint64_t debts_collected = 0;     // own purge debts retired (stable)
  std::uint64_t debt_entries_gossiped = 0;  // debt entries shipped (pre-fanout)
  std::uint64_t debt_bytes_gossiped = 0;    // their encoded bytes (pre-fanout)
  std::uint64_t gossip_rounds_suppressed = 0;  // clean rounds not sent
  std::uint64_t gossip_heartbeats = 0;      // forced full rounds at silence
  std::uint64_t frontier_piggybacks = 0;    // stability sections on DATA
  std::uint64_t digest_rounds = 0;          // ring digests sent (pre-fanout)
  std::uint64_t digest_rows_sent = 0;       // rows shipped across digests
  std::uint64_t views_installed = 0;
  std::uint64_t view_changes_initiated = 0;
  sim::Duration last_change_latency = sim::Duration::zero();
  std::size_t last_flush_total = 0;      // |pred-view| of the last change
};

class Node final : public net::Endpoint {
 public:
  /// The node is backend-agnostic: it talks to any net::Transport (the sim
  /// fabric, the threaded byte-moving loopback, a future socket backend).
  Node(sim::Simulator& simulator, net::Transport& network,
       fd::FailureDetector& detector, net::ProcessId self, View initial,
       NodeConfig config, NodeObserver* observer = nullptr);

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  // -- application interface -------------------------------------------

  /// t2.  Returns the assigned sequence number, or nullopt when blocked
  /// (view change in progress, flow control, or not a member).  Producers
  /// should retry when the unblocked callback fires.
  std::optional<std::uint64_t> multicast(PayloadPtr payload,
                                         obs::Annotation annotation);

  /// Cheap pre-check mirroring multicast()'s guards (it does not account
  /// for the space the message's own purging would free, so multicast() can
  /// succeed where this returns false — never the other way round).
  [[nodiscard]] bool can_multicast() const;

  /// t1.  Down-call delivery (§3.2): pops the queue head if any.
  std::optional<Delivery> try_deliver();

  [[nodiscard]] bool has_deliverable() const { return !queue_.empty(); }

  /// t4.  Starts a view change removing `leave` (may be empty: a pure
  /// reconfiguration).  Returns false if a change is already in progress.
  bool request_view_change(const std::vector<net::ProcessId>& leave);

  /// Fired whenever a previously failing multicast may now succeed.
  void set_unblocked_callback(std::function<void()> callback);

  /// Fired (once per quiescence, deferred to its own event) when the
  /// delivery queue gains entries — how consumers learn to resume t1 calls.
  void set_deliverable_callback(std::function<void()> callback);

  /// Fired right after this node installs a view (protocol-level, before
  /// the application consumes the notification).  Used by membership
  /// policies.
  void subscribe_install(std::function<void(const View&)> callback);

  /// Handler for control-lane messages the protocol does not recognise
  /// (e.g. failure-detector heartbeats routed to a HeartbeatDetector).
  void set_control_sink(
      std::function<void(net::ProcessId, const net::MessagePtr&)> sink);

  // -- introspection ----------------------------------------------------

  [[nodiscard]] net::ProcessId id() const { return self_; }
  [[nodiscard]] const View& current_view() const { return view_; }
  [[nodiscard]] bool blocked() const { return change_.blocked(); }
  [[nodiscard]] bool excluded() const { return excluded_; }
  [[nodiscard]] std::size_t delivery_queue_length() const {
    return queue_.length();
  }
  [[nodiscard]] std::size_t delivery_data_count() const {
    return queue_.data_count();
  }
  /// Delivered messages of the current view still buffered for a possible
  /// view-change flush (shrinks as stability gossip collects them).
  [[nodiscard]] std::size_t delivered_retained() const {
    return queue_.delivered_retained();
  }
  [[nodiscard]] std::uint64_t next_seq() const { return next_seq_; }
  /// Counters.  purged_delivery reads through to the DeliveryQueue, which
  /// is the single bookkeeper of purge victims.
  [[nodiscard]] const NodeStats& stats() const {
    stats_.purged_delivery = queue_.stats().purged;
    return stats_;
  }
  [[nodiscard]] const NodeConfig& config() const { return config_; }
  /// The purgeable buffers (purge-scan telemetry for the benches).
  [[nodiscard]] const DeliveryQueue& delivery_queue() const { return queue_; }
  /// The stability/GC state (boundedness asserts and debt telemetry).
  [[nodiscard]] const StabilityLedger& stability_ledger() const {
    return stability_;
  }

  /// Peers whose outgoing buffer from this node is at capacity (the
  /// processes a blockage watchdog would propose to exclude).
  [[nodiscard]] std::vector<net::ProcessId> saturated_peers() const;

  // -- network ----------------------------------------------------------

  bool on_message(net::ProcessId from, const net::MessagePtr& message,
                  net::Lane lane) override;

 private:
  // Figure 1 transitions (t1/t2/t4 are the public calls above).
  bool handle_data(net::ProcessId from, const DataMessagePtr& m);
  void handle_init(net::ProcessId from,
                   const std::shared_ptr<const InitMessage>& m);
  void handle_pred(net::ProcessId from,
                   const std::shared_ptr<const PredMessage>& m);
  void try_propose();                       // t7 guard + consensus propose
  void install(const ProposalValue& decided);  // t7 after consensus returns

  /// The ordered [DATA, v, d] with v = cv in delivered ++ to-deliver (t5).
  [[nodiscard]] std::vector<DataMessagePtr> local_pred() const;

  // Windowed sender-side purging (the outgoing analogue of the delivery
  // queue's indexed purge): the [floor, below) order-key window `m` can
  // possibly cover, its victim test, the admission pre-count and the
  // post-commit eviction.
  [[nodiscard]] std::pair<std::uint64_t, std::uint64_t> outgoing_purge_window(
      const DataMessage& m) const;
  [[nodiscard]] bool covers_outgoing(const net::MessagePtr& queued,
                                     const DataMessage& m,
                                     const obs::MessageRef& mref) const;
  std::size_t count_outgoing_victims(net::ProcessId peer,
                                     const DataMessage& m);
  void purge_outgoing_covered(net::ProcessId peer, const DataMessagePtr& m,
                              std::uint64_t floor_seq,
                              std::uint64_t below_seq);

  void open_consensus();
  void note_seen(const DataMessage& m);
  void arm_stability_gossip();
  void gossip_stability();
  void handle_stability(net::ProcessId from,
                        const std::shared_ptr<const StabilityMessage>& m);
  void collect_stable();
  /// Ring-aggregated stability digests (DESIGN.md §11): whether this view
  /// gossips on the ring, the deterministic successor list, building a
  /// relayed row for an origin, merging an incoming digest, and retaining
  /// relayed debts past the ledger's local-frontier pruning.
  [[nodiscard]] bool ring_mode() const;
  void compute_ring_successors();
  [[nodiscard]] StabilityDigestMessage::Row make_relay_row(
      net::ProcessId origin) const;
  void handle_stability_digest(
      net::ProcessId from,
      const std::shared_ptr<const StabilityDigestMessage>& m);
  void retain_relay_debts(net::ProcessId origin,
                          const StabilityMessage::Debts& debts);
  void consider_refresh(bool news);
  /// Quiescent-mode helpers (DESIGN.md §10): attach a delta stability
  /// section to an outgoing DATA (rate-limited), merge an incoming one
  /// (same semantics as a standalone round of the same view), and record
  /// that reportable state advanced (resets the silence bookkeeping).
  void maybe_attach_piggyback(DataMessage& m);
  void merge_piggyback(net::ProcessId from, const DataMessage& m);
  void note_gossip_progress();
  void notify_unblocked();
  void notify_deliverable();
  void replay_pending_control();

  sim::Simulator& sim_;
  net::Transport& net_;
  fd::FailureDetector& fd_;
  net::ProcessId self_;
  NodeConfig config_;
  NodeObserver* observer_;  // optional, not owned

  View view_;          // cv
  bool excluded_ = false;
  std::uint64_t next_seq_ = 1;
  std::uint64_t view_first_seq_ = 1;  // first seq multicast in cv (anchor + 1)

  DeliveryQueue queue_;
  StabilityLedger stability_;
  ViewChangeEngine change_;
  bool stability_armed_ = false;
  std::uint64_t gossip_round_ = 0;  // rounds sent in the current view
  // Quiescence bookkeeping (quiescent mode only).  clean_rounds_ counts
  // consecutive timer firings with nothing to report; every
  // silent_round_period-th one escalates to a heartbeat, and
  // fruitless_heartbeats_ bounds heartbeats that observe no progress in
  // (retained, own debts, merged debts).  refresh_spent_ limits the
  // anti-entropy response to a still-gossiping peer to once per progress
  // epoch, last_refresh_ rate-limits it under traffic.
  std::uint64_t clean_rounds_ = 0;
  std::uint64_t fruitless_heartbeats_ = 0;
  std::size_t hb_retained_ = 0;
  std::size_t hb_own_debts_ = 0;
  std::size_t hb_merged_debts_ = 0;
  bool refresh_pending_ = false;
  bool refresh_spent_ = false;
  sim::TimePoint last_refresh_;
  bool piggyback_sent_ = false;
  sim::TimePoint last_piggyback_;
  // Ring-digest state (ring mode only, reset per view): the deterministic
  // successor list, origins whose relayed row changed since the last
  // digest, and the per-origin debts retained for onward relay (the ledger
  // prunes merged debts once the *local* frontier passes them, but a ring
  // successor may still need them; these retire at install or once
  // globally stable).
  std::vector<net::ProcessId> ring_successors_;
  std::set<net::ProcessId> dirty_rows_;
  std::map<net::ProcessId, std::map<std::uint64_t, std::uint64_t>>
      relay_debts_;

  consensus::Mux consensus_mux_;
  std::function<void()> unblocked_callback_;
  bool unblock_notify_pending_ = false;
  std::function<void()> deliverable_callback_;
  bool deliverable_notify_pending_ = false;
  std::function<void(net::ProcessId, const net::MessagePtr&)> control_sink_;
  std::vector<std::function<void(const View&)>> install_callbacks_;
  mutable NodeStats stats_;  // purged_delivery refreshed in stats()
};

}  // namespace svs::core
