// StabilityLedger — the purge-debt stability ledger that garbage-collects
// the delivered history (§2.1, DESIGN.md §3/§7).
//
// Tracks this node's per-sender reception record, the purge debts announced
// by every sender, and the latest reception reports gossiped by the other
// members of the view.  A delivered message whose seq is at or below every
// member's reported mark is *stable*: it should never be needed by a t7
// flush again and is collected from the delivered history — which is also
// what keeps PRED messages and the agreed pred-view small.
//
// Reception is NOT contiguous under sender-side semantic purging: a sender
// may purge seq q out of a channel (its cover rides behind), so a raw
// reception high-water mark can jump a gap the receiver never got.  The
// scenario explorer found the resulting §3.2 violation (DESIGN.md §7): a
// high mark was read as proof of reception, a message was GC'd everywhere,
// and its only in-channel cover died with an excluded sender.  The ledger
// closes that race for *every* relation by making purges first-class wire
// facts instead of inferring them:
//
//   * a sender that semantically purges seq q from an outgoing buffer
//     records a per-view purge debt (q -> cover_seq) and gossips it
//     (record_own_debt / StabilityMessage::debts);
//   * each receiver merges the sender's debts and anchor (the seq just
//     below the sender's first multicast of the view) and reconstructs
//     exact channel coverage: every seq at or below its **covered
//     frontier** is provably either received here or purged with a cover —
//     resolved through the debt chain q -> c -> ... -> f, covers compose
//     under the semantically transitive obsolescence order — that this
//     node received;
//   * the gossiped marks ARE those covered frontiers, so the classic
//     mark-based collection rule (seq <= every member's mark) is sound
//     unconditionally: a frontier never overstates what the §3.2
//     obligation can discharge.  No retained-cover insurance, no
//     per-relation GC policy.
//
// Debts themselves are collected once no one can still need them: a sender
// drops its own debt (q -> c) once every member's reported frontier passed
// q (the gossip then never has to explain q again), and a receiver drops a
// merged debt once its own frontier passed q — so the ledger stays bounded
// by the un-stable window and the gossip stays delta-sized.
//
// Two distinct local queries remain:
//
//   * received(sender, seq) — exact reception membership; what the t7
//     flush skip's first clause and any "was this consumed here?"
//     reasoning must use;
//   * high_water(sender)    — the FIFO channel's raw monotone frontier;
//     what duplicate suppression may use (a purged gap seq can never
//     arrive, so any arrival at or below it is a duplicate).  It is NOT
//     gossiped.
//
// The ledger owns the state and the stability arithmetic; the Node owns
// the gossip timer and the wire traffic (it knows the network and the
// quiescence rules).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>

#include "core/message.hpp"
#include "core/types.hpp"
#include "net/types.hpp"

namespace svs::core {

class StabilityLedger {
 public:
  /// A gossip round's payload: reception-mark (covered-frontier) entries
  /// plus this node's own purge-debt entries, both delta- or full-sized.
  struct Round {
    StabilityMessage::Seen seen;
    StabilityMessage::Debts debts;
  };

  // -- reception record ---------------------------------------------------

  /// Records a reception (accepted, suppressed, or flushed-in) of `seq`
  /// from `sender`, advances the covered frontier it can explain, and
  /// marks the ledger dirty for the next gossip round when the reported
  /// state changed.  Idempotent.
  void note_seen(net::ProcessId sender, std::uint64_t seq);

  /// Exact reception query: was `seq` from `sender` received here in this
  /// view?  Sound under the reception gaps sender-side purging creates.
  [[nodiscard]] bool received(net::ProcessId sender, std::uint64_t seq) const;

  /// This node's raw reception high-water mark for `sender`, if any
  /// message was received.  On a FIFO channel every arrival at or below it
  /// is a duplicate (gap seqs were purged out of the channel and never
  /// arrive); it is NOT evidence that the seqs below it were received and
  /// is never gossiped.
  [[nodiscard]] std::optional<std::uint64_t> high_water(
      net::ProcessId sender) const;

  // -- purge-debt ledger --------------------------------------------------

  /// Installs `sender`'s per-view channel anchor (the seq just below its
  /// first multicast of the view, from its gossip — or from the local node
  /// for its own channel).  Constant per view; repeated calls must agree.
  /// Returns true when the anchor was news (first call for the channel).
  bool set_anchor(net::ProcessId sender, std::uint64_t anchor);

  /// Sender side: this node purged `seq` out of an outgoing buffer,
  /// justified by its own fresh message `cover_seq` (> seq).  Recorded
  /// once per seq (a multicast purges a victim from every buffer that
  /// still holds it in the same call); queued for the next gossip round.
  /// Returns true when the debt is new.
  bool record_own_debt(std::uint64_t seq, std::uint64_t cover_seq);

  /// Receiver side: merges debts announced by `sender` (union; debts are
  /// immutable facts) and re-advances the covered frontier they explain.
  /// Returns true when at least one debt was news.
  bool merge_debts(net::ProcessId sender,
                   const StabilityMessage::Debts& debts);

  /// True when the §3.2 obligation for (sender, seq) is already discharged
  /// at this node: the message was received, or a received message covers
  /// it through the debt chain.  What the t7 flush skip uses — strictly
  /// stronger than received(), still never skips an undischarged gap.
  [[nodiscard]] bool obligation_met(net::ProcessId sender,
                                    std::uint64_t seq) const;

  /// The covered frontier this node would report for `sender`, if its
  /// anchor is known: every seq at or below it is received here or
  /// debt-resolved to a received cover.
  [[nodiscard]] std::optional<std::uint64_t> frontier(
      net::ProcessId sender) const;

  // -- gossip -------------------------------------------------------------

  /// Snapshot of the local reception vector (covered frontiers), as
  /// gossiped to the peers.
  [[nodiscard]] StabilityMessage::Seen snapshot() const;

  /// The entries whose reported frontier changed and the own debts
  /// recorded since the previous take_delta() (or since
  /// construction/reset) — what a gossip round actually needs to ship,
  /// because frontiers are monotone, merge_report is a per-entry max and
  /// debt merging is a union.  Clears the change sets and the dirty flag.
  [[nodiscard]] Round take_delta();

  /// Full variant of take_delta(): every frontier entry and every own debt
  /// still in the ledger.  Periodic full rounds make the delta gossip
  /// self-healing — a round dropped by a receiver (e.g. for a view
  /// mismatch during install skew) is repaired by the next full round.
  [[nodiscard]] Round take_snapshot();

  /// Number of senders with a reportable frontier (|snapshot()|, O(1)).
  [[nodiscard]] std::size_t tracked_senders() const { return reportable_; }

  /// Exact encoded size of the snapshot's (sender, frontier) entries and
  /// of the own-debt section — what a full-vector gossip would put on the
  /// wire.  Maintained incrementally (O(1) per update), so the delta-
  /// gossip savings telemetry never materializes the snapshot it avoided
  /// sending.
  [[nodiscard]] std::size_t entry_wire_bytes() const {
    return entry_wire_bytes_;
  }
  [[nodiscard]] std::size_t debt_wire_bytes() const {
    return own_debt_wire_bytes_;
  }

  /// Own debts currently in the ledger / merged debts across all senders —
  /// the boundedness the tests assert (both shrink as covers stabilize).
  [[nodiscard]] std::size_t own_debts() const { return own_debts_.size(); }
  [[nodiscard]] std::size_t merged_debts() const {
    return merged_debt_count_;
  }

  /// Merges a peer's gossiped reception vector (frontiers are monotone).
  /// Returns true when at least one of the peer's frontiers advanced.
  bool merge_report(net::ProcessId from, const StabilityMessage::Seen& seen);

  /// The latest reception vectors reported by (or relayed for) each peer —
  /// the relay source for ring-aggregated stability digests (DESIGN.md
  /// §11): a digest row for origin `o` re-ships exactly peer_reports()[o].
  [[nodiscard]] const std::map<net::ProcessId,
                               std::map<net::ProcessId, std::uint64_t>>&
  peer_reports() const {
    return peer_seen_;
  }

  /// The per-view channel anchor learned for `sender`, if any — relayed in
  /// digest rows so members that never heard the origin directly can still
  /// anchor its channel.
  [[nodiscard]] std::optional<std::uint64_t> channel_anchor(
      net::ProcessId sender) const {
    const auto it = channels_.find(sender);
    if (it == channels_.end()) return std::nullopt;
    return it->second.anchor;
  }

  /// Highest seq of `sender` known to be received-or-covered by every
  /// member of `view` (self included).  Any member that has not reported
  /// yet (or a crashed one whose reports stopped) holds the floor at zero
  /// — stability then waits for the view change that excludes it, as in a
  /// real group stack.
  [[nodiscard]] std::uint64_t floor_of(net::ProcessId sender, const View& view,
                                       net::ProcessId self) const;

  /// Debt GC: drops own debts whose seq every member's reported frontier
  /// passed (floor of this node's own channel) and merged debts below this
  /// node's own frontiers.  Returns the number of own debts collected.
  std::size_t collect_debts(const View& view, net::ProcessId self);

  /// True when the reported state changed since the last gossip (the
  /// gossip quiesces when nothing new happened, so idle groups go silent).
  [[nodiscard]] bool dirty() const { return dirty_; }
  void clear_dirty() { dirty_ = false; }

  /// Install-time reset: reception marks, anchors and debts are per-view.
  void reset();

 private:
  // Per-sender channel state for the current view.
  //
  // The exact reception set is compressed as (base, contiguous floor,
  // sparse tail): every seq in [base, floor] was received, plus the sparse
  // set outside it.  Gap-free reception — the common case — only advances
  // `floor`, O(1); a flush-in can close a gap and re-absorb the sparse
  // tail.  `high` is the raw monotone frontier used for duplicate
  // detection only.
  //
  // `explained` is the covered frontier: valid once `anchor` is known,
  // starts there, and advances over seqs that are received or
  // debt-resolved to a received cover.  `debts` holds the sender's merged
  // announcements (q -> cover), pruned as `explained` passes them.
  struct Channel {
    bool any_received = false;
    std::uint64_t base = 0;
    std::uint64_t floor = 0;
    std::uint64_t high = 0;
    std::set<std::uint64_t> sparse;

    std::optional<std::uint64_t> anchor;
    std::uint64_t explained = 0;
    std::map<std::uint64_t, std::uint64_t> debts;

    [[nodiscard]] bool has(std::uint64_t seq) const {
      return any_received &&
             ((seq >= base && seq <= floor) || sparse.contains(seq));
    }
    /// True when some link of the debt chain starting at `seq` was
    /// received here — the first received cover discharges the obligation
    /// (later links only matter for peers that missed this one too).
    [[nodiscard]] bool chain_cover_received(std::uint64_t seq) const {
      auto it = debts.find(seq);
      while (it != debts.end()) {
        if (has(it->second)) return true;
        it = debts.find(it->second);
      }
      return false;
    }
  };

  void record_reception(Channel& channel, std::uint64_t seq);
  /// Advances `explained` and refreshes the reported entry/bookkeeping.
  void advance_frontier(net::ProcessId sender, Channel& channel);

  std::map<net::ProcessId, Channel> channels_;
  // Latest reception vectors reported by the other members.
  std::map<net::ProcessId, std::map<net::ProcessId, std::uint64_t>> peer_seen_;
  // Senders whose reported frontier changed since the last take_delta().
  std::set<net::ProcessId> changed_;
  std::size_t reportable_ = 0;  // channels with a known anchor
  std::size_t merged_debt_count_ = 0;  // debts across all channels_, O(1)
  // This node's own purge debts (it is the channel sender), the subset not
  // yet shipped, and the exact encoded bytes of the full set.
  std::map<std::uint64_t, std::uint64_t> own_debts_;
  std::set<std::uint64_t> own_debts_unshipped_;
  std::size_t own_debt_wire_bytes_ = 0;
  // Exact encoded bytes of the snapshot's (sender, frontier) entries.
  std::size_t entry_wire_bytes_ = 0;
  bool dirty_ = false;
};

}  // namespace svs::core
