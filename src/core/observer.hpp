// Observation hooks for specification checking and metrics.
//
// Events are application-level: on_deliver/on_install fire when the
// application consumes the corresponding entry from the delivery queue
// (matching the specification's notion of "delivers m in view v_i", which
// is relative to the delivered view notifications).
#pragma once

#include "core/message.hpp"
#include "core/types.hpp"
#include "net/types.hpp"

namespace svs::core {

class NodeObserver {
 public:
  NodeObserver() = default;
  NodeObserver(const NodeObserver&) = delete;
  NodeObserver& operator=(const NodeObserver&) = delete;
  virtual ~NodeObserver() = default;

  /// `p` multicast `m` (t2 accepted it; the message is now in flight).
  virtual void on_multicast(net::ProcessId p, const DataMessagePtr& m) {
    (void)p;
    (void)m;
  }

  /// `p`'s application consumed data message `m`.
  virtual void on_deliver(net::ProcessId p, const DataMessagePtr& m) {
    (void)p;
    (void)m;
  }

  /// `p`'s application consumed the notification installing `v`.
  virtual void on_install(net::ProcessId p, const View& v) {
    (void)p;
    (void)v;
  }

  /// `p`'s application consumed its exclusion notice.
  virtual void on_excluded(net::ProcessId p, ViewId last_view) {
    (void)p;
    (void)last_view;
  }

  /// `p`'s t7 flush added `m` from the agreed pred-view (it was missing
  /// here).  When the flush repairs a sender-purged gap whose cover died
  /// with an excluded sender, the delivery of `m` may be retrograde in the
  /// per-sender seq order; the spec checker exempts exactly these
  /// deliveries from FIFO clause (i) (DESIGN.md §7).
  virtual void on_flush_in(net::ProcessId p, const DataMessagePtr& m) {
    (void)p;
    (void)m;
  }

  /// `victim` was purged from a buffer of `p` because `by` covers it.
  virtual void on_purge(net::ProcessId p, const DataMessagePtr& victim,
                        const DataMessagePtr& by) {
    (void)p;
    (void)victim;
    (void)by;
  }
};

}  // namespace svs::core
