#include "core/view_change_engine.hpp"

#include <utility>

#include "util/contracts.hpp"

namespace svs::core {

void ViewChangeEngine::begin(const InitMessage& m, const View& view,
                             sim::TimePoint now) {
  SVS_ASSERT(!blocked_, "only the first INIT of a view begins a change");
  blocked_ = true;
  change_started_ = now;
  leave_.clear();
  for (const auto p : m.leave()) {
    if (view.contains(p)) leave_.insert(p);
  }
}

void ViewChangeEngine::add_pred(net::ProcessId from, const PredMessage& m) {
  for (const auto& msg : m.accepted()) {
    global_pred_.emplace(msg->id(), msg);
  }
  pred_received_.insert(from);
}

bool ViewChangeEngine::ready_to_propose(const View& view,
                                        const fd::FailureDetector& fd,
                                        sim::TimePoint now,
                                        sim::Duration pred_grace) const {
  if (!blocked_ || proposed_) return false;
  // ∀p ∈ memb(v) : ¬suspects(p) ⇒ p ∈ pred-received, and a majority answered.
  // A suspected member is awaited for pred_grace past the change's start:
  // membership is decided by who answers the flush, so giving a falsely
  // suspected member one round trip to answer both keeps it in the group
  // and brings its accepted set (the covers of its purges) into the
  // pred-view.  Past the grace its silence reads as the crash it probably
  // is and the change proceeds without it.
  const bool grace_over = now >= change_started_ + pred_grace;
  for (const auto p : view.members()) {
    if (pred_received_.contains(p)) continue;
    if (!fd.suspects(p) || !grace_over) return false;
  }
  return pred_received_.size() > view.size() / 2;
}

std::shared_ptr<ProposalValue> ViewChangeEngine::take_proposal(
    const View& view) {
  SVS_ASSERT(blocked_ && !proposed_, "proposal outside a ready view change");
  proposed_ = true;
  std::vector<net::ProcessId> next_members;
  for (const auto p : pred_received_) {
    if (!leave_.contains(p)) next_members.push_back(p);
  }
  std::vector<DataMessagePtr> pred_view;
  pred_view.reserve(global_pred_.size());
  for (const auto& [id, msg] : global_pred_) pred_view.push_back(msg);
  return std::make_shared<ProposalValue>(
      View(view.id().next(), std::move(next_members)), std::move(pred_view));
}

void ViewChangeEngine::reset() {
  blocked_ = false;
  proposed_ = false;
  leave_.clear();
  global_pred_.clear();
  pred_received_.clear();
}

void ViewChangeEngine::defer(std::uint64_t view_value, net::ProcessId from,
                             net::MessagePtr message) {
  pending_control_[view_value].emplace_back(from, std::move(message));
}

std::vector<std::pair<net::ProcessId, net::MessagePtr>>
ViewChangeEngine::take_due(std::uint64_t view_value) {
  std::vector<std::pair<net::ProcessId, net::MessagePtr>> due;
  while (!pending_control_.empty()) {
    const auto it = pending_control_.begin();
    if (it->first > view_value) break;
    if (it->first == view_value) due = std::move(it->second);
    pending_control_.erase(it);
  }
  return due;
}

}  // namespace svs::core
