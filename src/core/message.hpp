// Protocol messages of Figure 1: DATA, INIT, PRED — plus the consensus
// proposal value (the (next-view, pred-view) pair of t7) and the Delivery
// variant handed to the application.  VIEW notifications are local control
// entries in the delivery queue, not wire messages.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <variant>
#include <vector>

#include "consensus/value.hpp"
#include "core/types.hpp"
#include "net/message.hpp"
#include "obs/annotation.hpp"
#include "obs/relation.hpp"
#include "util/bytes.hpp"

namespace svs::core {

/// Application payload carried by a DATA message.  Opaque to the protocol.
class Payload {
 public:
  Payload() = default;
  Payload(const Payload&) = delete;
  Payload& operator=(const Payload&) = delete;
  virtual ~Payload() = default;

  /// Exact number of bytes this payload's registered codec writes
  /// (net::PayloadCodecRegistry asserts the equality at every encode).
  /// Kind-0 payloads are encoded as `wire_size()` filler bytes.
  [[nodiscard]] virtual std::size_t wire_size() const = 0;

  /// Application-level decode tag (the data-lane analogue of
  /// net::MessageType, so consumers dispatch without RTTI).  0 is reserved
  /// for opaque payloads; applications claim small positive values and
  /// register a codec for them (net/codec.hpp).
  [[nodiscard]] virtual std::uint32_t payload_kind() const { return 0; }
};

using PayloadPtr = std::shared_ptr<const Payload>;

/// Size-preserving stand-in produced when a kind-0 (opaque) payload is
/// decoded from the wire: the bytes are not interpretable, but the wire
/// cost is, so byte accounting stays exact across a codec round trip.
class OpaquePayload final : public Payload {
 public:
  explicit OpaquePayload(std::size_t encoded_size) : size_(encoded_size) {}
  [[nodiscard]] std::size_t wire_size() const override { return size_; }

 private:
  std::size_t size_;
};

/// One per-view purge debt of the gossiping sender's own channel: it
/// semantically purged `seq` out of at least one outgoing buffer, and the
/// message that justified the purge (its declared cover) carries
/// `cover_seq`.  Covers are the just-multicast message, so cover_seq > seq
/// always — the wire encodes the positive gap.
struct PurgeDebt {
  std::uint64_t seq = 0;
  std::uint64_t cover_seq = 0;

  friend bool operator==(const PurgeDebt&, const PurgeDebt&) = default;
};

/// Exact encoded size of one (seq, cover_seq) debt entry — the same
/// arithmetic the codec writes (seq, then the positive cover gap).
[[nodiscard]] inline std::size_t purge_debt_wire_size(const PurgeDebt& debt) {
  return util::varint_size(debt.seq) +
         util::varint_size(debt.cover_seq - debt.seq);
}

/// Optional stability section piggybacked on an outgoing DATA message: the
/// sender's covered frontiers (delta since its last gossip/piggyback), its
/// per-view anchor, and any small own-debt deltas.  A group under traffic
/// spreads stability knowledge through these sections, so the standalone
/// gossip lane can stay quiescent (DESIGN.md §10).  Same merge semantics as
/// a StabilityMessage for the same view — merging is idempotent and
/// commutative, so piggyback-vs-gossip arrival order never matters.
struct StabilityPiggyback {
  using Seen = std::vector<std::pair<net::ProcessId, std::uint64_t>>;
  using Debts = std::vector<PurgeDebt>;

  std::uint64_t anchor = 0;
  Seen seen;
  Debts debts;

  /// Exact encoded size of the section body (excludes the presence byte),
  /// the same arithmetic the codec writes.
  [[nodiscard]] std::size_t wire_size() const {
    std::size_t n = util::varint_size(anchor) + util::varint_size(seen.size());
    for (const auto& [sender, seq] : seen) {
      n += util::varint_size(sender.value()) + util::varint_size(seq);
    }
    n += util::varint_size(debts.size());
    for (const auto& debt : debts) n += purge_debt_wire_size(debt);
    return n;
  }

  friend bool operator==(const StabilityPiggyback&,
                         const StabilityPiggyback&) = default;
};

/// [DATA, v, d] — an application message tagged with the view it was sent
/// in, carrying its obsolescence annotation.
class DataMessage final : public net::Message {
 public:
  DataMessage(net::ProcessId sender, std::uint64_t seq, ViewId view,
              obs::Annotation annotation, PayloadPtr payload)
      : net::Message(net::MessageType::data, seq),
        sender_(sender),
        seq_(seq),
        view_(view),
        annotation_(std::move(annotation)),
        payload_(std::move(payload)) {}

  [[nodiscard]] net::ProcessId sender() const { return sender_; }
  [[nodiscard]] std::uint64_t seq() const { return seq_; }
  [[nodiscard]] MsgId id() const { return MsgId{sender_, seq_}; }
  [[nodiscard]] ViewId view() const { return view_; }
  [[nodiscard]] const obs::Annotation& annotation() const {
    return annotation_;
  }
  [[nodiscard]] const PayloadPtr& payload() const { return payload_; }

  /// This message as seen by a Relation oracle.
  [[nodiscard]] obs::MessageRef ref() const {
    return obs::MessageRef{sender_, seq_, &annotation_};
  }

  /// Optional piggybacked stability section (nullopt when absent).
  [[nodiscard]] const std::optional<StabilityPiggyback>& piggyback() const {
    return piggyback_;
  }

  /// Attaches a stability section.  Must happen before the message is first
  /// encoded or sized (net::Message caches wire_size and the encoded frame
  /// lazily); Node::multicast attaches post-commit, pre-send, which is
  /// before either cache exists.
  void set_piggyback(StabilityPiggyback piggyback) {
    piggyback_ = std::move(piggyback);
  }

  [[nodiscard]] std::size_t compute_wire_size() const override;

 private:
  net::ProcessId sender_;
  std::uint64_t seq_;
  ViewId view_;
  obs::Annotation annotation_;
  PayloadPtr payload_;
  std::optional<StabilityPiggyback> piggyback_;
};

using DataMessagePtr = std::shared_ptr<const DataMessage>;

/// [INIT, v, l] — starts the view change that removes the processes in l.
class InitMessage final : public net::Message {
 public:
  InitMessage(ViewId view, std::vector<net::ProcessId> leave)
      : net::Message(net::MessageType::init),
        view_(view),
        leave_(std::move(leave)) {}

  [[nodiscard]] ViewId view() const { return view_; }
  [[nodiscard]] const std::vector<net::ProcessId>& leave() const {
    return leave_;
  }

  [[nodiscard]] std::size_t compute_wire_size() const override {
    // tag + view + count + member ids (varints), as the codec encodes it.
    std::size_t n = 1 + util::varint_size(view_.value()) +
                    util::varint_size(leave_.size());
    for (const auto p : leave_) n += util::varint_size(p.value());
    return n;
  }

 private:
  ViewId view_;
  std::vector<net::ProcessId> leave_;
};

/// [PRED, v, P] — the sequence of messages this process accepted to deliver
/// in view v.  Carries whole messages: the agreed pred-view is re-delivered
/// ("flushed") to members that miss some of them.
class PredMessage final : public net::Message {
 public:
  PredMessage(ViewId view, std::vector<DataMessagePtr> accepted)
      : net::Message(net::MessageType::pred),
        view_(view),
        accepted_(std::move(accepted)) {}

  [[nodiscard]] ViewId view() const { return view_; }
  [[nodiscard]] const std::vector<DataMessagePtr>& accepted() const {
    return accepted_;
  }

  [[nodiscard]] std::size_t compute_wire_size() const override {
    // tag + view + count, then each accepted message as a full (tagged)
    // data-message encoding — nested messages are self-delimiting.
    std::size_t n = 1 + util::varint_size(view_.value()) +
                    util::varint_size(accepted_.size());
    for (const auto& m : accepted_) n += m->wire_size();
    return n;
  }

 private:
  ViewId view_;
  std::vector<DataMessagePtr> accepted_;
};

/// Periodic stability gossip (§2.1), extended with the purge-debt ledger
/// sections that make mark-based GC sound under sender-side purging for
/// every relation (DESIGN.md §3/§7):
///
///   * `seen` — per-sender *covered frontiers*: the largest seq below which
///     every message of that channel is provably received here or purged
///     with a received cover (the StabilityLedger reconstructs this from
///     its exact reception set plus the merged debts).  A message is stable
///     once every member's frontier passed it;
///   * `anchor` — the seq just below the gossiping process's first
///     multicast of this view (its own channel's per-view epoch start;
///     receivers anchor the frontier there, so a purged *first* message of
///     the view is still accounted);
///   * `debts` — delta (or, on full rounds, the complete current set) of
///     the gossiping process's own purge debts, sorted by seq.
///
/// Nodes exchange these so the stable prefix of the delivered history can
/// be garbage-collected — which is also what keeps the PRED messages and
/// the agreed pred-view small.
class StabilityMessage final : public net::Message {
 public:
  using Seen = StabilityPiggyback::Seen;
  using Debts = StabilityPiggyback::Debts;

  StabilityMessage(ViewId view, std::uint64_t anchor, Seen seen, Debts debts)
      : net::Message(net::MessageType::stability),
        view_(view),
        anchor_(anchor),
        seen_(std::move(seen)),
        debts_(std::move(debts)) {}

  [[nodiscard]] ViewId view() const { return view_; }
  [[nodiscard]] std::uint64_t anchor() const { return anchor_; }
  [[nodiscard]] const Seen& seen() const { return seen_; }
  [[nodiscard]] const Debts& debts() const { return debts_; }

  /// Exact encoded size of one (seq, cover_seq) debt entry — the same
  /// arithmetic the codec writes (seq, then the positive cover gap).
  [[nodiscard]] static std::size_t debt_wire_size(const PurgeDebt& debt) {
    return purge_debt_wire_size(debt);
  }

  /// Exact encoded size of a stability message — the same arithmetic the
  /// codec writes.
  [[nodiscard]] static std::size_t wire_size_for(ViewId view,
                                                 std::uint64_t anchor,
                                                 const Seen& seen,
                                                 const Debts& debts) {
    std::size_t entry_bytes = 0;
    for (const auto& [sender, seq] : seen) {
      entry_bytes += util::varint_size(sender.value()) +
                     util::varint_size(seq);
    }
    std::size_t debt_bytes = 0;
    for (const auto& debt : debts) debt_bytes += debt_wire_size(debt);
    return wire_size_for_entries(view, anchor, seen.size(), entry_bytes,
                                 debts.size(), debt_bytes);
  }

  /// As wire_size_for, from pre-aggregated entry stats — lets the
  /// delta-gossip savings credit (Node::gossip_stability) price the full
  /// snapshot it avoided sending without materializing it (the
  /// StabilityLedger maintains entry_wire_bytes/debt_wire_bytes
  /// incrementally).
  [[nodiscard]] static std::size_t wire_size_for_entries(
      ViewId view, std::uint64_t anchor, std::size_t entries,
      std::size_t entry_bytes, std::size_t debts, std::size_t debt_bytes) {
    return 1 + util::varint_size(view.value()) + util::varint_size(anchor) +
           util::varint_size(entries) + entry_bytes +
           util::varint_size(debts) + debt_bytes;
  }

  [[nodiscard]] std::size_t compute_wire_size() const override {
    return wire_size_for(view_, anchor_, seen_, debts_);
  }

 private:
  ViewId view_;
  std::uint64_t anchor_;
  Seen seen_;
  Debts debts_;
};

/// Ring-aggregated stability digest (DESIGN.md §11).  At scale the
/// all-to-all stability gossip is replaced by round-robin aggregation: each
/// round a member ships its best-known per-origin stability rows to O(1)
/// successors on a deterministic ring.  A row is exactly the content of the
/// origin's own stability round — its per-view anchor (when known here),
/// its covered-frontier report and its own purge debts — so a receiver
/// merges each row as if the origin's gossip had arrived directly.  All row
/// merges are idempotent, commutative max/union operations, which is what
/// makes multi-hop relaying sound regardless of arrival order.
class StabilityDigestMessage final : public net::Message {
 public:
  /// One origin's stability round as best known by the relayer.  The
  /// anchor is optional: a relayer can usefully forward an origin's
  /// frontier report before it has learned that origin's channel anchor.
  struct Row {
    net::ProcessId origin;
    std::optional<std::uint64_t> anchor;
    StabilityMessage::Seen seen;
    StabilityMessage::Debts debts;

    [[nodiscard]] std::size_t wire_size() const {
      // origin + presence byte [+ anchor] + seen section + debt section,
      // the same arithmetic the codec writes.
      std::size_t n = util::varint_size(origin.value()) + 1;
      if (anchor.has_value()) n += util::varint_size(*anchor);
      n += util::varint_size(seen.size());
      for (const auto& [sender, seq] : seen) {
        n += util::varint_size(sender.value()) + util::varint_size(seq);
      }
      n += util::varint_size(debts.size());
      for (const auto& debt : debts) n += purge_debt_wire_size(debt);
      return n;
    }

    friend bool operator==(const Row&, const Row&) = default;
  };
  using Rows = std::vector<Row>;

  StabilityDigestMessage(ViewId view, Rows rows)
      : net::Message(net::MessageType::stability_digest),
        view_(view),
        rows_(std::move(rows)) {}

  [[nodiscard]] ViewId view() const { return view_; }
  [[nodiscard]] const Rows& rows() const { return rows_; }

  [[nodiscard]] std::size_t compute_wire_size() const override {
    std::size_t n = 1 + util::varint_size(view_.value()) +
                    util::varint_size(rows_.size());
    for (const auto& row : rows_) n += row.wire_size();
    return n;
  }

 private:
  ViewId view_;
  Rows rows_;
};

using StabilityDigestMessagePtr =
    std::shared_ptr<const StabilityDigestMessage>;

/// The value decided by consensus at t7: (next-view, pred-view).
class ProposalValue final : public consensus::ValueBase {
 public:
  /// consensus::ValueBase::value_kind claimed by ProposalValue.
  static constexpr std::uint32_t kValueKind = 1;

  ProposalValue(View next_view, std::vector<DataMessagePtr> pred_view)
      : next_view_(std::move(next_view)), pred_view_(std::move(pred_view)) {}

  [[nodiscard]] const View& next_view() const { return next_view_; }
  [[nodiscard]] const std::vector<DataMessagePtr>& pred_view() const {
    return pred_view_;
  }

  [[nodiscard]] std::size_t wire_size() const override {
    // view id + member count + member ids, pred count + full data-message
    // encodings — exactly what the registered value codec writes.
    std::size_t n = util::varint_size(next_view_.id().value()) +
                    util::varint_size(next_view_.size());
    for (const auto p : next_view_.members()) n += util::varint_size(p.value());
    n += util::varint_size(pred_view_.size());
    for (const auto& m : pred_view_) n += m->wire_size();
    return n;
  }

  [[nodiscard]] std::uint32_t value_kind() const override {
    return kValueKind;
  }

 private:
  View next_view_;
  std::vector<DataMessagePtr> pred_view_;
};

/// What the application obtains from the delivery queue (down-call style,
/// §3.2): data, a view notification, or notice of its own exclusion.
struct DataDelivery {
  DataMessagePtr message;
};
struct ViewDelivery {
  View view;
};
struct ExclusionDelivery {
  ViewId last_view;  // the view this process was a member of last
};

using Delivery = std::variant<DataDelivery, ViewDelivery, ExclusionDelivery>;

}  // namespace svs::core
