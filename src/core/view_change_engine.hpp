// View-change engine — the t4–t7 bookkeeping of Figure 1.
//
// Owns the state a view change accumulates between the first INIT and the
// consensus decision: the blocked flag, the leave set, the global predicate
// (union of received PREDs), the set of members that answered, and the
// INIT/PRED messages that arrived early for views this node has not
// installed yet.  The Node remains the transition coordinator: it sends the
// wire messages, opens the consensus instance and applies the decided
// installation; the engine answers the guards and builds the proposal.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "core/message.hpp"
#include "core/types.hpp"
#include "fd/failure_detector.hpp"
#include "net/message.hpp"
#include "net/types.hpp"
#include "sim/time.hpp"

namespace svs::core {

class ViewChangeEngine {
 public:
  /// True from the first accepted INIT until the decided view is installed
  /// (Figure 1's blocked flag; t2/t3 are suspended while set).
  [[nodiscard]] bool blocked() const { return blocked_; }
  [[nodiscard]] bool proposed() const { return proposed_; }

  /// t5: accept the first INIT of the current view.  Records the leave set
  /// (restricted to current members) and stamps the start time for the
  /// latency measurement.
  void begin(const InitMessage& m, const View& view, sim::TimePoint now);

  /// t6: fold one member's PRED into the global predicate.
  void add_pred(net::ProcessId from, const PredMessage& m);

  /// t7 guard: every unsuspected member answered and a majority answered.
  /// Suspected members are granted `pred_grace` from the change's start
  /// before the proposal gives up on their PRED: a falsely suspected but
  /// live member answers within one round trip, and its PRED carries the
  /// accepted messages (among them the covers of its sender-side purges)
  /// that the flush needs to keep FIFO-SR clause (ii) whole when the next
  /// view would drop it — see DESIGN.md §3.  A crashed member stays
  /// silent and costs the change at most the grace.
  [[nodiscard]] bool ready_to_propose(const View& view,
                                      const fd::FailureDetector& fd,
                                      sim::TimePoint now,
                                      sim::Duration pred_grace) const;

  /// Builds the (next-view, pred-view) consensus proposal and marks this
  /// engine as having proposed.  Only valid when ready_to_propose().
  [[nodiscard]] std::shared_ptr<ProposalValue> take_proposal(const View& view);

  [[nodiscard]] sim::TimePoint started_at() const { return change_started_; }

  /// Install-time reset (survivors only; an excluded node stays blocked).
  void reset();

  // -- early control traffic ----------------------------------------------

  /// Parks an INIT/PRED that arrived for a view this node has not installed
  /// yet (keyed by the raw view number).
  void defer(std::uint64_t view_value, net::ProcessId from,
             net::MessagePtr message);

  /// Pops every deferred batch for views at or below `view_value`,
  /// discarding superseded ones; returns the batch for `view_value` itself
  /// (in arrival order), or empty when none is pending.
  [[nodiscard]] std::vector<std::pair<net::ProcessId, net::MessagePtr>>
  take_due(std::uint64_t view_value);

  [[nodiscard]] bool has_deferred() const { return !pending_control_.empty(); }

 private:
  bool blocked_ = false;
  bool proposed_ = false;
  std::set<net::ProcessId> leave_;
  std::map<MsgId, DataMessagePtr> global_pred_;
  std::set<net::ProcessId> pred_received_;
  sim::TimePoint change_started_{};

  // INIT/PRED that arrived for views this node has not installed yet.
  std::map<std::uint64_t,
           std::vector<std::pair<net::ProcessId, net::MessagePtr>>>
      pending_control_;
};

}  // namespace svs::core
